// Package kernel is the minimal operating-system layer of the
// emulation platform: per-process 32-bit address spaces with 4 KB page
// tables, mmap/mbind with NUMA placement policies (the calls the
// paper's modified JVM uses to pin heap chunks to the DRAM or PCM
// socket), first-touch physical frame allocation with kernel page
// zeroing, and a deterministic cooperative scheduler that interleaves
// multiprogrammed processes on socket 0's cores.
//
// Two behaviours of this layer matter for the paper's methodology:
//
//   - Page zeroing. Linux zeroes a page in the faulting thread's
//     context on first touch. These writes land on whatever node the
//     page is bound to and are visible to the memory-controller
//     counters — part of the "system-level effects" the paper isolates
//     with its reference setup. The Sniper-style simulation pipeline
//     has no OS and therefore misses them; this asymmetry is one
//     reason emulation and simulation report slightly different
//     reductions (Table II).
//
//   - Scheduling. The paper binds all application and JVM threads to
//     one socket with the default OS scheduler, without core pinning.
//     The scheduler here picks the runnable process with the smallest
//     clock (keeping multiprogrammed instances time-aligned, as truly
//     concurrent execution would) and round-robins core assignment.
package kernel

import (
	"fmt"

	"repro/internal/machine"
)

// PageSize is the virtual-memory page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// VASize is the size of a 32-bit process address space.
const VASize = uint64(1) << 32

// KernelBase is the start of the kernel-owned top 1 GB of the 32-bit
// address space (the paper: "the Linux OS owns the upper 1 GB").
const KernelBase = 0xC0000000

// PolicyNode values for MBind.
const (
	// NodeFirstTouch places a page on the node local to the first
	// thread that touches it (the OS default).
	NodeFirstTouch = -1
)

// Config controls the OS model.
type Config struct {
	// EmulateOS enables the behaviours a real OS contributes on the
	// emulation platform: page-fault cost, kernel page zeroing, and
	// background system noise. The simulation pipeline turns it off.
	EmulateOS bool
	// PageFaultCycles is the CPU cost of taking a minor fault.
	PageFaultCycles float64
	// NoisePeriodSec is the simulated-time period of background kernel
	// activity (timer ticks, bookkeeping) while EmulateOS is on.
	NoisePeriodSec float64
	// NoiseLines is the number of line writes per noise tick, landing
	// on the node given by NoiseNode.
	NoiseLines int
	// NoiseNode is the node kernel noise writes to (0 = the socket the
	// workload runs on, matching the paper's observation that system
	// activity shows up on the local socket).
	NoiseNode int
	// MigrationPageCycles is the per-page CPU cost of MovePages: the
	// unmap/remap bookkeeping around the copy (the copy traffic itself
	// is charged to the memory devices).
	MigrationPageCycles float64
	// TLBShootdownCycles is the cost of the inter-processor TLB
	// shootdown a MovePages batch triggers, charged once per batch.
	TLBShootdownCycles float64
}

// DefaultConfig returns the OS model used by the emulator pipeline.
func DefaultConfig() Config {
	return Config{
		EmulateOS:           true,
		PageFaultCycles:     2500,
		NoisePeriodSec:      0.001, // 1 kHz tick
		NoiseLines:          24,
		NoiseNode:           0,
		MigrationPageCycles: 1200,
		TLBShootdownCycles:  4000,
	}
}

// frameAllocator hands out physical frames from one NUMA node.
type frameAllocator struct {
	base  uint64 // first PA of the node
	next  uint64 // bump offset
	limit uint64
	free  []uint64
}

func (f *frameAllocator) alloc() (uint64, error) {
	if n := len(f.free); n > 0 {
		pa := f.free[n-1]
		f.free = f.free[:n-1]
		return pa, nil
	}
	if f.next+PageSize > f.limit {
		return 0, fmt.Errorf("kernel: node out of physical memory (%d used)", f.next)
	}
	pa := f.base + f.next
	f.next += PageSize
	return pa, nil
}

func (f *frameAllocator) release(pa uint64) {
	f.free = append(f.free, pa)
}

// Kernel is the OS instance managing one machine.
type Kernel struct {
	cfg       Config
	m         *machine.Machine
	frames    []frameAllocator
	procs     []*Process
	nextPID   int
	noiseNext float64 // next noise tick in simulated seconds
	// zeroedPages counts pages the kernel zeroed, for diagnostics.
	zeroedPages uint64
}

// New returns a kernel managing the machine.
func New(m *machine.Machine, cfg Config) *Kernel {
	k := &Kernel{cfg: cfg, m: m}
	for n := 0; n < m.Nodes(); n++ {
		k.frames = append(k.frames, frameAllocator{
			base:  uint64(n) * m.Config().NodeBytes,
			limit: m.Config().NodeBytes,
		})
	}
	return k
}

// Machine returns the underlying machine.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// Config returns the OS configuration.
func (k *Kernel) Config() Config { return k.cfg }

// ZeroedPages reports how many pages the kernel has zeroed.
func (k *Kernel) ZeroedPages() uint64 { return k.zeroedPages }

// vma is a mapped virtual region with its NUMA policy.
type vma struct {
	start, end uint64 // byte addresses, end exclusive
	node       int    // NodeFirstTouch or an explicit node
}

// AddressSpace is a process's page table plus mapping metadata.
type AddressSpace struct {
	k *Kernel
	// pages maps VPN -> PA+1 (0 = not present). Flat array: the
	// 32-bit space has 2^20 pages.
	pages []uint64
	vmas  []vma
	// Resident counts present pages, for peak-memory accounting.
	Resident     uint64
	PeakResident uint64
}

func newAddressSpace(k *Kernel) *AddressSpace {
	return &AddressSpace{k: k, pages: make([]uint64, VASize/PageSize)}
}

// MMap reserves [start, start+length) with the given NUMA policy node
// (NodeFirstTouch for the default policy). Overlapping or kernel-range
// mappings are rejected.
func (as *AddressSpace) MMap(start, length uint64, node int) error {
	if length == 0 || start%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("kernel: mmap of unaligned region %#x+%#x", start, length)
	}
	end := start + length
	if end > KernelBase {
		return fmt.Errorf("kernel: mmap into kernel range %#x+%#x", start, length)
	}
	for _, v := range as.vmas {
		if start < v.end && v.start < end {
			return fmt.Errorf("kernel: mmap overlaps existing mapping [%#x,%#x)", v.start, v.end)
		}
	}
	as.vmas = append(as.vmas, vma{start: start, end: end, node: node})
	return nil
}

// MBind sets the NUMA policy of an existing mapping, like mbind(2)
// after mmap in the paper's allocator. It applies to pages not yet
// touched; already-present pages stay where they are (mbind without
// MPOL_MF_MOVE).
func (as *AddressSpace) MBind(start, length uint64, node int) error {
	end := start + length
	for i := range as.vmas {
		v := &as.vmas[i]
		if start >= v.start && end <= v.end {
			if v.start == start && v.end == end {
				v.node = node
				return nil
			}
			// Split the vma so the bound range has its own policy.
			old := *v
			as.vmas[i] = vma{start: start, end: end, node: node}
			if old.start < start {
				as.vmas = append(as.vmas, vma{start: old.start, end: start, node: old.node})
			}
			if end < old.end {
				as.vmas = append(as.vmas, vma{start: end, end: old.end, node: old.node})
			}
			return nil
		}
	}
	return fmt.Errorf("kernel: mbind of unmapped range %#x+%#x", start, length)
}

// policyFor returns the policy node for a virtual address, or an error
// if the address is unmapped.
func (as *AddressSpace) policyFor(va uint64) (int, error) {
	for _, v := range as.vmas {
		if va >= v.start && va < v.end {
			return v.node, nil
		}
	}
	return 0, fmt.Errorf("kernel: segmentation fault at %#x", va)
}

// MUnmap removes a mapping and releases its frames.
func (as *AddressSpace) MUnmap(start, length uint64) error {
	end := start + length
	found := false
	for i := 0; i < len(as.vmas); i++ {
		v := as.vmas[i]
		if v.start >= start && v.end <= end {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			i--
			found = true
		}
	}
	if !found {
		return fmt.Errorf("kernel: munmap of unmapped range %#x+%#x", start, length)
	}
	mcfg := as.k.m.Config()
	for vpn := start / PageSize; vpn < end/PageSize; vpn++ {
		if enc := as.pages[vpn]; enc != 0 {
			pa := enc - 1
			node := as.k.homeNodeOf(pa)
			as.k.frames[node].release(pa)
			if mcfg.TrackWindow {
				// A released frame must not carry its old owner's
				// window heat to whoever faults it in next.
				as.k.m.Node(node).ClearWindowPage(pa % mcfg.NodeBytes)
			}
			as.pages[vpn] = 0
			as.Resident--
		}
	}
	return nil
}

// homeNodeOf is a helper the kernel needs from the machine.
func (k *Kernel) homeNodeOf(pa uint64) int {
	return int(pa / k.m.Config().NodeBytes)
}

// Lookup translates va without faulting: ok reports whether the page
// is resident, and pa is its physical address when it is. The
// placement-policy engine uses it to observe placement without
// perturbing it.
func (as *AddressSpace) Lookup(va uint64) (pa uint64, ok bool) {
	if enc := as.pages[va>>PageShift]; enc != 0 {
		return (enc - 1) | (va & (PageSize - 1)), true
	}
	return 0, false
}

// MappedRanges calls fn for every mapped region overlapping [lo, hi),
// clipped to it. The placement engine uses it to scan only the mapped
// fraction of the heap instead of the whole virtual range. Ranges are
// reported in mapping order, which is not address order.
func (as *AddressSpace) MappedRanges(lo, hi uint64, fn func(start, end uint64)) {
	for _, v := range as.vmas {
		s, e := v.start, v.end
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if s < e {
			fn(s, e)
		}
	}
}

// Residency counts the resident pages of [lo, hi) per NUMA node — the
// per-tier residency histogram reported at the end of a run.
func (as *AddressSpace) Residency(lo, hi uint64) []uint64 {
	counts := make([]uint64, as.k.m.Nodes())
	for vpn := lo / PageSize; vpn < hi/PageSize; vpn++ {
		if enc := as.pages[vpn]; enc != 0 {
			counts[as.k.homeNodeOf(enc-1)]++
		}
	}
	return counts
}

// translate returns the PA for va, faulting it in if needed. The
// faulting thread pays the fault and zeroing cost in emulate-OS mode.
func (as *AddressSpace) translate(va uint64, th *machine.Thread) (uint64, error) {
	vpn := va >> PageShift
	if enc := as.pages[vpn]; enc != 0 {
		return (enc - 1) | (va & (PageSize - 1)), nil
	}
	node, err := as.policyFor(va)
	if err != nil {
		return 0, err
	}
	if node == NodeFirstTouch {
		node = th.Socket
	}
	pa, err := as.k.frames[node].alloc()
	if err != nil {
		return 0, err
	}
	as.pages[vpn] = pa + 1
	as.Resident++
	if as.Resident > as.PeakResident {
		as.PeakResident = as.Resident
	}
	if as.k.cfg.EmulateOS {
		// Minor fault: trap cost plus the kernel zeroing the page in
		// the faulting thread's context, through its caches.
		th.ComputeCycles(as.k.cfg.PageFaultCycles)
		th.AccessLines(pa, PageSize/machine.LineSize, true)
		as.k.zeroedPages++
	}
	return pa | (va & (PageSize - 1)), nil
}
