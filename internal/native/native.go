// Package native is the manual-memory-management runtime the paper's
// C++ GraphChi applications run on: a size-class free-list allocator
// (malloc/free) over a flat mmap'd heap.
//
// The differences from the managed runtime are exactly the ones the
// paper measures in Fig 3:
//
//   - malloc does not zero memory, so allocation itself writes only
//     the allocator header, not the payload (Java's zero-initialization
//     is a large write source);
//   - there is no garbage collector, hence no copying and no metadata
//     marking;
//   - freed blocks are recycled LIFO per size class, scattering fresh
//     allocation across the heap instead of localizing it in a nursery,
//     so hybrid placement cannot separate fresh from old data.
//
// The runtime also keeps the allocation and peak-heap accounting the
// paper gathered with Valgrind's memcheck and massif.
package native

import (
	"fmt"

	"repro/internal/kernel"
)

// HeapBase is where the malloc heap lives in the 32-bit process
// layout ("system libraries use some amount of virtual memory for the
// malloc heap").
const HeapBase = 0x04000000

// headerBytes is the allocator's per-block header (size + bin link).
const headerBytes = 16

// sizeClasses are the free-list bins, in bytes.
var sizeClasses = []int{
	16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
	1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10,
	128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
}

// Stats is the allocator's accounting, mirroring memcheck (total
// allocation) and massif (peak heap).
type Stats struct {
	Mallocs     uint64
	Frees       uint64
	AllocBytes  uint64 // cumulative, memcheck-style
	LiveBytes   uint64
	PeakBytes   uint64 // massif-style peak
	WildernessB uint64 // bytes taken from the wilderness (not recycled)
}

// Runtime is one C/C++ process's heap.
type Runtime struct {
	Proc  *kernel.Process
	Stats Stats

	limit  uint64
	cursor uint64
	bins   map[int][]uint64 // size class -> free block addresses (LIFO)
	sizes  map[uint64]int   // live block -> class index
}

// NewRuntime maps a malloc heap of heapBytes bound to the given NUMA
// node (the paper binds the whole C++ heap to the PCM socket for its
// PCM-Only comparison).
func NewRuntime(proc *kernel.Process, heapBytes uint64, node int) (*Runtime, error) {
	heapBytes = (heapBytes + kernel.PageSize - 1) / kernel.PageSize * kernel.PageSize
	if err := proc.AS.MMap(HeapBase, heapBytes, kernel.NodeFirstTouch); err != nil {
		return nil, err
	}
	if err := proc.AS.MBind(HeapBase, heapBytes, node); err != nil {
		return nil, err
	}
	return &Runtime{
		Proc:   proc,
		limit:  HeapBase + heapBytes,
		cursor: HeapBase,
		bins:   map[int][]uint64{},
		sizes:  map[uint64]int{},
	}, nil
}

// classFor returns the smallest size-class index fitting size bytes.
func classFor(size int) (int, error) {
	for i, c := range sizeClasses {
		if size <= c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("native: allocation of %d bytes exceeds the largest size class", size)
}

// Malloc allocates size bytes and returns the payload address. Only
// the allocator header is written — the payload is NOT zeroed.
func (r *Runtime) Malloc(size int) uint64 {
	if size <= 0 {
		size = 1
	}
	ci, err := classFor(size)
	if err != nil {
		panic(err)
	}
	r.Stats.Mallocs++
	r.Stats.AllocBytes += uint64(size)
	r.Proc.Compute(24) // allocator bookkeeping

	var block uint64
	if bin := r.bins[ci]; len(bin) > 0 {
		block = bin[len(bin)-1]
		r.bins[ci] = bin[:len(bin)-1]
	} else {
		need := uint64(sizeClasses[ci] + headerBytes)
		if r.cursor+need > r.limit {
			panic(fmt.Errorf("native: heap exhausted at %d MB", (r.cursor-HeapBase)>>20))
		}
		block = r.cursor
		r.cursor += (need + 15) &^ 15
		r.Stats.WildernessB += need
	}
	// Header write: block size and bin linkage.
	r.Proc.Access(block, headerBytes, true)
	r.sizes[block] = ci
	r.Stats.LiveBytes += uint64(sizeClasses[ci])
	if r.Stats.LiveBytes > r.Stats.PeakBytes {
		r.Stats.PeakBytes = r.Stats.LiveBytes
	}
	return block + headerBytes
}

// Free returns a block to its size-class bin.
func (r *Runtime) Free(addr uint64) {
	block := addr - headerBytes
	ci, ok := r.sizes[block]
	if !ok {
		panic(fmt.Errorf("native: free of unallocated address %#x", addr))
	}
	delete(r.sizes, block)
	r.Stats.Frees++
	r.Stats.LiveBytes -= uint64(sizeClasses[ci])
	r.Proc.Compute(16)
	// Freelist link write in the block header.
	r.Proc.Access(block, headerBytes, true)
	r.bins[ci] = append(r.bins[ci], block)
}

// Write models a store of size bytes at addr+off.
func (r *Runtime) Write(addr uint64, off, size int) {
	r.Proc.Access(addr+uint64(off), size, true)
}

// Read models a load of size bytes at addr+off.
func (r *Runtime) Read(addr uint64, off, size int) {
	r.Proc.Access(addr+uint64(off), size, false)
}

// LiveBlocks reports the number of live allocations (leak check).
func (r *Runtime) LiveBlocks() int { return len(r.sizes) }
