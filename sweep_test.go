package hybridmem

import (
	"context"
	"reflect"
	"testing"
)

// TestSweepSpecsDefaults pins the documented defaults: each empty
// dimension expands to the full registry, all eight collectors, one
// instance, and the default dataset.
func TestSweepSpecsDefaults(t *testing.T) {
	specs := NewSweep("pmd").Specs()
	if len(specs) != len(Collectors()) {
		t.Fatalf("one-app default sweep = %d specs, want %d", len(specs), len(Collectors()))
	}
	for i, spec := range specs {
		if spec.Collector != Collectors()[i] {
			t.Errorf("spec %d collector = %v, want the paper order %v", i, spec.Collector, Collectors()[i])
		}
		if spec.Instances != 1 || spec.Dataset != Default || spec.Native {
			t.Errorf("spec %d defaults wrong: %+v", i, spec)
		}
	}
	if n := len(NewSweep().Collectors(KGW).Specs()); n != len(Apps()) {
		t.Errorf("no-app sweep = %d specs, want the %d-benchmark registry", n, len(Apps()))
	}
}

// TestSweepSpecsRepeatedEntries checks repeats are preserved in order,
// not deduplicated: a caller sweeping (1, 1, 2) instances gets three
// aligned result columns.
func TestSweepSpecsRepeatedEntries(t *testing.T) {
	specs := NewSweep("pmd", "pmd").Collectors(KGW).Instances(1, 1, 2).Specs()
	if len(specs) != 2*3 {
		t.Fatalf("sweep size = %d, want 6", len(specs))
	}
	wantInstances := []int{1, 1, 2, 1, 1, 2}
	for i, spec := range specs {
		if spec.AppName != "pmd" || spec.Instances != wantInstances[i] {
			t.Errorf("spec %d = %+v, want pmd x%d", i, spec, wantInstances[i])
		}
	}
	if !reflect.DeepEqual(specs[0], specs[1]) {
		t.Error("repeated entries must expand to identical specs")
	}
}

// TestSweepNativeAlignment checks Specs()[i] ↔ RunSweep result
// alignment under Native(): the collector dimension collapses and
// every result matches a direct Run of the same indexed spec.
func TestSweepNativeAlignment(t *testing.T) {
	p := New(WithScale(Quick))
	ctx := context.Background()
	sweep := NewSweep("PR", "CC").Collectors(KGW, KGN).Instances(1, 2).Native()
	specs := sweep.Specs()
	// Native collapses collectors: 2 apps x 1 x 2 instances.
	if len(specs) != 4 {
		t.Fatalf("native sweep = %d specs, want 4", len(specs))
	}
	for i, spec := range specs {
		if !spec.Native || spec.Collector != 0 {
			t.Errorf("spec %d = %+v, want native with collapsed collector", i, spec)
		}
	}
	results, err := p.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("RunSweep returned %d results for %d specs", len(results), len(specs))
	}
	for i, spec := range specs {
		direct, err := p.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], direct) {
			t.Errorf("results[%d] does not equal Run(Specs()[%d])", i, i)
		}
		if len(direct.NativeStats) != spec.Instances {
			t.Errorf("spec %d: %d native stats for %d instances", i, len(direct.NativeStats), spec.Instances)
		}
	}
}

// TestSweepConfigsResolution pins the platform-dimension order: the
// Policies entries (default knobs) precede the Knobs entries, knobs
// resolved, and an empty dimension pair resolves to nil (one pass
// under the platform's own policy).
func TestSweepConfigsResolution(t *testing.T) {
	if got := NewSweep("PR").Configs(); got != nil {
		t.Fatalf("Configs() = %v, want nil without a dimension", got)
	}
	tuned := PolicyConfig{Kind: WriteThreshold, HotWriteLines: 2100}
	s := NewSweep("PR").Policies(Static, WearLevel).Knobs(tuned)
	got := s.Configs()
	if len(got) != 3 {
		t.Fatalf("Configs() = %d entries, want 3", len(got))
	}
	if got[0].Kind != Static || got[1].Kind != WearLevel {
		t.Errorf("policy entries out of order: %+v", got[:2])
	}
	if got[2].Kind != WriteThreshold || got[2].HotWriteLines != 2100 {
		t.Errorf("knob entry = %+v", got[2])
	}
	// Every entry is resolved: unset knobs at their defaults.
	for i, cfg := range got {
		if cfg.DRAMBudgetPages == 0 || cfg.MaxGroupsPerQuantum == 0 {
			t.Errorf("Configs()[%d] unresolved: %+v", i, cfg)
		}
	}
}

// TestSweepKnobsAlignment checks the configuration-major result
// layout for a Knobs dimension: Results[c*len(Specs())+i] must equal a
// direct WithPolicyConfig run of Specs()[i] under Configs()[c].
func TestSweepKnobsAlignment(t *testing.T) {
	p := New(WithScale(Quick))
	ctx := context.Background()
	loose := PolicyConfig{Kind: WriteThreshold, HotWriteLines: 2100}
	tight := PolicyConfig{Kind: WriteThreshold, HotWriteLines: 3000}
	sweep := NewSweep("PR").Collectors(KGN).Knobs(loose, tight)
	results, err := p.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	specs := sweep.Specs()
	if len(results) != 2*len(specs) {
		t.Fatalf("RunSweep returned %d results for %d specs x 2 knob configs", len(results), len(specs))
	}
	for c, cfg := range sweep.Configs() {
		direct, err := p.With(WithPolicyConfig(cfg)).Run(ctx, specs[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := results[c*len(specs)]; got.MigrationStallCycles != direct.MigrationStallCycles ||
			got.PagesMigrated != direct.PagesMigrated {
			t.Errorf("config %d (%+v): sweep result diverges from direct run", c, cfg)
		}
	}
	// The two knob points must actually differ, or the dimension is
	// not reaching the engine.
	if results[0].PagesMigrated == results[len(specs)].PagesMigrated {
		t.Errorf("both knob configs migrated %d pages; knobs not injected", results[0].PagesMigrated)
	}
}
