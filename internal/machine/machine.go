// Package machine models the commodity two-socket NUMA server the
// paper uses as its emulation platform (Fig 2): two Intel E5-2650L
// processors, each with 8 cores (2 hyperthreads each), private L1/L2
// caches, a 20 MB shared L3, and a QPI link between the sockets. Memory
// on socket 0 plays DRAM; memory on socket 1 plays PCM.
//
// The machine executes memory accesses issued by software threads.
// Every access runs through the issuing core's L1→L2→L3; misses and
// dirty-line writebacks are routed by physical address to the owning
// node's memory device, whose controller counts 64-byte line traffic —
// the quantity pcm-memory reports on the real platform. Per-thread
// cycle clocks advance under a fixed cost model, giving the simulated
// time base that turns write counts into write rates (MB/s).
//
// Everything is deterministic and single-goroutine-at-a-time; there is
// no wall-clock or global randomness anywhere in the model.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memdev"
)

// LineSize is the coherence and memory-transfer granularity in bytes.
const LineSize = 64

// Costs is the access cost model in core cycles per 64-byte line.
type Costs struct {
	Compute   float64 // one unit of pure computation
	L1Hit     float64
	L2Hit     float64
	L3Hit     float64
	MemLocal  float64 // L3 miss served by the local node
	MemRemote float64 // L3 miss served by the remote node over QPI
}

// DefaultCosts approximate the paper's Xeon E5-2650L at 1.8 GHz. The
// values are effective (throughput) costs, not raw load-to-use
// latencies: out-of-order cores overlap misses, so the local/remote
// gap seen by a streaming thread is far smaller than the raw QPI
// latency difference.
func DefaultCosts() Costs {
	return Costs{
		Compute:   1,
		L1Hit:     4,
		L2Hit:     12,
		L3Hit:     38,
		MemLocal:  180,
		MemRemote: 210,
	}
}

// Config describes the platform.
type Config struct {
	Sockets          int
	CoresPerSocket   int
	SMT              bool    // hyperthreading available (16 logical cores/socket pair)
	FreqHz           float64 // core frequency
	NodeBytes        uint64  // memory capacity per socket
	L1               cache.Config
	L2               cache.Config
	L3               cache.Config
	Costs            Costs
	TrackWear        bool // enable per-page wear histograms on the nodes
	TrackWindow      bool // enable per-page write window counters
	TrackWindowReads bool // additionally count reads in the window
}

// DefaultConfig is the paper's platform: 2 sockets x 8 cores x 2 HT,
// 132 GB evenly split, 32 KB L1D, 256 KB L2, 20 MB shared L3, 1.8 GHz.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 8,
		SMT:            true,
		FreqHz:         1.8e9,
		NodeBytes:      66 << 30,
		L1:             cache.Config{Name: "L1D", Bytes: 32 << 10, Ways: 8},
		L2:             cache.Config{Name: "L2", Bytes: 256 << 10, Ways: 8},
		L3:             cache.Config{Name: "L3", Bytes: 20 << 20, Ways: 20},
		Costs:          DefaultCosts(),
	}
}

type core struct {
	l1 *cache.Cache
	l2 *cache.Cache
}

type socket struct {
	l3    *cache.Cache
	cores []core
}

// QPIStats counts traffic crossing the inter-socket link.
type QPIStats struct {
	ReadLines  uint64
	WriteLines uint64
}

// Machine is one instance of the platform. Not safe for concurrent
// use: the kernel's cooperative scheduler guarantees a single runner.
type Machine struct {
	cfg     Config
	nodes   []*memdev.Device
	sockets []socket
	qpi     QPIStats
	// smtLoad is the number of software threads currently runnable on
	// each socket; when it exceeds the physical core count and SMT is
	// enabled, per-thread costs inflate by smtPenalty.
	smtLoad []int
}

// smtPenalty is the throughput cost multiplier when two hyperthreads
// share a physical core.
const smtPenalty = 1.35

// New builds a machine. It panics on an impossible topology, which is a
// configuration bug rather than a runtime error.
func New(cfg Config) *Machine {
	if cfg.Sockets <= 0 || cfg.CoresPerSocket <= 0 {
		panic(fmt.Sprintf("machine: bad topology %+v", cfg))
	}
	if cfg.FreqHz <= 0 {
		panic("machine: frequency must be positive")
	}
	m := &Machine{cfg: cfg, smtLoad: make([]int, cfg.Sockets)}
	for s := 0; s < cfg.Sockets; s++ {
		kind := memdev.DRAM
		if s > 0 {
			kind = memdev.PCM
		}
		m.nodes = append(m.nodes, memdev.New(memdev.Config{
			Kind:             kind,
			Bytes:            cfg.NodeBytes,
			TrackWear:        cfg.TrackWear,
			TrackWindow:      cfg.TrackWindow,
			TrackWindowReads: cfg.TrackWindowReads,
		}))
		sk := socket{l3: cache.New(cfg.L3)}
		for c := 0; c < cfg.CoresPerSocket; c++ {
			sk.cores = append(sk.cores, core{
				l1: cache.New(cfg.L1),
				l2: cache.New(cfg.L2),
			})
		}
		m.sockets = append(m.sockets, sk)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Node returns the memory device of the given NUMA node.
func (m *Machine) Node(i int) *memdev.Device { return m.nodes[i] }

// Nodes reports the number of NUMA nodes.
func (m *Machine) Nodes() int { return len(m.nodes) }

// QPI returns the cumulative inter-socket traffic counters.
func (m *Machine) QPI() QPIStats { return m.qpi }

// L3 exposes a socket's shared cache, for tests and diagnostics.
func (m *Machine) L3(socket int) *cache.Cache { return m.sockets[socket].l3 }

// homeNode maps a physical address to its owning NUMA node.
func (m *Machine) homeNode(pa uint64) int {
	n := int(pa / m.cfg.NodeBytes)
	if n >= len(m.nodes) {
		n = len(m.nodes) - 1
	}
	return n
}

// memWrite routes a line writeback to its home node, counting QPI
// traffic when the writing socket is not the home socket.
func (m *Machine) memWrite(fromSocket int, pa uint64) {
	node := m.homeNode(pa)
	m.nodes[node].Write(pa%m.cfg.NodeBytes, 1)
	if node != fromSocket {
		m.qpi.WriteLines++
	}
}

// MigratePage copies one 4 KB page between physical frames at device
// level — the kernel's non-temporal page-migration copy, which streams
// past the caches. Both memory controllers count the traffic, and a
// cross-socket copy crosses the interconnect once (counted on the QPI
// read side, as the data leaves the source socket). Lines of the old
// frame still resident in a cache are not invalidated; a later
// writeback of such a line lands on the frame's next owner, which is
// the same aliasing a real migration without cache flushing exhibits.
func (m *Machine) MigratePage(srcPA, dstPA uint64) {
	const lines = 4096 / LineSize
	sn, dn := m.homeNode(srcPA), m.homeNode(dstPA)
	m.nodes[sn].Read(srcPA%m.cfg.NodeBytes, lines)
	m.nodes[dn].Write(dstPA%m.cfg.NodeBytes, lines)
	if sn != dn {
		m.qpi.ReadLines += lines
	}
	// Neither the released frame's stale heat nor the copy's own
	// writes should read as mutator heat next quantum.
	m.nodes[sn].ClearWindowPage(srcPA % m.cfg.NodeBytes)
	m.nodes[dn].ClearWindowPage(dstPA % m.cfg.NodeBytes)
}

// memRead routes a line fill from its home node.
func (m *Machine) memRead(fromSocket int, pa uint64) {
	node := m.homeNode(pa)
	m.nodes[node].Read(pa%m.cfg.NodeBytes, 1)
	if node != fromSocket {
		m.qpi.ReadLines++
	}
}

// ResetCounters zeroes node and QPI counters (cache contents and cache
// statistics are preserved: the replay harness resets counters between
// the warmup and measured iterations without disturbing cache state).
func (m *Machine) ResetCounters() {
	for _, n := range m.nodes {
		n.ResetCounters()
	}
	m.qpi = QPIStats{}
}

// Thread is a software execution context bound to a socket and core.
// Its clock advances with every access; Seconds() gives simulated time.
type Thread struct {
	m *Machine
	// Name identifies the thread in diagnostics.
	Name string
	// Socket and Core are the binding; the paper binds all application
	// and JVM threads to socket 0 (or socket 1 for PCM-Only rate
	// measurements) and never pins to specific cores, so core choice
	// is made by the caller (the kernel scheduler).
	Socket int
	Core   int
	// clock is the thread's cycle count.
	clock float64
	// Parallelism models intra-process thread-level parallelism: the
	// paper runs each application with 4 application threads (2 GC
	// threads during collection). The platform executes the process
	// as one deterministic op stream whose clock advances at 1/P of
	// the single-thread cost. 0 or 1 means sequential.
	Parallelism float64
}

// NewThread creates a thread bound to the given socket and core.
func (m *Machine) NewThread(name string, socketID, coreID int) *Thread {
	if socketID < 0 || socketID >= len(m.sockets) {
		panic(fmt.Sprintf("machine: no socket %d", socketID))
	}
	if coreID < 0 || coreID >= len(m.sockets[socketID].cores) {
		panic(fmt.Sprintf("machine: no core %d on socket %d", coreID, socketID))
	}
	return &Thread{m: m, Name: name, Socket: socketID, Core: coreID, Parallelism: 1}
}

// SetRunnable adjusts the socket's runnable-thread count used for the
// SMT contention penalty. The kernel scheduler calls this as processes
// start and finish.
func (m *Machine) SetRunnable(socketID, n int) {
	m.smtLoad[socketID] = n
}

// costScale returns the cost multiplier for a thread: SMT contention
// divided by intra-process parallelism.
func (t *Thread) costScale() float64 {
	scale := 1.0
	load := t.m.smtLoad[t.Socket]
	cores := t.m.cfg.CoresPerSocket
	if load > cores {
		if t.m.cfg.SMT {
			scale *= smtPenalty
		} else {
			// Without SMT, oversubscription timeslices: throughput
			// halves as two threads share one core.
			scale *= float64(load) / float64(cores)
		}
	}
	p := t.Parallelism
	if p < 1 {
		p = 1
	}
	return scale / p
}

// advance adds cost cycles (scaled) to the thread clock.
func (t *Thread) advance(cost float64) {
	t.clock += cost * t.costScale()
}

// Cycles returns the thread's cycle clock.
func (t *Thread) Cycles() float64 { return t.clock }

// Seconds returns the thread's clock in simulated seconds.
func (t *Thread) Seconds() float64 { return t.clock / t.m.cfg.FreqHz }

// Compute advances the clock by n compute units without touching
// memory. Applications use it to model the non-memory part of their
// instruction mix, which sets the compute-to-write ratio that the
// paper's write rates (MB/s) depend on.
func (t *Thread) Compute(n int) {
	t.advance(float64(n) * t.m.cfg.Costs.Compute)
}

// ComputeCycles advances the clock by a raw cycle cost (still subject
// to the contention/parallelism scale). The kernel uses it for trap and
// fault overheads.
func (t *Thread) ComputeCycles(c float64) {
	t.advance(c)
}

// writebackL2 installs a dirty line evicted from L1 into L2, cascading
// any L2 victim toward L3. Writeback installs do not read memory.
func (t *Thread) writebackL2(co *core, sk *socket, addr uint64) {
	_, v := co.l2.Access(addr, true)
	if v.Valid && v.Dirty {
		t.writebackL3(sk, v.LineAddr)
	}
}

// writebackL3 installs a dirty line evicted from L2 into the socket's
// shared L3; a dirty L3 victim finally reaches a memory controller.
func (t *Thread) writebackL3(sk *socket, addr uint64) {
	_, v := sk.l3.Access(addr, true)
	if v.Valid && v.Dirty {
		t.m.memWrite(t.Socket, v.LineAddr)
	}
}

// accessLine performs one line access through the thread's cache
// hierarchy, cascading writebacks toward memory. This is the hot path
// of the entire platform.
func (t *Thread) accessLine(pa uint64, write bool) {
	m := t.m
	costs := &m.cfg.Costs
	sk := &m.sockets[t.Socket]
	co := &sk.cores[t.Core]

	hit, v1 := co.l1.Access(pa, write)
	if hit {
		t.advance(costs.L1Hit)
		return
	}
	if v1.Valid && v1.Dirty {
		t.writebackL2(co, sk, v1.LineAddr)
	}

	hit2, v2 := co.l2.Access(pa, false)
	if v2.Valid && v2.Dirty {
		t.writebackL3(sk, v2.LineAddr)
	}
	if hit2 {
		t.advance(costs.L2Hit)
		return
	}

	hit3, v3 := sk.l3.Access(pa, false)
	if v3.Valid && v3.Dirty {
		m.memWrite(t.Socket, v3.LineAddr)
	}
	if hit3 {
		t.advance(costs.L3Hit)
		return
	}

	// L3 miss: fill from the home node's memory.
	m.memRead(t.Socket, pa)
	if m.homeNode(pa) == t.Socket {
		t.advance(costs.MemLocal)
	} else {
		t.advance(costs.MemRemote)
	}
}

// Access performs a read or write of size bytes at physical address pa,
// touching every 64-byte line the range covers.
func (t *Thread) Access(pa uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	first := pa &^ uint64(LineSize-1)
	last := (pa + uint64(size) - 1) &^ uint64(LineSize-1)
	for line := first; ; line += LineSize {
		t.accessLine(line, write)
		if line == last {
			break
		}
	}
}

// AccessLines touches n consecutive lines starting at the line holding
// pa. It is the bulk path used for zeroing, copying, and scanning.
func (t *Thread) AccessLines(pa uint64, n int, write bool) {
	line := pa &^ uint64(LineSize-1)
	for i := 0; i < n; i++ {
		t.accessLine(line, write)
		line += LineSize
	}
}

// DrainCaches flushes every cache on every socket, sending dirty lines
// to their home nodes. The writer socket for QPI accounting is the
// cache's own socket. Used by tests and end-of-run accounting; the
// replay harness does not need it because it measures deltas over a
// long iteration.
func (m *Machine) DrainCaches() {
	for s := range m.sockets {
		sk := &m.sockets[s]
		for c := range sk.cores {
			for _, addr := range sk.cores[c].l1.Flush() {
				_, v := sk.cores[c].l2.Access(addr, true)
				if v.Valid && v.Dirty {
					_, v3 := sk.l3.Access(v.LineAddr, true)
					if v3.Valid && v3.Dirty {
						m.memWrite(s, v3.LineAddr)
					}
				}
			}
			for _, addr := range sk.cores[c].l2.Flush() {
				_, v3 := sk.l3.Access(addr, true)
				if v3.Valid && v3.Dirty {
					m.memWrite(s, v3.LineAddr)
				}
			}
		}
		for _, addr := range sk.l3.Flush() {
			m.memWrite(s, addr)
		}
	}
}
