package objmodel

import (
	"testing"
	"testing/quick"
)

func TestSpaceStrings(t *testing.T) {
	cases := map[SpaceID]string{
		SpaceBoot:       "boot",
		SpaceNursery:    "nursery",
		SpaceObserver:   "observer",
		SpaceMatureDRAM: "mature-dram",
		SpaceMaturePCM:  "mature-pcm",
		SpaceLargeDRAM:  "large-dram",
		SpaceLargePCM:   "large-pcm",
		SpaceMetaDRAM:   "meta-dram",
		SpaceMetaPCM:    "meta-pcm",
	}
	for id, want := range cases {
		if id.String() != want {
			t.Errorf("%d.String() = %q, want %q", id, id.String(), want)
		}
	}
}

func TestAllocGetFree(t *testing.T) {
	tb := NewTable()
	id := tb.Alloc(0x1000, 64, SpaceNursery, 2)
	if id == Nil {
		t.Fatal("Alloc returned nil id")
	}
	o := tb.Get(id)
	if o.Addr != 0x1000 || o.Size != 64 || o.Space != SpaceNursery || o.NumRefs() != 2 {
		t.Errorf("object = %+v", o)
	}
	if tb.Live() != 1 {
		t.Errorf("Live = %d, want 1", tb.Live())
	}
	tb.Free(id)
	if tb.Live() != 0 {
		t.Errorf("Live after free = %d, want 0", tb.Live())
	}
	// Slot reuse.
	id2 := tb.Alloc(0x2000, 32, SpaceMaturePCM, 0)
	if id2 != id {
		t.Errorf("expected slot reuse, got %d (was %d)", id2, id)
	}
}

func TestGetInvalidPanics(t *testing.T) {
	tb := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("Get(Nil) should panic")
		}
	}()
	tb.Get(Nil)
}

func TestRefsInlineAndOverflow(t *testing.T) {
	tb := NewTable()
	id := tb.Alloc(0x1000, 256, SpaceNursery, 7) // 4 inline + 3 overflow
	o := tb.Get(id)
	for i := 0; i < 7; i++ {
		o.SetRef(i, ObjID(i+100))
	}
	for i := 0; i < 7; i++ {
		if o.Ref(i) != ObjID(i+100) {
			t.Errorf("Ref(%d) = %d, want %d", i, o.Ref(i), i+100)
		}
	}
}

func TestRefSlotAddr(t *testing.T) {
	tb := NewTable()
	id := tb.Alloc(0x1000, 64, SpaceNursery, 3)
	o := tb.Get(id)
	if got := o.RefSlotAddr(0); got != 0x1000+HeaderBytes {
		t.Errorf("slot 0 addr = %#x", got)
	}
	if got := o.RefSlotAddr(2); got != 0x1000+HeaderBytes+2*RefBytes {
		t.Errorf("slot 2 addr = %#x", got)
	}
}

func TestMarkEpochs(t *testing.T) {
	tb := NewTable()
	o := tb.Get(tb.Alloc(0x1000, 64, SpaceNursery, 0))
	if o.Marked(1) {
		t.Error("fresh object should be unmarked in epoch 1")
	}
	o.SetMark(1)
	if !o.Marked(1) {
		t.Error("object should be marked in epoch 1")
	}
	if o.Marked(2) {
		t.Error("epoch 2 should not see epoch-1 marks")
	}
}

func TestFlags(t *testing.T) {
	tb := NewTable()
	o := tb.Get(tb.Alloc(0x1000, 64, SpaceLargePCM, 0))
	o.Flags |= FlagLarge | FlagWritten
	if o.Flags&FlagLarge == 0 || o.Flags&FlagWritten == 0 {
		t.Error("flags not set")
	}
	o.Flags &^= FlagWritten
	if o.Flags&FlagWritten != 0 {
		t.Error("FlagWritten not cleared")
	}
	if o.Flags&FlagLarge == 0 {
		t.Error("FlagLarge lost while clearing FlagWritten")
	}
}

// Property: live count equals allocs minus frees, and freed slots are
// recycled before the table grows.
func TestTableAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		tb := NewTable()
		var ids []ObjID
		allocs, frees := 0, 0
		for _, alloc := range ops {
			if alloc || len(ids) == 0 {
				ids = append(ids, tb.Alloc(0x1000, 64, SpaceNursery, 1))
				allocs++
			} else {
				id := ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				tb.Free(id)
				frees++
			}
		}
		return tb.Live() == allocs-frees
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: reference slots hold exactly what was stored, for any slot
// count up to 16.
func TestRefsRoundtripProperty(t *testing.T) {
	f := func(n uint8, vals []uint32) bool {
		nrefs := int(n % 16)
		tb := NewTable()
		o := tb.Get(tb.Alloc(0x1000, 64, SpaceNursery, nrefs))
		want := make([]ObjID, nrefs)
		for i := 0; i < nrefs && i < len(vals); i++ {
			want[i] = ObjID(vals[i])
			o.SetRef(i, want[i])
		}
		for i := 0; i < nrefs; i++ {
			if o.Ref(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
