package kernel

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
)

func testMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.NodeBytes = 256 << 20
	cfg.L1 = cache.Config{Name: "L1", Bytes: 1 << 10, Ways: 2}
	cfg.L2 = cache.Config{Name: "L2", Bytes: 4 << 10, Ways: 4}
	cfg.L3 = cache.Config{Name: "L3", Bytes: 16 << 10, Ways: 4}
	return machine.New(cfg)
}

func simOS() Config {
	return Config{EmulateOS: false}
}

func TestMMapAndAccess(t *testing.T) {
	k := New(testMachine(), simOS())
	var resident uint64
	p := k.NewProcess("t", 0, func(p *Process) {
		if err := p.AS.MMap(0x10000000, 1<<20, 0); err != nil {
			t.Errorf("mmap: %v", err)
		}
		p.Access(0x10000000, 64, true)
		resident = p.AS.Resident
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if resident != 1 {
		t.Errorf("resident pages = %d, want 1", resident)
	}
}

func TestSegfault(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		p.Access(0xDEAD0000, 8, false)
	})
	err := k.RunSolo(p, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "segmentation fault") {
		t.Errorf("err = %v, want segmentation fault", err)
	}
}

func TestMMapRejectsOverlapAndKernelRange(t *testing.T) {
	k := New(testMachine(), simOS())
	as := newAddressSpace(k)
	if err := as.MMap(0x1000, 0x2000, NodeFirstTouch); err != nil {
		t.Fatalf("mmap: %v", err)
	}
	if err := as.MMap(0x2000, 0x1000, NodeFirstTouch); err == nil {
		t.Error("overlapping mmap should fail")
	}
	if err := as.MMap(KernelBase-0x1000, 0x2000, NodeFirstTouch); err == nil {
		t.Error("mmap into kernel range should fail")
	}
	if err := as.MMap(0x1001, 0x1000, NodeFirstTouch); err == nil {
		t.Error("unaligned mmap should fail")
	}
}

func TestMBindPlacesPagesOnNode(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		const base, size = 0x20000000, uint64(1 << 20)
		if err := p.AS.MMap(base, size, NodeFirstTouch); err != nil {
			panic(err)
		}
		if err := p.AS.MBind(base, size, 1); err != nil {
			panic(err)
		}
		// Stream writes over 4x the L3 to force evictions to node 1.
		for i := uint64(0); i < 64<<10; i += 64 {
			p.Access(base+i, 8, true)
		}
		for i := uint64(0); i < 64<<10; i += 64 {
			p.Access(base+i, 8, true)
		}
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if k.Machine().Node(1).WriteLines() == 0 {
		t.Error("bound pages should write back to node 1")
	}
	if k.Machine().Node(0).WriteLines() != 0 {
		t.Error("no traffic should reach node 0")
	}
}

func TestMBindSplitsVMA(t *testing.T) {
	k := New(testMachine(), simOS())
	as := newAddressSpace(k)
	if err := as.MMap(0x1000, 0x4000, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.MBind(0x2000, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if n, _ := as.policyFor(0x1000); n != 0 {
		t.Errorf("policy before split range = %d, want 0", n)
	}
	if n, _ := as.policyFor(0x2800); n != 1 {
		t.Errorf("policy in split range = %d, want 1", n)
	}
	if n, _ := as.policyFor(0x3000); n != 0 {
		t.Errorf("policy after split range = %d, want 0", n)
	}
	if err := as.MBind(0x900000, 0x1000, 1); err == nil {
		t.Error("mbind of unmapped range should fail")
	}
}

func TestFirstTouchPolicy(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 1, func(p *Process) { // thread on socket 1
		if err := p.AS.MMap(0x30000000, 1<<20, NodeFirstTouch); err != nil {
			panic(err)
		}
		for i := uint64(0); i < 64<<10; i += 64 {
			p.Access(0x30000000+i, 8, true)
		}
		for i := uint64(0); i < 64<<10; i += 64 {
			p.Access(0x30000000+i, 8, true)
		}
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if k.Machine().Node(1).WriteLines() == 0 {
		t.Error("first-touch from socket 1 should place pages on node 1")
	}
	if k.Machine().Node(0).WriteLines() != 0 {
		t.Error("node 0 should be untouched")
	}
}

func TestPageZeroingOnlyInEmulateOS(t *testing.T) {
	run := func(osCfg Config) uint64 {
		k := New(testMachine(), osCfg)
		p := k.NewProcess("t", 0, func(p *Process) {
			if err := p.AS.MMap(0x10000000, 1<<20, 0); err != nil {
				panic(err)
			}
			p.Access(0x10000000, 8, false) // single cold read
		})
		if err := k.RunSolo(p, RunConfig{}); err != nil {
			t.Fatal(err)
		}
		return k.ZeroedPages()
	}
	if got := run(simOS()); got != 0 {
		t.Errorf("sim mode zeroed %d pages, want 0", got)
	}
	if got := run(DefaultConfig()); got != 1 {
		t.Errorf("emulate-OS mode zeroed %d pages, want 1", got)
	}
}

func TestMUnmapReleasesFrames(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		if err := p.AS.MMap(0x10000000, PageSize, 0); err != nil {
			panic(err)
		}
		p.Access(0x10000000, 8, true)
		if err := p.AS.MUnmap(0x10000000, PageSize); err != nil {
			panic(err)
		}
		if p.AS.Resident != 0 {
			t.Errorf("resident after munmap = %d", p.AS.Resident)
		}
		if err := p.AS.MUnmap(0x10000000, PageSize); err == nil {
			t.Error("double munmap should fail")
		}
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerInterleavesByClock(t *testing.T) {
	k := New(testMachine(), simOS())
	order := []string{}
	mk := func(name string, work int) *Process {
		return k.NewProcess(name, 0, func(p *Process) {
			for i := 0; i < work; i++ {
				p.Compute(50_000) // one quantum each iteration
				order = append(order, name)
			}
		})
	}
	a := mk("a", 4)
	b := mk("b", 4)
	if err := k.Run([]*Process{a, b}, RunConfig{QuantumCycles: 40_000}); err != nil {
		t.Fatal(err)
	}
	// Min-clock scheduling must alternate a and b rather than running
	// one to completion.
	if order[0] == order[1] && order[1] == order[2] {
		t.Errorf("scheduler did not interleave: %v", order)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	k := New(testMachine(), simOS())
	barriers := 0
	after := []string{}
	mk := func(name string, pre int) *Process {
		return k.NewProcess(name, 0, func(p *Process) {
			p.Compute(pre)
			p.Barrier()
			after = append(after, name)
		})
	}
	// b has far more pre-barrier work than a.
	a := mk("a", 1000)
	b := mk("b", 900_000)
	err := k.Run([]*Process{a, b}, RunConfig{
		QuantumCycles: 10_000,
		OnBarrier:     func() { barriers++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if barriers != 1 {
		t.Errorf("OnBarrier fired %d times, want 1", barriers)
	}
	if len(after) != 2 {
		t.Errorf("post-barrier work ran %d times, want 2", len(after))
	}
}

func TestProcessPanicBecomesError(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		panic("deliberate")
	})
	err := k.RunSolo(p, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("err = %v, want panic text", err)
	}
}

func TestNoiseInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoisePeriodSec = 1e-6 // very frequent for the test
	k := New(testMachine(), cfg)
	p := k.NewProcess("t", 0, func(p *Process) {
		p.Compute(10_000_000) // ~5.5 ms of simulated time
	})
	if err := k.RunSolo(p, RunConfig{QuantumCycles: 10_000}); err != nil {
		t.Fatal(err)
	}
	if k.Machine().Node(0).WriteLines() == 0 {
		t.Error("kernel noise should write to node 0")
	}
}

func TestOnQuantumReportsAdvancingTime(t *testing.T) {
	k := New(testMachine(), simOS())
	var times []float64
	p := k.NewProcess("t", 0, func(p *Process) {
		for i := 0; i < 10; i++ {
			p.Compute(100_000)
		}
	})
	err := k.RunSolo(p, RunConfig{
		QuantumCycles: 50_000,
		OnQuantum:     func(now float64) { times = append(times, now) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 2 {
		t.Fatalf("OnQuantum fired %d times", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Errorf("time went backwards: %v", times)
		}
	}
}

func TestOOMIsReported(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NodeBytes = 1 << 20 // 1 MB per node
	cfg.L1 = cache.Config{Name: "L1", Bytes: 1 << 10, Ways: 2}
	cfg.L2 = cache.Config{Name: "L2", Bytes: 4 << 10, Ways: 4}
	cfg.L3 = cache.Config{Name: "L3", Bytes: 16 << 10, Ways: 4}
	k := New(machine.New(cfg), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		if err := p.AS.MMap(0x10000000, 4<<20, 0); err != nil {
			panic(err)
		}
		for off := uint64(0); off < 4<<20; off += PageSize {
			p.Access(0x10000000+off, 8, true)
		}
	})
	err := k.RunSolo(p, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "out of physical memory") {
		t.Errorf("err = %v, want OOM", err)
	}
}

func TestLookupDoesNotFault(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		if err := p.AS.MMap(0x10000000, 1<<20, 0); err != nil {
			t.Errorf("mmap: %v", err)
		}
		if _, ok := p.AS.Lookup(0x10000000); ok {
			t.Error("Lookup reported an untouched page resident")
		}
		if p.AS.Resident != 0 {
			t.Error("Lookup faulted a page in")
		}
		p.Access(0x10000000, 8, true)
		pa, ok := p.AS.Lookup(0x10000000 + 8)
		if !ok {
			t.Error("Lookup missed a resident page")
		}
		if pa%PageSize != 8 {
			t.Errorf("Lookup offset = %d, want 8", pa%PageSize)
		}
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestMovePagesMigratesAndCharges(t *testing.T) {
	m := testMachine()
	cfg := simOS()
	cfg.MigrationPageCycles = 1000
	cfg.TLBShootdownCycles = 5000
	k := New(m, cfg)
	p := k.NewProcess("t", 0, func(p *Process) {
		const base, length = uint64(0x10000000), uint64(16 * PageSize)
		if err := p.AS.MMap(base, length, 1); err != nil {
			t.Errorf("mmap: %v", err)
		}
		for off := uint64(0); off < length; off += PageSize {
			p.Access(base+off, 8, true)
		}
		if got := p.AS.Residency(base, base+length); got[1] != 16 || got[0] != 0 {
			t.Fatalf("residency before = %v, want [0 16]", got)
		}
		before := p.Th.Cycles()
		r0Writes := m.Node(0).WriteLines()
		r1Reads := m.Node(1).ReadLines()

		moved, stall, err := p.MovePages(base, length, 1, 0)
		if err != nil {
			t.Fatalf("MovePages: %v", err)
		}
		if moved != 16 {
			t.Errorf("moved = %d, want 16", moved)
		}
		if want := 1000.0*16 + 5000; stall != want {
			t.Errorf("stall = %v, want %v", stall, want)
		}
		if p.Th.Cycles()-before < stall {
			t.Error("stall cycles were not charged to the thread")
		}
		if got := p.AS.Residency(base, base+length); got[0] != 16 || got[1] != 0 {
			t.Errorf("residency after = %v, want [16 0]", got)
		}
		// The copy traffic: 64 lines read per page on the source, 64
		// written per page on the destination.
		if got := m.Node(1).ReadLines() - r1Reads; got != 16*64 {
			t.Errorf("source reads = %d, want %d", got, 16*64)
		}
		if got := m.Node(0).WriteLines() - r0Writes; got != 16*64 {
			t.Errorf("destination writes = %d, want %d", got, 16*64)
		}
		// Pages already on the destination are left alone.
		moved, stall, err = p.MovePages(base, length, 1, 0)
		if err != nil || moved != 0 || stall != 0 {
			t.Errorf("second MovePages = (%d, %v, %v), want (0, 0, nil)", moved, stall, err)
		}
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestMovePagesRotationChangesFrames(t *testing.T) {
	k := New(testMachine(), simOS())
	p := k.NewProcess("t", 0, func(p *Process) {
		const base = uint64(0x10000000)
		if err := p.AS.MMap(base, 4*PageSize, 1); err != nil {
			t.Errorf("mmap: %v", err)
		}
		for off := uint64(0); off < 4*PageSize; off += PageSize {
			p.Access(base+off, 8, true)
		}
		before := make([]uint64, 4)
		for i := range before {
			before[i], _ = p.AS.Lookup(base + uint64(i)*PageSize)
		}
		moved, _, err := p.MovePages(base, 4*PageSize, 1, 1)
		if err != nil || moved != 4 {
			t.Fatalf("rotate = (%d, %v), want (4, nil)", moved, err)
		}
		for i := range before {
			after, ok := p.AS.Lookup(base + uint64(i)*PageSize)
			if !ok {
				t.Fatalf("page %d unmapped by rotation", i)
			}
			if after == before[i] {
				t.Errorf("page %d kept its frame %#x after rotation", i, after)
			}
			if k.homeNodeOf(after) != 1 {
				t.Errorf("page %d left node 1", i)
			}
		}
	})
	if err := k.RunSolo(p, RunConfig{}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelStopsScheduling pins the cooperative cancellation
// contract: closing RunConfig.Cancel stops the session between quanta,
// every process goroutine unwinds (no leaks — asserted by the -race
// run's goroutine accounting and by the run returning at all), and Run
// reports ErrCancelled.
func TestCancelStopsScheduling(t *testing.T) {
	k := New(testMachine(), simOS())
	cancel := make(chan struct{})
	endless := k.NewProcess("endless", 0, func(p *Process) {
		for {
			p.Compute(50_000)
		}
	})
	// A second endless process: after the cancel fires, both must come
	// back finished even though neither body ever returns.
	endless2 := k.NewProcess("endless2", 0, func(p *Process) {
		for {
			p.Compute(50_000)
		}
	})
	quanta := 0
	err := k.Run([]*Process{endless, endless2}, RunConfig{
		QuantumCycles: 40_000,
		Cancel:        cancel,
		OnQuantum: func(float64) {
			// Fires on the scheduler goroutine between timeslices —
			// exactly where the cancellation check runs.
			if quanta++; quanta == 3 {
				close(cancel)
			}
		},
	})
	if err != ErrCancelled {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	for _, p := range []*Process{endless, endless2} {
		if p.state != procFinished {
			t.Errorf("process %s state = %v after cancel, want finished", p.Name, p.state)
		}
	}
}

// TestNilCancelRunsToCompletion guards the default path: a RunConfig
// without a Cancel channel behaves exactly as before.
func TestNilCancelRunsToCompletion(t *testing.T) {
	k := New(testMachine(), simOS())
	done := false
	p := k.NewProcess("t", 0, func(p *Process) {
		p.Compute(200_000)
		done = true
	})
	if err := k.RunSolo(p, RunConfig{QuantumCycles: 10_000}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("body did not finish")
	}
}
