package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
)

// testHeader is a header for synthetic traces: write-threshold with a
// small promotion threshold, paper-default migration costs.
func testHeader() Header {
	h := Header{
		Key:                 "app=synth;gc=KG-N",
		App:                 "synth",
		Collector:           "KG-N",
		Instances:           1,
		Dataset:             "default",
		Mode:                "emulation",
		Seed:                7,
		MigrationPageCycles: 1200,
		TLBShootdownCycles:  4000,
	}
	h.SetPolicyConfig(policy.Config{Kind: policy.WriteThreshold, HotWriteLines: 100})
	return h
}

// synthView builds a view with one hot PCM group (promotion bait for
// write-threshold) and one cold DRAM group.
func synthView(q uint64, hotWrites uint64) policy.View {
	return policy.View{
		Quantum: q,
		Groups: []policy.GroupStat{
			{Addr: 0x10000, Node: policy.DRAMNode, Pages: 16, WriteLines: 1},
			{Addr: 0x20000, Node: policy.PCMNode, Pages: 16, WriteLines: hotWrites},
		},
		DRAMPages: 16,
		PCMPages:  16,
	}
}

// record builds a synthetic trace: n quanta, every view identical, the
// recorded actions being what write-threshold decides (so replaying
// write-threshold matches bit-identically).
func record(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(policy.WriteThreshold.String())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testHeader().PolicyConfig()
	for q := 1; q <= n; q++ {
		v := synthView(uint64(q), 500)
		actions := pol.Decide(v, cfg)
		exec := make([]policy.Exec, len(actions))
		for i := range actions {
			exec[i] = policy.Exec{Moved: 16, Stall: 16*1200 + 4000}
		}
		rec.OnQuantum("synth#0", v, actions, exec)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Quanta(); got != uint64(n) {
		t.Fatalf("recorder counted %d quanta, want %d", got, n)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := record(t, 3)
	r := NewReader(bytes.NewReader(data))
	h, err := r.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.App != "synth" || h.Policy != "write-threshold" {
		t.Errorf("header round trip: %+v", h)
	}
	want := testHeader()
	want.Version = Version
	if h != want {
		t.Errorf("header = %+v, want %+v", h, want)
	}
	if got, want := h.PolicyConfig().HotWriteLines, uint64(100); got != want {
		t.Errorf("PolicyConfig hot = %d, want %d", got, want)
	}
	for q := 1; q <= 3; q++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Q != uint64(q) || rec.Proc != "synth#0" {
			t.Errorf("record %d: q=%d proc=%q", q, rec.Q, rec.Proc)
		}
		if !reflect.DeepEqual(rec.View, synthView(uint64(q), 500)) {
			t.Errorf("record %d: view did not round trip: %+v", q, rec.View)
		}
		if len(rec.Actions) == 0 || len(rec.Exec) != len(rec.Actions) {
			t.Errorf("record %d: %d actions, %d exec", q, len(rec.Actions), len(rec.Exec))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("clean end err = %v, want io.EOF", err)
	}
}

func TestReplayReproducesRecordedActions(t *testing.T) {
	data := record(t, 4)
	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, err := Replay(bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !st.MatchesRecorded {
		t.Errorf("same-policy replay diverged at quantum %d", st.FirstMismatchQuantum)
	}
	if st.Quanta != 4 {
		t.Errorf("quanta = %d, want 4", st.Quanta)
	}
	// Matching quanta charge the recorded executed costs: the first
	// quantum promotes the hot group (16 pages); later quanta see it
	// recorded on PCM again (identical synthetic views), so every
	// quantum re-promotes.
	if st.PagesMigrated != 4*16 {
		t.Errorf("migrated = %d, want %d", st.PagesMigrated, 4*16)
	}
	if st.StallCycles != 4*(16*1200+4000) {
		t.Errorf("stall = %g, want %d", st.StallCycles, 4*(16*1200+4000))
	}
	// The hot group is replayed onto DRAM at quantum 1, so its later
	// window writes land on DRAM: only quantum 1's 500 lines count.
	if st.PCMWriteLines != 500 {
		t.Errorf("replayed PCM writes = %d, want 500", st.PCMWriteLines)
	}
	if st.BaselinePCMWriteLines != 4*500 {
		t.Errorf("baseline PCM writes = %d, want %d", st.BaselinePCMWriteLines, 4*500)
	}
	if got := st.PCMWriteReduction(); got <= 0.7 {
		t.Errorf("reduction = %g, want > 0.7", got)
	}
}

func TestReplayDivergentPolicyEstimates(t *testing.T) {
	data := record(t, 2)
	// first-touch never migrates, so it diverges from the recorded
	// write-threshold actions at the first quantum.
	pol, _ := policy.NewPolicy(policy.FirstTouch.String())
	st, err := Replay(bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if st.MatchesRecorded || st.FirstMismatchQuantum != 1 {
		t.Errorf("expected divergence at quantum 1, got %+v", st)
	}
	if st.Actions != 0 || st.PagesMigrated != 0 {
		t.Errorf("first-touch replay migrated: %+v", st)
	}
	// Without migrations the replayed placement is the baseline.
	if st.PCMWriteLines != st.BaselinePCMWriteLines {
		t.Errorf("no-migration replay PCM writes %d != baseline %d",
			st.PCMWriteLines, st.BaselinePCMWriteLines)
	}
}

func TestEmptyTraceIsCorrupt(t *testing.T) {
	for _, src := range []string{"", "\n\n"} {
		r := NewReader(strings.NewReader(src))
		if _, err := r.Header(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("empty trace %q: err = %v, want ErrCorrupt", src, err)
		}
		pol, _ := policy.NewPolicy(policy.Static.String())
		if _, err := Replay(strings.NewReader(src), pol); !errors.Is(err, ErrCorrupt) {
			t.Errorf("empty trace %q replay err = %v, want ErrCorrupt", src, err)
		}
	}
}

func TestVersionRejected(t *testing.T) {
	data := record(t, 1)
	// Rewrite the header's version field only.
	skewed := bytes.Replace(data, []byte(`{"version":1,`), []byte(`{"version":99,`), 1)
	if bytes.Equal(skewed, data) {
		t.Fatal("version field not found in header")
	}
	r := NewReader(bytes.NewReader(skewed))
	if _, err := r.Header(); !errors.Is(err, ErrVersion) {
		t.Errorf("version 99 err = %v, want ErrVersion", err)
	}
	// The error latches: Next keeps failing the same way.
	if _, err := r.Next(); !errors.Is(err, ErrVersion) {
		t.Errorf("Next after bad header err = %v, want ErrVersion", err)
	}
	// A missing version field reads as version 0: unknown, rejected.
	noVersion := bytes.Replace(data, []byte(`{"version":1,`), []byte(`{`), 1)
	if _, err := NewReader(bytes.NewReader(noVersion)).Header(); !errors.Is(err, ErrVersion) {
		t.Errorf("versionless header err = %v, want ErrVersion", err)
	}
}

func TestGarbageMidFileReportsLineAndPreservesPrefix(t *testing.T) {
	data := record(t, 3)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// lines: header, q1, q2, q3, "" — corrupt q2 (file line 3).
	lines[2] = []byte("{\"q\": not json at all}\n")
	corrupted := bytes.Join(lines, nil)

	r := NewReader(bytes.NewReader(corrupted))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("prefix record: %v", err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage line err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if r.Line() != 3 {
		t.Errorf("Line() = %d, want 3", r.Line())
	}
	// The latch holds.
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err after corruption = %v, want latched ErrCorrupt", err)
	}

	// Replay of the valid prefix still works: one quantum's stats.
	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, rerr := Replay(bytes.NewReader(corrupted), pol)
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("replay err = %v, want ErrCorrupt", rerr)
	}
	if st.Quanta != 1 || st.PagesMigrated != 16 || !st.MatchesRecorded {
		t.Errorf("prefix replay stats = %+v, want 1 matching quantum", st)
	}
}

func TestTruncatedTailReportsLineAndPreservesPrefix(t *testing.T) {
	data := record(t, 2)
	// Chop the final record mid-line: the crash-mid-append signature.
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1 + 10
	truncated := data[:cut]

	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, err := Replay(bytes.NewReader(truncated), pol)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if st.Quanta != 1 || st.PagesMigrated != 16 {
		t.Errorf("prefix replay stats = %+v, want the intact first quantum", st)
	}
}

// failingWriter fails every write after the first n bytes.
type failingWriter struct {
	n int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("sink full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestRecorderLatchesWriteErrors(t *testing.T) {
	if _, err := NewRecorder(&failingWriter{}, testHeader()); err == nil {
		t.Error("unwritable header must fail NewRecorder")
	}
	rec, err := NewRecorder(&failingWriter{n: 4096}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= 100; q++ {
		rec.OnQuantum("p", synthView(uint64(q), 500), nil, nil)
	}
	if rec.Err() == nil {
		t.Error("write failure did not latch")
	}
	if rec.Quanta() >= 100 {
		t.Error("quanta kept counting past the failure")
	}
}

func TestReplayNilPolicy(t *testing.T) {
	if _, err := Replay(bytes.NewReader(record(t, 1)), nil); err == nil {
		t.Error("nil policy must fail")
	}
}

// TestReplayWithOverridesKnobs pins the knob-injection contract at the
// trace layer: the recorded knobs promote the synthetic hot group
// (writes 500 >= hot 100), an injected hot threshold above the heat
// suppresses the promotion entirely, and injecting exactly the
// recorded knobs is indistinguishable from the header-knob replay.
func TestReplayWithOverridesKnobs(t *testing.T) {
	data := record(t, 3)
	pol, err := policy.NewPolicy(policy.WriteThreshold.String())
	if err != nil {
		t.Fatal(err)
	}

	recorded, err := Replay(bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	same, err := ReplayWith(bytes.NewReader(data), pol, testHeader().PolicyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, recorded) {
		t.Errorf("recorded-knob injection diverged:\n%+v\nvs\n%+v", same, recorded)
	}
	if !same.MatchesRecorded || same.Actions == 0 {
		t.Errorf("recorded-knob injection lost the differential invariant: %+v", same)
	}

	cold, err := ReplayWith(bytes.NewReader(data), pol,
		policy.Config{Kind: policy.WriteThreshold, HotWriteLines: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Actions != 0 || cold.PagesMigrated != 0 {
		t.Errorf("hot=1000 should suppress every promotion, got %+v", cold)
	}
	if cold.MatchesRecorded {
		t.Error("divergent knobs still reported MatchesRecorded")
	}
	// With no promotions, the hot group's writes stay on PCM: the
	// replayed placement equals the no-migration baseline.
	if cold.PCMWriteLines != cold.BaselinePCMWriteLines {
		t.Errorf("no-promotion replay PCM writes = %d, baseline %d",
			cold.PCMWriteLines, cold.BaselinePCMWriteLines)
	}
	if recorded.PCMWriteLines >= cold.PCMWriteLines {
		t.Errorf("recorded knobs should beat the no-promotion placement: %d vs %d",
			recorded.PCMWriteLines, cold.PCMWriteLines)
	}
}
