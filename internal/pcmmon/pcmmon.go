// Package pcmmon is the platform's analogue of the pcm-memory utility
// from Intel's Performance Counter Monitor framework, with the paper's
// two modifications: support for multiprogrammed workloads (all
// instances barrier-synchronize before the measured iteration) and
// compatibility with replay compilation (counters are snapshotted at
// the start of the measured iteration).
//
// The monitor runs on socket 0 — the paper found that scheduling it
// there gives more deterministic measurements — and, like the real
// tool, perturbs the socket it runs on: every sample writes a few
// lines of its own bookkeeping to node 0. Emulation experiments must
// isolate such system-level effects exactly as the paper's reference
// setup does.
package pcmmon

import (
	"repro/internal/machine"
	"repro/internal/memdev"
)

// Sample is one periodic reading of both sockets' memory-controller
// counters.
type Sample struct {
	TimeSec float64
	Nodes   []memdev.Snapshot
}

// Config controls the monitor.
type Config struct {
	// PeriodSec is the sampling period in simulated seconds.
	PeriodSec float64
	// SelfNoiseLines is the monitor's own write traffic per sample.
	SelfNoiseLines int
	// NoiseNode is where the monitor's writes land (socket 0 in the
	// paper's setup).
	NoiseNode int
}

// DefaultConfig matches the paper's usage: 10 ms sampling, monitor on
// socket 0.
func DefaultConfig() Config {
	return Config{PeriodSec: 0.010, SelfNoiseLines: 12, NoiseNode: 0}
}

// Monitor samples a machine's memory controllers over simulated time.
type Monitor struct {
	cfg     Config
	m       *machine.Machine
	samples []Sample
	next    float64

	measuring  bool
	startTime  float64
	lastTime   float64
	startSnaps []memdev.Snapshot
	endSnaps   []memdev.Snapshot
}

// New returns a monitor for the machine.
func New(m *machine.Machine, cfg Config) *Monitor {
	if cfg.PeriodSec <= 0 {
		cfg.PeriodSec = 0.010
	}
	return &Monitor{cfg: cfg, m: m}
}

// OnQuantum is the kernel scheduler hook: it takes samples whenever
// simulated time crosses sampling boundaries.
func (mon *Monitor) OnQuantum(nowSec float64) {
	mon.lastTime = nowSec
	if mon.next == 0 {
		mon.next = mon.cfg.PeriodSec
	}
	for nowSec >= mon.next {
		mon.sample(mon.next)
		mon.next += mon.cfg.PeriodSec
	}
}

func (mon *Monitor) sample(at float64) {
	snaps := make([]memdev.Snapshot, mon.m.Nodes())
	for n := 0; n < mon.m.Nodes(); n++ {
		snaps[n] = mon.m.Node(n).Snapshot()
	}
	mon.samples = append(mon.samples, Sample{TimeSec: at, Nodes: snaps})
	// The monitor's own bookkeeping writes.
	if mon.cfg.SelfNoiseLines > 0 {
		node := mon.m.Node(mon.cfg.NoiseNode)
		base := mon.m.Config().NodeBytes - (32 << 20)
		node.Write(base+uint64(len(mon.samples)%1024)*4096, uint64(mon.cfg.SelfNoiseLines))
	}
}

// StartMeasurement snapshots the counters at the beginning of the
// measured iteration (the replay-compilation barrier point).
func (mon *Monitor) StartMeasurement(nowSec float64) {
	mon.measuring = true
	mon.startTime = nowSec
	mon.startSnaps = make([]memdev.Snapshot, mon.m.Nodes())
	for n := 0; n < mon.m.Nodes(); n++ {
		mon.startSnaps[n] = mon.m.Node(n).Snapshot()
	}
}

// StopMeasurement snapshots the counters at the end of the measured
// iteration. When never called, Report uses the last sample time.
func (mon *Monitor) StopMeasurement(nowSec float64) {
	mon.endSnaps = make([]memdev.Snapshot, mon.m.Nodes())
	for n := 0; n < mon.m.Nodes(); n++ {
		mon.endSnaps[n] = mon.m.Node(n).Snapshot()
	}
	mon.lastTime = nowSec
}

// Report is the measured iteration's traffic summary.
type Report struct {
	Seconds    float64
	WriteLines []uint64 // per node
	ReadLines  []uint64
}

// WriteBytes returns the written bytes on a node.
func (r Report) WriteBytes(node int) uint64 {
	return r.WriteLines[node] * memdev.LineSize
}

// WriteRateMBs returns the node's write rate in MB/s — the paper's
// headline metric (PCM lifetime is inversely proportional to it).
func (r Report) WriteRateMBs(node int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.WriteBytes(node)) / 1e6 / r.Seconds
}

// Report computes the measured-iteration deltas. Without an explicit
// StartMeasurement the whole run counts (zero baseline).
func (mon *Monitor) Report() Report {
	if mon.startSnaps == nil {
		mon.startSnaps = make([]memdev.Snapshot, mon.m.Nodes())
		mon.startTime = 0
	}
	end := mon.endSnaps
	if end == nil {
		end = make([]memdev.Snapshot, mon.m.Nodes())
		for n := 0; n < mon.m.Nodes(); n++ {
			end[n] = mon.m.Node(n).Snapshot()
		}
	}
	rep := Report{Seconds: mon.lastTime - mon.startTime}
	for n := range end {
		rep.WriteLines = append(rep.WriteLines, end[n].WriteLines-mon.startSnaps[n].WriteLines)
		rep.ReadLines = append(rep.ReadLines, end[n].ReadLines-mon.startSnaps[n].ReadLines)
	}
	return rep
}

// Samples returns the time series collected so far (for rate-over-time
// views, as pcm-memory prints).
func (mon *Monitor) Samples() []Sample { return mon.samples }

// RateSeries derives per-interval write rates (MB/s) for one node from
// the sample series.
func (mon *Monitor) RateSeries(node int) []float64 {
	var out []float64
	for i := 1; i < len(mon.samples); i++ {
		prev, cur := mon.samples[i-1], mon.samples[i]
		dt := cur.TimeSec - prev.TimeSec
		if dt <= 0 {
			out = append(out, 0)
			continue
		}
		dw := cur.Nodes[node].WriteLines - prev.Nodes[node].WriteLines
		out = append(out, float64(dw*memdev.LineSize)/1e6/dt)
	}
	return out
}
