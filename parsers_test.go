package hybridmem

import (
	"errors"
	"sort"
	"testing"
)

// TestCollectorStringRoundTrip checks every collector survives
// String() → ParseCollector, i.e. the paper names printed anywhere in
// the tooling are always valid inputs again.
func TestCollectorStringRoundTrip(t *testing.T) {
	for _, k := range Collectors() {
		got, err := ParseCollector(k.String())
		if err != nil {
			t.Errorf("ParseCollector(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("round trip %q: got %v, want %v", k.String(), got, k)
		}
	}
}

// TestCollectorAliasesStable freezes the punctuation-folded aliases:
// flag values and HTTP requests in the wild rely on them.
func TestCollectorAliasesStable(t *testing.T) {
	aliases := map[string]Collector{
		"pcmonly":  PCMOnly,
		"PCM_ONLY": PCMOnly,
		"pcm only": PCMOnly,
		"kgn":      KGN,
		"kg-n":     KGN,
		"kgb":      KGB,
		"kgnloo":   KGNLOO,
		"KG-N+LOO": KGNLOO,
		"kg_n_loo": KGNLOO,
		"kgbloo":   KGBLOO,
		"kgw":      KGW,
		"KG-W":     KGW,
		"kg w":     KGW,
		"kgwloo":   KGWNoLOO,
		"KG-W-LOO": KGWNoLOO,
		"kgwmdo":   KGWNoMDO,
		"kg-w-mdo": KGWNoMDO,
	}
	for name, want := range aliases {
		got, err := ParseCollector(name)
		if err != nil {
			t.Errorf("ParseCollector(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("alias %q: got %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "zgc", "kg", "kgx", "loo"} {
		if _, err := ParseCollector(bad); !errors.Is(err, ErrUnknownCollector) {
			t.Errorf("ParseCollector(%q) err = %v, want ErrUnknownCollector", bad, err)
		}
	}
}

func TestScaleStringRoundTrip(t *testing.T) {
	for _, s := range []Scale{Quick, Std, Full} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %q: got %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseScale("standard"); err != nil || got != Std {
		t.Errorf(`ParseScale("standard") = %v, %v; want Std`, got, err)
	}
	if _, err := ParseScale(""); !errors.Is(err, ErrUnknownScale) {
		t.Errorf("empty scale err = %v, want ErrUnknownScale", err)
	}
}

func TestDatasetStringRoundTrip(t *testing.T) {
	for _, d := range []Dataset{Default, Large} {
		got, err := ParseDataset(d.String())
		if err != nil || got != d {
			t.Errorf("round trip %q: got %v, %v; want %v", d.String(), got, err, d)
		}
	}
	if _, err := ParseDataset(""); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("empty dataset err = %v, want ErrUnknownDataset", err)
	}
}

// TestPolicyStringRoundTrip checks every placement policy survives
// String() → ParsePolicy, so the names printed anywhere in the tooling
// are always valid inputs again.
func TestPolicyStringRoundTrip(t *testing.T) {
	if len(Policies()) != 4 {
		t.Fatalf("Policies() = %d entries, want 4", len(Policies()))
	}
	for _, k := range Policies() {
		got, err := ParsePolicy(k.String())
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("round trip %q: got %v, want %v", k.String(), got, k)
		}
	}
}

// TestPolicyAliasesStable freezes the punctuation-folded aliases the
// CLI flags and HTTP requests rely on.
func TestPolicyAliasesStable(t *testing.T) {
	aliases := map[string]Policy{
		"static":          Static,
		"STATIC":          Static,
		"firsttouch":      FirstTouch,
		"first-touch":     FirstTouch,
		"first_touch":     FirstTouch,
		"First Touch":     FirstTouch,
		"writethreshold":  WriteThreshold,
		"write-threshold": WriteThreshold,
		"WriteThreshold":  WriteThreshold,
		"wearlevel":       WearLevel,
		"wear-level":      WearLevel,
		"WEAR_LEVEL":      WearLevel,
	}
	for name, want := range aliases {
		got, err := ParsePolicy(name)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("alias %q: got %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"", "lru", "wear", "threshold", "dynamic"} {
		if _, err := ParsePolicy(bad); !errors.Is(err, ErrUnknownPolicy) {
			t.Errorf("ParsePolicy(%q) err = %v, want ErrUnknownPolicy", bad, err)
		}
	}
}

func TestModeStringRoundTrip(t *testing.T) {
	for _, m := range []Mode{Emulation, Simulation} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %q: got %v, %v; want %v", m.String(), got, err, m)
		}
	}
	for name, want := range map[string]Mode{"emul": Emulation, "sim": Simulation} {
		if got, err := ParseMode(name); err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMode(""); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("empty mode err = %v, want ErrUnknownMode", err)
	}
}

// TestPoliciesOrderStable pins the policy listing order: kind order,
// static first. ParsePolicy's fold/alias coverage never asserted the
// listing itself, but CLI help text, GET /v1/policies, and RunSweep's
// policy-major result layout all index into this order — a silent
// reshuffle would misattribute every policy-swept result.
func TestPoliciesOrderStable(t *testing.T) {
	want := []string{"static", "first-touch", "write-threshold", "wear-level"}
	got := Policies()
	if len(got) != len(want) {
		t.Fatalf("Policies() = %d entries, want %d", len(got), len(want))
	}
	for i, pol := range got {
		if pol.String() != want[i] {
			t.Errorf("Policies()[%d] = %q, want %q", i, pol, want[i])
		}
		if pol != Policy(i) {
			t.Errorf("Policies()[%d] = kind %d, want kind order", i, int(pol))
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("Policies() is not sorted by kind")
	}
	// The listing is a fresh slice per call: callers may sort or trim
	// their copy without corrupting everyone else's.
	got[0] = WearLevel
	if again := Policies(); again[0] != Static {
		t.Error("mutating the returned slice leaked into the next call")
	}
}
