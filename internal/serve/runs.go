package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// HTTP surface of the flight recorder (registry.go): the run listing,
// the per-run detail document, and the live progress event stream.

// handleRuns serves GET /v1/runs: the flight recorder's live set plus
// its ring of recent runs, newest first, filtered by ?app=, ?kind=,
// ?state=, ?key=, ?trace= and paged with ?limit=/?offset= — the same
// shape as /v1/results, with total counting every match.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filters := []func(RunInfo) bool{}
	if app := q.Get("app"); app != "" {
		filters = append(filters, func(info RunInfo) bool { return info.App == app })
	}
	if kind := q.Get("kind"); kind != "" {
		filters = append(filters, func(info RunInfo) bool { return info.Kind == kind })
	}
	if state := q.Get("state"); state != "" {
		filters = append(filters, func(info RunInfo) bool { return string(info.State) == state })
	}
	if key := q.Get("key"); key != "" {
		filters = append(filters, func(info RunInfo) bool { return info.Key == key })
	}
	if trace := q.Get("trace"); trace != "" {
		filters = append(filters, func(info RunInfo) bool { return info.Trace == trace })
	}
	limit, offset := -1, 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, fmt.Errorf("%w: limit must be a non-negative integer, got %q", errBadRequest, v))
			return
		}
		limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, fmt.Errorf("%w: offset must be a non-negative integer, got %q", errBadRequest, v))
			return
		}
		offset = n
	}
	var match func(RunInfo) bool
	if len(filters) > 0 {
		match = func(info RunInfo) bool {
			for _, f := range filters {
				if !f(info) {
					return false
				}
			}
			return true
		}
	}
	runs := s.runs.List(match)
	total := len(runs)
	if offset >= len(runs) {
		runs = nil
	} else {
		runs = runs[offset:]
	}
	if limit >= 0 && limit < len(runs) {
		runs = runs[:limit]
	}
	if runs == nil {
		runs = []RunInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Count  int       `json:"count"`
		Total  int       `json:"total"`
		Offset int       `json:"offset"`
		Runs   []RunInfo `json:"runs"`
	}{Count: len(runs), Total: total, Offset: offset, Runs: runs})
}

// handleRunDetail serves GET /v1/runs/{id}: one run's full lifecycle
// record — state, outcome, per-phase timings, cumulative progress
// counters, and the trace ID that deep-links its span tree via
// GET /v1/spans?trace=<trace>.
func (s *Server) handleRunDetail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, events, ok := s.runs.Get(id)
	if !ok {
		fail(w, http.StatusNotFound, fmt.Errorf("run %q not found (the recent-runs ring is bounded)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Run    RunInfo    `json:"run"`
		Events []RunEvent `json:"events"`
	}{Run: info, Events: events})
}

// handleRunEvents serves GET /v1/runs/{id}/events: the run's lifecycle
// events as ndjson — the retained history first, then (for a live run)
// each new event as it happens, flushed per line like /v1/sweep. The
// stream ends when the run reaches a terminal state or the client
// disconnects, so `curl` on an active run is a live progress tail.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	history, live, cancel, ok := s.runs.Watch(id)
	if !ok {
		fail(w, http.StatusNotFound, fmt.Errorf("run %q not found (the recent-runs ring is bounded)", id))
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev RunEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, ev := range history {
		emit(ev)
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			emit(ev)
		case <-r.Context().Done():
			return
		}
	}
}
