package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
)

// testHeader is a header for synthetic traces: write-threshold with a
// small promotion threshold, paper-default migration costs. The
// keyframe interval is 1 — every record a keyframe — so the corruption
// tests exercise plain prefix semantics; delta-chain behavior gets its
// own headers via testHeaderK.
func testHeader() Header {
	return testHeaderK(1)
}

// testHeaderK is testHeader with an explicit keyframe interval.
func testHeaderK(interval int) Header {
	h := Header{
		Key:                 "app=synth;gc=KG-N",
		App:                 "synth",
		Collector:           "KG-N",
		Instances:           1,
		Dataset:             "default",
		Mode:                "emulation",
		Seed:                7,
		MigrationPageCycles: 1200,
		TLBShootdownCycles:  4000,
		GroupBytes:          0x10000,
		KeyframeInterval:    interval,
	}
	h.SetPolicyConfig(policy.Config{Kind: policy.WriteThreshold, HotWriteLines: 100})
	return h
}

// synthView builds a view with one hot PCM group (promotion bait for
// write-threshold) and one cold DRAM group.
func synthView(q uint64, hotWrites uint64) policy.View {
	return policy.View{
		Quantum: q,
		Groups: []policy.GroupStat{
			{Addr: 0x10000, Node: policy.DRAMNode, Pages: 16, WriteLines: 1},
			{Addr: 0x20000, Node: policy.PCMNode, Pages: 16, WriteLines: hotWrites},
		},
		DRAMPages: 16,
		PCMPages:  16,
	}
}

// record builds a synthetic trace: n quanta, every view identical, the
// recorded actions being what write-threshold decides (so replaying
// write-threshold matches bit-identically). No footer — the stream is
// cut the way a tapped engine run leaves it.
func record(t *testing.T, n int) []byte {
	t.Helper()
	return recordHeader(t, n, testHeader())
}

func recordHeader(t *testing.T, n int, h Header) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewPolicy(policy.WriteThreshold.String())
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.PolicyConfig()
	for q := 1; q <= n; q++ {
		v := synthView(uint64(q), 500)
		actions := pol.Decide(v, cfg)
		exec := make([]policy.Exec, len(actions))
		for i := range actions {
			exec[i] = policy.Exec{Moved: 16, Stall: 16*1200 + 4000}
		}
		rec.OnQuantum("synth#0", v, actions, exec)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Quanta(); got != uint64(n) {
		t.Fatalf("recorder counted %d quanta, want %d", got, n)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := record(t, 3)
	r := NewReader(bytes.NewReader(data))
	h, err := r.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.App != "synth" || h.Policy != "write-threshold" {
		t.Errorf("header round trip: %+v", h)
	}
	want := testHeader()
	want.Version = Version
	if h != want {
		t.Errorf("header = %+v, want %+v", h, want)
	}
	if got, want := h.PolicyConfig().HotWriteLines, uint64(100); got != want {
		t.Errorf("PolicyConfig hot = %d, want %d", got, want)
	}
	for q := 1; q <= 3; q++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Q != uint64(q) || rec.Proc != "synth#0" {
			t.Errorf("record %d: q=%d proc=%q", q, rec.Q, rec.Proc)
		}
		if !reflect.DeepEqual(rec.View, synthView(uint64(q), 500)) {
			t.Errorf("record %d: view did not round trip: %+v", q, rec.View)
		}
		if len(rec.Actions) == 0 || len(rec.Exec) != len(rec.Actions) {
			t.Errorf("record %d: %d actions, %d exec", q, len(rec.Actions), len(rec.Exec))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("clean end err = %v, want io.EOF", err)
	}
}

// TestDeltaRoundTrip drives the delta codec through churn: growing,
// mutating, and shrinking views across keyframe intervals must
// reconstruct bit-identically, with keyframes exactly where the
// interval rule puts them.
func TestDeltaRoundTrip(t *testing.T) {
	h := testHeaderK(3)
	views := []policy.View{
		// Interval 0: keyframe, then deltas with adds and changes.
		{Quantum: 1, Groups: []policy.GroupStat{
			{Addr: 0x10000, Node: 0, Pages: 16, WriteLines: 5},
			{Addr: 0x20000, Node: 1, Pages: 16, WriteLines: 7},
		}},
		{Quantum: 2, Groups: []policy.GroupStat{
			{Addr: 0x10000, Node: 0, Pages: 16, WriteLines: 5}, // unchanged
			{Addr: 0x20000, Node: 1, Pages: 16, WriteLines: 9}, // heat changed
			{Addr: 0x30000, Node: 1, Pages: 16, ReadLines: 2},  // appeared
		}},
		{Quantum: 3, Groups: []policy.GroupStat{
			{Addr: 0x10000, Node: 0, Pages: 16, WriteLines: 5},
			{Addr: 0x30000, Node: 0, Pages: 16, ReadLines: 2, MaxWear: 1}, // 0x20000 unmapped
		}},
		// Interval 1: keyframe again.
		{Quantum: 4, Groups: []policy.GroupStat{
			{Addr: 0x30000, Node: 0, Pages: 16, ReadLines: 2, MaxWear: 1},
		}},
		{Quantum: 5, Groups: nil}, // everything unmapped
	}

	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		rec.OnQuantum("p#0", v, nil, nil)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	wantKey := []bool{true, false, false, true, false}
	for i, v := range views {
		q, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if q.Keyframe != wantKey[i] {
			t.Errorf("record %d: keyframe = %v, want %v", i, q.Keyframe, wantKey[i])
		}
		if !reflect.DeepEqual(q.View.Groups, v.Groups) {
			t.Errorf("record %d groups:\n got %+v\nwant %+v", i, q.View.Groups, v.Groups)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("clean end err = %v, want io.EOF", err)
	}
}

// TestRunLengthGroups pins the RLE payoff: a long run of identical
// consecutive groups costs one run tuple, and decodes back exactly.
func TestRunLengthGroups(t *testing.T) {
	groups := make([]policy.GroupStat, 100)
	for i := range groups {
		groups[i] = policy.GroupStat{
			Addr: 0x10000000 + uint64(i)*0x10000, Node: 1, Pages: 16, WriteLines: 3,
		}
	}
	// A payload change splits the run; an address gap splits it too.
	groups[40].WriteLines = 9
	groups[99].Addr += 0x10000

	runs := encodeRuns(groups, 0x10000)
	if len(runs) != 4 {
		t.Fatalf("encoded %d runs, want 4: %v", len(runs), runs)
	}
	back, err := decodeRuns(runs, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, groups) {
		t.Errorf("RLE round trip diverged:\n got %+v\nwant %+v", back[:3], groups[:3])
	}
}

// TestFooterIndex pins Close's footer: boundary offsets must point at
// the exact byte of each interval-opening record, so a seek through
// the index can resume decoding there.
func TestFooterIndex(t *testing.T) {
	h := testHeaderK(2)
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= 5; q++ {
		rec.OnQuantum("p#0", synthView(uint64(q), uint64(q)), nil, nil)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Error("Close is not idempotent:", err)
	}
	data := buf.Bytes()

	r := NewReader(bytes.NewReader(data))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("footer should read as clean EOF, got %v", err)
	}
	f, ok := r.Footer()
	if !ok {
		t.Fatal("footer not surfaced")
	}
	if f.Quanta != 5 || f.Footer != Version {
		t.Errorf("footer = %+v, want 5 quanta at version %d", f, Version)
	}
	// K=2, 5 records: boundaries at record indexes 0, 2, 4.
	if len(f.Boundaries) != 3 {
		t.Fatalf("boundaries = %v, want 3 entries", f.Boundaries)
	}
	for _, b := range f.Boundaries {
		// Each boundary must point at the start of a keyframe line.
		seg := NewSegmentReader(h, bytes.NewReader(data[b[1]:]))
		q, err := seg.Next()
		if err != nil {
			t.Fatalf("boundary %v: %v", b, err)
		}
		if !q.Keyframe {
			t.Errorf("boundary %v does not open with a keyframe", b)
		}
		if want := synthView(uint64(b[0]+1), uint64(b[0]+1)); !reflect.DeepEqual(q.View, want) {
			t.Errorf("boundary %v view = %+v, want %+v", b, q.View, want)
		}
	}
}

func TestReplayReproducesRecordedActions(t *testing.T) {
	data := record(t, 4)
	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, err := Replay(bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !st.MatchesRecorded {
		t.Errorf("same-policy replay diverged at quantum %d", st.FirstMismatchQuantum)
	}
	if st.Quanta != 4 {
		t.Errorf("quanta = %d, want 4", st.Quanta)
	}
	// Matching quanta charge the recorded executed costs: the first
	// quantum promotes the hot group (16 pages); later quanta see it
	// recorded on PCM again (identical synthetic views), so every
	// quantum re-promotes.
	if st.PagesMigrated != 4*16 {
		t.Errorf("migrated = %d, want %d", st.PagesMigrated, 4*16)
	}
	if st.StallCycles != 4*(16*1200+4000) {
		t.Errorf("stall = %g, want %d", st.StallCycles, 4*(16*1200+4000))
	}
	// The hot group is replayed onto DRAM at quantum 1, so its later
	// window writes land on DRAM: only quantum 1's 500 lines count.
	if st.PCMWriteLines != 500 {
		t.Errorf("replayed PCM writes = %d, want 500", st.PCMWriteLines)
	}
	if st.BaselinePCMWriteLines != 4*500 {
		t.Errorf("baseline PCM writes = %d, want %d", st.BaselinePCMWriteLines, 4*500)
	}
	if got := st.PCMWriteReduction(); got <= 0.7 {
		t.Errorf("reduction = %g, want > 0.7", got)
	}
}

// TestReplayDeltaTraceMatchesKeyframeTrace pins codec transparency:
// the same quanta recorded with K=1 (all keyframes) and K=16 (delta
// chains) must replay to identical stats.
func TestReplayDeltaTraceMatchesKeyframeTrace(t *testing.T) {
	full := record(t, 6)
	delta := recordHeader(t, 6, testHeaderK(16))
	if len(delta) >= len(full) {
		t.Errorf("delta trace (%d bytes) not smaller than keyframe trace (%d bytes)",
			len(delta), len(full))
	}
	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	stFull, err := Replay(bytes.NewReader(full), pol)
	if err != nil {
		t.Fatal(err)
	}
	stDelta, err := Replay(bytes.NewReader(delta), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stFull, stDelta) {
		t.Errorf("replay stats diverged across keyframe cadence:\n%+v\nvs\n%+v", stFull, stDelta)
	}
}

func TestReplayDivergentPolicyEstimates(t *testing.T) {
	data := record(t, 2)
	// first-touch never migrates, so it diverges from the recorded
	// write-threshold actions at the first quantum.
	pol, _ := policy.NewPolicy(policy.FirstTouch.String())
	st, err := Replay(bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	if st.MatchesRecorded || st.FirstMismatchQuantum != 1 {
		t.Errorf("expected divergence at quantum 1, got %+v", st)
	}
	if st.Actions != 0 || st.PagesMigrated != 0 {
		t.Errorf("first-touch replay migrated: %+v", st)
	}
	// Without migrations the replayed placement is the baseline.
	if st.PCMWriteLines != st.BaselinePCMWriteLines {
		t.Errorf("no-migration replay PCM writes %d != baseline %d",
			st.PCMWriteLines, st.BaselinePCMWriteLines)
	}
}

func TestEmptyTraceIsCorrupt(t *testing.T) {
	for _, src := range []string{"", "\n\n"} {
		r := NewReader(strings.NewReader(src))
		if _, err := r.Header(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("empty trace %q: err = %v, want ErrCorrupt", src, err)
		}
		pol, _ := policy.NewPolicy(policy.Static.String())
		if _, err := Replay(strings.NewReader(src), pol); !errors.Is(err, ErrCorrupt) {
			t.Errorf("empty trace %q replay err = %v, want ErrCorrupt", src, err)
		}
	}
}

// TestVersionRejected is the cross-version matrix: traces from the
// past (v1), the future (v99), and nowhere (no version field) must all
// fail with ErrVersion naming both the file's version and this
// reader's.
func TestVersionRejected(t *testing.T) {
	data := record(t, 1)
	cases := []struct {
		name string
		old  string
		new  string
		want string // version the error must name besides ours
	}{
		{"v1 file", `{"version":2,`, `{"version":1,`, "version 1"},
		{"future file", `{"version":2,`, `{"version":99,`, "version 99"},
		{"versionless file", `{"version":2,`, `{`, "version 0"},
	}
	for _, tc := range cases {
		skewed := bytes.Replace(data, []byte(tc.old), []byte(tc.new), 1)
		if bytes.Equal(skewed, data) {
			t.Fatalf("%s: version field not found in header", tc.name)
		}
		r := NewReader(bytes.NewReader(skewed))
		_, err := r.Header()
		if !errors.Is(err, ErrVersion) {
			t.Errorf("%s: err = %v, want ErrVersion", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the file's %s", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("version %d", Version)) {
			t.Errorf("%s: error %q does not name the reader's version %d", tc.name, err, Version)
		}
		// The error latches: Next keeps failing the same way.
		if _, err := r.Next(); !errors.Is(err, ErrVersion) {
			t.Errorf("%s: Next after bad header err = %v, want ErrVersion", tc.name, err)
		}
	}
}

func TestGarbageMidFileReportsLineAndPreservesPrefix(t *testing.T) {
	data := record(t, 3)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// lines: header, q1, q2, q3, "" — corrupt q2 (file line 3).
	lines[2] = []byte("{\"q\": not json at all}\n")
	corrupted := bytes.Join(lines, nil)

	r := NewReader(bytes.NewReader(corrupted))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("prefix record: %v", err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage line err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if r.Line() != 3 {
		t.Errorf("Line() = %d, want 3", r.Line())
	}
	// The latch holds.
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err after corruption = %v, want latched ErrCorrupt", err)
	}

	// Replay of the valid prefix still works: one quantum's stats
	// (every record is a keyframe at interval 1, so the whole decoded
	// prefix is committed).
	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, rerr := Replay(bytes.NewReader(corrupted), pol)
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("replay err = %v, want ErrCorrupt", rerr)
	}
	if st.Quanta != 1 || st.PagesMigrated != 16 || !st.MatchesRecorded {
		t.Errorf("prefix replay stats = %+v, want 1 matching quantum", st)
	}
}

// TestCorruptionRollsBackToKeyframe pins the delta-chain blast radius:
// corruption inside an interval invalidates every record back to the
// last keyframe boundary, because the stranded chain's records cannot
// be trusted in isolation.
func TestCorruptionRollsBackToKeyframe(t *testing.T) {
	data := recordHeader(t, 6, testHeaderK(2))
	lines := bytes.SplitAfter(data, []byte("\n"))
	// lines: header, q1..q6, "". Corrupt q4 (record index 3, line 5):
	// interval [2,4) loses its tail, so the committed prefix is the
	// complete interval [0,2) — 2 quanta, not the 3 that decoded.
	lines[4] = []byte("garbage\n")
	corrupted := bytes.Join(lines, nil)

	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, err := Replay(bytes.NewReader(corrupted), pol)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay err = %v, want ErrCorrupt", err)
	}
	if st.Quanta != 2 {
		t.Errorf("committed prefix = %d quanta, want 2 (last complete keyframe interval)", st.Quanta)
	}
	if st.PagesMigrated != 2*16 {
		t.Errorf("migrated = %d, want %d", st.PagesMigrated, 2*16)
	}

	// DecodeAll applies the same truncation.
	_, quanta, derr := DecodeAll(bytes.NewReader(corrupted))
	if !errors.Is(derr, ErrCorrupt) {
		t.Fatalf("DecodeAll err = %v, want ErrCorrupt", derr)
	}
	if len(quanta) != 2 {
		t.Errorf("DecodeAll prefix = %d quanta, want 2", len(quanta))
	}
}

// TestDeltaWithoutKeyframeIsCorrupt pins the chain-start rule: a delta
// record whose process has no keyframe in the current interval is
// corruption, not a silently empty view.
func TestDeltaWithoutKeyframeIsCorrupt(t *testing.T) {
	data := recordHeader(t, 4, testHeaderK(4))
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Drop the keyframe (record 0, line 2): the first surviving record
	// is a delta with no chain to apply to.
	corrupted := bytes.Join(append(lines[:1], lines[2:]...), nil)

	r := NewReader(bytes.NewReader(corrupted))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("headless delta err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "no keyframe") {
		t.Errorf("error %q does not explain the missing keyframe", err)
	}
}

func TestTruncatedTailReportsLineAndPreservesPrefix(t *testing.T) {
	data := record(t, 2)
	// Chop the final record mid-line: the crash-mid-append signature.
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1 + 10
	truncated := data[:cut]

	pol, _ := policy.NewPolicy(policy.WriteThreshold.String())
	st, err := Replay(bytes.NewReader(truncated), pol)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if st.Quanta != 1 || st.PagesMigrated != 16 {
		t.Errorf("prefix replay stats = %+v, want the intact first quantum", st)
	}
}

// TestOversizedLineIsCorrupt is the bounded-reader regression test: a
// line past MaxLineBytes must fail as ErrCorrupt naming the line,
// without buffering the whole monster first (the reader gives up the
// moment the cap is crossed — one buffered chunk past the cap, not the
// full line).
func TestOversizedLineIsCorrupt(t *testing.T) {
	data := record(t, 1)
	// Splice an unterminated multi-hundred-MB "line" after the valid
	// records, delivered by a reader that would hand out 512 MiB if
	// asked — the bounded reader must stop at the 16 MiB cap.
	monster := &repeatReader{b: 'x', n: 512 << 20}
	src := io.MultiReader(bytes.NewReader(data), monster)

	r := NewReader(src)
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("prefix record: %v", err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized line err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("error %q does not name line 3 and the cap", err)
	}
	if monster.read > MaxLineBytes+(1<<20) {
		t.Errorf("reader consumed %d bytes of the oversized line, want <= cap + one buffer", monster.read)
	}
	// The latch holds.
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err after oversized line = %v, want latched ErrCorrupt", err)
	}
}

// repeatReader yields n copies of b with no newline, counting reads.
type repeatReader struct {
	b    byte
	n    int
	read int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > r.n {
		n = r.n
	}
	for i := 0; i < n; i++ {
		p[i] = r.b
	}
	r.n -= n
	r.read += n
	return n, nil
}

// failingWriter fails every write after the first n bytes.
type failingWriter struct {
	n int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("sink full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestRecorderLatchesWriteErrors(t *testing.T) {
	if _, err := NewRecorder(&failingWriter{}, testHeader()); err == nil {
		t.Error("unwritable header must fail NewRecorder")
	}
	rec, err := NewRecorder(&failingWriter{n: 4096}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= 100; q++ {
		rec.OnQuantum("p", synthView(uint64(q), 500), nil, nil)
	}
	if rec.Err() == nil {
		t.Error("write failure did not latch")
	}
	if rec.Quanta() >= 100 {
		t.Error("quanta kept counting past the failure")
	}
	if rec.Close() == nil {
		t.Error("Close after a latched write error must return it")
	}
}

func TestReplayNilPolicy(t *testing.T) {
	if _, err := Replay(bytes.NewReader(record(t, 1)), nil); err == nil {
		t.Error("nil policy must fail")
	}
}

// TestReplayWithOverridesKnobs pins the knob-injection contract at the
// trace layer: the recorded knobs promote the synthetic hot group
// (writes 500 >= hot 100), an injected hot threshold above the heat
// suppresses the promotion entirely, and injecting exactly the
// recorded knobs is indistinguishable from the header-knob replay.
func TestReplayWithOverridesKnobs(t *testing.T) {
	data := record(t, 3)
	pol, err := policy.NewPolicy(policy.WriteThreshold.String())
	if err != nil {
		t.Fatal(err)
	}

	recorded, err := Replay(bytes.NewReader(data), pol)
	if err != nil {
		t.Fatal(err)
	}
	same, err := ReplayWith(bytes.NewReader(data), pol, testHeader().PolicyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, recorded) {
		t.Errorf("recorded-knob injection diverged:\n%+v\nvs\n%+v", same, recorded)
	}
	if !same.MatchesRecorded || same.Actions == 0 {
		t.Errorf("recorded-knob injection lost the differential invariant: %+v", same)
	}

	cold, err := ReplayWith(bytes.NewReader(data), pol,
		policy.Config{Kind: policy.WriteThreshold, HotWriteLines: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Actions != 0 || cold.PagesMigrated != 0 {
		t.Errorf("hot=1000 should suppress every promotion, got %+v", cold)
	}
	if cold.MatchesRecorded {
		t.Error("divergent knobs still reported MatchesRecorded")
	}
	// With no promotions, the hot group's writes stay on PCM: the
	// replayed placement equals the no-migration baseline.
	if cold.PCMWriteLines != cold.BaselinePCMWriteLines {
		t.Errorf("no-promotion replay PCM writes = %d, baseline %d",
			cold.PCMWriteLines, cold.BaselinePCMWriteLines)
	}
	if recorded.PCMWriteLines >= cold.PCMWriteLines {
		t.Errorf("recorded knobs should beat the no-promotion placement: %d vs %d",
			recorded.PCMWriteLines, cold.PCMWriteLines)
	}
}
