package hybridmem

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// warmLibrary records spec live under pol with tracing on and files the
// trace plus its measured baseline Result in lib, returning the live
// Result. This is exactly what serve's /v1/trace ingest path does.
func warmLibrary(t *testing.T, lib *TraceLibrary, pol Policy, spec RunSpec) Result {
	t.Helper()
	var buf bytes.Buffer
	p := New(WithScale(Quick), WithSeed(11), WithPolicy(pol), WithTrace(&buf))
	res, err := p.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WarmTraceLibrary(lib, spec, res, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	return res
}

// relErr is the estimate tier's accuracy metric: |est-live| relative to
// the live value, with a floor of 1 so zero-valued truths don't divide
// by zero.
func relErr(est, live uint64) float64 {
	d := float64(est) - float64(live)
	if d < 0 {
		d = -d
	}
	den := float64(live)
	if den < 1 {
		den = 1
	}
	return d / den
}

// checkEstimate asserts one estimate against its live run: tagged,
// within EstimateTolerance on stalls and PagesMigrated, and — when
// exact is set (the replayed policy kind matches the recorded one, or
// neither migrates) — bit-equal on both with Confidence 1.
func checkEstimate(t *testing.T, label string, est, live Result, exact bool) {
	t.Helper()
	if !est.Estimated || est.Estimate == nil {
		t.Fatalf("%s: estimated Result not tagged: Estimated=%v Estimate=%v",
			label, est.Estimated, est.Estimate)
	}
	t.Logf("%s: est stalls=%d migrated=%d | live stalls=%d migrated=%d | relerr stalls=%.4f migrated=%.4f matches=%v",
		label, est.MigrationStallCycles, est.PagesMigrated,
		live.MigrationStallCycles, live.PagesMigrated,
		relErr(est.MigrationStallCycles, live.MigrationStallCycles),
		relErr(est.PagesMigrated, live.PagesMigrated),
		est.Estimate.MatchesRecorded)
	if e := relErr(est.MigrationStallCycles, live.MigrationStallCycles); e > EstimateTolerance {
		t.Errorf("%s: stall relative error %.4f exceeds tolerance %.2f (est %d, live %d)",
			label, e, EstimateTolerance, est.MigrationStallCycles, live.MigrationStallCycles)
	}
	if e := relErr(est.PagesMigrated, live.PagesMigrated); e > EstimateTolerance {
		t.Errorf("%s: migration relative error %.4f exceeds tolerance %.2f (est %d, live %d)",
			label, e, EstimateTolerance, est.PagesMigrated, live.PagesMigrated)
	}
	if exact {
		if est.MigrationStallCycles != live.MigrationStallCycles ||
			est.PagesMigrated != live.PagesMigrated {
			t.Errorf("%s: matching-replay estimate not exact: est (%d, %d), live (%d, %d)",
				label, est.MigrationStallCycles, est.PagesMigrated,
				live.MigrationStallCycles, live.PagesMigrated)
		}
	}
}

// TestEstimateAccuracyAcrossPolicies is the estimate tier's accuracy
// contract at quick scale, per built-in policy: warm the library with
// that policy's own traced run, and the estimate for the same spec is
// exact on stalls and PagesMigrated (matching replay = recorded
// executed costs) and within EstimateTolerance by construction. The
// non-migrating policies additionally estimate correctly from a
// migrating policy's trace (their replays emit no actions), and a
// migrating policy asked of a foreign trace is a clean miss — the
// accuracy gate that keeps every served estimate inside tolerance.
func TestEstimateAccuracyAcrossPolicies(t *testing.T) {
	lib, err := OpenTraceLibrary(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := traceSpec()

	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			// Re-warming replaces the neighborhood's resident trace; the
			// estimator must pick up the new generation without help.
			live := warmLibrary(t, lib, pol, spec)
			p := New(WithScale(Quick), WithSeed(11), WithPolicy(pol), WithTraceLibrary(lib))
			est, ok := p.Estimate(spec)
			if !ok {
				t.Fatalf("estimate missed on a warm library (key %s)", p.SpecKey(spec))
			}
			checkEstimate(t, pol.String(), est, live, true)
			if !est.Estimate.MatchesRecorded || est.Estimate.Confidence != 1 {
				t.Errorf("same-policy estimate: MatchesRecorded=%v Confidence=%v",
					est.Estimate.MatchesRecorded, est.Estimate.Confidence)
			}
			if est.Estimate.SourceKey != p.SpecKey(spec) {
				t.Errorf("estimate source = %q, want %q", est.Estimate.SourceKey, p.SpecKey(spec))
			}
			if st := p.EstimateStats(); st.Hits == 0 {
				t.Errorf("estimator stats counted no hit: %+v", st)
			}
		})
	}

	t.Run("cross-policy", func(t *testing.T) {
		// The library now holds the wear-level trace (last warmed).
		// Non-migrating policies estimate from it exactly; a different
		// migrating policy is gated to a miss rather than served a
		// wrong answer (measured error without the gate: ~0.95).
		for _, pol := range []Policy{Static, FirstTouch} {
			p := New(WithScale(Quick), WithSeed(11), WithPolicy(pol), WithTraceLibrary(lib))
			est, ok := p.Estimate(spec)
			if !ok {
				t.Fatalf("%s: non-migrating estimate missed a warm library", pol)
			}
			live, err := New(WithScale(Quick), WithSeed(11), WithPolicy(pol)).
				Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			checkEstimate(t, "wear-level-trace/"+pol.String(), est, live, true)
		}
		p := New(WithScale(Quick), WithSeed(11), WithPolicy(WriteThreshold), WithTraceLibrary(lib))
		if est, ok := p.Estimate(spec); ok {
			t.Errorf("write-threshold estimate served from a wear-level trace: %+v", est.Estimate)
		}
		if st := p.EstimateStats(); st.Misses == 0 {
			t.Errorf("gated estimate not counted as a miss: %+v", st)
		}
	})

	t.Run("knob-variation", func(t *testing.T) {
		// The autotuner's validated path: same policy kind, different
		// knobs, priced from one trace within tolerance.
		warmLibrary(t, lib, WriteThreshold, spec)
		knobs := PolicyConfig{Kind: WriteThreshold, HotWriteLines: 8192}
		p := New(WithScale(Quick), WithSeed(11), WithPolicyConfig(knobs), WithTraceLibrary(lib))
		est, ok := p.Estimate(spec)
		if !ok {
			t.Fatal("knob-variation estimate missed a warm library")
		}
		live, err := New(WithScale(Quick), WithSeed(11), WithPolicyConfig(knobs)).
			Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		checkEstimate(t, "hot=8192", est, live, false)
		if est.Estimate.Confidence >= 1 {
			t.Errorf("diverging replay kept confidence %v", est.Estimate.Confidence)
		}
	})
}

// TestEstimateIsSideChannel pins the provably-side-channel property:
// attaching a trace library (and estimating from it) leaves Run's
// output bit-identical to a platform that has never heard of the
// estimate tier, and estimated Results never enter the cache.
func TestEstimateIsSideChannel(t *testing.T) {
	ctx := context.Background()
	lib, err := OpenTraceLibrary(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := traceSpec()
	warmLibrary(t, lib, WriteThreshold, spec)

	p := New(WithScale(Quick), WithSeed(11), WithPolicy(WriteThreshold), WithTraceLibrary(lib))
	if _, ok := p.Estimate(spec); !ok {
		t.Fatal("estimate missed on a warm library")
	}
	if st := p.CacheStats(); st.Entries != 0 || st.Misses != 0 {
		t.Errorf("estimate polluted the result cache: %+v", st)
	}
	if _, ok := p.Peek(spec); ok {
		t.Error("estimated Result visible through Peek")
	}

	withLib, err := p.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(WithScale(Quick), WithSeed(11), WithPolicy(WriteThreshold)).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withLib, plain) {
		t.Errorf("Run diverged with a trace library attached\nwith:  %+v\nplain: %+v", withLib, plain)
	}
	if withLib.Estimated || withLib.Estimate != nil {
		t.Errorf("live Run tagged as estimated: %+v", withLib)
	}
}
