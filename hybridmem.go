// Package hybridmem is a platform for emulating and evaluating hybrid
// DRAM–PCM memory for managed languages, reproducing Akram, Sartor,
// McKinley & Eeckhout, "Emulating and Evaluating Hybrid Memory for
// Managed Languages on NUMA Hardware" (ISPASS 2019).
//
// The platform models the paper's two-socket NUMA server — socket 0's
// memory plays DRAM, socket 1's plays PCM — together with the software
// stack the paper builds on it: an OS layer (page tables, mmap/mbind,
// page zeroing, scheduling), a Jikes-RVM-style managed runtime with
// the paper's dual-free-list hybrid heap, the write-rationing
// Kingsguard collectors (KG-N, KG-B, KG-W and their LOO/MDO variants),
// a malloc/free runtime for the C++ comparisons, the pcm-memory-style
// write-rate monitor, and the paper's benchmark suites (11 DaCapo
// applications, pjbb2005, and a GraphChi engine running PageRank,
// Connected Components, and ALS).
//
// Experiments run through a Platform, constructed once and reused:
//
//	p := hybridmem.New(
//		hybridmem.WithScale(hybridmem.Quick),
//		hybridmem.WithSeed(7),
//	)
//	res, err := p.Run(ctx, hybridmem.RunSpec{
//		AppName:   "lusearch",
//		Collector: hybridmem.KGW,
//	})
//	// res.PCMWriteLines, res.PCMRateMBs(), ...
//
// Each Run executes the paper's replay-compilation methodology: a
// warmup iteration, a barrier, then a measured iteration whose socket
// write counters and simulated time produce PCM write counts and rates
// (MB/s). Results are deterministic for a given seed, and the Platform
// memoizes them: identical configurations run once, concurrent callers
// share the in-flight run.
//
// The paper's evaluation is thousands of such runs. RunBatch executes
// independent experiments in parallel across host cores, and Sweep
// enumerates the grids declaratively:
//
//	sweep := hybridmem.NewSweep("lusearch", "pmd", "xalan").
//		Collectors(hybridmem.Collectors()...).
//		Instances(1, 2, 4)
//	results, err := p.RunSweep(ctx, sweep)
//
// Derived platforms share the result cache, so sensitivity studies
// vary one knob without re-running the rest:
//
//	ref, err := p.With(hybridmem.WithThreadSocket(0)).Run(ctx, spec)
//
// The in-memory cache dies with the process; WithStore adds a durable
// second tier — an append-only, content-addressed store of Results
// keyed by SpecKey — so lookups fall through memory → disk → compute
// and a restarted process replays finished grids from disk instead of
// recomputing them:
//
//	p := hybridmem.New(hybridmem.WithScale(hybridmem.Std),
//		hybridmem.WithStore("results.d"))
//
// The experiment drivers that regenerate every table and figure of the
// paper live in internal/experiments and are exposed through the
// benchmarks in bench_test.go and the cmd/paperfigs command
// (incrementally, with -store). cmd/hybridserved serves the whole
// engine over HTTP so many clients share one platform and its store.
package hybridmem

import (
	"context"
	"fmt"
	"io"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/jvm"
	"repro/internal/lifetime"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/workloads/all"
)

// Collector is a garbage-collector configuration (the paper's plans).
type Collector = jvm.Kind

// The seven write-rationing configurations plus the PCM-Only baseline.
const (
	// PCMOnly is generational Immix with every space on the PCM
	// socket.
	PCMOnly = jvm.PCMOnly
	// KGN is Kingsguard-nursery: the nursery lives in DRAM.
	KGN = jvm.KGN
	// KGB is KG-N with a 3x nursery.
	KGB = jvm.KGB
	// KGNLOO is KG-N plus the Large Object Optimization.
	KGNLOO = jvm.KGNLOO
	// KGBLOO is KG-B plus the Large Object Optimization.
	KGBLOO = jvm.KGBLOO
	// KGW is Kingsguard-writers: observer-based write monitoring with
	// LOO and MDO.
	KGW = jvm.KGW
	// KGWNoLOO is KG-W without the Large Object Optimization.
	KGWNoLOO = jvm.KGWNoLOO
	// KGWNoMDO is KG-W without the MetaData Optimization.
	KGWNoMDO = jvm.KGWNoMDO
)

// Mode selects the evaluation pipeline.
type Mode = core.Mode

// The paper's two methodologies.
const (
	// Emulation includes the OS and monitor effects of the real
	// platform.
	Emulation = core.Emulation
	// Simulation is the Sniper-style exact pipeline.
	Simulation = core.Simulation
)

// RunSpec selects one experiment (application, collector, instances,
// dataset, native).
type RunSpec = core.RunSpec

// Result is the measured iteration's outcome. It round-trips through
// JSON via EncodeResult and DecodeResult.
type Result = core.Result

// EstimateInfo annotates an estimated Result (Result.Estimated) with
// its provenance: the library trace it was replayed from, the policy
// it was priced under, and the Confidence/Tolerance accuracy bound.
type EstimateInfo = core.EstimateInfo

// Dataset selects default or large inputs.
type Dataset = workloads.Dataset

// Input datasets.
const (
	// Default is the paper's default input (e.g. 1M edges).
	Default = workloads.Default
	// Large is the large input (e.g. 10M edges).
	Large = workloads.Large
)

// App is a benchmark application.
type App = workloads.App

// Apps returns the registry names of the paper's 15 benchmarks.
func Apps() []string { return all.Names() }

// NewApp returns a fresh instance of a named benchmark (nil if
// unknown).
func NewApp(name string) App { return all.New(name) }

// Collectors returns all eight collector configurations in the
// paper's order.
func Collectors() []Collector {
	return []Collector{PCMOnly, KGN, KGB, KGNLOO, KGBLOO, KGW, KGWNoLOO, KGWNoMDO}
}

// Policy is a dynamic-placement policy: it runs at GC-safepoint
// quanta and decides, per page group of the managed heap, which
// emulated tier (DRAM or PCM) backs it. Static — the default — is the
// paper's plan-time tiering with the engine disabled entirely.
type Policy = policy.Kind

// The built-in placement policies.
const (
	// Static fixes every tier at plan construction (the paper's
	// behavior, bit-identical to a platform without the engine).
	Static = policy.Static
	// FirstTouch leaves heap placement to the OS default: pages land
	// on the node local to the first-touching thread.
	FirstTouch = policy.FirstTouch
	// WriteThreshold promotes write-hot PCM page groups to DRAM and
	// demotes cold DRAM groups under memory pressure.
	WriteThreshold = policy.WriteThreshold
	// WearLevel rotates the most-worn PCM page groups onto fresh
	// frames using the devices' wear histograms.
	WearLevel = policy.WearLevel
)

// Policies returns the built-in placement policies in a stable order:
// kind order, static first. CLI help, GET /v1/policies, and the
// policy-major sweep layout all depend on this order not changing.
func Policies() []Policy {
	return []Policy{Static, FirstTouch, WriteThreshold, WearLevel}
}

// PolicyConfig is a placement policy together with its knob values:
// WriteThreshold's HotWriteLines / ColdWriteLines / DRAMBudgetPages,
// WearLevel's WearFactor, and the shared MaxGroupsPerQuantum bound.
// Zero knobs resolve to the registry defaults (Config.WithDefaults);
// the zero value is Static with no knobs, today's default platform.
// Inject a configuration with WithPolicyConfig, sweep configurations
// live with Sweep.Knobs, and search them offline with Autotune.
type PolicyConfig = policy.Config

// KnobGrid enumerates a placement-policy knob space: the cartesian
// product of the listed values per knob, with empty dimensions held at
// their registry defaults. Autotune replays a recorded trace once per
// grid point. Grids validate before any work: duplicate values,
// dimensions the policy never reads, and products past
// MaxKnobGridPoints are rejected.
type KnobGrid = autotune.Grid

// MaxKnobGridPoints bounds one Autotune search's cartesian product;
// KnobGrid.Validate rejects larger grids before any replay runs.
const MaxKnobGridPoints = autotune.MaxGridPoints

// KnobPoint is one evaluated knob configuration: the knobs, the
// replay's cost model for them (estimated stalls, pages migrated, PCM
// write placement and its reduction vs the no-migration baseline), and
// its Pareto-frontier standing.
type KnobPoint = autotune.Point

// AutotuneReport is one knob-grid search over one recorded trace:
// every evaluated point in grid order, the Pareto-optimal frontier
// (minimize stall cycles, minimize PCM writes; dominated points
// excluded, exact ties kept, stable order), and the recommended knob
// set — the frontier point closest to the grid's ideal in normalized
// objective space.
type AutotuneReport = autotune.Report

// EstimateTolerance is the relative error the offline cost model is
// allowed against a live run of the same knob point (see
// internal/autotune); paperfigs' autotune step and the CI smoke test
// enforce it.
const EstimateTolerance = autotune.EstimateTolerance

// ReplayStats is the outcome of re-driving a placement policy over a
// recorded trace, entirely offline: replayed quanta and actions,
// migration and stall totals (the recorded executed costs wherever the
// replayed decisions match the recorded ones, estimates priced with
// the recorded cost constants where they diverge), the
// PCM-write-placement estimates, and whether the replay reproduced the
// recorded action stream bit-identically.
type ReplayStats = trace.ReplayStats

// ReplayTrace re-drives a built-in policy over a trace recorded with
// WithTrace (or hybridemu -trace), without constructing a machine,
// kernel, or runtime. Replaying the policy that recorded the trace
// reproduces the recorded action stream bit-identically
// (ReplayStats.MatchesRecorded); replaying a different policy
// estimates how it would have placed the recorded heat.
//
// A version-skewed trace fails with ErrTraceVersion. A corrupt trace
// fails with ErrTraceCorrupt naming the offending line, and the
// returned stats still cover the valid prefix before it.
func ReplayTrace(r io.Reader, pol Policy) (ReplayStats, error) {
	if pol < policy.Static || pol >= policy.NumKinds {
		return ReplayStats{}, fmt.Errorf("%w: Kind(%d)", ErrUnknownPolicy, int(pol))
	}
	pl, err := policy.NewPolicy(pol.String())
	if err != nil {
		return ReplayStats{}, err
	}
	return trace.Replay(r, pl)
}

// ReplayTraceWith is ReplayTrace with the policy knobs injected per
// call instead of taken from the trace header: cfg.Kind selects the
// policy and the remaining knobs parameterize its decisions, so one
// recorded trace prices arbitrary knob settings offline. Replaying the
// recorded policy with exactly the recorded knobs still reproduces the
// recorded action stream and costs bit-identically; any other
// configuration yields knob-priced estimates.
func ReplayTraceWith(r io.Reader, cfg PolicyConfig) (ReplayStats, error) {
	if cfg.Kind < policy.Static || cfg.Kind >= policy.NumKinds {
		return ReplayStats{}, fmt.Errorf("%w: Kind(%d)", ErrUnknownPolicy, int(cfg.Kind))
	}
	pl, err := policy.NewPolicy(cfg.Kind.String())
	if err != nil {
		return ReplayStats{}, err
	}
	return trace.ReplayWith(r, pl, cfg)
}

// Autotune searches a placement-policy knob grid against one recorded
// trace, entirely offline: every grid point replays the trace's view
// stream with its own knob configuration (ReplayTraceWith), is scored
// by the replay cost model, and the report carries the Pareto-optimal
// frontier on (migration stalls, PCM write placement) plus a
// recommended knob set. One emulator run therefore prices a whole
// grid — a 3x3x3 sweep costs 27 replays instead of 27 emulations.
//
// Validate the winner live by running it with
// WithPolicyConfig(report.Recommended.Config()), or sweep several
// tuned points through Sweep.Knobs; where the replayed decisions
// matched the recorded stream the live Result reproduces the point's
// PagesMigrated and StallCycles exactly, elsewhere the estimates are
// bounded by EstimateTolerance.
//
// ctx cancels between grid points. On a corrupt trace every point
// prices the same valid prefix and Autotune returns the prefix report
// with ErrTraceCorrupt; a version-skewed trace fails up front with
// ErrTraceVersion.
func Autotune(ctx context.Context, r io.Reader, grid KnobGrid) (AutotuneReport, error) {
	return autotune.Run(ctx, r, grid)
}

// Scale selects experiment input sizes.
type Scale int

// Experiment scales.
const (
	// Quick is CI-sized: quarter-scale allocation profiles and
	// LLC-sized graphs.
	Quick Scale = iota
	// Std is the EXPERIMENTS.md scale: full DaCapo profiles, 1M-edge
	// graphs, 4x large datasets.
	Std
	// Full is the paper's scale (10x large datasets; slow).
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Std:
		return "std"
	default:
		return "full"
	}
}

// graphEdges returns the default GraphChi dataset size for the scale.
// Std and Full both use the paper's 1M edges: smaller graphs fit the
// 20 MB LLC entirely and lose the cache effects the paper measures;
// they differ in the large-dataset multiplier (4x vs the paper's 10x)
// to bound Fig 8's cost.
func (s Scale) graphEdges() int {
	if s == Quick {
		return 150_000
	}
	return 1_000_000
}

// graphLargeFactor is the large-dataset multiplier for GraphChi.
func (s Scale) graphLargeFactor() int {
	if s == Full {
		return 10
	}
	return 4
}

// allocScale shrinks the profile apps' iteration volume in Quick mode.
func (s Scale) allocScale() float64 {
	if s == Quick {
		return 0.25
	}
	return 1
}

// ScaledApps returns an application factory with inputs sized for the
// given scale. Platforms built with WithScale install it
// automatically; it remains public for callers that assemble their own
// factories.
func ScaledApps(s Scale) func(name string) App {
	return scaledFactory(s)
}

// LifetimeYears evaluates the paper's Equation 1: the expected PCM
// lifetime in years for a memory of sizeBytes with per-cell endurance,
// written at rateMBs, under 50% wear-leveling efficiency.
func LifetimeYears(sizeBytes uint64, endurance, rateMBs float64) float64 {
	return lifetime.YearsFromMBs(sizeBytes, endurance, rateMBs,
		lifetime.DefaultWearLevelingEfficiency)
}

// RecommendedRateMBs is the paper's 140 MB/s sustained-write limit
// (a 375 GB prototype rated at 30 drive-writes-per-day).
func RecommendedRateMBs() float64 {
	return lifetime.PaperRecommendedRateMBs()
}
