package jvm

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/objmodel"
)

// testPlanCfg is a small configuration so tests trigger many GCs fast.
func testPlanCfg() PlanConfig {
	return PlanConfig{
		BaseNurseryBytes: 128 << 10,
		HeapBytes:        6 << 20,
		BootBytes:        1 << 20,
		ThreadSocket:     -1,
	}
}

// runJVM boots a runtime inside a kernel process, runs body, and
// returns the machine for counter inspection plus the runtime for
// stats (safe to read after the run: everything is single-threaded).
func runJVM(t *testing.T, kind Kind, body func(r *Runtime)) (*machine.Machine, *Runtime) {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.NodeBytes = 2 << 30
	m := machine.New(mcfg)
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	var rt *Runtime
	p := k.NewProcess("jvm", NewPlan(kind, testPlanCfg()).ThreadSocket, func(p *kernel.Process) {
		r, err := NewRuntime(p, NewPlan(kind, testPlanCfg()))
		if err != nil {
			panic(err)
		}
		rt = r
		body(r)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	return m, rt
}

func TestPlanNames(t *testing.T) {
	want := map[Kind]string{
		PCMOnly: "PCM-Only", KGN: "KG-N", KGB: "KG-B",
		KGNLOO: "KG-N+LOO", KGBLOO: "KG-B+LOO",
		KGW: "KG-W", KGWNoLOO: "KG-W-LOO", KGWNoMDO: "KG-W-MDO",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

// TestPlanTableI checks the space-to-socket mapping of the paper's
// Table I for the three published columns.
func TestPlanTableI(t *testing.T) {
	cfg := testPlanCfg()

	kgn := NewPlan(KGN, cfg)
	if kgn.Bindings[objmodel.SpaceNursery] != DRAMSocket {
		t.Error("KG-N: nursery must be on S0")
	}
	if _, ok := kgn.Bindings[objmodel.SpaceObserver]; ok {
		t.Error("KG-N: no observer space")
	}
	if kgn.Bindings[objmodel.SpaceMaturePCM] != PCMSocket ||
		kgn.Bindings[objmodel.SpaceLargePCM] != PCMSocket {
		t.Error("KG-N: mature and large must be on S1")
	}
	if _, ok := kgn.Bindings[objmodel.SpaceMatureDRAM]; ok {
		t.Error("KG-N: no DRAM mature space")
	}
	if kgn.Bindings[objmodel.SpaceMetaPCM] != PCMSocket ||
		kgn.Bindings[objmodel.SpaceMetaDRAM] != PCMSocket {
		t.Error("KG-N: metadata only on S1")
	}

	kgw := NewPlan(KGW, cfg)
	for _, s := range []objmodel.SpaceID{
		objmodel.SpaceNursery, objmodel.SpaceObserver,
		objmodel.SpaceMatureDRAM, objmodel.SpaceLargeDRAM, objmodel.SpaceMetaDRAM,
	} {
		if kgw.Bindings[s] != DRAMSocket {
			t.Errorf("KG-W: %v must be on S0", s)
		}
	}
	for _, s := range []objmodel.SpaceID{
		objmodel.SpaceMaturePCM, objmodel.SpaceLargePCM, objmodel.SpaceMetaPCM,
	} {
		if kgw.Bindings[s] != PCMSocket {
			t.Errorf("KG-W: %v must be on S1", s)
		}
	}
	if !kgw.MDO || !kgw.LOO || !kgw.Monitor || !kgw.UseObserver {
		t.Error("KG-W must enable MDO, LOO, monitoring, observer")
	}
	if kgw.ObserverBytes != 2*kgw.NurseryBytes {
		t.Error("KG-W observer must be twice the nursery")
	}

	mdo := NewPlan(KGWNoMDO, cfg)
	if mdo.MDO {
		t.Error("KG-W-MDO must disable MDO")
	}
	if !mdo.LOO {
		t.Error("KG-W-MDO keeps LOO")
	}

	pcm := NewPlan(PCMOnly, cfg)
	for s, n := range pcm.Bindings {
		if n != PCMSocket {
			t.Errorf("PCM-Only: %v bound to %d, want S1", s, n)
		}
	}
	if pcm.ThreadSocket != PCMSocket {
		t.Error("PCM-Only threads run on S1")
	}

	kgb := NewPlan(KGB, cfg)
	if kgb.NurseryBytes != 3*cfg.BaseNurseryBytes {
		t.Errorf("KG-B nursery = %d, want 3x base", kgb.NurseryBytes)
	}
}

func TestAllocAndMinorGC(t *testing.T) {
	_, rt := runJVM(t, KGN, func(r *Runtime) {
		// Allocate 4 nurseries' worth of garbage.
		for i := 0; i < 4*1024; i++ {
			r.Alloc(128, 2)
		}
	})
	if rt.Stats.MinorGCs < 3 {
		t.Errorf("minor GCs = %d, want >= 3", rt.Stats.MinorGCs)
	}
	if rt.Table.Live() > 1200 {
		t.Errorf("dead objects not reclaimed: %d live", rt.Table.Live())
	}
}

func TestReachabilitySurvival(t *testing.T) {
	_, rt := runJVM(t, KGN, func(r *Runtime) {
		keep := r.Alloc(64, 1)
		slot := r.AddRoot(keep)
		child := r.Alloc(64, 0)
		r.WriteRef(keep, 0, child)
		for i := 0; i < 4*1024; i++ {
			r.Alloc(128, 0) // garbage storm forcing several GCs
		}
		ko := r.Table.Get(keep)
		if ko.Space == objmodel.SpaceNursery {
			t.Error("rooted object should have been promoted")
		}
		co := r.Table.Get(r.Root(slot))
		if co.Addr == 0 {
			t.Error("rooted object record lost")
		}
		cc := r.Table.Get(r.ReadRef(keep, 0))
		if cc.Addr == 0 {
			t.Error("child of rooted object collected while reachable")
		}
		if cc.Space == objmodel.SpaceNursery {
			t.Error("reachable child left behind in the nursery")
		}
	})
	_ = rt
}

func TestDeadObjectsCollected(t *testing.T) {
	_, _ = runJVM(t, KGN, func(r *Runtime) {
		id := r.Alloc(64, 0)
		slot := r.AddRoot(id)
		r.DropRoot(slot) // immediately dead
		before := r.Table.Live()
		r.Collect(false)
		if got := r.Table.Live(); got >= before {
			t.Errorf("live objects %d -> %d; dead object not reclaimed", before, got)
		}
		_ = id
	})
}

func TestRemsetKeepsNurseryObjectAlive(t *testing.T) {
	_, _ = runJVM(t, KGN, func(r *Runtime) {
		// Promote a container to the mature space.
		container := r.Alloc(64, 1)
		r.AddRoot(container)
		for i := 0; i < 2*1024; i++ {
			r.Alloc(128, 0)
		}
		if r.Table.Get(container).Space != objmodel.SpaceMaturePCM {
			t.Fatal("container should be mature by now")
		}
		// Store a nursery reference into the mature container: the
		// write barrier must remember it.
		child := r.Alloc(64, 0)
		r.WriteRef(container, 0, child)
		// Next minor GC: child must survive via the remset even
		// though no root points at it.
		for i := 0; i < 2*1024; i++ {
			r.Alloc(128, 0)
		}
		co := r.Table.Get(r.ReadRef(container, 0))
		if co.Addr == 0 {
			t.Fatal("remembered-set child was collected")
		}
		if co.Space == objmodel.SpaceNursery {
			t.Error("remembered child never promoted")
		}
	})
}

func TestKGNPlacement(t *testing.T) {
	m, rt := runJVM(t, KGN, func(r *Runtime) {
		keep := r.Alloc(64, 1)
		r.AddRoot(keep)
		for i := 0; i < 8*1024; i++ {
			id := r.Alloc(128, 0)
			r.Write(id, 8, 32)
		}
	})
	m.DrainCaches()
	// Nursery (and boot) traffic lands on node 0; promotion copies,
	// mature marks and zero-init of promoted data land on node 1.
	if m.Node(0).WriteLines() == 0 {
		t.Error("KG-N: no DRAM writes observed")
	}
	if m.Node(1).WriteLines() == 0 {
		t.Error("KG-N: no PCM writes observed (promotions must land there)")
	}
	if rt.Stats.SurvivorBytes == 0 {
		t.Error("no survivors promoted")
	}
}

func TestPCMOnlyPlacement(t *testing.T) {
	m, _ := runJVM(t, PCMOnly, func(r *Runtime) {
		for i := 0; i < 4*1024; i++ {
			id := r.Alloc(128, 0)
			r.Write(id, 8, 32)
		}
	})
	m.DrainCaches()
	if m.Node(0).WriteLines() != 0 {
		t.Errorf("PCM-Only: %d writes leaked to the DRAM node", m.Node(0).WriteLines())
	}
	if m.Node(1).WriteLines() == 0 {
		t.Error("PCM-Only: no PCM writes observed")
	}
}

func TestKGWObserverDispatch(t *testing.T) {
	_, rt := runJVM(t, KGW, func(r *Runtime) {
		// A long-lived object that the mutator keeps writing: it must
		// end up in the DRAM mature space.
		hot := r.Alloc(64, 0)
		r.AddRoot(hot)
		// A long-lived object never written after creation: PCM.
		cold := r.Alloc(64, 0)
		r.AddRoot(cold)
		// A rotating window of medium-lived objects generates enough
		// nursery survivors to fill the observer and force
		// evacuations (pure garbage would never exercise dispatch).
		const window = 256
		ring := make([]int, window)
		for i := range ring {
			ring[i] = r.AddRoot(r.Alloc(256, 0))
		}
		for i := 0; i < 16*1024; i++ {
			slot := ring[i%window]
			r.SetRoot(slot, r.Alloc(256, 0))
			if i%16 == 0 {
				r.Write(hot, 8, 8)
			}
		}
		ho := r.Table.Get(hot)
		co := r.Table.Get(cold)
		if ho.Space != objmodel.SpaceMatureDRAM {
			t.Errorf("hot object in %v, want mature-dram", ho.Space)
		}
		if co.Space != objmodel.SpaceMaturePCM {
			t.Errorf("cold object in %v, want mature-pcm", co.Space)
		}
	})
	if rt.Stats.ObserverGCs == 0 {
		t.Error("observer never evacuated")
	}
	if rt.Stats.ToMatureDRAMBytes == 0 || rt.Stats.ToMaturePCMBytes == 0 {
		t.Errorf("dispatch stats: dram=%d pcm=%d",
			rt.Stats.ToMatureDRAMBytes, rt.Stats.ToMaturePCMBytes)
	}
}

func TestLOOPolicy(t *testing.T) {
	_, _ = runJVM(t, KGNLOO, func(r *Runtime) {
		// Moderate large object (<= nursery/16 = 8 KB at 128 KB
		// nursery): allocated in the nursery under LOO.
		mod := r.Alloc(8<<10, 0)
		if got := r.Table.Get(mod).Space; got != objmodel.SpaceNursery {
			t.Errorf("moderate large object in %v, want nursery", got)
		}
		// Huge object: straight to PCM large space.
		huge := r.Alloc(64<<10, 0)
		if got := r.Table.Get(huge).Space; got != objmodel.SpaceLargePCM {
			t.Errorf("huge object in %v, want large-pcm", got)
		}
	})
	// Without LOO every large object goes straight to PCM.
	_, _ = runJVM(t, KGN, func(r *Runtime) {
		mod := r.Alloc(8<<10, 0)
		if got := r.Table.Get(mod).Space; got != objmodel.SpaceLargePCM {
			t.Errorf("no-LOO large object in %v, want large-pcm", got)
		}
	})
}

func TestFullGCReclaimsAndReleasesChunks(t *testing.T) {
	_, rt := runJVM(t, KGN, func(r *Runtime) {
		// Large garbage churn beyond the 6 MB budget forces full GCs.
		for i := 0; i < 64; i++ {
			id := r.Alloc(512<<10, 0)
			r.Write(id, 0, 64)
		}
	})
	if rt.Stats.FullGCs == 0 {
		t.Fatal("no full GC despite exceeding the heap budget")
	}
	if rt.HeapUsed() > 4<<20 {
		t.Errorf("heap used after churn = %d MB, garbage not reclaimed", rt.HeapUsed()>>20)
	}
	lo, _ := rt.FreeLists()
	if lo.Recycles == 0 {
		t.Error("full GC never released/recycled chunks")
	}
}

func TestKGWLargeRelocation(t *testing.T) {
	_, rt := runJVM(t, KGW, func(r *Runtime) {
		// A big long-lived array, written constantly: LOO's collector
		// half must relocate it from PCM large to DRAM large.
		arr := r.Alloc(64<<10, 0)
		r.AddRoot(arr)
		if got := r.Table.Get(arr).Space; got != objmodel.SpaceLargePCM {
			t.Fatalf("array in %v, want large-pcm", got)
		}
		for round := 0; round < 80; round++ {
			r.Write(arr, round*64, 64)
			r.Alloc(512<<10, 0) // budget pressure -> full GCs
		}
		if got := r.Table.Get(arr).Space; got != objmodel.SpaceLargeDRAM {
			t.Errorf("hot array in %v, want large-dram after relocation", got)
		}
	})
	if rt.Stats.LargeRelocBytes == 0 {
		t.Error("no large-object relocation recorded")
	}
}

func TestMDOMarkPlacement(t *testing.T) {
	// Compare PCM writes of full GCs under KG-W (MDO on) vs KG-W-MDO:
	// mark metadata of PCM objects must hit PCM only without MDO.
	run := func(kind Kind) uint64 {
		m, _ := runJVM(t, kind, func(r *Runtime) {
			// Build a sizable live PCM population.
			for i := 0; i < 256; i++ {
				id := r.Alloc(4<<10, 0)
				r.AddRoot(id)
			}
			for i := 0; i < 30; i++ {
				r.Collect(true)
			}
		})
		m.DrainCaches()
		return m.Node(1).WriteLines()
	}
	with := run(KGW)
	without := run(KGWNoMDO)
	if without <= with {
		t.Errorf("MDO off should write more PCM: with=%d without=%d", with, without)
	}
}

func TestBarrierCountsAndRemsetCharges(t *testing.T) {
	_, rt := runJVM(t, KGN, func(r *Runtime) {
		container := r.Alloc(64, 4)
		r.AddRoot(container)
		for i := 0; i < 2*1024; i++ {
			r.Alloc(128, 0)
		}
		// Mature -> nursery pointer stores must hit the remset.
		for i := 0; i < 4; i++ {
			r.WriteRef(container, i, r.Alloc(64, 0))
		}
	})
	if rt.Stats.RemsetEntries < 4 {
		t.Errorf("remset entries = %d, want >= 4", rt.Stats.RemsetEntries)
	}
}

func TestStatsAccounting(t *testing.T) {
	_, rt := runJVM(t, KGW, func(r *Runtime) {
		for i := 0; i < 100; i++ {
			id := r.Alloc(256, 1)
			r.Write(id, 16, 8)
			r.Read(id, 16, 8)
		}
	})
	if rt.Stats.AllocObjects != 100 {
		t.Errorf("AllocObjects = %d, want 100", rt.Stats.AllocObjects)
	}
	if rt.Stats.AllocBytes < 100*256 {
		t.Errorf("AllocBytes = %d", rt.Stats.AllocBytes)
	}
	if rt.Stats.MutatorWrites != 100 || rt.Stats.MutatorReads != 100 {
		t.Errorf("mutator ops: w=%d r=%d", rt.Stats.MutatorWrites, rt.Stats.MutatorReads)
	}
}

// TestNoLiveObjectLost is a property-style stress test: a deterministic
// mutator builds and tears down a linked structure under heavy garbage
// pressure across all plans; every object reachable from roots must
// survive with its references intact.
func TestNoLiveObjectLost(t *testing.T) {
	kinds := []Kind{PCMOnly, KGN, KGB, KGNLOO, KGBLOO, KGW, KGWNoLOO, KGWNoMDO}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			_, _ = runJVM(t, kind, func(r *Runtime) {
				const N = 64
				ids := make([]objmodel.ObjID, N)
				slots := make([]int, N)
				seed := uint64(42)
				next := func(n uint64) uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed % n }
				for i := 0; i < N; i++ {
					ids[i] = r.Alloc(96, 2)
					slots[i] = r.AddRoot(ids[i])
				}
				// Link a random graph among the kept objects.
				for i := 0; i < N; i++ {
					r.WriteRef(ids[i], 0, ids[next(N)])
					r.WriteRef(ids[i], 1, ids[next(N)])
				}
				// Garbage storm with periodic mutation.
				for i := 0; i < 24*1024; i++ {
					g := r.Alloc(64+int(next(512)), 1)
					if next(4) == 0 {
						r.WriteRef(g, 0, ids[next(N)])
					}
					if next(16) == 0 {
						r.Write(ids[next(N)], 8, 16)
					}
					if next(64) == 0 {
						// Relink the kept graph.
						r.WriteRef(ids[next(N)], 0, ids[next(N)])
					}
				}
				// Verify every kept object and its refs.
				for i := 0; i < N; i++ {
					o := r.Table.Get(ids[i])
					if o.Addr == 0 {
						t.Fatalf("kept object %d lost", i)
					}
					if o.Space == objmodel.SpaceNursery {
						t.Fatalf("kept object %d still in nursery after storms", i)
					}
					for s := 0; s < 2; s++ {
						ref := o.Ref(s)
						if ref == objmodel.Nil {
							continue
						}
						if r.Table.Get(ref).Addr == 0 {
							t.Fatalf("kept object %d ref %d dangles", i, s)
						}
					}
				}
			})
		})
	}
}
