package experiments

import (
	"strings"
	"testing"

	"repro/internal/jvm"
	"repro/internal/workloads"
)

func TestScaleStrings(t *testing.T) {
	if Quick.String() != "quick" || Std.String() != "std" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestTableIStructure(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Space] = r
	}
	// Paper's Table I, KG-N column.
	if n := byName["Nursery"]; !n.KGN[0] || n.KGN[1] {
		t.Error("KG-N nursery must be S0 only")
	}
	if o := byName["Observer"]; o.KGN[0] || o.KGN[1] {
		t.Error("KG-N has no observer space")
	}
	if m := byName["Mature"]; m.KGN[0] || !m.KGN[1] {
		t.Error("KG-N mature must be S1 only")
	}
	if md := byName["Metadata"]; md.KGN[0] || !md.KGN[1] {
		t.Error("KG-N metadata must be S1 only")
	}
	// KG-W column: everything dual except nursery/observer.
	if m := byName["Mature"]; !m.KGW[0] || !m.KGW[1] {
		t.Error("KG-W mature must be on both sockets")
	}
	if md := byName["Metadata"]; !md.KGW[0] || !md.KGW[1] {
		t.Error("KG-W metadata must be on both sockets")
	}
	// KG-W-MDO column: no DRAM metadata.
	if md := byName["Metadata"]; md.KGWMDO[0] || !md.KGWMDO[1] {
		t.Error("KG-W-MDO metadata must be S1 only")
	}
	out := RenderTableI()
	for _, want := range []string{"Nursery", "Observer", "Mature", "Large", "Metadata"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered Table I missing %q", want)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	q := Config{Scale: Quick}
	if len(q.dacapoApps()) >= len(Config{Scale: Full}.dacapoApps()) {
		t.Error("Quick must use fewer DaCapo apps than Full")
	}
	if q.graphEdges() >= (Config{Scale: Std}).graphEdges() {
		t.Error("Quick graphs must be smaller than Std")
	}
	if (Config{Scale: Std}).graphLargeFactor() >= (Config{Scale: Full}).graphLargeFactor() {
		t.Error("Std large factor must be below Full's 10x")
	}
	app := q.factory()("lusearch")
	if app == nil {
		t.Fatal("factory lost lusearch")
	}
	pa := app.(*workloads.ProfileApp)
	if pa.P.AllocMB >= 200 {
		t.Error("Quick scale must shrink the allocation volume")
	}
	if q.factory()("nope") != nil {
		t.Error("factory should return nil for unknown apps")
	}
}

func TestRunnerCacheReuse(t *testing.T) {
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	a, err := r.emul("pmd", jvm.KGN, 1, workloads.Default)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.sortedKeys()) != 1 {
		t.Fatalf("cache entries = %d, want 1", len(r.sortedKeys()))
	}
	b, err := r.emul("pmd", jvm.KGN, 1, workloads.Default)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.sortedKeys()) != 1 {
		t.Error("identical run was not served from cache")
	}
	if a.PCMWriteLines != b.PCMWriteLines {
		t.Error("cached result differs")
	}
}

func TestReductionSmoke(t *testing.T) {
	// One end-to-end reduction check: KG-W must cut PCM writes vs the
	// PCM-Only reference for a DaCapo profile.
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	base, err := r.reference(0, "pmd")
	if err != nil {
		t.Fatal(err)
	}
	kgw, err := r.emul("pmd", jvm.KGW, 1, workloads.Default)
	if err != nil {
		t.Fatal(err)
	}
	if kgw.PCMWriteLines >= base.PCMWriteLines {
		t.Errorf("KG-W writes %d not below PCM-Only %d",
			kgw.PCMWriteLines, base.PCMWriteLines)
	}
}

func TestSuiteApps(t *testing.T) {
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	if got := r.suiteApps(workloads.Pjbb); len(got) != 1 || got[0] != "pjbb" {
		t.Errorf("pjbb suite = %v", got)
	}
	if got := r.suiteApps(workloads.GraphChi); len(got) != 3 {
		t.Errorf("graphchi suite = %v", got)
	}
	if got := r.allApps(); len(got) != len(r.cfg.dacapoApps())+4 {
		t.Errorf("allApps = %v", got)
	}
}
