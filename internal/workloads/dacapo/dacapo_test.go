package dacapo

import (
	"testing"

	"repro/internal/workloads"
)

func TestSuiteComposition(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("DaCapo suite has %d apps, want the paper's 11", len(names))
	}
	want := map[string]bool{
		"avrora": true, "bloat": true, "eclipse": true, "fop": true,
		"luindex": true, "lusearch": true, "lu.Fix": true, "pmd": true,
		"pmd.S": true, "sunflow": true, "xalan": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected app %q", n)
		}
	}
}

func TestNewAndAll(t *testing.T) {
	if New("lusearch") == nil {
		t.Error("New(lusearch) = nil")
	}
	if New("nope") != nil {
		t.Error("unknown app should be nil")
	}
	apps := All()
	if len(apps) != 11 {
		t.Fatalf("All() = %d", len(apps))
	}
	for _, a := range apps {
		if a.Suite() != workloads.DaCapo {
			t.Errorf("%s suite = %v", a.Name(), a.Suite())
		}
		if a.NurseryMB() != 4 {
			t.Errorf("%s nursery = %d, want the paper's 4 MB", a.Name(), a.NurseryMB())
		}
		if a.HeapMB() <= 0 {
			t.Errorf("%s has no heap budget", a.Name())
		}
	}
}

func TestTableIISubset(t *testing.T) {
	apps := TableIISubset()
	if len(apps) != 7 {
		t.Fatalf("Table II subset = %d apps, want 7", len(apps))
	}
	want := []string{"lusearch", "lu.Fix", "avrora", "xalan", "pmd", "pmd.S", "bloat"}
	for i, a := range apps {
		if a == nil || a.Name() != want[i] {
			t.Errorf("subset[%d] = %v, want %s", i, a, want[i])
		}
	}
}

func TestLuFixAllocatesLessThanLusearch(t *testing.T) {
	lu := New("lusearch").(*workloads.ProfileApp)
	fix := New("lu.Fix").(*workloads.ProfileApp)
	if fix.P.AllocMB >= lu.P.AllocMB {
		t.Error("lu.Fix must remove allocation relative to lusearch")
	}
}

func TestFreshInstances(t *testing.T) {
	a, b := New("pmd"), New("pmd")
	if a == b {
		t.Error("New must return fresh instances")
	}
}

func TestLargeDatasetSubset(t *testing.T) {
	n := 0
	for _, a := range All() {
		if a.HasLargeDataset() {
			n++
		}
	}
	if n < 5 {
		t.Errorf("only %d DaCapo apps carry large datasets", n)
	}
}
