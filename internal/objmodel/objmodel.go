// Package objmodel defines the managed object model: object records
// with headers, reference slots, and write-history bits, plus the
// object table that maps stable object identifiers to records.
//
// Objects live at virtual addresses in the managed heap; the record is
// the runtime's bookkeeping view (type information block, GC state),
// mirroring how a JVM sees objects through headers and reference maps.
// Identifiers stay stable across copying collections — the record's
// Addr field is updated when an object moves, exactly as a real
// reference is forwarded.
package objmodel

import "fmt"

// HeaderBytes is the object header size: a status word and a type
// (TIB) word, as in the 32-bit Jikes RVM object model.
const HeaderBytes = 8

// RefBytes is the size of one reference slot (32-bit addressing).
const RefBytes = 4

// ObjID identifies an object in an object table. 0 is the nil
// reference.
type ObjID uint32

// Nil is the null object reference.
const Nil ObjID = 0

// SpaceID identifies a heap space. The set matches the paper's Table I
// plus the boot space.
type SpaceID uint8

const (
	SpaceNone SpaceID = iota
	SpaceBoot
	SpaceNursery
	SpaceObserver
	SpaceMatureDRAM
	SpaceMaturePCM
	SpaceLargeDRAM
	SpaceLargePCM
	SpaceMetaDRAM
	SpaceMetaPCM
	NumSpaces
)

// String returns the space's conventional name.
func (s SpaceID) String() string {
	switch s {
	case SpaceNone:
		return "none"
	case SpaceBoot:
		return "boot"
	case SpaceNursery:
		return "nursery"
	case SpaceObserver:
		return "observer"
	case SpaceMatureDRAM:
		return "mature-dram"
	case SpaceMaturePCM:
		return "mature-pcm"
	case SpaceLargeDRAM:
		return "large-dram"
	case SpaceLargePCM:
		return "large-pcm"
	case SpaceMetaDRAM:
		return "meta-dram"
	case SpaceMetaPCM:
		return "meta-pcm"
	default:
		return fmt.Sprintf("space(%d)", uint8(s))
	}
}

// Flags hold per-object state bits.
type Flags uint8

const (
	// FlagWritten is set by the write barrier when the mutator writes
	// the object while it is being observed (KG-W monitoring, large
	// object write tracking).
	FlagWritten Flags = 1 << iota
	// FlagLarge marks objects allocated under the large-object
	// policy.
	FlagLarge
	// FlagPinned marks objects the collector must not move (boot
	// image objects).
	FlagPinned
)

// inlineRefs is the number of reference slots stored inline in the
// record; objects with more use the overflow slice. Most managed
// objects have a handful of reference fields, so this keeps the object
// table allocation-free for the common case.
const inlineRefs = 4

// Object is one managed object's record.
type Object struct {
	Addr  uint64 // current payload address (includes header)
	Size  uint32 // total size in bytes, header included
	Space SpaceID
	Flags Flags
	nref  uint16
	mark  uint32 // last mark epoch that reached this object
	refs  [inlineRefs]ObjID
	ext   []ObjID
}

// NumRefs reports the number of reference slots.
func (o *Object) NumRefs() int { return int(o.nref) }

// Ref returns the i'th reference slot.
func (o *Object) Ref(i int) ObjID {
	if i < inlineRefs {
		return o.refs[i]
	}
	return o.ext[i-inlineRefs]
}

// SetRef stores into the i'th reference slot.
func (o *Object) SetRef(i int, id ObjID) {
	if i < inlineRefs {
		o.refs[i] = id
		return
	}
	o.ext[i-inlineRefs] = id
}

// RefSlotAddr returns the virtual address of the i'th reference slot,
// used to charge the memory write of a pointer store.
func (o *Object) RefSlotAddr(i int) uint64 {
	return o.Addr + HeaderBytes + uint64(i)*RefBytes
}

// Marked reports whether the object was marked in the given epoch.
func (o *Object) Marked(epoch uint32) bool { return o.mark == epoch }

// SetMark records the mark epoch.
func (o *Object) SetMark(epoch uint32) { o.mark = epoch }

// Table is an object table: a dense slice of records with a free list
// of recycled slots. IDs are slot indices + 1 so that 0 stays nil.
// Tables are not safe for concurrent use.
type Table struct {
	objs []Object
	free []ObjID
	live int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{objs: make([]Object, 0, 1024)}
}

// Alloc creates a record and returns its ID. The record starts with
// the given placement and nrefs empty reference slots.
func (t *Table) Alloc(addr uint64, size uint32, space SpaceID, nrefs int) ObjID {
	var id ObjID
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.objs = append(t.objs, Object{})
		id = ObjID(len(t.objs))
	}
	o := &t.objs[id-1]
	*o = Object{Addr: addr, Size: size, Space: space, nref: uint16(nrefs)}
	if nrefs > inlineRefs {
		o.ext = make([]ObjID, nrefs-inlineRefs)
	}
	t.live++
	return id
}

// Get returns the record for id. It panics on nil or out-of-range IDs:
// a bad ID is a runtime bug, the managed equivalent of a corrupted
// reference.
func (t *Table) Get(id ObjID) *Object {
	if id == Nil || int(id) > len(t.objs) {
		panic(fmt.Sprintf("objmodel: invalid object id %d", id))
	}
	return &t.objs[id-1]
}

// Free releases the record for reuse.
func (t *Table) Free(id ObjID) {
	o := t.Get(id)
	*o = Object{}
	t.free = append(t.free, id)
	t.live--
}

// Live reports the number of live records.
func (t *Table) Live() int { return t.live }

// Cap reports the table capacity (for diagnostics).
func (t *Table) Cap() int { return len(t.objs) }
