// Package policy is the dynamic-placement engine of the emulation
// platform: a pluggable decision layer that runs at GC-safepoint
// quanta and decides, per page group of the managed heap, which
// emulated tier (DRAM or PCM) backs it.
//
// The paper's Kingsguard collectors fix every space's tier when the
// plan is constructed; this package generalizes that into online
// page-level placement, the direction the NUMA-emulation line of work
// (arXiv:1808.00064) and hardware emulators with per-region migration
// latencies (METICULOUS, arXiv:2309.06565) explore. A policy sees a
// per-quantum View — page groups with their current tier, resident
// pages, window access/write counts from the memory devices, and wear
// — and returns migration Actions. The Engine executes them through
// the kernel's MovePages, so every migration pays an explicit cost:
// page-copy traffic on both memory controllers, QPI crossings, remap
// work, and a TLB shootdown, all charged to the process at the
// safepoint.
//
// Every decision is parameterized by a Config — the policy kind plus
// its knobs (HotWriteLines, ColdWriteLines, DRAMBudgetPages,
// WearFactor, MaxGroupsPerQuantum) — injected per engine instance, not
// read from globals: NewEngine/NewEngineWith take the Config, Decide
// receives it per quantum, and trace.ReplayWith re-drives recorded
// views under any Config. That per-instance injection is what lets
// internal/autotune price a whole knob grid against one recorded
// trace and the facade run tuned knob points live
// (hybridmem.WithPolicyConfig) without cross-talk between concurrent
// platforms.
//
// Policies are pluggable at the library level: Register adds a named
// policy to the registry and NewEngineWith wraps any Policy value in
// an engine an embedder can hook onto jvm.Runtime.Safepoint directly.
// The platform facade (hybridmem.WithPolicy and the CLI/HTTP
// surfaces) exposes the four built-ins only — custom policies have no
// stable cross-process identity to key cached results by. The
// built-ins cover the spectrum: static (no engine work at all; the
// paper's behavior bit-for-bit), first-touch (the OS default
// placement; no migrations), write-threshold (promote write-hot PCM
// groups to DRAM, demote cold DRAM groups under pressure), and
// wear-level (rotate the most-worn PCM groups onto fresh frames using
// the devices' wear histograms).
//
// Everything is deterministic: views are built in address order,
// decisions are sorted with address tiebreaks, and all state is
// per-run.
package policy

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/heap"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// DRAMNode and PCMNode are the NUMA roles of the paper's platform.
const (
	DRAMNode = 0
	PCMNode  = 1
)

// Kind enumerates the built-in placement policies.
type Kind int

const (
	// Static is the paper's behavior: tiers fixed at plan
	// construction, no engine, bit-identical results.
	Static Kind = iota
	// FirstTouch leaves heap placement to the OS default: a page
	// lands on the node local to the first thread that touches it.
	FirstTouch
	// WriteThreshold promotes PCM page groups whose per-quantum write
	// rate exceeds a threshold to DRAM, and demotes cold DRAM groups
	// back to PCM when DRAM residency exceeds its budget.
	WriteThreshold
	// WearLevel rotates the most-worn PCM page groups onto fresh
	// frames round-robin, spreading writes across the device using
	// the existing wear histograms.
	WearLevel
	// NumKinds is the number of built-in policies.
	NumKinds
)

// String names the policy as the CLI and HTTP surfaces spell it.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case FirstTouch:
		return "first-touch"
	case WriteThreshold:
		return "write-threshold"
	case WearLevel:
		return "wear-level"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Description is the one-line summary served by GET /v1/policies.
func (k Kind) Description() string {
	switch k {
	case Static:
		return "tiers fixed at plan construction (the paper's behavior)"
	case FirstTouch:
		return "OS default placement: pages land on the first-touching thread's node"
	case WriteThreshold:
		return "promote write-hot PCM page groups to DRAM; demote cold DRAM groups under pressure"
	case WearLevel:
		return "rotate the most-worn PCM page groups onto fresh frames"
	default:
		return ""
	}
}

// Config is a resolved policy configuration: the kind plus its knobs.
// The zero value is Static — today's behavior.
type Config struct {
	Kind Kind
	// HotWriteLines is WriteThreshold's promotion knob: a PCM group
	// whose window write count reaches it migrates to DRAM.
	HotWriteLines uint64
	// ColdWriteLines is WriteThreshold's demotion knob: under DRAM
	// pressure, DRAM groups at or below it migrate to PCM.
	ColdWriteLines uint64
	// DRAMBudgetPages is WriteThreshold's pressure point: demotion
	// starts once DRAM-resident heap pages exceed it.
	DRAMBudgetPages uint64
	// WearFactor is WearLevel's hot threshold: a PCM group rotates
	// when its most-worn page exceeds WearFactor times the mean.
	WearFactor float64
	// MaxGroupsPerQuantum bounds the migrations one safepoint may
	// issue, so a policy cannot stall a quantum arbitrarily.
	MaxGroupsPerQuantum int
	// ReadWindow additionally tracks per-page reads in the window, so
	// GroupStat.ReadLines carries data. No built-in policy consumes
	// reads; custom (NewEngineWith / core.Options.Policy) setups
	// opt in because per-line read counting is hot-path work.
	ReadWindow bool
}

// Default knob values.
const (
	DefaultHotWriteLines       = 256
	DefaultColdWriteLines      = 0
	DefaultDRAMBudgetPages     = 32768 // 128 MB
	DefaultWearFactor          = 2.0
	DefaultMaxGroupsPerQuantum = 64
)

// WithDefaults fills unset knobs with their defaults.
func (c Config) WithDefaults() Config {
	if c.HotWriteLines == 0 {
		c.HotWriteLines = DefaultHotWriteLines
	}
	if c.DRAMBudgetPages == 0 {
		c.DRAMBudgetPages = DefaultDRAMBudgetPages
	}
	if c.WearFactor <= 0 {
		c.WearFactor = DefaultWearFactor
	}
	if c.MaxGroupsPerQuantum <= 0 {
		c.MaxGroupsPerQuantum = DefaultMaxGroupsPerQuantum
	}
	return c
}

// Key renders the configuration as a stable cache/store key fragment.
// Static is spelled bare so platforms without a policy keep a readable
// key; other kinds append their resolved knobs, so two configurations
// that could produce different Results never share a key.
func (c Config) Key() string {
	if c.Kind == Static {
		return "static"
	}
	d := c.WithDefaults()
	return fmt.Sprintf("%s(hot=%d,cold=%d,budget=%d,wf=%g,max=%d,rw=%t)",
		d.Kind, d.HotWriteLines, d.ColdWriteLines, d.DRAMBudgetPages, d.WearFactor,
		d.MaxGroupsPerQuantum, d.ReadWindow)
}

// NeedsWindow reports whether the policy reads per-page window
// counters (the devices only track them when asked: counting is free
// of model perturbation but not of host memory).
func (c Config) NeedsWindow() bool { return c.Kind == WriteThreshold || c.ReadWindow }

// NeedsReadWindow reports whether reads should be window-counted too.
func (c Config) NeedsReadWindow() bool { return c.ReadWindow }

// NeedsWear reports whether the policy reads the wear histograms.
func (c Config) NeedsWear() bool { return c.Kind == WearLevel }

// FirstTouchHeap reports whether heap spaces should take the OS
// first-touch placement instead of the plan's explicit bindings.
func (c Config) FirstTouchHeap() bool { return c.Kind == FirstTouch }

// Migrates reports whether the built-in policy can ever move pages.
// Static's effect is no engine at all, and first-touch's is entirely
// the plan-time binding, so neither needs per-safepoint work.
func (c Config) Migrates() bool {
	return c.Kind == WriteThreshold || c.Kind == WearLevel
}

// GroupStat is one page group as a policy sees it at a quantum. The
// JSON tags are the trace-record schema: internal/trace streams views
// verbatim, and the trace golden test freezes the field names.
type GroupStat struct {
	// Addr is the group's base virtual address.
	Addr uint64 `json:"addr"`
	// Node is the group's current tier intent from the heap's
	// PageMap (heap.TierUnknown under first-touch until decided).
	Node int `json:"node"`
	// Pages is the number of resident pages in the group.
	Pages int `json:"pages"`
	// WriteLines is the group's memory-controller writeback traffic
	// over the window (zero unless the policy asked for window
	// tracking). ReadLines is the read-side counterpart; no built-in
	// policy consumes it, so it stays zero unless the machine was
	// configured with TrackWindowReads for a custom policy.
	WriteLines uint64 `json:"w,omitempty"`
	ReadLines  uint64 `json:"r,omitempty"`
	// MaxWear is the lifetime write count of the group's most-worn
	// page (zero unless wear tracking is on).
	MaxWear uint32 `json:"wear,omitempty"`
}

// View is the engine's per-quantum snapshot of one process's heap.
type View struct {
	// Groups holds every page group with at least one resident page,
	// in address order.
	Groups []GroupStat `json:"groups"`
	// DRAMPages and PCMPages are the resident heap pages per tier.
	DRAMPages uint64 `json:"dramPages"`
	PCMPages  uint64 `json:"pcmPages"`
	// Quantum is the safepoint sequence number, starting at 1.
	Quantum uint64 `json:"quantum"`
}

// Action is one migration decision: move the group's pages currently
// on From to To. From == To rotates the pages onto fresh frames of
// the same node (wear leveling).
type Action struct {
	Addr uint64 `json:"addr"`
	From int    `json:"from"`
	To   int    `json:"to"`
}

// Exec is the executed outcome of one Action: how many pages MovePages
// actually migrated and the stall cycles it charged. An exec list can
// be shorter than its action list — the engine stops a quantum early
// when the destination node runs out of frames.
type Exec struct {
	Moved int     `json:"moved"`
	Stall float64 `json:"stall"`
}

// Tap observes every quantum the engine executes: the view the policy
// saw, the actions it emitted (post-truncation, exactly as executed),
// and the per-action execution outcomes. internal/trace's Recorder is
// the canonical Tap; a tapped engine also gathers window and wear
// counters unconditionally so the observed views are complete even for
// policies that would not read them.
type Tap interface {
	OnQuantum(proc string, v View, actions []Action, exec []Exec)
}

// Policy decides migrations from a View. Implementations must be
// deterministic: equal views and configs must yield equal actions.
type Policy interface {
	// Name is the registry name.
	Name() string
	// Decide returns the quantum's migrations, most urgent first; the
	// engine truncates to cfg.MaxGroupsPerQuantum.
	Decide(v View, cfg Config) []Action
}

// registry holds the pluggable policies by name.
var registry = map[string]func() Policy{}

// Register installs a named policy factory. Registering a taken name
// panics: policies are wired at init time, where a collision is a
// programming error.
func Register(name string, factory func() Policy) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// NewPolicy instantiates a registered policy by name.
func NewPolicy(name string) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
	return f(), nil
}

func init() {
	Register(Static.String(), func() Policy { return staticPolicy{} })
	Register(FirstTouch.String(), func() Policy { return firstTouchPolicy{} })
	Register(WriteThreshold.String(), func() Policy { return writeThresholdPolicy{} })
	Register(WearLevel.String(), func() Policy { return wearLevelPolicy{} })
}

// staticPolicy never migrates: the paper's plan-time tiering is
// entirely the plan's bindings. It is registered so traces recorded
// under static replay uniformly through the same registry path.
type staticPolicy struct{}

func (staticPolicy) Name() string                 { return Static.String() }
func (staticPolicy) Decide(View, Config) []Action { return nil }

// firstTouchPolicy never migrates: its whole effect is the first-touch
// initial placement the runtime applies when the plan is built.
type firstTouchPolicy struct{}

func (firstTouchPolicy) Name() string                 { return FirstTouch.String() }
func (firstTouchPolicy) Decide(View, Config) []Action { return nil }

// writeThresholdPolicy promotes write-hot PCM groups and, under DRAM
// pressure, demotes the coldest DRAM groups.
type writeThresholdPolicy struct{}

func (writeThresholdPolicy) Name() string { return WriteThreshold.String() }

func (writeThresholdPolicy) Decide(v View, cfg Config) []Action {
	// Demotions come first — under pressure, freeing DRAM takes
	// priority over filling it, and the engine truncates the action
	// list from the head.
	var actions []Action
	demoted := 0
	if v.DRAMPages > cfg.DRAMBudgetPages {
		var cold []GroupStat
		for _, g := range v.Groups {
			if g.Node == DRAMNode && g.WriteLines <= cfg.ColdWriteLines {
				cold = append(cold, g)
			}
		}
		sort.Slice(cold, func(i, j int) bool {
			if cold[i].WriteLines != cold[j].WriteLines {
				return cold[i].WriteLines < cold[j].WriteLines
			}
			return cold[i].Addr < cold[j].Addr
		})
		excess := int(v.DRAMPages - cfg.DRAMBudgetPages)
		for _, g := range cold {
			if demoted >= excess {
				break
			}
			actions = append(actions, Action{Addr: g.Addr, From: DRAMNode, To: PCMNode})
			demoted += g.Pages
		}
	}

	var hot []GroupStat
	for _, g := range v.Groups {
		if g.Node == PCMNode && g.WriteLines >= cfg.HotWriteLines {
			hot = append(hot, g)
		}
	}
	// Hottest first; address breaks ties so the order is total.
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].WriteLines != hot[j].WriteLines {
			return hot[i].WriteLines > hot[j].WriteLines
		}
		return hot[i].Addr < hot[j].Addr
	})
	// Promotions respect the budget: a hot set larger than the free
	// DRAM headroom keeps its coolest groups on PCM rather than
	// growing DRAM residency without bound (which would end in frame
	// exhaustion, not just a missed target).
	free := int64(cfg.DRAMBudgetPages) - int64(v.DRAMPages) + int64(demoted)
	for _, g := range hot {
		if free < int64(g.Pages) {
			break
		}
		actions = append(actions, Action{Addr: g.Addr, From: PCMNode, To: DRAMNode})
		free -= int64(g.Pages)
	}
	return actions
}

// wearLevelPolicy rotates PCM groups whose most-worn page exceeds
// WearFactor times the mean onto fresh frames of the same node.
type wearLevelPolicy struct{}

func (wearLevelPolicy) Name() string { return WearLevel.String() }

func (wearLevelPolicy) Decide(v View, cfg Config) []Action {
	var sum float64
	n := 0
	for _, g := range v.Groups {
		if g.Node == PCMNode && g.MaxWear > 0 {
			sum += float64(g.MaxWear)
			n++
		}
	}
	if n == 0 {
		return nil
	}
	threshold := cfg.WearFactor * sum / float64(n)
	var worn []GroupStat
	for _, g := range v.Groups {
		if g.Node == PCMNode && float64(g.MaxWear) > threshold {
			worn = append(worn, g)
		}
	}
	sort.Slice(worn, func(i, j int) bool {
		if worn[i].MaxWear != worn[j].MaxWear {
			return worn[i].MaxWear > worn[j].MaxWear
		}
		return worn[i].Addr < worn[j].Addr
	})
	var actions []Action
	for _, g := range worn {
		actions = append(actions, Action{Addr: g.Addr, From: PCMNode, To: PCMNode})
	}
	return actions
}

// Stats accumulates the engine's work across a run.
type Stats struct {
	// PagesMigrated counts pages whose frames moved (cross-tier
	// migrations and same-node wear rotations alike).
	PagesMigrated uint64
	// StallCycles is the total remap + TLB-shootdown cost charged to
	// the processes at safepoints.
	StallCycles float64
	// Quanta counts safepoint invocations.
	Quanta uint64
}

// Engine runs one policy over a run's processes. One engine is shared
// by every instance of a multiprogrammed run (the cooperative kernel
// guarantees a single runner), and all of its state dies with the run.
type Engine struct {
	cfg   Config
	pol   Policy
	stats Stats
	tap   Tap
	hook  QuantumHook
	// marks is buildView's per-quantum scratch: one flag per page
	// group, raised for groups overlapping a mapped region.
	marks []bool
}

// QuantumHook observes a summary of each executed quantum: the
// process, the safepoint sequence number, how many actions ran, the
// pages and stall cycles they cost, and the quantum's wall-clock span.
// Unlike a Tap it sees no views and forces no extra counter gathering,
// so it is cheap enough for per-quantum telemetry (latency histograms,
// policy.quantum spans) on uninstrumented-model terms: the emulated
// costs are unchanged.
type QuantumHook func(proc string, quantum uint64, actions, pagesMoved int, stallCycles float64, start time.Time, wall time.Duration)

// SetQuantumHook attaches a summary observer. Install before the run
// starts; the field is not synchronized against OnSafepoint.
func (e *Engine) SetQuantumHook(h QuantumHook) { e.hook = h }

// NewEngine resolves the configuration's policy from the registry.
// Static needs no engine; callers should not construct one for it.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if cfg.Kind == Static {
		return nil, fmt.Errorf("policy: the static policy takes no engine")
	}
	pol, err := NewPolicy(cfg.Kind.String())
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, pol: pol}, nil
}

// NewEngineWith wraps a custom (Register-style) policy in an engine;
// the config's kind is advisory for custom policies.
func NewEngineWith(pol Policy, cfg Config) *Engine {
	return &Engine{cfg: cfg.WithDefaults(), pol: pol}
}

// NewObserver wraps the configuration's policy — including static and
// first-touch, which NewEngine refuses because they need no
// per-safepoint work — in an engine whose only job is observation:
// with a Tap attached it streams every quantum's view, and since the
// non-migrating policies decide nothing it never moves a page. The
// trace recorder uses it so engine-less policies still produce
// per-quantum trace records.
func NewObserver(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	pol, err := NewPolicy(cfg.Kind.String())
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, pol: pol}, nil
}

// SetTap attaches a per-quantum observer. A tapped engine gathers
// window and wear counters for every view regardless of what its own
// policy needs, so recorded traces carry the signals any replayed
// policy might read. Devices not configured to track a counter report
// zeros, exactly as a policy would see live.
func (e *Engine) SetTap(t Tap) { e.tap = t }

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns the accumulated migration statistics.
func (e *Engine) Stats() Stats { return e.stats }

// OnSafepoint runs one policy quantum for a process: build the view
// from the page map, the page tables, and the device counters; let
// the policy decide; execute the migrations through MovePages; and
// open a fresh observation window.
func (e *Engine) OnSafepoint(p *kernel.Process, pm *heap.PageMap) {
	if e == nil || pm == nil {
		return
	}
	var t0 time.Time
	if e.hook != nil {
		t0 = time.Now()
	}
	e.stats.Quanta++
	m := p.Kernel().Machine()
	v := e.buildView(p, pm, m)

	actions := e.pol.Decide(v, e.cfg)
	if len(actions) > e.cfg.MaxGroupsPerQuantum {
		actions = actions[:e.cfg.MaxGroupsPerQuantum]
	}
	var exec []Exec
	if e.tap != nil && len(actions) > 0 {
		exec = make([]Exec, 0, len(actions))
	}
	var movedQ int
	var stallQ float64
	for _, a := range actions {
		moved, stall, err := p.MovePages(a.Addr, heap.PageGroupBytes, a.From, a.To)
		e.stats.PagesMigrated += uint64(moved)
		e.stats.StallCycles += stall
		movedQ += moved
		stallQ += stall
		if e.tap != nil {
			exec = append(exec, Exec{Moved: moved, Stall: stall})
		}
		// Retarget the map only for a complete batch: a group cut
		// short by frame exhaustion keeps its old tier so its
		// stranded pages stay eligible for the retry below.
		if moved > 0 && a.From != a.To && err == nil {
			pm.SetRange(a.Addr, a.Addr+heap.PageGroupBytes, a.To)
		}
		if err != nil {
			// Destination node full: no later action of this quantum
			// can do better, stop and let the next quantum retry.
			break
		}
	}
	if e.tap != nil {
		e.tap.OnQuantum(p.Name, v, actions, exec)
	}
	if e.hook != nil {
		e.hook(p.Name, v.Quantum, len(actions), movedQ, stallQ, t0, time.Since(t0))
	}
}

// buildView assembles the quantum's snapshot in address order. Only
// groups overlapping a mapped region are scanned, so the per-quantum
// cost follows the process's footprint, not the heap's virtual span.
func (e *Engine) buildView(p *kernel.Process, pm *heap.PageMap, m *machine.Machine) View {
	v := View{Quantum: e.stats.Quanta}
	nodeBytes := m.Config().NodeBytes
	if len(e.marks) != pm.Groups() {
		e.marks = make([]bool, pm.Groups())
	} else {
		for i := range e.marks {
			e.marks[i] = false
		}
	}
	p.AS.MappedRanges(pm.Lo(), pm.Hi(), func(start, end uint64) {
		first := (start - pm.Lo()) / heap.PageGroupBytes
		last := (end - 1 - pm.Lo()) / heap.PageGroupBytes
		for i := first; i <= last; i++ {
			e.marks[i] = true
		}
	})
	for i := 0; i < pm.Groups(); i++ {
		if !e.marks[i] {
			continue
		}
		base := pm.GroupAddr(i)
		g := GroupStat{Addr: base, Node: pm.Node(base)}
		for pg := 0; pg < heap.PageGroupPages; pg++ {
			pa, ok := p.AS.Lookup(base + uint64(pg)*kernel.PageSize)
			if !ok {
				continue
			}
			g.Pages++
			node := int(pa / nodeBytes)
			if node >= m.Nodes() {
				node = m.Nodes() - 1
			}
			if node == DRAMNode {
				v.DRAMPages++
			} else {
				v.PCMPages++
			}
			dev := m.Node(node)
			off := pa % nodeBytes
			if e.cfg.NeedsWindow() || e.tap != nil {
				// Destructive read: the window restarts per page as
				// its owning process observes it, so one instance's
				// quantum never clears another instance's signal.
				w, rd := dev.TakeWindow(off)
				g.WriteLines += uint64(w)
				g.ReadLines += uint64(rd)
			}
			if e.cfg.NeedsWear() || e.tap != nil {
				if w := dev.PageWear(off); w > g.MaxWear {
					g.MaxWear = w
				}
			}
			// A resident page of an undecided (first-touch) group
			// tells the map which tier the OS picked.
			if g.Node == heap.TierUnknown {
				g.Node = node
			}
		}
		if g.Pages > 0 {
			if pm.Node(base) == heap.TierUnknown {
				// Teach the map the tier the OS picked, so residency
				// reads and custom policies see it too.
				pm.SetRange(base, base+heap.PageGroupBytes, g.Node)
			}
			v.Groups = append(v.Groups, g)
		}
	}
	return v
}
