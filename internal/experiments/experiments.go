// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables I–III, Figures 3–8) plus the ablation
// studies DESIGN.md calls out. Each driver runs the needed platform
// configurations through internal/core, reuses shared runs via a
// memoizing Runner, and renders the same rows/series the paper
// reports.
//
// Reproduction targets the paper's *shape* — orderings, ratios,
// crossovers — not absolute counts: the substrate is a software model
// of the platform, and the workloads are calibrated stand-ins (see
// DESIGN.md). EXPERIMENTS.md records paper-vs-measured for every row.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/jvm"
	"repro/internal/workloads"
	"repro/internal/workloads/all"
	"repro/internal/workloads/dacapo"
	"repro/internal/workloads/graphchi"
	"repro/internal/workloads/pjbb"
)

// Scale selects input sizes.
type Scale int

const (
	// Quick is quarter-scale for tests and benches.
	Quick Scale = iota
	// Std is the scale EXPERIMENTS.md is generated at: full DaCapo
	// profiles, 400k-edge graphs (4M large).
	Std
	// Full is the paper's scale: 1M-edge graphs (10M large).
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Std:
		return "std"
	default:
		return "full"
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  uint64
}

// graphEdges returns the default GraphChi dataset size for the scale.
// Std and Full both use the paper's 1M edges: smaller graphs fit the
// 20 MB LLC entirely and lose the cache effects the paper measures;
// they differ in the large-dataset multiplier (4x vs the paper's 10x)
// to bound Fig 8's cost.
func (c Config) graphEdges() int {
	if c.Scale == Quick {
		return 150_000
	}
	return 1_000_000
}

// graphLargeFactor is the large-dataset multiplier for GraphChi.
func (c Config) graphLargeFactor() int {
	if c.Scale == Full {
		return 10
	}
	return 4
}

// allocScale shrinks the profile apps' iteration volume in Quick mode.
func (c Config) allocScale() float64 {
	if c.Scale == Quick {
		return 0.25
	}
	return 1
}

// dacapoApps returns the DaCapo names an experiment iterates: a
// representative trio in Quick mode, a five-app subset at Std (the
// multiprogrammed figures multiply every run by up to 4x), and the
// full suite at Full scale.
func (c Config) dacapoApps() []string {
	switch c.Scale {
	case Quick:
		return []string{"lusearch", "xalan", "pmd"}
	case Std:
		return []string{"lusearch", "xalan", "pmd", "bloat", "avrora"}
	default:
		return dacapo.Names()
	}
}

// Factory returns the scaled application factory, for callers (the
// public facade, examples) that need scale-consistent app instances.
func (c Config) Factory() func(string) workloads.App {
	return c.factory()
}

// factory builds the scaled application factory.
func (c Config) factory() func(string) workloads.App {
	edges := c.graphEdges()
	scale := c.allocScale()
	largeFactor := c.graphLargeFactor()
	return func(name string) workloads.App {
		switch name {
		case "PR":
			return graphchi.NewWithEdgesAndLarge(graphchi.PR, edges, largeFactor)
		case "CC":
			return graphchi.NewWithEdgesAndLarge(graphchi.CC, edges, largeFactor)
		case "ALS":
			return graphchi.NewWithEdgesAndLarge(graphchi.ALS, edges, largeFactor)
		}
		app := all.New(name)
		if app == nil {
			return nil
		}
		if pa, ok := app.(*workloads.ProfileApp); ok && scale != 1 {
			p := pa.P
			p.AllocMB = int(float64(p.AllocMB) * scale)
			if p.AllocMB < 2 {
				p.AllocMB = 2
			}
			return workloads.NewProfileApp(p)
		}
		return app
	}
}

// Runner memoizes core runs so experiments sharing configurations
// (e.g. the 1-instance PCM-Only runs of Figs 4, 5, and 6) execute
// them once.
type Runner struct {
	cfg   Config
	cache map[string]core.Result
}

// NewRunner returns a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg, cache: map[string]core.Result{}}
}

// run executes (or replays) one platform run.
func (r *Runner) run(opts core.Options, spec core.RunSpec) (core.Result, error) {
	key := fmt.Sprintf("m%d|a%s|c%d|i%d|d%d|n%v|l%d|t%d|nur%d|obs%d|un%v|mon%d",
		opts.Mode, spec.AppName, spec.Collector, spec.Instances, spec.Dataset,
		spec.Native, opts.L3Bytes, opts.ThreadSocket, opts.BaseNurseryMB,
		opts.ObserverFactor, opts.UnmapFreedChunks, opts.MonitorNode)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := core.Run(opts, spec)
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: %s: %w", key, err)
	}
	r.cache[key] = res
	return res, nil
}

// opts builds the default emulation options for this runner.
func (r *Runner) opts(mode core.Mode) core.Options {
	o := core.DefaultOptions()
	o.Mode = mode
	o.Seed = r.cfg.Seed + 1
	o.AppFactory = r.cfg.factory()
	if r.cfg.Scale == Quick {
		o.BootMB = 4
	}
	return o
}

// emul runs one managed emulation.
func (r *Runner) emul(appName string, kind jvm.Kind, instances int, ds workloads.Dataset) (core.Result, error) {
	return r.run(r.opts(core.Emulation), core.RunSpec{
		AppName: appName, Collector: kind, Instances: instances, Dataset: ds,
	})
}

// sim runs one managed simulation (Sniper pipeline).
func (r *Runner) sim(appName string, kind jvm.Kind) (core.Result, error) {
	return r.run(r.opts(core.Simulation), core.RunSpec{AppName: appName, Collector: kind})
}

// reference runs the Table II reference setup: PCM-Only bindings with
// threads on socket 0, isolating system-level S0 effects.
func (r *Runner) reference(mode core.Mode, appName string) (core.Result, error) {
	o := r.opts(mode)
	o.ThreadSocket = 0
	return r.run(o, core.RunSpec{AppName: appName, Collector: jvm.PCMOnly})
}

// suiteApps maps each suite to the evaluation's application names.
func (r *Runner) suiteApps(s workloads.Suite) []string {
	switch s {
	case workloads.DaCapo:
		return r.cfg.dacapoApps()
	case workloads.Pjbb:
		return []string{"pjbb"}
	default:
		return []string{"PR", "CC", "ALS"}
	}
}

// allApps lists every application in the evaluation.
func (r *Runner) allApps() []string {
	var names []string
	names = append(names, r.cfg.dacapoApps()...)
	names = append(names, "pjbb", "PR", "CC", "ALS")
	return names
}

// nurseryOf reports the suite nursery of an app name (for reporting).
func nurseryOf(name string) int {
	switch name {
	case "PR", "CC", "ALS":
		return 32
	case "pjbb":
		return 4
	default:
		if dacapo.New(name) != nil {
			return 4
		}
		return 4
	}
}

// sortedKeys is a test helper exposing cache coverage.
func (r *Runner) sortedKeys() []string {
	keys := make([]string, 0, len(r.cache))
	for k := range r.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var _ = pjbb.New // keep the suite packages linked for registry parity
var _ = nurseryOf
