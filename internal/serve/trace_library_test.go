package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	hybridmem "repro"
	"repro/internal/trace"
	"repro/internal/trace/library"
)

// newLibraryServer builds a Quick-scale server backed by a fresh trace
// library in a temp directory.
func newLibraryServer(t *testing.T) (*Server, *library.Library, *httptest.Server) {
	t.Helper()
	lib, err := library.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick), hybridmem.WithSeed(7))
	s, err := New(p, Config{MaxInFlight: 2, TraceLibrary: lib})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, lib, ts
}

// cancelOnWrite is a ResponseRecorder that drops the request context
// after a fixed number of body writes — the handler-side shape of a
// client that disconnects mid-stream.
type cancelOnWrite struct {
	*httptest.ResponseRecorder
	writes int
	after  int
	cancel context.CancelFunc
}

func (c *cancelOnWrite) Write(p []byte) (int, error) {
	c.writes++
	if c.writes == c.after {
		c.cancel()
	}
	return c.ResponseRecorder.Write(p)
}

// TestTraceDisconnectCancelsRunAndFreesSlot is the regression test for
// the streaming bug where a client disconnect left the traced run
// emulating into a dead connection with its admission slot held. The
// context is cancelled right after the first quantum record hits the
// wire; the run must stop with the client's cancellation, the flight
// recorder must record the failure, and — with MaxInFlight=1 — the
// next trace request must get the slot back.
func TestTraceDisconnectCancelsRunAndFreesSlot(t *testing.T) {
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))
	s, err := New(p, Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	const url = "/v1/trace?app=lusearch&collector=KG-N&policy=write-threshold"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Write 1 is the trace header, write 2 the first quantum record:
	// cancelling there is deterministically mid-stream.
	rec := &cancelOnWrite{ResponseRecorder: httptest.NewRecorder(), after: 2, cancel: cancel}
	s.ServeHTTP(rec, httptest.NewRequest("GET", url, nil).WithContext(ctx))

	runs := s.runs.List(func(ri RunInfo) bool { return ri.Kind == "trace" })
	if len(runs) != 1 {
		t.Fatalf("flight recorder has %d trace runs, want 1", len(runs))
	}
	if runs[0].State != RunFailed {
		t.Errorf("disconnected run state = %q, want %q", runs[0].State, RunFailed)
	}
	if !strings.Contains(runs[0].Error, context.Canceled.Error()) {
		t.Errorf("disconnected run error = %q, want the client's cancellation", runs[0].Error)
	}
	if got := s.inflight.Load(); got != 0 {
		t.Errorf("inflight = %d after disconnect, want 0", got)
	}

	// The stream stopped early: a torn or short prefix, not a full
	// trace with its footer.
	if bytes.Contains(rec.Body.Bytes(), []byte(`"footer"`)) {
		t.Error("disconnected stream carries a footer: the run was not cancelled")
	}

	// Slot released: with MaxInFlight=1 a second traced run can only
	// succeed if the first one's slot came back.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest("GET", url, nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("trace after disconnect = %d, want 200 (slot leaked?)", rec2.Code)
	}
	if _, quanta, err := trace.DecodeAll(bytes.NewReader(rec2.Body.Bytes())); err != nil || len(quanta) == 0 {
		t.Errorf("trace after disconnect: %d quanta, err %v", len(quanta), err)
	}
}

func getTrace(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestTraceLibraryServesResidentTraces drives the library fast path on
// GET /v1/trace: a miss records live and warms the library, a hit is
// served byte-identically without emulating, and neighborhood keying
// shares one recording across policies.
func TestTraceLibraryServesResidentTraces(t *testing.T) {
	s, lib, ts := newLibraryServer(t)
	url := ts.URL + "/v1/trace?app=PR&collector=KG-N&policy=write-threshold"

	// Empty library: ?source=library insists and must 404.
	resp, _ := getTrace(t, url+"&source=library")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("source=library on empty library = %d, want 404", resp.StatusCode)
	}
	// A bad source is rejected before any work.
	resp, _ = getTrace(t, url+"&source=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("source=nope = %d, want 400", resp.StatusCode)
	}

	// First request misses, records live, and ingests the recording.
	resp, live := getTrace(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace = %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Trace-Source"); src != "live" {
		t.Errorf("first request X-Trace-Source = %q, want live", src)
	}
	if lib.Len() != 1 {
		t.Fatalf("library has %d traces after a live run, want 1", lib.Len())
	}

	// Second request is answered from the library, byte for byte.
	resp, resident := getTrace(t, url)
	if src := resp.Header.Get("X-Trace-Source"); src != "library" {
		t.Errorf("second request X-Trace-Source = %q, want library", src)
	}
	if !bytes.Equal(resident, live) {
		t.Error("library trace differs from the live recording that seeded it")
	}

	// A different policy in the same neighborhood reuses the entry:
	// replay gives it the policy's decisions, not a fresh emulation.
	resp, other := getTrace(t, ts.URL+"/v1/trace?app=PR&collector=KG-N&policy=wear-level")
	if src := resp.Header.Get("X-Trace-Source"); src != "library" {
		t.Errorf("policy sibling X-Trace-Source = %q, want library", src)
	}
	if !bytes.Equal(other, live) {
		t.Error("policy sibling served different bytes than the resident trace")
	}

	// ?source=live forces a fresh recording past the resident entry.
	resp, _ = getTrace(t, url+"&source=live")
	if src := resp.Header.Get("X-Trace-Source"); src != "live" {
		t.Errorf("source=live X-Trace-Source = %q, want live", src)
	}

	// The flight recorder distinguishes the library hits.
	hits := s.runs.List(func(ri RunInfo) bool { return ri.Outcome == OutcomeLibrary })
	if len(hits) != 2 {
		t.Errorf("flight recorder has %d library-outcome runs, want 2", len(hits))
	}
}

// TestAutotuneFromLibrary prices a knob grid against a resident trace:
// the first autotune records live and warms the library, the second is
// served from it with an identical report and zero platform runs.
func TestAutotuneFromLibrary(t *testing.T) {
	s, lib, ts := newLibraryServer(t)
	req := AutotuneRequest{
		Run: RunRequest{App: "PR", Collector: "KG-N"},
		Grid: AutotuneGrid{
			Policy:        "write-threshold",
			HotWriteLines: []uint64{2100, 3000},
		},
	}

	req.Source = "library"
	resp := postJSON(t, ts.URL+"/v1/autotune", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("source=library on empty library = %d, want 404", resp.StatusCode)
	}
	req.Source = "nope"
	resp = postJSON(t, ts.URL+"/v1/autotune", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("source=nope = %d, want 400", resp.StatusCode)
	}

	req.Source = ""
	resp = postJSON(t, ts.URL+"/v1/autotune", req)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("autotune = %d: %s", resp.StatusCode, body)
	}
	if src := resp.Header.Get("X-Trace-Source"); src != "live" {
		t.Errorf("first autotune X-Trace-Source = %q, want live", src)
	}
	var first hybridmem.AutotuneReport
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lib.Len() != 1 {
		t.Fatalf("library has %d traces after a live autotune, want 1", lib.Len())
	}

	resp = postJSON(t, ts.URL+"/v1/autotune", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second autotune = %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Trace-Source"); src != "library" {
		t.Errorf("second autotune X-Trace-Source = %q, want library", src)
	}
	var second hybridmem.AutotuneReport
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(first, second) {
		t.Error("library-priced report differs from the live-priced report over the same trace")
	}

	// The library hit never touched the platform: exactly one run
	// (the first, live autotune) executed.
	libRuns := s.runs.List(func(ri RunInfo) bool {
		return ri.Kind == "autotune" && ri.Outcome == OutcomeLibrary
	})
	if len(libRuns) != 1 {
		t.Errorf("flight recorder has %d library autotunes, want 1", len(libRuns))
	}
	computed := s.runs.List(func(ri RunInfo) bool {
		return ri.Kind == "autotune" && ri.Outcome == OutcomeComputed
	})
	if len(computed) != 1 {
		t.Errorf("flight recorder has %d computed autotunes, want 1", len(computed))
	}
}
