// Multiprogrammed workloads: the paper's Fig 4 scenario — PCM writes
// grow super-linearly with co-running instances under PCM-Only because
// the instances interfere in the shared LLC, while KG-W dampens the
// growth by keeping nursery writes in DRAM.
package main

import (
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	opts := hybridmem.Emulator()
	opts.AppFactory = hybridmem.ScaledApps(hybridmem.Quick)
	opts.BootMB = 4

	for _, gc := range []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGW} {
		fmt.Printf("%s:\n", gc)
		var base float64
		for _, n := range []int{1, 2, 4} {
			res, err := hybridmem.Run(opts, hybridmem.RunSpec{
				AppName:   "pmd",
				Collector: gc,
				Instances: n,
			})
			if err != nil {
				log.Fatal(err)
			}
			w := float64(res.PCMWriteLines)
			if n == 1 {
				base = w
			}
			growth := w / base
			marker := ""
			if float64(n) < growth {
				marker = "  <- super-linear"
			}
			fmt.Printf("  %d instance(s): %9.0f PCM line writes (%.1fx)%s\n",
				n, w, growth, marker)
		}
	}
}
