package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	hybridmem "repro"
	"repro/internal/estimate"
	"repro/internal/obs"
	"repro/internal/store"
)

// The estimate-first answer path: /v1/run and /v1/sweep take
// ?answer=auto|estimate|exact (or the same field in the request body;
// the query wins). auto — the default — serves an estimate replayed
// from the node's trace library when a resident trace covers the
// spec's neighborhood within tolerance, and computes otherwise;
// estimate insists on the estimate tier (404/in-stream error on a
// miss); exact bypasses it entirely and behaves bit-identically to a
// server without a library. Estimated answers are served locally in
// milliseconds — no fabric forward, no admission slot — are never
// written to the canonical result store, and are tagged in-band
// (Result.Estimated + EstimateInfo), by the X-Answer-Source response
// header, and with the flight-recorder outcome OutcomeEstimated.

// Answer modes.
const (
	answerAuto     = "auto"
	answerEstimate = "estimate"
	answerExact    = "exact"
)

// errNoEstimate reports an answer=estimate request the library cannot
// answer; it maps to 404 (or an in-stream item error mid-sweep).
var errNoEstimate = errors.New("no estimate available: no resident library trace answers this spec within tolerance")

// answerMode resolves the effective answer mode from the query
// parameter and the request-body field (query wins; empty = auto).
func answerMode(query, body string) (string, error) {
	m := query
	if m == "" {
		m = body
	}
	switch m {
	case "":
		return answerAuto, nil
	case answerAuto, answerEstimate, answerExact:
		return m, nil
	}
	return "", fmt.Errorf("%w: bad answer %q (want auto, estimate, or exact)", errBadRequest, m)
}

// answer routes one run according to its answer mode. Exact requests
// go straight to dispatch — the pre-estimate serving path, unchanged.
// Auto prefers an already-exact answer (a cache or store hit costs
// nothing and beats an estimate), then the estimate tier, then
// dispatch; estimate demands the estimate tier or fails. Estimates
// never take a fabric hop or an admission slot.
func (s *Server) answer(ctx context.Context, h *RunHandle, mode string, forwardedIn bool, p *hybridmem.Platform, spec hybridmem.RunSpec, wire RunRequest) (store.Record, string, error) {
	switch mode {
	case answerExact:
		return s.dispatch(ctx, h, forwardedIn, p, spec, wire)
	case answerAuto:
		if _, ok := p.Peek(spec); ok {
			break // dispatch serves the exact result as a coalesced read
		}
		if rec, ok := s.tryEstimate(p, spec, wire); ok {
			return rec, OutcomeEstimated, nil
		}
	case answerEstimate:
		if rec, ok := s.tryEstimate(p, spec, wire); ok {
			return rec, OutcomeEstimated, nil
		}
		return store.Record{}, "", errNoEstimate
	}
	return s.dispatch(ctx, h, forwardedIn, p, spec, wire)
}

// tryEstimate asks the platform's estimate tier for spec, counting the
// outcome and enrolling served estimates with the drift validator.
func (s *Server) tryEstimate(p *hybridmem.Platform, spec hybridmem.RunSpec, wire RunRequest) (store.Record, bool) {
	res, ok := p.Estimate(spec)
	if !ok {
		s.estMisses.Add(1)
		return store.Record{}, false
	}
	rec, err := record(p, spec, res)
	if err != nil {
		s.estMisses.Add(1)
		return store.Record{}, false
	}
	s.estimated.Add(1)
	if s.validator != nil {
		s.validator.note(wire, rec.Key)
	}
	return rec, true
}

// answerSource names an outcome's provenance for the X-Answer-Source
// header.
func answerSource(outcome string) string {
	if outcome == OutcomeEstimated {
		return "estimate"
	}
	return "exact"
}

// ingestTrace files a freshly recorded trace in the library together
// with its measured baseline Result, so the neighborhood becomes
// estimable, not just replayable. Ingest failures are the operator's
// problem (a full disk), never the requester's.
func (s *Server) ingestTrace(app, key string, spec hybridmem.RunSpec, res hybridmem.Result, data []byte) {
	base, err := estimate.EncodeBase(key, spec, res)
	if err != nil {
		s.log.Error("trace baseline encoding failed", "app", app, "err", err)
		base = nil
	}
	if _, err := s.lib.PutWithBase(data, base); err != nil {
		s.log.Error("trace library ingest failed", "app", app, "err", err)
	}
}

// validateRingSize bounds how many recently estimated specs the drift
// validator keeps eligible for re-validation.
const validateRingSize = 64

// validateTarget is one estimated spec the validator can re-run live:
// the wire request (so it re-resolves exactly as served) and its
// canonical key (for dedup).
type validateTarget struct {
	wire RunRequest
	key  string
}

// driftValidator is the estimate tier's ground-truthing loop: it
// samples recently estimated specs, re-runs them live (traced), records
// the observed relative error in a histogram, and refreshes the
// library trace — fresh recording plus fresh baseline — whenever drift
// exceeds the estimate tolerance. The live re-run is traced, so it
// bypasses the result cache in both directions and measures the
// engine of record, not a memo.
type driftValidator struct {
	s     *Server
	drift *obs.Histogram

	mu   sync.Mutex
	ring []validateTarget
	next int // round-robin cursor

	validations atomic.Uint64
	refreshes   atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
}

// driftBuckets resolve the drift histogram around the tolerance
// (0.25): the low buckets watch the healthy ~5% knob-variation band,
// the high ones catch traces that must be refreshed.
var driftBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

func newDriftValidator(s *Server, reg *obs.Registry, lbl obs.Labels) *driftValidator {
	v := &driftValidator{s: s}
	v.ctx, v.cancel = context.WithCancel(context.Background())
	v.drift = reg.Histogram("hybridserved_estimate_drift",
		"Observed relative error of estimated answers re-run live by the drift validator.",
		lbl, driftBuckets)
	reg.CounterFunc("hybridserved_estimate_validations_total",
		"Estimated specs re-run live by the drift validator.", lbl,
		func() float64 { return float64(v.validations.Load()) })
	reg.CounterFunc("hybridserved_estimate_refreshes_total",
		"Library traces replaced because their estimates drifted past tolerance.", lbl,
		func() float64 { return float64(v.refreshes.Load()) })
	return v
}

// note enrolls a served estimate for future validation, deduplicating
// by canonical key and evicting the oldest entry past the ring bound.
func (v *driftValidator) note(wire RunRequest, key string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, t := range v.ring {
		if t.key == key {
			return
		}
	}
	if len(v.ring) >= validateRingSize {
		v.ring = append(v.ring[:0], v.ring[1:]...)
		if v.next > 0 {
			v.next--
		}
	}
	v.ring = append(v.ring, validateTarget{wire: wire, key: key})
}

// pick returns the next target round-robin; ok is false on an empty
// ring. Targets stay enrolled — an estimate that keeps being served
// keeps being spot-checked.
func (v *driftValidator) pick() (validateTarget, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.ring) == 0 {
		return validateTarget{}, false
	}
	if v.next >= len(v.ring) {
		v.next = 0
	}
	t := v.ring[v.next]
	v.next++
	return t, true
}

// relErrU64 is |est-live| relative to live, flooring the denominator
// at 1 so zero-valued truths compare exactly.
func relErrU64(est, live uint64) float64 {
	d := float64(est) - float64(live)
	if d < 0 {
		d = -d
	}
	den := float64(live)
	if den < 1 {
		den = 1
	}
	return d / den
}

// validateOnce ground-truths one sampled estimate: estimate again (the
// library may have moved on), run live under tracing, observe the
// worst relative error across the estimate's accuracy contract
// (stalls, pages migrated), and refresh the resident trace when the
// error exceeds tolerance. Returns nil with nothing to do.
func (v *driftValidator) validateOnce(ctx context.Context) error {
	t, ok := v.pick()
	if !ok {
		return nil
	}
	spec, p, err := v.s.resolve(t.wire)
	if err != nil {
		return err
	}
	est, ok := p.Estimate(spec)
	if !ok {
		// The trace answering this spec was evicted or replaced since;
		// nothing left to validate.
		return nil
	}
	// The live run takes a normal admission slot: validation yields to
	// client traffic rather than competing unaccounted.
	release, err := v.s.adm.Acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	var trc bytes.Buffer
	live, err := p.With(hybridmem.WithTrace(&trc)).Run(ctx, spec)
	if err != nil {
		return err
	}
	drift := relErrU64(est.MigrationStallCycles, live.MigrationStallCycles)
	if e := relErrU64(est.PagesMigrated, live.PagesMigrated); e > drift {
		drift = e
	}
	v.drift.Observe(drift)
	v.validations.Add(1)
	if drift > estimate.Tolerance {
		base, berr := estimate.EncodeBase(t.key, spec, live)
		if berr != nil {
			return berr
		}
		if _, perr := v.s.lib.PutWithBase(trc.Bytes(), base); perr != nil {
			return perr
		}
		v.refreshes.Add(1)
		v.s.log.Warn("estimate drifted past tolerance; library trace refreshed",
			"key", t.key, "drift", drift, "tolerance", estimate.Tolerance)
	}
	return nil
}

// start launches the periodic validation loop.
func (v *driftValidator) start(every time.Duration) {
	v.wg.Add(1)
	go func() {
		defer v.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-v.ctx.Done():
				return
			case <-tick.C:
				if err := v.validateOnce(v.ctx); err != nil && v.ctx.Err() == nil {
					v.s.log.Warn("estimate drift validation failed", "err", err)
				}
			}
		}
	}()
}

// close stops the validation loop and waits for an in-flight
// validation to finish.
func (v *driftValidator) close() {
	v.once.Do(func() {
		v.cancel()
		v.wg.Wait()
	})
}

// ValidateOnce runs one drift-validation step synchronously: pick a
// recently estimated spec, re-run it live, record the observed
// relative error, refresh the library trace if it drifted past
// tolerance. A no-op (nil) when no estimates have been served or the
// node has no trace library. Exposed for tests and operational tools;
// the background loop (Config.ValidateEvery) calls exactly this.
func (s *Server) ValidateOnce(ctx context.Context) error {
	if s.validator == nil {
		return nil
	}
	return s.validator.validateOnce(ctx)
}

// EstimateValidations reports how many drift validations have run and
// how many library refreshes they triggered.
func (s *Server) EstimateValidations() (validations, refreshes uint64) {
	if s.validator == nil {
		return 0, 0
	}
	return s.validator.validations.Load(), s.validator.refreshes.Load()
}

// Close stops the server's background work — the estimate drift
// validator, if one is running. In-flight HTTP requests are
// unaffected; the server remains usable as an http.Handler.
func (s *Server) Close() {
	if s.validator != nil {
		s.validator.close()
	}
}
