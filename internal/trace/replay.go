package trace

import (
	"fmt"
	"io"

	"repro/internal/policy"
)

// ReplayStats is the outcome of re-driving one policy over a recorded
// trace, entirely offline: no machine, kernel, or jvm is constructed.
//
// Two kinds of numbers coexist here. When the replayed policy emits
// exactly the recorded action stream (the same policy, or one that
// happens to agree), migration and stall totals are the recorded
// executed costs and therefore equal the live run's Result fields
// bit-for-bit. When it diverges — the point of prototyping a new
// policy offline — they are estimates priced with the recorded cost
// constants, and the PCM write accounting models each group's window
// writes landing on whichever tier the replayed decision history put
// it on. Estimates are approximations: recorded views reflect the
// recorded policy's placement history, and a different policy would
// have bent that history (and the heat signal itself) its own way.
type ReplayStats struct {
	// Policy is the replayed policy; RecordedPolicy the one that
	// produced the trace.
	Policy         string
	RecordedPolicy string
	// Quanta counts replayed quantum records; Actions the migration
	// decisions the replayed policy emitted (post-truncation).
	Quanta  uint64
	Actions uint64
	// PagesMigrated and StallCycles total the migration work: recorded
	// executed costs on matching quanta, estimates on divergent ones.
	PagesMigrated uint64
	StallCycles   float64
	// MatchesRecorded reports the differential invariant: every
	// quantum's replayed actions equaled the recorded actions.
	// FirstMismatchQuantum is the earliest diverging quantum (0 when
	// none diverged).
	MatchesRecorded      bool
	FirstMismatchQuantum uint64
	// PCMWriteLines estimates the window write traffic that lands on
	// PCM under the replayed policy's decisions;
	// BaselinePCMWriteLines is the same accounting with no migrations
	// at all (every group stays on its first-observed tier), and
	// RecordedPCMWriteLines is the traffic as the recorded run
	// actually placed it. Reduction vs the baseline is the offline
	// figure of merit for a prototyped policy.
	PCMWriteLines         uint64
	BaselinePCMWriteLines uint64
	RecordedPCMWriteLines uint64
	// Final-view residency: heap-group pages per emulated tier at each
	// process's last recorded view, placed by the replayed decision
	// history (Replayed*) vs the recorded run's own placement
	// (Recorded*). The difference is what a policy swap shifts between
	// tiers — the estimate-first serving tier adds it to a measured
	// baseline Result to price residency without re-emulating. Only a
	// cleanly terminated replay fills these; a corrupt tail leaves them
	// zero, because a stranded delta chain has no trustworthy final
	// view.
	ReplayedDRAMPages uint64
	ReplayedPCMPages  uint64
	RecordedDRAMPages uint64
	RecordedPCMPages  uint64
}

// PCMWriteReduction returns the estimated fraction of baseline PCM
// write traffic the replayed policy's placements avoid (0 when the
// trace saw no PCM writes).
func (s ReplayStats) PCMWriteReduction() float64 {
	if s.BaselinePCMWriteLines == 0 {
		return 0
	}
	return 1 - float64(s.PCMWriteLines)/float64(s.BaselinePCMWriteLines)
}

// Replay re-drives pol over the trace in src with the knob
// configuration the trace header recorded. It returns the stats for
// every record consumed; on a corrupt trace the stats cover the valid
// prefix and the error (ErrCorrupt with the offending line, or
// ErrVersion from the header) reports why the replay stopped.
//
// The valid prefix ends at the last complete keyframe interval before
// the corruption, not at the last parseable record: v2 delta records
// only reconstruct against their process's chain back to the interval
// keyframe, so a corrupt line inside an interval strands every record
// the chain would have fed after it — replaying past the boundary
// would charge half-reconstructed views as if they were real. The
// replay engine snapshots its state at each keyframe boundary and
// rolls back to the last one when the stream dies.
func Replay(src io.Reader, pol policy.Policy) (ReplayStats, error) {
	return ReplayReader(NewReader(src), pol)
}

// ReplayWith is Replay with the policy knobs injected per call instead
// of taken from the trace header: pol's Decide runs (and its action
// list truncates) under cfg, not under the recorded configuration.
// This is what turns one recorded trace into a whole knob-grid sweep —
// internal/autotune prices every grid point through here — and it
// preserves the differential invariant as a special case: replaying
// the recorded policy with exactly the recorded knobs reproduces the
// recorded action stream and costs bit-identically.
//
// Only the decision knobs come from cfg; the migration cost constants
// still come from the header, because they describe the recorded
// kernel, not the policy. A zero cfg.Kind with non-zero knobs is
// respected as given (after WithDefaults), so a caller can sweep one
// knob while holding the rest at their registry defaults.
func ReplayWith(src io.Reader, pol policy.Policy, cfg policy.Config) (ReplayStats, error) {
	return replayReader(NewReader(src), pol, &cfg)
}

// ReplayReader is Replay over an existing Reader (e.g. one whose
// Header the caller already inspected).
func ReplayReader(r *Reader, pol policy.Policy) (ReplayStats, error) {
	return replayReader(r, pol, nil)
}

// ReplayReaderWith is ReplayWith over an existing Reader.
func ReplayReaderWith(r *Reader, pol policy.Policy, cfg policy.Config) (ReplayStats, error) {
	return replayReader(r, pol, &cfg)
}

// DecodeAll reads a whole trace into memory: the header and every
// quantum record. On corruption the decoded prefix is returned
// together with the ErrCorrupt (ErrVersion for a skewed header), so
// callers that replay the same trace many times — the autotuner
// replays it once per knob-grid point — decode the bytes once and
// replay the in-memory records via ReplayDecoded instead of re-parsing
// JSON per replay.
//
// On corruption the returned prefix is truncated to the last complete
// keyframe interval (see Replay): records decoded after the final
// boundary belong to delta chains the corruption may have stranded, so
// they are dropped rather than replayed half-valid.
func DecodeAll(src io.Reader) (Header, []Quantum, error) {
	r := NewReader(src)
	h, err := r.Header()
	if err != nil {
		return Header{}, nil, err
	}
	var quanta []Quantum
	for {
		q, err := r.Next()
		if err == io.EOF {
			return h, quanta, nil
		}
		if err != nil {
			if k := h.KeyframeInterval; k > 0 {
				quanta = quanta[:len(quanta)-len(quanta)%k]
			}
			return h, quanta, err
		}
		quanta = append(quanta, q)
	}
}

// ReplayDecoded is ReplayWith over an already-decoded trace: pol is
// re-driven across the quanta under cfg, priced with the header's
// recorded cost constants. The records are only read, never mutated,
// so one decoded trace serves any number of concurrent replays.
func ReplayDecoded(h Header, quanta []Quantum, pol policy.Policy, cfg policy.Config) (ReplayStats, error) {
	i := 0
	next := func() (Quantum, error) {
		if i == len(quanta) {
			return Quantum{}, io.EOF
		}
		q := quanta[i]
		i++
		return q, nil
	}
	override := cfg
	// The in-memory source cannot fail mid-stream (DecodeAll already
	// truncated any corrupt tail to a keyframe boundary), so the loop
	// skips its rollback snapshots.
	return replayLoop(h, next, pol, &override, false)
}

// replayReader drives the streaming replay. override, when non-nil, is
// the injected knob configuration; nil means the header's recorded
// knobs.
func replayReader(r *Reader, pol policy.Policy, override *policy.Config) (ReplayStats, error) {
	if pol == nil {
		return ReplayStats{MatchesRecorded: true}, fmt.Errorf("trace: replay needs a policy")
	}
	h, err := r.Header()
	if err != nil {
		return ReplayStats{MatchesRecorded: true, Policy: pol.Name()}, err
	}
	return replayLoop(h, r.Next, pol, override, true)
}

// replayLoop is the replay engine: quanta arrive from next (io.EOF
// ends the trace; any other error is surfaced with the prefix stats).
// With canFail set, the loop snapshots its state at every keyframe
// boundary and restores the last snapshot when next fails, so the
// reported prefix never includes records from a stranded delta chain.
func replayLoop(h Header, next func() (Quantum, error), pol policy.Policy, override *policy.Config, canFail bool) (ReplayStats, error) {
	st := ReplayStats{MatchesRecorded: true}
	if pol == nil {
		return st, fmt.Errorf("trace: replay needs a policy")
	}
	st.Policy = pol.Name()
	st.RecordedPolicy = h.Policy
	cfg := h.PolicyConfig()
	if override != nil {
		cfg = override.WithDefaults()
	}

	// tiers tracks each group's tier under three decision histories:
	// none (baseline), the recorded run's, and the replayed policy's.
	// All three seed from the group's first-observed tier. The key
	// includes the quantum's process: multiprogrammed instances share
	// one virtual heap layout, so the same group address in two
	// processes is two different groups.
	type groupKey struct {
		proc string
		addr uint64
	}
	type groupTier struct {
		baseline int
		replayed int
	}
	tiers := map[groupKey]*groupTier{}

	// lastView remembers each process's most recent view so a clean EOF
	// can sum final residency per tier under the recorded vs replayed
	// decision histories. The slices are only read, never mutated.
	lastView := map[string][]policy.GroupStat{}

	// Rollback snapshot: the stats as of the last keyframe boundary
	// (record indexes 0, K, 2K, ...). Taken only when the source can
	// fail mid-stream; the tier maps need no snapshot because an error
	// ends the loop — there is no accounting after the restore.
	k := h.KeyframeInterval
	snapshot := canFail && k > 0
	snapStats := st

	for idx := 0; ; idx++ {
		if snapshot && idx%k == 0 {
			snapStats = st
		}
		q, err := next()
		if err == io.EOF {
			for proc, groups := range lastView {
				for _, g := range groups {
					pages := uint64(g.Pages)
					if gt, ok := tiers[groupKey{proc, g.Addr}]; ok && gt.replayed == policy.PCMNode {
						st.ReplayedPCMPages += pages
					} else {
						st.ReplayedDRAMPages += pages
					}
					if g.Node == policy.PCMNode {
						st.RecordedPCMPages += pages
					} else {
						st.RecordedDRAMPages += pages
					}
				}
			}
			return st, nil
		}
		if err != nil {
			if snapshot {
				// Records past the last boundary may sit on a delta
				// chain the corruption stranded: discard them.
				st = snapStats
			}
			return st, err
		}
		st.Quanta++
		lastView[q.Proc] = q.View.Groups

		// Window write accounting under each placement history. The
		// recorded view's Node is the recorded run's placement; pages
		// is what a migration of this group would move.
		pages := make(map[uint64]int, len(q.View.Groups))
		for _, g := range q.View.Groups {
			pages[g.Addr] = g.Pages
			gt, ok := tiers[groupKey{q.Proc, g.Addr}]
			if !ok {
				gt = &groupTier{baseline: g.Node, replayed: g.Node}
				tiers[groupKey{q.Proc, g.Addr}] = gt
			}
			if g.WriteLines == 0 {
				continue
			}
			if gt.baseline == policy.PCMNode {
				st.BaselinePCMWriteLines += g.WriteLines
			}
			if g.Node == policy.PCMNode {
				st.RecordedPCMWriteLines += g.WriteLines
			}
			if gt.replayed == policy.PCMNode {
				st.PCMWriteLines += g.WriteLines
			}
		}

		// Re-drive the policy against the recorded view, exactly as
		// the engine would: decide, then truncate.
		actions := pol.Decide(q.View, cfg)
		if len(actions) > cfg.MaxGroupsPerQuantum {
			actions = actions[:cfg.MaxGroupsPerQuantum]
		}
		st.Actions += uint64(len(actions))

		if actionsEqual(actions, q.Actions) {
			// Bit-identical decision: the engine's executed costs are
			// exactly what this policy's run charged.
			for _, e := range q.Exec {
				st.PagesMigrated += uint64(e.Moved)
				st.StallCycles += e.Stall
			}
		} else {
			if st.MatchesRecorded {
				st.MatchesRecorded = false
				st.FirstMismatchQuantum = q.Q
			}
			// Divergent decision: price it with the recorded cost
			// constants, moving every resident page of the group.
			for _, a := range actions {
				moved := pages[a.Addr]
				st.PagesMigrated += uint64(moved)
				st.StallCycles += float64(moved)*h.MigrationPageCycles + h.TLBShootdownCycles
			}
		}

		// The replayed decision history owns the replayed tier map.
		for _, a := range actions {
			if gt, ok := tiers[groupKey{q.Proc, a.Addr}]; ok && a.From != a.To {
				gt.replayed = a.To
			}
		}
	}
}

// actionsEqual compares action lists, treating nil and empty alike.
func actionsEqual(a, b []policy.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
