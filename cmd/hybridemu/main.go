// Command hybridemu runs a single hybrid-memory experiment on the
// emulation platform and reports the measured iteration's PCM/DRAM
// traffic, write rates, and PCM lifetime projection.
//
// Usage:
//
//	hybridemu -app lusearch -gc KG-W [-instances 4] [-dataset large]
//	          [-mode emul|sim] [-native] [-l3mb 20] [-scale quick|std|full]
//	          [-policy static|first-touch|write-threshold|wear-level]
//	          [-store DIR] [-trace out.ndjson]
//
// -trace records the run's per-quantum placement trace (views, policy
// actions, executed migration costs) as versioned ndjson; replay it
// offline with cmd/policyreplay. A traced run always computes — the
// result cache and store are bypassed — and an unwritable trace path
// exits 2 before any work runs.
//
// Bad flag values exit with status 2 and the platform's typed-error
// message (unknown application, unknown collector, ...); run failures
// exit with status 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	hybridmem "repro"
	"repro/internal/lifetime"
)

func main() {
	app := flag.String("app", "lusearch", "benchmark name (see -list)")
	gcName := flag.String("gc", "KG-W", "collector: PCM-Only, KG-N, KG-B, KG-N+LOO, KG-B+LOO, KG-W, KG-W-LOO, KG-W-MDO")
	instances := flag.Int("instances", 1, "multiprogramming degree (1, 2, 4)")
	dataset := flag.String("dataset", "default", "default or large")
	mode := flag.String("mode", "emul", "emul or sim")
	native := flag.Bool("native", false, "run the C++ implementation (GraphChi apps)")
	l3mb := flag.Int("l3mb", 0, "override the shared L3 size in MB")
	scale := flag.String("scale", "std", "input scale: quick, std, or full")
	policyName := flag.String("policy", "static", "placement policy: static, first-touch, write-threshold, wear-level")
	seed := flag.Uint64("seed", 1, "workload seed")
	storeDir := flag.String("store", "", "durable result store directory: identical reruns replay from disk")
	tracePath := flag.String("trace", "", "record the per-quantum placement trace to this ndjson file (see policyreplay)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	// Bad flag values exit 2 with the platform's typed-error message;
	// nothing below panics or dumps usage on user input.
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hybridemu: %v\n", err)
		os.Exit(2)
	}

	sc, err := hybridmem.ParseScale(*scale)
	if err != nil {
		fail(err)
	}

	if *list {
		for _, n := range hybridmem.Apps() {
			fmt.Println(n)
		}
		return
	}

	kind, err := hybridmem.ParseCollector(*gcName)
	if err != nil {
		fail(err)
	}
	ds, err := hybridmem.ParseDataset(*dataset)
	if err != nil {
		fail(err)
	}
	md, err := hybridmem.ParseMode(*mode)
	if err != nil {
		fail(err)
	}
	pol, err := hybridmem.ParsePolicy(*policyName)
	if err != nil {
		fail(err)
	}
	if *instances < 1 {
		fail(fmt.Errorf("-instances must be at least 1, got %d", *instances))
	}
	if *native && pol != hybridmem.Static {
		// Native runs have no GC safepoints for the engine to hook;
		// say so instead of printing a policy that had no effect.
		fmt.Fprintf(os.Stderr, "hybridemu: note: -policy %s is ignored for native runs\n", pol)
		pol = hybridmem.Static
	}

	opts := []hybridmem.Option{
		hybridmem.WithScale(sc),
		hybridmem.WithSeed(*seed),
		hybridmem.WithMode(md),
		hybridmem.WithPolicy(pol),
	}
	if *l3mb > 0 {
		opts = append(opts, hybridmem.WithL3MB(*l3mb))
	}
	if *storeDir != "" {
		opts = append(opts, hybridmem.WithStore(*storeDir))
	}
	p := hybridmem.New(opts...)

	spec := hybridmem.RunSpec{
		AppName:   *app,
		Collector: kind,
		Instances: *instances,
		Dataset:   ds,
		Native:    *native,
	}
	if err := p.Validate(spec); err != nil {
		fail(fmt.Errorf("%w (see -list)", err))
	}

	var traceFile *os.File
	if *tracePath != "" {
		// Opened only after the spec validates: an unwritable path is
		// a flag mistake that exits 2 before any platform work, and a
		// bad -app/-gc must not truncate a previously recorded trace.
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(fmt.Errorf("opening -trace file: %w", err))
		}
		traceFile = f
		p = p.With(hybridmem.WithTrace(f))
	}

	res, err := p.Run(context.Background(), spec)
	if err != nil {
		// Typed spec errors are the caller's fault (exit 2); everything
		// else is a platform failure (exit 1).
		code := 1
		if errors.Is(err, hybridmem.ErrUnknownApp) || errors.Is(err, hybridmem.ErrUnknownCollector) {
			code = 2
		}
		fmt.Fprintf(os.Stderr, "hybridemu: %v\n", err)
		os.Exit(code)
	}

	lang := "Java"
	if *native {
		lang = "C++"
	}
	fmt.Printf("%s %s x%d (%s, %s, %s scale", lang, *app, *instances, kind, md, sc)
	if pol != hybridmem.Static {
		fmt.Printf(", %s policy", pol)
	}
	fmt.Println(")")
	fmt.Printf("  measured iteration:  %.4f s\n", res.Seconds)
	fmt.Printf("  PCM writes:          %d lines (%.2f MB)\n", res.PCMWriteLines, float64(res.PCMWriteBytes())/1e6)
	fmt.Printf("  DRAM writes:         %d lines (%.2f MB)\n", res.DRAMWriteLines, float64(res.DRAMWriteBytes())/1e6)
	fmt.Printf("  PCM write rate:      %.1f MB/s (recommended limit %.0f MB/s)\n",
		res.PCMRateMBs(), hybridmem.RecommendedRateMBs())
	fmt.Printf("  QPI traffic:         %d read / %d write lines\n", res.QPI.ReadLines, res.QPI.WriteLines)
	fmt.Printf("  tier residency:      %d DRAM / %d PCM pages\n", res.DRAMResidentPages, res.PCMResidentPages)
	if pol != hybridmem.Static {
		fmt.Printf("  pages migrated:      %d (%d stall cycles)\n", res.PagesMigrated, res.MigrationStallCycles)
	}
	if len(res.RuntimeStats) > 0 {
		s := res.RuntimeStats[0]
		fmt.Printf("  GCs (instance 0):    %d minor / %d observer / %d full\n",
			s.MinorGCs, s.ObserverGCs, s.FullGCs)
		fmt.Printf("  allocation:          %.1f MB in %d objects\n",
			float64(s.AllocBytes)/1e6, s.AllocObjects)
	}
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"10M writes/cell", lifetime.Prototype1Endurance},
		{"30M writes/cell", lifetime.Prototype2Endurance},
		{"50M writes/cell", lifetime.Prototype3Endurance},
	} {
		years := hybridmem.LifetimeYears(lifetime.DefaultPCMBytes, e.v, res.PCMRateMBs())
		fmt.Printf("  lifetime @ %s: %.0f years\n", e.name, years)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hybridemu: closing trace: %v\n", err)
			os.Exit(1)
		}
		if fi, err := os.Stat(*tracePath); err == nil {
			fmt.Printf("  trace:               %s (%d bytes; replay with policyreplay -trace %s)\n",
				*tracePath, fi.Size(), *tracePath)
		}
	}
}
