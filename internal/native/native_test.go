package native

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
)

func run(t *testing.T, body func(r *Runtime)) (*machine.Machine, *Runtime) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.NodeBytes = 2 << 30
	m := machine.New(cfg)
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	var rt *Runtime
	p := k.NewProcess("cpp", 1, func(p *kernel.Process) {
		r, err := NewRuntime(p, 256<<20, 1)
		if err != nil {
			panic(err)
		}
		rt = r
		body(r)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	return m, rt
}

func TestMallocFreeRecycle(t *testing.T) {
	_, rt := run(t, func(r *Runtime) {
		a := r.Malloc(100)
		if a == 0 {
			t.Fatal("malloc returned 0")
		}
		r.Free(a)
		b := r.Malloc(100)
		if b != a {
			t.Errorf("LIFO recycle expected %#x, got %#x", a, b)
		}
	})
	if rt.Stats.Mallocs != 2 || rt.Stats.Frees != 1 {
		t.Errorf("stats = %+v", rt.Stats)
	}
}

func TestMallocDistinctBlocks(t *testing.T) {
	_, _ = run(t, func(r *Runtime) {
		seen := map[uint64]bool{}
		for i := 0; i < 100; i++ {
			a := r.Malloc(64)
			if seen[a] {
				t.Fatalf("block %#x handed out twice", a)
			}
			seen[a] = true
		}
	})
}

func TestNoZeroInitWrites(t *testing.T) {
	// A large malloc must write only the header, not the payload:
	// the key allocation-volume difference from the managed runtime.
	m, _ := run(t, func(r *Runtime) {
		r.Malloc(1 << 20)
	})
	m.DrainCaches()
	// Header is 16 bytes -> a single line write (plus nothing else).
	if w := m.Node(1).WriteLines(); w > 4 {
		t.Errorf("malloc of 1MB wrote %d lines; payload must not be zeroed", w)
	}
}

func TestAccountingPeak(t *testing.T) {
	_, rt := run(t, func(r *Runtime) {
		a := r.Malloc(1 << 20)
		b := r.Malloc(1 << 20)
		r.Free(a)
		r.Free(b)
		c := r.Malloc(512 << 10)
		_ = c
	})
	if rt.Stats.AllocBytes != (2<<20)+(512<<10) {
		t.Errorf("AllocBytes = %d", rt.Stats.AllocBytes)
	}
	if rt.Stats.PeakBytes != 2<<20 {
		t.Errorf("PeakBytes = %d, want %d", rt.Stats.PeakBytes, 2<<20)
	}
	if rt.LiveBlocks() != 1 {
		t.Errorf("LiveBlocks = %d, want 1", rt.LiveBlocks())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, _ = run(t, func(r *Runtime) {
		a := r.Malloc(64)
		r.Free(a)
		defer func() {
			if recover() == nil {
				t.Error("double free should panic")
			}
		}()
		r.Free(a)
	})
}

func TestHeapBoundToNode(t *testing.T) {
	m, _ := run(t, func(r *Runtime) {
		// Stream a working set far larger than the caches.
		a := r.Malloc(4 << 20)
		for pass := 0; pass < 2; pass++ {
			for off := 0; off < 64<<20; off += 64 {
				r.Write(a, off%(4<<20), 8)
			}
		}
	})
	m.DrainCaches()
	if m.Node(1).WriteLines() == 0 {
		t.Error("heap writes must land on the bound node 1")
	}
	if m.Node(0).WriteLines() != 0 {
		t.Error("no writes should reach node 0")
	}
}

func TestWritesThroughCache(t *testing.T) {
	m, _ := run(t, func(r *Runtime) {
		a := r.Malloc(4 << 10)
		for i := 0; i < 1000; i++ {
			r.Write(a, 0, 8)
		}
	})
	// Without draining, the hot line stays in cache: at most the
	// header + one payload line could have leaked.
	if w := m.Node(1).WriteLines(); w > 2 {
		t.Errorf("repeated same-line writes leaked %d lines to memory", w)
	}
}
