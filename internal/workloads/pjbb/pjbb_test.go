package pjbb

import (
	"testing"

	"repro/internal/workloads"
)

func TestMetadata(t *testing.T) {
	a := New()
	if a.Name() != "pjbb" {
		t.Errorf("name = %q", a.Name())
	}
	if a.Suite() != workloads.Pjbb {
		t.Errorf("suite = %v", a.Suite())
	}
	if a.NurseryMB() != 4 {
		t.Errorf("nursery = %d, want 4", a.NurseryMB())
	}
	if !a.HasLargeDataset() {
		t.Error("pjbb carries a large dataset in the evaluation")
	}
	// The paper: Pjbb's heap (400 MB) is far larger than the DaCapo
	// average (100 MB); the model keeps that ordering.
	if a.HeapMB() < 150 {
		t.Errorf("heap = %d MB, want the biggest non-graph heap", a.HeapMB())
	}
}

func TestFreshInstances(t *testing.T) {
	if New() == New() {
		t.Error("New must return fresh instances")
	}
}

func TestMatureMutationHeavy(t *testing.T) {
	a := New().(*workloads.ProfileApp)
	if a.P.MatureWriteFrac < 0.3 {
		t.Error("pjbb is warehouse-mutation-heavy; MatureWriteFrac too low")
	}
}
