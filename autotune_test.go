package hybridmem

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// readGoldenTrace loads the committed PR/KG-N write-threshold trace
// (quick scale, seed 1) the autotuner tests price grids against.
func readGoldenTrace(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReplayKnobInjectionDefaultIsRecorded pins the no-regression half
// of knob injection: replaying the golden trace with the registry
// default knobs (what the recording ran under) must reproduce the
// recorded action stream bit-identically and land on exactly the
// recorded totals — the same contract ReplayTrace already gives, now
// through the injected-Config path.
func TestReplayKnobInjectionDefaultIsRecorded(t *testing.T) {
	data := readGoldenTrace(t)
	want, err := ReplayTrace(bytes.NewReader(data), WriteThreshold)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayTraceWith(bytes.NewReader(data), PolicyConfig{Kind: WriteThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if !got.MatchesRecorded {
		t.Errorf("default-knob replay diverged from the recorded stream at quantum %d",
			got.FirstMismatchQuantum)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("injected-default replay = %+v\nheader-knob replay = %+v", got, want)
	}
}

// TestReplayKnobInjectionLowerThresholdPromotesMore asserts the knob
// actually reaches the decisions: a lower hot threshold admits more
// groups to the hot set, so promotions are strictly monotone
// decreasing as the threshold rises (256 → 2100 → 3000 on the golden
// trace, the last two binding below the per-quantum action cap).
func TestReplayKnobInjectionLowerThresholdPromotesMore(t *testing.T) {
	data := readGoldenTrace(t)
	actions := func(hot uint64) uint64 {
		t.Helper()
		st, err := ReplayTraceWith(bytes.NewReader(data),
			PolicyConfig{Kind: WriteThreshold, HotWriteLines: hot})
		if err != nil {
			t.Fatal(err)
		}
		return st.Actions
	}
	low, mid, high := actions(256), actions(2100), actions(3000)
	if !(low > mid && mid > high && high > 0) {
		t.Errorf("promotions not strictly monotone in the hot threshold: hot=256 -> %d, hot=2100 -> %d, hot=3000 -> %d",
			low, mid, high)
	}
}

// TestAutotuneGoldenDeterministicFrontier pins the autotuner's output
// on the committed trace: two searches of the same grid are identical,
// the frontier is non-empty, every frontier point is flagged on the
// full point list, and the frontier's order is the stable objective
// order (stall ascending), not the grid's enumeration order — a
// tighter threshold entering the grid reorders the frontier
// deterministically.
func TestAutotuneGoldenDeterministicFrontier(t *testing.T) {
	data := readGoldenTrace(t)
	grid := KnobGrid{Policy: WriteThreshold, HotWriteLines: []uint64{2100, 3000}}
	ctx := context.Background()
	rep, err := Autotune(ctx, bytes.NewReader(data), grid)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Autotune(ctx, bytes.NewReader(data), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Fatal("two identical autotune searches disagree")
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// Grid order enumerates hot=2100 first; the frontier's stable
	// order leads with the lower-stall hot=3000 point instead.
	if rep.Points[0].HotWriteLines != 2100 {
		t.Fatalf("grid order drifted: first point %+v", rep.Points[0])
	}
	if rep.Frontier[0].HotWriteLines != 3000 {
		t.Fatalf("frontier not in stall-ascending order: first point %+v", rep.Frontier[0])
	}
	for i := 1; i < len(rep.Frontier); i++ {
		if rep.Frontier[i].StallCycles < rep.Frontier[i-1].StallCycles {
			t.Fatalf("frontier unsorted at %d: %+v", i, rep.Frontier)
		}
	}
	flagged := 0
	for _, pt := range rep.Points {
		if pt.Pareto {
			flagged++
		}
	}
	if flagged != len(rep.Frontier) {
		t.Errorf("%d points flagged Pareto, frontier has %d", flagged, len(rep.Frontier))
	}
	if !rep.Recommended.Pareto || !rep.Recommended.Recommended {
		t.Errorf("recommended point not flagged: %+v", rep.Recommended)
	}
}

// TestAutotuneRecommendedMatchesLive is the end-to-end acceptance
// check: the recommended knob point of a grid searched offline against
// the committed golden trace must, when run live at quick scale,
// reproduce the replay's predicted PagesMigrated and StallCycles
// exactly, and the predicted stall ranking across all grid points must
// match the live ranking.
func TestAutotuneRecommendedMatchesLive(t *testing.T) {
	data := readGoldenTrace(t)
	ctx := context.Background()
	grid := KnobGrid{Policy: WriteThreshold,
		HotWriteLines:   []uint64{256, 3000},
		DRAMBudgetPages: []uint64{16384, 32768}}
	rep, err := Autotune(ctx, bytes.NewReader(data), grid)
	if err != nil {
		t.Fatal(err)
	}

	p := New(WithScale(Quick), WithSeed(1))
	spec := RunSpec{AppName: "PR", Collector: KGN}
	liveStalls := make([]uint64, len(rep.Points))
	for i, pt := range rep.Points {
		res, err := p.With(WithPolicyConfig(pt.Config())).Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		liveStalls[i] = res.MigrationStallCycles
		if pt.Recommended {
			if res.PagesMigrated != pt.PagesMigrated {
				t.Errorf("recommended point %+v: live PagesMigrated = %d, replay predicted %d",
					pt.Config(), res.PagesMigrated, pt.PagesMigrated)
			}
			if float64(res.MigrationStallCycles) != pt.StallCycles {
				t.Errorf("recommended point %+v: live stalls = %d, replay predicted %.0f",
					pt.Config(), res.MigrationStallCycles, pt.StallCycles)
			}
		}
	}
	// The predicted stall ordering must survive live measurement: no
	// strictly inverted pair.
	for i := range rep.Points {
		for j := i + 1; j < len(rep.Points); j++ {
			predLess := rep.Points[i].StallCycles < rep.Points[j].StallCycles
			predMore := rep.Points[i].StallCycles > rep.Points[j].StallCycles
			if (predLess && liveStalls[i] > liveStalls[j]) || (predMore && liveStalls[i] < liveStalls[j]) {
				t.Errorf("stall ranking inverted between points %d (%+v) and %d (%+v): predicted %.0f vs %.0f, live %d vs %d",
					i, rep.Points[i].Config(), j, rep.Points[j].Config(),
					rep.Points[i].StallCycles, rep.Points[j].StallCycles, liveStalls[i], liveStalls[j])
			}
		}
	}
}

// transcodeK1 re-encodes a trace with keyframe interval 1 and no
// footer — the streaming shape — so appended garbage lands as a torn
// tail and the prefix-replay contract keeps every complete record
// (at interval 1, every keyframe interval is one record).
func transcodeK1(t *testing.T, data []byte) []byte {
	t.Helper()
	h, quanta, err := trace.DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	h.KeyframeInterval = 1
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range quanta {
		rec.OnQuantum(q.Proc, q.View, q.Actions, q.Exec)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAutotuneCorruptTraceReturnsPrefixReport mirrors policyreplay's
// corruption contract: a garbage tail truncates every grid point at
// the same line, the prefix report is still produced (internally
// comparable), and the error is ErrTraceCorrupt. The golden is
// transcoded to keyframe interval 1 first: at the recorder's default
// interval a torn chain rolls the prefix back to the last complete
// keyframe interval, which for a two-quantum trace is empty.
func TestAutotuneCorruptTraceReturnsPrefixReport(t *testing.T) {
	data := readGoldenTrace(t)
	corrupt := append(transcodeK1(t, data), []byte("{torn")...)
	rep, err := Autotune(context.Background(), bytes.NewReader(corrupt),
		KnobGrid{Policy: WriteThreshold, HotWriteLines: []uint64{256, 3000}})
	if !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("err = %v, want ErrTraceCorrupt", err)
	}
	if len(rep.Points) != 2 || len(rep.Frontier) == 0 {
		t.Fatalf("prefix report missing: %d points, %d frontier", len(rep.Points), len(rep.Frontier))
	}
	for _, pt := range rep.Points {
		if pt.Quanta == 0 {
			t.Errorf("point %+v priced zero prefix quanta", pt.Config())
		}
	}
}

// TestAutotuneVersionSkewFailsUpFront: an incompatible trace version
// must reject the whole search before any point is priced.
func TestAutotuneVersionSkewFailsUpFront(t *testing.T) {
	data := readGoldenTrace(t)
	skewed := bytes.Replace(data, []byte(`{"version":2,`), []byte(`{"version":99,`), 1)
	rep, err := Autotune(context.Background(), bytes.NewReader(skewed),
		KnobGrid{Policy: WriteThreshold})
	if !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("err = %v, want ErrTraceVersion", err)
	}
	if len(rep.Points) != 0 {
		t.Fatalf("version-skewed search still priced %d points", len(rep.Points))
	}
}
