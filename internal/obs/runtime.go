package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterGoRuntime exposes Go runtime health — goroutines, heap, and
// GC pause totals — on r. Memory stats are read at most every 250 ms
// regardless of scrape rate, since ReadMemStats stops the world.
func RegisterGoRuntime(r *Registry, labels Labels) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", labels,
		func() float64 { return float64(runtime.NumGoroutine()) })
	ms := &memStatsCache{}
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", labels,
		func() float64 { return float64(ms.get().HeapAlloc) })
	r.GaugeFunc("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", labels,
		func() float64 { return float64(ms.get().HeapSys) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", labels,
		func() float64 { return float64(ms.get().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", labels,
		func() float64 { return float64(ms.get().PauseTotalNs) / 1e9 })
}

type memStatsCache struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > 250*time.Millisecond {
		runtime.ReadMemStats(&c.ms)
		c.at = time.Now()
	}
	return c.ms
}
