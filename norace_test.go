//go:build !race

package hybridmem

// raceEnabled is false without the race detector; the full acceptance
// grids run. See race_test.go.
const raceEnabled = false
