// Package store is the platform's durable result tier: an
// append-only, content-addressed store of experiment Results keyed by
// the Platform's canonical spec keys.
//
// On disk a store is a directory of JSONL segment files
// (seg-000001.jsonl, seg-000002.jsonl, ...). Each line is one Record:
// the canonical key, a SHA-256 content address over the (key, spec,
// result) payload, the RunSpec that produced it, and the Result
// itself. Records are immutable; a re-Put of an existing key with
// identical content is a no-op, and the last record wins when segments
// disagree (which only happens across Compact generations).
//
// Open replays every segment into an in-memory index. Recovery is
// tolerant: a torn or truncated tail line (the signature of a crash
// mid-append) is dropped, as is any record whose content address does
// not match its payload, and appends continue in a fresh segment so
// corrupt bytes are never extended. Compact rewrites the live index
// into a single new segment and removes the old generation.
//
// All methods are safe for concurrent use.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// RecordVersion is the version stamped into every record this build
// writes. History:
//
//	0 (implicit)  no version field. Pre-placement-engine records also
//	              lack the ";policy=" key segment; replay migrates them
//	              (see replay) when their content address still
//	              verifies, and drops them otherwise.
//	2             the current schema: versioned envelope around the
//	              policy-aware canonical key.
//
// Records from a *newer* version than the running build are skipped on
// load (counted in Stats.SkippedVersion, warned once per Open) rather
// than guessed at: a rolling downgrade must not misread — or worse,
// rewrite — records it does not understand.
const RecordVersion = 2

// Record is one stored experiment: the JSON schema persisted in the
// segment files and served by the hybridserved HTTP API. Changing it
// changes the on-disk and wire format — the golden-file tests freeze
// it.
type Record struct {
	// V is the record-format version (RecordVersion at write time). It
	// is an envelope field: Sum does not cover it, so stamping a
	// migrated record does not change its content address.
	V int `json:"v"`
	// Key is the Platform's canonical spec key: the full effective
	// configuration plus the spec, so equal keys mean bit-identical
	// Results.
	Key string `json:"key"`
	// Sum is the hex SHA-256 over the canonical (key, spec, result)
	// payload — the record's content address, verified on load.
	Sum string `json:"sum"`
	// Spec is the experiment that produced the result.
	Spec core.RunSpec `json:"spec"`
	// Result is the measured iteration's outcome.
	Result core.Result `json:"result"`
}

// payload is the content that Sum addresses.
type payload struct {
	Key    string       `json:"key"`
	Spec   core.RunSpec `json:"spec"`
	Result core.Result  `json:"result"`
}

// Sum computes the content address of a (key, spec, result) payload.
func Sum(key string, spec core.RunSpec, res core.Result) (string, error) {
	b, err := json.Marshal(payload{Key: key, Spec: spec, Result: res})
	if err != nil {
		return "", fmt.Errorf("store: hashing record: %w", err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// Stats is a snapshot of the store's state and activity.
type Stats struct {
	// Records is the number of live keys in the index.
	Records int
	// Segments is the number of segment files on disk.
	Segments int
	// Appends counts records written since Open.
	Appends uint64
	// Dropped counts records discarded during recovery: torn tail
	// lines plus content-address mismatches.
	Dropped int
	// Migrated counts legacy (pre-versioning) records rewritten to the
	// current schema during recovery.
	Migrated int
	// SkippedVersion counts records from a newer RecordVersion than
	// this build understands, left on disk but not loaded.
	SkippedVersion int
	// Bytes is the total size of all segment files.
	Bytes int64
	// LoadSeconds is how long Open spent replaying segments into the
	// index (0 until the first non-shared Open completes).
	LoadSeconds float64
}

// Store is an open result store. Create one with Open.
type Store struct {
	dir string // absolute

	mu       sync.RWMutex
	refs     int // Opens minus Closes; the file closes at zero
	index    map[string]Record
	seg      *os.File // active segment, opened for append
	segPath  string
	segments []string // all segment paths, oldest first
	nextID   int
	appends  uint64
	dropped  int
	migrated int
	skippedV int
	// skippedLines holds newer-version records verbatim so Compact can
	// carry them into the next generation untouched: a downgrade must
	// not destroy data it cannot read.
	skippedLines [][]byte
	closed       bool
	loadSeconds  float64
	appendObs    func(seconds float64)
}

// SetAppendObserver installs a callback receiving the elapsed seconds
// of every successful segment append. Stores are deduplicated per
// directory within the process, so the observer is per-instance state
// shared by everything holding this directory open; the last setter
// wins.
func (s *Store) SetAppendObserver(fn func(seconds float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendObs = fn
}

const segPrefix = "seg-"

// segName formats the segment file name for an id.
func segName(id int) string { return fmt.Sprintf("%s%06d.jsonl", segPrefix, id) }

// registry deduplicates Stores per directory within the process:
// concurrent writers (two platforms on one -store dir) share one
// index and one active segment, so one instance's Compact cannot
// delete a segment another instance is still appending to.
// Concurrent *writing* from separate processes is unsupported.
var (
	registryMu sync.Mutex
	registry   = map[string]*Store{}
)

// Open opens (creating if necessary) the store rooted at dir and
// replays its segments into memory. Opening a directory this process
// already has open returns the same shared Store; each Open is
// balanced by Close, and the last Close releases the files.
func Open(dir string) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if s, ok := registry[abs]; ok {
		s.mu.Lock()
		s.refs++
		s.mu.Unlock()
		return s, nil
	}
	s, err := openDir(abs)
	if err != nil {
		return nil, err
	}
	registry[abs] = s
	return s, nil
}

// openDir builds a fresh Store for an absolute directory.
func openDir(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), ".jsonl") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)

	s := &Store{dir: dir, refs: 1, index: map[string]Record{}, segments: names, nextID: 1}
	loadStart := time.Now()
	cleanTail := true
	for i, name := range names {
		if id, ok := segID(name); ok && id >= s.nextID {
			s.nextID = id + 1
		}
		clean, err := s.replay(name)
		if err != nil {
			return nil, err
		}
		if i == len(names)-1 {
			cleanTail = clean
		}
	}
	s.loadSeconds = time.Since(loadStart).Seconds()

	if s.migrated > 0 || s.skippedV > 0 {
		// One counted line per Open, not per record: a large legacy
		// store migrating on first boot should not scroll the log.
		fmt.Fprintf(os.Stderr, "store: %s: migrated %d legacy record(s), skipped %d newer-version record(s)\n",
			dir, s.migrated, s.skippedV)
	}

	// Reuse the last segment only when it ended cleanly; after a torn
	// tail, appends go to a fresh segment so the corrupt bytes are
	// never extended (the store is append-only — old segments are not
	// rewritten outside Compact).
	if n := len(names); n > 0 && cleanTail {
		s.segPath = names[n-1]
	} else {
		s.segPath = filepath.Join(dir, segName(s.nextID))
		s.nextID++
	}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	return s, nil
}

// segID parses the numeric id out of a segment path.
func segID(path string) (int, bool) {
	base := strings.TrimSuffix(filepath.Base(path), ".jsonl")
	var id int
	if _, err := fmt.Sscanf(base, segPrefix+"%d", &id); err != nil {
		return 0, false
	}
	return id, true
}

// openSegment opens the active segment for appending, registering it
// in the segment list if new. On failure s.seg is nil; Put retries the
// open, so a transient failure (ENOSPC, EMFILE) does not wedge the
// store for the rest of the process.
func (s *Store) openSegment() error {
	s.seg = nil
	f, err := os.OpenFile(s.segPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.seg = f
	found := false
	for _, p := range s.segments {
		if p == s.segPath {
			found = true
			break
		}
	}
	if !found {
		s.segments = append(s.segments, s.segPath)
	}
	return nil
}

// replay loads one segment into the index. It returns whether the
// segment ended cleanly (every line parsed and the file ends in a
// newline); undecodable or mis-addressed lines are dropped and
// counted.
func (s *Store) replay(path string) (clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	clean = true
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			// No trailing newline: a torn final append.
			data = nil
			clean = false
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil {
			s.dropped++
			clean = false
			continue
		}
		if rec.V > RecordVersion {
			// A newer build wrote this; keep it byte-for-byte (so
			// Compact preserves it) but never serve it — its schema is
			// not ours to interpret.
			s.skippedV++
			s.skippedLines = append(s.skippedLines, append([]byte(nil), line...))
			continue
		}
		if rec.V == 0 && legacyKey(rec.Key) {
			// A pre-versioning, pre-placement-engine record: its key
			// predates the ";policy=" segment. Verify its content
			// address as written, then rewrite the key to the modern
			// form (those runs executed under the static policy, the
			// only one that existed) and re-address it. Unverifiable
			// legacy lines are corruption, same as any other segment.
			sum, err := Sum(rec.Key, rec.Spec, rec.Result)
			if err != nil || sum != rec.Sum {
				s.dropped++
				clean = false
				continue
			}
			rec.Key = strings.Replace(rec.Key, ";app=", ";policy=static;app=", 1)
			if rec.Sum, err = Sum(rec.Key, rec.Spec, rec.Result); err != nil {
				s.dropped++
				clean = false
				continue
			}
			rec.V = RecordVersion
			s.migrated++
			s.index[rec.Key] = rec
			continue
		}
		sum, err := Sum(rec.Key, rec.Spec, rec.Result)
		if err != nil || sum != rec.Sum || rec.Key == "" {
			s.dropped++
			clean = false
			continue
		}
		// Records that verify are current content under any version up
		// to ours; stamp so Compact rewrites them at RecordVersion.
		rec.V = RecordVersion
		s.index[rec.Key] = rec
	}
	return clean, nil
}

// legacyKey recognizes a pre-placement-engine canonical key: the
// platform key format, but without the ";policy=" segment the engine
// added.
func legacyKey(key string) bool {
	return strings.HasPrefix(key, "mode=") &&
		strings.Contains(key, ";app=") &&
		!strings.Contains(key, ";policy=")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Get returns the record for a canonical key.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.index[key]
	return rec, ok
}

// Put appends a record for key. Re-putting an identical record is a
// no-op; re-putting a key with different content overwrites it in the
// index (the segment keeps both, Compact drops the shadowed one).
func (s *Store) Put(key string, spec core.RunSpec, res core.Result) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	sum, err := Sum(key, spec, res)
	if err != nil {
		return err
	}
	rec := Record{V: RecordVersion, Key: key, Sum: sum, Spec: spec, Result: res}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if old, ok := s.index[key]; ok && old.Sum == sum {
		return nil
	}
	if s.seg == nil {
		// A previous Compact or Open failed to open the active
		// segment; retry rather than staying wedged.
		if err := s.openSegment(); err != nil {
			return err
		}
	}
	// One Write call per record: the line either lands whole or shows
	// up as a torn tail that recovery drops.
	var t0 time.Time
	if s.appendObs != nil {
		t0 = time.Now()
	}
	if _, err := s.seg.Write(line); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if s.appendObs != nil {
		s.appendObs(time.Since(t0).Seconds())
	}
	s.index[key] = rec
	s.appends++
	return nil
}

// List returns the live records whose key passes the filter (nil
// matches all), sorted by key for deterministic output.
func (s *Store) List(match func(Record) bool) []Record {
	s.mu.RLock()
	recs := make([]Record, 0, len(s.index))
	for _, rec := range s.index {
		if match == nil || match(rec) {
			recs = append(recs, rec)
		}
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// Stats returns a snapshot of the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Records:        len(s.index),
		Segments:       len(s.segments),
		Appends:        s.appends,
		Dropped:        s.dropped,
		Migrated:       s.migrated,
		SkippedVersion: s.skippedV,
		LoadSeconds:    s.loadSeconds,
	}
	for _, p := range s.segments {
		if fi, err := os.Stat(p); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st
}

// Compact rewrites the live index into a single fresh segment and
// removes the previous generation. The new segment is written to a
// temporary file, synced, and renamed before any old segment is
// deleted, so a crash at any point leaves a recoverable store.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}

	newPath := filepath.Join(s.dir, segName(s.nextID))
	tmp, err := os.CreateTemp(s.dir, "compact-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())

	w := bufio.NewWriter(tmp)
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		line, err := json.Marshal(s.index[k])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: encoding record: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	// Newer-version records ride along verbatim: this build cannot read
	// them, so it must not lose them either.
	for _, line := range s.skippedLines {
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), newPath); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// The compacted generation is durable; retire the old one.
	old := s.segments
	if s.seg != nil {
		s.seg.Close()
	}
	for _, p := range old {
		if p != newPath {
			os.Remove(p)
		}
	}
	s.segments = []string{newPath}
	s.nextID++
	// Appends resume in a segment after the compacted one, keeping
	// compacted segments immutable.
	s.segPath = filepath.Join(s.dir, segName(s.nextID))
	s.nextID++
	return s.openSegment()
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close balances one Open. The last Close syncs and closes the files;
// after it, further Puts fail and Gets keep serving the in-memory
// index.
func (s *Store) Close() error {
	registryMu.Lock()
	defer registryMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.refs--; s.refs > 0 {
		return nil
	}
	delete(registry, s.dir)
	s.closed = true
	if s.seg == nil {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
