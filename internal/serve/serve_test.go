package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	hybridmem "repro"
	"repro/internal/store"
	"repro/internal/trace"
)

// newTestServer builds a Quick-scale server and its httptest frontend.
func newTestServer(t *testing.T, opts ...hybridmem.Option) (*hybridmem.Platform, *httptest.Server) {
	t.Helper()
	p := hybridmem.New(append([]hybridmem.Option{hybridmem.WithScale(hybridmem.Quick)}, opts...)...)
	s, err := New(p, Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return p, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("healthz body = %v", out)
	}
}

func TestRunEndpointMatchesDirectRun(t *testing.T) {
	p, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd", Collector: "kgw", Instances: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	var rec store.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}

	spec := hybridmem.RunSpec{AppName: "pmd", Collector: hybridmem.KGW, Instances: 2}
	want, err := p.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Result, want) {
		t.Error("HTTP result is not bit-identical to the direct platform run")
	}
	if rec.Key != p.SpecKey(spec) {
		t.Errorf("Key = %q, want %q", rec.Key, p.SpecKey(spec))
	}
	sum, err := store.Sum(rec.Key, rec.Spec, rec.Result)
	if err != nil || rec.Sum != sum {
		t.Errorf("Sum = %q, want the record's content address %q", rec.Sum, sum)
	}
}

// TestRunCoalescesConcurrentRequests is the service half of the
// acceptance proof: N identical concurrent requests perform exactly
// one platform compute.
func TestRunCoalescesConcurrentRequests(t *testing.T) {
	p, ts := newTestServer(t)
	const n = 8
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []store.Record
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "lusearch", Collector: "KG-N"})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("run = %d", resp.StatusCode)
				return
			}
			var rec store.Record
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results = append(results, rec)
			mu.Unlock()
		}()
	}
	wg.Wait()

	st := p.CacheStats()
	if st.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 compute for %d identical requests", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("cache hits = %d, want %d", st.Hits, n-1)
	}
	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results[1:] {
		if !reflect.DeepEqual(r, results[0]) {
			t.Error("coalesced responses differ")
		}
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		req  RunRequest
		want string
	}{
		{RunRequest{App: "pmd", Collector: "zgc"}, "unknown"},
		{RunRequest{App: "nonsense"}, "unknown"},
		{RunRequest{App: "pmd", Dataset: "huge"}, "unknown"},
		{RunRequest{App: "pmd", Mode: "fpga"}, "unknown"},
		{RunRequest{App: "pmd", Instances: -4}, "instances"},
	} {
		resp := postJSON(t, ts.URL+"/v1/run", tc.req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v -> %d (%s), want 400", tc.req, resp.StatusCode, body)
		}
		if !bytes.Contains(body, []byte(tc.want)) {
			t.Errorf("%+v error body %q lacks %q", tc.req, body, tc.want)
		}
	}
}

func TestSweepStreamsAlignedGrid(t *testing.T) {
	p, ts := newTestServer(t)
	req := SweepRequest{Apps: []string{"pmd"}, Collectors: []string{"PCM-Only", "KG-W"}, Instances: []int{1, 2}}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	specs := hybridmem.NewSweep("pmd").
		Collectors(hybridmem.PCMOnly, hybridmem.KGW).Instances(1, 2).Specs()
	seen := map[int]SweepItem{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item SweepItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if item.Error != "" {
			t.Fatalf("spec %d failed: %s", item.Index, item.Error)
		}
		seen[item.Index] = item
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(specs) {
		t.Fatalf("streamed %d items, want %d", len(seen), len(specs))
	}
	for i, spec := range specs {
		item, ok := seen[i]
		if !ok {
			t.Fatalf("missing item %d", i)
		}
		want, err := p.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if item.Result == nil || !reflect.DeepEqual(*item.Result, want) {
			t.Errorf("item %d result misaligned with Specs()[%d]", i, i)
		}
	}
}

func TestResultsEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, hybridmem.WithStore(dir))
	for _, req := range []RunRequest{
		{App: "pmd", Collector: "KG-W"},
		{App: "lusearch", Collector: "KG-W"},
		{App: "lusearch", Collector: "PCM-Only"},
	} {
		resp := postJSON(t, ts.URL+"/v1/run", req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding run = %d", resp.StatusCode)
		}
	}

	get := func(query string) (int, struct {
		Count   int            `json:"count"`
		Records []store.Record `json:"records"`
	}) {
		resp, err := http.Get(ts.URL + "/v1/results" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Count   int            `json:"count"`
			Records []store.Record `json:"records"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	if code, out := get(""); code != http.StatusOK || out.Count != 3 {
		t.Errorf("unfiltered = %d/%d records, want 200/3", code, out.Count)
	}
	if code, out := get("?app=lusearch"); code != http.StatusOK || out.Count != 2 {
		t.Errorf("app filter = %d/%d, want 200/2", code, out.Count)
	}
	code, out := get("?app=lusearch&collector=pcmonly")
	if code != http.StatusOK || out.Count != 1 {
		t.Fatalf("combined filter = %d/%d, want 200/1", code, out.Count)
	}
	if got := out.Records[0].Spec; got.AppName != "lusearch" || got.Collector != hybridmem.PCMOnly {
		t.Errorf("filtered record spec = %+v", got)
	}
	if code, _ := get("?collector=zgc"); code != http.StatusBadRequest {
		t.Errorf("bad collector filter = %d, want 400", code)
	}

	// Without a store the listing is explicitly unavailable.
	_, plain := newTestServer(t)
	resp, err := http.Get(plain.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("storeless results = %d, want 501", resp.StatusCode)
	}
}

func TestMetrics(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, hybridmem.WithStore(dir))
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, metric := range []string{
		`hybridserved_cache_hits_total{node="local"}`,
		`hybridserved_cache_misses_total{node="local"} 1`,
		`hybridserved_store_misses_total{node="local"} 1`,
		`hybridserved_store_records{node="local"} 1`,
		`hybridserved_inflight_runs{node="local"} 0`,
		`hybridserved_requests_total{node="local"}`,
		`hybridserved_rejected_total{node="local"} 0`,
		`hybridserved_queue_depth{node="local"} 0`,
		`fabric_forwarded_total{node="local"} 0`,
		`fabric_coalesced_total{node="local"} 0`,
		`fabric_degraded_total{node="local"} 0`,
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics missing %q:\n%s", metric, text)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run = %d, want 405", resp.StatusCode)
	}
}

// TestStoreOpenFailsAtStartup checks New fails fast on a bad store
// directory instead of on the first request.
func TestStoreOpenFailsAtStartup(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick), hybridmem.WithStore(bad))
	if _, err := New(p, Config{}); err == nil {
		t.Fatal("New must fail when the store cannot open")
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, hybridmem.WithPolicy(hybridmem.WriteThreshold))
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policies = %d", resp.StatusCode)
	}
	var out struct {
		Count    int `json:"count"`
		Policies []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
			Default     bool   `json:"default"`
		} `json:"policies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 4 || len(out.Policies) != 4 {
		t.Fatalf("policies body = %+v, want 4 entries", out)
	}
	for _, pi := range out.Policies {
		if _, err := hybridmem.ParsePolicy(pi.Name); err != nil {
			t.Errorf("served name %q does not parse back: %v", pi.Name, err)
		}
		if pi.Description == "" {
			t.Errorf("policy %q has no description", pi.Name)
		}
		if pi.Default != (pi.Name == hybridmem.WriteThreshold.String()) {
			t.Errorf("policy %q default flag = %v", pi.Name, pi.Default)
		}
	}
}

func TestRunEndpointPolicyOverride(t *testing.T) {
	p, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "PR", Collector: "KG-N", Policy: "write-threshold"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	var rec store.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Result.PagesMigrated == 0 {
		t.Error("write-threshold request migrated no pages")
	}
	spec := hybridmem.RunSpec{AppName: "PR", Collector: hybridmem.KGN}
	want, err := p.With(hybridmem.WithPolicy(hybridmem.WriteThreshold)).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Result, want) {
		t.Error("HTTP policy run is not bit-identical to the direct platform run")
	}
	if !strings.Contains(rec.Key, "policy=write-threshold") {
		t.Errorf("record key %q does not carry the policy", rec.Key)
	}

	bad := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "PR", Policy: "lru"})
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown policy = %d, want 400", bad.StatusCode)
	}
}

func TestResultsPaging(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results.d")
	_, ts := newTestServer(t, hybridmem.WithStore(dir))

	// Three distinct runs to page over.
	for _, gc := range []string{"PCM-Only", "KG-N", "KG-W"} {
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "lusearch", Collector: gc})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("run %s = %d: %s", gc, resp.StatusCode, body)
		}
		resp.Body.Close()
	}

	type listing struct {
		Count   int            `json:"count"`
		Total   int            `json:"total"`
		Offset  int            `json:"offset"`
		Records []store.Record `json:"records"`
	}
	get := func(query string) listing {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/results" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("results%s = %d: %s", query, resp.StatusCode, body)
		}
		var out listing
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := get("")
	if all.Total != 3 || all.Count != 3 || len(all.Records) != 3 {
		t.Fatalf("unpaged listing = %d/%d records", all.Count, all.Total)
	}

	// Pages partition the listing in order, and total still counts
	// every match.
	var paged []store.Record
	for off := 0; off < all.Total; off += 2 {
		page := get(fmt.Sprintf("?limit=2&offset=%d", off))
		if page.Total != 3 {
			t.Errorf("paged total = %d, want 3", page.Total)
		}
		if page.Offset != off {
			t.Errorf("offset echo = %d, want %d", page.Offset, off)
		}
		if page.Count != len(page.Records) {
			t.Errorf("count %d != %d records", page.Count, len(page.Records))
		}
		paged = append(paged, page.Records...)
	}
	if !reflect.DeepEqual(paged, all.Records) {
		t.Error("pages do not reassemble the full listing in order")
	}

	// Past-the-end offsets are empty, not errors.
	if out := get("?offset=99"); out.Count != 0 || out.Total != 3 {
		t.Errorf("past-the-end page = %d/%d", out.Count, out.Total)
	}
	// limit=0 returns no records but still reports the total.
	if out := get("?limit=0"); out.Count != 0 || out.Total != 3 {
		t.Errorf("limit=0 page = %d/%d", out.Count, out.Total)
	}
	// Paging composes with spec filters.
	if out := get("?collector=KG-N&limit=5"); out.Total != 1 || out.Count != 1 {
		t.Errorf("filtered page = %d/%d, want 1/1", out.Count, out.Total)
	}

	// Malformed paging parameters are client errors.
	for _, q := range []string{"?limit=-1", "?limit=x", "?offset=-3", "?offset=y"} {
		resp, err := http.Get(ts.URL + "/v1/results" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("results%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestSweepPoliciesDimension(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Apps:       []string{"lusearch"},
		Collectors: []string{"KG-N"},
		Policies:   []string{"static", "first-touch"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep = %d: %s", resp.StatusCode, body)
	}
	seen := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	items := 0
	for sc.Scan() {
		var item SweepItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", item.Index, item.Error)
		}
		seen[item.Policy]++
		items++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if items != 2 {
		t.Fatalf("sweep streamed %d items, want 2 (one per policy)", items)
	}
	if seen["static"] != 1 || seen["first-touch"] != 1 {
		t.Errorf("policy passes = %v", seen)
	}

	bad := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Apps: []string{"lusearch"}, Policies: []string{"nope"}})
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown sweep policy = %d, want 400", bad.StatusCode)
	}
}

// TestTraceEndpoint exercises GET /v1/trace: the streamed ndjson must
// be a valid versioned trace whose header names the requested run, and
// replaying it with the requested policy must reproduce the recorded
// action stream bit-identically — the live-vs-replay differential over
// HTTP.
func TestTraceEndpoint(t *testing.T) {
	p, ts := newTestServer(t, hybridmem.WithSeed(11))
	resp, err := http.Get(ts.URL + "/v1/trace?app=lusearch&collector=KG-N&policy=write-threshold")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	hdr, err := trace.NewReader(bytes.NewReader(data)).Header()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.App != "lusearch" || hdr.Collector != "KG-N" || hdr.Policy != "write-threshold" || hdr.Seed != 11 {
		t.Errorf("trace header = %+v", hdr)
	}
	wantKey := p.With(hybridmem.WithPolicy(hybridmem.WriteThreshold)).
		SpecKey(hybridmem.RunSpec{AppName: "lusearch", Collector: hybridmem.KGN})
	if hdr.Key != wantKey {
		t.Errorf("trace key = %q, want %q", hdr.Key, wantKey)
	}

	st, err := hybridmem.ReplayTrace(bytes.NewReader(data), hybridmem.WriteThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quanta == 0 {
		t.Error("streamed trace has no quanta")
	}
	if !st.MatchesRecorded {
		t.Errorf("streamed trace replay diverged at quantum %d", st.FirstMismatchQuantum)
	}

	// The same run again: tracing bypasses the cache, so the second
	// stream must be byte-identical, not empty.
	resp2, err := http.Get(ts.URL + "/v1/trace?app=lusearch&collector=KG-N&policy=write-threshold")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("second trace stream differs from the first")
	}
}

// TestTraceEndpointRejectsBadQuery pins validation-before-streaming.
func TestTraceEndpointRejectsBadQuery(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"?app=nosuchapp",
		"?app=lusearch&collector=nosuchgc",
		"?app=lusearch&policy=lru",
		"?app=lusearch&instances=nope",
		"?app=lusearch&native=maybe",
	} {
		resp, err := http.Get(ts.URL + "/v1/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestAutotuneEndpoint drives POST /v1/autotune end to end: one traced
// run recorded server-side, the grid priced offline, and the report
// returned with a non-empty Pareto frontier and a flagged
// recommendation.
func TestAutotuneEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/autotune", AutotuneRequest{
		Run: RunRequest{App: "PR", Collector: "KG-N"},
		Grid: AutotuneGrid{
			Policy:          "write-threshold",
			HotWriteLines:   []uint64{2100, 3000},
			DRAMBudgetPages: []uint64{16384, 32768},
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("autotune = %d: %s", resp.StatusCode, body)
	}
	var rep hybridmem.AutotuneReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Header.App != "PR" || rep.Header.Policy != "write-threshold" {
		t.Errorf("report header = %+v", rep.Header)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(rep.Points))
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if !rep.Recommended.Recommended || !rep.Recommended.Pareto {
		t.Errorf("recommendation not flagged: %+v", rep.Recommended)
	}
	for _, pt := range rep.Points {
		if pt.Quanta == 0 {
			t.Errorf("point %+v priced zero quanta", pt)
		}
	}
}

// TestAutotuneEndpointRejectsBadRequests pins the endpoint's 400s:
// unknown names, invalid grids, and native runs (no policy quanta).
func TestAutotuneEndpointRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		req  AutotuneRequest
	}{
		{"unknown app", AutotuneRequest{Run: RunRequest{App: "nope"}}},
		{"unknown grid policy", AutotuneRequest{
			Run:  RunRequest{App: "PR", Collector: "KG-N"},
			Grid: AutotuneGrid{Policy: "no-such-policy"}}},
		{"invalid grid value", AutotuneRequest{
			Run:  RunRequest{App: "PR", Collector: "KG-N"},
			Grid: AutotuneGrid{HotWriteLines: []uint64{0}}}},
		{"native run", AutotuneRequest{
			Run: RunRequest{App: "PR", Native: true}}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/autotune", tc.req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestAutotuneEndpointInfersWearLevel: a grid listing only wearFactors
// means wear-level — defaulting it to write-threshold would price
// every point identically and recommend noise.
func TestAutotuneEndpointInfersWearLevel(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/autotune", AutotuneRequest{
		Run:  RunRequest{App: "PR", Collector: "KG-N"},
		Grid: AutotuneGrid{WearFactors: []float64{1.5, 3}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("autotune = %d: %s", resp.StatusCode, body)
	}
	var rep hybridmem.AutotuneReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Header.Policy != "wear-level" {
		t.Errorf("recorded policy = %q, want wear-level (inferred from the grid)", rep.Header.Policy)
	}
	for _, pt := range rep.Points {
		if pt.Policy != "wear-level" {
			t.Errorf("point policy = %q, want wear-level", pt.Policy)
		}
	}
}
