package heap

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/objmodel"
)

// fakeMem records mmap/mbind calls without a real kernel.
type fakeMem struct {
	maps  []string
	binds map[uint64]int
	fail  bool
}

func newFakeMem() *fakeMem { return &fakeMem{binds: map[uint64]int{}} }

func (f *fakeMem) MMap(start, length uint64, node int) error {
	if f.fail {
		return errFake
	}
	f.maps = append(f.maps, "map")
	return nil
}

func (f *fakeMem) MBind(start, length uint64, node int) error {
	f.binds[start] = node
	return nil
}

func (f *fakeMem) MUnmap(start, length uint64) error {
	f.maps = append(f.maps, "unmap")
	return nil
}

type fakeErr string

func (e fakeErr) Error() string { return string(e) }

var errFake = fakeErr("fake mmap failure")

func defaultLayout(t *testing.T) Layout {
	t.Helper()
	l, err := NewLayout(4<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutGeometry(t *testing.T) {
	l := defaultLayout(t)
	if l.NurseryStart != l.DRAMEnd-4<<20 {
		t.Errorf("nursery start = %#x", l.NurseryStart)
	}
	if l.ObserverStart != l.NurseryStart-8<<20 {
		t.Errorf("observer start = %#x", l.ObserverStart)
	}
	if l.ChunkedHiEnd%ChunkBytes != 0 {
		t.Errorf("chunked-hi end %#x not chunk aligned", l.ChunkedHiEnd)
	}
	if l.ChunkedHiEnd > l.ObserverStart {
		t.Errorf("chunked range overlaps observer: %#x > %#x", l.ChunkedHiEnd, l.ObserverStart)
	}
	if l.MetaExtraEnd > HeapBase {
		t.Errorf("metadata regions overrun heap base: %#x", l.MetaExtraEnd)
	}
}

func TestLayoutBoundaryPredicates(t *testing.T) {
	l := defaultLayout(t)
	if !l.InNursery(l.NurseryStart) || !l.InNursery(l.DRAMEnd-1) {
		t.Error("nursery bounds wrong")
	}
	if l.InNursery(l.NurseryStart - 1) {
		t.Error("observer address classified as nursery")
	}
	if !l.InYoung(l.ObserverStart) {
		t.Error("observer should be young")
	}
	if l.InYoung(l.ObserverStart - 1) {
		t.Error("mature address classified as young")
	}
	if !l.PCMPortion(l.PCMStart) || l.PCMPortion(l.PCMEnd) {
		t.Error("PCM portion bounds wrong")
	}
}

func TestLayoutRejectsOversizedNursery(t *testing.T) {
	if _, err := NewLayout(1<<30, 0); err == nil {
		t.Error("nursery larger than DRAM portion should fail")
	}
	if _, err := NewLayout(0, 0); err == nil {
		t.Error("zero nursery should fail")
	}
}

func TestMarkByteAddrDisjointRegions(t *testing.T) {
	l := defaultLayout(t)
	lo := l.MarkByteAddr(l.PCMStart + 512)
	hi := l.MarkByteAddr(l.PCMEnd + 512)
	if lo < l.MetaLoStart || lo >= l.MetaLoEnd {
		t.Errorf("PCM mark byte %#x outside meta-lo", lo)
	}
	if hi < l.MetaHiStart || hi >= l.MetaHiEnd {
		t.Errorf("DRAM mark byte %#x outside meta-hi", hi)
	}
	mdo := l.MarkByteAddrMDO(l.PCMStart + 512)
	if mdo < l.MetaExtraStart || mdo >= l.MetaExtraEnd {
		t.Errorf("MDO mark byte %#x outside extra region", mdo)
	}
}

// Property: distinct 256-byte granules have distinct mark bytes.
func TestMarkByteInjectivityProperty(t *testing.T) {
	l := defaultLayout(t)
	f := func(a, b uint32) bool {
		va := l.PCMStart + uint64(a)%((l.PCMEnd-l.PCMStart)/2)
		vb := l.PCMStart + uint64(b)%((l.PCMEnd-l.PCMStart)/2)
		if va/MarkGranule == vb/MarkGranule {
			return l.MarkByteAddr(va) == l.MarkByteAddr(vb)
		}
		return l.MarkByteAddr(va) != l.MarkByteAddr(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreeListAcquireRelease(t *testing.T) {
	mem := newFakeMem()
	fl := NewFreeList("lo", HeapBase, HeapBase+16*ChunkBytes, 1, mem)
	a, err := fl.Acquire(objmodel.SpaceMaturePCM)
	if err != nil {
		t.Fatal(err)
	}
	if a != HeapBase {
		t.Errorf("first chunk at %#x, want %#x", a, uint64(HeapBase))
	}
	if got := mem.binds[a]; got != 1 {
		t.Errorf("chunk bound to node %d, want 1", got)
	}
	b, err := fl.Acquire(objmodel.SpaceLargePCM)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Error("second acquire returned the same chunk")
	}
	// Release + reacquire must recycle, not remap.
	maps := len(mem.maps)
	fl.Release(a)
	c, err := fl.Acquire(objmodel.SpaceMatureDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("recycle returned %#x, want %#x", c, a)
	}
	if len(mem.maps) != maps {
		t.Error("recycling a chunk performed a new mmap")
	}
	if fl.Recycles != 1 {
		t.Errorf("Recycles = %d, want 1", fl.Recycles)
	}
}

func TestFreeListExhaustion(t *testing.T) {
	mem := newFakeMem()
	fl := NewFreeList("lo", HeapBase, HeapBase+2*ChunkBytes, 1, mem)
	for i := 0; i < 2; i++ {
		if _, err := fl.Acquire(objmodel.SpaceMaturePCM); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fl.Acquire(objmodel.SpaceMaturePCM); err == nil {
		t.Error("exhausted list should fail")
	} else if !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFreeListReleaseUnknownPanics(t *testing.T) {
	fl := NewFreeList("lo", HeapBase, HeapBase+2*ChunkBytes, 1, newFakeMem())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fl.Release(0x1234)
}

func TestContiguousSpaceBumpAndReset(t *testing.T) {
	mem := newFakeMem()
	s, err := NewContiguousSpace(objmodel.SpaceNursery, 0x1000000, 0x1001000, 0, mem)
	if err != nil {
		t.Fatal(err)
	}
	a1, ok := s.Alloc(100)
	if !ok || a1 != 0x1000000 {
		t.Fatalf("first alloc = %#x ok=%v", a1, ok)
	}
	a2, ok := s.Alloc(100)
	if !ok || a2 != 0x1000000+104 { // 100 rounded to 104
		t.Fatalf("second alloc = %#x (want 8-byte aligned bump)", a2)
	}
	if s.Used() != 208 {
		t.Errorf("used = %d, want 208", s.Used())
	}
	if _, ok := s.Alloc(1 << 20); ok {
		t.Error("over-capacity alloc should fail")
	}
	s.Reset()
	if s.Used() != 0 {
		t.Error("reset did not clear usage")
	}
}

func TestChunkedSpaceAllocSweep(t *testing.T) {
	mem := newFakeMem()
	fl := NewFreeList("lo", HeapBase, HeapBase+8*ChunkBytes, 1, mem)
	s := NewChunkedSpace(objmodel.SpaceMaturePCM, fl, LineBytes)
	a1, err := s.Alloc(300) // 2 lines
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Alloc(200) // 1 line
	if err != nil {
		t.Fatal(err)
	}
	if a2 < a1+512 {
		t.Errorf("overlap: %#x then %#x", a1, a2)
	}
	if s.Used() != 3*LineBytes {
		t.Errorf("used = %d, want %d", s.Used(), 3*LineBytes)
	}
	// Sweep with only a2 live: a1's lines become reusable.
	s.SweepPrepare()
	s.SweepMark(a2, 200)
	if rel := s.SweepFinish(); rel != 0 {
		t.Errorf("released %d chunks, want 0 (a2 still live)", rel)
	}
	if s.Used() != LineBytes {
		t.Errorf("used after sweep = %d, want %d", s.Used(), LineBytes)
	}
	a3, err := s.Alloc(300)
	if err != nil {
		t.Fatal(err)
	}
	if a3 >= HeapBase+ChunkBytes {
		t.Error("freed lines were not reused within the first chunk")
	}
	// Sweep with nothing live: the chunk must go back to the list.
	s.SweepPrepare()
	if rel := s.SweepFinish(); rel != 1 {
		t.Errorf("released %d chunks, want 1", rel)
	}
	if s.Chunks() != 0 {
		t.Errorf("chunks = %d, want 0", s.Chunks())
	}
}

func TestChunkedSpaceAcquiresNewChunkWhenFull(t *testing.T) {
	mem := newFakeMem()
	fl := NewFreeList("lo", HeapBase, HeapBase+8*ChunkBytes, 1, mem)
	s := NewChunkedSpace(objmodel.SpaceLargePCM, fl, PageBytes)
	// Fill one chunk exactly.
	for i := 0; i < int(ChunkBytes/PageBytes); i++ {
		if _, err := s.Alloc(PageBytes); err != nil {
			t.Fatal(err)
		}
	}
	if s.Chunks() != 1 {
		t.Fatalf("chunks = %d, want 1", s.Chunks())
	}
	if _, err := s.Alloc(PageBytes); err != nil {
		t.Fatal(err)
	}
	if s.Chunks() != 2 {
		t.Errorf("chunks = %d, want 2", s.Chunks())
	}
}

func TestChunkedSpaceRejectsHugeObjects(t *testing.T) {
	fl := NewFreeList("lo", HeapBase, HeapBase+8*ChunkBytes, 1, newFakeMem())
	s := NewChunkedSpace(objmodel.SpaceLargePCM, fl, PageBytes)
	if _, err := s.Alloc(ChunkBytes + 1); err == nil {
		t.Error("object above chunk size should be rejected")
	}
	if _, err := s.Alloc(0); err == nil {
		t.Error("zero-size alloc should be rejected")
	}
}

// Property: allocations never overlap and always lie inside the
// space's chunks.
func TestChunkedAllocDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		fl := NewFreeList("lo", HeapBase, HeapBase+64*ChunkBytes, 1, newFakeMem())
		s := NewChunkedSpace(objmodel.SpaceMaturePCM, fl, LineBytes)
		type iv struct{ a, b uint64 }
		var got []iv
		for _, sz := range sizes {
			size := uint64(sz%2048) + 1
			addr, err := s.Alloc(size)
			if err != nil {
				return false
			}
			if !s.Contains(addr) {
				return false
			}
			// Granule-rounded extent.
			end := addr + (size+LineBytes-1)/LineBytes*LineBytes
			for _, o := range got {
				if addr < o.b && o.a < end {
					return false
				}
			}
			got = append(got, iv{addr, end})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
