package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

// testConfig is a small machine with tiny caches so that eviction
// behaviour is exercised quickly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NodeBytes = 1 << 30
	cfg.L1 = cache.Config{Name: "L1", Bytes: 1 << 10, Ways: 2}
	cfg.L2 = cache.Config{Name: "L2", Bytes: 4 << 10, Ways: 4}
	cfg.L3 = cache.Config{Name: "L3", Bytes: 16 << 10, Ways: 4}
	return cfg
}

func TestTopology(t *testing.T) {
	m := New(DefaultConfig())
	if m.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", m.Nodes())
	}
	if m.Node(0).Kind().String() != "DRAM" {
		t.Errorf("node 0 kind = %v, want DRAM", m.Node(0).Kind())
	}
	if m.Node(1).Kind().String() != "PCM" {
		t.Errorf("node 1 kind = %v, want PCM", m.Node(1).Kind())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero sockets")
		}
	}()
	New(Config{Sockets: 0})
}

func TestWriteStaysInCacheUntilEviction(t *testing.T) {
	m := New(testConfig())
	th := m.NewThread("app", 0, 0)
	// A single line written repeatedly never reaches memory.
	for i := 0; i < 100; i++ {
		th.Access(0, 8, true)
	}
	if got := m.Node(0).WriteLines(); got != 0 {
		t.Errorf("writes reached memory without eviction: %d", got)
	}
	if m.Node(0).ReadLines() != 1 {
		t.Errorf("fill reads = %d, want 1", m.Node(0).ReadLines())
	}
}

func TestDirtyEvictionReachesHomeNode(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	th := m.NewThread("app", 0, 0)
	// Remote (node 1) address: write a working set far beyond all
	// cache capacity, then stream over it again to force evictions.
	base := cfg.NodeBytes // first address on node 1
	lines := 4 * (16 << 10) / 64
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			th.Access(base+uint64(i)*97*64, 8, true) // stride to spread sets
		}
	}
	if got := m.Node(1).WriteLines(); got == 0 {
		t.Error("no writebacks reached the remote node")
	}
	if got := m.Node(0).WriteLines(); got != 0 {
		t.Errorf("writebacks leaked to node 0: %d", got)
	}
	if m.QPI().WriteLines == 0 {
		t.Error("remote writebacks should cross QPI")
	}
}

func TestSmallWorkingSetAbsorbedByL3(t *testing.T) {
	// The paper's key cache effect: a working set that fits in L3 is
	// absorbed; one that does not leaks writes to memory.
	cfg := testConfig()
	m := New(cfg)
	th := m.NewThread("app", 0, 0)
	small := (4 << 10) / 64 // fits L3 (16 KB)
	for pass := 0; pass < 50; pass++ {
		for i := 0; i < small; i++ {
			th.Access(uint64(i*64), 8, true)
		}
	}
	absorbed := m.Node(0).WriteLines()

	m2 := New(cfg)
	th2 := m2.NewThread("app", 0, 0)
	big := (64 << 10) / 64 // 4x L3
	for pass := 0; pass < 50; pass++ {
		for i := 0; i < big; i++ {
			th2.Access(uint64(i*64), 8, true)
		}
	}
	leaked := m2.Node(0).WriteLines()
	if absorbed*10 > leaked {
		t.Errorf("L3 absorption too weak: small-set writes %d vs big-set %d", absorbed, leaked)
	}
}

func TestClockAdvances(t *testing.T) {
	m := New(testConfig())
	th := m.NewThread("app", 0, 0)
	if th.Cycles() != 0 {
		t.Fatal("fresh thread clock should be 0")
	}
	th.Compute(100)
	if th.Cycles() != 100 {
		t.Errorf("compute cycles = %v, want 100", th.Cycles())
	}
	before := th.Cycles()
	th.Access(0, 8, false) // cold miss -> MemLocal
	if th.Cycles()-before != m.Config().Costs.MemLocal {
		t.Errorf("cold local miss cost = %v, want %v", th.Cycles()-before, m.Config().Costs.MemLocal)
	}
	before = th.Cycles()
	th.Access(0, 8, false) // now an L1 hit
	if th.Cycles()-before != m.Config().Costs.L1Hit {
		t.Errorf("L1 hit cost = %v, want %v", th.Cycles()-before, m.Config().Costs.L1Hit)
	}
}

func TestRemoteCostsMore(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	th := m.NewThread("app", 0, 0)
	th.Access(0, 8, false)
	localCost := th.Cycles()
	th2 := m.NewThread("app2", 0, 1)
	th2.Access(cfg.NodeBytes, 8, false)
	remoteCost := th2.Cycles()
	if remoteCost <= localCost {
		t.Errorf("remote access (%v) should cost more than local (%v)", remoteCost, localCost)
	}
}

func TestParallelismSpeedsClock(t *testing.T) {
	m := New(testConfig())
	th := m.NewThread("app", 0, 0)
	th.Parallelism = 4
	th.Compute(400)
	if th.Cycles() != 100 {
		t.Errorf("4-way parallel compute of 400 = %v cycles, want 100", th.Cycles())
	}
}

func TestSMTPenalty(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	th := m.NewThread("app", 0, 0)
	m.SetRunnable(0, cfg.CoresPerSocket+1) // oversubscribed
	th.Compute(100)
	if th.Cycles() <= 100 {
		t.Errorf("oversubscribed compute = %v cycles, want > 100", th.Cycles())
	}
}

func TestAccessSpanningLines(t *testing.T) {
	m := New(testConfig())
	th := m.NewThread("app", 0, 0)
	// 100 bytes starting at offset 60 spans 3 lines (60..159).
	th.Access(60, 100, false)
	if got := m.Node(0).ReadLines(); got != 3 {
		t.Errorf("spanning access read %d lines, want 3", got)
	}
}

func TestDrainCaches(t *testing.T) {
	m := New(testConfig())
	th := m.NewThread("app", 0, 0)
	th.Access(0, 8, true)
	if m.Node(0).WriteLines() != 0 {
		t.Fatal("write should still be cached")
	}
	m.DrainCaches()
	if m.Node(0).WriteLines() != 1 {
		t.Errorf("drain wrote %d lines, want 1", m.Node(0).WriteLines())
	}
}

func TestResetCounters(t *testing.T) {
	m := New(testConfig())
	th := m.NewThread("app", 0, 0)
	th.Access(0, 8, true)
	m.DrainCaches()
	m.ResetCounters()
	if m.Node(0).WriteLines() != 0 || m.QPI().WriteLines != 0 {
		t.Error("counters not reset")
	}
}

// Property: total memory writes never exceed total lines written by the
// program (each dirty line is written back at most once per dirtying).
func TestWritebackBoundProperty(t *testing.T) {
	cfg := testConfig()
	f := func(addrs []uint16) bool {
		m := New(cfg)
		th := m.NewThread("p", 0, 0)
		for _, a := range addrs {
			th.Access(uint64(a)*64, 8, true)
		}
		m.DrainCaches()
		total := m.Node(0).WriteLines() + m.Node(1).WriteLines()
		return total <= uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: after draining, every distinct line written appears at
// least once as a memory write (no write is lost).
func TestNoWriteLostProperty(t *testing.T) {
	cfg := testConfig()
	f := func(addrs []uint16) bool {
		if len(addrs) == 0 {
			return true
		}
		m := New(cfg)
		th := m.NewThread("p", 0, 0)
		distinct := map[uint64]bool{}
		for _, a := range addrs {
			th.Access(uint64(a)*64, 8, true)
			distinct[uint64(a)*64&^63] = true
		}
		m.DrainCaches()
		total := m.Node(0).WriteLines() + m.Node(1).WriteLines()
		return total >= uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
