package autotune

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
)

// pt builds a Point with the two objective values and a knob tuple
// that keeps points distinct.
func pt(stall float64, pcm uint64, hot uint64) Point {
	return Point{Policy: "write-threshold", HotWriteLines: hot,
		DRAMBudgetPages: policy.DefaultDRAMBudgetPages, WearFactor: policy.DefaultWearFactor,
		StallCycles: stall, PCMWriteLines: pcm}
}

func frontierKnobs(front []Point) []uint64 {
	var hots []uint64
	for _, p := range front {
		hots = append(hots, p.HotWriteLines)
	}
	return hots
}

func TestFrontierExcludesDominated(t *testing.T) {
	points := []Point{
		pt(100, 900, 1), // frontier: cheapest stalls
		pt(500, 500, 2), // frontier: the knee
		pt(900, 100, 3), // frontier: fewest PCM writes
		pt(600, 600, 4), // dominated by (500,500)
		pt(500, 501, 5), // dominated by (500,500): tied on stall, worse on writes
		pt(901, 100, 6), // dominated by (900,100): tied on writes, worse on stall
	}
	front := Frontier(points)
	if got, want := frontierKnobs(front), []uint64{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for _, p := range front {
		if !p.Pareto {
			t.Errorf("frontier point %d not flagged Pareto", p.HotWriteLines)
		}
	}
}

func TestFrontierKeepsExactTies(t *testing.T) {
	points := []Point{
		pt(500, 500, 2),
		pt(500, 500, 1), // exact objective tie: both survive
		pt(700, 700, 3), // dominated by both
	}
	front := Frontier(points)
	// Ties sort by the knob tuple, so the order is total and stable.
	if got, want := frontierKnobs(front), []uint64{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tied frontier = %v, want %v", got, want)
	}
}

func TestFrontierOrderIndependentOfInput(t *testing.T) {
	a := []Point{pt(100, 900, 1), pt(900, 100, 3), pt(500, 500, 2)}
	b := []Point{pt(500, 500, 2), pt(100, 900, 1), pt(900, 100, 3)}
	fa, fb := Frontier(a), Frontier(b)
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("frontier depends on input order:\n%v\nvs\n%v", fa, fb)
	}
	// Stable order: stall ascending.
	for i := 1; i < len(fa); i++ {
		if fa[i].StallCycles < fa[i-1].StallCycles {
			t.Fatalf("frontier not sorted by stall: %v", fa)
		}
	}
}

func TestFrontierSingleAndEmpty(t *testing.T) {
	if got := Frontier(nil); got != nil {
		t.Fatalf("empty frontier = %v, want nil", got)
	}
	one := []Point{pt(5, 5, 1)}
	if got := Frontier(one); len(got) != 1 || !got[0].Pareto {
		t.Fatalf("singleton frontier = %v", got)
	}
}

func TestRecommendPicksNormalizedKnee(t *testing.T) {
	// The knee (500,500) normalizes to (0.5,0.5): distance 0.5 beats
	// the extremes' 1.0.
	all := []Point{pt(100, 900, 1), pt(500, 500, 2), pt(900, 100, 3)}
	front := Frontier(all)
	rec, ok := recommend(all, front)
	if !ok || rec.HotWriteLines != 2 {
		t.Fatalf("recommended = %+v ok=%v, want knob 2", rec, ok)
	}
}

func TestRecommendDistanceTieTakesFrontierOrder(t *testing.T) {
	// Two extremes, no knee: both normalize to distance 1, so the
	// stable frontier order (stall ascending) decides.
	all := []Point{pt(900, 100, 3), pt(100, 900, 1)}
	rec, ok := recommend(all, Frontier(all))
	if !ok || rec.HotWriteLines != 1 {
		t.Fatalf("recommended = %+v ok=%v, want the lower-stall point", rec, ok)
	}
}

func TestRecommendDegenerateObjective(t *testing.T) {
	// Every point equal on PCM writes: only stalls discriminate, and
	// the degenerate dimension must contribute zero, not NaN.
	all := []Point{pt(100, 500, 1), pt(900, 500, 2)}
	front := Frontier(all)
	if len(front) != 1 || front[0].HotWriteLines != 1 {
		t.Fatalf("frontier = %v, want only the cheaper point", frontierKnobs(front))
	}
	rec, ok := recommend(all, front)
	if !ok || rec.HotWriteLines != 1 {
		t.Fatalf("recommended = %+v, want knob 1", rec)
	}
}

func TestGridPointsOrderAndDefaults(t *testing.T) {
	g := Grid{Policy: policy.WriteThreshold,
		HotWriteLines: []uint64{64, 256}, DRAMBudgetPages: []uint64{1024}}
	pts := g.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].HotWriteLines != 64 || pts[1].HotWriteLines != 256 {
		t.Fatalf("points out of hot-major order: %+v", pts)
	}
	for _, p := range pts {
		if p.DRAMBudgetPages != 1024 {
			t.Errorf("budget = %d, want 1024", p.DRAMBudgetPages)
		}
		// Unlisted knobs resolve to registry defaults.
		if p.WearFactor != policy.DefaultWearFactor || p.MaxGroupsPerQuantum != policy.DefaultMaxGroupsPerQuantum {
			t.Errorf("defaults not resolved: %+v", p)
		}
	}
}

func TestGridValidateRejectsDefaultCollisions(t *testing.T) {
	cases := []struct {
		name string
		g    Grid
		want string
	}{
		{"zero hot", Grid{Policy: policy.WriteThreshold, HotWriteLines: []uint64{0}}, "hot"},
		{"zero budget", Grid{Policy: policy.WriteThreshold, DRAMBudgetPages: []uint64{0}}, "budget"},
		{"negative wear", Grid{Policy: policy.WearLevel, WearFactors: []float64{-1}}, "wear"},
		{"unknown policy", Grid{Policy: policy.NumKinds}, "policy"},
		{"duplicate hot", Grid{Policy: policy.WriteThreshold, HotWriteLines: []uint64{64, 64}}, "duplicate"},
		{"duplicate wear", Grid{Policy: policy.WearLevel, WearFactors: []float64{2, 2}}, "duplicate"},
		{"wear dim on write-threshold", Grid{Policy: policy.WriteThreshold, WearFactors: []float64{1.5, 3}}, "ignores the wear factor"},
		{"hot dim on wear-level", Grid{Policy: policy.WearLevel, HotWriteLines: []uint64{64, 256}}, "ignores the write-threshold knobs"},
		{"budget dim on static", Grid{Policy: policy.Static, DRAMBudgetPages: []uint64{1, 2}}, "ignores the write-threshold knobs"},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

func TestPointConfigRoundTrip(t *testing.T) {
	cfg := policy.Config{Kind: policy.WriteThreshold, HotWriteLines: 2100,
		ColdWriteLines: 8, DRAMBudgetPages: 4096, WearFactor: 3}.WithDefaults()
	p := Point{Policy: cfg.Kind.String(), HotWriteLines: cfg.HotWriteLines,
		ColdWriteLines: cfg.ColdWriteLines, DRAMBudgetPages: cfg.DRAMBudgetPages,
		WearFactor: cfg.WearFactor}
	if got := p.Config(); got != cfg {
		t.Fatalf("Config() = %+v, want %+v", got, cfg)
	}
}

func TestRunRejectsInvalidGrid(t *testing.T) {
	_, err := Run(context.Background(), strings.NewReader(""), Grid{Policy: policy.NumKinds})
	if err == nil {
		t.Fatal("Run accepted an invalid grid")
	}
}

func TestGridValidateCapsPointCount(t *testing.T) {
	// 65 x 64 = 4160 > MaxGridPoints (4096); distinct values so only
	// the cap can reject.
	g := Grid{Policy: policy.WriteThreshold}
	for i := 0; i < 65; i++ {
		g.HotWriteLines = append(g.HotWriteLines, uint64(i+1))
	}
	for i := 0; i < 64; i++ {
		g.DRAMBudgetPages = append(g.DRAMBudgetPages, uint64(i+1))
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "points") {
		t.Fatalf("Validate() = %v, want point-cap error", err)
	}
	// One value fewer fits exactly.
	g.HotWriteLines = g.HotWriteLines[:64]
	if err := g.Validate(); err != nil {
		t.Fatalf("4096-point grid rejected: %v", err)
	}
}

func TestGridValidateAllowsPinnedSingleValues(t *testing.T) {
	// A single value in an ignored dimension pins it without varying
	// it — legal, unlike a multi-value sweep of an ignored knob.
	g := Grid{Policy: policy.WearLevel, WearFactors: []float64{1.5, 3},
		DRAMBudgetPages: []uint64{4096}}
	if err := g.Validate(); err != nil {
		t.Fatalf("pinned single value rejected: %v", err)
	}
}
