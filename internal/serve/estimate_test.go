package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/trace/library"
)

// estimateTracePath warms the library with a write-threshold recording
// of the spec the estimate tests answer.
const estimateTracePath = "/v1/trace?app=PR&collector=KG-N&policy=write-threshold"

// estimateRunReq is the matching run request: same spec, same policy,
// so the resident trace answers it through the exact same-policy
// replay path.
func estimateRunReq() RunRequest {
	return RunRequest{App: "PR", Collector: "KG-N", Policy: "write-threshold"}
}

// runAnswer is one concurrent /v1/run response, collected off a
// goroutine (test assertions happen on the main goroutine).
type runAnswer struct {
	status int
	source string
	rec    store.Record
	err    error
}

// postRun posts one run request and decodes the answer.
func postRun(url string, req RunRequest) runAnswer {
	body, err := json.Marshal(req)
	if err != nil {
		return runAnswer{err: err}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return runAnswer{err: err}
	}
	defer resp.Body.Close()
	a := runAnswer{status: resp.StatusCode, source: resp.Header.Get("X-Answer-Source")}
	if resp.StatusCode == http.StatusOK {
		a.err = json.NewDecoder(resp.Body).Decode(&a.rec)
	}
	return a
}

// TestEstimateAnswersConcurrentlyFromWarmLibrary is the load half of
// the estimate tier's acceptance: N concurrent answer=auto requests
// against a warm library must all be served at replay speed — zero
// emulator runs, every answer tagged Estimated — and the estimator
// must have loaded and decoded the resident trace exactly once
// (concurrent lookups coalesce on one in-flight load). Run with -race:
// the decoded trace is shared read-only across all N replays.
func TestEstimateAnswersConcurrentlyFromWarmLibrary(t *testing.T) {
	s, _, ts := newLibraryServer(t)
	resp, _ := getTrace(t, ts.URL+estimateTracePath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming trace run = %d", resp.StatusCode)
	}

	const n = 8
	answers := make(chan runAnswer, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			answers <- postRun(ts.URL+"/v1/run?answer=auto", estimateRunReq())
		}()
	}
	start.Done()
	done.Wait()
	close(answers)

	for a := range answers {
		if a.err != nil {
			t.Fatalf("concurrent run: %v", a.err)
		}
		if a.status != http.StatusOK {
			t.Fatalf("concurrent run = %d, want 200", a.status)
		}
		if a.source != "estimate" {
			t.Errorf("X-Answer-Source = %q, want estimate", a.source)
		}
		if !a.rec.Result.Estimated || a.rec.Result.Estimate == nil {
			t.Error("warm-library answer is not tagged as an estimate")
		}
	}

	// Zero emulator runs: the only computed run is the warming trace.
	computed := s.runs.List(func(ri RunInfo) bool {
		return ri.Kind == "run" && ri.Outcome == OutcomeComputed
	})
	if len(computed) != 0 {
		t.Errorf("%d run(s) hit the emulator against a warm library, want 0", len(computed))
	}
	estimated := s.runs.List(func(ri RunInfo) bool { return ri.Outcome == OutcomeEstimated })
	if len(estimated) != n {
		t.Errorf("flight recorder has %d estimated runs, want %d", len(estimated), n)
	}
	if got := s.estimated.Load(); got != n {
		t.Errorf("estimate hit counter = %d, want %d", got, n)
	}
	st := s.p.EstimateStats()
	if st.Hits != n {
		t.Errorf("estimator hits = %d, want %d", st.Hits, n)
	}
	if st.Loads != 1 {
		t.Errorf("estimator loaded the trace %d times under %d concurrent requests, want 1 (coalesced)",
			st.Loads, n)
	}
}

// TestColdLibraryComputesOncePerKey is the cold half: with an empty
// library, N concurrent answer=auto requests for one canonical key
// must all miss the estimate tier and coalesce onto exactly one
// platform compute.
func TestColdLibraryComputesOncePerKey(t *testing.T) {
	s, _, ts := newLibraryServer(t)

	const n = 6
	answers := make(chan runAnswer, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			answers <- postRun(ts.URL+"/v1/run?answer=auto", estimateRunReq())
		}()
	}
	start.Done()
	done.Wait()
	close(answers)

	for a := range answers {
		if a.err != nil {
			t.Fatalf("concurrent run: %v", a.err)
		}
		if a.status != http.StatusOK {
			t.Fatalf("concurrent run = %d, want 200", a.status)
		}
		if a.source != "exact" {
			t.Errorf("cold-library X-Answer-Source = %q, want exact", a.source)
		}
		if a.rec.Result.Estimated {
			t.Error("cold-library answer is tagged Estimated")
		}
	}

	computed := s.runs.List(func(ri RunInfo) bool {
		return ri.Kind == "run" && ri.Outcome == OutcomeComputed
	})
	if len(computed) != 1 {
		t.Errorf("%d computes for one canonical key, want exactly 1", len(computed))
	}
	coalesced := s.runs.List(func(ri RunInfo) bool {
		return ri.Kind == "run" && ri.Outcome == OutcomeCoalesced
	})
	if len(coalesced) != n-1 {
		t.Errorf("%d coalesced runs, want %d", len(coalesced), n-1)
	}
	if got := s.estimated.Load(); got != 0 {
		t.Errorf("estimate hits = %d on an empty library, want 0", got)
	}
	if got := s.estMisses.Load(); got == 0 {
		t.Error("estimate misses = 0: answer=auto never consulted the estimate tier")
	}
}

// scaleExecStalls re-records a resident trace with every executed
// stall multiplied by factor — a synthetic drifted trace: same views,
// same decisions, wrong prices. Same-policy replay then overestimates
// stalls by exactly that factor, which is how the drift-validator test
// manufactures a deterministic out-of-tolerance estimate.
func scaleExecStalls(t *testing.T, tr *library.Trace, factor float64) []byte {
	t.Helper()
	hdr, quanta, err := trace.DecodeAll(bytes.NewReader(tr.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range quanta {
		exec := make([]policy.Exec, len(q.Exec))
		for i, e := range q.Exec {
			exec[i] = policy.Exec{Moved: e.Moved, Stall: e.Stall * factor}
		}
		rec.OnQuantum(q.Proc, q.View, q.Actions, exec)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDriftValidatorRefreshesDriftedTrace drives the ground-truthing
// loop end to end: a doctored resident trace makes the estimate tier
// overprice stalls 10x, ValidateOnce re-runs the spec live, observes
// the drift, refreshes the library — and the next estimate is exact
// again.
func TestDriftValidatorRefreshesDriftedTrace(t *testing.T) {
	s, lib, ts := newLibraryServer(t)
	resp, _ := getTrace(t, ts.URL+estimateTracePath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming trace run = %d", resp.StatusCode)
	}
	hood := lib.Neighborhoods()[0]
	tr, err := lib.Get(hood)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.PutWithBase(scaleExecStalls(t, tr, 10), tr.Base()); err != nil {
		t.Fatalf("planting drifted trace: %v", err)
	}

	// Ground truth, computed live (tracing bypassed the cache, so this
	// is the one platform "run" compute).
	exact := postRun(ts.URL+"/v1/run?answer=exact", estimateRunReq())
	if exact.err != nil || exact.status != http.StatusOK {
		t.Fatalf("exact run: status %d err %v", exact.status, exact.err)
	}
	if exact.rec.Result.MigrationStallCycles == 0 {
		t.Fatal("live run migrated nothing; the drift scenario needs a migrating policy")
	}

	// The estimate is served from the doctored trace and enrolled with
	// the validator.
	est := postRun(ts.URL+"/v1/run?answer=estimate", estimateRunReq())
	if est.err != nil || est.status != http.StatusOK {
		t.Fatalf("estimate run: status %d err %v", est.status, est.err)
	}
	if !est.rec.Result.Estimated {
		t.Fatal("answer=estimate served an untagged result")
	}
	if est.rec.Result.MigrationStallCycles <= exact.rec.Result.MigrationStallCycles {
		t.Fatalf("doctored estimate stalls = %d, want > live %d",
			est.rec.Result.MigrationStallCycles, exact.rec.Result.MigrationStallCycles)
	}

	if err := s.ValidateOnce(context.Background()); err != nil {
		t.Fatalf("ValidateOnce: %v", err)
	}
	validations, refreshes := s.EstimateValidations()
	if validations != 1 || refreshes != 1 {
		t.Fatalf("after drift: validations=%d refreshes=%d, want 1/1", validations, refreshes)
	}

	// The refresh replaced the doctored trace; the estimator notices the
	// library generation change and the next estimate is exact.
	healed := postRun(ts.URL+"/v1/run?answer=estimate", estimateRunReq())
	if healed.err != nil || healed.status != http.StatusOK {
		t.Fatalf("healed estimate: status %d err %v", healed.status, healed.err)
	}
	if got, want := healed.rec.Result.MigrationStallCycles, exact.rec.Result.MigrationStallCycles; got != want {
		t.Errorf("healed estimate stalls = %d, want the live run's %d", got, want)
	}

	// A second validation of the healed trace observes zero drift and
	// refreshes nothing.
	if err := s.ValidateOnce(context.Background()); err != nil {
		t.Fatalf("second ValidateOnce: %v", err)
	}
	if validations, refreshes = s.EstimateValidations(); validations != 2 || refreshes != 1 {
		t.Errorf("after healed validation: validations=%d refreshes=%d, want 2/1", validations, refreshes)
	}
}

// TestEvictedTraceFailsCleanly pins the eviction failure modes: a
// trace whose file vanished behind the index (the Evict race) must
// turn GET /v1/trace?source=library into a clean 404 — never a
// truncated 200 — and a properly evicted neighborhood must take the
// estimate tier down with it.
func TestEvictedTraceFailsCleanly(t *testing.T) {
	s, lib, ts := newLibraryServer(t)
	resp, _ := getTrace(t, ts.URL+estimateTracePath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming trace run = %d", resp.StatusCode)
	}

	// Rip the file out from under the index — the shape of losing the
	// race to a concurrent Evict.
	files, err := filepath.Glob(filepath.Join(lib.Dir(), "*.trace.ndjson"))
	if err != nil || len(files) != 1 {
		t.Fatalf("library files = %v (err %v), want exactly 1", files, err)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	resp, body := getTrace(t, ts.URL+estimateTracePath+"&source=library")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("source=library on a vanished trace = %d, want 404", resp.StatusCode)
	}
	if bytes.Contains(body, []byte(`"version"`)) {
		t.Error("404 body carries trace data: a truncated 200 in disguise")
	}
	if !strings.Contains(string(body), "no trace") {
		t.Errorf("404 body = %q, want the library's not-found error", body)
	}

	// A real Evict removes the index entry too; the estimate tier must
	// miss rather than serve from a stale decode.
	warm := postRun(ts.URL+"/v1/run?answer=estimate", estimateRunReq())
	if warm.status != http.StatusNotFound {
		t.Fatalf("estimate from a vanished trace = %d, want 404", warm.status)
	}
	if err := lib.Evict(lib.Neighborhoods()[0]); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if lib.Len() != 0 {
		t.Fatalf("library still holds %d traces after Evict", lib.Len())
	}
	gone := postRun(ts.URL+"/v1/run?answer=estimate", estimateRunReq())
	if gone.status != http.StatusNotFound {
		t.Errorf("answer=estimate after Evict = %d, want 404", gone.status)
	}
	if hits := s.estimated.Load(); hits != 0 {
		t.Errorf("estimate hits = %d after eviction-only traffic, want 0", hits)
	}
}

// TestAnswerModeValidation pins the wire contract of the answer knob:
// bad values 400, the query parameter beats the body field.
func TestAnswerModeValidation(t *testing.T) {
	_, _, ts := newLibraryServer(t)

	resp := postJSON(t, ts.URL+"/v1/run?answer=nope", estimateRunReq())
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("answer=nope = %d, want 400", resp.StatusCode)
	}

	req := estimateRunReq()
	req.Answer = "bogus"
	resp = postJSON(t, ts.URL+"/v1/run", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("body answer=bogus = %d, want 400", resp.StatusCode)
	}

	// Query wins over body: an invalid body mode is overridden by a
	// valid query mode on an empty library (estimate → 404 proves the
	// query's mode was the one applied).
	resp = postJSON(t, ts.URL+"/v1/run?answer=estimate", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("query answer=estimate over body bogus = %d, want 404 (estimate miss)", resp.StatusCode)
	}

	var sweepBody bytes.Buffer
	if err := json.NewEncoder(&sweepBody).Encode(SweepRequest{Apps: []string{"PR"}, Answer: "nope"}); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Post(ts.URL+"/v1/sweep", "application/json", &sweepBody)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep answer=nope = %d, want 400", sresp.StatusCode)
	}
}
