package experiments

import (
	"context"
	"strings"
	"testing"

	hybridmem "repro"
	"repro/internal/workloads"
)

// ctx is the default context for driver calls in tests.
var ctx = context.Background()

func TestTableIStructure(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Space] = r
	}
	// Paper's Table I, KG-N column.
	if n := byName["Nursery"]; !n.KGN[0] || n.KGN[1] {
		t.Error("KG-N nursery must be S0 only")
	}
	if o := byName["Observer"]; o.KGN[0] || o.KGN[1] {
		t.Error("KG-N has no observer space")
	}
	if m := byName["Mature"]; m.KGN[0] || !m.KGN[1] {
		t.Error("KG-N mature must be S1 only")
	}
	if md := byName["Metadata"]; md.KGN[0] || !md.KGN[1] {
		t.Error("KG-N metadata must be S1 only")
	}
	// KG-W column: everything dual except nursery/observer.
	if m := byName["Mature"]; !m.KGW[0] || !m.KGW[1] {
		t.Error("KG-W mature must be on both sockets")
	}
	if md := byName["Metadata"]; !md.KGW[0] || !md.KGW[1] {
		t.Error("KG-W metadata must be on both sockets")
	}
	// KG-W-MDO column: no DRAM metadata.
	if md := byName["Metadata"]; md.KGWMDO[0] || !md.KGWMDO[1] {
		t.Error("KG-W-MDO metadata must be S1 only")
	}
	out := RenderTableI()
	for _, want := range []string{"Nursery", "Observer", "Mature", "Large", "Metadata"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered Table I missing %q", want)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	q := Config{Scale: Quick}
	if len(q.dacapoApps()) >= len(Config{Scale: Full}.dacapoApps()) {
		t.Error("Quick must use fewer DaCapo apps than Full")
	}
}

func TestRunnerCacheReuse(t *testing.T) {
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	a, err := r.emul(ctx, "pmd", hybridmem.KGN, 1, workloads.Default)
	if err != nil {
		t.Fatal(err)
	}
	stats := r.p.CacheStats()
	if stats.Entries != 1 || stats.Misses != 1 {
		t.Fatalf("cache after first run = %+v, want 1 entry / 1 miss", stats)
	}
	b, err := r.emul(ctx, "pmd", hybridmem.KGN, 1, workloads.Default)
	if err != nil {
		t.Fatal(err)
	}
	stats = r.p.CacheStats()
	if stats.Entries != 1 || stats.Hits != 1 {
		t.Errorf("identical run was not served from cache: %+v", stats)
	}
	if a.PCMWriteLines != b.PCMWriteLines {
		t.Error("cached result differs")
	}
}

func TestDerivedPlatformsShareCache(t *testing.T) {
	// An ablation varying one knob must not re-run the base
	// configuration, and its runs must land in the shared cache.
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	if _, err := r.emul(ctx, "pmd", hybridmem.KGW, 1, workloads.Default); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AblationFreeLists(ctx, "pmd"); err != nil {
		t.Fatal(err)
	}
	stats := r.p.CacheStats()
	// Base KG-W run + unmap variant: 2 runs total, with the unmap=false
	// leg of the ablation served from the first run's entry.
	if stats.Entries != 2 {
		t.Errorf("entries = %d, want 2 (base + unmap variant)", stats.Entries)
	}
	if stats.Hits == 0 {
		t.Error("ablation did not reuse the base configuration's run")
	}
}

func TestReductionSmoke(t *testing.T) {
	// One end-to-end reduction check: KG-W must cut PCM writes vs the
	// PCM-Only reference for a DaCapo profile.
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	base, err := r.reference(ctx, hybridmem.Emulation, "pmd")
	if err != nil {
		t.Fatal(err)
	}
	kgw, err := r.emul(ctx, "pmd", hybridmem.KGW, 1, workloads.Default)
	if err != nil {
		t.Fatal(err)
	}
	if kgw.PCMWriteLines >= base.PCMWriteLines {
		t.Errorf("KG-W writes %d not below PCM-Only %d",
			kgw.PCMWriteLines, base.PCMWriteLines)
	}
}

func TestSuiteApps(t *testing.T) {
	r := NewRunner(Config{Scale: Quick, Seed: 1})
	if got := r.suiteApps(workloads.Pjbb); len(got) != 1 || got[0] != "pjbb" {
		t.Errorf("pjbb suite = %v", got)
	}
	if got := r.suiteApps(workloads.GraphChi); len(got) != 3 {
		t.Errorf("graphchi suite = %v", got)
	}
	if got := r.allApps(); len(got) != len(r.cfg.dacapoApps())+4 {
		t.Errorf("allApps = %v", got)
	}
}
