package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultReplicas is the per-node virtual-point count of a Ring.
// 128 points per node keeps the expected ownership imbalance across a
// small fleet within a few tens of percent while lookups stay a single
// binary search over a few hundred points.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring mapping canonical spec
// keys to node names. Every node projects Replicas virtual points onto
// a 64-bit circle; a key is owned by the node whose point follows the
// key's hash clockwise. Placement is a pure function of the membership
// list and the key — every node with the same peer list computes the
// same owner for every key, with no coordination — and adding or
// removing one node moves only the keys that land on that node
// (roughly 1/N of the space), never keys between surviving nodes.
type Ring struct {
	points []ringPoint
	nodes  []string // sorted, deduplicated membership
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 maps a string onto the ring's 64-bit circle. SHA-256
// (truncated) rather than a cheap multiplicative hash: placement must
// be identical across every process, architecture, and Go release that
// ever serves the fleet, and must stay well distributed for the short,
// highly similar strings canonical spec keys are.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given node names (order-insensitive;
// duplicates collapse). replicas <= 0 takes DefaultReplicas. A ring
// over zero nodes is valid and owns nothing.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(nodes))
	seen := map[string]bool{}
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)

	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*replicas)}
	var buf [8]byte
	for _, n := range uniq {
		for i := 0; i < replicas; i++ {
			binary.BigEndian.PutUint64(buf[:], uint64(i))
			h := sha256.New()
			h.Write([]byte(n))
			h.Write([]byte{0})
			h.Write(buf[:])
			var sum [sha256.Size]byte
			h.Sum(sum[:0])
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between virtual points are broken by name so
		// every process sorts identically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports whether node is a member.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the node that owns key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node
}

// With returns a new ring with node added (replica count preserved by
// construction from the same membership rules).
func (r *Ring) With(node string, replicas int) *Ring {
	return NewRing(append(r.Nodes(), node), replicas)
}

// Without returns a new ring with node removed.
func (r *Ring) Without(node string, replicas int) *Ring {
	nodes := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	return NewRing(nodes, replicas)
}
