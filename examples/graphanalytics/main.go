// Graph analytics: the paper's Fig 3 scenario — compare the C++ and
// Java implementations of the GraphChi applications on a PCM-Only
// system, then show what the Kingsguard collectors recover on hybrid
// memory. The Java collector sweep runs through the platform's worker
// pool.
package main

import (
	"context"
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))
	ctx := context.Background()

	fmt.Println("GraphChi PageRank, PCM writes by language and collector:")
	cpp, err := p.Run(ctx, hybridmem.RunSpec{AppName: "PR", Native: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  C++  (PCM-Only): %8d lines, %6.1f MB allocated\n",
		cpp.PCMWriteLines, float64(cpp.AllocBytes[0])/1e6)

	gcs := []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGN, hybridmem.KGW}
	sweep := hybridmem.NewSweep("PR").Collectors(gcs...)
	results, err := p.RunSweep(ctx, sweep)
	if err != nil {
		log.Fatal(err)
	}
	for i, gc := range gcs {
		res := results[i]
		fmt.Printf("  Java (%-8s): %8d lines, %6.1f MB allocated, %d minor / %d full GCs\n",
			gc, res.PCMWriteLines, float64(res.AllocBytes[0])/1e6,
			res.RuntimeStats[0].MinorGCs, res.RuntimeStats[0].FullGCs)
	}
	fmt.Println("\nThe managed runtime allocates more (boxing, zero-initialization,")
	fmt.Println("GC copying) but its generational heap lets the Kingsguard")
	fmt.Println("collectors keep fresh allocation and written objects in DRAM.")
}
