package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger writing to w in the given
// format ("text", "json", or "" for text) with the node stamped onto
// every record. An unknown format is an error so commands can fail
// fast on a bad -log-format flag.
func NewLogger(w io.Writer, format, node string) (*slog.Logger, error) {
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	l := slog.New(h)
	if node != "" {
		l = l.With("node", node)
	}
	return l, nil
}
