package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	hybridmem "repro"
	"repro/internal/store"
)

// newTestServer builds a Quick-scale server and its httptest frontend.
func newTestServer(t *testing.T, opts ...hybridmem.Option) (*hybridmem.Platform, *httptest.Server) {
	t.Helper()
	p := hybridmem.New(append([]hybridmem.Option{hybridmem.WithScale(hybridmem.Quick)}, opts...)...)
	s, err := New(p, Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return p, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("healthz body = %v", out)
	}
}

func TestRunEndpointMatchesDirectRun(t *testing.T) {
	p, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd", Collector: "kgw", Instances: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	var rec store.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}

	spec := hybridmem.RunSpec{AppName: "pmd", Collector: hybridmem.KGW, Instances: 2}
	want, err := p.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Result, want) {
		t.Error("HTTP result is not bit-identical to the direct platform run")
	}
	if rec.Key != p.SpecKey(spec) {
		t.Errorf("Key = %q, want %q", rec.Key, p.SpecKey(spec))
	}
	sum, err := store.Sum(rec.Key, rec.Spec, rec.Result)
	if err != nil || rec.Sum != sum {
		t.Errorf("Sum = %q, want the record's content address %q", rec.Sum, sum)
	}
}

// TestRunCoalescesConcurrentRequests is the service half of the
// acceptance proof: N identical concurrent requests perform exactly
// one platform compute.
func TestRunCoalescesConcurrentRequests(t *testing.T) {
	p, ts := newTestServer(t)
	const n = 8
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []store.Record
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "lusearch", Collector: "KG-N"})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("run = %d", resp.StatusCode)
				return
			}
			var rec store.Record
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results = append(results, rec)
			mu.Unlock()
		}()
	}
	wg.Wait()

	st := p.CacheStats()
	if st.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 compute for %d identical requests", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("cache hits = %d, want %d", st.Hits, n-1)
	}
	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results[1:] {
		if !reflect.DeepEqual(r, results[0]) {
			t.Error("coalesced responses differ")
		}
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		req  RunRequest
		want string
	}{
		{RunRequest{App: "pmd", Collector: "zgc"}, "unknown"},
		{RunRequest{App: "nonsense"}, "unknown"},
		{RunRequest{App: "pmd", Dataset: "huge"}, "unknown"},
		{RunRequest{App: "pmd", Mode: "fpga"}, "unknown"},
		{RunRequest{App: "pmd", Instances: -4}, "instances"},
	} {
		resp := postJSON(t, ts.URL+"/v1/run", tc.req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v -> %d (%s), want 400", tc.req, resp.StatusCode, body)
		}
		if !bytes.Contains(body, []byte(tc.want)) {
			t.Errorf("%+v error body %q lacks %q", tc.req, body, tc.want)
		}
	}
}

func TestSweepStreamsAlignedGrid(t *testing.T) {
	p, ts := newTestServer(t)
	req := SweepRequest{Apps: []string{"pmd"}, Collectors: []string{"PCM-Only", "KG-W"}, Instances: []int{1, 2}}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	specs := hybridmem.NewSweep("pmd").
		Collectors(hybridmem.PCMOnly, hybridmem.KGW).Instances(1, 2).Specs()
	seen := map[int]SweepItem{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item SweepItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if item.Error != "" {
			t.Fatalf("spec %d failed: %s", item.Index, item.Error)
		}
		seen[item.Index] = item
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(specs) {
		t.Fatalf("streamed %d items, want %d", len(seen), len(specs))
	}
	for i, spec := range specs {
		item, ok := seen[i]
		if !ok {
			t.Fatalf("missing item %d", i)
		}
		want, err := p.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if item.Result == nil || !reflect.DeepEqual(*item.Result, want) {
			t.Errorf("item %d result misaligned with Specs()[%d]", i, i)
		}
	}
}

func TestResultsEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, hybridmem.WithStore(dir))
	for _, req := range []RunRequest{
		{App: "pmd", Collector: "KG-W"},
		{App: "lusearch", Collector: "KG-W"},
		{App: "lusearch", Collector: "PCM-Only"},
	} {
		resp := postJSON(t, ts.URL+"/v1/run", req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding run = %d", resp.StatusCode)
		}
	}

	get := func(query string) (int, struct {
		Count   int            `json:"count"`
		Records []store.Record `json:"records"`
	}) {
		resp, err := http.Get(ts.URL + "/v1/results" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Count   int            `json:"count"`
			Records []store.Record `json:"records"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	if code, out := get(""); code != http.StatusOK || out.Count != 3 {
		t.Errorf("unfiltered = %d/%d records, want 200/3", code, out.Count)
	}
	if code, out := get("?app=lusearch"); code != http.StatusOK || out.Count != 2 {
		t.Errorf("app filter = %d/%d, want 200/2", code, out.Count)
	}
	code, out := get("?app=lusearch&collector=pcmonly")
	if code != http.StatusOK || out.Count != 1 {
		t.Fatalf("combined filter = %d/%d, want 200/1", code, out.Count)
	}
	if got := out.Records[0].Spec; got.AppName != "lusearch" || got.Collector != hybridmem.PCMOnly {
		t.Errorf("filtered record spec = %+v", got)
	}
	if code, _ := get("?collector=zgc"); code != http.StatusBadRequest {
		t.Errorf("bad collector filter = %d, want 400", code)
	}

	// Without a store the listing is explicitly unavailable.
	_, plain := newTestServer(t)
	resp, err := http.Get(plain.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("storeless results = %d, want 501", resp.StatusCode)
	}
}

func TestMetrics(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, hybridmem.WithStore(dir))
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, metric := range []string{
		"hybridserved_cache_hits_total",
		"hybridserved_cache_misses_total 1",
		"hybridserved_store_misses_total 1",
		"hybridserved_store_records 1",
		"hybridserved_inflight_runs 0",
		"hybridserved_requests_total",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics missing %q:\n%s", metric, text)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run = %d, want 405", resp.StatusCode)
	}
}

// TestStoreOpenFailsAtStartup checks New fails fast on a bad store
// directory instead of on the first request.
func TestStoreOpenFailsAtStartup(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick), hybridmem.WithStore(bad))
	if _, err := New(p, Config{}); err == nil {
		t.Fatal("New must fail when the store cannot open")
	}
}
