package hybridmem

import "testing"

func TestAppsRegistry(t *testing.T) {
	names := Apps()
	if len(names) != 15 {
		t.Fatalf("Apps() = %d names, want the paper's 15", len(names))
	}
	for _, n := range names {
		if NewApp(n) == nil {
			t.Errorf("NewApp(%q) = nil", n)
		}
	}
	if NewApp("nonsense") != nil {
		t.Error("unknown app should be nil")
	}
}

func TestCollectors(t *testing.T) {
	cs := Collectors()
	if len(cs) != 8 {
		t.Fatalf("Collectors() = %d, want 8", len(cs))
	}
	if cs[0] != PCMOnly || cs[5] != KGW {
		t.Errorf("collector order wrong: %v", cs)
	}
}

func TestEndToEndQuickRun(t *testing.T) {
	opts := Emulator()
	opts.AppFactory = ScaledApps(Quick)
	opts.BootMB = 4
	res, err := Run(opts, RunSpec{AppName: "pmd", Collector: KGW})
	if err != nil {
		t.Fatal(err)
	}
	if res.PCMWriteLines == 0 && res.DRAMWriteLines == 0 {
		t.Error("no memory traffic measured")
	}
	if res.Seconds <= 0 {
		t.Error("no time measured")
	}
}

func TestSimulatorMode(t *testing.T) {
	opts := Simulator()
	opts.AppFactory = ScaledApps(Quick)
	opts.BootMB = 4
	res, err := Run(opts, RunSpec{AppName: "pmd", Collector: KGN})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroedPages != 0 {
		t.Error("simulation mode must not include OS page zeroing")
	}
}

func TestLifetimeHelpers(t *testing.T) {
	rec := RecommendedRateMBs()
	if rec < 130 || rec > 145 {
		t.Errorf("recommended rate = %.1f, want ~140", rec)
	}
	y := LifetimeYears(32<<30, 10e6, 140)
	if y <= 0 {
		t.Error("lifetime should be positive")
	}
	// Halving the write rate doubles the lifetime.
	y2 := LifetimeYears(32<<30, 10e6, 70)
	if y2 < 1.99*y || y2 > 2.01*y {
		t.Errorf("lifetime scaling wrong: %v vs %v", y, y2)
	}
}
