package jvm

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/kernel"
	"repro/internal/objmodel"
)

// Stats are the runtime's cumulative counters.
type Stats struct {
	MinorGCs    int
	ObserverGCs int // young collections that also evacuated the observer
	FullGCs     int

	AllocObjects    uint64
	AllocBytes      uint64
	LargeAllocBytes uint64
	NurserySlowPath uint64

	SurvivorBytes     uint64 // bytes copied out of the nursery
	ObserverOutBytes  uint64 // bytes dispatched out of the observer
	ToMatureDRAMBytes uint64
	ToMaturePCMBytes  uint64
	LargeRelocBytes   uint64 // KG-W LOO: large PCM -> DRAM copies

	BarrierStores uint64
	RemsetEntries uint64
	MutatorWrites uint64
	MutatorReads  uint64
}

// remEntry is one slot-remembering write-barrier record.
type remEntry struct {
	src  objmodel.ObjID
	slot int32
}

// Runtime is one managed-language VM instance running inside a kernel
// process on the emulated machine.
type Runtime struct {
	Proc   *kernel.Process
	Plan   Plan
	Layout heap.Layout
	Table  *objmodel.Table
	Stats  Stats

	// PageMap is the mutable page-group→tier map of the managed heap,
	// seeded from the plan's bindings and rewritten by the placement
	// engine as it migrates groups.
	PageMap *heap.PageMap
	// Safepoint, when set, runs at the end of every collection — the
	// GC-safepoint quantum the placement-policy engine hooks.
	Safepoint func()

	flLo *heap.FreeList
	flHi *heap.FreeList

	nursery  *heap.ContiguousSpace
	observer *heap.ContiguousSpace
	boot     *heap.ContiguousSpace

	matureDRAM *heap.ChunkedSpace
	maturePCM  *heap.ChunkedSpace
	largeDRAM  *heap.ChunkedSpace
	largePCM   *heap.ChunkedSpace

	roots     []objmodel.ObjID
	freeSlots []int

	nurseryObjs  []objmodel.ObjID
	observerObjs []objmodel.ObjID
	matureObjs   []objmodel.ObjID // mature + large, both sockets

	remNursery  []remEntry
	remObserver []remEntry
	remCursor   uint64

	epoch     uint32
	iteration int // 1 = warmup (JIT active), 2 = measured
	bootCur   uint64
	allocTick int
	gcActive  bool
	// dynBudget is the adaptive full-GC trigger implementing the
	// paper's "heap twice the minimum" methodology: after each
	// full-heap collection the budget becomes max(plan budget,
	// 2x live), so workloads whose live set grows (large datasets)
	// keep the paper's 2x-minimum sizing instead of thrashing.
	dynBudget uint64
}

// NewRuntime boots a VM: lays out the heap, maps and binds every
// region per the plan's Table I row, and loads the boot image (a burst
// of writes the paper observed to be significant, hence boot-in-DRAM
// for all plans but PCM-Only).
func NewRuntime(proc *kernel.Process, plan Plan) (*Runtime, error) {
	layout, err := heap.NewLayout(plan.NurseryBytes, plan.ObserverBytes)
	if err != nil {
		return nil, err
	}
	layout.BootBytes = plan.BootBytes

	r := &Runtime{
		Proc:      proc,
		Plan:      plan,
		Layout:    layout,
		Table:     objmodel.NewTable(),
		iteration: 1,
	}
	mem := proc.AS
	bind := func(s objmodel.SpaceID, def int) int {
		if n, ok := plan.Bindings[s]; ok {
			return n
		}
		return def
	}
	// heapBind resolves the binding of a managed-heap space, which the
	// first-touch placement policy leaves to the OS.
	heapBind := func(s objmodel.SpaceID, def int) int {
		if plan.FirstTouchHeap {
			return kernel.NodeFirstTouch
		}
		return bind(s, def)
	}

	// Boot space, below the heap.
	r.boot, err = heap.NewContiguousSpace(objmodel.SpaceBoot,
		heap.BootBase, heap.BootBase+plan.BootBytes, bind(objmodel.SpaceBoot, DRAMSocket), mem)
	if err != nil {
		return nil, err
	}

	// Side-metadata regions: meta-lo covers the PCM portion, meta-hi
	// the DRAM portion, plus the remembered-set buffers and, under
	// MDO, the DRAM-bound shadow of meta-lo.
	if _, err = heap.NewContiguousSpace(objmodel.SpaceMetaPCM,
		layout.MetaLoStart, layout.MetaLoEnd, bind(objmodel.SpaceMetaPCM, PCMSocket), mem); err != nil {
		return nil, err
	}
	if _, err = heap.NewContiguousSpace(objmodel.SpaceMetaDRAM,
		layout.MetaHiStart, layout.MetaHiEnd, bind(objmodel.SpaceMetaDRAM, DRAMSocket), mem); err != nil {
		return nil, err
	}
	if err = mem.MMap(layout.RemsetStart, layout.RemsetEnd-layout.RemsetStart, kernel.NodeFirstTouch); err != nil {
		return nil, err
	}
	if err = mem.MBind(layout.RemsetStart, layout.RemsetEnd-layout.RemsetStart, plan.RemsetNode); err != nil {
		return nil, err
	}
	if plan.MDO {
		if err = mem.MMap(layout.MetaExtraStart, layout.MetaExtraEnd-layout.MetaExtraStart, kernel.NodeFirstTouch); err != nil {
			return nil, err
		}
		if err = mem.MBind(layout.MetaExtraStart, layout.MetaExtraEnd-layout.MetaExtraStart, DRAMSocket); err != nil {
			return nil, err
		}
	}

	// The nursery is reserved at boot time at one end of virtual
	// memory, enabling the fast boundary write barrier.
	r.nursery, err = heap.NewContiguousSpace(objmodel.SpaceNursery,
		layout.NurseryStart, layout.DRAMEnd, heapBind(objmodel.SpaceNursery, DRAMSocket), mem)
	if err != nil {
		return nil, err
	}
	if plan.UseObserver {
		r.observer, err = heap.NewContiguousSpace(objmodel.SpaceObserver,
			layout.ObserverStart, layout.NurseryStart, heapBind(objmodel.SpaceObserver, DRAMSocket), mem)
		if err != nil {
			return nil, err
		}
	}

	// The two free lists of Fig 1, each binding its chunks to its
	// portion's socket.
	r.flLo = heap.NewFreeList("lo", layout.PCMStart, layout.PCMEnd,
		heapBind(objmodel.SpaceMaturePCM, PCMSocket), mem)
	r.flHi = heap.NewFreeList("hi", layout.PCMEnd, layout.ChunkedHiEnd,
		heapBind(objmodel.SpaceMatureDRAM, DRAMSocket), mem)
	r.flLo.UnmapOnRelease = plan.UnmapFreedChunks
	r.flHi.UnmapOnRelease = plan.UnmapFreedChunks

	r.maturePCM = heap.NewChunkedSpace(objmodel.SpaceMaturePCM, r.flLo, heap.LineBytes)
	r.largePCM = heap.NewChunkedSpace(objmodel.SpaceLargePCM, r.flLo, heap.PageBytes)
	if plan.HasDRAMSide() {
		r.matureDRAM = heap.NewChunkedSpace(objmodel.SpaceMatureDRAM, r.flHi, heap.LineBytes)
		r.largeDRAM = heap.NewChunkedSpace(objmodel.SpaceLargeDRAM, r.flHi, heap.PageBytes)
	}

	// The page→tier map: the plan's Table I row materialized per page
	// group, mutable thereafter by the placement engine. Under
	// first-touch the tiers start unknown and are learned as the OS
	// places pages.
	r.PageMap = heap.NewPageMap(layout.PCMStart, layout.DRAMEnd)
	if !plan.FirstTouchHeap {
		r.PageMap.SetRange(layout.PCMStart, layout.PCMEnd, bind(objmodel.SpaceMaturePCM, PCMSocket))
		r.PageMap.SetRange(layout.PCMEnd, layout.DRAMEnd, bind(objmodel.SpaceMatureDRAM, DRAMSocket))
		r.PageMap.SetRange(layout.NurseryStart, layout.DRAMEnd, bind(objmodel.SpaceNursery, DRAMSocket))
		if plan.UseObserver {
			r.PageMap.SetRange(layout.ObserverStart, layout.NurseryStart, bind(objmodel.SpaceObserver, DRAMSocket))
		}
	}

	r.loadBootImage()
	proc.Th.Parallelism = plan.MutatorParallelism()
	return r, nil
}

// loadBootImage writes the boot image into the boot space: the boot
// image runner loading Jikes RVM's image files.
func (r *Runtime) loadBootImage() {
	lines := int(r.Plan.BootBytes / 64)
	r.Proc.AccessLines(heap.BootBase, lines, true)
	r.bootCur = heap.BootBase + r.Plan.BootBytes/2
}

// SetIteration tells the runtime which replay-compilation iteration is
// running: 1 compiles methods (heavy boot/code-space writes), 2 is the
// measured steady-state iteration.
func (r *Runtime) SetIteration(n int) { r.iteration = n }

// bootServiceWrite models ongoing JVM service writes (JIT-compiled
// code installation, profiling counters, class metadata) into the boot
// space. Replay compilation makes iteration 1 much heavier.
func (r *Runtime) bootServiceWrite() {
	r.allocTick++
	var every, lines int
	if r.iteration <= 1 {
		every, lines = 64, 8 // compiler active
	} else {
		every, lines = 256, 2 // steady state
	}
	if r.allocTick%every != 0 {
		return
	}
	limit := heap.BootBase + r.Plan.BootBytes
	if r.bootCur+uint64(lines*64) >= limit {
		r.bootCur = heap.BootBase + r.Plan.BootBytes/2
	}
	r.Proc.AccessLines(r.bootCur, lines, true)
	r.bootCur += uint64(lines * 64)
}

// Alloc allocates a managed object of size bytes (header included,
// minimum header+refs) with nrefs reference slots, zero-initialized as
// the JVM guarantees. It may trigger garbage collection.
func (r *Runtime) Alloc(size, nrefs int) objmodel.ObjID {
	min := objmodel.HeaderBytes + nrefs*objmodel.RefBytes
	if size < min {
		size = min
	}
	r.Stats.AllocObjects++
	r.Stats.AllocBytes += uint64(size)
	r.bootServiceWrite()

	if uint64(size) >= heap.LargeThreshold {
		return r.allocLarge(size, nrefs)
	}

	addr, ok := r.nursery.Alloc(uint64(size))
	if !ok {
		r.Stats.NurserySlowPath++
		r.collectYoung()
		r.maybeFullGC()
		addr, ok = r.nursery.Alloc(uint64(size))
		if !ok {
			panic(fmt.Errorf("jvm: object of %d bytes cannot fit an empty nursery", size))
		}
	}
	// Allocation sequence plus zero initialization.
	r.Proc.Compute(8)
	r.zero(addr, size)
	id := r.Table.Alloc(addr, uint32(size), objmodel.SpaceNursery, nrefs)
	r.nurseryObjs = append(r.nurseryObjs, id)
	return id
}

// allocLarge applies the large-object policy: under LOO, moderate
// large objects start in the nursery to give them time to die; the
// rest go straight to the PCM large space (the traditional design).
func (r *Runtime) allocLarge(size, nrefs int) objmodel.ObjID {
	if r.Plan.LOO && uint64(size) <= r.Plan.LOONurseryLimit() {
		addr, ok := r.nursery.Alloc(uint64(size))
		if !ok {
			r.Stats.NurserySlowPath++
			r.collectYoung()
			r.maybeFullGC()
			addr, ok = r.nursery.Alloc(uint64(size))
			if !ok {
				return r.allocLargeDirect(size, nrefs)
			}
		}
		r.Proc.Compute(8)
		r.zero(addr, size)
		id := r.Table.Alloc(addr, uint32(size), objmodel.SpaceNursery, nrefs)
		r.Table.Get(id).Flags |= objmodel.FlagLarge
		r.nurseryObjs = append(r.nurseryObjs, id)
		return id
	}
	return r.allocLargeDirect(size, nrefs)
}

// allocLargeDirect places a large object in the PCM large-object
// space, collecting first when the mature budget is exhausted.
func (r *Runtime) allocLargeDirect(size, nrefs int) objmodel.ObjID {
	r.Stats.LargeAllocBytes += uint64(size)
	if r.matureUsed()+uint64(size) > r.budget() {
		r.collectFull()
	}
	addr, err := r.largePCM.Alloc(uint64(size))
	if err != nil {
		panic(err)
	}
	r.Proc.Compute(12)
	r.zero(addr, size)
	id := r.Table.Alloc(addr, uint32(size), objmodel.SpaceLargePCM, nrefs)
	r.Table.Get(id).Flags |= objmodel.FlagLarge
	r.matureObjs = append(r.matureObjs, id)
	return id
}

// zero charges the zero-initialization writes for a fresh object.
func (r *Runtime) zero(addr uint64, size int) {
	r.Proc.AccessLines(addr, (size+63)/64, true)
}

// matureUsed is the mature-heap occupancy measured against the budget.
func (r *Runtime) matureUsed() uint64 {
	u := r.maturePCM.Used() + r.largePCM.Used()
	if r.matureDRAM != nil {
		u += r.matureDRAM.Used() + r.largeDRAM.Used()
	}
	return u
}

// Write models a mutator field store of size bytes at the given offset.
func (r *Runtime) Write(id objmodel.ObjID, off, size int) {
	o := r.Table.Get(id)
	r.Stats.MutatorWrites++
	r.Proc.Access(o.Addr+uint64(off), size, true)
	r.monitorWrite(o)
}

// monitorWrite is KG-W's write-monitoring barrier: the first write to
// an observed object raises its write bit (a header write).
func (r *Runtime) monitorWrite(o *objmodel.Object) {
	if !r.Plan.Monitor {
		return
	}
	r.Proc.Compute(2) // barrier check
	switch o.Space {
	case objmodel.SpaceObserver, objmodel.SpaceLargePCM, objmodel.SpaceMaturePCM:
		if o.Flags&objmodel.FlagWritten == 0 {
			o.Flags |= objmodel.FlagWritten
			r.Proc.Access(o.Addr, 1, true)
		}
	case objmodel.SpaceNursery:
		// Large objects are observed from birth: a written large
		// nursery survivor belongs in the DRAM large space.
		if o.Flags&objmodel.FlagLarge != 0 && o.Flags&objmodel.FlagWritten == 0 {
			o.Flags |= objmodel.FlagWritten
			r.Proc.Access(o.Addr, 1, true)
		}
	}
}

// Read models a mutator field load.
func (r *Runtime) Read(id objmodel.ObjID, off, size int) {
	o := r.Table.Get(id)
	r.Stats.MutatorReads++
	r.Proc.Access(o.Addr+uint64(off), size, false)
}

// WriteRef stores a reference into slot i of src, running the
// generational boundary write barrier.
func (r *Runtime) WriteRef(src objmodel.ObjID, slot int, dst objmodel.ObjID) {
	so := r.Table.Get(src)
	so.SetRef(slot, dst)
	r.Stats.BarrierStores++
	r.Proc.Compute(2) // boundary test
	r.Proc.Access(so.RefSlotAddr(slot), objmodel.RefBytes, true)
	r.monitorWrite(so)
	if dst == objmodel.Nil {
		return
	}
	do := r.Table.Get(dst)
	srcYoung := r.Layout.InYoung(so.Addr) && so.Space != objmodel.SpaceBoot
	switch {
	case r.Layout.InNursery(do.Addr) && !r.Layout.InNursery(so.Addr):
		r.remember(&r.remNursery, src, slot)
	case r.Plan.UseObserver && do.Space == objmodel.SpaceObserver && !srcYoung:
		r.remember(&r.remObserver, src, slot)
	}
}

// remember appends a sequential-store-buffer entry, charging the
// buffer write in the remset region.
func (r *Runtime) remember(set *[]remEntry, src objmodel.ObjID, slot int) {
	*set = append(*set, remEntry{src: src, slot: int32(slot)})
	r.Stats.RemsetEntries++
	off := r.remCursor % (r.Layout.RemsetEnd - r.Layout.RemsetStart)
	r.Proc.Access(r.Layout.RemsetStart+off, 8, true)
	r.remCursor += 8
}

// ReadRef loads the reference in slot i of src.
func (r *Runtime) ReadRef(src objmodel.ObjID, slot int) objmodel.ObjID {
	so := r.Table.Get(src)
	r.Proc.Access(so.RefSlotAddr(slot), objmodel.RefBytes, false)
	return so.Ref(slot)
}

// AddRoot registers a new root slot holding id and returns the slot
// index (a stand-in for a stack or global reference).
func (r *Runtime) AddRoot(id objmodel.ObjID) int {
	if n := len(r.freeSlots); n > 0 {
		s := r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
		r.roots[s] = id
		return s
	}
	r.roots = append(r.roots, id)
	return len(r.roots) - 1
}

// SetRoot repoints a root slot.
func (r *Runtime) SetRoot(slot int, id objmodel.ObjID) { r.roots[slot] = id }

// Root returns the object a root slot holds.
func (r *Runtime) Root(slot int) objmodel.ObjID { return r.roots[slot] }

// DropRoot clears and recycles a root slot.
func (r *Runtime) DropRoot(slot int) {
	r.roots[slot] = objmodel.Nil
	r.freeSlots = append(r.freeSlots, slot)
}

// Collect forces a collection (System.gc analogue).
func (r *Runtime) Collect(full bool) {
	if full {
		r.collectFull()
	} else {
		r.collectYoung()
	}
}

// HeapUsed returns current mature occupancy (for diagnostics).
func (r *Runtime) HeapUsed() uint64 { return r.matureUsed() }

// FreeLists exposes the two free lists (ablation study, diagnostics).
func (r *Runtime) FreeLists() (lo, hi *heap.FreeList) { return r.flLo, r.flHi }
