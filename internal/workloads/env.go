package workloads

import (
	"repro/internal/jvm"
	"repro/internal/native"
	"repro/internal/objmodel"
)

// ManagedEnv adapts the JVM runtime to the Env interface.
type ManagedEnv struct {
	R *jvm.Runtime
}

var _ Env = (*ManagedEnv)(nil)

// Managed reports true.
func (e *ManagedEnv) Managed() bool { return true }

// Alloc allocates a managed, zero-initialized object.
func (e *ManagedEnv) Alloc(size, nrefs int) Ref {
	return Ref(e.R.Alloc(size, nrefs))
}

// Free is a no-op: reclamation is the collector's job.
func (e *ManagedEnv) Free(Ref) {}

// Write stores through the runtime (with KG-W write monitoring).
func (e *ManagedEnv) Write(ref Ref, off, size int) {
	e.R.Write(objmodel.ObjID(ref), off, size)
}

// Read loads through the runtime.
func (e *ManagedEnv) Read(ref Ref, off, size int) {
	e.R.Read(objmodel.ObjID(ref), off, size)
}

// WriteRef runs the generational write barrier.
func (e *ManagedEnv) WriteRef(src Ref, slot int, dst Ref) {
	e.R.WriteRef(objmodel.ObjID(src), slot, objmodel.ObjID(dst))
}

// ReadRef loads a reference slot.
func (e *ManagedEnv) ReadRef(src Ref, slot int) Ref {
	return Ref(e.R.ReadRef(objmodel.ObjID(src), slot))
}

// AddRoot pins an object.
func (e *ManagedEnv) AddRoot(ref Ref) int { return e.R.AddRoot(objmodel.ObjID(ref)) }

// SetRoot repoints a root slot.
func (e *ManagedEnv) SetRoot(slot int, ref Ref) { e.R.SetRoot(slot, objmodel.ObjID(ref)) }

// DropRoot releases a root slot.
func (e *ManagedEnv) DropRoot(slot int) { e.R.DropRoot(slot) }

// Compute burns compute units.
func (e *ManagedEnv) Compute(n int) { e.R.Proc.Compute(n) }

// NativeEnv adapts the malloc runtime to the Env interface: C++-style
// manual memory management where references are plain pointer fields.
type NativeEnv struct {
	R *native.Runtime
}

var _ Env = (*NativeEnv)(nil)

// Managed reports false.
func (e *NativeEnv) Managed() bool { return false }

// Alloc mallocs without zero-initialization.
func (e *NativeEnv) Alloc(size, nrefs int) Ref {
	return Ref(e.R.Malloc(size))
}

// Free releases the block.
func (e *NativeEnv) Free(ref Ref) { e.R.Free(uint64(ref)) }

// Write stores directly.
func (e *NativeEnv) Write(ref Ref, off, size int) {
	e.R.Write(uint64(ref), off, size)
}

// Read loads directly.
func (e *NativeEnv) Read(ref Ref, off, size int) {
	e.R.Read(uint64(ref), off, size)
}

// WriteRef is a plain pointer store (no barrier, no tracking).
func (e *NativeEnv) WriteRef(src Ref, slot int, dst Ref) {
	e.R.Write(uint64(src), 8+slot*8, 8)
}

// ReadRef reads the pointer field; the native heap does not track the
// object graph, so the handle itself is not recoverable.
func (e *NativeEnv) ReadRef(src Ref, slot int) Ref {
	e.R.Read(uint64(src), 8+slot*8, 8)
	return NilRef
}

// AddRoot is a no-op (stack pointers need no registration).
func (e *NativeEnv) AddRoot(Ref) int { return -1 }

// SetRoot is a no-op.
func (e *NativeEnv) SetRoot(int, Ref) {}

// DropRoot is a no-op.
func (e *NativeEnv) DropRoot(int) {}

// Compute burns compute units.
func (e *NativeEnv) Compute(n int) { e.R.Proc.Compute(n) }
