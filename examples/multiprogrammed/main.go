// Multiprogrammed workloads: the paper's Fig 4 scenario — PCM writes
// grow super-linearly with co-running instances under PCM-Only because
// the instances interfere in the shared LLC, while KG-W dampens the
// growth by keeping nursery writes in DRAM. The whole grid runs as one
// parallel batch; the printout then reads the memoized results.
package main

import (
	"context"
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))
	ctx := context.Background()

	gcs := []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGW}
	counts := []int{1, 2, 4}
	if _, err := p.RunSweep(ctx, hybridmem.NewSweep("pmd").
		Collectors(gcs...).Instances(counts...)); err != nil {
		log.Fatal(err)
	}

	for _, gc := range gcs {
		fmt.Printf("%s:\n", gc)
		var base float64
		for _, n := range counts {
			res, err := p.Run(ctx, hybridmem.RunSpec{
				AppName:   "pmd",
				Collector: gc,
				Instances: n,
			})
			if err != nil {
				log.Fatal(err)
			}
			w := float64(res.PCMWriteLines)
			if n == 1 {
				base = w
			}
			growth := w / base
			marker := ""
			if float64(n) < growth {
				marker = "  <- super-linear"
			}
			fmt.Printf("  %d instance(s): %9.0f PCM line writes (%.1fx)%s\n",
				n, w, growth, marker)
		}
	}
}
