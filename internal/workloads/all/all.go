// Package all is the benchmark registry: the paper's 15 applications
// (11 DaCapo, Pjbb, and 3 GraphChi) behind one lookup surface.
// Factories return fresh instances because applications keep
// long-lived state across iterations and multiprogrammed instances
// must not share it.
package all

import (
	"repro/internal/workloads"
	"repro/internal/workloads/dacapo"
	"repro/internal/workloads/graphchi"
	"repro/internal/workloads/pjbb"
)

// Names lists all 15 benchmark names in the paper's order.
func Names() []string {
	names := dacapo.Names()
	names = append(names, "pjbb", "PR", "CC", "ALS")
	return names
}

// New returns a fresh instance of the named application, or nil when
// the name is unknown.
func New(name string) workloads.App {
	switch name {
	case "pjbb":
		return pjbb.New()
	case "PR":
		return graphchi.New(graphchi.PR)
	case "CC":
		return graphchi.New(graphchi.CC)
	case "ALS":
		return graphchi.New(graphchi.ALS)
	default:
		return dacapo.New(name)
	}
}

// Apps returns fresh instances of all 15 applications.
func Apps() []workloads.App {
	var out []workloads.App
	for _, n := range Names() {
		out = append(out, New(n))
	}
	return out
}

// BySuite returns fresh instances of one suite.
func BySuite(s workloads.Suite) []workloads.App {
	var out []workloads.App
	for _, a := range Apps() {
		if a.Suite() == s {
			out = append(out, a)
		}
	}
	return out
}
