package hybridmem

import "context"

// Sweep declaratively enumerates an experiment grid — apps ×
// collectors × instance counts × datasets — in a deterministic order
// (the paper's evaluation is exactly such grids: Figs 4–8 and Tables
// II–III sweep the benchmarks across collectors and multiprogramming
// degrees). A zero dimension takes its default: all eight collectors,
// one instance, the default dataset.
type Sweep struct {
	apps       []string
	collectors []Collector
	instances  []int
	datasets   []Dataset
	native     bool
}

// NewSweep starts a sweep over the named applications. With no names
// it covers the full 15-benchmark registry.
func NewSweep(apps ...string) *Sweep {
	return &Sweep{apps: apps}
}

// Collectors restricts the sweep to the given collector plans
// (default: all eight configurations in the paper's order).
func (s *Sweep) Collectors(cs ...Collector) *Sweep {
	s.collectors = cs
	return s
}

// Instances sets the multiprogramming degrees to sweep (default: 1).
func (s *Sweep) Instances(ns ...int) *Sweep {
	s.instances = ns
	return s
}

// Datasets sets the input datasets to sweep (default: Default).
func (s *Sweep) Datasets(ds ...Dataset) *Sweep {
	s.datasets = ds
	return s
}

// Native switches the sweep to the C++ implementations on the malloc
// runtime; the collector dimension collapses (native runs have no
// garbage collector).
func (s *Sweep) Native() *Sweep {
	s.native = true
	return s
}

// Specs expands the grid into RunSpecs, ordered app-major then
// collector, instances, dataset — a fixed order, so Specs()[i] lines
// up with the i-th Result of RunSweep and RunBatch. Empty dimensions
// take their documented defaults (the 15-benchmark registry, all
// eight collectors, 1 instance, the Default dataset); repeated entries
// are preserved in order, so a dimension like Instances(1, 1, 2)
// yields aligned duplicate columns rather than collapsing.
func (s *Sweep) Specs() []RunSpec {
	apps := s.apps
	if len(apps) == 0 {
		apps = Apps()
	}
	collectors := s.collectors
	if s.native {
		collectors = []Collector{0}
	} else if len(collectors) == 0 {
		collectors = Collectors()
	}
	instances := s.instances
	if len(instances) == 0 {
		instances = []int{1}
	}
	datasets := s.datasets
	if len(datasets) == 0 {
		datasets = []Dataset{Default}
	}

	specs := make([]RunSpec, 0, len(apps)*len(collectors)*len(instances)*len(datasets))
	for _, app := range apps {
		for _, c := range collectors {
			for _, n := range instances {
				for _, d := range datasets {
					specs = append(specs, RunSpec{
						AppName:   app,
						Collector: c,
						Instances: n,
						Dataset:   d,
						Native:    s.native,
					})
				}
			}
		}
	}
	return specs
}

// RunSweep executes the sweep through the platform's worker pool and
// returns Results aligned with sweep.Specs().
func (p *Platform) RunSweep(ctx context.Context, sweep *Sweep) ([]Result, error) {
	return p.RunBatch(ctx, sweep.Specs()...)
}
