// Command pcmmon demonstrates the platform's pcm-memory-style
// write-rate monitor: it runs one benchmark under a chosen collector
// and prints the per-interval DRAM and PCM write-rate series the
// monitor sampled, followed by the measured-iteration summary.
//
// Usage:
//
//	pcmmon -app xalan -gc PCM-Only [-period 10ms-in-seconds]
//	       [-scale quick|std|full]
package main

import (
	"flag"
	"fmt"
	"os"

	hybridmem "repro"
	"repro/internal/jvm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/pcmmon"
	"repro/internal/workloads"
)

func main() {
	appName := flag.String("app", "xalan", "benchmark name")
	gcName := flag.String("gc", "PCM-Only", "collector configuration")
	period := flag.Float64("period", 0.01, "sampling period in simulated seconds")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.String("scale", "std", "input scale: quick, std, or full")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pcmmon: %v\n", err)
		os.Exit(2)
	}
	kind, err := hybridmem.ParseCollector(*gcName)
	if err != nil {
		fail(err)
	}
	sc, err := hybridmem.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	app := hybridmem.ScaledApps(sc)(*appName)
	if app == nil {
		fail(fmt.Errorf("%w: %q", hybridmem.ErrUnknownApp, *appName))
	}

	m := machine.New(machine.DefaultConfig())
	k := kernel.New(m, kernel.DefaultConfig())
	cfg := pcmmon.DefaultConfig()
	cfg.PeriodSec = *period
	mon := pcmmon.New(m, cfg)

	plan := jvm.NewPlan(kind, jvm.PlanConfig{
		BaseNurseryBytes: uint64(app.NurseryMB()) << 20,
		HeapBytes:        uint64(app.HeapMB()) << 20,
		ThreadSocket:     -1,
	})
	proc := k.NewProcess(*appName, plan.ThreadSocket, func(p *kernel.Process) {
		rt, err := jvm.NewRuntime(p, plan)
		if err != nil {
			panic(err)
		}
		env := &workloads.ManagedEnv{R: rt}
		rt.SetIteration(1)
		app.Run(env, workloads.Default, *seed)
		p.Barrier()
		rt.SetIteration(2)
		app.Run(env, workloads.Default, *seed+7)
	})
	err = k.Run([]*kernel.Process{proc}, kernel.RunConfig{
		ThreadsPerProc: 4,
		OnQuantum:      mon.OnQuantum,
		OnBarrier: func() {
			mon.StartMeasurement(proc.Th.Seconds())
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcmmon: %v\n", err)
		os.Exit(1)
	}
	mon.StopMeasurement(proc.Th.Seconds())

	fmt.Printf("time(s)    DRAM MB/s    PCM MB/s\n")
	dram := mon.RateSeries(0)
	pcm := mon.RateSeries(1)
	samples := mon.Samples()
	for i := range dram {
		fmt.Printf("%8.3f %12.1f %11.1f\n", samples[i+1].TimeSec, dram[i], pcm[i])
	}
	rep := mon.Report()
	fmt.Printf("\nmeasured iteration: %.4f s, PCM %.1f MB/s, DRAM %.1f MB/s\n",
		rep.Seconds, rep.WriteRateMBs(1), rep.WriteRateMBs(0))
}
