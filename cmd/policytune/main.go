// Command policytune searches a placement-policy knob grid over a
// recorded trace, entirely offline: one emulator run (the recording)
// prices the whole grid, one replay per point, and the output is the
// Pareto-optimal frontier on (migration stalls, PCM write placement)
// plus a recommended knob set.
//
// Usage:
//
//	policytune -trace run.ndjson [-policy write-threshold]
//	           [-hot 64,128,256] [-cold 0,8] [-budget 16384,32768]
//	           [-wear 1.5,2,3] [-ndjson frontier.ndjson]
//	           [-log-format text|json]
//
// Record traces with `hybridemu -trace out.ndjson ...` or stream them
// from hybridserved (`GET /v1/trace?...`); "-" reads the trace from
// stdin. Each -hot/-cold/-budget/-wear flag lists that knob's grid
// values (comma separated); omitted knobs stay at their registry
// defaults, so `-hot 64,128,256 -budget 16384,32768` is a 3x2 grid.
//
// The table prints every evaluated point in grid order with its
// replayed cost model; frontier members are marked pareto (the
// recommended point "pareto*"), and the recommended knob set repeats
// on a closing line. -ndjson additionally writes the frontier, one
// JSON point per line in the frontier's stable order, for downstream
// tooling (the CI smoke step uploads it as an artifact). Validate a
// tuned point live with
// `hybridemu -policy <kind> ...` on a platform built with
// hybridmem.WithPolicyConfig, or through paperfigs's autotune step.
//
// Exit status: 0 on success, 1 when the trace is corrupt (every point
// prices the same valid prefix, so the partial frontier is still
// printed) or the search fails, 2 on bad flags, an unreadable trace
// path, an invalid grid, or a version-skewed trace.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	hybridmem "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its exit code surfaced, so the CLI contract (0 ok,
// 1 corrupt trace with partial frontier, 2 bad flags) is testable.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("policytune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "recorded ndjson trace (hybridemu -trace); - for stdin")
	policyName := fs.String("policy", "write-threshold", "policy to tune: write-threshold or wear-level (any built-in accepted)")
	hot := fs.String("hot", "", "comma-separated HotWriteLines grid values (empty = registry default)")
	cold := fs.String("cold", "", "comma-separated ColdWriteLines grid values")
	budget := fs.String("budget", "", "comma-separated DRAMBudgetPages grid values")
	wear := fs.String("wear", "", "comma-separated WearFactor grid values")
	ndjsonPath := fs.String("ndjson", "", "also write the frontier as ndjson to this file (- for stdout)")
	logFormat := fs.String("log-format", "text", "diagnostic log format: text or json")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Diagnostics are structured logs on stderr; the table and ndjson
	// frontier on stdout stay plain — they are data, not logs.
	log, err := obs.NewLogger(stderr, *logFormat, "")
	if err != nil {
		fmt.Fprintf(stderr, "policytune: %v\n", err)
		return 2
	}

	fail := func(err error) int {
		log.Error("invalid invocation", "err", err)
		return 2
	}

	if *tracePath == "" {
		return fail(errors.New("-trace is required (record one with hybridemu -trace)"))
	}
	grid := hybridmem.KnobGrid{}
	pol, err := hybridmem.ParsePolicy(*policyName)
	if err != nil {
		return fail(err)
	}
	grid.Policy = pol
	if grid.HotWriteLines, err = parseUints(*hot); err != nil {
		return fail(fmt.Errorf("-hot: %w", err))
	}
	if grid.ColdWriteLines, err = parseUints(*cold); err != nil {
		return fail(fmt.Errorf("-cold: %w", err))
	}
	if grid.DRAMBudgetPages, err = parseUints(*budget); err != nil {
		return fail(fmt.Errorf("-budget: %w", err))
	}
	if grid.WearFactors, err = parseFloats(*wear); err != nil {
		return fail(fmt.Errorf("-wear: %w", err))
	}
	if err := grid.Validate(); err != nil {
		return fail(err)
	}

	var data []byte
	if *tracePath == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(*tracePath)
	}
	if err != nil {
		return fail(fmt.Errorf("reading trace: %w", err))
	}
	// Read the header up front so a version-skewed or headless trace
	// exits 2 before any table is printed, mirroring policyreplay.
	hdr, err := trace.NewReader(bytes.NewReader(data)).Header()
	if err != nil {
		return fail(err)
	}
	lang := hdr.Collector
	if hdr.Native {
		lang = "native"
	}
	fmt.Fprintf(stdout, "trace: %s/%s x%d (%s, %s, seed %d), recorded policy %s\n",
		hdr.App, lang, hdr.Instances, hdr.Dataset, hdr.Mode, hdr.Seed, hdr.Policy)
	if _, quanta, _ := trace.DecodeAll(bytes.NewReader(data)); len(quanta) > 0 {
		if exp := trace.ExpandedSize(hdr, quanta); exp > len(data) {
			fmt.Fprintf(stdout, "compaction: %d bytes on disk, %d expanded (%.1fx, keyframe interval %d)\n",
				len(data), exp, float64(exp)/float64(len(data)), hdr.KeyframeInterval)
		}
	}

	rep, runErr := hybridmem.Autotune(context.Background(), bytes.NewReader(data), grid)
	if runErr != nil && !errors.Is(runErr, hybridmem.ErrTraceCorrupt) {
		log.Error("grid search failed", "err", runErr)
		return 1
	}

	fmt.Fprintf(stdout, "%-8s %-8s %-10s %-6s %8s %10s %14s %14s %8s %s\n",
		"hot", "cold", "budget", "wear", "actions", "migrated", "stall-cycles", "pcm-writes", "vs-base", "frontier")
	for _, pt := range rep.Points {
		mark := "-"
		if pt.Pareto {
			mark = "pareto"
		}
		if pt.Recommended {
			mark = "pareto*"
		}
		fmt.Fprintf(stdout, "%-8d %-8d %-10d %-6g %8d %10d %14.0f %14d %7.1f%% %s\n",
			pt.HotWriteLines, pt.ColdWriteLines, pt.DRAMBudgetPages, pt.WearFactor,
			pt.Actions, pt.PagesMigrated, pt.StallCycles, pt.PCMWriteLines,
			100*pt.PCMWriteReduction, mark)
	}
	if len(rep.Frontier) > 0 {
		r := rep.Recommended
		fmt.Fprintf(stdout, "frontier: %d of %d points; recommended: %s hot=%d cold=%d budget=%d wear=%g "+
			"(est. %d pages migrated, %.0f stall cycles, %.1f%% PCM write reduction)\n",
			len(rep.Frontier), len(rep.Points), r.Policy, r.HotWriteLines, r.ColdWriteLines,
			r.DRAMBudgetPages, r.WearFactor, r.PagesMigrated, r.StallCycles, 100*r.PCMWriteReduction)
	}

	if *ndjsonPath != "" {
		out := stdout
		var f *os.File
		if *ndjsonPath != "-" {
			f, err = os.Create(*ndjsonPath)
			if err != nil {
				log.Error("creating ndjson file", "path", *ndjsonPath, "err", err)
				return 1
			}
			out = f
		}
		if err := writeNDJSON(out, rep.Frontier); err != nil {
			log.Error("writing ndjson", "err", err)
			return 1
		}
		if f != nil {
			if err := f.Close(); err != nil {
				log.Error("closing ndjson", "err", err)
				return 1
			}
		}
	}

	if runErr != nil {
		// Corrupt tail: the frontier above covers the valid prefix.
		log.Error("trace truncated", "err", runErr)
		return 1
	}
	return 0
}

// writeNDJSON streams the frontier, one JSON point per line.
func writeNDJSON(w io.Writer, points []hybridmem.KnobPoint) error {
	for _, pt := range points {
		line, err := json.Marshal(pt)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// parseUints parses a comma-separated uint64 list ("" = nil).
func parseUints(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated float64 list ("" = nil).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
