package hybridmem

import (
	"context"
	"testing"

	"repro/internal/workloads"
)

func TestAppsRegistry(t *testing.T) {
	names := Apps()
	if len(names) != 15 {
		t.Fatalf("Apps() = %d names, want the paper's 15", len(names))
	}
	for _, n := range names {
		if NewApp(n) == nil {
			t.Errorf("NewApp(%q) = nil", n)
		}
	}
	if NewApp("nonsense") != nil {
		t.Error("unknown app should be nil")
	}
}

func TestCollectors(t *testing.T) {
	cs := Collectors()
	if len(cs) != 8 {
		t.Fatalf("Collectors() = %d, want 8", len(cs))
	}
	if cs[0] != PCMOnly || cs[5] != KGW {
		t.Errorf("collector order wrong: %v", cs)
	}
}

func TestEndToEndQuickRun(t *testing.T) {
	p := New(WithScale(Quick))
	res, err := p.Run(context.Background(), RunSpec{AppName: "pmd", Collector: KGW})
	if err != nil {
		t.Fatal(err)
	}
	if res.PCMWriteLines == 0 && res.DRAMWriteLines == 0 {
		t.Error("no memory traffic measured")
	}
	if res.Seconds <= 0 {
		t.Error("no time measured")
	}
}

func TestSimulatorMode(t *testing.T) {
	p := New(WithScale(Quick), WithMode(Simulation))
	res, err := p.Run(context.Background(), RunSpec{AppName: "pmd", Collector: KGN})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroedPages != 0 {
		t.Error("simulation mode must not include OS page zeroing")
	}
}

func TestScaleStrings(t *testing.T) {
	if Quick.String() != "quick" || Std.String() != "std" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
}

func TestScaledAppsFactory(t *testing.T) {
	if Quick.graphEdges() >= Std.graphEdges() {
		t.Error("Quick graphs must be smaller than Std")
	}
	if Std.graphLargeFactor() >= Full.graphLargeFactor() {
		t.Error("Std large factor must be below Full's 10x")
	}
	factory := ScaledApps(Quick)
	app := factory("lusearch")
	if app == nil {
		t.Fatal("factory lost lusearch")
	}
	pa := app.(*workloads.ProfileApp)
	if pa.P.AllocMB >= 200 {
		t.Error("Quick scale must shrink the allocation volume")
	}
	if factory("nope") != nil {
		t.Error("factory should return nil for unknown apps")
	}
}

func TestLifetimeHelpers(t *testing.T) {
	rec := RecommendedRateMBs()
	if rec < 130 || rec > 145 {
		t.Errorf("recommended rate = %.1f, want ~140", rec)
	}
	y := LifetimeYears(32<<30, 10e6, 140)
	if y <= 0 {
		t.Error("lifetime should be positive")
	}
	// Halving the write rate doubles the lifetime.
	y2 := LifetimeYears(32<<30, 10e6, 70)
	if y2 < 1.99*y || y2 > 2.01*y {
		t.Errorf("lifetime scaling wrong: %v vs %v", y, y2)
	}
}
