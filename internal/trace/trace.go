// Package trace records and replays the placement-policy engine's
// per-quantum decision stream.
//
// The PR-3 engine computes a View per GC-safepoint quantum — page
// groups with heat, wear, and residency — lets its policy decide
// migration Actions, executes them, and throws the whole exchange
// away. This package captures it as a versioned ndjson trace: one
// header line carrying the run's identity (spec key, seed, policy and
// its knobs, migration cost constants), then one line per quantum
// carrying the full View, the policy's emitted Actions, and the
// per-action executed costs. A recorded trace turns the emulator's
// most expensive asset — its per-quantum placement signal — into a
// file, so new policies are prototyped offline against recorded views
// (the cost-avoidance move METICULOUS-style emulators exist for) and
// the live engine is validated differentially: replaying a trace with
// the policy that recorded it must reproduce the recorded Action
// stream bit-identically. Replay uses the header's recorded knobs;
// ReplayWith injects a policy.Config per call, which is the primitive
// internal/autotune builds its knob-grid search on — one recorded
// trace prices every point of a grid.
//
// The format is append-crash-tolerant in the same way internal/store's
// segments are: every record is one Write of one line, so a torn tail
// shows up as an unparseable final line. The Reader surfaces ErrCorrupt
// with the offending line number and keeps every record before it
// valid, so replay of the intact prefix still works.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/policy"
)

// Version is the trace schema version this package writes and reads.
// Bump it when Header or Quantum change incompatibly; readers reject
// other versions with ErrVersion.
const Version = 1

// Typed trace errors. The hybridmem facade re-exports them as
// ErrTraceVersion and ErrTraceCorrupt.
var (
	// ErrVersion reports a trace written by an incompatible schema
	// version.
	ErrVersion = errors.New("trace: unsupported trace version")
	// ErrCorrupt reports an unreadable trace: a missing or mangled
	// header, a garbage line, or a torn tail. The error message names
	// the offending line; records before it remain valid.
	ErrCorrupt = errors.New("trace: corrupt trace")
)

// Header is the trace's first line: the recorded run's identity plus
// everything a replayer needs to re-drive a policy against the views —
// the policy knobs (Decide takes them) and the kernel's migration cost
// constants (stall estimation uses them). Changing it is a schema
// change: bump Version and regenerate the golden trace.
type Header struct {
	Version int `json:"version"`
	// Key is the platform's canonical spec key for the recorded run
	// (empty when the trace was recorded below the facade).
	Key string `json:"key,omitempty"`
	// The spec, spelled with the public names.
	App       string `json:"app"`
	Collector string `json:"collector,omitempty"`
	Instances int    `json:"instances"`
	Dataset   string `json:"dataset"`
	Native    bool   `json:"native,omitempty"`
	Mode      string `json:"mode"`
	Seed      uint64 `json:"seed"`
	// Policy is the recorded policy's name; the knobs below are its
	// resolved configuration.
	Policy              string  `json:"policy"`
	HotWriteLines       uint64  `json:"hotWriteLines"`
	ColdWriteLines      uint64  `json:"coldWriteLines"`
	DRAMBudgetPages     uint64  `json:"dramBudgetPages"`
	WearFactor          float64 `json:"wearFactor"`
	MaxGroupsPerQuantum int     `json:"maxGroupsPerQuantum"`
	// The recorded kernel's migration cost constants, so offline stall
	// estimates price actions the way the live run would have.
	MigrationPageCycles float64 `json:"migrationPageCycles"`
	TLBShootdownCycles  float64 `json:"tlbShootdownCycles"`
}

// SetPolicyConfig fills the header's policy fields from a resolved
// configuration.
func (h *Header) SetPolicyConfig(cfg policy.Config) {
	cfg = cfg.WithDefaults()
	h.Policy = cfg.Kind.String()
	h.HotWriteLines = cfg.HotWriteLines
	h.ColdWriteLines = cfg.ColdWriteLines
	h.DRAMBudgetPages = cfg.DRAMBudgetPages
	h.WearFactor = cfg.WearFactor
	h.MaxGroupsPerQuantum = cfg.MaxGroupsPerQuantum
}

// PolicyConfig reconstructs the recorded policy configuration; Replay
// hands it to the replayed policy's Decide, so a replay prices and
// truncates decisions with the recorded knobs.
func (h Header) PolicyConfig() policy.Config {
	cfg := policy.Config{
		HotWriteLines:       h.HotWriteLines,
		ColdWriteLines:      h.ColdWriteLines,
		DRAMBudgetPages:     h.DRAMBudgetPages,
		WearFactor:          h.WearFactor,
		MaxGroupsPerQuantum: h.MaxGroupsPerQuantum,
	}
	for k := policy.Static; k < policy.NumKinds; k++ {
		if k.String() == h.Policy {
			cfg.Kind = k
			break
		}
	}
	return cfg.WithDefaults()
}

// Quantum is one recorded engine quantum: the view one process's
// safepoint presented, the actions the policy emitted (post-truncation,
// exactly the list the engine executed), and the per-action outcomes.
// Exec aligns with Actions index-by-index and may be shorter when the
// engine stopped the quantum early on frame exhaustion.
type Quantum struct {
	Q       uint64          `json:"q"`
	Proc    string          `json:"proc,omitempty"`
	View    policy.View     `json:"view"`
	Actions []policy.Action `json:"actions,omitempty"`
	Exec    []policy.Exec   `json:"exec,omitempty"`
}

// Recorder streams a trace: the header at construction, then one line
// per observed quantum. It implements policy.Tap, so attaching it to
// an engine via SetTap records the run. Each record is written with a
// single Write call — a crash mid-append leaves a torn tail the Reader
// reports (and replays around), never a silently mixed line.
//
// Write failures latch: the first error sticks, later quanta are
// dropped, and Err returns it so the run can surface a broken sink
// once instead of once per quantum.
type Recorder struct {
	mu     sync.Mutex
	w      io.Writer
	quanta uint64
	err    error
}

// NewRecorder writes the header line and returns the recorder. The
// header's Version is stamped by the recorder; callers fill the rest.
func NewRecorder(w io.Writer, h Header) (*Recorder, error) {
	h.Version = Version
	line, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding header: %w", err)
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Recorder{w: w}, nil
}

// OnQuantum records one engine quantum; it implements policy.Tap.
func (r *Recorder) OnQuantum(proc string, v policy.View, actions []policy.Action, exec []policy.Exec) {
	rec := Quantum{Q: v.Quantum, Proc: proc, View: v, Actions: actions, Exec: exec}
	line, err := json.Marshal(rec)
	if err != nil {
		err = fmt.Errorf("trace: encoding quantum %d: %w", v.Quantum, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = fmt.Errorf("trace: writing quantum %d: %w", v.Quantum, err)
		return
	}
	r.quanta++
}

// Quanta returns the number of quantum records written so far.
func (r *Recorder) Quanta() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quanta
}

// Err returns the latched write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Reader decodes a trace stream: Header first, then Next per quantum
// record until io.EOF. Corruption — a garbage line, a torn tail —
// surfaces as ErrCorrupt naming the 1-based line number; every record
// returned before the error is valid, so callers can replay the intact
// prefix.
type Reader struct {
	br      *bufio.Reader
	line    int
	hdr     Header
	hdrDone bool
	err     error
}

// NewReader wraps an ndjson trace stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// next returns the next line (1-based numbering), io.EOF at a clean
// end. A final line without a trailing newline is returned as-is: if
// it parses it was a complete record, and if not the parse failure
// reports it as the torn tail it is.
func (r *Reader) next() ([]byte, error) {
	for {
		line, err := r.br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("%w: reading line %d: %v", ErrCorrupt, r.line+1, err)
		}
		if len(bytes.TrimSpace(line)) == 0 {
			if err == io.EOF {
				return nil, io.EOF
			}
			r.line++ // blank separator lines are tolerated, but numbered
			continue
		}
		r.line++
		return line, nil
	}
}

// Header reads and validates the trace header (idempotently).
func (r *Reader) Header() (Header, error) {
	if r.hdrDone {
		return r.hdr, r.err
	}
	r.hdrDone = true
	line, err := r.next()
	if err == io.EOF {
		r.err = fmt.Errorf("%w: empty trace (missing header)", ErrCorrupt)
		return Header{}, r.err
	}
	if err != nil {
		r.err = err
		return Header{}, r.err
	}
	var h Header
	if jerr := json.Unmarshal(line, &h); jerr != nil {
		r.err = fmt.Errorf("%w: line %d: bad header: %v", ErrCorrupt, r.line, jerr)
		return Header{}, r.err
	}
	if h.Version != Version {
		r.err = fmt.Errorf("%w: trace version %d, this reader supports %d", ErrVersion, h.Version, Version)
		return Header{}, r.err
	}
	r.hdr = h
	return h, nil
}

// Next returns the next quantum record, io.EOF at a clean end of
// trace, or ErrCorrupt (with the line number) at a mangled line. The
// first error latches: further calls keep returning it.
func (r *Reader) Next() (Quantum, error) {
	if !r.hdrDone {
		if _, err := r.Header(); err != nil {
			return Quantum{}, err
		}
	}
	if r.err != nil {
		return Quantum{}, r.err
	}
	line, err := r.next()
	if err == io.EOF {
		return Quantum{}, io.EOF
	}
	if err != nil {
		r.err = err
		return Quantum{}, r.err
	}
	var q Quantum
	if jerr := json.Unmarshal(line, &q); jerr != nil {
		r.err = fmt.Errorf("%w: line %d: bad quantum record: %v", ErrCorrupt, r.line, jerr)
		return Quantum{}, r.err
	}
	return q, nil
}

// Line returns the number of the last line read (1-based; 0 before any
// read), which for a just-returned error is the offending line.
func (r *Reader) Line() int { return r.line }
