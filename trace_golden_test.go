package hybridmem

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// goldenTracePath is the committed quick-scale GraphChi trace: PR
// under KG-N with the write-threshold policy, seed 1.
const goldenTracePath = "testdata/traces/pr_kgn_write-threshold_quick.ndjson"

// goldenTraceBytes records the golden trace's run afresh.
func goldenTraceBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	p := New(WithScale(Quick), WithSeed(1), WithPolicy(WriteThreshold), WithTrace(&buf))
	if _, err := p.Run(context.Background(), RunSpec{AppName: "PR", Collector: KGN}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden freezes the trace schema and the recorder's
// determinism in one artifact: re-recording the golden run must
// reproduce the committed trace byte-for-byte. A failure means either
// the trace wire format changed (bump trace.Version, regenerate with
// `go test -run TestTraceGolden -update`, and flag it in review) or
// recording stopped being deterministic (a bug — do not regenerate).
func TestTraceGolden(t *testing.T) {
	got := goldenTraceBytes(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recorded trace drifted from %s (%d bytes recorded, %d committed); "+
			"if the schema change is deliberate, bump trace.Version and rerun with -update",
			goldenTracePath, len(got), len(want))
	}
}

// TestTraceGoldenReplays locks the committed artifact to the replay
// semantics: the frozen trace must keep replaying bit-identically
// under its own policy with today's code, so a Decide change that
// would invalidate recorded traces fails here even if recording and
// replaying stay mutually consistent.
func TestTraceGoldenReplays(t *testing.T) {
	data, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReplayTrace(bytes.NewReader(data), WriteThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !st.MatchesRecorded {
		t.Errorf("golden trace no longer replays bit-identically (diverged at quantum %d)",
			st.FirstMismatchQuantum)
	}
	if st.Quanta == 0 || st.PagesMigrated == 0 {
		t.Errorf("golden trace replayed to nothing: %+v", st)
	}
}

// TestTraceGoldenVersionRejected asserts the committed trace's header
// guards its schema: the same bytes with an unknown version number
// must be rejected with ErrTraceVersion, not misread.
func TestTraceGoldenVersionRejected(t *testing.T) {
	data, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	skewed := bytes.Replace(data, []byte(`{"version":2,`), []byte(`{"version":3,`), 1)
	if bytes.Equal(skewed, data) {
		t.Fatal("golden trace header lost its version field")
	}
	if _, err := ReplayTrace(bytes.NewReader(skewed), WriteThreshold); !errors.Is(err, ErrTraceVersion) {
		t.Errorf("future-version trace err = %v, want ErrTraceVersion", err)
	}
}
