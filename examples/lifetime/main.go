// Lifetime study: the paper's Table III scenario — measure PCM write
// rates for single-program and multiprogrammed workloads and project
// PCM lifetime in years under the paper's three endurance prototypes
// (Equation 1, 32 GB PCM, 50% wear-leveling efficiency).
package main

import (
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	opts := hybridmem.Emulator()
	opts.AppFactory = hybridmem.ScaledApps(hybridmem.Quick)
	opts.BootMB = 4

	endurances := []struct {
		name string
		e    float64
	}{
		{"Prototype 1 (10M writes/cell)", 10e6},
		{"Prototype 2 (30M writes/cell)", 30e6},
		{"Prototype 3 (50M writes/cell)", 50e6},
	}

	for _, n := range []int{1, 4} {
		for _, gc := range []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGW} {
			res, err := hybridmem.Run(opts, hybridmem.RunSpec{
				AppName:   "xalan",
				Collector: gc,
				Instances: n,
			})
			if err != nil {
				log.Fatal(err)
			}
			rate := res.PCMRateMBs()
			fmt.Printf("xalan x%d under %-8s: %6.1f MB/s to PCM\n", n, gc, rate)
			for _, p := range endurances {
				years := hybridmem.LifetimeYears(32<<30, p.e, rate)
				fmt.Printf("    %-30s %6.0f years\n", p.name, years)
			}
		}
	}
	fmt.Printf("\nvendor-recommended sustained rate: %.0f MB/s\n", hybridmem.RecommendedRateMBs())
}
