package jvm

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
)

// benchRuntime builds a runtime on an unscheduled process: with no
// scheduler the timeslice stays zero, accesses never yield, and the
// runtime is usable directly from the benchmark goroutine.
func benchRuntime(b *testing.B, kind Kind) *Runtime {
	b.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.NodeBytes = 2 << 30
	m := machine.New(mcfg)
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	p := k.NewProcess("bench", 0, nil)
	rt, err := NewRuntime(p, NewPlan(kind, PlanConfig{
		BaseNurseryBytes: 4 << 20,
		HeapBytes:        64 << 20,
		BootBytes:        1 << 20,
		ThreadSocket:     -1,
	}))
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkAllocSmall measures the nursery fast path including
// zero-initialization and GC amortization.
func BenchmarkAllocSmall(b *testing.B) {
	rt := benchRuntime(b, KGN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Alloc(64, 2)
	}
	b.ReportMetric(float64(rt.Stats.MinorGCs), "minorGCs")
}

// BenchmarkAllocLarge measures the large-object path.
func BenchmarkAllocLarge(b *testing.B) {
	rt := benchRuntime(b, KGW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Alloc(64<<10, 0)
	}
	b.ReportMetric(float64(rt.Stats.FullGCs), "fullGCs")
}

// BenchmarkWriteBarrier measures a reference store with the boundary
// barrier and KG-W monitoring.
func BenchmarkWriteBarrier(b *testing.B) {
	rt := benchRuntime(b, KGW)
	container := rt.Alloc(64, 4)
	rt.AddRoot(container)
	target := rt.Alloc(64, 0)
	rt.AddRoot(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.WriteRef(container, i%4, target)
	}
}

// BenchmarkMinorGC measures a full nursery collection with a live
// window.
func BenchmarkMinorGC(b *testing.B) {
	rt := benchRuntime(b, KGW)
	// A rooted window so collections have survivors to copy.
	for i := 0; i < 512; i++ {
		rt.AddRoot(rt.Alloc(128, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Collect(false)
	}
}
