package hybridmem

import (
	"context"
	"reflect"
	"testing"
)

// policyGridApps is the determinism grid: one cheap DaCapo app under
// the race detector, plus a GraphChi app without it (GraphChi runs
// exercise the migrating policies hardest).
func policyGridApps() []string {
	if raceEnabled {
		return []string{"lusearch"}
	}
	return []string{"lusearch", "PR"}
}

// TestPolicyDeterminismSerialVsParallel is the engine's determinism
// contract: equal seeds and equal policy produce bit-identical
// Results whether the grid runs serially through Run or in parallel
// through RunBatch. It runs under -race in CI.
func TestPolicyDeterminismSerialVsParallel(t *testing.T) {
	ctx := context.Background()
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			var specs []RunSpec
			for _, app := range policyGridApps() {
				specs = append(specs, RunSpec{AppName: app, Collector: KGN})
			}
			serial := New(WithScale(Quick), WithSeed(11), WithPolicy(pol))
			var want []Result
			for _, spec := range specs {
				res, err := serial.Run(ctx, spec)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, res)
			}
			// A fresh platform: nothing may come from the serial cache.
			parallel := New(WithScale(Quick), WithSeed(11), WithPolicy(pol))
			got, err := parallel.RunBatch(ctx, specs...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range specs {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Errorf("%s: parallel result diverged from serial\nserial:   %+v\nparallel: %+v",
						specs[i].AppName, want[i], got[i])
				}
			}
		})
	}
}

// TestPolicyMigratesOnGraphChi is the acceptance check that the
// migrating policies actually migrate: write-threshold and wear-level
// must move pages on at least one GraphChi workload, and static must
// move none while reporting the same paper counters as before the
// engine existed.
func TestPolicyMigratesOnGraphChi(t *testing.T) {
	if raceEnabled && testing.Short() {
		t.Skip("GraphChi quick runs are slow under -race -short")
	}
	ctx := context.Background()
	spec := RunSpec{AppName: "PR", Collector: KGN}

	static, err := New(WithScale(Quick), WithPolicy(Static)).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if static.PagesMigrated != 0 || static.MigrationStallCycles != 0 {
		t.Errorf("static migrated %d pages (%d stall cycles), want none",
			static.PagesMigrated, static.MigrationStallCycles)
	}
	if static.DRAMResidentPages == 0 || static.PCMResidentPages == 0 {
		t.Errorf("static residency = %d DRAM / %d PCM, want both tiers populated",
			static.DRAMResidentPages, static.PCMResidentPages)
	}
	baseline, err := New(WithScale(Quick)).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(static, baseline) {
		t.Error("explicit WithPolicy(Static) diverged from the default platform")
	}

	for _, pol := range []Policy{WriteThreshold, WearLevel} {
		res, err := New(WithScale(Quick), WithPolicy(pol)).Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.PagesMigrated == 0 {
			t.Errorf("%s migrated no pages on PR", pol)
		}
		if res.MigrationStallCycles == 0 {
			t.Errorf("%s charged no migration stalls", pol)
		}
	}

	// First-touch with threads on socket 0 keeps the heap off PCM.
	ft, err := New(WithScale(Quick), WithPolicy(FirstTouch)).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ft.PCMWriteLines >= static.PCMWriteLines {
		t.Errorf("first-touch PCM writes (%d) should undercut static tiering (%d)",
			ft.PCMWriteLines, static.PCMWriteLines)
	}
}

// TestNativeSpecKeyIgnoresPolicy freezes the native keying rule:
// native runs have no safepoints and ignore the engine, so every
// policy variant shares one cached/stored Result.
func TestNativeSpecKeyIgnoresPolicy(t *testing.T) {
	native := RunSpec{AppName: "PR", Native: true}
	managed := RunSpec{AppName: "PR", Collector: KGN}
	base := New(WithScale(Quick))
	for _, pol := range Policies() {
		p := New(WithScale(Quick), WithPolicy(pol))
		if got, want := p.SpecKey(native), base.SpecKey(native); got != want {
			t.Errorf("%v: native key %q != static native key %q", pol, got, want)
		}
		if pol != Static && p.SpecKey(managed) == base.SpecKey(managed) {
			t.Errorf("%v: managed key must differ from static's", pol)
		}
	}
}

// TestSweepPolicyDimension checks RunSweep's policy-major alignment:
// Results[p*len(Specs())+i] is Specs()[i] under PolicySweep()[p], and
// each pass matches the same run on a platform configured with that
// policy directly.
func TestSweepPolicyDimension(t *testing.T) {
	ctx := context.Background()
	sweep := NewSweep("lusearch").
		Collectors(KGN).
		Policies(Static, WriteThreshold)
	if got := len(sweep.PolicySweep()); got != 2 {
		t.Fatalf("PolicySweep() = %d entries, want 2", got)
	}
	p := New(WithScale(Quick), WithSeed(5))
	results, err := p.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	specs := sweep.Specs()
	if len(results) != 2*len(specs) {
		t.Fatalf("results = %d, want %d", len(results), 2*len(specs))
	}
	for pi, pol := range sweep.PolicySweep() {
		direct, err := New(WithScale(Quick), WithSeed(5), WithPolicy(pol)).Run(ctx, specs[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[pi*len(specs)], direct) {
			t.Errorf("policy %v: sweep result diverged from direct run", pol)
		}
	}
	// The two passes must genuinely differ in keying: a static result
	// must not be served for the write-threshold pass.
	if reflect.DeepEqual(results[0], results[len(specs)]) {
		// lusearch under KG-N may legitimately migrate nothing, but
		// the stall accounting would still differ if it did; equality
		// of full Results is only suspicious when migrations happened.
		if results[len(specs)].PagesMigrated > 0 {
			t.Error("distinct policies returned an identical Result")
		}
	}
}
