// Package jvm implements the managed runtime of the emulation
// platform: a Jikes-RVM-style virtual machine with the paper's
// modified heap (dual free lists, DRAM/PCM space split), a generational
// Immix baseline collector, and the seven write-rationing Kingsguard
// configurations evaluated in the paper (KG-N, KG-B, KG-N+LOO,
// KG-B+LOO, KG-W, KG-W−LOO, KG-W−MDO).
//
// The mutator API (Alloc/Read/Write/WriteRef plus root management) is
// what workloads program against; every operation is charged to the
// emulated machine through the owning process, so cache behaviour,
// NUMA routing, and memory-controller write counts are all emergent.
package jvm

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/objmodel"
)

// Kind enumerates the collector configurations of the paper.
type Kind int

const (
	// PCMOnly is the baseline generational Immix collector with every
	// space (including the boot image) bound to the PCM socket.
	PCMOnly Kind = iota
	// KGN is Kingsguard-nursery: nursery in DRAM, everything else in
	// PCM.
	KGN
	// KGB is KG-N with a bigger (3x) nursery.
	KGB
	// KGNLOO is KG-N plus the Large Object Optimization.
	KGNLOO
	// KGBLOO is KG-B plus the Large Object Optimization.
	KGBLOO
	// KGW is Kingsguard-writers: nursery and observer in DRAM, mature,
	// large, and metadata spaces on both sockets, LOO and MDO enabled.
	KGW
	// KGWNoLOO is KG-W without the Large Object Optimization.
	KGWNoLOO
	// KGWNoMDO is KG-W without the MetaData Optimization.
	KGWNoMDO
	// NumKinds is the number of collector configurations.
	NumKinds
)

// String returns the paper's name for the configuration.
func (k Kind) String() string {
	switch k {
	case PCMOnly:
		return "PCM-Only"
	case KGN:
		return "KG-N"
	case KGB:
		return "KG-B"
	case KGNLOO:
		return "KG-N+LOO"
	case KGBLOO:
		return "KG-B+LOO"
	case KGW:
		return "KG-W"
	case KGWNoLOO:
		return "KG-W-LOO"
	case KGWNoMDO:
		return "KG-W-MDO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DRAMSocket and PCMSocket are the NUMA roles on the platform.
const (
	DRAMSocket = 0
	PCMSocket  = 1
)

// kgbNurseryFactor is KG-B's nursery multiplier (4 MB -> 12 MB for
// DaCapo/Pjbb, 32 MB -> 96 MB for GraphChi).
const kgbNurseryFactor = 3

// monitorMutatorTax is the mutator slowdown of KG-W's write-monitoring
// barrier: every store executes the extended barrier (check the
// observed-space range, conditionally raise the write bit), which the
// paper measures as part of KG-W's 10% overhead over KG-N. The tax is
// applied to mutator execution, not to collector work.
const monitorMutatorTax = 0.12

// Plan is a fully resolved collector configuration.
type Plan struct {
	Kind Kind
	// NurseryBytes is the nursery size (already scaled for KG-B).
	NurseryBytes uint64
	// ObserverBytes is 2x the nursery for KG-W variants, else 0.
	ObserverBytes uint64
	// HeapBytes is the mature-heap budget that triggers full-heap
	// collections (the paper: twice the minimum heap size).
	HeapBytes uint64
	// BootBytes is the boot-image size.
	BootBytes uint64
	// ThreadSocket is where application and JVM threads run: socket 0
	// except for PCM-Only rate measurements (socket 1).
	ThreadSocket int
	// AppThreads and GCThreads follow the paper: 4 application
	// threads, 2 garbage collector threads.
	AppThreads int
	GCThreads  int
	// LOO enables the Large Object Optimization.
	LOO bool
	// MDO enables the MetaData Optimization.
	MDO bool
	// Monitor enables KG-W's write monitoring (observer write bits,
	// large-object write tracking).
	Monitor bool
	// UseObserver enables the observer space.
	UseObserver bool
	// Bindings is the space-to-socket map (the paper's Table I).
	Bindings heap.SocketBinding
	// RemsetNode is the NUMA node of the remembered-set buffers.
	RemsetNode int
	// UnmapFreedChunks enables the monolithic-heap ablation: freed
	// chunks are returned to the OS instead of recycled through the
	// free lists (the alternative the paper's Fig 1 design rejects).
	UnmapFreedChunks bool
	// FirstTouchHeap overrides the heap spaces' explicit NUMA
	// bindings with the OS first-touch policy (the placement engine's
	// first-touch policy); boot, metadata, and remset regions keep
	// their Table I bindings.
	FirstTouchHeap bool
}

// PlanConfig are the per-workload knobs of a plan.
type PlanConfig struct {
	// BaseNurseryBytes is the un-scaled nursery: 4 MB for DaCapo and
	// Pjbb, 32 MB for GraphChi (the paper's choices).
	BaseNurseryBytes uint64
	// HeapBytes is the mature-heap budget.
	HeapBytes uint64
	// BootBytes overrides the boot-image size (default 48 MB).
	BootBytes uint64
	// ThreadSocket overrides thread placement (-1 = plan default).
	ThreadSocket int
}

// NewPlan resolves a collector kind against workload knobs, applying
// the paper's Table I space-to-socket mapping.
func NewPlan(kind Kind, cfg PlanConfig) Plan {
	if cfg.BaseNurseryBytes == 0 {
		cfg.BaseNurseryBytes = 4 << 20
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 100 << 20
	}
	if cfg.BootBytes == 0 {
		cfg.BootBytes = 48 << 20
	}
	p := Plan{
		Kind:         kind,
		NurseryBytes: cfg.BaseNurseryBytes,
		HeapBytes:    cfg.HeapBytes,
		BootBytes:    cfg.BootBytes,
		ThreadSocket: DRAMSocket,
		AppThreads:   4,
		GCThreads:    2,
		Bindings:     heap.SocketBinding{},
	}
	if kind == KGB || kind == KGBLOO {
		p.NurseryBytes *= kgbNurseryFactor
	}

	bindAll := func(node int, spaces ...objmodel.SpaceID) {
		for _, s := range spaces {
			p.Bindings[s] = node
		}
	}
	switch kind {
	case PCMOnly:
		// Everything on the PCM socket; threads too, so that observed
		// socket-1 write rates are the PCM write rates (paper §III-B).
		bindAll(PCMSocket,
			objmodel.SpaceBoot, objmodel.SpaceNursery,
			objmodel.SpaceMaturePCM, objmodel.SpaceLargePCM,
			objmodel.SpaceMetaDRAM, objmodel.SpaceMetaPCM)
		p.ThreadSocket = PCMSocket
		p.RemsetNode = PCMSocket
	case KGN, KGB, KGNLOO, KGBLOO:
		// Table I, KG-N column: nursery on S0; mature, large, and
		// metadata on S1 only. Boot image in DRAM (paper §III-B).
		bindAll(DRAMSocket, objmodel.SpaceBoot, objmodel.SpaceNursery)
		bindAll(PCMSocket,
			objmodel.SpaceMaturePCM, objmodel.SpaceLargePCM,
			objmodel.SpaceMetaDRAM, objmodel.SpaceMetaPCM)
		p.RemsetNode = PCMSocket
		p.LOO = kind == KGNLOO || kind == KGBLOO
	case KGW, KGWNoLOO, KGWNoMDO:
		// Table I, KG-W column: nursery and observer on S0; mature,
		// large, and metadata spaces on both sockets.
		bindAll(DRAMSocket,
			objmodel.SpaceBoot, objmodel.SpaceNursery, objmodel.SpaceObserver,
			objmodel.SpaceMatureDRAM, objmodel.SpaceLargeDRAM,
			objmodel.SpaceMetaDRAM)
		bindAll(PCMSocket,
			objmodel.SpaceMaturePCM, objmodel.SpaceLargePCM,
			objmodel.SpaceMetaPCM)
		p.RemsetNode = DRAMSocket
		p.UseObserver = true
		p.Monitor = true
		p.ObserverBytes = 2 * p.NurseryBytes
		p.LOO = kind != KGWNoLOO
		p.MDO = kind != KGWNoMDO
	default:
		panic(fmt.Sprintf("jvm: unknown plan kind %d", kind))
	}
	if cfg.ThreadSocket >= 0 {
		p.ThreadSocket = cfg.ThreadSocket
	}
	return p
}

// HasDRAMSide reports whether the plan keeps mature/large spaces on the
// DRAM socket (KG-W variants).
func (p *Plan) HasDRAMSide() bool { return p.UseObserver }

// LOONurseryLimit is the Large Object Optimization heuristic: large
// objects up to 1/16 of the nursery are allocated in the nursery to
// give them time to die; bigger ones go straight to the PCM large
// space.
func (p *Plan) LOONurseryLimit() uint64 { return p.NurseryBytes / 16 }

// MutatorParallelism is the effective parallel speedup of mutator
// execution: the paper's 4 application threads, degraded by the
// monitoring barrier when the plan observes writes.
func (p *Plan) MutatorParallelism() float64 {
	par := float64(p.AppThreads)
	if p.Monitor {
		par /= 1 + monitorMutatorTax
	}
	return par
}

// SpaceMapping renders the plan's Table I row: which sockets each
// space occupies.
func (p *Plan) SpaceMapping() map[objmodel.SpaceID][2]bool {
	out := map[objmodel.SpaceID][2]bool{}
	set := func(s objmodel.SpaceID, node int) {
		v := out[s]
		v[node] = true
		out[s] = v
	}
	for s, n := range p.Bindings {
		set(s, n)
	}
	return out
}
