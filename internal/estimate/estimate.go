// Package estimate is the estimate-first serving tier: it answers a
// normalized spec from a library-resident trace in the same
// neighborhood, at replay speed instead of emulation speed.
//
// The library files one recorded trace per spec neighborhood (the
// canonical key minus the policy segment) together with the recorded
// run's exact Result — the measured baseline. An estimate re-drives
// the requested policy/knobs over the recorded views with
// trace.ReplayDecoded and maps the replay outputs onto that baseline:
// migration totals are taken from the replay outright (they are the
// recorded executed costs when the replay matches the recorded action
// stream, knob-priced estimates when it diverges), and the
// policy-sensitive write placement and residency move as deltas
// against the baseline, so fields replay cannot see (wall time,
// runtime stats, read traffic) stay anchored to a measured run. The
// synthesized Result is tagged Estimated with an EstimateInfo
// annotation naming the source trace, the replayed policy, and the
// Tolerance/Confidence bound — it is an answer about the same
// experiment, priced from one emulation instead of another.
//
// Decoded traces are cached per neighborhood and loads are coalesced:
// N concurrent estimates against one resident trace perform one file
// read and one decode, then replay concurrently over the shared
// quanta (ReplayDecoded never mutates them). The cache revalidates
// against the library's mutation generation, so a Put or Evict is
// picked up by the next estimate without a watcher.
package estimate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/trace/library"
)

// Tolerance is the relative error bound the estimate tier promises on
// the migration fields (stall cycles, pages migrated) of an estimated
// Result — the same bound the autotuner's live validation measures,
// and the one the drift validator evicts library traces for breaking.
const Tolerance = autotune.EstimateTolerance

// ErrNoBase reports a resident trace ingested without its measured
// baseline Result: replay can price the migration fields, but there is
// nothing to anchor the rest of the Result to, so the estimate tier
// treats the neighborhood as a miss.
var ErrNoBase = errors.New("estimate: library trace has no measured baseline")

// ErrPolicyDistance reports a request the resident trace cannot answer
// within Tolerance: a migrating policy estimated from a trace recorded
// under a different policy kind. The recorded views embed the
// recording policy's placement history, so a different migrating
// policy replayed over them prices a run that never happened —
// measured error approaches 1.0, not 0.25. Knob variation within one
// kind (the autotuner's validated ~5% path) and non-migrating
// requests (whose replays emit no actions and land exactly) stay
// estimable; everything else is a miss that falls through to compute.
var ErrPolicyDistance = errors.New("estimate: requested policy too far from recorded trace")

// Base is the sidecar the estimate tier files with a library trace:
// the recorded run's canonical key, spec, and exact Result.
type Base struct {
	Key    string       `json:"key"`
	Spec   core.RunSpec `json:"spec"`
	Result core.Result  `json:"result"`
}

// EncodeBase serializes a Base for library.PutWithBase.
func EncodeBase(key string, spec core.RunSpec, res core.Result) ([]byte, error) {
	return json.Marshal(Base{Key: key, Spec: spec, Result: res})
}

// Stats is a snapshot of an Estimator's behaviour. Hits counts
// estimates served; Misses counts requests that fell through (no
// resident trace, no baseline, or an unreadable entry); Loads counts
// actual library reads+decodes — with coalescing, N concurrent
// estimates over one warm neighborhood cost one load.
type Stats struct {
	Hits   uint64
	Misses uint64
	Loads  uint64
}

// Estimator answers specs from a trace library. Safe for concurrent
// use; one Estimator should be shared by everything serving from one
// library so the decode cache is shared too.
type Estimator struct {
	lib *library.Library

	mu    sync.Mutex
	cache map[string]*entry // neighborhood -> decoded trace

	hits   atomic.Uint64
	misses atomic.Uint64
	loads  atomic.Uint64
}

// New builds an Estimator over lib (nil lib yields a nil Estimator,
// which misses everything).
func New(lib *library.Library) *Estimator {
	if lib == nil {
		return nil
	}
	return &Estimator{lib: lib, cache: map[string]*entry{}}
}

// Stats returns a snapshot of the estimator's counters. A nil
// Estimator reports zeros.
func (e *Estimator) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{Hits: e.hits.Load(), Misses: e.misses.Load(), Loads: e.loads.Load()}
}

// Has reports whether the library holds a trace for the spec key's
// neighborhood (it may still miss on ErrNoBase).
func (e *Estimator) Has(specKey string) bool {
	return e != nil && e.lib.Has(specKey)
}

// Estimate answers specKey — a canonical spec key whose neighborhood
// the library may cover — under the requested policy configuration.
// On a hit the returned Result is the baseline with the replayed
// migration fields and placement deltas applied, tagged Estimated with
// its provenance. Misses return library.ErrNotFound (no resident
// trace), ErrNoBase (trace without a measured baseline), or
// ErrPolicyDistance (a migrating policy asked of a trace recorded
// under a different kind); other errors mean the resident entry could
// not be decoded or replayed.
func (e *Estimator) Estimate(specKey string, cfg policy.Config) (core.Result, error) {
	if e == nil {
		return core.Result{}, library.ErrNotFound
	}
	ent := e.lookup(library.NeighborhoodKey(specKey))
	if ent.err != nil {
		e.misses.Add(1)
		return core.Result{}, ent.err
	}
	if ent.base == nil {
		e.misses.Add(1)
		return core.Result{}, fmt.Errorf("%w: %s", ErrNoBase, library.NeighborhoodKey(specKey))
	}
	cfg = cfg.WithDefaults()
	if cfg.Migrates() && cfg.Kind.String() != ent.hdr.Policy {
		e.misses.Add(1)
		return core.Result{}, fmt.Errorf("%w: want %s, trace recorded %s",
			ErrPolicyDistance, cfg.Kind, ent.hdr.Policy)
	}
	pol, err := policy.NewPolicy(cfg.Kind.String())
	if err != nil {
		e.misses.Add(1)
		return core.Result{}, fmt.Errorf("estimate: %w", err)
	}
	st, err := trace.ReplayDecoded(ent.hdr, ent.quanta, pol, cfg)
	if err != nil {
		e.misses.Add(1)
		return core.Result{}, fmt.Errorf("estimate: replaying %s: %w", ent.base.Key, err)
	}

	res := ent.base.Result
	// Migration work comes from the replay outright: recorded executed
	// costs when the decision streams match, knob-priced estimates when
	// they diverge. The stall rounding matches the engine's own
	// float→uint64 conversion so a matching replay is bit-identical.
	res.PagesMigrated = st.PagesMigrated
	res.MigrationStallCycles = uint64(st.StallCycles + 0.5)
	// Write placement and residency are priced as deltas: the replay
	// only sees heap-group window traffic, so it shifts the baseline by
	// how differently the replayed decision history placed that
	// traffic, leaving the policy-independent remainder measured.
	dWrites := int64(st.PCMWriteLines) - int64(st.RecordedPCMWriteLines)
	res.PCMWriteLines = addClamp(res.PCMWriteLines, dWrites)
	res.DRAMWriteLines = addClamp(res.DRAMWriteLines, -dWrites)
	dDRAM := int64(st.ReplayedDRAMPages) - int64(st.RecordedDRAMPages)
	res.DRAMResidentPages = addClamp(res.DRAMResidentPages, dDRAM)
	res.PCMResidentPages = addClamp(res.PCMResidentPages, -dDRAM)

	conf := 1.0
	if !st.MatchesRecorded {
		conf = 1 - Tolerance
	}
	res.Estimated = true
	res.Estimate = &core.EstimateInfo{
		SourceKey:       ent.base.Key,
		SourceQuanta:    st.Quanta,
		Policy:          cfg.Key(),
		MatchesRecorded: st.MatchesRecorded,
		Confidence:      conf,
		Tolerance:       Tolerance,
	}
	e.hits.Add(1)
	return res, nil
}

// entry is one neighborhood's decoded trace. ready closes when the
// load finishes; joiners wait on it instead of re-reading the file.
type entry struct {
	ready  chan struct{}
	gen    uint64 // library generation the load started at
	hdr    trace.Header
	quanta []trace.Quantum
	base   *Base
	err    error
}

// lookup returns the neighborhood's decoded entry, loading it once per
// library generation however many estimates ask concurrently.
func (e *Estimator) lookup(hood string) *entry {
	gen := e.lib.Gen()
	e.mu.Lock()
	if ent, ok := e.cache[hood]; ok {
		stale := false
		select {
		case <-ent.ready:
			// A completed load from an older generation may describe an
			// evicted or replaced trace: reload. In-flight loads are
			// joined as-is — they started at most one mutation ago.
			stale = ent.gen != gen
		default:
		}
		if !stale {
			e.mu.Unlock()
			<-ent.ready
			return ent
		}
		delete(e.cache, hood)
	}
	ent := &entry{ready: make(chan struct{}), gen: gen}
	e.cache[hood] = ent
	e.mu.Unlock()

	e.loads.Add(1)
	ent.load(e.lib, hood)
	if ent.err != nil {
		// Failed loads are not cached: the next estimate retries (the
		// library may have been re-warmed in the meantime).
		e.mu.Lock()
		if e.cache[hood] == ent {
			delete(e.cache, hood)
		}
		e.mu.Unlock()
	}
	close(ent.ready)
	return ent
}

// load reads and decodes one library trace plus its baseline sidecar.
func (ent *entry) load(lib *library.Library, hood string) {
	tr, err := lib.Get(hood)
	if err != nil {
		ent.err = err
		return
	}
	ent.hdr, ent.quanta, err = trace.DecodeAll(bytes.NewReader(tr.Bytes()))
	if err != nil {
		ent.err = fmt.Errorf("estimate: decoding library trace %s: %w", hood, err)
		return
	}
	if raw := tr.Base(); raw != nil {
		var b Base
		if err := json.Unmarshal(raw, &b); err != nil {
			ent.err = fmt.Errorf("estimate: decoding baseline for %s: %w", hood, err)
			return
		}
		ent.base = &b
	}
}

// addClamp shifts a uint64 by a signed delta, clamping at zero: a
// replay delta can exceed a baseline component when the recorded and
// live accounting windows differ slightly, and an estimate should
// degrade to zero, not wrap.
func addClamp(v uint64, d int64) uint64 {
	if d >= 0 {
		return v + uint64(d)
	}
	if u := uint64(-d); u < v {
		return v - u
	}
	return 0
}
