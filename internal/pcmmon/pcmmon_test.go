package pcmmon

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
)

func testMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.NodeBytes = 1 << 30
	cfg.L1 = cache.Config{Name: "L1", Bytes: 1 << 10, Ways: 2}
	cfg.L2 = cache.Config{Name: "L2", Bytes: 4 << 10, Ways: 4}
	cfg.L3 = cache.Config{Name: "L3", Bytes: 16 << 10, Ways: 4}
	return machine.New(cfg)
}

func TestSamplingAtPeriod(t *testing.T) {
	m := testMachine()
	mon := New(m, Config{PeriodSec: 0.010, SelfNoiseLines: 0})
	mon.OnQuantum(0.005) // before the first boundary
	if len(mon.Samples()) != 0 {
		t.Fatalf("early sample taken: %d", len(mon.Samples()))
	}
	mon.OnQuantum(0.045) // crosses 10,20,30,40 ms
	if got := len(mon.Samples()); got != 4 {
		t.Errorf("samples = %d, want 4", got)
	}
}

func TestReportDeltas(t *testing.T) {
	m := testMachine()
	mon := New(m, Config{PeriodSec: 0.010, SelfNoiseLines: 0})
	// Warmup traffic, then measure only the second half.
	m.Node(1).Write(0, 100)
	mon.StartMeasurement(1.0)
	m.Node(1).Write(0, 50)
	m.Node(0).Write(0, 10)
	mon.StopMeasurement(2.0)
	rep := mon.Report()
	if rep.WriteLines[1] != 50 || rep.WriteLines[0] != 10 {
		t.Errorf("deltas = %v", rep.WriteLines)
	}
	if rep.Seconds != 1.0 {
		t.Errorf("seconds = %v, want 1", rep.Seconds)
	}
	// 50 lines * 64B / 1e6 / 1s = 0.0032 MB/s
	if got := rep.WriteRateMBs(1); got < 0.0031 || got > 0.0033 {
		t.Errorf("rate = %v MB/s", got)
	}
}

func TestMonitorSelfNoise(t *testing.T) {
	m := testMachine()
	mon := New(m, Config{PeriodSec: 0.010, SelfNoiseLines: 12, NoiseNode: 0})
	mon.OnQuantum(0.1) // 10 samples
	if got := m.Node(0).WriteLines(); got != 120 {
		t.Errorf("monitor noise = %d lines, want 120", got)
	}
	if m.Node(1).WriteLines() != 0 {
		t.Error("noise must stay on the monitor's socket")
	}
}

func TestRateSeries(t *testing.T) {
	m := testMachine()
	mon := New(m, Config{PeriodSec: 0.010, SelfNoiseLines: 0})
	mon.OnQuantum(0.010)
	m.Node(1).Write(0, 1000)
	mon.OnQuantum(0.020)
	series := mon.RateSeries(1)
	if len(series) != 1 {
		t.Fatalf("series length = %d", len(series))
	}
	want := 1000.0 * 64 / 1e6 / 0.010
	if series[0] < want*0.99 || series[0] > want*1.01 {
		t.Errorf("series rate = %v, want ~%v", series[0], want)
	}
}

func TestReportWithoutExplicitStart(t *testing.T) {
	m := testMachine()
	mon := New(m, DefaultConfig())
	m.Node(1).Write(0, 5)
	mon.OnQuantum(0.5)
	rep := mon.Report()
	if rep.WriteLines[1] != 5 {
		t.Errorf("implicit-start delta = %v", rep.WriteLines)
	}
}
