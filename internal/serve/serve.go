// Package serve implements the hybridserved HTTP service: a network
// front-end that lets many clients share one emulation Platform (and
// its durable result store). Identical concurrent requests coalesce
// into one platform compute through the Platform's single-flight
// cache; total in-flight platform work is bounded by an admission
// controller (internal/fabric/jobs) so a burst of clients cannot
// oversubscribe the host — work beyond the bounded wait queue is shed
// with 429 + Retry-After instead of queueing unboundedly.
//
// With a Fabric configured (cmd/hybridserved -peers) the server is one
// node of a sharded cluster: canonical spec keys are consistent-hashed
// across the fleet, non-owners forward runs to their owner (falling
// back to local execution when the peer is unreachable — degraded,
// never failed), and the owner's single-flight coalesces identical
// requests arriving from every node into one emulation.
//
// Endpoints:
//
//	POST /v1/run      one experiment; responds with a store.Record
//	POST /v1/sweep    a grid; streams one JSON line per completed run
//	POST /v1/autotune record a trace, search a knob grid over it offline
//	GET  /v1/results  durable-store listing with spec filters + paging
//	GET  /v1/policies the placement policies the engine offers
//	GET  /v1/trace    record a run and stream its placement trace (ndjson)
//	GET  /v1/spans    recent run-lifecycle spans (ndjson, oldest first; ?trace= filters)
//	GET  /v1/runs     flight recorder: live + recent run lifecycle records
//	GET  /v1/runs/{id}         one run's record incl. per-phase timings
//	GET  /v1/runs/{id}/events  live ndjson progress event stream
//	GET  /v1/status   this node's status document (health + counters + runs)
//	GET  /v1/fleet/status      fleet-wide status merged over every peer
//	GET  /healthz     liveness
//	GET  /v1/healthz  node identity, ring membership, queue depth
//	GET  /metrics     counters, gauges, latency histograms (Prometheus text)
//
// Observability (internal/obs) is wired here: every request's latency
// lands in a node-labelled histogram, every run opens a span tree
// (run → cache.lookup → fabric.forward / store.lookup → emulate →
// policy.quantum) joined across forwards by the W3C traceparent
// header, and structured logs carry node, spec key, and trace id. All
// of it is side-channel — instrumented runs produce bit-identical
// Results.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	hybridmem "repro"
	"repro/internal/fabric"
	"repro/internal/fabric/jobs"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace/library"
)

// Config parameterizes a Server.
type Config struct {
	// MaxInFlight bounds concurrent platform runs across all requests
	// (0 = one per host core). Requests past the bound wait in a
	// bounded queue and respect their context's cancellation.
	MaxInFlight int
	// MaxQueued bounds how many requests may wait for an in-flight
	// slot (0 = 8x MaxInFlight; negative = no waiting). Requests past
	// the queue are rejected with 429 + Retry-After.
	MaxQueued int
	// Node names this node in metric labels and /v1/healthz. Empty
	// defaults to the fabric's self name, or "local" without a fabric.
	Node string
	// Fabric, when non-nil, makes this server one node of a sharded
	// cluster: runs whose canonical key hashes to a peer are forwarded
	// there, and forwarded-in requests always execute locally.
	Fabric *fabric.Fabric
	// Registry collects the server's metrics. Nil builds a private one;
	// pass a shared registry to co-host several servers' series on one
	// /metrics page.
	Registry *obs.Registry
	// Tracer records run-lifecycle spans. Nil builds one named after
	// the node, optionally sinking to SpanSink.
	Tracer *obs.Tracer
	// SpanSink, when Tracer is nil, additionally streams every finished
	// span to this writer as ndjson (e.g. a file for offline analysis).
	// Ignored when Tracer is set.
	SpanSink io.Writer
	// Logger receives the server's structured logs. Nil falls back to
	// slog.Default() with a node attribute.
	Logger *slog.Logger
	// RecentRuns bounds the flight recorder's ring of finished runs
	// served by GET /v1/runs (0 = 256).
	RecentRuns int
	// TraceLibrary, when non-nil, is the node's compacted trace store:
	// GET /v1/trace serves resident traces from it without emulating
	// (and ingests freshly recorded ones into it), POST /v1/autotune
	// prices grids against resident traces instead of re-recording, and
	// /v1/run + /v1/sweep answer at replay speed from it under
	// ?answer=auto|estimate. hybridserved wires it up with
	// -trace-library.
	TraceLibrary *library.Library
	// ValidateEvery, with a TraceLibrary configured, runs the estimate
	// drift validator on this period: each tick re-runs one recently
	// estimated spec live, records the observed relative error in the
	// hybridserved_estimate_drift histogram, and refreshes the resident
	// trace when the error exceeds the estimate tolerance. 0 disables
	// the background loop (ValidateOnce stays available). Stop it with
	// Server.Close. hybridserved wires it up with -estimate-validate.
	ValidateEvery time.Duration
}

// Server routes the hybridserved API onto one shared Platform. It is
// an http.Handler; all endpoints are safe for concurrent use.
type Server struct {
	p        *hybridmem.Platform
	adm      *jobs.Admission
	fab      *fabric.Fabric // nil = single node
	node     string
	mux      *http.ServeMux
	tel      *obs.Telemetry
	log      *slog.Logger
	runs     *RunRegistry     // the node's flight recorder
	lib      *library.Library // nil = no trace library
	probe    *http.Client     // fleet-status fan-out probe
	runSec   *obs.Histogram   // /v1/run request latency
	sweepSec *obs.Histogram   // /v1/sweep request latency
	inflight atomic.Int64
	requests atomic.Uint64

	// Trace-library counters: requests answered from a resident trace
	// vs requests that fell through to a live emulation.
	libHits   atomic.Uint64
	libMisses atomic.Uint64

	// Estimate-tier counters: run/sweep answers served at replay speed
	// vs estimate attempts that fell through to a compute. The drift
	// validator (nil without a trace library) ground-truths served
	// estimates in the background.
	estimated atomic.Uint64
	estMisses atomic.Uint64
	validator *driftValidator

	// Fabric counters (also maintained single-node, where coalesced
	// still counts requests served without a fresh compute).
	forwarded atomic.Uint64 // runs served by a peer owner's response
	coalesced atomic.Uint64 // runs served by joining/reusing existing work
	degraded  atomic.Uint64 // forwards abandoned for local execution
}

// New builds a Server on the platform. The platform's durable store
// (if configured) is opened eagerly so a bad -store directory fails at
// startup, not on the first request. The platform the server actually
// runs on is derived with the node's telemetry attached — telemetry is
// outside result identity, so it still shares cache and store entries
// with the caller's platform.
func New(p *hybridmem.Platform, cfg Config) (*Server, error) {
	n := cfg.MaxInFlight
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	q := cfg.MaxQueued
	switch {
	case q == 0:
		q = 8 * n
	case q < 0:
		q = 0
	}
	node := cfg.Node
	if node == "" {
		if cfg.Fabric != nil {
			node = cfg.Fabric.Self()
		} else {
			node = "local"
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		var topts []obs.TracerOption
		if cfg.SpanSink != nil {
			topts = append(topts, obs.WithSpanSink(cfg.SpanSink))
		}
		tracer = obs.NewTracer(node, topts...)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default().With("node", node)
	}
	runs := NewRunRegistry(node, cfg.RecentRuns)
	tel := &obs.Telemetry{Node: node, Metrics: reg, Tracer: tracer, Logger: logger, Runs: runs}
	// Attach telemetry before the eager store open so the store tier is
	// instrumented from its first byte of replay.
	p = p.With(hybridmem.WithTelemetry(tel))
	if cfg.TraceLibrary != nil {
		// One estimator (and one decoded-trace cache) serves every
		// platform variant this server derives per request.
		p = p.With(hybridmem.WithTraceLibrary(cfg.TraceLibrary))
	}
	if _, err := p.Store(); err != nil {
		return nil, err
	}
	s := &Server{p: p, adm: jobs.NewAdmission(n, q), fab: cfg.Fabric, node: node, mux: http.NewServeMux(), tel: tel, log: logger,
		runs: runs, lib: cfg.TraceLibrary, probe: &http.Client{Timeout: statusProbeTimeout}}
	lbl := obs.Labels{"node": node}
	s.runSec = reg.Histogram("hybridserved_run_seconds",
		"Latency of /v1/run requests (including forwards).", lbl, nil)
	s.sweepSec = reg.Histogram("hybridserved_sweep_seconds",
		"Latency of whole /v1/sweep requests.", lbl, nil)
	s.adm.SetWaitObserver(reg.Histogram("hybridserved_admission_wait_seconds",
		"Time queued requests waited for an in-flight slot.", lbl, nil))
	if s.fab != nil {
		s.fab.Instrument(tel)
	}
	if cfg.TraceLibrary != nil {
		s.validator = newDriftValidator(s, reg, lbl)
		if cfg.ValidateEvery > 0 {
			s.validator.start(cfg.ValidateEvery)
		}
	}
	s.registerMetrics(reg, lbl)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/autotune", s.handleAutotune)
	s.mux.HandleFunc("GET /v1/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/spans", s.handleSpans)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunDetail)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/fleet/status", s.handleFleetStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/healthz", s.handleNodeHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// registerMetrics exports the server's own state — cache tiers, store
// size, admission load, fabric counters — as function-backed series
// read at scrape time, plus build identity and Go runtime health.
// Store gauges register only when a durable store is configured,
// matching the previous hand-written exposition.
func (s *Server) registerMetrics(reg *obs.Registry, lbl obs.Labels) {
	counter := func(name, help string, fn func() float64) { reg.CounterFunc(name, help, lbl, fn) }
	gauge := func(name, help string, fn func() float64) { reg.GaugeFunc(name, help, lbl, fn) }
	counter("hybridserved_cache_hits_total", "Runs served from the in-memory result cache.",
		func() float64 { return float64(s.p.CacheStats().Hits) })
	counter("hybridserved_cache_misses_total", "Runs that missed the in-memory result cache.",
		func() float64 { return float64(s.p.CacheStats().Misses) })
	gauge("hybridserved_cache_entries", "Entries held by the in-memory result cache.",
		func() float64 { return float64(s.p.CacheStats().Entries) })
	counter("hybridserved_store_hits_total", "Runs restored from the durable store.",
		func() float64 { return float64(s.p.CacheStats().DiskHits) })
	counter("hybridserved_store_misses_total", "Runs the platform had to compute.",
		func() float64 { return float64(s.p.CacheStats().DiskMisses) })
	counter("hybridserved_store_put_failures_total", "Write-through appends that failed.",
		func() float64 { return float64(s.p.CacheStats().StorePutFailures) })
	if st, err := s.p.Store(); err == nil && st != nil {
		gauge("hybridserved_store_records", "Live records in the durable store.",
			func() float64 { return float64(st.Stats().Records) })
		gauge("hybridserved_store_segments", "Segment files in the durable store.",
			func() float64 { return float64(st.Stats().Segments) })
		gauge("hybridserved_store_bytes", "Total size of the durable store's segments.",
			func() float64 { return float64(st.Stats().Bytes) })
	}
	gauge("hybridserved_inflight_runs", "Platform runs currently executing.",
		func() float64 { return float64(max(s.inflight.Load(), 0)) })
	gauge("hybridserved_queue_depth", "Requests waiting for an in-flight slot.",
		func() float64 { _, queued := s.adm.Depth(); return float64(queued) })
	counter("hybridserved_rejected_total", "Requests shed with 429 by admission control.",
		func() float64 { return float64(s.adm.Rejected()) })
	counter("hybridserved_requests_total", "HTTP requests received.",
		func() float64 { return float64(s.requests.Load()) })
	counter("fabric_forwarded_total", "Runs served by forwarding to their ring owner.",
		func() float64 { return float64(s.forwarded.Load()) })
	counter("fabric_coalesced_total", "Runs served by joining or reusing existing work.",
		func() float64 { return float64(s.coalesced.Load()) })
	counter("fabric_degraded_total", "Forwards abandoned for local execution.",
		func() float64 { return float64(s.degraded.Load()) })
	if s.lib != nil {
		counter("hybridserved_trace_library_hits_total",
			"Trace and autotune requests served from the compacted trace library.",
			func() float64 { return float64(s.libHits.Load()) })
		counter("hybridserved_trace_library_misses_total",
			"Trace and autotune requests that fell through to a live emulation.",
			func() float64 { return float64(s.libMisses.Load()) })
		gauge("hybridserved_trace_library_traces",
			"Traces resident in the compacted trace library.",
			func() float64 { return float64(s.lib.Len()) })
		counter("hybridserved_estimate_hits_total",
			"Run/sweep answers served by the estimate tier at replay speed.",
			func() float64 { return float64(s.estimated.Load()) })
		counter("hybridserved_estimate_misses_total",
			"Estimate attempts that fell through to a platform compute.",
			func() float64 { return float64(s.estMisses.Load()) })
		counter("hybridserved_estimate_loads_total",
			"Library traces read and decoded by the estimator (coalesced across concurrent estimates).",
			func() float64 { return float64(s.p.EstimateStats().Loads) })
	}
	reg.GaugeFunc("hybridserved_build_info",
		"Build identity of this node; the value is always 1.",
		obs.Labels{"node": s.node, "goversion": runtime.Version()},
		func() float64 { return 1 })
	obs.RegisterGoRuntime(reg, lbl)
}

// Node returns the server's node label.
func (s *Server) Node() string { return s.node }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// RunRequest selects one experiment by its public names, as parsed by
// the hybridmem.Parse* functions. Zero values take the platform
// defaults (collector PCM-Only, 1 instance, default dataset, the
// platform's mode).
type RunRequest struct {
	App       string `json:"app"`
	Collector string `json:"collector,omitempty"`
	Instances int    `json:"instances,omitempty"`
	Dataset   string `json:"dataset,omitempty"`
	Mode      string `json:"mode,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Native    bool   `json:"native,omitempty"`
	// Answer selects the answer mode (auto, estimate, or exact; empty =
	// auto). The ?answer= query parameter overrides it; the resolved
	// mode rides in the body on fabric forwards.
	Answer string `json:"answer,omitempty"`
}

// errBadRequest marks client mistakes beyond the hybridmem typed
// errors (e.g. a negative instance count).
var errBadRequest = errors.New("bad request")

// resolve parses a request into a spec and the platform variant to
// run it on.
func (s *Server) resolve(req RunRequest) (hybridmem.RunSpec, *hybridmem.Platform, error) {
	spec := hybridmem.RunSpec{AppName: req.App, Instances: req.Instances, Native: req.Native}
	if spec.Instances < 0 {
		// Reject rather than silently coercing: zero means "default to
		// one instance", a negative count is a client bug.
		return spec, nil, fmt.Errorf("%w: instances must be >= 0, got %d", errBadRequest, spec.Instances)
	}
	if req.Collector != "" {
		k, err := hybridmem.ParseCollector(req.Collector)
		if err != nil {
			return spec, nil, err
		}
		spec.Collector = k
	}
	if req.Dataset != "" {
		d, err := hybridmem.ParseDataset(req.Dataset)
		if err != nil {
			return spec, nil, err
		}
		spec.Dataset = d
	}
	p := s.p
	if req.Mode != "" {
		m, err := hybridmem.ParseMode(req.Mode)
		if err != nil {
			return spec, nil, err
		}
		p = p.With(hybridmem.WithMode(m))
	}
	if req.Policy != "" {
		pol, err := hybridmem.ParsePolicy(req.Policy)
		if err != nil {
			return spec, nil, err
		}
		p = p.With(hybridmem.WithPolicy(pol))
	}
	// Normalize so the Record echoed over HTTP equals the Record the
	// store persists, and validate against the platform's own factory
	// (which may know apps the global registry does not).
	spec = hybridmem.NormalizeSpec(spec)
	if err := p.Validate(spec); err != nil {
		return spec, nil, err
	}
	return spec, p, nil
}

// httpStatus maps an error to its response code: unparsable or unknown
// names are the client's fault, everything else the platform's.
func httpStatus(err error) int {
	for _, bad := range []error{
		hybridmem.ErrUnknownApp, hybridmem.ErrUnknownCollector,
		hybridmem.ErrUnknownDataset, hybridmem.ErrUnknownMode, hybridmem.ErrUnknownScale,
		hybridmem.ErrUnknownPolicy, errBadRequest,
	} {
		if errors.Is(err, bad) {
			return http.StatusBadRequest
		}
	}
	if errors.Is(err, errNoEstimate) {
		// answer=estimate on a spec the library cannot answer: the
		// resource (a resident trace within tolerance) does not exist.
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// fail writes a JSON error response.
func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// record packages a finished run as the wire/disk Record.
func record(p *hybridmem.Platform, spec hybridmem.RunSpec, res hybridmem.Result) (store.Record, error) {
	key := p.SpecKey(spec)
	sum, err := store.Sum(key, spec, res)
	if err != nil {
		return store.Record{}, err
	}
	return store.Record{V: store.RecordVersion, Key: key, Sum: sum, Spec: spec, Result: res}, nil
}

// runLocal executes one spec on this node. Already-available results
// (memory or store) are served immediately, and duplicates of an
// in-flight run join its single-flight entry; only work that may
// actually start a compute takes an admission slot, so neither a burst
// of cached reads nor N copies of one request queue out unrelated
// work. Every request served without running the engine — a cache or
// store read, or a join onto in-flight work — counts as coalesced, so
// N identical requests always report exactly N-1 coalesced however the
// race between them resolves.
//
// The flight-recorder handle h tracks the run's lifecycle; the
// returned outcome string is what the caller passes to h.Finish.
func (s *Server) runLocal(ctx context.Context, h *RunHandle, p *hybridmem.Platform, spec hybridmem.RunSpec) (store.Record, string, error) {
	parent := obs.SpanContextFrom(ctx)
	lookupStart := time.Now()
	if res, ok := p.Peek(spec); ok {
		s.tel.Tracer.Emit(parent, "cache.lookup", lookupStart, time.Since(lookupStart),
			map[string]string{"hit": "true"})
		s.coalesced.Add(1)
		rec, err := record(p, spec, res)
		return rec, OutcomeCoalesced, err
	}
	s.tel.Tracer.Emit(parent, "cache.lookup", lookupStart, time.Since(lookupStart),
		map[string]string{"hit": "false"})
	if p.Joinable(spec) {
		// The compute's slot is held by the request that started it.
		h.Transition(RunLocal, "joining in-flight run")
		res, computed, err := p.RunShared(ctx, spec)
		if err != nil {
			return store.Record{}, "", err
		}
		outcome := OutcomeComputed
		if !computed {
			s.coalesced.Add(1)
			outcome = OutcomeCoalesced
		}
		rec, err := record(p, spec, res)
		return rec, outcome, err
	}
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		return store.Record{}, "", err
	}
	h.Transition(RunAdmitted, "")
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		release()
	}()
	h.Transition(RunLocal, "")
	res, computed, err := p.RunShared(ctx, spec)
	if err != nil {
		return store.Record{}, "", err
	}
	outcome := OutcomeComputed
	if !computed {
		// Lost the Peek/Joinable race to an identical request: the
		// single-flight group served us its compute.
		s.coalesced.Add(1)
		outcome = OutcomeCoalesced
	}
	rec, err := record(p, spec, res)
	return rec, outcome, err
}

// dispatch routes one run to the node owning its canonical key. Without
// a fabric — or for requests a peer already forwarded here — it runs
// locally. A forward that cannot get a usable answer (unreachable peer
// past the retry budget, a non-200 response, a torn body) degrades to
// local execution: the fleet loses sharding efficiency for that key,
// never the run.
func (s *Server) dispatch(ctx context.Context, h *RunHandle, forwardedIn bool, p *hybridmem.Platform, spec hybridmem.RunSpec, wire RunRequest) (store.Record, string, error) {
	if s.fab == nil || forwardedIn {
		return s.runLocal(ctx, h, p, spec)
	}
	owner := s.fab.Owner(p.SpecKey(spec))
	if owner == s.fab.Self() {
		return s.runLocal(ctx, h, p, spec)
	}
	// A locally known result needs no network hop, wherever the key
	// lives on the ring.
	if res, ok := p.Peek(spec); ok {
		s.coalesced.Add(1)
		rec, err := record(p, spec, res)
		return rec, OutcomeCoalesced, err
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return store.Record{}, "", err
	}
	// Forwarded runs leave this node's active set: the owner's own
	// flight recorder carries the executing record, so fleet-wide
	// aggregation counts the run exactly once.
	h.Transition(RunForwarded, "owner "+owner)
	// The forward span's context rides the request to the owner as a
	// traceparent header, so the owner's spans join this trace.
	fctx, fsp := s.tel.Tracer.Start(ctx, "fabric.forward")
	fsp.SetAttr("owner", owner)
	resp, err := s.fab.Forward(fctx, owner, body)
	if err != nil {
		fsp.SetAttr("outcome", "transport-error")
		fsp.End()
		if ctx.Err() != nil {
			return store.Record{}, "", ctx.Err()
		}
		s.degraded.Add(1)
		h.Degraded()
		s.log.Warn("forward degraded to local run", "owner", owner, "key", p.SpecKey(spec), "err", err)
		return s.runLocal(ctx, h, p, spec)
	}
	fsp.SetAttr("status", strconv.Itoa(resp.Status))
	fsp.End()
	if resp.Status != http.StatusOK {
		// The owner answered but would not serve (overloaded, draining,
		// mid-upgrade): this node already validated the request, so run
		// it here under its own admission control instead.
		s.degraded.Add(1)
		h.Degraded()
		s.log.Warn("owner refused forward; running locally", "owner", owner, "status", resp.Status)
		return s.runLocal(ctx, h, p, spec)
	}
	var rec store.Record
	if err := json.Unmarshal(resp.Body, &rec); err != nil {
		s.degraded.Add(1)
		h.Degraded()
		s.log.Warn("torn forward response; running locally", "owner", owner, "err", err)
		return s.runLocal(ctx, h, p, spec)
	}
	s.forwarded.Add(1)
	return rec, OutcomeForwarded, nil
}

// failRun maps a run error onto the wire, translating admission
// rejection into 429 + Retry-After.
func (s *Server) failRun(w http.ResponseWriter, err error) {
	if errors.Is(err, jobs.ErrOverloaded) {
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusTooManyRequests, err)
		return
	}
	fail(w, httpStatus(err), err)
}

// handleRun serves POST /v1/run: one experiment, responded to as the
// same Record schema the store segments persist. Each request opens a
// "run" span — continuing the sender's trace when a traceparent header
// arrived — so a run forwarded across the fabric shows up as one
// distributed trace: entry-node dispatch, owner-node execution, and
// the engine's per-quantum work, all under a single trace id.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	spec, p, err := s.resolve(req)
	if err != nil {
		fail(w, httpStatus(err), err)
		return
	}
	mode, err := answerMode(r.URL.Query().Get("answer"), req.Answer)
	if err != nil {
		fail(w, httpStatus(err), err)
		return
	}
	// The resolved mode rides in the body on forwards, where query
	// parameters do not travel.
	req.Answer = mode
	ctx := r.Context()
	if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ctx = obs.ContextWithRemote(ctx, sc)
	}
	key := p.SpecKey(spec)
	forwardedIn := r.Header.Get(fabric.ForwardHeader) != ""
	ctx, sp := s.tel.Tracer.Start(ctx, "run")
	sp.SetAttr("app", spec.AppName)
	sp.SetAttr("key", key)
	if forwardedIn {
		sp.SetAttr("forwarded", "true")
	}
	// The flight recorder keys the run's record by the serve span's ID:
	// that is the ObsParent the emulator core reports progress under,
	// so emulating/quantum callbacks route straight to this record.
	h := s.runs.Begin("run", spec.AppName, key, sp.Context().TraceID, sp.Context().SpanID,
		r.Header.Get(fabric.ForwardHeader))
	rec, outcome, err := s.answer(ctx, h, mode, forwardedIn, p, spec, req)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	h.Finish(outcome, err)
	s.runSec.Observe(time.Since(start).Seconds())
	if err != nil {
		s.log.Warn("run failed", "app", spec.AppName, "key", key,
			"trace", sp.Context().TraceID, "err", err)
		s.failRun(w, err)
		return
	}
	s.log.Debug("run served", "app", spec.AppName, "key", key,
		"trace", sp.Context().TraceID, "source", answerSource(outcome),
		"seconds", time.Since(start).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Answer-Source", answerSource(outcome))
	json.NewEncoder(w).Encode(rec)
}

// SweepRequest enumerates a grid by its public names. Empty dimensions
// take the Sweep defaults (the full registry, all eight collectors,
// one instance, the default dataset).
type SweepRequest struct {
	Apps       []string `json:"apps,omitempty"`
	Collectors []string `json:"collectors,omitempty"`
	Instances  []int    `json:"instances,omitempty"`
	Datasets   []string `json:"datasets,omitempty"`
	Mode       string   `json:"mode,omitempty"`
	// Policies sweeps placement policies: the spec grid runs once per
	// named policy on a derived platform. Empty means the server
	// platform's own policy.
	Policies []string `json:"policies,omitempty"`
	Native   bool     `json:"native,omitempty"`
	// Answer selects the answer mode applied to every cell (auto,
	// estimate, or exact; empty = auto). The ?answer= query parameter
	// overrides it. Under estimate, cells the library cannot answer
	// become in-stream item errors, never computes.
	Answer string `json:"answer,omitempty"`
}

// SweepItem is one line of a /v1/sweep response stream. Index aligns
// the item with the request grid expanded in Sweep.Specs order
// (app-major, then collector, instances, dataset), repeated
// policy-major when the request sweeps policies; items arrive in
// completion order. Policy echoes the placement policy of the item's
// pass when the request named any.
type SweepItem struct {
	Index  int               `json:"index"`
	Key    string            `json:"key,omitempty"`
	Sum    string            `json:"sum,omitempty"`
	Policy string            `json:"policy,omitempty"`
	Spec   hybridmem.RunSpec `json:"spec"`
	Result *hybridmem.Result `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// handleSweep serves POST /v1/sweep: the grid streams back as JSON
// lines as runs complete, so a client watching a long sweep sees
// progress immediately and cached entries instantly.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	mode, err := answerMode(r.URL.Query().Get("answer"), req.Answer)
	if err != nil {
		fail(w, httpStatus(err), err)
		return
	}
	sweep := hybridmem.NewSweep(req.Apps...)
	if len(req.Collectors) > 0 {
		ks := make([]hybridmem.Collector, len(req.Collectors))
		for i, name := range req.Collectors {
			k, err := hybridmem.ParseCollector(name)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			ks[i] = k
		}
		sweep.Collectors(ks...)
	}
	if len(req.Instances) > 0 {
		for _, n := range req.Instances {
			if n < 0 {
				fail(w, http.StatusBadRequest,
					fmt.Errorf("%w: instances must be >= 0, got %d", errBadRequest, n))
				return
			}
		}
		sweep.Instances(req.Instances...)
	}
	if len(req.Datasets) > 0 {
		ds := make([]hybridmem.Dataset, len(req.Datasets))
		for i, name := range req.Datasets {
			d, err := hybridmem.ParseDataset(name)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			ds[i] = d
		}
		sweep.Datasets(ds...)
	}
	if req.Native {
		sweep.Native()
	}
	p := s.p
	if req.Mode != "" {
		m, err := hybridmem.ParseMode(req.Mode)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		p = p.With(hybridmem.WithMode(m))
	}
	// A policies dimension expands the grid policy-major: the spec
	// grid repeats once per policy on a derived platform, matching
	// the RunSweep alignment.
	type cell struct {
		p      *hybridmem.Platform
		spec   hybridmem.RunSpec
		policy string
	}
	platforms := []*hybridmem.Platform{p}
	policyNames := []string{""}
	if len(req.Policies) > 0 {
		platforms = platforms[:0]
		policyNames = policyNames[:0]
		for _, name := range req.Policies {
			pol, err := hybridmem.ParsePolicy(name)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			platforms = append(platforms, p.With(hybridmem.WithPolicy(pol)))
			policyNames = append(policyNames, pol.String())
		}
	}
	specs := sweep.Specs()
	cells := make([]cell, 0, len(platforms)*len(specs))
	for pi, pp := range platforms {
		for _, spec := range specs {
			// Normalize and validate the whole grid before the stream
			// starts: errors after the 200 header can only go in-stream.
			spec = hybridmem.NormalizeSpec(spec)
			if err := pp.Validate(spec); err != nil {
				fail(w, httpStatus(err), err)
				return
			}
			cells = append(cells, cell{p: pp, spec: spec, policy: policyNames[pi]})
		}
	}

	ctx := r.Context()
	if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ctx = obs.ContextWithRemote(ctx, sc)
	}
	ctx, sp := s.tel.Tracer.Start(ctx, "sweep")
	sp.SetAttr("cells", strconv.Itoa(len(cells)))
	// The sweep parent tracks grid completion; each cell gets its own
	// flight-recorder record (and its own "run" span, so the core's
	// progress callbacks route per cell, not per sweep).
	sh := s.runs.Begin("sweep", "", "", sp.Context().TraceID, sp.Context().SpanID, "")
	sh.SetCells(len(cells))
	sh.Transition(RunAdmitted, "")

	w.Header().Set("Content-Type", "application/x-ndjson")
	// The stream mixes provenances under auto; the header echoes the
	// mode, each item's Result carries its own Estimated tag.
	w.Header().Set("X-Answer-Source", mode)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var (
		writeMu sync.Mutex
		wg      sync.WaitGroup
	)
	emit := func(item SweepItem) {
		writeMu.Lock()
		defer writeMu.Unlock()
		json.NewEncoder(w).Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}
	queue := make(chan int, len(cells))
	for i := range cells {
		queue <- i
	}
	close(queue)
	workers, _ := s.adm.Capacity()
	if workers > len(cells) {
		workers = len(cells)
	}
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				c := cells[i]
				// Reconstruct the cell as a wire request so it can be
				// forwarded to its ring owner; every field round-trips
				// through the same Parse* functions the peer resolves
				// with, and both sides normalize, so the peer lands on
				// the identical spec and canonical key.
				wire := RunRequest{
					App:       c.spec.AppName,
					Collector: c.spec.Collector.String(),
					Instances: c.spec.Instances,
					Dataset:   c.spec.Dataset.String(),
					Mode:      req.Mode,
					Policy:    c.policy,
					Native:    c.spec.Native,
					Answer:    mode,
				}
				key := c.p.SpecKey(c.spec)
				cctx, csp := s.tel.Tracer.Start(ctx, "run")
				csp.SetAttr("app", c.spec.AppName)
				csp.SetAttr("key", key)
				csp.SetAttr("cell", strconv.Itoa(i))
				ch := s.runs.Begin("run", c.spec.AppName, key, csp.Context().TraceID, csp.Context().SpanID, "")
				rec, outcome, err := s.answer(cctx, ch, mode, false, c.p, c.spec, wire)
				if err != nil {
					csp.SetAttr("error", err.Error())
				}
				csp.End()
				ch.Finish(outcome, err)
				sh.CellDone()
				if err != nil {
					// Per-item failures stay in-stream: the rest of the
					// grid keeps going, the client sees which cell broke.
					emit(SweepItem{Index: i, Policy: c.policy, Spec: c.spec, Error: err.Error()})
					continue
				}
				emit(SweepItem{Index: i, Key: rec.Key, Sum: rec.Sum, Policy: c.policy, Spec: rec.Spec, Result: &rec.Result})
			}
		}()
	}
	wg.Wait()
	sp.End()
	sh.Finish("", nil)
	s.sweepSec.Observe(time.Since(start).Seconds())
	s.log.Debug("sweep served", "cells", len(cells),
		"trace", sp.Context().TraceID, "seconds", time.Since(start).Seconds())
}

// flushWriter streams every trace record to the client as it is
// written, so a dashboard tailing /v1/trace sees quanta live while the
// run is still executing.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// handleTrace serves GET /v1/trace: the compacted placement trace of
// the experiment selected by the query parameters (?app=, ?collector=,
// ?instances=, ?dataset=, ?mode=, ?policy=, ?native=). Feed the stream
// to cmd/policyreplay (or hybridmem.ReplayTrace) to prototype policies
// against it offline.
//
// With a trace library configured, the request is answered from the
// resident trace covering the spec's neighborhood when one exists —
// no emulation, no concurrency slot — and a live recording is ingested
// into the library on the way out otherwise, so the library warms up
// from traffic. ?source=library insists on a resident trace (404 on a
// miss); ?source=live forces a fresh recording; the default (auto)
// prefers the library. The X-Trace-Source response header names which
// path answered.
//
// A live traced run always computes (a cached Result has no quanta),
// so it costs one full platform run and takes a concurrency slot.
// Validation errors are rejected before the stream starts; a platform
// failure mid-run truncates the stream, which readers surface as a
// torn tail over the valid prefix. A client that disconnects mid-
// stream cancels the emulation between scheduling quanta — the run
// stops and its slot frees instead of emulating into a dead
// connection.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := RunRequest{
		App:       q.Get("app"),
		Collector: q.Get("collector"),
		Dataset:   q.Get("dataset"),
		Mode:      q.Get("mode"),
		Policy:    q.Get("policy"),
	}
	if v := q.Get("instances"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("bad instances %q: %w", v, err))
			return
		}
		req.Instances = n
	}
	if v := q.Get("native"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("bad native %q: %w", v, err))
			return
		}
		req.Native = b
	}
	source := q.Get("source")
	switch source {
	case "", "auto", "library", "live":
	default:
		fail(w, http.StatusBadRequest,
			fmt.Errorf("%w: bad source %q (want auto, library, or live)", errBadRequest, source))
		return
	}
	spec, p, err := s.resolve(req)
	if err != nil {
		fail(w, httpStatus(err), err)
		return
	}
	key := p.SpecKey(spec)

	if s.lib != nil && source != "live" {
		tr, lerr := s.lib.Get(key)
		switch {
		case lerr == nil:
			s.libHits.Add(1)
			_, sp := s.tel.Tracer.Start(r.Context(), "trace")
			sp.SetAttr("app", spec.AppName)
			sp.SetAttr("source", "library")
			defer sp.End()
			h := s.runs.Begin("trace", spec.AppName, key,
				sp.Context().TraceID, sp.Context().SpanID, "")
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Trace-Source", "library")
			w.Write(tr.Bytes())
			h.Finish(OutcomeLibrary, nil)
			return
		case !errors.Is(lerr, library.ErrNotFound):
			fail(w, http.StatusInternalServerError, lerr)
			return
		case source == "library":
			fail(w, http.StatusNotFound, lerr)
			return
		}
		s.libMisses.Add(1)
	}

	ctx, sp := s.tel.Tracer.Start(r.Context(), "trace")
	sp.SetAttr("app", spec.AppName)
	sp.SetAttr("source", "live")
	defer sp.End()
	h := s.runs.Begin("trace", spec.AppName, key,
		sp.Context().TraceID, sp.Context().SpanID, "")
	// Tracing always computes, so it always takes a slot — there is no
	// cached read or joinable flight to exempt.
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		h.Finish("", err)
		if errors.Is(err, jobs.ErrOverloaded) {
			s.failRun(w, err)
			return
		}
		fail(w, http.StatusServiceUnavailable, err)
		return
	}
	h.Transition(RunAdmitted, "")
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		release()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Trace-Source", "live")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	h.Transition(RunLocal, "")
	var sink io.Writer = flushWriter{w: w, f: flusher}
	var ingest *bytes.Buffer
	if s.lib != nil {
		// Tee the stream so a successful recording lands in the
		// library and the next request skips the emulator.
		ingest = &bytes.Buffer{}
		sink = io.MultiWriter(sink, ingest)
	}
	tp := p.With(hybridmem.WithTrace(sink))
	res, err := tp.Run(ctx, spec)
	if err != nil {
		// The 200 and (likely) part of the trace are already on the
		// wire; all that is left is to stop extending the stream. A
		// disconnected client lands here as context.Canceled — the
		// cancellation already stopped the emulation.
		s.log.Error("trace run stopped mid-stream", "app", spec.AppName, "err", err)
		h.Finish("", err)
		return
	}
	if ingest != nil {
		// Filed with the run's measured Result as its baseline, so the
		// neighborhood becomes estimable, not just replayable.
		s.ingestTrace(spec.AppName, key, spec, res, ingest.Bytes())
	}
	h.Finish(OutcomeComputed, nil)
}

// AutotuneGrid is the wire form of a knob grid: the cartesian product
// of the listed values per knob, empty dimensions held at their
// registry defaults, capped at hybridmem.MaxKnobGridPoints. When
// policy is omitted it is inferred from the dimensions: wear-level if
// only wearFactors is listed, write-threshold otherwise; grids that
// vary a knob their policy never reads are rejected with 400.
type AutotuneGrid struct {
	Policy          string    `json:"policy,omitempty"`
	HotWriteLines   []uint64  `json:"hotWriteLines,omitempty"`
	ColdWriteLines  []uint64  `json:"coldWriteLines,omitempty"`
	DRAMBudgetPages []uint64  `json:"dramBudgetPages,omitempty"`
	WearFactors     []float64 `json:"wearFactors,omitempty"`
}

// AutotuneRequest selects the run to record (the RunRequest fields;
// Run.Policy is the policy the trace is recorded under, defaulting to
// the grid's policy) and the knob grid to search over the recording.
// Source selects where the trace comes from when the node has a trace
// library: "auto" (default — a resident library trace if one covers
// the spec's neighborhood, else a live recording), "library" (resident
// trace or 404), or "live" (always re-record).
type AutotuneRequest struct {
	Run    RunRequest   `json:"run"`
	Grid   AutotuneGrid `json:"grid"`
	Source string       `json:"source,omitempty"`
}

// handleAutotune serves POST /v1/autotune: a traced run of the
// requested spec (a resident library trace when the node's trace
// library covers the spec's neighborhood, a live in-memory recording
// otherwise), then an offline knob-grid search over it — the response
// is the hybridmem.Autotune report: every evaluated point, the Pareto
// frontier on (stall cycles, PCM writes), and the recommended knob
// set. A library-served grid costs zero platform runs; a live one
// costs exactly one regardless of grid size — the grid itself is
// always priced by replay.
func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	grid := hybridmem.KnobGrid{
		HotWriteLines:   req.Grid.HotWriteLines,
		ColdWriteLines:  req.Grid.ColdWriteLines,
		DRAMBudgetPages: req.Grid.DRAMBudgetPages,
		WearFactors:     req.Grid.WearFactors,
	}
	switch {
	case req.Grid.Policy != "":
		pol, err := hybridmem.ParsePolicy(req.Grid.Policy)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		grid.Policy = pol
	case len(grid.WearFactors) > 0 && len(grid.HotWriteLines) == 0 &&
		len(grid.ColdWriteLines) == 0 && len(grid.DRAMBudgetPages) == 0:
		// Only the wear knob varies: the client means wear-level —
		// write-threshold would price every point identically.
		grid.Policy = hybridmem.WearLevel
	default:
		grid.Policy = hybridmem.WriteThreshold
	}
	if err := grid.Validate(); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if req.Run.Policy == "" {
		// Record under the grid's policy by default, so the recorded
		// views carry the decision history the grid is tuning.
		req.Run.Policy = grid.Policy.String()
	}
	spec, p, err := s.resolve(req.Run)
	if err != nil {
		fail(w, httpStatus(err), err)
		return
	}
	if spec.Native {
		// Native runs take no GC safepoints: the trace would hold zero
		// quanta and every grid point would price to nothing.
		fail(w, http.StatusBadRequest,
			fmt.Errorf("%w: native runs have no policy quanta to autotune", errBadRequest))
		return
	}
	switch req.Source {
	case "", "auto", "library", "live":
	default:
		fail(w, http.StatusBadRequest,
			fmt.Errorf("%w: bad source %q (want auto, library, or live)", errBadRequest, req.Source))
		return
	}

	if s.lib != nil && req.Source != "live" {
		key := p.SpecKey(spec)
		tr, lerr := s.lib.Get(key)
		switch {
		case lerr == nil:
			// Price the grid against the resident trace: no emulation,
			// no admission slot — replay is milliseconds of CPU.
			s.libHits.Add(1)
			ctx, sp := s.tel.Tracer.Start(r.Context(), "autotune")
			sp.SetAttr("app", spec.AppName)
			sp.SetAttr("source", "library")
			defer sp.End()
			h := s.runs.Begin("autotune", spec.AppName, key,
				sp.Context().TraceID, sp.Context().SpanID, "")
			rep, aerr := hybridmem.Autotune(ctx, bytes.NewReader(tr.Bytes()), grid)
			if aerr != nil {
				h.Finish("", aerr)
				fail(w, http.StatusInternalServerError, aerr)
				return
			}
			h.Finish(OutcomeLibrary, nil)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Trace-Source", "library")
			json.NewEncoder(w).Encode(rep)
			return
		case !errors.Is(lerr, library.ErrNotFound):
			fail(w, http.StatusInternalServerError, lerr)
			return
		case req.Source == "library":
			fail(w, http.StatusNotFound, lerr)
			return
		}
		s.libMisses.Add(1)
	}

	ctx, sp := s.tel.Tracer.Start(r.Context(), "autotune")
	sp.SetAttr("app", spec.AppName)
	defer sp.End()
	h := s.runs.Begin("autotune", spec.AppName, p.SpecKey(spec),
		sp.Context().TraceID, sp.Context().SpanID, "")
	// The traced recording always computes, so it always takes a slot.
	release, err := s.adm.Acquire(ctx)
	if err != nil {
		h.Finish("", err)
		if errors.Is(err, jobs.ErrOverloaded) {
			s.failRun(w, err)
			return
		}
		fail(w, http.StatusServiceUnavailable, err)
		return
	}
	h.Transition(RunAdmitted, "")
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		release()
	}()

	var trc bytes.Buffer
	h.Transition(RunLocal, "")
	res, err := p.With(hybridmem.WithTrace(&trc)).Run(ctx, spec)
	if err != nil {
		h.Finish("", err)
		fail(w, httpStatus(err), err)
		return
	}
	h.Finish(OutcomeComputed, nil)
	if s.lib != nil {
		s.ingestTrace(spec.AppName, p.SpecKey(spec), spec, res, trc.Bytes())
	}
	rep, err := hybridmem.Autotune(ctx, bytes.NewReader(trc.Bytes()), grid)
	if err != nil {
		// The recording is in memory and freshly written; corruption
		// here is a server bug, not client input.
		fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Trace-Source", "live")
	json.NewEncoder(w).Encode(rep)
}

// handlePolicies serves GET /v1/policies: the placement policies the
// engine offers, with the default flagged.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	type policyInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		Default     bool   `json:"default,omitempty"`
	}
	var out []policyInfo
	for _, k := range hybridmem.Policies() {
		out = append(out, policyInfo{
			Name:        k.String(),
			Description: k.Description(),
			Default:     k == s.p.PolicyKind(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Count    int          `json:"count"`
		Policies []policyInfo `json:"policies"`
	}{Count: len(out), Policies: out})
}

// handleResults serves GET /v1/results: the durable store's listing,
// filtered by spec fields (?app=, ?collector=, ?dataset=, ?instances=,
// ?native=) and paged with ?limit= and ?offset= over the filtered,
// key-ordered records. The response's total counts every match so a
// client can page through without a second query.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	st, err := s.p.Store()
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	if st == nil {
		fail(w, http.StatusNotImplemented, errors.New("no durable store configured (start hybridserved with -store)"))
		return
	}
	q := r.URL.Query()
	match := func(rec store.Record) bool { return true }
	filters := []func(store.Record) bool{}
	if app := q.Get("app"); app != "" {
		filters = append(filters, func(rec store.Record) bool { return rec.Spec.AppName == app })
	}
	if name := q.Get("collector"); name != "" {
		k, err := hybridmem.ParseCollector(name)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		filters = append(filters, func(rec store.Record) bool { return !rec.Spec.Native && rec.Spec.Collector == k })
	}
	if name := q.Get("dataset"); name != "" {
		d, err := hybridmem.ParseDataset(name)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		filters = append(filters, func(rec store.Record) bool { return rec.Spec.Dataset == d })
	}
	if v := q.Get("instances"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("bad instances %q: %w", v, err))
			return
		}
		filters = append(filters, func(rec store.Record) bool { return rec.Spec.Instances == n })
	}
	if v := q.Get("native"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("bad native %q: %w", v, err))
			return
		}
		filters = append(filters, func(rec store.Record) bool { return rec.Spec.Native == b })
	}
	limit, offset := -1, 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, fmt.Errorf("%w: limit must be a non-negative integer, got %q", errBadRequest, v))
			return
		}
		limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, fmt.Errorf("%w: offset must be a non-negative integer, got %q", errBadRequest, v))
			return
		}
		offset = n
	}
	if len(filters) > 0 {
		match = func(rec store.Record) bool {
			for _, f := range filters {
				if !f(rec) {
					return false
				}
			}
			return true
		}
	}
	recs := st.List(match)
	total := len(recs)
	if offset >= len(recs) {
		recs = nil
	} else {
		recs = recs[offset:]
	}
	if limit >= 0 && limit < len(recs) {
		recs = recs[:limit]
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Count   int            `json:"count"`
		Total   int            `json:"total"`
		Offset  int            `json:"offset"`
		Records []store.Record `json:"records"`
	}{Count: len(recs), Total: total, Offset: offset, Records: recs})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"inflight": s.inflight.Load(),
	})
}

// handleNodeHealthz serves GET /v1/healthz: the node's identity, its
// view of the ring membership, and its admission-controller load — the
// endpoint a cluster supervisor (or the CI smoke test) polls to decide
// a node is up and agreeing on topology.
func (s *Server) handleNodeHealthz(w http.ResponseWriter, r *http.Request) {
	inflight, queued := s.adm.Depth()
	maxInFlight, maxQueued := s.adm.Capacity()
	info := map[string]any{
		"status":      "ok",
		"node":        s.node,
		"inflight":    inflight,
		"queued":      queued,
		"maxInflight": maxInFlight,
		"maxQueued":   maxQueued,
	}
	if s.fab != nil {
		info["ring"] = s.fab.Members()
	} else {
		info["ring"] = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (0.0.4): the platform cache's two tiers, the server's own
// gauges, the fabric counters, latency histograms, build info, and Go
// runtime health. Every series carries a node label so a scraper
// aggregating a fleet can tell the nodes apart. See
// docs/observability.md for the full catalog.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.Metrics.WritePrometheus(w)
}

// handleSpans serves GET /v1/spans: the tracer's most recent finished
// spans as ndjson, oldest first, capped by ?limit=. ?trace=<id> keeps
// only one trace's spans — the deep link /v1/runs/{id} hands out, so a
// client can pull exactly one run's span tree without filtering client
// side (?limit= then caps the window *scanned*, not the matches). The
// ring holds a bounded window — scrape it after the runs of interest,
// or start the daemon with -spans FILE for a complete record.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest,
				fmt.Errorf("%w: limit must be a non-negative integer, got %q", errBadRequest, v))
			return
		}
		limit = n
	}
	trace := r.URL.Query().Get("trace")
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, rec := range s.tel.Tracer.Recent(limit) {
		if trace != "" && rec.Trace != trace {
			continue
		}
		enc.Encode(rec)
	}
}
