package memdev

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if DRAM.String() != "DRAM" || PCM.String() != "PCM" {
		t.Errorf("Kind strings wrong: %v %v", DRAM, PCM)
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string: %v", Kind(9))
	}
}

func TestCounters(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 1 << 20})
	d.Write(0, 3)
	d.Read(64, 2)
	if d.WriteLines() != 3 {
		t.Errorf("WriteLines = %d, want 3", d.WriteLines())
	}
	if d.ReadLines() != 2 {
		t.Errorf("ReadLines = %d, want 2", d.ReadLines())
	}
	if d.WriteBytes() != 3*LineSize {
		t.Errorf("WriteBytes = %d, want %d", d.WriteBytes(), 3*LineSize)
	}
	if d.ReadBytes() != 2*LineSize {
		t.Errorf("ReadBytes = %d, want %d", d.ReadBytes(), 2*LineSize)
	}
	d.ResetCounters()
	if d.WriteLines() != 0 || d.ReadLines() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
}

func TestWearTracking(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 64 * 4096, TrackWear: true})
	// 64 lines = one full 4KB page.
	d.Write(0, 64)
	// One line in the second page.
	d.Write(4096, 1)
	w := d.WearSummary()
	if !w.Tracked {
		t.Fatal("wear should be tracked")
	}
	if w.Pages != 2 {
		t.Errorf("worn pages = %d, want 2", w.Pages)
	}
	if w.MaxPage != 64 {
		t.Errorf("max page wear = %d, want 64", w.MaxPage)
	}
	if w.AllPages != 64 {
		t.Errorf("AllPages = %d, want 64", w.AllPages)
	}
}

func TestWearSurvivesReset(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 16 * 4096, TrackWear: true})
	d.Write(0, 1)
	d.ResetCounters()
	if got := d.WearSummary().Pages; got != 1 {
		t.Errorf("wear pages after reset = %d, want 1", got)
	}
}

func TestSnapshot(t *testing.T) {
	d := New(Config{Kind: DRAM, Bytes: 1 << 20})
	d.Write(0, 5)
	d.Read(0, 7)
	s := d.Snapshot()
	if s.WriteLines != 5 || s.ReadLines != 7 {
		t.Errorf("snapshot = %+v", s)
	}
	// Snapshot is a copy: further traffic must not alter it.
	d.Write(0, 1)
	if s.WriteLines != 5 {
		t.Error("snapshot mutated by later writes")
	}
}

// Property: write counters are additive over any sequence of writes.
func TestWriteAdditivityProperty(t *testing.T) {
	f := func(ns []uint8) bool {
		d := New(Config{Kind: PCM, Bytes: 1 << 20})
		var want uint64
		for _, n := range ns {
			d.Write(0, uint64(n))
			want += uint64(n)
		}
		return d.WriteLines() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowCountersTrackAndReset(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 1 << 30, TrackWindow: true, TrackWindowReads: true})
	d.Write(0, 3)      // 3 lines on page 0
	d.Write(4096, 1)   // 1 line on page 1
	d.Read(4096, 2)    // 2 line reads on page 1
	d.Write(8<<20, 64) // a whole page, far away (own chunk)
	if got := d.WindowWrites(0); got != 3 {
		t.Errorf("WindowWrites(page 0) = %d, want 3", got)
	}
	if got := d.WindowWrites(4096); got != 1 {
		t.Errorf("WindowWrites(page 1) = %d, want 1", got)
	}
	if got := d.WindowReads(4096); got != 2 {
		t.Errorf("WindowReads(page 1) = %d, want 2", got)
	}
	if got := d.WindowWrites(8 << 20); got != 64 {
		t.Errorf("WindowWrites(distant page) = %d, want 64", got)
	}
	if got := d.WindowWrites(16 << 20); got != 0 {
		t.Errorf("untouched page window = %d, want 0", got)
	}
	d.ResetWindow()
	for _, off := range []uint64{0, 4096, 8 << 20} {
		if d.WindowWrites(off) != 0 || d.WindowReads(off) != 0 {
			t.Errorf("window at %#x not reset", off)
		}
	}
	// The cumulative controller counters are unaffected by the reset.
	if d.WriteLines() != 68 || d.ReadLines() != 2 {
		t.Errorf("cumulative counters disturbed: %d writes, %d reads", d.WriteLines(), d.ReadLines())
	}
}

func TestWindowDisabledIsFree(t *testing.T) {
	d := New(Config{Kind: DRAM, Bytes: 1 << 30})
	d.Write(0, 5)
	d.Read(0, 5)
	if d.WindowWrites(0) != 0 || d.WindowReads(0) != 0 {
		t.Error("window counters active without TrackWindow")
	}
}

func TestPageWear(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 16 * 4096, TrackWear: true})
	d.Write(2*4096, 7)
	if got := d.PageWear(2*4096 + 100); got != 7 {
		t.Errorf("PageWear = %d, want 7", got)
	}
	if got := d.PageWear(0); got != 0 {
		t.Errorf("PageWear(untouched) = %d, want 0", got)
	}
	// Out of range stays safe and zero.
	if got := d.PageWear(1 << 40); got != 0 {
		t.Errorf("PageWear(out of range) = %d, want 0", got)
	}
}

func TestTakeWindowIsDestructivePerPage(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 1 << 30, TrackWindow: true})
	d.Write(0, 3)
	d.Write(4096, 5)
	w, r := d.TakeWindow(0)
	if w != 3 || r != 0 {
		t.Errorf("TakeWindow(page 0) = (%d, %d), want (3, 0)", w, r)
	}
	if d.WindowWrites(0) != 0 {
		t.Error("TakeWindow did not consume page 0")
	}
	// Other pages keep their counters: one consumer's read must not
	// clear another page's signal.
	if got := d.WindowWrites(4096); got != 5 {
		t.Errorf("page 1 window = %d, want 5 after taking page 0", got)
	}
	d.ClearWindowPage(4096)
	if d.WindowWrites(4096) != 0 {
		t.Error("ClearWindowPage left the counter")
	}
}
