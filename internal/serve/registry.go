package serve

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the server's flight recorder: a registry giving every
// admitted run (and sweep, and traced run) a run ID and a lifecycle
// record that moves through
//
//	queued → admitted → forwarded/local → emulating → done/failed
//
// with cumulative quantum-progress counters fed in through the
// emulator core's obs.RunObserver seam (which rides the policy
// engine's QuantumHook). Live runs are held in a map; finished runs
// retire into a bounded most-recent ring. Every transition and
// progress tick is also published as a RunEvent to any subscriber
// streaming GET /v1/runs/{id}/events.
//
// Like the rest of internal/obs, the registry is strictly
// side-channel: it observes the serving path, nothing reads it back,
// and instrumented runs stay byte-identical to uninstrumented ones.

// RunState is one step of a run's lifecycle.
type RunState string

const (
	// RunQueued: the request is validated and has a run ID; it has not
	// yet been granted an execution slot (it may be waiting in the
	// admission queue, or about to be routed).
	RunQueued RunState = "queued"
	// RunAdmitted: the admission controller granted the run an
	// in-flight slot on this node.
	RunAdmitted RunState = "admitted"
	// RunForwarded: the run's canonical key is owned by a peer and the
	// request is in flight to it.
	RunForwarded RunState = "forwarded"
	// RunLocal: the run is executing locally — computing, restoring
	// from the store, or joining an identical in-flight compute.
	RunLocal RunState = "local"
	// RunEmulating: the emulator core reported the run's instances
	// executing; quantum progress counters advance in this state.
	RunEmulating RunState = "emulating"
	// RunDone: finished successfully.
	RunDone RunState = "done"
	// RunFailed: finished with an error.
	RunFailed RunState = "failed"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool { return s == RunDone || s == RunFailed }

// executing reports whether a live run in this state is this node's
// own work — queued, admitted, or running here. Forwarded runs are
// excluded: they are the owner's work and appear in *its* registry, so
// fleet-wide aggregation counts every run exactly once.
func (s RunState) executing() bool {
	switch s {
	case RunQueued, RunAdmitted, RunLocal, RunEmulating:
		return true
	}
	return false
}

// Run outcomes. Degradation (a forward that fell back to local
// execution) is tracked separately on RunInfo.Degraded, since a
// degraded run still ends in one of these.
const (
	// OutcomeComputed: this node ran the engine (or restored the
	// result from its durable store).
	OutcomeComputed = "computed"
	// OutcomeCoalesced: served without fresh work — a cache read or a
	// join onto an identical in-flight run.
	OutcomeCoalesced = "coalesced"
	// OutcomeForwarded: served by the ring owner's response.
	OutcomeForwarded = "forwarded"
	// OutcomeLibrary: served from the compacted trace library without
	// touching the emulator (a /v1/trace read or an autotune grid
	// priced against a resident trace).
	OutcomeLibrary = "library"
	// OutcomeEstimated: answered by the estimate tier — a replay of a
	// library-resident trace under the requested policy, tagged
	// Result.Estimated, never entering the canonical result store.
	OutcomeEstimated = "estimated"
)

// RunPhase is one visited lifecycle state with its timing.
type RunPhase struct {
	State           RunState `json:"state"`
	EnteredUnixNano int64    `json:"enteredUnixNano"`
	// DurNs is the time spent in the phase; 0 while the run is still
	// in it.
	DurNs int64 `json:"durNs,omitempty"`
}

// RunInfo is the wire form of one run's lifecycle record, served by
// GET /v1/runs and embedded in /v1/fleet/status.
type RunInfo struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"` // "run", "sweep", "trace", "autotune"
	State RunState `json:"state"`
	// Outcome is set on terminal states: computed, coalesced, or
	// forwarded.
	Outcome string `json:"outcome,omitempty"`
	// Degraded marks a run whose forward fell back to local execution.
	Degraded bool   `json:"degraded,omitempty"`
	App      string `json:"app,omitempty"`
	// Key is the canonical spec key (empty for sweep parents).
	Key string `json:"key,omitempty"`
	// Trace is the run's trace ID — the deep link into its span tree
	// (GET /v1/spans?trace=...).
	Trace string `json:"trace,omitempty"`
	Node  string `json:"node"`
	// Origin names the peer that forwarded this request here, when it
	// arrived over the fabric.
	Origin string `json:"origin,omitempty"`
	Error  string `json:"error,omitempty"`

	StartUnixNano int64 `json:"startUnixNano"`
	EndUnixNano   int64 `json:"endUnixNano,omitempty"`

	// Cumulative policy-engine progress, monotonically non-decreasing.
	Quanta        uint64 `json:"quanta,omitempty"`
	Actions       uint64 `json:"actions,omitempty"`
	PagesMigrated uint64 `json:"pagesMigrated,omitempty"`

	// Sweep parents track their grid instead of quanta.
	Cells     int `json:"cells,omitempty"`
	CellsDone int `json:"cellsDone,omitempty"`

	// Events counts the lifecycle events recorded so far.
	Events int `json:"events"`
	// Phases lists visited states in order with per-phase timings.
	Phases []RunPhase `json:"phases,omitempty"`
}

// RunEvent is one line of a GET /v1/runs/{id}/events stream: a state
// transition or a progress tick, in Seq order.
type RunEvent struct {
	Run          string   `json:"run"`
	Seq          int      `json:"seq"`
	TimeUnixNano int64    `json:"timeUnixNano"`
	State        RunState `json:"state"`
	// Detail annotates the transition (the forward's owner, a
	// degradation note, the join/cache source).
	Detail string `json:"detail,omitempty"`
	// Progress counters, cumulative; present on emulating ticks and on
	// the terminal event.
	Quanta        uint64 `json:"quanta,omitempty"`
	Actions       uint64 `json:"actions,omitempty"`
	PagesMigrated uint64 `json:"pagesMigrated,omitempty"`
	CellsDone     int    `json:"cellsDone,omitempty"`
	Error         string `json:"error,omitempty"`
}

// maxEventsPerRun bounds the per-run event history kept for late
// subscribers; live subscribers see every event regardless. 4096
// covers ~4000 quanta — far past quick/std scale runs.
const maxEventsPerRun = 4096

// subBuffer is each subscriber's channel depth. A subscriber that
// stalls past it loses events (counted) rather than blocking the
// serving path.
const subBuffer = 256

type runEntry struct {
	info    RunInfo
	events  []RunEvent
	seq     int
	subs    map[int]chan RunEvent
	nextSub int
}

// RunRegistry is one node's flight recorder. All methods are safe for
// concurrent use; the observer callbacks (RunEmulating, RunQuantum)
// are non-blocking. A nil registry is inert.
type RunRegistry struct {
	node      string
	recentCap int

	mu      sync.Mutex
	live    map[string]*runEntry
	bySpan  map[string]*runEntry
	recent  []*runEntry // oldest first, bounded by recentCap
	started uint64
	done    uint64
	failed  uint64
	dropped uint64 // events lost to stalled subscribers
}

// NewRunRegistry builds a registry labelling runs with the node name.
// recentCap bounds the finished-run ring (0 = 256).
func NewRunRegistry(node string, recentCap int) *RunRegistry {
	if recentCap <= 0 {
		recentCap = 256
	}
	return &RunRegistry{
		node:      node,
		recentCap: recentCap,
		live:      make(map[string]*runEntry),
		bySpan:    make(map[string]*runEntry),
	}
}

// RunHandle mutates one live run's record. Handles are single-run,
// concurrency-safe, and nil-safe (a nil handle is inert), so serving
// code can thread one through a request unconditionally.
type RunHandle struct {
	reg *RunRegistry
	ent *runEntry
}

// Begin registers a new run in state queued and returns its handle.
// spanID, when non-empty, routes the emulator core's observer
// callbacks (keyed by the run's parent span) to this record; trace is
// the run's trace ID for span deep-links. origin names the fabric peer
// that forwarded the request here, if any.
func (r *RunRegistry) Begin(kind, app, key, trace, spanID, origin string) *RunHandle {
	if r == nil {
		return nil
	}
	now := time.Now()
	ent := &runEntry{
		info: RunInfo{
			ID:            newRunID(),
			Kind:          kind,
			State:         RunQueued,
			App:           app,
			Key:           key,
			Trace:         trace,
			Node:          r.node,
			Origin:        origin,
			StartUnixNano: now.UnixNano(),
			Phases:        []RunPhase{{State: RunQueued, EnteredUnixNano: now.UnixNano()}},
		},
		subs: make(map[int]chan RunEvent),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started++
	r.live[ent.info.ID] = ent
	if spanID != "" {
		r.bySpan[spanID] = ent
	}
	r.publishLocked(ent, RunEvent{State: RunQueued})
	return &RunHandle{reg: r, ent: ent}
}

// ID returns the run's ID ("" on a nil handle).
func (h *RunHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.ent.info.ID
}

// Transition moves the run to a new state, recording the phase timing
// and publishing an event. Transitions after Finish are dropped.
func (h *RunHandle) Transition(state RunState, detail string) {
	if h == nil {
		return
	}
	r := h.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.ent.info.State.Terminal() {
		return
	}
	r.enterPhaseLocked(h.ent, state)
	r.publishLocked(h.ent, RunEvent{State: state, Detail: detail})
}

// Degraded marks the run's forward as having fallen back to local
// execution.
func (h *RunHandle) Degraded() {
	if h == nil {
		return
	}
	h.reg.mu.Lock()
	defer h.reg.mu.Unlock()
	h.ent.info.Degraded = true
}

// SetCells records a sweep parent's grid size.
func (h *RunHandle) SetCells(n int) {
	if h == nil {
		return
	}
	h.reg.mu.Lock()
	defer h.reg.mu.Unlock()
	h.ent.info.Cells = n
}

// CellDone bumps a sweep parent's completed-cell counter and publishes
// a progress event.
func (h *RunHandle) CellDone() {
	if h == nil {
		return
	}
	r := h.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.ent.info.State.Terminal() {
		return
	}
	h.ent.info.CellsDone++
	r.publishLocked(h.ent, RunEvent{State: h.ent.info.State, CellsDone: h.ent.info.CellsDone})
}

// Finish moves the run to done (err nil) or failed, stamps the
// outcome, publishes the terminal event, closes all subscribers, and
// retires the record into the recent ring.
func (h *RunHandle) Finish(outcome string, err error) {
	if h == nil {
		return
	}
	r := h.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := h.ent
	if ent.info.State.Terminal() {
		return
	}
	state := RunDone
	if err != nil {
		state = RunFailed
		ent.info.Error = err.Error()
		r.failed++
	} else {
		r.done++
	}
	ent.info.Outcome = outcome
	r.enterPhaseLocked(ent, state)
	ent.info.EndUnixNano = time.Now().UnixNano()
	ev := RunEvent{
		State:         state,
		Detail:        outcome,
		Quanta:        ent.info.Quanta,
		Actions:       ent.info.Actions,
		PagesMigrated: ent.info.PagesMigrated,
		CellsDone:     ent.info.CellsDone,
		Error:         ent.info.Error,
	}
	r.publishLocked(ent, ev)
	for id, ch := range ent.subs {
		close(ch)
		delete(ent.subs, id)
	}
	delete(r.live, ent.info.ID)
	for span, e := range r.bySpan {
		if e == ent {
			delete(r.bySpan, span)
		}
	}
	r.recent = append(r.recent, ent)
	if len(r.recent) > r.recentCap {
		r.recent = r.recent[len(r.recent)-r.recentCap:]
	}
}

// RunEmulating implements obs.RunObserver: the emulator core reports a
// run's instances executing.
func (r *RunRegistry) RunEmulating(parent obs.SpanContext) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := r.bySpan[parent.SpanID]
	if ent == nil || ent.info.State.Terminal() {
		return
	}
	r.enterPhaseLocked(ent, RunEmulating)
	r.publishLocked(ent, RunEvent{State: RunEmulating})
}

// RunQuantum implements obs.RunObserver: cumulative per-quantum
// progress for a run.
func (r *RunRegistry) RunQuantum(parent obs.SpanContext, quanta, actions, pagesMigrated uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := r.bySpan[parent.SpanID]
	if ent == nil || ent.info.State.Terminal() {
		return
	}
	// Counters are cumulative from the core; never move them backward
	// (a late callback racing the terminal event must not regress the
	// record).
	if quanta > ent.info.Quanta {
		ent.info.Quanta = quanta
	}
	if actions > ent.info.Actions {
		ent.info.Actions = actions
	}
	if pagesMigrated > ent.info.PagesMigrated {
		ent.info.PagesMigrated = pagesMigrated
	}
	r.publishLocked(ent, RunEvent{
		State:         ent.info.State,
		Quanta:        ent.info.Quanta,
		Actions:       ent.info.Actions,
		PagesMigrated: ent.info.PagesMigrated,
	})
}

// enterPhaseLocked closes the current phase's duration and appends the
// new one.
func (r *RunRegistry) enterPhaseLocked(ent *runEntry, state RunState) {
	now := time.Now().UnixNano()
	if n := len(ent.info.Phases); n > 0 {
		ent.info.Phases[n-1].DurNs = now - ent.info.Phases[n-1].EnteredUnixNano
	}
	ent.info.State = state
	ent.info.Phases = append(ent.info.Phases, RunPhase{State: state, EnteredUnixNano: now})
}

// publishLocked stamps, stores, and fans out one event.
func (r *RunRegistry) publishLocked(ent *runEntry, ev RunEvent) {
	ent.seq++
	ev.Run = ent.info.ID
	ev.Seq = ent.seq
	ev.TimeUnixNano = time.Now().UnixNano()
	if len(ent.events) < maxEventsPerRun {
		ent.events = append(ent.events, ev)
	}
	ent.info.Events = ent.seq
	for _, ch := range ent.subs {
		select {
		case ch <- ev:
		default:
			r.dropped++
		}
	}
}

// Get returns a snapshot of one run's record and its retained events.
func (r *RunRegistry) Get(id string) (RunInfo, []RunEvent, bool) {
	if r == nil {
		return RunInfo{}, nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := r.lookupLocked(id)
	if ent == nil {
		return RunInfo{}, nil, false
	}
	return snapshotLocked(ent), append([]RunEvent(nil), ent.events...), true
}

// Watch returns the run's event history so far plus, for a live run, a
// channel of subsequent events (closed when the run finishes) and a
// cancel function. For a finished run the channel is nil. History and
// subscription are taken under one lock, so no event is lost between
// them.
func (r *RunRegistry) Watch(id string) (history []RunEvent, ch <-chan RunEvent, cancel func(), ok bool) {
	if r == nil {
		return nil, nil, nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ent := r.lookupLocked(id)
	if ent == nil {
		return nil, nil, nil, false
	}
	history = append([]RunEvent(nil), ent.events...)
	if ent.info.State.Terminal() {
		return history, nil, func() {}, true
	}
	c := make(chan RunEvent, subBuffer)
	sub := ent.nextSub
	ent.nextSub++
	ent.subs[sub] = c
	cancel = func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, live := ent.subs[sub]; live {
			delete(ent.subs, sub)
			close(c)
		}
	}
	return history, c, cancel, true
}

// lookupLocked finds a run in the live set or the recent ring.
func (r *RunRegistry) lookupLocked(id string) *runEntry {
	if ent := r.live[id]; ent != nil {
		return ent
	}
	for i := len(r.recent) - 1; i >= 0; i-- {
		if r.recent[i].info.ID == id {
			return r.recent[i]
		}
	}
	return nil
}

// snapshotLocked deep-copies an entry's info (Phases is the only
// shared slice).
func snapshotLocked(ent *runEntry) RunInfo {
	info := ent.info
	info.Phases = append([]RunPhase(nil), ent.info.Phases...)
	return info
}

// List returns every run matching the filter — the live set plus the
// recent ring — newest first (by start time, then ID for stability).
// A nil filter matches everything.
func (r *RunRegistry) List(match func(RunInfo) bool) []RunInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]RunInfo, 0, len(r.live)+len(r.recent))
	for _, ent := range r.live {
		out = append(out, snapshotLocked(ent))
	}
	for _, ent := range r.recent {
		out = append(out, snapshotLocked(ent))
	}
	r.mu.Unlock()
	if match != nil {
		kept := out[:0]
		for _, info := range out {
			if match(info) {
				kept = append(kept, info)
			}
		}
		out = kept
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixNano != out[j].StartUnixNano {
			return out[i].StartUnixNano > out[j].StartUnixNano
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RunSummary is the registry's aggregate view, embedded in the node
// status document.
type RunSummary struct {
	// Started/Done/Failed count runs over the node's lifetime.
	Started uint64 `json:"started"`
	Done    uint64 `json:"done"`
	Failed  uint64 `json:"failed"`
	// Live counts runs currently in the registry's live set.
	Live int `json:"live"`
	// ByState breaks the live set down per lifecycle state.
	ByState map[string]int `json:"byState,omitempty"`
	// Forwarding counts live runs waiting on a peer (state forwarded);
	// they are excluded from Active so a run forwarded across the
	// fleet is reported exactly once — by its executing node.
	Forwarding int `json:"forwarding"`
	// DroppedEvents counts events lost to stalled subscribers.
	DroppedEvents uint64 `json:"droppedEvents,omitempty"`
	// Active lists the live runs this node itself is executing
	// (queued, admitted, local, or emulating), newest first.
	Active []RunInfo `json:"active,omitempty"`
}

// Summary returns the registry's aggregate view.
func (r *RunRegistry) Summary() RunSummary {
	if r == nil {
		return RunSummary{}
	}
	r.mu.Lock()
	sum := RunSummary{
		Started: r.started,
		Done:    r.done,
		Failed:  r.failed,
		Live:    len(r.live),
		ByState: make(map[string]int),
	}
	if r.dropped > 0 {
		sum.DroppedEvents = r.dropped
	}
	for _, ent := range r.live {
		sum.ByState[string(ent.info.State)]++
		switch {
		case ent.info.State == RunForwarded:
			sum.Forwarding++
		case ent.info.State.executing():
			sum.Active = append(sum.Active, snapshotLocked(ent))
		}
	}
	r.mu.Unlock()
	sort.Slice(sum.Active, func(i, j int) bool {
		if sum.Active[i].StartUnixNano != sum.Active[j].StartUnixNano {
			return sum.Active[i].StartUnixNano > sum.Active[j].StartUnixNano
		}
		return sum.Active[i].ID < sum.Active[j].ID
	})
	return sum
}

// newRunID returns a 16-hex-digit random run ID — unique fleet-wide
// without coordination, like a span ID.
func newRunID() string {
	b := make([]byte, 8)
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = 0xcd
		}
	}
	return hex.EncodeToString(b)
}
