package heap

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/objmodel"
)

// ContiguousSpace is a space occupying a fixed virtual range with bump
// allocation: the nursery, the observer, the boot image, and the
// side-metadata regions. The range is mapped and NUMA-bound once, at
// construction — the nursery reservation at boot time from the paper's
// heap layout.
type ContiguousSpace struct {
	id     objmodel.SpaceID
	base   uint64
	limit  uint64
	cursor uint64
}

// NewContiguousSpace maps [base, limit) and binds it to node.
func NewContiguousSpace(id objmodel.SpaceID, base, limit uint64, node int, mem Memory) (*ContiguousSpace, error) {
	if base >= limit {
		return nil, fmt.Errorf("heap: space %v has empty range [%#x,%#x)", id, base, limit)
	}
	if err := mem.MMap(base, limit-base, kernel.NodeFirstTouch); err != nil {
		return nil, fmt.Errorf("heap: space %v: %w", id, err)
	}
	if err := mem.MBind(base, limit-base, node); err != nil {
		return nil, fmt.Errorf("heap: space %v: %w", id, err)
	}
	return &ContiguousSpace{id: id, base: base, limit: limit, cursor: base}, nil
}

// ID returns the space identifier.
func (s *ContiguousSpace) ID() objmodel.SpaceID { return s.id }

// Base returns the lowest address of the space.
func (s *ContiguousSpace) Base() uint64 { return s.base }

// Limit returns the end (exclusive) of the space.
func (s *ContiguousSpace) Limit() uint64 { return s.limit }

// Capacity returns the total bytes of the space.
func (s *ContiguousSpace) Capacity() uint64 { return s.limit - s.base }

// Used returns bytes allocated since the last reset.
func (s *ContiguousSpace) Used() uint64 { return s.cursor - s.base }

// Contains reports whether addr falls inside the space.
func (s *ContiguousSpace) Contains(addr uint64) bool {
	return addr >= s.base && addr < s.limit
}

// Alloc bump-allocates size bytes (8-byte aligned). ok is false when
// the space is full — the caller's GC trigger.
func (s *ContiguousSpace) Alloc(size uint64) (addr uint64, ok bool) {
	size = (size + 7) &^ 7
	if s.cursor+size > s.limit {
		return 0, false
	}
	addr = s.cursor
	s.cursor += size
	return addr, true
}

// Reset reclaims the whole space en masse (after a copying collection).
func (s *ContiguousSpace) Reset() { s.cursor = s.base }

// chunkMeta tracks granule occupancy inside one 4 MB chunk of a
// chunked space.
type chunkMeta struct {
	addr     uint64
	used     []bool
	free     int
	scanHint int
}

// ChunkedSpace is a mark-region space built from free-list chunks:
// the mature spaces use 256-byte Immix lines as their granule, the
// large-object spaces use 4 KB pages. Allocation first-fits into free
// granule runs of partially used chunks, acquiring a new chunk only
// when no run fits; a sweep rebuilds occupancy from the live objects
// and releases fully empty chunks back to the free list (which keeps
// them mapped for recycling — the paper's design).
type ChunkedSpace struct {
	id      objmodel.SpaceID
	fl      *FreeList
	granule uint64
	chunks  []*chunkMeta
	byAddr  map[uint64]*chunkMeta
	used    uint64 // bytes in used granules
}

// NewChunkedSpace returns a chunked space drawing from fl with the
// given granule (LineBytes or PageBytes).
func NewChunkedSpace(id objmodel.SpaceID, fl *FreeList, granule uint64) *ChunkedSpace {
	if ChunkBytes%granule != 0 {
		panic(fmt.Sprintf("heap: granule %d does not divide chunks", granule))
	}
	return &ChunkedSpace{id: id, fl: fl, granule: granule, byAddr: map[uint64]*chunkMeta{}}
}

// ID returns the space identifier.
func (s *ChunkedSpace) ID() objmodel.SpaceID { return s.id }

// Granule returns the allocation granularity.
func (s *ChunkedSpace) Granule() uint64 { return s.granule }

// Used returns the bytes held by used granules.
func (s *ChunkedSpace) Used() uint64 { return s.used }

// Chunks returns the number of chunks the space currently owns.
func (s *ChunkedSpace) Chunks() int { return len(s.chunks) }

// Contains reports whether addr is inside one of the space's chunks.
func (s *ChunkedSpace) Contains(addr uint64) bool {
	_, ok := s.byAddr[addr&^uint64(ChunkBytes-1)]
	return ok
}

// granulesFor returns the granule count covering size bytes.
func (s *ChunkedSpace) granulesFor(size uint64) int {
	return int((size + s.granule - 1) / s.granule)
}

// Alloc finds a free granule run for size bytes. Objects may not span
// chunks; sizes above ChunkBytes are a configuration error surfaced as
// an explicit failure.
func (s *ChunkedSpace) Alloc(size uint64) (uint64, error) {
	if size == 0 || size > ChunkBytes {
		return 0, fmt.Errorf("heap: %v allocation of %d bytes out of range", s.id, size)
	}
	need := s.granulesFor(size)
	for _, c := range s.chunks {
		if c.free < need {
			continue
		}
		if addr, ok := s.fitIn(c, need); ok {
			return addr, nil
		}
	}
	chunkAddr, err := s.fl.Acquire(s.id)
	if err != nil {
		return 0, err
	}
	c := &chunkMeta{
		addr: chunkAddr,
		used: make([]bool, ChunkBytes/s.granule),
		free: int(ChunkBytes / s.granule),
	}
	s.chunks = append(s.chunks, c)
	s.byAddr[chunkAddr] = c
	addr, ok := s.fitIn(c, need)
	if !ok {
		return 0, fmt.Errorf("heap: fresh chunk cannot fit %d granules", need)
	}
	return addr, nil
}

// fitIn first-fits a run of need granules inside chunk c, starting at
// its scan hint.
func (s *ChunkedSpace) fitIn(c *chunkMeta, need int) (uint64, bool) {
	n := len(c.used)
	for pass := 0; pass < 2; pass++ {
		start := c.scanHint
		end := n
		if pass == 1 {
			start, end = 0, c.scanHint
		}
		run := 0
		for i := start; i < end; i++ {
			if c.used[i] {
				run = 0
				continue
			}
			run++
			if run == need {
				first := i - need + 1
				for j := first; j <= i; j++ {
					c.used[j] = true
				}
				c.free -= need
				c.scanHint = i + 1
				s.used += uint64(need) * s.granule
				return c.addr + uint64(first)*s.granule, true
			}
		}
	}
	return 0, false
}

// ChunkAddrs returns the base addresses of the chunks the space owns,
// in acquisition order (used by the sweep's metadata scan).
func (s *ChunkedSpace) ChunkAddrs() []uint64 {
	addrs := make([]uint64, len(s.chunks))
	for i, c := range s.chunks {
		addrs[i] = c.addr
	}
	return addrs
}

// SweepPrepare clears all occupancy before re-marking live objects.
func (s *ChunkedSpace) SweepPrepare() {
	for _, c := range s.chunks {
		for i := range c.used {
			c.used[i] = false
		}
		c.free = len(c.used)
		c.scanHint = 0
	}
	s.used = 0
}

// SweepMark re-marks the granules covering one live object.
func (s *ChunkedSpace) SweepMark(addr, size uint64) {
	c := s.byAddr[addr&^uint64(ChunkBytes-1)]
	if c == nil {
		panic(fmt.Sprintf("heap: sweep of %#x outside space %v", addr, s.id))
	}
	first := int((addr - c.addr) / s.granule)
	last := int((addr + size - 1 - c.addr) / s.granule)
	for i := first; i <= last; i++ {
		if !c.used[i] {
			c.used[i] = true
			c.free--
			s.used += s.granule
		}
	}
}

// SweepFinish releases fully empty chunks back to the free list and
// reports how many were released.
func (s *ChunkedSpace) SweepFinish() int {
	released := 0
	kept := s.chunks[:0]
	for _, c := range s.chunks {
		if c.free == len(c.used) {
			s.fl.Release(c.addr)
			delete(s.byAddr, c.addr)
			released++
			continue
		}
		kept = append(kept, c)
	}
	s.chunks = kept
	return released
}
