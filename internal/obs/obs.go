// Package obs is the platform's telemetry subsystem: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms exposed
// in the Prometheus text format), run-lifecycle spans with W3C
// traceparent propagation (so one distributed trace covers a run as it
// crosses the fabric), and log/slog construction helpers shared by the
// daemonish commands.
//
// Telemetry is strictly side-channel: nothing in this package feeds
// back into the emulation model, so an instrumented run produces a
// Result bit-identical to an uninstrumented one. Every type is nil-safe
// on its hot-path methods — a nil *Registry hands out nil metrics, and
// Add/Set/Observe/SetAttr/End on nil receivers are no-ops — so
// uninstrumented callers pay a single nil check, never an allocation.
//
// The pieces compose through Telemetry, the bundle the serving layer
// builds once per node and threads down: internal/serve labels every
// series and span with the node, internal/fabric times forward RTTs
// and stamps the traceparent header onto forwarded requests,
// internal/store reports append/replay latencies, and internal/core
// emits the per-run span tree (emulate → plan/execute → one span per
// policy quantum).
package obs

import "log/slog"

// Telemetry bundles one node's observability surfaces. Fields may be
// nil individually: consumers must tolerate a nil Metrics or Tracer
// (both are nil-safe), and a nil *Telemetry means "uninstrumented".
type Telemetry struct {
	// Node labels every metric series and span this bundle's consumers
	// emit, so a scraper aggregating a fleet can tell the nodes apart.
	Node string
	// Metrics is the node's metric registry.
	Metrics *Registry
	// Tracer records run-lifecycle spans.
	Tracer *Tracer
	// Logger is the node's structured logger (nil = slog.Default()).
	Logger *slog.Logger
	// Runs, when non-nil, observes run-execution milestones — the
	// flight-recorder seam. The emulator core reports progress keyed by
	// the span context the caller handed it (core.Options.ObsParent),
	// so a serving layer that started one span per run can route each
	// callback to that run's lifecycle record. Like every obs surface
	// it is strictly side-channel: observers see progress, they cannot
	// perturb the run.
	Runs RunObserver
}

// RunObserver receives execution milestones for in-flight runs. parent
// is the span context the run was started under (the identity the
// caller controls); implementations must be safe for concurrent use
// and must not block — callbacks fire on the emulator's run goroutine.
type RunObserver interface {
	// RunEmulating fires once per compute, when the run's instances
	// start executing (after plan construction, before the first
	// quantum).
	RunEmulating(parent SpanContext)
	// RunQuantum fires after each executed policy-engine quantum with
	// the run's cumulative progress counters so far.
	RunQuantum(parent SpanContext, quanta, actions, pagesMigrated uint64)
}

// Emulating dispatches RunEmulating. Safe on a nil Telemetry or a nil
// Runs observer.
func (t *Telemetry) Emulating(parent SpanContext) {
	if t == nil || t.Runs == nil {
		return
	}
	t.Runs.RunEmulating(parent)
}

// Quantum dispatches RunQuantum. Safe on a nil Telemetry or a nil Runs
// observer.
func (t *Telemetry) Quantum(parent SpanContext, quanta, actions, pagesMigrated uint64) {
	if t == nil || t.Runs == nil {
		return
	}
	t.Runs.RunQuantum(parent, quanta, actions, pagesMigrated)
}

// Log returns the bundle's logger, falling back to slog.Default. Safe
// on a nil Telemetry.
func (t *Telemetry) Log() *slog.Logger {
	if t == nil || t.Logger == nil {
		return slog.Default()
	}
	return t.Logger
}
