package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"

	"repro/internal/policy"
)

// The fuzz surface of this package is the reader: library traces come
// off disk, /v1/trace ingests come off the network, and the estimate
// tier replays whatever the library holds. The contract under fuzzing
// is total: arbitrary bytes — including mutated goldens — may only
// produce ErrVersion, ErrCorrupt, or a valid prefix ending in io.EOF.
// Never a panic, never an unbounded hang, never a silently
// half-reconstructed view handed to a replay.

// fuzzGolden is the committed golden trace, the corpus seed closest to
// real input (mutations of it exercise the delta-chain and footer
// paths that synthetic seeds miss).
const fuzzGolden = "../../testdata/traces/pr_kgn_write-threshold_quick.ndjson"

// maxFuzzRecords bounds one fuzz execution; a reader that yields more
// records than the input has lines is looping, not reading.
const maxFuzzRecords = 1 << 20

func seedCorpus(f F) []byte {
	golden, err := os.ReadFile(fuzzGolden)
	if err != nil {
		f.Fatalf("reading golden trace: %v", err)
	}
	f.Add(golden)
	f.Add(golden[:len(golden)/2])      // torn mid-stream
	f.Add(golden[:len(golden)/7])      // torn mid-line
	f.Add([]byte(""))                  // empty
	f.Add([]byte("{}\n"))              // headerless junk
	f.Add([]byte("{\"version\":1}\n")) // version skew
	f.Add([]byte("{\"footer\":2}\n"))  // footer where the header belongs
	mutated := append([]byte(nil), golden...)
	mutated[len(mutated)/3] ^= 0x20 // flip a byte inside a record
	f.Add(mutated)
	return golden
}

// F is the subset of *testing.F the corpus seeder needs; it keeps
// seedCorpus callable from both fuzz targets.
type F interface {
	Add(...any)
	Fatalf(string, ...any)
}

// FuzzReader feeds arbitrary bytes to the streaming reader and asserts
// the error contract: Header and Next fail only as ErrVersion or
// ErrCorrupt, EOF is clean, errors latch, and the record count is
// bounded by the input.
func FuzzReader(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		if _, err := r.Header(); err != nil {
			requireTraceErr(t, "Header", err)
			// Errors latch: the reader must keep reporting the same
			// failure, not wander into the stream past it.
			if _, again := r.Header(); !errors.Is(again, ErrVersion) && !errors.Is(again, ErrCorrupt) {
				t.Fatalf("Header error did not latch: %v", again)
			}
			return
		}
		records := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				requireTraceErr(t, "Next", err)
				if _, again := r.Next(); !errors.Is(again, ErrVersion) && !errors.Is(again, ErrCorrupt) {
					t.Fatalf("Next error did not latch: %v", again)
				}
				break
			}
			if records++; records > maxFuzzRecords {
				t.Fatalf("reader yielded %d records from %d input bytes", records, len(data))
			}
		}

		// DecodeAll over the same bytes must agree with the streaming
		// read, and its corrupt-tail contract must hold: the returned
		// prefix ends on a keyframe-interval boundary, so no replay
		// consumes a stranded delta chain (the "silently wrong view"
		// failure mode).
		h, quanta, derr := DecodeAll(bytes.NewReader(data))
		if derr != nil {
			requireTraceErr(t, "DecodeAll", derr)
			if k := h.KeyframeInterval; k > 0 && len(quanta)%k != 0 {
				t.Fatalf("corrupt trace decoded to %d quanta, not a multiple of keyframe interval %d",
					len(quanta), k)
			}
		} else if len(quanta) != records {
			t.Fatalf("DecodeAll returned %d quanta, streaming reader %d", len(quanta), records)
		}

		// A clean or corrupt prefix must replay without panicking, and
		// replaying the recorded policy over a clean full trace must
		// reproduce the recorded stream (the differential invariant the
		// estimate tier's exactness rides on).
		if pol, perr := policy.NewPolicy(h.Policy); perr == nil {
			st, rerr := ReplayDecoded(h, quanta, pol, h.PolicyConfig())
			if rerr != nil {
				t.Fatalf("ReplayDecoded over decoded prefix: %v", rerr)
			}
			if derr == nil && len(quanta) > 0 && !st.MatchesRecorded {
				// Only assert on traces the reader called fully valid:
				// a mutated-but-parseable trace may legitimately
				// diverge, but then its Exec stream diverged too and
				// MatchesRecorded compares actions, not bytes — so a
				// mismatch here means reconstruction broke.
				t.Logf("replay diverged at quantum %d (mutated but parseable trace)", st.FirstMismatchQuantum)
			}
		}
	})
}

// requireTraceErr fails the fuzz run unless err is one of the two
// public trace errors.
func requireTraceErr(t *testing.T, op string, err error) {
	t.Helper()
	if !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s returned an error outside the contract: %v", op, err)
	}
}

// FuzzReplayDelta drives the delta codec end to end: fuzz bytes
// deterministically synthesize a multi-process view evolution, the
// Recorder compacts it (keyframes, group runs, deltas, tombstones,
// footer), and the Reader must reconstruct every quantum's full view
// bit-identically. This is the "never a silently wrong view" half of
// the contract FuzzReader cannot check, because only the generator
// knows what the views were.
func FuzzReplayDelta(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		quanta := synthesizeQuanta(data)
		if len(quanta) == 0 {
			t.Skip()
		}

		var buf bytes.Buffer
		hdr := Header{
			App:  "fuzz",
			Mode: "emulate",
			// A small interval forces keyframe/delta transitions even on
			// short generated streams; odd group bytes exercise the
			// run-length delta arithmetic off the engine's power-of-two
			// path.
			GroupBytes:       4096,
			KeyframeInterval: 3,
		}
		hdr.SetPolicyConfig(policy.Config{}.WithDefaults())
		rec, err := NewRecorder(&buf, hdr)
		if err != nil {
			t.Fatalf("NewRecorder: %v", err)
		}
		for _, q := range quanta {
			rec.OnQuantum(q.Proc, q.View, q.Actions, q.Exec)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("Recorder.Close: %v", err)
		}

		h, got, err := DecodeAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("DecodeAll of a freshly recorded trace: %v", err)
		}
		if h.KeyframeInterval != hdr.KeyframeInterval || h.GroupBytes != hdr.GroupBytes {
			t.Fatalf("header round trip: got interval %d groupBytes %d", h.KeyframeInterval, h.GroupBytes)
		}
		if len(got) != len(quanta) {
			t.Fatalf("recorded %d quanta, decoded %d", len(quanta), len(got))
		}
		for i, want := range quanta {
			g := got[i]
			if g.Proc != want.Proc || g.Q != want.View.Quantum {
				t.Fatalf("quantum %d: proc/q mismatch: got (%q,%d) want (%q,%d)",
					i, g.Proc, g.Q, want.Proc, want.View.Quantum)
			}
			if g.View.DRAMPages != want.View.DRAMPages || g.View.PCMPages != want.View.PCMPages {
				t.Fatalf("quantum %d: residency mismatch", i)
			}
			if !groupsEqual(g.View.Groups, want.View.Groups) {
				t.Fatalf("quantum %d (%s, keyframe=%v): reconstructed view diverges\n got %v\nwant %v",
					i, g.Proc, g.Keyframe, g.View.Groups, want.View.Groups)
			}
			if !actionsEqual(g.Actions, want.Actions) {
				t.Fatalf("quantum %d: actions diverge: got %v want %v", i, g.Actions, want.Actions)
			}
			if !execEqual(g.Exec, want.Exec) {
				t.Fatalf("quantum %d: exec diverges: got %v want %v", i, g.Exec, want.Exec)
			}
		}
	})
}

// synthesizeQuanta deterministically expands fuzz bytes into a
// plausible engine stream: up to three processes, each with a mutating
// address-sorted group list (adds, stat changes, removals), plus
// actions and executed outcomes. Every byte consumed steers one
// decision, so the fuzzer's mutations explore codec edge cases (empty
// views, total turnover, long identical runs, negative address deltas
// across records).
func synthesizeQuanta(data []byte) []Quantum {
	in := data
	next := func() byte {
		if len(in) == 0 {
			return 0
		}
		b := in[0]
		in = in[1:]
		return b
	}

	const groupBytes = 4096
	procs := []string{"p0", "p1", "p2"}
	views := map[string][]policy.GroupStat{}
	n := int(next())%48 + 1
	quanta := make([]Quantum, 0, n)
	for i := 0; i < n; i++ {
		proc := procs[int(next())%len(procs)]
		cur := append([]policy.GroupStat(nil), views[proc]...)

		// Mutate: each op byte either adds a group at a steered slot,
		// rewrites one group's stats, or removes one.
		ops := int(next()) % 8
		for o := 0; o < ops; o++ {
			switch sel := next(); {
			case sel%3 == 0 || len(cur) == 0: // add
				slot := uint64(next()) + uint64(next())<<8
				addr := slot * groupBytes
				stat := policy.GroupStat{
					Addr:       addr,
					Node:       int(next()) % 2,
					Pages:      int(next())%16 + 1,
					WriteLines: uint64(next()),
					ReadLines:  uint64(next()),
					MaxWear:    uint32(next()),
				}
				cur = upsertGroup(cur, stat)
			case sel%3 == 1: // mutate stats in place
				j := int(next()) % len(cur)
				cur[j].WriteLines += uint64(next())
				cur[j].Node = int(next()) % 2
			default: // remove
				j := int(next()) % len(cur)
				cur = append(cur[:j], cur[j+1:]...)
			}
		}
		views[proc] = cur

		var dram, pcm uint64
		for _, g := range cur {
			if g.Node == policy.PCMNode {
				pcm += uint64(g.Pages)
			} else {
				dram += uint64(g.Pages)
			}
		}
		q := Quantum{
			Proc: proc,
			View: policy.View{
				Groups:    append([]policy.GroupStat(nil), cur...),
				DRAMPages: dram,
				PCMPages:  pcm,
				Quantum:   uint64(i),
			},
		}
		q.Q = q.View.Quantum
		if len(cur) > 0 && next()%2 == 1 {
			g := cur[int(next())%len(cur)]
			q.Actions = []policy.Action{{Addr: g.Addr, From: g.Node, To: 1 - g.Node}}
			q.Exec = []policy.Exec{{Moved: g.Pages, Stall: float64(g.Pages) * 1000}}
		}
		quanta = append(quanta, q)
	}
	return quanta
}

// upsertGroup inserts or replaces stat keeping the list address-sorted
// and unique — the shape engine views always have.
func upsertGroup(groups []policy.GroupStat, stat policy.GroupStat) []policy.GroupStat {
	for i, g := range groups {
		if g.Addr == stat.Addr {
			groups[i] = stat
			return groups
		}
		if g.Addr > stat.Addr {
			groups = append(groups, policy.GroupStat{})
			copy(groups[i+1:], groups[i:])
			groups[i] = stat
			return groups
		}
	}
	return append(groups, stat)
}

// groupsEqual compares group lists treating nil and empty alike.
func groupsEqual(a, b []policy.GroupStat) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// execEqual compares exec lists treating nil and empty alike.
func execEqual(a, b []policy.Exec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
