// Package fabric is hybridserved's clustered tier: consistent-hash
// sharding of canonical spec keys across a static fleet of nodes, with
// request forwarding so any node can serve any key.
//
// Topology is deliberately simple — a static peer list every node is
// configured with at startup — because placement needs no coordination:
// the Ring is a pure function of (membership, key), so every node
// independently agrees on each key's owner. Any node accepts any
// request; non-owners forward to the owner over a Transport, and the
// owner's single-flight job layer (internal/fabric/jobs) coalesces
// identical work arriving from the whole fleet into one execution —
// the claim-then-stream protocol: the first request anywhere claims
// the key at its owner, and every later request for it, from any node,
// streams that one execution's result.
//
// Failure semantics are degrade-never-fail: a forward that cannot
// reach its peer is retried with exponential backoff and jitter, and
// when the peer stays unreachable the origin node executes the run
// locally. The fleet loses sharding efficiency for those keys, not
// correctness — results are deterministic in (configuration, spec,
// seed), so any node computes bit-identical bytes.
//
// The fabric assumes a homogeneous fleet: every node runs with the
// same platform configuration (scale, seed, policy defaults), so
// canonical keys — and therefore owners — agree everywhere. A
// heterogeneous fleet is safe but useless: keys disagree, every node
// owns its own traffic, and nothing is shared.
package fabric

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/internal/obs"
)

// ForwardHeader marks a forwarded request with the origin node's name.
// A node receiving a marked request always executes locally — it never
// re-forwards — so a stale or disagreeing ring cannot loop a request
// around the fleet.
const ForwardHeader = "X-Hybridfabric-Forwarded"

// Response is a peer's answer to a forwarded request: the peer was
// reachable and spoke HTTP, whatever the status. Transport failures
// (connection refused, timeouts, torn connections) are returned as
// errors instead and are the retryable case.
type Response struct {
	Status     int
	RetryAfter string // peer's Retry-After header, if any
	Body       []byte
}

// Transport carries forwarded requests to peers. Implementations must
// be safe for concurrent use.
type Transport interface {
	// ForwardRun posts one /v1/run request body to a peer and returns
	// its response. An error means the peer was unreachable (the
	// retryable case); any HTTP response, success or failure, returns
	// a Response.
	ForwardRun(ctx context.Context, node string, body []byte) (*Response, error)
}

// HTTPTransport forwards requests over real HTTP: node names are base
// URLs (http://host:port).
type HTTPTransport struct {
	// Origin is the forwarding node's own name, stamped into
	// ForwardHeader so the peer executes locally.
	Origin string
	// Client is the HTTP client to use (nil = a client with a 10-minute
	// timeout — a cold full-scale emulation is minutes of compute, and
	// a forwarded request must outlive it).
	Client *http.Client
}

// defaultClient bounds a forwarded request's total lifetime without
// cutting off long computes.
var defaultClient = &http.Client{Timeout: 10 * time.Minute}

// ForwardRun implements Transport.
func (t *HTTPTransport) ForwardRun(ctx context.Context, node string, body []byte) (*Response, error) {
	c := t.Client
	if c == nil {
		c = defaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: forward to %s: %w", node, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, t.Origin)
	// Propagate the caller's span so the peer's execution joins the
	// same distributed trace.
	if sc := obs.SpanContextFrom(ctx); sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: forward to %s: %w", node, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// The peer died mid-response; the body is torn, so treat it
		// like an unreachable peer rather than trusting a prefix.
		return nil, fmt.Errorf("fabric: forward to %s: reading response: %w", node, err)
	}
	return &Response{Status: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After"), Body: data}, nil
}

// RetryConfig bounds the forwarding path's persistence against an
// unreachable peer.
type RetryConfig struct {
	// Attempts is the total number of tries per forward (min 1).
	Attempts int
	// BaseDelay seeds the exponential backoff between attempts; the
	// k-th retry waits BaseDelay * 2^k, jittered uniformly in
	// [0.5, 1.5) of that, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
}

// DefaultRetry is the forwarding retry policy: three tries over
// roughly a third of a second. A peer that stays down past that is
// handled by local fallback, not by waiting.
var DefaultRetry = RetryConfig{Attempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 500 * time.Millisecond}

// withDefaults fills unset retry knobs.
func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.Attempts < 1 {
		rc.Attempts = DefaultRetry.Attempts
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = DefaultRetry.BaseDelay
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = DefaultRetry.MaxDelay
	}
	return rc
}

// backoff returns the jittered sleep before retry attempt k (0-based).
func (rc RetryConfig) backoff(k int) time.Duration {
	d := rc.BaseDelay << uint(k)
	if d > rc.MaxDelay || d <= 0 {
		d = rc.MaxDelay
	}
	// Uniform jitter in [0.5, 1.5): desynchronizes a fleet that lost
	// the same peer at the same moment, so retries do not arrive as a
	// thundering herd when it returns.
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// Config parameterizes a Fabric.
type Config struct {
	// Self is this node's own name; it is always a ring member.
	Self string
	// Peers is the full fleet membership (Self included or not; it is
	// added if absent). Every node must be configured with the same
	// list for placement to agree.
	Peers []string
	// Replicas is the ring's virtual-point count per node (0 =
	// DefaultReplicas).
	Replicas int
	// Transport carries forwarded requests (nil = HTTPTransport with
	// Self as origin).
	Transport Transport
	// Retry bounds forwarding persistence (zero fields take
	// DefaultRetry).
	Retry RetryConfig
}

// Fabric is one node's view of the cluster: the shared ring, its own
// identity, and the forwarding transport.
type Fabric struct {
	self  string
	ring  *Ring
	tr    Transport
	retry RetryConfig

	rtt     *obs.Histogram // per-attempt forward round-trip time
	sendErr *obs.Counter   // transport-level forward failures
}

// Instrument attaches telemetry: a round-trip-time histogram observed
// for every forward attempt that got an HTTP response, and a counter
// of transport-level failures (the retryable case). Call before
// serving traffic; nil telemetry is a no-op.
func (f *Fabric) Instrument(tel *obs.Telemetry) {
	if tel == nil {
		return
	}
	lbl := obs.Labels{"node": tel.Node}
	f.rtt = tel.Metrics.Histogram("fabric_forward_rtt_seconds",
		"Round-trip time of forwarded run requests, per attempt that reached the peer.", lbl, nil)
	f.sendErr = tel.Metrics.Counter("fabric_forward_errors_total",
		"Forward attempts that failed at the transport layer (peer unreachable).", lbl)
}

// New builds a node's Fabric from its static configuration.
func New(cfg Config) (*Fabric, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("fabric: Self must be set")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring := NewRing(members, cfg.Replicas)
	tr := cfg.Transport
	if tr == nil {
		tr = &HTTPTransport{Origin: cfg.Self}
	}
	return &Fabric{self: cfg.Self, ring: ring, tr: tr, retry: cfg.Retry.withDefaults()}, nil
}

// Self returns this node's name.
func (f *Fabric) Self() string { return f.self }

// Members returns the full ring membership, sorted.
func (f *Fabric) Members() []string { return f.ring.Nodes() }

// Owner returns the node owning a canonical spec key.
func (f *Fabric) Owner(key string) string { return f.ring.Owner(key) }

// Forward sends a /v1/run request body to a peer, retrying transport
// failures with exponential backoff and jitter up to the configured
// attempt budget. It returns the peer's Response (any status) on
// success, or the last transport error once the budget is exhausted —
// the caller's cue to degrade to local execution.
func (f *Fabric) Forward(ctx context.Context, node string, body []byte) (*Response, error) {
	rc := f.retry
	var lastErr error
	for attempt := 0; attempt < rc.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(rc.backoff(attempt - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		t0 := time.Now()
		resp, err := f.tr.ForwardRun(ctx, node, body)
		if err == nil {
			f.rtt.Observe(time.Since(t0).Seconds())
			return resp, nil
		}
		f.sendErr.Inc()
		lastErr = err
		if ctx.Err() != nil {
			// The caller is gone; retrying on its behalf is pointless.
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}
