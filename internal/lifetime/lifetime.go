// Package lifetime implements the paper's PCM lifetime model
// (Equation 1): the years before a PCM main memory wears out, given
// its size, per-cell endurance, and the observed write rate —
//
//	Y = S × E / (B × 2²⁵)
//
// with S the PCM size in bytes, E the endurance in writes per cell,
// B the write rate in bytes per second, and 2²⁵ ≈ the number of
// seconds in a year. The equation assumes perfect wear-leveling; the
// paper follows prior work in assuming hardware wear-leveling that
// achieves 50% of the theoretical maximum.
//
// The package also converts drive-writes-per-day (DWPD) limits into
// recommended write rates: the paper derives its 140 MB/s line from a
// 375 GB prototype rated at 30 DWPD.
package lifetime

// SecondsPerYearLog2 is the paper's 2^25 approximation of a year.
const SecondsPerYearLog2 = 1 << 25

// DefaultWearLevelingEfficiency is the fraction of theoretical
// endurance a realistic start-gap-style wear-leveler achieves.
const DefaultWearLevelingEfficiency = 0.5

// Endurance levels (writes per cell) of the paper's three prototypes.
const (
	Prototype1Endurance = 10e6
	Prototype2Endurance = 30e6
	Prototype3Endurance = 50e6
)

// DefaultPCMBytes is the paper's assumed PCM main-memory size (32 GB).
const DefaultPCMBytes = 32 << 30

// Years returns the expected lifetime in years of a PCM memory of
// sizeBytes with per-cell endurance written at rateBytesPerSec,
// assuming the given wear-leveling efficiency (1.0 = perfect).
func Years(sizeBytes uint64, endurance, rateBytesPerSec, wearEfficiency float64) float64 {
	if rateBytesPerSec <= 0 {
		return 0
	}
	perfect := float64(sizeBytes) * endurance / (rateBytesPerSec * SecondsPerYearLog2)
	return perfect * wearEfficiency
}

// YearsFromMBs is Years with the rate in MB/s, the unit the monitor
// reports.
func YearsFromMBs(sizeBytes uint64, endurance, rateMBs, wearEfficiency float64) float64 {
	return Years(sizeBytes, endurance, rateMBs*1e6, wearEfficiency)
}

// RecommendedRateMBs converts a vendor DWPD (drive writes per day)
// rating into the maximum sustained write rate in MB/s.
func RecommendedRateMBs(driveBytes uint64, dwpd float64) float64 {
	return float64(driveBytes) * dwpd / 86400 / 1e6
}

// PaperRecommendedRateMBs is the paper's 140 MB/s line: a 375 GB
// prototype at 30 DWPD.
func PaperRecommendedRateMBs() float64 {
	return RecommendedRateMBs(375<<30, 30)
}
