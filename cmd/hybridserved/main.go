// Command hybridserved serves the emulation platform over HTTP: many
// clients share one Platform, identical concurrent requests coalesce
// into one compute, and (with -store) every result is durable across
// restarts, so the service warm-starts with the whole grid it has ever
// computed.
//
// Usage:
//
//	hybridserved [-addr :8080] [-store DIR] [-scale quick|std|full]
//	             [-seed N] [-policy NAME] [-max-inflight N] [-drain 30s]
//
// Endpoints: POST /v1/run, POST /v1/sweep (streams ndjson),
// GET /v1/results, GET /v1/policies, GET /healthz, GET /metrics.
// SIGTERM (or Ctrl-C) drains in-flight requests before exiting.
// -policy sets the default placement policy; requests override it
// per run or sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hybridmem "repro"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "durable result store directory (empty = memory-only)")
	scale := flag.String("scale", "std", "input scale: quick, std, or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	policyName := flag.String("policy", "static", "default placement policy (requests may override)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent platform runs (0 = one per core)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hybridserved: %v\n", err)
		os.Exit(2)
	}

	sc, err := hybridmem.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	pol, err := hybridmem.ParsePolicy(*policyName)
	if err != nil {
		fail(err)
	}
	opts := []hybridmem.Option{hybridmem.WithScale(sc), hybridmem.WithSeed(*seed), hybridmem.WithPolicy(pol)}
	if *storeDir != "" {
		opts = append(opts, hybridmem.WithStore(*storeDir))
	}
	p := hybridmem.New(opts...)

	srv, err := serve.New(p, serve.Config{MaxInFlight: *maxInflight})
	if err != nil {
		fail(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("hybridserved: listening on %s (scale=%s, seed=%d, store=%q)\n",
			*addr, sc, *seed, *storeDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests finish, then make
	// sure everything computed so far is on stable storage.
	fmt.Println("hybridserved: draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hybridserved: shutdown: %v\n", err)
	}
	if st, err := p.Store(); err == nil && st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hybridserved: closing store: %v\n", err)
		}
	}
	fmt.Println("hybridserved: bye")
}
