// Package library is the server-side home for compacted traces: a
// directory of v2 traces keyed by spec neighborhood, with random
// access into any trace through its footer index.
//
// The ROADMAP's estimate-first serving tier wants one recorded trace
// per spec *neighborhood* — the canonical spec key with the policy
// segment stripped — because a trace records complete views (window
// writes, reads, wear: whatever any policy might consume), so one
// recording prices every policy and knob configuration over the same
// run through replay. A server holding a library answers `GET
// /v1/trace` from disk instead of re-emulating, and prices autotune
// grids against library traces in milliseconds.
//
// Random access is the other half: a trace's footer indexes its
// keyframe boundaries by byte offset, so Trace.At(n) seeks to the
// boundary at or before n and decodes forward — O(keyframe interval)
// records, never O(trace).
package library

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// ErrNotFound reports that no library trace covers the requested spec
// neighborhood.
var ErrNotFound = errors.New("trace library: no trace for spec neighborhood")

// traceSuffix names library files. The payload is an ordinary v2
// trace; the library adds nothing to the format.
const traceSuffix = ".trace.ndjson"

// baseSuffix names the optional sidecar next to a trace: an opaque
// JSON blob the ingester chose to file with it (the estimate tier
// stores the recorded run's exact Result there, so a resident trace
// can price policy variants as deltas against a measured baseline).
const baseSuffix = ".base.json"

// NeighborhoodKey maps a canonical spec key to its library
// neighborhood by dropping the policy segment. Policy is the one
// dimension replay already covers — a trace records complete views, so
// any policy/knob combination replays against it — which makes
// "same spec, different policy" one library entry, not many.
func NeighborhoodKey(specKey string) string {
	parts := strings.Split(specKey, ";")
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, "policy=") {
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ";")
}

// Library is a directory of compacted traces, one per spec
// neighborhood. All methods are safe for concurrent use.
type Library struct {
	mu  sync.Mutex
	dir string
	// byHood maps neighborhood key -> filename (within dir).
	byHood map[string]string
	// gen counts mutations (Put, Evict). Readers holding decoded
	// copies of library traces — the estimate tier's replay cache —
	// compare generations instead of re-reading files to notice that a
	// resident trace changed under them.
	gen atomic.Uint64
}

// Open opens (creating if needed) a library directory and indexes the
// traces already in it by reading each file's header line. A file that
// does not parse as a v2 trace header fails Open — a library with
// unreadable entries is a deployment error worth surfacing, not
// skipping.
func Open(dir string) (*Library, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace library: %w", err)
	}
	l := &Library{dir: dir, byHood: map[string]string{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace library: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), traceSuffix) {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("trace library: %w", err)
		}
		hdr, herr := trace.NewReader(f).Header()
		f.Close()
		if herr != nil {
			return nil, fmt.Errorf("trace library: %s: %w", e.Name(), herr)
		}
		if hdr.Key == "" {
			return nil, fmt.Errorf("trace library: %s: trace has no spec key", e.Name())
		}
		l.byHood[NeighborhoodKey(hdr.Key)] = e.Name()
	}
	return l, nil
}

// Dir returns the library's directory.
func (l *Library) Dir() string { return l.dir }

// Len returns the number of resident traces.
func (l *Library) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byHood)
}

// Neighborhoods returns the resident neighborhood keys, sorted.
func (l *Library) Neighborhoods() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.byHood))
	for k := range l.byHood {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Put ingests one complete v2 trace, replacing any previous trace for
// its neighborhood, and returns the neighborhood key. The trace is
// fully validated first — header with a spec key, every record
// decodable, a footer whose quantum count matches — because the
// library's contract is that resident traces serve reads without
// surprises; a torn or footerless stream belongs in a file, not here.
// The write is atomic (temp file + rename), so a crash mid-Put never
// leaves a half-written library entry.
func (l *Library) Put(data []byte) (string, error) { return l.put(data, nil) }

// PutWithBase is Put with a sidecar: base is an opaque JSON blob filed
// next to the trace and returned by Trace.Base on later Gets. The
// estimate tier stores the recorded run's exact Result here — the
// measured baseline its replay deltas price policy variants against. A
// plain Put (or a nil base) removes any previous sidecar, so a trace
// and its baseline can never drift apart silently.
func (l *Library) PutWithBase(data, base []byte) (string, error) { return l.put(data, base) }

func (l *Library) put(data, base []byte) (string, error) {
	hdr, quanta, err := trace.DecodeAll(bytes.NewReader(data))
	if err != nil {
		return "", fmt.Errorf("trace library: rejecting trace: %w", err)
	}
	if hdr.Key == "" {
		return "", errors.New("trace library: rejecting trace with no spec key (record through the platform, not below it)")
	}
	foot, ok := footerOf(data)
	if !ok {
		return "", errors.New("trace library: rejecting trace without a footer index (finish it with Recorder.Close)")
	}
	if foot.Quanta != len(quanta) {
		return "", fmt.Errorf("trace library: footer says %d quanta, trace holds %d", foot.Quanta, len(quanta))
	}
	hood := NeighborhoodKey(hdr.Key)
	name := fileName(hood)

	l.mu.Lock()
	defer l.mu.Unlock()
	if err := writeAtomic(l.dir, filepath.Join(l.dir, name), data); err != nil {
		return "", err
	}
	basePath := filepath.Join(l.dir, baseName(hood))
	if base != nil {
		if err := writeAtomic(l.dir, basePath, base); err != nil {
			return "", err
		}
	} else if err := os.Remove(basePath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return "", fmt.Errorf("trace library: removing stale base: %w", err)
	}
	l.byHood[hood] = name
	l.gen.Add(1)
	return hood, nil
}

// writeAtomic lands data at path via temp file + rename, so a crash
// mid-write never leaves a half-written library entry.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		return fmt.Errorf("trace library: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("trace library: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace library: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace library: %w", err)
	}
	return nil
}

// Evict removes the trace (and any base sidecar) covering the spec
// key's neighborhood — the drift validator's lever when a resident
// trace's estimates no longer match live runs. ErrNotFound when the
// library has no trace for it. Concurrent Gets that already loaded the
// bytes keep serving their in-memory copy; Gets that lose the race to
// the file removal report ErrNotFound, never a torn read.
func (l *Library) Evict(specKey string) error {
	hood := NeighborhoodKey(specKey)
	l.mu.Lock()
	defer l.mu.Unlock()
	name, ok := l.byHood[hood]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, hood)
	}
	delete(l.byHood, hood)
	l.gen.Add(1)
	if err := os.Remove(filepath.Join(l.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("trace library: evicting %s: %w", hood, err)
	}
	if err := os.Remove(filepath.Join(l.dir, baseName(hood))); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("trace library: evicting %s base: %w", hood, err)
	}
	return nil
}

// Gen returns the library's mutation generation: it changes whenever a
// Put or Evict lands. Callers caching decoded traces revalidate
// against it instead of re-reading files.
func (l *Library) Gen() uint64 { return l.gen.Load() }

// Get loads the trace covering a spec key's neighborhood (a full
// canonical key and a bare neighborhood key both work — the policy
// segment, if present, is ignored). ErrNotFound when the library has
// no trace for it.
func (l *Library) Get(specKey string) (*Trace, error) {
	hood := NeighborhoodKey(specKey)
	l.mu.Lock()
	name, ok := l.byHood[hood]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, hood)
	}
	data, err := os.ReadFile(filepath.Join(l.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		// Lost the race to a concurrent Evict between the index lookup
		// and the read: to the caller that is a miss, not an I/O error.
		return nil, fmt.Errorf("%w: %s (evicted)", ErrNotFound, hood)
	}
	if err != nil {
		return nil, fmt.Errorf("trace library: %w", err)
	}
	tr, err := Load(data)
	if err != nil {
		return nil, err
	}
	if base, berr := os.ReadFile(filepath.Join(l.dir, baseName(hood))); berr == nil {
		tr.base = base
	} else if !errors.Is(berr, fs.ErrNotExist) {
		return nil, fmt.Errorf("trace library: reading base: %w", berr)
	}
	return tr, nil
}

// Has reports whether a trace covers the spec key's neighborhood.
func (l *Library) Has(specKey string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.byHood[NeighborhoodKey(specKey)]
	return ok
}

// fileName derives the on-disk name for a neighborhood: a digest,
// because canonical keys hold characters filesystems argue about.
func fileName(hood string) string {
	sum := sha256.Sum256([]byte(hood))
	return hex.EncodeToString(sum[:12]) + traceSuffix
}

// baseName derives the sidecar name paired with fileName(hood).
func baseName(hood string) string {
	sum := sha256.Sum256([]byte(hood))
	return hex.EncodeToString(sum[:12]) + baseSuffix
}

// footerOf parses the footer from a complete in-memory trace: the last
// non-empty line, if it is a footer line.
func footerOf(data []byte) (trace.Footer, bool) {
	trimmed := bytes.TrimRight(data, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	last := trimmed[i+1:]
	var f trace.Footer
	if err := f.Parse(last); err != nil {
		return trace.Footer{}, false
	}
	return f, true
}

// Trace is one resident library trace, held in memory (the point of
// the v2 codec is that this is cheap), with random access through its
// footer index.
type Trace struct {
	data []byte
	base []byte // optional sidecar blob (nil when none was filed)
	hdr  trace.Header
	foot trace.Footer
}

// Load wraps a complete, footer-terminated v2 trace held in memory. It
// validates only the header and footer — use Library.Put for full
// validation at ingest time.
func Load(data []byte) (*Trace, error) {
	hdr, err := trace.NewReader(bytes.NewReader(data)).Header()
	if err != nil {
		return nil, err
	}
	foot, ok := footerOf(data)
	if !ok {
		return nil, errors.New("trace library: trace has no footer index")
	}
	return &Trace{data: data, hdr: hdr, foot: foot}, nil
}

// Header returns the trace header.
func (t *Trace) Header() trace.Header { return t.hdr }

// Footer returns the footer index.
func (t *Trace) Footer() trace.Footer { return t.foot }

// Bytes returns the raw trace, suitable for streaming to a client or
// feeding to any trace reader.
func (t *Trace) Bytes() []byte { return t.data }

// Base returns the sidecar blob filed by PutWithBase, nil when the
// trace was ingested without one.
func (t *Trace) Base() []byte { return t.base }

// Quanta returns the number of quantum records.
func (t *Trace) Quanta() int { return t.foot.Quanta }

// At returns quantum record n (0-based), seeking through the footer
// index: decoding starts at the keyframe boundary at or before n, so
// the work is O(keyframe interval) records wherever n lands. The
// second return is the number of records actually decoded — the
// read-counting tests pin the O(K) bound through it.
func (t *Trace) At(n int) (trace.Quantum, int, error) {
	if n < 0 || n >= t.foot.Quanta {
		return trace.Quantum{}, 0, fmt.Errorf("trace library: quantum %d out of range [0,%d)", n, t.foot.Quanta)
	}
	bs := t.foot.Boundaries
	if len(bs) == 0 {
		return trace.Quantum{}, 0, errors.New("trace library: footer has no boundaries")
	}
	// The last boundary with record index <= n.
	i := sort.Search(len(bs), func(i int) bool { return bs[i][0] > int64(n) }) - 1
	if i < 0 {
		return trace.Quantum{}, 0, fmt.Errorf("trace library: no boundary at or before quantum %d", n)
	}
	start, off := bs[i][0], bs[i][1]
	if off < 0 || off >= int64(len(t.data)) {
		return trace.Quantum{}, 0, fmt.Errorf("trace library: boundary offset %d outside trace", off)
	}
	r := trace.NewSegmentReader(t.hdr, bytes.NewReader(t.data[off:]))
	var q trace.Quantum
	reads := 0
	for rec := start; rec <= int64(n); rec++ {
		var err error
		q, err = r.Next()
		if err != nil {
			return trace.Quantum{}, reads, fmt.Errorf("trace library: seeking quantum %d: %w", n, err)
		}
		reads++
	}
	return q, reads, nil
}
