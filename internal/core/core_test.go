package core

import (
	"testing"

	"repro/internal/jvm"
	"repro/internal/workloads"
	"repro/internal/workloads/graphchi"
)

// tinyFactory returns scaled-down applications so core tests run in
// milliseconds: a small DaCapo-like profile and a small-graph PR.
func tinyFactory(name string) workloads.App {
	switch name {
	case "tiny":
		return workloads.NewProfileApp(workloads.Profile{
			AppName: "tiny", S: workloads.DaCapo,
			AllocMB: 4, MeanObj: 96, SurviveKB: 64, LongLivedMB: 2,
			LargeFrac: 0.02, LargeObjKB: 16,
			WritesPerKB: 5, MatureWriteFrac: 0.3, ReadsPerKB: 8,
			RefsPerObj: 2, PointerChurn: 0.02, ComputePerKB: 2000,
			NurseryMBv: 1, HeapMBv: 12,
			LargeScale: 2,
		})
	case "tinyPR":
		return graphchi.NewWithEdges(graphchi.PR, 150_000)
	default:
		return nil
	}
}

func tinyOpts(mode Mode) Options {
	o := DefaultOptions()
	o.Mode = mode
	o.AppFactory = tinyFactory
	o.BootMB = 2
	// The tiny test apps would vanish inside the real 20 MB L3 (no
	// writebacks at all); shrink it so leakage is observable.
	o.L3Bytes = 2 << 20
	return o
}

func TestRunBasicEmulation(t *testing.T) {
	res, err := Run(tinyOpts(Emulation), RunSpec{AppName: "tiny", Collector: jvm.KGN})
	if err != nil {
		t.Fatal(err)
	}
	if res.PCMWriteLines == 0 {
		t.Error("no PCM writes measured")
	}
	if res.Seconds <= 0 {
		t.Error("no measured time")
	}
	if len(res.RuntimeStats) != 1 || res.RuntimeStats[0].MinorGCs == 0 {
		t.Errorf("runtime stats missing: %+v", res.RuntimeStats)
	}
	if res.ZeroedPages == 0 {
		t.Error("emulation mode must include kernel page zeroing")
	}
	if res.AllocBytes[0] == 0 || res.PeakResidentBytes[0] == 0 {
		t.Error("allocation accounting missing")
	}
}

func TestSimulationModeIsNoiseFree(t *testing.T) {
	res, err := Run(tinyOpts(Simulation), RunSpec{AppName: "tiny", Collector: jvm.KGN})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroedPages != 0 {
		t.Error("simulation mode must not model OS page zeroing")
	}
	if res.PCMWriteLines == 0 {
		t.Error("simulation still measures PCM writes")
	}
}

func TestUnknownAppFails(t *testing.T) {
	if _, err := Run(tinyOpts(Emulation), RunSpec{AppName: "nope"}); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		res, err := Run(tinyOpts(Emulation), RunSpec{AppName: "tiny", Collector: jvm.KGW})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.PCMWriteLines != b.PCMWriteLines || a.DRAMWriteLines != b.DRAMWriteLines {
		t.Errorf("same seed, different counters: %v/%v vs %v/%v",
			a.PCMWriteLines, a.DRAMWriteLines, b.PCMWriteLines, b.DRAMWriteLines)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("same seed, different times: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestKGWReducesPCMWritesVsPCMOnly(t *testing.T) {
	pcmOnly, err := Run(tinyOpts(Emulation), RunSpec{AppName: "tiny", Collector: jvm.PCMOnly})
	if err != nil {
		t.Fatal(err)
	}
	kgw, err := Run(tinyOpts(Emulation), RunSpec{AppName: "tiny", Collector: jvm.KGW})
	if err != nil {
		t.Fatal(err)
	}
	if kgw.PCMWriteLines >= pcmOnly.PCMWriteLines {
		t.Errorf("KG-W PCM writes (%d) should be below PCM-Only (%d)",
			kgw.PCMWriteLines, pcmOnly.PCMWriteLines)
	}
}

func TestMultiprogrammedSuperlinearInterference(t *testing.T) {
	// Shrink the L3 so that one instance's working set fits but four
	// do not: PCM-Only writes must grow super-linearly per instance,
	// the paper's Finding 3.
	opts := tinyOpts(Emulation)
	opts.L3Bytes = 3 << 20
	one, err := Run(opts, RunSpec{AppName: "tiny", Collector: jvm.PCMOnly, Instances: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(opts, RunSpec{AppName: "tiny", Collector: jvm.PCMOnly, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	growth := float64(four.PCMWriteLines) / float64(one.PCMWriteLines)
	if growth <= 4.0 {
		t.Errorf("PCM write growth 1->4 instances = %.2fx, want super-linear (> 4x)", growth)
	}
	if len(four.PerInstanceSeconds) != 4 {
		t.Errorf("per-instance times missing: %v", four.PerInstanceSeconds)
	}
}

func TestNativeRun(t *testing.T) {
	opts := tinyOpts(Emulation)
	opts.L3Bytes = 256 << 10 // the C++ version writes less; expose it
	res, err := Run(opts, RunSpec{AppName: "tinyPR", Native: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NativeStats) != 1 || res.NativeStats[0].Mallocs == 0 {
		t.Errorf("native stats missing: %+v", res.NativeStats)
	}
	if res.PCMWriteLines == 0 {
		t.Error("native PCM-Only run must write PCM")
	}
}

func TestTableIIReferenceSetup(t *testing.T) {
	// The paper's reference: PCM-Only bindings with threads on S0 —
	// S0 writes are then purely system-level effects.
	opts := tinyOpts(Emulation)
	opts.ThreadSocket = 0
	res, err := Run(opts, RunSpec{AppName: "tiny", Collector: jvm.PCMOnly})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMWriteLines == 0 {
		t.Error("reference setup should observe system-level S0 writes")
	}
	if res.PCMWriteLines < res.DRAMWriteLines {
		t.Error("program memory traffic should dominate system noise")
	}
}

func TestL3SizeSensitivity(t *testing.T) {
	// The paper's KG-N analysis: a small L3 exposes nursery writes,
	// so KG-N saves much more under a 4 MB L3 than under 20 MB.
	reduction := func(l3 int) float64 {
		opts := tinyOpts(Emulation)
		opts.L3Bytes = l3
		base, err := Run(opts, RunSpec{AppName: "tiny", Collector: jvm.PCMOnly})
		if err != nil {
			t.Fatal(err)
		}
		kgn, err := Run(opts, RunSpec{AppName: "tiny", Collector: jvm.KGN})
		if err != nil {
			t.Fatal(err)
		}
		return 100 * (1 - float64(kgn.PCMWriteLines)/float64(base.PCMWriteLines))
	}
	small := reduction(512 << 10)
	big := reduction(4 << 20)
	if small <= big {
		t.Errorf("KG-N reduction with small L3 (%.1f%%) should exceed big L3 (%.1f%%)", small, big)
	}
}
