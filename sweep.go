package hybridmem

import (
	"context"
	"runtime"

	"repro/internal/fabric/jobs"
)

// Sweep declaratively enumerates an experiment grid — apps ×
// collectors × instance counts × datasets — in a deterministic order
// (the paper's evaluation is exactly such grids: Figs 4–8 and Tables
// II–III sweep the benchmarks across collectors and multiprogramming
// degrees). A zero dimension takes its default: all eight collectors,
// one instance, the default dataset.
type Sweep struct {
	apps       []string
	collectors []Collector
	instances  []int
	datasets   []Dataset
	policies   []Policy
	knobs      []PolicyConfig
	native     bool
}

// NewSweep starts a sweep over the named applications. With no names
// it covers the full 15-benchmark registry.
func NewSweep(apps ...string) *Sweep {
	return &Sweep{apps: apps}
}

// Collectors restricts the sweep to the given collector plans
// (default: all eight configurations in the paper's order).
func (s *Sweep) Collectors(cs ...Collector) *Sweep {
	s.collectors = cs
	return s
}

// Instances sets the multiprogramming degrees to sweep (default: 1).
func (s *Sweep) Instances(ns ...int) *Sweep {
	s.instances = ns
	return s
}

// Datasets sets the input datasets to sweep (default: Default).
func (s *Sweep) Datasets(ds ...Dataset) *Sweep {
	s.datasets = ds
	return s
}

// Native switches the sweep to the C++ implementations on the malloc
// runtime; the collector dimension collapses (native runs have no
// garbage collector).
func (s *Sweep) Native() *Sweep {
	s.native = true
	return s
}

// Policies adds a placement-policy dimension to the sweep. Unlike the
// other dimensions, policy is a platform knob rather than a RunSpec
// field: RunSweep runs the whole Specs() grid once per named policy on
// a derived platform (sharing both cache tiers), and the combined
// result slice is policy-major — Results[p*len(Specs())+i] is
// Specs()[i] under PolicySweep()[p]. An empty dimension (the default)
// runs the grid once under the platform's own configured policy.
func (s *Sweep) Policies(ps ...Policy) *Sweep {
	s.policies = ps
	return s
}

// PolicySweep returns the sweep's placement-policy dimension (nil
// when the platform's configured policy applies).
func (s *Sweep) PolicySweep() []Policy {
	return s.policies
}

// Knobs adds explicit policy knob configurations to the sweep's
// platform dimension — typically tuned points from an Autotune report
// (KnobPoint.Config), validated live against the same spec grid. Like
// Policies, each configuration runs the whole Specs() grid on a
// derived platform (WithPolicyConfig) sharing both cache tiers. Knob
// configurations follow any Policies entries in the combined
// configuration-major result layout; see Configs for the resolved
// order.
func (s *Sweep) Knobs(cfgs ...PolicyConfig) *Sweep {
	s.knobs = cfgs
	return s
}

// KnobSweep returns the sweep's knob-configuration dimension (nil when
// none was set).
func (s *Sweep) KnobSweep() []PolicyConfig {
	return s.knobs
}

// Configs resolves the sweep's platform dimension into policy
// configurations, in the order RunSweep executes its passes: the
// Policies entries (each with default knobs) followed by the Knobs
// entries, knobs resolved. nil means a single pass under the
// platform's own configured policy.
func (s *Sweep) Configs() []PolicyConfig {
	if len(s.policies) == 0 && len(s.knobs) == 0 {
		return nil
	}
	cfgs := make([]PolicyConfig, 0, len(s.policies)+len(s.knobs))
	for _, pol := range s.policies {
		cfgs = append(cfgs, PolicyConfig{Kind: pol}.WithDefaults())
	}
	for _, cfg := range s.knobs {
		cfgs = append(cfgs, cfg.WithDefaults())
	}
	return cfgs
}

// Specs expands the grid into RunSpecs, ordered app-major then
// collector, instances, dataset — a fixed order, so Specs()[i] lines
// up with the i-th Result of RunBatch (and of RunSweep without a
// Policies dimension; with one, results repeat policy-major — see
// RunSweep). Empty dimensions
// take their documented defaults (the 15-benchmark registry, all
// eight collectors, 1 instance, the Default dataset); repeated entries
// are preserved in order, so a dimension like Instances(1, 1, 2)
// yields aligned duplicate columns rather than collapsing.
func (s *Sweep) Specs() []RunSpec {
	apps := s.apps
	if len(apps) == 0 {
		apps = Apps()
	}
	collectors := s.collectors
	if s.native {
		collectors = []Collector{0}
	} else if len(collectors) == 0 {
		collectors = Collectors()
	}
	instances := s.instances
	if len(instances) == 0 {
		instances = []int{1}
	}
	datasets := s.datasets
	if len(datasets) == 0 {
		datasets = []Dataset{Default}
	}

	specs := make([]RunSpec, 0, len(apps)*len(collectors)*len(instances)*len(datasets))
	for _, app := range apps {
		for _, c := range collectors {
			for _, n := range instances {
				for _, d := range datasets {
					specs = append(specs, RunSpec{
						AppName:   app,
						Collector: c,
						Instances: n,
						Dataset:   d,
						Native:    s.native,
					})
				}
			}
		}
	}
	return specs
}

// RunSweep executes the sweep through the platform's worker pool and
// returns Results aligned with sweep.Specs(). With a Policies or Knobs
// dimension the grid runs once per policy configuration on a derived
// platform and the results concatenate configuration-major:
// Results[c*len(Specs())+i] is Specs()[i] under Configs()[c].
//
// The whole (configuration x spec) grid runs through one flat worker
// pool rather than a serial pass per configuration, so a narrow spec
// grid under many configurations still keeps every worker busy.
func (p *Platform) RunSweep(ctx context.Context, sweep *Sweep) ([]Result, error) {
	specs := sweep.Specs()
	cfgs := sweep.Configs()
	if len(cfgs) == 0 {
		return p.RunBatch(ctx, specs...)
	}
	platforms := make([]*Platform, len(cfgs))
	for c, cfg := range cfgs {
		platforms[c] = p.With(WithPolicyConfig(cfg))
	}
	results := make([]Result, len(cfgs)*len(specs))
	workers := p.cfg.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	err := jobs.Pool(ctx, workers, len(results), func(ctx context.Context, i int) error {
		res, err := platforms[i/len(specs)].Run(ctx, specs[i%len(specs)])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, err
}
