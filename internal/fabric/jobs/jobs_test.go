package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupSingleFlight(t *testing.T) {
	g := NewGroup[int]()
	const n = 32
	var computes atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				once.Do(func() { close(started) })
				<-gate
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	<-started
	// The flight is in progress: joiners must be visible, Peek must not.
	if !g.Joinable("k") {
		t.Error("in-flight entry not joinable")
	}
	if _, ok := g.Peek("k"); ok {
		t.Error("Peek returned an in-flight entry")
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
	for i, r := range results {
		if r != 42 {
			t.Errorf("results[%d] = %d, want 42", i, r)
		}
	}
	st := g.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, %d hits, 1 entry", st, n-1)
	}
	if res, ok := g.Peek("k"); !ok || res != 42 {
		t.Errorf("Peek after completion = (%d, %v), want (42, true)", res, ok)
	}
}

func TestGroupFailureNotMemoized(t *testing.T) {
	g := NewGroup[string]()
	boom := errors.New("boom")
	if _, _, err := g.Do(context.Background(), "k", func(context.Context) (string, error) {
		return "", boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if g.Joinable("k") {
		t.Error("failed entry still registered")
	}
	res, computed, err := g.Do(context.Background(), "k", func(context.Context) (string, error) {
		return "ok", nil
	})
	if err != nil || !computed || res != "ok" {
		t.Errorf("retry = (%q, %v, %v), want a fresh compute", res, computed, err)
	}
}

func TestGroupPanicReleasesWaiters(t *testing.T) {
	g := NewGroup[int]()
	started := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		<-started
		_, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("waiter must join, not compute")
			return 0, nil
		})
		waiterErr <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			// Give the waiter a moment to register on the entry.
			time.Sleep(10 * time.Millisecond)
			panic("kaboom")
		})
	}()

	select {
	case err := <-waiterErr:
		if err == nil {
			t.Error("waiter got nil error from a panicked compute")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after compute panicked")
	}
	if g.Joinable("k") {
		t.Error("panicked entry still registered")
	}
}

func TestGroupCancelledWaiter(t *testing.T) {
	g := NewGroup[int]()
	gate := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "k", func(context.Context) (int, error) {
		close(started)
		<-gate
		return 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.Do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
	}
	// A pre-cancelled context must not even register an entry.
	if _, _, err := g.Do(ctx, "fresh", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Do err = %v", err)
	}
	if g.Joinable("fresh") {
		t.Error("cancelled Do registered an entry")
	}
	close(gate)
}

// TestAdmissionLoad is the synthetic high-request-count back-pressure
// test: a storm of acquisitions against a tiny node must admit exactly
// capacity + queue and reject everything else immediately, then drain
// cleanly.
func TestAdmissionLoad(t *testing.T) {
	const (
		maxInFlight = 4
		maxQueued   = 8
		storm       = 2000
	)
	a := NewAdmission(maxInFlight, maxQueued)

	release := make(chan struct{})
	var (
		wg       sync.WaitGroup
		admitted atomic.Int64
		rejected atomic.Int64
	)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(context.Background())
			if err != nil {
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error: %v", err)
				}
				rejected.Add(1)
				return
			}
			admitted.Add(1)
			<-release
			rel()
		}()
	}

	// Wait until the storm has fully settled: every goroutine is either
	// holding a slot, parked in the queue, or rejected.
	deadline := time.After(10 * time.Second)
	for {
		inflight, queued := a.Depth()
		if int64(inflight+queued)+rejected.Load() == storm {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("storm never settled: inflight=%d queued=%d rejected=%d",
				inflight, queued, rejected.Load())
		case <-time.After(time.Millisecond):
		}
	}
	inflight, queued := a.Depth()
	if inflight != maxInFlight {
		t.Errorf("inflight = %d, want %d", inflight, maxInFlight)
	}
	if queued != maxQueued {
		t.Errorf("queued = %d, want %d", queued, maxQueued)
	}
	if got := rejected.Load(); got != storm-maxInFlight-maxQueued {
		t.Errorf("rejected = %d, want %d", got, storm-maxInFlight-maxQueued)
	}
	if got := a.Rejected(); got != uint64(storm-maxInFlight-maxQueued) {
		t.Errorf("Rejected() = %d, want %d", got, storm-maxInFlight-maxQueued)
	}

	// Drain: every admitted acquisition completes and releases.
	close(release)
	wg.Wait()
	if got := admitted.Load(); got != maxInFlight+maxQueued {
		t.Errorf("admitted = %d, want %d", got, maxInFlight+maxQueued)
	}
	inflight, queued = a.Depth()
	if inflight != 0 || queued != 0 {
		t.Errorf("after drain: inflight=%d queued=%d, want 0/0", inflight, queued)
	}
	// The node recovered: a fresh acquisition is admitted immediately.
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("post-storm acquire: %v", err)
	}
	rel()
}

func TestAdmissionQueuedCancel(t *testing.T) {
	a := NewAdmission(1, 4)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errCh <- err
	}()
	// Wait for the second acquire to park in the queue, then cancel it.
	for {
		if _, queued := a.Depth(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Errorf("queued cancel err = %v, want context.Canceled", err)
	}
	if _, queued := a.Depth(); queued != 0 {
		t.Error("cancelled waiter still counted as queued")
	}
	rel()
}

func TestAdmissionZeroQueueRejects(t *testing.T) {
	a := NewAdmission(1, 0)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want ErrOverloaded with a zero queue", err)
	}
	rel()
}

func TestPoolRunsEverythingInOrderlessly(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	err := Pool(context.Background(), 7, n, func(_ context.Context, i int) error {
		if done[i].Swap(true) {
			return fmt.Errorf("item %d ran twice", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Errorf("item %d never ran", i)
		}
	}
}

func TestPoolFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Pool(context.Background(), 1, 50, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want first failure", err)
	}
	// One worker runs serially: items after the failure are skipped.
	if got := ran.Load(); got != 4 {
		t.Errorf("ran %d items, want 4 (failure cancels the rest)", got)
	}
}

func TestPoolContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Pool(ctx, 4, 10, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a cancelled context", ran.Load())
	}
}
