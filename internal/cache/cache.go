// Package cache implements the set-associative, write-back,
// write-allocate caches of the emulation platform's processors.
//
// The write-back policy is what makes the platform interesting: a store
// only reaches a memory controller when a dirty line is evicted, so the
// number of PCM writes observed by the paper is the number of dirty
// evictions whose physical page lives on the remote socket. The paper's
// central observation — that a 20 MB L3 absorbs most writes to a 4 MB
// nursery, shrinking KG-N's benefit from 81% (4 MB L3) to 4–8% — falls
// out of this model, as does the super-linear growth of PCM writes when
// multiprogrammed instances interfere in the shared L3.
package cache

import "fmt"

// Victim describes a line displaced by an allocation.
type Victim struct {
	// LineAddr is the 64-byte-aligned address of the displaced line.
	LineAddr uint64
	// Dirty reports whether the line must be written back.
	Dirty bool
	// Valid reports whether a line was displaced at all.
	Valid bool
}

// Config describes one cache.
type Config struct {
	Name     string
	Bytes    int // total capacity
	Ways     int // associativity
	LineSize int // bytes per line; 64 everywhere in this platform
}

// Stats are cumulative access statistics for one cache.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// Cache is a single set-associative write-back cache level. Ways within
// a set are kept in MRU→LRU order; associativity is small (≤20 on this
// platform) so reordering is a short copy. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  uint64
	ways  int
	shift uint
	// lines holds lineAddr+1 per (set,way); 0 means invalid. Storing
	// the full line address rather than a tag lets evictions
	// reconstruct the victim address directly.
	lines []uint64
	dirty []bool
	stats Stats
}

// New returns a cache for the configuration. It panics on a geometry
// that cannot form whole sets, since that is a programming error in the
// platform description, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.Ways <= 0 || cfg.Bytes <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	linesTotal := cfg.Bytes / cfg.LineSize
	if linesTotal%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, linesTotal, cfg.Ways))
	}
	sets := linesTotal / cfg.Ways
	if sets == 0 {
		panic(fmt.Sprintf("cache %s: zero sets", cfg.Name))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:   cfg,
		sets:  uint64(sets),
		ways:  cfg.Ways,
		shift: shift,
		lines: make([]uint64, sets*cfg.Ways),
		dirty: make([]bool, sets*cfg.Ways),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the cumulative statistics.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr converts a byte address to its 64-byte line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.shift << c.shift }

// Access performs one read or write of the line containing addr.
// On a miss the line is allocated (write-allocate) and the displaced
// line, if any, is returned so the caller can cascade the writeback.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim) {
	line := addr >> c.shift
	set := line % c.sets
	base := int(set) * c.ways
	enc := line + 1
	c.stats.Accesses++

	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == enc {
			// Hit: refresh recency by moving to MRU position.
			d := c.dirty[base+w] || write
			copy(c.lines[base+1:base+w+1], c.lines[base:base+w])
			copy(c.dirty[base+1:base+w+1], c.dirty[base:base+w])
			c.lines[base] = enc
			c.dirty[base] = d
			c.stats.Hits++
			return true, Victim{}
		}
	}

	// Miss: evict LRU way, install at MRU.
	last := base + c.ways - 1
	if c.lines[last] != 0 {
		victim = Victim{
			LineAddr: (c.lines[last] - 1) << c.shift,
			Dirty:    c.dirty[last],
			Valid:    true,
		}
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvicts++
		}
	}
	copy(c.lines[base+1:base+c.ways], c.lines[base:last])
	copy(c.dirty[base+1:base+c.ways], c.dirty[base:last])
	c.lines[base] = enc
	c.dirty[base] = write
	return false, victim
}

// Contains reports whether the line holding addr is currently resident.
// It does not perturb recency and is intended for tests and assertions.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.shift
	set := line % c.sets
	base := int(set) * c.ways
	enc := line + 1
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == enc {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache and returns the dirty lines in an
// unspecified order so the caller can account for their writebacks.
func (c *Cache) Flush() []uint64 {
	var dirtyLines []uint64
	for i, enc := range c.lines {
		if enc != 0 && c.dirty[i] {
			dirtyLines = append(dirtyLines, (enc-1)<<c.shift)
		}
		c.lines[i] = 0
		c.dirty[i] = false
	}
	return dirtyLines
}

// ResetStats zeroes the statistics counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }
