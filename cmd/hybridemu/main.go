// Command hybridemu runs a single hybrid-memory experiment on the
// emulation platform and reports the measured iteration's PCM/DRAM
// traffic, write rates, and PCM lifetime projection.
//
// Usage:
//
//	hybridemu -app lusearch -gc KG-W [-instances 4] [-dataset large]
//	          [-mode emul|sim] [-native] [-l3mb 20] [-scale quick|std|full]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/jvm"
	"repro/internal/lifetime"
	"repro/internal/workloads"
)

func collectorByName(name string) (jvm.Kind, bool) {
	for k := jvm.PCMOnly; k < jvm.NumKinds; k++ {
		if strings.EqualFold(k.String(), name) {
			return k, true
		}
	}
	return 0, false
}

func main() {
	app := flag.String("app", "lusearch", "benchmark name (see -list)")
	gcName := flag.String("gc", "KG-W", "collector: PCM-Only, KG-N, KG-B, KG-N+LOO, KG-B+LOO, KG-W, KG-W-LOO, KG-W-MDO")
	instances := flag.Int("instances", 1, "multiprogramming degree (1, 2, 4)")
	dataset := flag.String("dataset", "default", "default or large")
	mode := flag.String("mode", "emul", "emul or sim")
	native := flag.Bool("native", false, "run the C++ implementation (GraphChi apps)")
	l3mb := flag.Int("l3mb", 0, "override the shared L3 size in MB")
	scale := flag.String("scale", "std", "input scale: quick, std, or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	scales := map[string]experiments.Scale{
		"quick": experiments.Quick, "std": experiments.Std, "full": experiments.Full,
	}
	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "hybridemu: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	factory := experiments.Config{Scale: sc}.Factory()

	if *list {
		for _, n := range []string{"avrora", "bloat", "eclipse", "fop", "luindex",
			"lusearch", "lu.Fix", "pmd", "pmd.S", "sunflow", "xalan", "pjbb", "PR", "CC", "ALS"} {
			fmt.Println(n)
		}
		return
	}

	kind, ok := collectorByName(*gcName)
	if !ok {
		fmt.Fprintf(os.Stderr, "hybridemu: unknown collector %q\n", *gcName)
		os.Exit(2)
	}
	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.AppFactory = factory
	if *mode == "sim" {
		opts.Mode = core.Simulation
	}
	if *l3mb > 0 {
		opts.L3Bytes = *l3mb << 20
	}
	ds := workloads.Default
	if *dataset == "large" {
		ds = workloads.Large
	}

	res, err := core.Run(opts, core.RunSpec{
		AppName:   *app,
		Collector: kind,
		Instances: *instances,
		Dataset:   ds,
		Native:    *native,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridemu: %v\n", err)
		os.Exit(1)
	}

	lang := "Java"
	if *native {
		lang = "C++"
	}
	fmt.Printf("%s %s x%d (%s, %s, %s scale)\n", lang, *app, *instances, kind, *mode, sc)
	fmt.Printf("  measured iteration:  %.4f s\n", res.Seconds)
	fmt.Printf("  PCM writes:          %d lines (%.2f MB)\n", res.PCMWriteLines, float64(res.PCMWriteBytes())/1e6)
	fmt.Printf("  DRAM writes:         %d lines (%.2f MB)\n", res.DRAMWriteLines, float64(res.DRAMWriteBytes())/1e6)
	fmt.Printf("  PCM write rate:      %.1f MB/s (recommended limit %.0f MB/s)\n",
		res.PCMRateMBs(), lifetime.PaperRecommendedRateMBs())
	fmt.Printf("  QPI traffic:         %d read / %d write lines\n", res.QPI.ReadLines, res.QPI.WriteLines)
	if len(res.RuntimeStats) > 0 {
		s := res.RuntimeStats[0]
		fmt.Printf("  GCs (instance 0):    %d minor / %d observer / %d full\n",
			s.MinorGCs, s.ObserverGCs, s.FullGCs)
		fmt.Printf("  allocation:          %.1f MB in %d objects\n",
			float64(s.AllocBytes)/1e6, s.AllocObjects)
	}
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"10M writes/cell", lifetime.Prototype1Endurance},
		{"30M writes/cell", lifetime.Prototype2Endurance},
		{"50M writes/cell", lifetime.Prototype3Endurance},
	} {
		years := lifetime.YearsFromMBs(lifetime.DefaultPCMBytes, e.v, res.PCMRateMBs(),
			lifetime.DefaultWearLevelingEfficiency)
		fmt.Printf("  lifetime @ %s: %.0f years\n", e.name, years)
	}
}
