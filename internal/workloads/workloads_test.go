package workloads

import (
	"testing"

	"repro/internal/jvm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/native"
)

func TestSuiteAndDatasetStrings(t *testing.T) {
	if DaCapo.String() != "DaCapo" || Pjbb.String() != "Pjbb" || GraphChi.String() != "GraphChi" {
		t.Error("suite names wrong")
	}
	if Default.String() != "default" || Large.String() != "large" {
		t.Error("dataset names wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := NewRNG(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(7).Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produce identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := rng.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := rng.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
		if s := rng.SizeAround(64, 256); s < 16 || s > 256 {
			t.Fatalf("SizeAround out of range: %d", s)
		}
	}
	if rng.Intn(0) != 0 {
		t.Error("Intn(0) should be 0")
	}
}

func newTestMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.NodeBytes = 2 << 30
	return machine.New(cfg)
}

func TestProfileAppOnManagedEnv(t *testing.T) {
	p := Profile{
		AppName: "toy", S: DaCapo,
		AllocMB: 2, MeanObj: 64, SurviveKB: 32, LongLivedMB: 1,
		LargeFrac: 0.02, LargeObjKB: 16,
		WritesPerKB: 4, MatureWriteFrac: 0.3, ReadsPerKB: 4, RefsPerObj: 2,
		PointerChurn: 0.02, ComputePerKB: 500,
		NurseryMBv: 4, HeapMBv: 16,
		LargeScale: 2,
	}
	app := NewProfileApp(p)
	if app.Name() != "toy" || app.Suite() != DaCapo || !app.HasLargeDataset() {
		t.Error("profile app metadata wrong")
	}

	m := newTestMachine()
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	var stats jvm.Stats
	proc := k.NewProcess("app", 0, func(pr *kernel.Process) {
		plan := jvm.NewPlan(jvm.KGN, jvm.PlanConfig{
			BaseNurseryBytes: 256 << 10,
			HeapBytes:        16 << 20,
			BootBytes:        1 << 20,
			ThreadSocket:     -1,
		})
		rt, err := jvm.NewRuntime(pr, plan)
		if err != nil {
			panic(err)
		}
		env := &ManagedEnv{R: rt}
		app.Run(env, Default, 1)
		stats = rt.Stats
	})
	if err := k.RunSolo(proc, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if stats.AllocBytes < 2<<20 {
		t.Errorf("managed run allocated %d bytes, want >= 2 MB", stats.AllocBytes)
	}
	if stats.MinorGCs == 0 {
		t.Error("a 2 MB run over a 256 KB nursery must trigger minor GCs")
	}
	if stats.MutatorWrites == 0 || stats.MutatorReads == 0 {
		t.Error("profile generated no mutator traffic")
	}
}

func TestProfileAppOnNativeEnv(t *testing.T) {
	p := Profile{
		AppName: "toy-cpp", S: DaCapo,
		AllocMB: 2, MeanObj: 64, SurviveKB: 32, LongLivedMB: 1,
		WritesPerKB: 4, MatureWriteFrac: 0.3, ReadsPerKB: 4, RefsPerObj: 2,
		ComputePerKB: 500, NurseryMBv: 4, HeapMBv: 16,
	}
	app := NewProfileApp(p)
	m := newTestMachine()
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	var nstats native.Stats
	var leaks int
	proc := k.NewProcess("cpp", 1, func(pr *kernel.Process) {
		rt, err := native.NewRuntime(pr, 512<<20, 1)
		if err != nil {
			panic(err)
		}
		env := &NativeEnv{R: rt}
		app.Run(env, Default, 1)
		nstats = rt.Stats
		leaks = rt.LiveBlocks()
	})
	if err := k.RunSolo(proc, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if nstats.AllocBytes < 2<<20 {
		t.Errorf("native run allocated %d bytes", nstats.AllocBytes)
	}
	// The transient window is freed at iteration end; only the
	// long-lived structure may remain live.
	if leaks > int(nstats.Mallocs) {
		t.Errorf("leak accounting broken: %d live of %d mallocs", leaks, nstats.Mallocs)
	}
	if nstats.Frees == 0 {
		t.Error("native profile must free its transient window")
	}
}

func TestManagedAllocatesMoreThanNative(t *testing.T) {
	// The managed runtime zero-initializes and copies; with identical
	// workloads the managed machine must write more memory than the
	// native one — the Fig 3 premise.
	run := func(managed bool) uint64 {
		p := Profile{
			AppName: "cmp", S: DaCapo,
			AllocMB: 4, MeanObj: 96, SurviveKB: 64, LongLivedMB: 1,
			WritesPerKB: 2, MatureWriteFrac: 0.2, ReadsPerKB: 2,
			RefsPerObj: 1, ComputePerKB: 100, NurseryMBv: 4, HeapMBv: 16,
		}
		app := NewProfileApp(p)
		m := newTestMachine()
		k := kernel.New(m, kernel.Config{EmulateOS: false})
		proc := k.NewProcess("x", 1, func(pr *kernel.Process) {
			if managed {
				plan := jvm.NewPlan(jvm.PCMOnly, jvm.PlanConfig{
					BaseNurseryBytes: 256 << 10,
					HeapBytes:        16 << 20,
					BootBytes:        1 << 20,
					ThreadSocket:     -1,
				})
				rt, err := jvm.NewRuntime(pr, plan)
				if err != nil {
					panic(err)
				}
				app.Run(&ManagedEnv{R: rt}, Default, 1)
			} else {
				rt, err := native.NewRuntime(pr, 512<<20, 1)
				if err != nil {
					panic(err)
				}
				app.Run(&NativeEnv{R: rt}, Default, 1)
			}
		})
		if err := k.RunSolo(proc, kernel.RunConfig{}); err != nil {
			t.Fatal(err)
		}
		m.DrainCaches()
		return m.Node(1).WriteLines()
	}
	java := run(true)
	cpp := run(false)
	if java <= cpp {
		t.Errorf("managed writes (%d) should exceed native writes (%d)", java, cpp)
	}
}
