// Package stats provides the small numeric and table-rendering helpers
// shared by the experiment drivers: arithmetic and geometric means,
// normalization of series, and fixed-width text tables that mirror the
// rows and columns the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped; if none remain the result is 0.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Normalize divides every element of xs by base. A zero base yields a
// slice of zeros rather than NaNs so that tables remain printable.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentReduction returns the percentage by which cur is below base:
// 100*(base-cur)/base. A zero base yields 0.
func PercentReduction(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - cur) / base
}

// Table accumulates rows of cells and renders a fixed-width text table.
// It is intentionally minimal: the experiment drivers print the same
// rows the paper's tables and figures report, nothing more.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where every value is formatted with fmt.Sprint
// for strings and "%.2f" for float64s.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
