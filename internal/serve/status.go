package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The fleet status plane: GET /v1/status is one node's self-contained
// status document, and GET /v1/fleet/status fans out over the fabric's
// peer list, fetches every peer's /v1/status, and merges them into one
// fleet-wide document. Aggregation follows the fabric's
// degrade-to-local philosophy: an unreachable peer shrinks the
// response (it moves to the `unreachable` list), it never fails it.

// statusProbeTimeout bounds each peer probe in the fleet fan-out, so
// one hung node delays the merged document, it does not wedge it.
const statusProbeTimeout = 2 * time.Second

// NodeStatus is one node's status document, served by GET /v1/status:
// identity and health, admission load, the routing counters, cache and
// store sizes, and the flight recorder's summary.
type NodeStatus struct {
	Status string `json:"status"`
	Node   string `json:"node"`

	// Admission-controller load.
	Inflight    int `json:"inflight"`
	Queued      int `json:"queued"`
	MaxInflight int `json:"maxInflight"`
	MaxQueued   int `json:"maxQueued"`

	// Lifetime request/routing counters (the /metrics counters an
	// operator reads first, snapshotted as plain numbers).
	Requests  uint64 `json:"requests"`
	Forwarded uint64 `json:"forwarded"`
	Coalesced uint64 `json:"coalesced"`
	Degraded  uint64 `json:"degraded"`
	Rejected  uint64 `json:"rejected"`

	// Estimate-tier counters (all zero without a trace library):
	// answers served at replay speed, estimate attempts that fell
	// through to a compute, and the drift validator's work.
	Estimated           uint64 `json:"estimated,omitempty"`
	EstimateMisses      uint64 `json:"estimateMisses,omitempty"`
	EstimateValidations uint64 `json:"estimateValidations,omitempty"`
	EstimateRefreshes   uint64 `json:"estimateRefreshes,omitempty"`

	// Result-cache and durable-store sizes.
	CacheEntries int   `json:"cacheEntries"`
	StoreRecords int   `json:"storeRecords,omitempty"`
	StoreBytes   int64 `json:"storeBytes,omitempty"`

	// Ring is this node's view of the fabric membership (empty without
	// a fabric).
	Ring []string `json:"ring"`

	// Runs is the flight recorder's aggregate view, including the
	// node's active runs.
	Runs RunSummary `json:"runs"`
}

// nodeStatus snapshots this node's status document.
func (s *Server) nodeStatus() NodeStatus {
	inflight, queued := s.adm.Depth()
	maxInflight, maxQueued := s.adm.Capacity()
	st := NodeStatus{
		Status:      "ok",
		Node:        s.node,
		Inflight:    inflight,
		Queued:      queued,
		MaxInflight: maxInflight,
		MaxQueued:   maxQueued,
		Requests:    s.requests.Load(),
		Forwarded:   s.forwarded.Load(),
		Coalesced:   s.coalesced.Load(),
		Degraded:    s.degraded.Load(),
		Rejected:    uint64(s.adm.Rejected()),
		Estimated:   s.estimated.Load(),
		Ring:        []string{},
		Runs:        s.runs.Summary(),
	}
	st.EstimateMisses = s.estMisses.Load()
	st.EstimateValidations, st.EstimateRefreshes = s.EstimateValidations()
	st.CacheEntries = s.p.CacheStats().Entries
	if store, err := s.p.Store(); err == nil && store != nil {
		stats := store.Stats()
		st.StoreRecords = stats.Records
		st.StoreBytes = stats.Bytes
	}
	if s.fab != nil {
		st.Ring = s.fab.Members()
	}
	return st
}

// handleStatus serves GET /v1/status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.nodeStatus())
}

// FleetSummary is the merged headline of a fleet status document: sums
// over every reachable node.
type FleetSummary struct {
	// Nodes counts the fleet membership; Healthy the nodes that
	// answered the probe; Unreachable the nodes that did not.
	Nodes       int `json:"nodes"`
	Healthy     int `json:"healthy"`
	Unreachable int `json:"unreachable"`

	// ActiveRuns counts runs executing fleet-wide right now. Each run
	// is counted exactly once: a node's forwarded shadow records are
	// excluded, only the executing node reports it.
	ActiveRuns int `json:"activeRuns"`

	Inflight int `json:"inflight"`
	Queued   int `json:"queued"`

	Started uint64 `json:"started"`
	Done    uint64 `json:"done"`
	Failed  uint64 `json:"failed"`

	Forwarded uint64 `json:"forwarded"`
	Coalesced uint64 `json:"coalesced"`
	Degraded  uint64 `json:"degraded"`
	Rejected  uint64 `json:"rejected"`

	// Estimate-tier totals across the fleet.
	Estimated         uint64 `json:"estimated"`
	EstimateRefreshes uint64 `json:"estimateRefreshes"`

	StoreRecords int   `json:"storeRecords"`
	StoreBytes   int64 `json:"storeBytes"`
}

// FleetStatus is the GET /v1/fleet/status response: the merged
// summary, every reachable node's full status document (sorted by node
// name), and the peers that could not be probed. Unreachable is always
// present — an empty list is the all-healthy signal.
type FleetStatus struct {
	Fleet       FleetSummary `json:"fleet"`
	Nodes       []NodeStatus `json:"nodes"`
	Unreachable []string     `json:"unreachable"`
}

// handleFleetStatus serves GET /v1/fleet/status: it fans out over the
// fabric's member list (peer names are base URLs), fetches each peer's
// /v1/status concurrently under statusProbeTimeout, answers for itself
// locally, and merges the results. A peer that cannot be reached — or
// answers garbage — lands in `unreachable`; the response itself is
// always 200 with whatever subset of the fleet answered, matching the
// fabric's degrade-to-local philosophy. Without a fabric the fleet is
// this one node.
func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	fleet := s.fleetStatus(r)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fleet)
}

func (s *Server) fleetStatus(r *http.Request) FleetStatus {
	members := []string{}
	self := ""
	if s.fab != nil {
		members = s.fab.Members()
		self = s.fab.Self()
	}
	var (
		mu          sync.Mutex
		nodes       []NodeStatus
		unreachable []string
		wg          sync.WaitGroup
	)
	// Self answers locally — its status never depends on its own
	// listener being reachable from itself.
	nodes = append(nodes, s.nodeStatus())
	for _, peer := range members {
		if peer == self {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := s.probeStatus(r, peer)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				s.log.Warn("fleet status probe failed", "peer", peer, "err", err)
				unreachable = append(unreachable, peer)
				return
			}
			nodes = append(nodes, st)
		}()
	}
	wg.Wait()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	sort.Strings(unreachable)
	if unreachable == nil {
		unreachable = []string{}
	}
	sum := FleetSummary{
		Nodes:       max(len(members), 1),
		Healthy:     len(nodes),
		Unreachable: len(unreachable),
	}
	for _, st := range nodes {
		sum.ActiveRuns += len(st.Runs.Active)
		sum.Inflight += st.Inflight
		sum.Queued += st.Queued
		sum.Started += st.Runs.Started
		sum.Done += st.Runs.Done
		sum.Failed += st.Runs.Failed
		sum.Forwarded += st.Forwarded
		sum.Coalesced += st.Coalesced
		sum.Degraded += st.Degraded
		sum.Rejected += st.Rejected
		sum.Estimated += st.Estimated
		sum.EstimateRefreshes += st.EstimateRefreshes
		sum.StoreRecords += st.StoreRecords
		sum.StoreBytes += st.StoreBytes
	}
	return FleetStatus{Fleet: sum, Nodes: nodes, Unreachable: unreachable}
}

// probeStatus fetches one peer's /v1/status. Peer names are base URLs,
// the same convention the fabric transport forwards runs with.
func (s *Server) probeStatus(r *http.Request, peer string) (NodeStatus, error) {
	ctx, cancel := context.WithTimeout(r.Context(), statusProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/status", nil)
	if err != nil {
		return NodeStatus{}, err
	}
	resp, err := s.probe.Do(req)
	if err != nil {
		return NodeStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return NodeStatus{}, &statusError{peer: peer, code: resp.StatusCode}
	}
	var st NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return NodeStatus{}, err
	}
	return st, nil
}

type statusError struct {
	peer string
	code int
}

func (e *statusError) Error() string {
	return "peer " + e.peer + " answered status " + http.StatusText(e.code)
}
