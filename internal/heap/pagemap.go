package heap

import "fmt"

// Placement-policy granularity: policies decide per page group, not
// per 4 KB page, so one decision amortizes its TLB shootdown over
// sixteen pages.
const (
	// PageGroupPages is the number of 4 KB pages in one policy group.
	PageGroupPages = 16
	// PageGroupBytes is the byte span of one policy group (64 KB).
	PageGroupBytes = PageGroupPages * PageBytes
)

// TierUnknown marks a page group whose tier has not been decided —
// under the first-touch policy the OS places it on the faulting
// thread's node, and the map learns nothing until a policy sets it.
const TierUnknown = -1

// PageMap is the mutable page-group→tier map of one process's managed
// heap. It replaces the static resolution of a plan's SocketBinding:
// the runtime seeds it from the plan's Table I row at boot, and the
// placement-policy engine both reads it (a group's current tier
// intent) and rewrites it as it migrates groups between the emulated
// DRAM and PCM devices. It is not safe for concurrent use; the
// cooperative kernel guarantees a single runner.
type PageMap struct {
	lo, hi uint64
	nodes  []int8 // per-group tier, TierUnknown until decided
}

// NewPageMap returns a map covering [lo, hi) with every group's tier
// unknown. The range is rounded outward to group boundaries.
func NewPageMap(lo, hi uint64) *PageMap {
	if lo >= hi {
		panic(fmt.Sprintf("heap: empty page map range [%#x,%#x)", lo, hi))
	}
	lo &^= uint64(PageGroupBytes - 1)
	hi = (hi + PageGroupBytes - 1) &^ uint64(PageGroupBytes-1)
	pm := &PageMap{lo: lo, hi: hi, nodes: make([]int8, (hi-lo)/PageGroupBytes)}
	for i := range pm.nodes {
		pm.nodes[i] = TierUnknown
	}
	return pm
}

// Lo returns the bottom of the mapped range.
func (pm *PageMap) Lo() uint64 { return pm.lo }

// Hi returns the end (exclusive) of the mapped range.
func (pm *PageMap) Hi() uint64 { return pm.hi }

// Groups returns the number of page groups the map covers.
func (pm *PageMap) Groups() int { return len(pm.nodes) }

// GroupAddr returns the base address of the i-th group.
func (pm *PageMap) GroupAddr(i int) uint64 {
	return pm.lo + uint64(i)*PageGroupBytes
}

// Node returns the tier of the group holding addr, or TierUnknown for
// undecided groups and addresses outside the range.
func (pm *PageMap) Node(addr uint64) int {
	if addr < pm.lo || addr >= pm.hi {
		return TierUnknown
	}
	return int(pm.nodes[(addr-pm.lo)/PageGroupBytes])
}

// SetRange assigns every group overlapping [start, end) to node. The
// range is rounded outward to group boundaries; later assignments win,
// which is how a migration retargets groups a plan bound statically.
func (pm *PageMap) SetRange(start, end uint64, node int) {
	if end <= pm.lo || start >= pm.hi {
		return
	}
	if start < pm.lo {
		start = pm.lo
	}
	if end > pm.hi {
		end = pm.hi
	}
	first := (start - pm.lo) / PageGroupBytes
	last := (end - 1 - pm.lo) / PageGroupBytes
	for i := first; i <= last; i++ {
		pm.nodes[i] = int8(node)
	}
}

// Residency counts the map's groups per tier. Unknown groups are not
// counted (maxNode bounds the histogram length).
func (pm *PageMap) Residency(maxNode int) []int {
	counts := make([]int, maxNode+1)
	for _, n := range pm.nodes {
		if n >= 0 && int(n) <= maxNode {
			counts[n]++
		}
	}
	return counts
}
