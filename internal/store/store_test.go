package store

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/jvm"
	"repro/internal/machine"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleResult builds a deterministic fully-populated Result.
func sampleResult(n uint64) core.Result {
	return core.Result{
		DRAMWriteLines:     1000 + n,
		PCMWriteLines:      2000 + n,
		DRAMReadLines:      3000 + n,
		PCMReadLines:       4000 + n,
		Seconds:            1.5,
		PerInstanceSeconds: []float64{1.5},
		RuntimeStats:       []jvm.Stats{{MinorGCs: int(n), AllocBytes: 1 << 20}},
		AllocBytes:         []uint64{1 << 20},
		PeakResidentBytes:  []uint64{1 << 22},
		ZeroedPages:        42,
		QPI:                machine.QPIStats{ReadLines: 7, WriteLines: 8},
		FreeListMaps:       3,
		FreeListRecycles:   4,
	}
}

func sampleSpec(app string) core.RunSpec {
	return core.RunSpec{AppName: app, Collector: jvm.KGW, Instances: 2, Dataset: 1}
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.Put(key, sampleSpec("pmd"), sampleResult(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	// Identical re-put is a no-op.
	if err := s.Put("key-0", sampleSpec("pmd"), sampleResult(0)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Appends != 5 {
		t.Errorf("Appends = %d, want 5 (identical re-put must not append)", st.Appends)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", r.Len())
	}
	rec, ok := r.Get("key-3")
	if !ok {
		t.Fatal("key-3 missing after reopen")
	}
	if !reflect.DeepEqual(rec.Result, sampleResult(3)) {
		t.Error("key-3 result not bit-identical after reopen")
	}
	if rec.Spec != sampleSpec("pmd") {
		t.Errorf("key-3 spec = %+v", rec.Spec)
	}
	if st := r.Stats(); st.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 on a clean store", st.Dropped)
	}
}

func TestCrashRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), sampleSpec("pmd"), sampleResult(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the tail record in half.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	torn := append(bytes.Join(lines[:2], nil), lines[2][:len(lines[2])/2]...)
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2 (torn tail dropped)", r.Len())
	}
	if _, ok := r.Get("key-2"); ok {
		t.Error("torn record must not survive recovery")
	}
	if st := r.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}

	// Appends after a torn tail go to a fresh segment and survive a
	// further reopen alongside the recovered records.
	if err := r.Put("key-9", sampleSpec("pmd"), sampleResult(9)); err != nil {
		t.Fatal(err)
	}
	segs, _ = filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 2 {
		t.Fatalf("segments after torn-tail append = %d, want 2 (never extend corrupt bytes)", len(segs))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 3 {
		t.Fatalf("final Len = %d, want 3", r2.Len())
	}
}

func TestRecoveryDropsMismatchedSum(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", sampleSpec("pmd"), sampleResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a record body without touching its content address.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(bytes.TrimSpace(data), &rec); err != nil {
		t.Fatal(err)
	}
	rec.Result.PCMWriteLines++
	rec.Key = "evil"
	line, _ := json.Marshal(rec)
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get("evil"); ok {
		t.Error("record with stale content address must be dropped")
	}
	if _, ok := r.Get("good"); !ok {
		t.Error("intact record lost during recovery")
	}
	if st := r.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), sampleSpec("pmd"), sampleResult(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Shadow key-1 so compaction has garbage to drop.
	if err := s.Put("key-1", sampleSpec("xalan"), sampleResult(100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len after Compact = %d, want 4", s.Len())
	}
	rec, ok := s.Get("key-1")
	if !ok || rec.Spec.AppName != "xalan" {
		t.Error("Compact must keep the latest record per key")
	}
	// Compacted data + an empty active segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 2 {
		t.Fatalf("segments after Compact = %v, want compacted + active", segs)
	}
	if err := s.Put("key-5", sampleSpec("pmd"), sampleResult(5)); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", r.Len())
	}
	if rec, ok := r.Get("key-1"); !ok || rec.Spec.AppName != "xalan" {
		t.Error("latest key-1 lost across Compact + reopen")
	}
}

func TestListFilterAndOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, app := range []string{"xalan", "pmd", "lusearch"} {
		if err := s.Put("app="+app, sampleSpec(app), sampleResult(1)); err != nil {
			t.Fatal(err)
		}
	}
	all := s.List(nil)
	if len(all) != 3 {
		t.Fatalf("List(nil) = %d records, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatalf("List not sorted: %q before %q", all[i-1].Key, all[i].Key)
		}
	}
	pmd := s.List(func(r Record) bool { return r.Spec.AppName == "pmd" })
	if len(pmd) != 1 || pmd[0].Spec.AppName != "pmd" {
		t.Errorf("filtered List = %+v", pmd)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i)
				if err := s.Put(key, sampleSpec("pmd"), sampleResult(uint64(i))); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(key); !ok {
					t.Errorf("key %q missing right after Put", key)
					return
				}
				s.Len()
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	if st := r.Stats(); st.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0 (concurrent appends must not tear)", st.Dropped)
	}
}

// TestRecordGolden freezes the segment-line JSON schema. If this test
// fails, the on-disk and HTTP wire format changed: bump the store
// format deliberately and regenerate testdata/record_golden.jsonl with
// -update.
func TestRecordGolden(t *testing.T) {
	key := "mode=emulation;seed=1;l3=0;nursery=0;obs=0;tsock=-1;mon=0;quantum=0;unmap=false;wear=false;boot=4;factory=scale:quick;policy=static;app=pmd;gc=KG-W;n=2;ds=large;native=false"
	spec := sampleSpec("pmd")
	res := sampleResult(1)
	sum, err := Sum(key, spec, res)
	if err != nil {
		t.Fatal(err)
	}
	line, err := json.Marshal(Record{V: RecordVersion, Key: key, Sum: sum, Spec: spec, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	line = append(line, '\n')

	golden := filepath.Join("testdata", "record_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, line, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, want) {
		t.Errorf("segment record schema drifted from golden file\n got: %s\nwant: %s", line, want)
	}

	// And the frozen bytes still decode to the same record.
	var rec Record
	if err := json.Unmarshal(bytes.TrimSpace(want), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.V != RecordVersion || rec.Key != key || rec.Sum != sum || !reflect.DeepEqual(rec.Result, res) {
		t.Error("golden record does not decode back to the original")
	}
}

// legacyRecord is the pre-versioning segment-line schema: no "v" field,
// and (for records older than the placement engine) no ";policy=" key
// segment. The migration fixture is written in this shape.
type legacyRecord struct {
	Key    string       `json:"key"`
	Sum    string       `json:"sum"`
	Spec   core.RunSpec `json:"spec"`
	Result core.Result  `json:"result"`
}

const legacyFixtureKey = "mode=emulation;seed=1;l3=0;nursery=0;obs=0;tsock=-1;mon=0;quantum=0;unmap=false;wear=false;boot=4;factory=scale:quick;app=pmd;gc=KG-W;n=2;ds=large;native=false"

// migratedFixtureKey is legacyFixtureKey after replay rewrites it: the
// runs predate the placement engine, so they ran under static.
const migratedFixtureKey = "mode=emulation;seed=1;l3=0;nursery=0;obs=0;tsock=-1;mon=0;quantum=0;unmap=false;wear=false;boot=4;factory=scale:quick;policy=static;app=pmd;gc=KG-W;n=2;ds=large;native=false"

// TestLegacyMigration opens a committed fixture segment holding a
// pre-versioning record, a record from a future format version, and a
// corrupt legacy line, and checks each takes its intended path:
// migrate, skip, drop. Regenerate testdata/legacy_v0.jsonl with
// -update; the legacy payload marshaling is unchanged since the
// pre-versioning era, so the fixture's sum is exactly what that era's
// code wrote.
func TestLegacyMigration(t *testing.T) {
	fixture := filepath.Join("testdata", "legacy_v0.jsonl")
	if *update {
		spec, res := sampleSpec("pmd"), sampleResult(7)
		sum, err := Sum(legacyFixtureKey, spec, res)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		// 1: a valid legacy record (migrates).
		enc.Encode(legacyRecord{Key: legacyFixtureKey, Sum: sum, Spec: spec, Result: res})
		// 2: a future-version record (skips: its schema is unknowable
		// here, but replay must not drop or rewrite it).
		enc.Encode(Record{V: RecordVersion + 97, Key: "key-from-the-future", Sum: sum, Spec: spec, Result: res})
		// 3: a corrupt legacy record (drops: its content address does
		// not cover its payload, so it cannot be trusted enough to
		// migrate).
		enc.Encode(legacyRecord{Key: legacyFixtureKey, Sum: "beef" + sum[4:], Spec: spec, Result: sampleResult(8)})
		if err := os.WriteFile(fixture, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Migrated != 1 || st.SkippedVersion != 1 || st.Dropped != 1 {
		t.Fatalf("Migrated=%d SkippedVersion=%d Dropped=%d, want 1/1/1", st.Migrated, st.SkippedVersion, st.Dropped)
	}
	if _, ok := s.Get(legacyFixtureKey); ok {
		t.Error("legacy key still resolvable after migration")
	}
	rec, ok := s.Get(migratedFixtureKey)
	if !ok {
		t.Fatal("migrated record missing under the modern key")
	}
	if rec.V != RecordVersion {
		t.Errorf("migrated record V = %d, want %d", rec.V, RecordVersion)
	}
	if !reflect.DeepEqual(rec.Result, sampleResult(7)) {
		t.Error("migrated record result not bit-identical")
	}
	wantSum, err := Sum(migratedFixtureKey, rec.Spec, rec.Result)
	if err != nil || rec.Sum != wantSum {
		t.Errorf("migrated record sum not re-addressed: got %q want %q (%v)", rec.Sum, wantSum, err)
	}

	// Compact persists the migration (nothing left to migrate or drop
	// on reopen) while carrying the future-version record through
	// verbatim — this build must not destroy data it cannot read.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st = r.Stats()
	if st.Migrated != 0 || st.Dropped != 0 {
		t.Errorf("after Compact+reopen: Migrated=%d Dropped=%d, want 0/0", st.Migrated, st.Dropped)
	}
	if st.SkippedVersion != 1 {
		t.Errorf("after Compact+reopen: SkippedVersion = %d, want the future-version record preserved", st.SkippedVersion)
	}
	if _, ok := r.Get(migratedFixtureKey); !ok {
		t.Error("migrated record lost across Compact+reopen")
	}
}
