package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	hybridmem "repro"
	"repro/internal/obs"
)

// jsonBody marshals a request body without a testing.T, for goroutines
// that may not call t.Fatal.
func jsonBody(v any) io.Reader {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return bytes.NewReader(b)
}

// getJSON decodes a GET response into out, failing on a non-200.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// runsListing is the /v1/runs response envelope.
type runsListing struct {
	Count  int       `json:"count"`
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Runs   []RunInfo `json:"runs"`
}

// TestRunRegistry exercises the flight recorder's own API: lifecycle
// transitions, phase timings, watch replay + live delivery, observer
// routing by span ID, and the bounded recent ring.
func TestRunRegistry(t *testing.T) {
	reg := NewRunRegistry("n1", 2)

	h := reg.Begin("run", "PR", "key-a", "trace-1", "span-1", "")
	if h.ID() == "" {
		t.Fatal("Begin issued no run ID")
	}
	// Watch before any transition: history holds the queued event, the
	// live channel gets everything after.
	history, live, cancel, ok := reg.Watch(h.ID())
	if !ok || len(history) != 1 || history[0].State != RunQueued {
		t.Fatalf("Watch history = %+v, ok=%v", history, ok)
	}
	defer cancel()

	h.Transition(RunAdmitted, "")
	// Observer callbacks route by the span ID bound at Begin.
	reg.RunEmulating(obs.SpanContext{TraceID: "trace-1", SpanID: "span-1"})
	reg.RunQuantum(obs.SpanContext{TraceID: "trace-1", SpanID: "span-1"}, 3, 7, 2)
	reg.RunQuantum(obs.SpanContext{TraceID: "trace-1", SpanID: "span-1"}, 5, 9, 4)
	// A callback for an unknown span must be ignored, not crash.
	reg.RunEmulating(obs.SpanContext{SpanID: "span-unknown"})
	h.Finish(OutcomeComputed, nil)

	var events []RunEvent
	for ev := range live {
		events = append(events, ev)
	}
	wantStates := []RunState{RunAdmitted, RunEmulating, RunEmulating, RunEmulating, RunDone}
	if len(events) != len(wantStates) {
		t.Fatalf("live events = %+v, want %d", events, len(wantStates))
	}
	prevQuanta := uint64(0)
	for i, ev := range events {
		if ev.State != wantStates[i] {
			t.Errorf("event %d state = %s, want %s", i, ev.State, wantStates[i])
		}
		if ev.Seq != i+2 { // seq 1 was the queued event in history
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+2)
		}
		if ev.Quanta < prevQuanta {
			t.Errorf("event %d quanta %d regressed below %d", i, ev.Quanta, prevQuanta)
		}
		prevQuanta = ev.Quanta
	}
	final := events[len(events)-1]
	if final.Quanta != 5 || final.PagesMigrated != 4 || final.Detail != OutcomeComputed {
		t.Errorf("terminal event = %+v", final)
	}

	info, _, ok := reg.Get(h.ID())
	if !ok {
		t.Fatal("finished run missing from the recent ring")
	}
	if info.State != RunDone || info.Outcome != OutcomeComputed || info.Quanta != 5 {
		t.Errorf("info = %+v", info)
	}
	if len(info.Phases) != 4 { // queued, admitted, emulating, done
		t.Errorf("phases = %+v, want 4", info.Phases)
	}
	for i, ph := range info.Phases[:len(info.Phases)-1] {
		if ph.DurNs < 0 {
			t.Errorf("phase %d has negative duration %d", i, ph.DurNs)
		}
	}
	if info.EndUnixNano < info.StartUnixNano {
		t.Errorf("run ends (%d) before it starts (%d)", info.EndUnixNano, info.StartUnixNano)
	}

	// Transitions after Finish are dropped.
	h.Transition(RunLocal, "late")
	if got, _, _ := reg.Get(h.ID()); got.State != RunDone {
		t.Errorf("post-Finish transition applied: %+v", got)
	}

	// A failed run records the error and counts as failed.
	h2 := reg.Begin("run", "CC", "key-b", "trace-2", "span-2", "")
	h2.Finish("", errors.New("boom"))
	if info, _, _ := reg.Get(h2.ID()); info.State != RunFailed || info.Error != "boom" {
		t.Errorf("failed run = %+v", info)
	}

	// The recent ring is bounded at 2: a third finished run must evict
	// the first.
	h3 := reg.Begin("run", "ALS", "key-c", "trace-3", "span-3", "")
	h3.Finish(OutcomeCoalesced, nil)
	if _, _, ok := reg.Get(h.ID()); ok {
		t.Error("oldest finished run still present past the ring bound")
	}
	if _, _, ok := reg.Get(h3.ID()); !ok {
		t.Error("newest finished run missing")
	}

	sum := reg.Summary()
	if sum.Started != 3 || sum.Done != 2 || sum.Failed != 1 || sum.Live != 0 {
		t.Errorf("summary = %+v", sum)
	}

	// Forwarded runs are excluded from Active — the executing node owns
	// the fleet-wide count.
	h4 := reg.Begin("run", "PR", "key-d", "trace-4", "span-4", "")
	h4.Transition(RunForwarded, "owner x")
	h5 := reg.Begin("run", "CC", "key-e", "trace-5", "span-5", "")
	h5.Transition(RunAdmitted, "")
	sum = reg.Summary()
	if sum.Forwarding != 1 || len(sum.Active) != 1 || sum.Active[0].ID != h5.ID() {
		t.Errorf("summary with forwarded run = %+v", sum)
	}
	h4.Finish(OutcomeForwarded, nil)
	h5.Finish(OutcomeComputed, nil)
}

// TestRunsEndpointsSingleNode drives one run through a standalone
// server and checks the whole read surface: the /v1/runs listing with
// filters and paging, the /v1/runs/{id} detail with phases and trace
// deep-link, the /v1/runs/{id}/events history, and the
// /v1/spans?trace= filter the detail links to.
func TestRunsEndpointsSingleNode(t *testing.T) {
	_, ts := newTestServer(t)
	// A migrating policy, so the run has policy quanta to observe — the
	// default static policy never builds an engine.
	req := RunRequest{App: "PR", Policy: "write-threshold"}
	resp := postJSON(t, ts.URL+"/v1/run", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d", resp.StatusCode)
	}
	// Same spec again: served from cache, recorded as coalesced.
	resp = postJSON(t, ts.URL+"/v1/run", req)
	resp.Body.Close()

	var listing runsListing
	getJSON(t, ts.URL+"/v1/runs", &listing)
	if listing.Total != 2 || len(listing.Runs) != 2 {
		t.Fatalf("listing = %+v", listing)
	}
	// Newest first: the coalesced read precedes the computed run.
	if listing.Runs[0].Outcome != OutcomeCoalesced || listing.Runs[1].Outcome != OutcomeComputed {
		t.Errorf("outcomes = %s, %s", listing.Runs[0].Outcome, listing.Runs[1].Outcome)
	}
	computed := listing.Runs[1]
	if computed.App != "PR" || computed.Key == "" || computed.Trace == "" || computed.State != RunDone {
		t.Errorf("computed run = %+v", computed)
	}
	if computed.Quanta == 0 {
		t.Error("computed run recorded no quantum progress")
	}

	// Paging mirrors /v1/results.
	getJSON(t, ts.URL+"/v1/runs?limit=1&offset=1", &listing)
	if listing.Total != 2 || listing.Count != 1 || listing.Runs[0].ID != computed.ID {
		t.Errorf("paged listing = %+v", listing)
	}
	// Filters: key and state.
	getJSON(t, ts.URL+"/v1/runs?state=done&key="+url.QueryEscape(computed.Key), &listing)
	if listing.Total != 2 {
		t.Errorf("filtered listing = %+v", listing)
	}
	getJSON(t, ts.URL+"/v1/runs?app=nope", &listing)
	if listing.Total != 0 || listing.Runs == nil {
		t.Errorf("empty filter listing = %+v (runs must be [], not null)", listing)
	}

	var detail struct {
		Run    RunInfo    `json:"run"`
		Events []RunEvent `json:"events"`
	}
	getJSON(t, ts.URL+"/v1/runs/"+computed.ID, &detail)
	if detail.Run.ID != computed.ID || len(detail.Run.Phases) < 3 {
		t.Fatalf("detail = %+v", detail.Run)
	}
	last := detail.Events[len(detail.Events)-1]
	if last.State != RunDone || last.Quanta != computed.Quanta {
		t.Errorf("terminal event = %+v", last)
	}

	// The events endpoint replays the same history for a finished run.
	eresp, err := http.Get(ts.URL + "/v1/runs/" + computed.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var states []RunState
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		var ev RunEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		states = append(states, ev.State)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wantOrder := []RunState{RunQueued, RunAdmitted, RunLocal, RunEmulating, RunDone}
	idx := 0
	for _, st := range states {
		if idx < len(wantOrder) && st == wantOrder[idx] {
			idx++
		}
	}
	if idx != len(wantOrder) {
		t.Errorf("event states %v missing the lifecycle order %v", states, wantOrder)
	}

	// The trace deep-link: /v1/spans?trace= serves only this run's tree.
	sresp, err := http.Get(ts.URL + "/v1/spans?trace=" + computed.Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	spans := 0
	names := map[string]bool{}
	ssc := bufio.NewScanner(sresp.Body)
	for ssc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(ssc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", ssc.Text(), err)
		}
		if rec.Trace != computed.Trace {
			t.Errorf("span %s from foreign trace %s", rec.Name, rec.Trace)
		}
		names[rec.Name] = true
		spans++
	}
	if spans == 0 || !names["run"] || !names["emulate"] {
		t.Errorf("trace filter returned %d spans (names %v), want the run's tree", spans, names)
	}

	// Unknown IDs are 404s on both detail and events.
	for _, path := range []string{"/v1/runs/deadbeef00000000", "/v1/runs/deadbeef00000000/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestFleetStatusSingleNode: without a fabric the fleet document is
// this one node, unreachable always present and empty.
func TestFleetStatusSingleNode(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "CC"})
	resp.Body.Close()

	var node NodeStatus
	getJSON(t, ts.URL+"/v1/status", &node)
	if node.Status != "ok" || node.Node != "local" || node.Runs.Started != 1 || node.Runs.Done != 1 {
		t.Errorf("node status = %+v", node)
	}
	if node.Ring == nil {
		t.Error("ring must be [], not null")
	}

	var fleet FleetStatus
	getJSON(t, ts.URL+"/v1/fleet/status", &fleet)
	if fleet.Fleet.Nodes != 1 || fleet.Fleet.Healthy != 1 || fleet.Fleet.Unreachable != 0 {
		t.Errorf("fleet summary = %+v", fleet.Fleet)
	}
	if len(fleet.Nodes) != 1 || fleet.Nodes[0].Node != "local" {
		t.Errorf("fleet nodes = %+v", fleet.Nodes)
	}
	if fleet.Unreachable == nil || len(fleet.Unreachable) != 0 {
		t.Errorf("unreachable = %#v, want []", fleet.Unreachable)
	}
	if fleet.Fleet.Done != 1 {
		t.Errorf("fleet done = %d, want 1", fleet.Fleet.Done)
	}
}

// TestFleetStatusDegradesPerPeer: killing one node of a three-node
// fleet degrades /v1/fleet/status to a partial document — the dead
// peer moves to `unreachable`, the response stays 200 with the two
// survivors merged. Never an error: the status plane follows the
// fabric's degrade-to-local philosophy.
func TestFleetStatusDegradesPerPeer(t *testing.T) {
	nodes := startCluster(t, 3, nil)

	var fleet FleetStatus
	getJSON(t, nodes[0].url+"/v1/fleet/status", &fleet)
	if fleet.Fleet.Nodes != 3 || fleet.Fleet.Healthy != 3 || len(fleet.Unreachable) != 0 {
		t.Fatalf("healthy fleet = %+v unreachable=%v", fleet.Fleet, fleet.Unreachable)
	}

	nodes[2].ts.Close()
	getJSON(t, nodes[0].url+"/v1/fleet/status", &fleet)
	if fleet.Fleet.Healthy != 2 || fleet.Fleet.Unreachable != 1 {
		t.Errorf("degraded fleet = %+v", fleet.Fleet)
	}
	if len(fleet.Unreachable) != 1 || fleet.Unreachable[0] != nodes[2].url {
		t.Errorf("unreachable = %v, want [%s]", fleet.Unreachable, nodes[2].url)
	}
	for _, n := range fleet.Nodes {
		if n.Node == nodes[2].url {
			t.Errorf("dead node %s still listed in nodes", n.Node)
		}
	}
}

// TestFlightRecorderCluster is the PR's acceptance test: a sweep
// driven through one node of a three-node fleet, whose single cell is
// owned by a peer. The owning node's /v1/runs/{id}/events stream shows
// the admitted → emulating → done lifecycle with monotonically
// non-decreasing quantum counters, and while the run executes, the
// entry node's /v1/fleet/status reports it exactly once fleet-wide
// (the entry node's forwarded shadow record is not an active run).
func TestFlightRecorderCluster(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	entry := nodes[0]

	// Pick an app whose canonical key is owned by a peer, so the sweep
	// cell forwards: entry holds the shadow record, the owner executes.
	var (
		app   string
		key   string
		owner *clusterNode
	)
	for _, spec := range hybridmem.NewSweep().Specs() {
		s, p, err := entry.srv.resolve(RunRequest{App: spec.AppName, Policy: "write-threshold"})
		if err != nil {
			t.Fatal(err)
		}
		k := p.SpecKey(s)
		if ownerURL := entry.srv.fab.Owner(k); ownerURL != entry.url {
			app, key = spec.AppName, k
			for _, n := range nodes {
				if n.url == ownerURL {
					owner = n
				}
			}
			break
		}
	}
	if owner == nil {
		t.Fatal("no app hashed to a peer; cannot exercise forwarding")
	}

	// Poll the entry node's fleet view for the whole test: every
	// snapshot that sees the key's run must see it exactly once.
	stopPolling := make(chan struct{})
	pollDone := make(chan struct{})
	var everSeen bool
	var violations []string
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stopPolling:
				return
			default:
			}
			resp, err := http.Get(entry.url + "/v1/fleet/status")
			if err != nil {
				continue
			}
			var fleet FleetStatus
			err = json.NewDecoder(resp.Body).Decode(&fleet)
			resp.Body.Close()
			if err != nil {
				continue
			}
			seen := 0
			for _, n := range fleet.Nodes {
				for _, info := range n.Runs.Active {
					if info.Key == key {
						seen++
					}
				}
			}
			if seen > 0 {
				everSeen = true
			}
			if seen > 1 {
				violations = append(violations,
					fmt.Sprintf("fleet status saw key %s active %d times", key, seen))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Drive the single-cell sweep through the entry node.
	sweepDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(entry.url+"/v1/sweep", "application/json",
			jsonBody(SweepRequest{Apps: []string{app}, Collectors: []string{"PCM-Only"},
				Policies: []string{"write-threshold"}}))
		if err != nil {
			sweepDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			sweepDone <- fmt.Errorf("sweep = %d", resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var item SweepItem
			if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
				sweepDone <- fmt.Errorf("bad sweep line: %w", err)
				return
			}
			if item.Error != "" {
				sweepDone <- fmt.Errorf("cell failed: %s", item.Error)
				return
			}
		}
		sweepDone <- sc.Err()
	}()

	// Discover the executing run on the owning node and tail its event
	// stream. History replays on subscribe, so finding the run after
	// any given transition still yields the full lifecycle.
	var runID string
	deadline := time.Now().Add(15 * time.Second)
	for runID == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never appeared in the owner's registry")
		}
		var listing runsListing
		getJSON(t, owner.url+"/v1/runs?kind=run&key="+url.QueryEscape(key), &listing)
		if len(listing.Runs) > 0 {
			runID = listing.Runs[0].ID
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	eresp, err := http.Get(owner.url + "/v1/runs/" + runID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var events []RunEvent
	esc := bufio.NewScanner(eresp.Body)
	for esc.Scan() {
		var ev RunEvent
		if err := json.Unmarshal(esc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", esc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := esc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := <-sweepDone; err != nil {
		t.Fatal(err)
	}
	close(stopPolling)
	<-pollDone

	// The lifecycle order: admitted strictly before emulating strictly
	// before done, with counters that never regress.
	seq := map[RunState]int{}
	prevQuanta := uint64(0)
	for i, ev := range events {
		if _, ok := seq[ev.State]; !ok {
			seq[ev.State] = i
		}
		if ev.Quanta < prevQuanta {
			t.Errorf("event %d quanta %d regressed below %d", i, ev.Quanta, prevQuanta)
		}
		if ev.Quanta > 0 {
			prevQuanta = ev.Quanta
		}
	}
	for _, st := range []RunState{RunAdmitted, RunEmulating, RunDone} {
		if _, ok := seq[st]; !ok {
			t.Fatalf("lifecycle state %s never observed; events: %+v", st, events)
		}
	}
	if !(seq[RunAdmitted] < seq[RunEmulating] && seq[RunEmulating] < seq[RunDone]) {
		t.Errorf("lifecycle out of order: admitted@%d emulating@%d done@%d",
			seq[RunAdmitted], seq[RunEmulating], seq[RunDone])
	}
	final := events[len(events)-1]
	if final.State != RunDone || final.Quanta == 0 {
		t.Errorf("terminal event = %+v, want done with quantum progress", final)
	}

	// Exactly once, live: no fleet snapshot double-counted the run, and
	// the poller did observe it mid-flight.
	for _, v := range violations {
		t.Error(v)
	}
	if !everSeen {
		t.Error("fleet status never observed the run active (poll raced the whole compute?)")
	}

	// Exactly once, post-hoc: exactly one node fleet-wide holds a
	// record for the key that actually emulated; the entry node's
	// record is the forwarded shadow.
	emulated := 0
	for _, n := range nodes {
		var listing runsListing
		getJSON(t, n.url+"/v1/runs?key="+url.QueryEscape(key), &listing)
		for _, info := range listing.Runs {
			for _, ph := range info.Phases {
				if ph.State == RunEmulating {
					emulated++
				}
			}
		}
	}
	if emulated != 1 {
		t.Errorf("%d records fleet-wide show an emulating phase, want exactly 1", emulated)
	}
	var entryListing runsListing
	getJSON(t, entry.url+"/v1/runs?key="+url.QueryEscape(key), &entryListing)
	if len(entryListing.Runs) != 1 || entryListing.Runs[0].Outcome != OutcomeForwarded {
		t.Errorf("entry node records = %+v, want one forwarded shadow", entryListing.Runs)
	}
}
