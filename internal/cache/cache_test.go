package cache

import (
	"testing"
	"testing/quick"
)

func tiny() *Cache {
	// 4 sets x 2 ways x 64B lines = 512 bytes.
	return New(Config{Name: "tiny", Bytes: 512, Ways: 2})
}

func TestHitAfterMiss(t *testing.T) {
	c := tiny()
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access should miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access should hit")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameLineDifferentBytes(t *testing.T) {
	c := tiny()
	c.Access(0x1000, false)
	if hit, _ := c.Access(0x103F, true); !hit {
		t.Error("access within the same 64B line should hit")
	}
	if hit, _ := c.Access(0x1040, false); hit {
		t.Error("next line should miss")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := tiny() // 4 sets: line -> set = (addr>>6) % 4
	// Three addresses mapping to set 0: line addresses 0, 4, 8.
	a0, a1, a2 := uint64(0*64), uint64(4*64), uint64(8*64)
	c.Access(a0, true)  // set0: [a0*]
	c.Access(a1, false) // set0: [a1, a0*]
	_, v := c.Access(a2, false)
	if !v.Valid || !v.Dirty || v.LineAddr != a0 {
		t.Errorf("expected dirty eviction of %#x, got %+v", a0, v)
	}
	if c.Contains(a0) {
		t.Error("evicted line still resident")
	}
	if !c.Contains(a1) || !c.Contains(a2) {
		t.Error("resident lines missing")
	}
}

func TestCleanEvictionNotDirty(t *testing.T) {
	c := tiny()
	a0, a1, a2 := uint64(0*64), uint64(4*64), uint64(8*64)
	c.Access(a0, false)
	c.Access(a1, false)
	_, v := c.Access(a2, false)
	if !v.Valid || v.Dirty {
		t.Errorf("expected clean eviction, got %+v", v)
	}
	if got := c.Stats().DirtyEvicts; got != 0 {
		t.Errorf("DirtyEvicts = %d, want 0", got)
	}
}

func TestLRUOrder(t *testing.T) {
	c := tiny()
	a0, a1, a2 := uint64(0*64), uint64(4*64), uint64(8*64)
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // refresh a0; a1 becomes LRU
	_, v := c.Access(a2, false)
	if v.LineAddr != a1 {
		t.Errorf("LRU victim = %#x, want %#x", v.LineAddr, a1)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := tiny()
	a0, a1, a2 := uint64(0*64), uint64(4*64), uint64(8*64)
	c.Access(a0, false) // clean
	c.Access(a0, true)  // now dirty via write hit
	c.Access(a1, false)
	c.Access(a0, false) // keep a0 MRU
	_, v := c.Access(a2, false)
	if v.LineAddr != a1 || v.Dirty {
		t.Errorf("victim = %+v, want clean %#x", v, a1)
	}
	// Evict a0 next; it must come out dirty.
	c.Access(a2, false)
	_, v = c.Access(a1, false)
	if v.LineAddr != a0 || !v.Dirty {
		t.Errorf("victim = %+v, want dirty %#x", v, a0)
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0, true)
	c.Access(4*64, false)
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0] != 0 {
		t.Errorf("flush dirty = %v, want [0]", dirty)
	}
	if c.Contains(0) || c.Contains(4*64) {
		t.Error("flush left lines resident")
	}
}

func TestWorkingSetFitsNoEvictions(t *testing.T) {
	// A working set equal to capacity, touched repeatedly, must stop
	// missing after the first pass — the "L3 absorbs the nursery"
	// effect in miniature.
	c := New(Config{Name: "l3", Bytes: 1 << 16, Ways: 16})
	lines := (1 << 16) / 64
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*64), true)
		}
	}
	s := c.Stats()
	if s.Evictions != 0 {
		t.Errorf("fitting working set caused %d evictions", s.Evictions)
	}
	wantHits := uint64(3 * lines)
	if s.Hits != wantHits {
		t.Errorf("hits = %d, want %d", s.Hits, wantHits)
	}
}

func TestOverflowingWorkingSetEvicts(t *testing.T) {
	c := New(Config{Name: "l3", Bytes: 1 << 14, Ways: 4})
	lines := 2 * (1 << 14) / 64 // 2x capacity
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*64), true)
		}
	}
	if c.Stats().DirtyEvicts == 0 {
		t.Error("2x working set should force dirty evictions")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero ways")
		}
	}()
	New(Config{Name: "bad", Bytes: 512, Ways: 0})
}

// Property: the number of resident lines never exceeds capacity, and
// an access to an address always leaves it resident.
func TestResidencyProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := New(Config{Name: "p", Bytes: 2048, Ways: 4})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses == accesses and evictions <= misses.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{Name: "p", Bytes: 1024, Ways: 2})
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		s := c.Stats()
		misses := s.Accesses - s.Hits
		return s.Evictions <= misses && s.DirtyEvicts <= s.Evictions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
