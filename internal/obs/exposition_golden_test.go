package obs

import (
	"strconv"
	"strings"
	"testing"
)

// TestHistogramExpositionGolden freezes the histogram exposition
// against the Prometheus text-format (0.0.4) contract, byte for byte:
// cumulative buckets in bound order, an explicit le="+Inf" bucket
// equal to _count, a _sum series, and label/help escaping for
// backslash, quote, and newline. If this golden moves, every scraper
// of /metrics sees the change — it must be deliberate.
func TestHistogramExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_seconds", "Latency \\ demo\nsecond line",
		Labels{"node": "n\"1\\x"}, []float64{0.5, 1, 2})
	for _, v := range []float64{0.3, 0.7, 1, 1.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# HELP demo_seconds Latency \\ demo\nsecond line
# TYPE demo_seconds histogram
demo_seconds_bucket{node="n\"1\\x",le="0.5"} 1
demo_seconds_bucket{node="n\"1\\x",le="1"} 3
demo_seconds_bucket{node="n\"1\\x",le="2"} 4
demo_seconds_bucket{node="n\"1\\x",le="+Inf"} 5
demo_seconds_sum{node="n\"1\\x"} 8.5
demo_seconds_count{node="n\"1\\x"} 5
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted from the frozen text-format contract:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestHistogramExpositionInvariants checks the structural contract on
// a histogram with the default bucket layout, independent of the exact
// golden bytes: buckets are cumulative (monotonically non-decreasing
// in bound order), the +Inf bucket equals _count, and _sum carries the
// observation total.
func TestHistogramExpositionInvariants(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("inv_seconds", "Invariant probe.", Labels{"node": "a"}, nil)
	var sum float64
	for _, v := range []float64{1e-5, 0.003, 0.2, 1.5, 40, 1e6} {
		h.Observe(v)
		sum += v
	}
	var b strings.Builder
	reg.WritePrometheus(&b)

	var (
		buckets []uint64
		infVal  = uint64(0)
		count   = uint64(0)
		sumSeen = false
	)
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "inv_seconds_bucket"):
			n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparsable bucket line %q: %v", line, err)
			}
			buckets = append(buckets, n)
			if strings.Contains(line, `le="+Inf"`) {
				infVal = n
			}
		case strings.HasPrefix(line, "inv_seconds_sum"):
			sumSeen = true
			got, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil || got != sum {
				t.Errorf("_sum = %q, want %v (err %v)", line, sum, err)
			}
		case strings.HasPrefix(line, "inv_seconds_count"):
			n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparsable count line %q: %v", line, err)
			}
			count = n
		}
	}
	if len(buckets) != len(DefBuckets)+1 {
		t.Fatalf("got %d bucket lines, want %d (DefBuckets + le=\"+Inf\")", len(buckets), len(DefBuckets)+1)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("bucket %d not cumulative: %d < %d", i, buckets[i], buckets[i-1])
		}
	}
	if buckets[len(buckets)-1] != infVal {
		t.Errorf("last bucket %d is not the +Inf bucket %d", buckets[len(buckets)-1], infVal)
	}
	if infVal != count {
		t.Errorf(`le="+Inf" bucket %d != _count %d`, infVal, count)
	}
	if count != 6 {
		t.Errorf("_count = %d, want 6", count)
	}
	if !sumSeen {
		t.Error("no _sum series emitted")
	}
}
