// Lifetime study: the paper's Table III scenario — measure PCM write
// rates for single-program and multiprogrammed workloads and project
// PCM lifetime in years under the paper's three endurance prototypes
// (Equation 1, 32 GB PCM, 50% wear-leveling efficiency). The
// instances x collectors grid is one declarative Sweep executed in
// parallel.
package main

import (
	"context"
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))

	endurances := []struct {
		name string
		e    float64
	}{
		{"Prototype 1 (10M writes/cell)", 10e6},
		{"Prototype 2 (30M writes/cell)", 30e6},
		{"Prototype 3 (50M writes/cell)", 50e6},
	}

	gcs := []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGW}
	counts := []int{1, 4}
	specs := hybridmem.NewSweep("xalan").Collectors(gcs...).Instances(counts...).Specs()
	results, err := p.RunBatch(context.Background(), specs...)
	if err != nil {
		log.Fatal(err)
	}

	for i, spec := range specs {
		rate := results[i].PCMRateMBs()
		fmt.Printf("xalan x%d under %-8s: %6.1f MB/s to PCM\n",
			spec.Instances, spec.Collector, rate)
		for _, proto := range endurances {
			years := hybridmem.LifetimeYears(32<<30, proto.e, rate)
			fmt.Printf("    %-30s %6.0f years\n", proto.name, years)
		}
	}
	fmt.Printf("\nvendor-recommended sustained rate: %.0f MB/s\n", hybridmem.RecommendedRateMBs())
}
