package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almostEqual(got, 4) {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEqual(got, 4) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{0, -2}); got != 0 {
		t.Errorf("GeoMean of non-positive = %v, want 0", got)
	}
	// Non-positive entries are skipped, not zeroed.
	if got := GeoMean([]float64{0, 4}); !almostEqual(got, 4) {
		t.Errorf("GeoMean skipping zero = %v, want 4", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if got := Median(xs); !almostEqual(got, 4) {
		t.Errorf("Median = %v, want 4", got)
	}
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("Median odd = %v, want 5", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4}, 2)
	if !almostEqual(got[0], 1) || !almostEqual(got[1], 2) {
		t.Errorf("Normalize = %v", got)
	}
	got = Normalize([]float64{2, 4}, 0)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize by zero = %v, want zeros", got)
	}
}

func TestPercentReduction(t *testing.T) {
	if got := PercentReduction(100, 38); !almostEqual(got, 62) {
		t.Errorf("PercentReduction = %v, want 62", got)
	}
	if got := PercentReduction(0, 5); got != 0 {
		t.Errorf("PercentReduction base 0 = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); !almostEqual(got, 2) {
		t.Errorf("Ratio = %v, want 2", got)
	}
	if got := Ratio(6, 0); got != 0 {
		t.Errorf("Ratio by zero = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: normalizing by the max puts every element in [0,1] for
// non-negative input.
func TestNormalizeRangeProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		fs := make([]float64, len(xs))
		for i, x := range xs {
			fs[i] = float64(x)
		}
		mx := Max(fs)
		if mx == 0 {
			return true
		}
		for _, v := range Normalize(fs, mx) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
