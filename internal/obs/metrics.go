package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels name a metric series within its family. Values are escaped at
// exposition time; callers pass them raw.
type Labels map[string]string

// DefBuckets are the default latency buckets, in seconds. They span
// cache hits (tens of microseconds) through full-scale emulations
// (minutes), which is the dynamic range of a single /v1/run.
var DefBuckets = []float64{
	0.00001, 0.0001, 0.001, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). All methods are safe for
// concurrent use and safe on a nil receiver: a nil registry hands out
// nil metrics, whose mutation methods are no-ops, so uninstrumented
// code paths cost one nil check.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type series interface {
	write(w io.Writer, name, labels string)
}

type family struct {
	help, typ string
	series    map[string]series // keyed by rendered label string
}

// Counter is a monotonically increasing float64. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct{ v atomicFloat }

// Add increments the counter. Negative deltas are dropped. No-op on a
// nil receiver.
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.v.add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, wrapLabels(labels), fmtFloat(c.v.load()))
}

// Gauge is a value that can go up and down. No-ops on a nil receiver.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.add(d)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, wrapLabels(labels), fmtFloat(g.v.load()))
}

// funcSeries reads its value from a callback at scrape time. It backs
// CounterFunc/GaugeFunc, which let the serving layer expose values it
// already tracks in its own atomics without double bookkeeping.
type funcSeries struct{ fn func() float64 }

func (s *funcSeries) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, wrapLabels(labels), fmtFloat(s.fn()))
}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds). Observations are lock-free.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
}

// Observe records one value. No-op on a nil receiver; NaN is dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v's bucket
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, fmtFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(labels), fmtFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(labels), cum)
}

// Counter registers (or finds) a counter series. Registering the same
// name+labels twice returns the existing counter; re-registering a
// name with a different metric kind panics (a programming error).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, "counter", labels, func() series { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, "gauge", labels, func() series { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time. The first registration for a given name+labels wins.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, "counter", labels, func() series { return &funcSeries{fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, "gauge", labels, func() series { return &funcSeries{fn: fn} })
}

// Histogram registers (or finds) a histogram series. A nil buckets
// slice selects DefBuckets; bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	mk := func() series {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing", name))
			}
		}
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return r.getOrCreate(name, help, "histogram", labels, mk).(*Histogram)
}

func (r *Registry) getOrCreate(name, help, typ string, labels Labels, mk func() series) series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{help: help, typ: typ, series: make(map[string]series)}
		r.fams[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, fam.typ, typ))
	}
	if s, ok := fam.series[key]; ok {
		return s
	}
	s := mk()
	fam.series[key] = s
	return s
}

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, one HELP/TYPE header each, series sorted by
// label string. Callers set the Content-Type
// "text/plain; version=0.0.4; charset=utf-8".
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := r.fams[n]
		fmt.Fprintf(w, "# HELP %s %s\n", n, escapeHelp(fam.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", n, fam.typ)
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fam.series[k].write(w, n, k)
		}
	}
}

// atomicFloat is a float64 with atomic add/store via bit-casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// renderLabels produces the canonical sorted `k="v",...` form (without
// braces) used both as the series map key and at exposition.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func wrapLabels(ls string) string {
	if ls == "" {
		return ""
	}
	return "{" + ls + "}"
}

func bucketLabels(ls, le string) string {
	if ls == "" {
		return `{le="` + le + `"}`
	}
	return "{" + ls + `,le="` + le + `"}`
}

// fmtFloat renders values the way the existing /metrics consumers (and
// tests) expect: integers without a decimal point, everything else in
// shortest-roundtrip form.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
