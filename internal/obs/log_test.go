package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var txt strings.Builder
	l, err := NewLogger(&txt, "text", "n1")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	if !strings.Contains(txt.String(), "msg=hello") || !strings.Contains(txt.String(), "node=n1") {
		t.Fatalf("text output missing fields: %q", txt.String())
	}

	var js strings.Builder
	l, err = NewLogger(&js, "json", "n2")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal([]byte(js.String()), &rec); err != nil {
		t.Fatalf("json output not json: %q: %v", js.String(), err)
	}
	if rec["msg"] != "hello" || rec["node"] != "n2" || rec["k"] != "v" {
		t.Fatalf("json fields wrong: %v", rec)
	}

	if _, err := NewLogger(&js, "xml", ""); err == nil {
		t.Fatal("unknown format should error")
	}
	if _, err := NewLogger(&js, "", ""); err != nil {
		t.Fatalf("empty format should default to text: %v", err)
	}
}
