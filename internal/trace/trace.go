// Package trace records and replays the placement-policy engine's
// per-quantum decision stream.
//
// The PR-3 engine computes a View per GC-safepoint quantum — page
// groups with heat, wear, and residency — lets its policy decide
// migration Actions, executes them, and throws the whole exchange
// away. This package captures it as a versioned ndjson trace: one
// header line carrying the run's identity (spec key, seed, policy and
// its knobs, migration cost constants), then one line per quantum.
// A recorded trace turns the emulator's most expensive asset — its
// per-quantum placement signal — into a file, so new policies are
// prototyped offline against recorded views (the cost-avoidance move
// METICULOUS-style emulators exist for) and the live engine is
// validated differentially: replaying a trace with the policy that
// recorded it must reproduce the recorded Action stream bit-identically.
// Replay uses the header's recorded knobs; ReplayWith injects a
// policy.Config per call, which is the primitive internal/autotune
// builds its knob-grid search on — one recorded trace prices every
// point of a grid.
//
// # Schema v2: delta-encoded quanta
//
// Version 1 re-serialized every resident page group in every quantum,
// so views dominated trace size (~60 KB/quantum at quick scale). v2
// compacts the stream three ways, all lossless:
//
//   - Group runs: consecutive groups with identical stats collapse to
//     one run tuple, and addresses are delta-encoded, so the hundreds
//     of equally-hot neighboring groups a real heap produces cost a
//     handful of bytes each.
//   - Delta records: a quantum's view is encoded against the same
//     process's previous view — only groups whose stats changed (or
//     that appeared) are carried, and groups that vanished become
//     tombstones.
//   - Keyframes: every KeyframeInterval records the stream restarts
//     with full views, so corruption costs at most one keyframe
//     interval and a reader can seek to any quantum from the nearest
//     keyframe in O(interval) records, not O(trace).
//
// A finished trace may end with a footer line indexing the keyframe
// boundaries by byte offset (Recorder.Close writes it); the footer is
// what internal/trace/library's random-access seeks use. Streamed or
// torn traces without a footer stay fully readable — the footer is an
// index, not part of the data.
//
// The format remains append-crash-tolerant in the same way
// internal/store's segments are: every record is one Write of one
// line, so a torn tail shows up as an unparseable final line. The
// Reader surfaces ErrCorrupt with the offending line number; because
// a corrupt line may strand the tail of a delta chain, the replay
// contract conservatively ends the valid prefix at the last complete
// keyframe interval (see Replay and DecodeAll).
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/heap"
	"repro/internal/policy"
)

// Version is the trace schema version this package writes and reads.
// Bump it when the wire format changes incompatibly; readers reject
// other versions with ErrVersion naming both sides.
const Version = 2

// DefaultKeyframeInterval is the keyframe cadence stamped into headers
// that do not choose their own: one full-view record every 16 quanta,
// deltas in between. Smaller intervals shrink the corruption blast
// radius and speed random access; larger ones compress better.
const DefaultKeyframeInterval = 16

// MaxLineBytes bounds one record line. A corrupt or adversarial input
// whose "line" never ends would otherwise be buffered in full before
// any error surfaced; the reader fails the line as ErrCorrupt once it
// passes this cap. 16 MiB is two orders of magnitude above any record
// the recorder writes.
const MaxLineBytes = 16 << 20

// Typed trace errors. The hybridmem facade re-exports them as
// ErrTraceVersion and ErrTraceCorrupt.
var (
	// ErrVersion reports a trace written by an incompatible schema
	// version.
	ErrVersion = errors.New("trace: unsupported trace version")
	// ErrCorrupt reports an unreadable trace: a missing or mangled
	// header, a garbage line, an oversized line, a delta record whose
	// chain has no keyframe, or a torn tail. The error message names
	// the offending line.
	ErrCorrupt = errors.New("trace: corrupt trace")
)

// Header is the trace's first line: the recorded run's identity plus
// everything a replayer needs to re-drive a policy against the views —
// the policy knobs (Decide takes them), the kernel's migration cost
// constants (stall estimation uses them), and the v2 codec parameters
// (group granularity and keyframe cadence). Changing it is a schema
// change: bump Version and regenerate the golden trace.
type Header struct {
	Version int `json:"version"`
	// Key is the platform's canonical spec key for the recorded run
	// (empty when the trace was recorded below the facade).
	Key string `json:"key,omitempty"`
	// The spec, spelled with the public names.
	App       string `json:"app"`
	Collector string `json:"collector,omitempty"`
	Instances int    `json:"instances"`
	Dataset   string `json:"dataset"`
	Native    bool   `json:"native,omitempty"`
	Mode      string `json:"mode"`
	Seed      uint64 `json:"seed"`
	// Policy is the recorded policy's name; the knobs below are its
	// resolved configuration.
	Policy              string  `json:"policy"`
	HotWriteLines       uint64  `json:"hotWriteLines"`
	ColdWriteLines      uint64  `json:"coldWriteLines"`
	DRAMBudgetPages     uint64  `json:"dramBudgetPages"`
	WearFactor          float64 `json:"wearFactor"`
	MaxGroupsPerQuantum int     `json:"maxGroupsPerQuantum"`
	// The recorded kernel's migration cost constants, so offline stall
	// estimates price actions the way the live run would have.
	MigrationPageCycles float64 `json:"migrationPageCycles"`
	TLBShootdownCycles  float64 `json:"tlbShootdownCycles"`
	// GroupBytes is the page-group granularity run-length encoding
	// assumes between consecutive groups (the recorder stamps
	// heap.PageGroupBytes when left zero).
	GroupBytes uint64 `json:"groupBytes"`
	// KeyframeInterval is the keyframe cadence: records at indexes
	// 0, K, 2K, ... start a fresh interval in which every process's
	// first record is a full view. Zero resolves to
	// DefaultKeyframeInterval at NewRecorder.
	KeyframeInterval int `json:"keyframeInterval"`
}

// SetPolicyConfig fills the header's policy fields from a resolved
// configuration.
func (h *Header) SetPolicyConfig(cfg policy.Config) {
	cfg = cfg.WithDefaults()
	h.Policy = cfg.Kind.String()
	h.HotWriteLines = cfg.HotWriteLines
	h.ColdWriteLines = cfg.ColdWriteLines
	h.DRAMBudgetPages = cfg.DRAMBudgetPages
	h.WearFactor = cfg.WearFactor
	h.MaxGroupsPerQuantum = cfg.MaxGroupsPerQuantum
}

// PolicyConfig reconstructs the recorded policy configuration; Replay
// hands it to the replayed policy's Decide, so a replay prices and
// truncates decisions with the recorded knobs.
func (h Header) PolicyConfig() policy.Config {
	cfg := policy.Config{
		HotWriteLines:       h.HotWriteLines,
		ColdWriteLines:      h.ColdWriteLines,
		DRAMBudgetPages:     h.DRAMBudgetPages,
		WearFactor:          h.WearFactor,
		MaxGroupsPerQuantum: h.MaxGroupsPerQuantum,
	}
	for k := policy.Static; k < policy.NumKinds; k++ {
		if k.String() == h.Policy {
			cfg.Kind = k
			break
		}
	}
	return cfg.WithDefaults()
}

// Quantum is one decoded engine quantum: the view one process's
// safepoint presented, the actions the policy emitted (post-truncation,
// exactly the list the engine executed), and the per-action executed
// outcomes. Exec aligns with Actions index-by-index and may be shorter
// when the engine stopped the quantum early on frame exhaustion.
//
// This is the in-memory form; on the wire each quantum is a compact
// delta or keyframe record (see the package comment), and the Reader
// reconstructs the full View transparently.
type Quantum struct {
	Q       uint64
	Proc    string
	View    policy.View
	Actions []policy.Action
	Exec    []policy.Exec
	// Keyframe reports that this record carried its full view on the
	// wire rather than a delta against the previous quantum.
	Keyframe bool
}

// wireRecord is the v2 on-disk form of one quantum.
type wireRecord struct {
	Q    uint64 `json:"q"`
	Proc string `json:"proc,omitempty"`
	// Key marks a keyframe: G holds the complete view. Without it the
	// record is a delta: G holds changed/new groups, RM tombstones.
	Key  bool   `json:"key,omitempty"`
	DRAM uint64 `json:"dram,omitempty"`
	PCM  uint64 `json:"pcm,omitempty"`
	// G is the run-length-encoded group list (see encodeRuns).
	G [][]int64 `json:"g,omitempty"`
	// RM lists tombstoned group addresses, delta-encoded: the first
	// entry is absolute, later entries are deltas from the previous.
	RM []int64 `json:"rm,omitempty"`
	// A holds actions as [addr, from, to] triples; X the executed
	// outcomes as [moved, stall] pairs.
	A [][]int64   `json:"a,omitempty"`
	X [][]float64 `json:"x,omitempty"`
}

// Footer is the optional last line of a finished trace: an index of
// the keyframe boundaries, letting a reader seek to quantum N through
// the nearest boundary in O(KeyframeInterval) records. It is written
// by Recorder.Close; traces cut short (streams, crashes) simply lack
// it and remain fully readable front to back.
type Footer struct {
	// Footer carries the schema version and marks the line as the
	// footer (no quantum record has this field).
	Footer int `json:"footer"`
	// Quanta is the number of quantum records in the trace.
	Quanta int `json:"quanta"`
	// Boundaries holds one [recordIndex, byteOffset] pair per keyframe
	// boundary: record indexes 0, K, 2K, ... and the file offset of
	// that record's line.
	Boundaries [][2]int64 `json:"boundaries"`
}

// footerPrefix distinguishes the footer line; the marshaller emits the
// Footer field first because it is first in the struct.
var footerPrefix = []byte(`{"footer":`)

// Parse decodes one line as a footer. It fails on anything that is not
// a footer line of this schema version.
func (f *Footer) Parse(line []byte) error {
	if !bytes.HasPrefix(bytes.TrimSpace(line), footerPrefix) {
		return fmt.Errorf("%w: not a footer line", ErrCorrupt)
	}
	if err := json.Unmarshal(line, f); err != nil {
		return fmt.Errorf("%w: bad footer: %v", ErrCorrupt, err)
	}
	if f.Footer != Version {
		return fmt.Errorf("%w: footer is version %d, this reader reads only version %d",
			ErrVersion, f.Footer, Version)
	}
	return nil
}

// ExpandedSize estimates what the decoded quanta would cost serialized
// without the v2 codec — full views, no runs, no deltas (the v1
// density). It is the denominatorless half of the compression ratio
// the replay CLIs report: compressedBytes / ExpandedSize.
func ExpandedSize(h Header, quanta []Quantum) int {
	type fullRecord struct {
		Q       uint64          `json:"q"`
		Proc    string          `json:"proc,omitempty"`
		View    policy.View     `json:"view"`
		Actions []policy.Action `json:"actions,omitempty"`
		Exec    []policy.Exec   `json:"exec,omitempty"`
	}
	hline, _ := json.Marshal(h)
	total := len(hline) + 1
	for _, q := range quanta {
		line, err := json.Marshal(fullRecord{Q: q.Q, Proc: q.Proc, View: q.View,
			Actions: q.Actions, Exec: q.Exec})
		if err != nil {
			continue
		}
		total += len(line) + 1
	}
	return total
}

// payloadEqual reports equal group stats ignoring the address.
func payloadEqual(a, b policy.GroupStat) bool {
	return a.Node == b.Node && a.Pages == b.Pages &&
		a.WriteLines == b.WriteLines && a.ReadLines == b.ReadLines &&
		a.MaxWear == b.MaxWear
}

// encodeRuns run-length-encodes a group list. Each run is
//
//	[addrDelta, count, node, pages, writeLines, readLines, maxWear]
//
// with trailing zero fields trimmed (never below the first four).
// addrDelta is relative to the end of the previous run (previous run's
// last address + groupBytes; zero for adjacent runs) — the first run's
// delta is the absolute address. A run covers count groups at
// consecutive groupBytes-spaced addresses sharing one payload.
func encodeRuns(groups []policy.GroupStat, groupBytes uint64) [][]int64 {
	if len(groups) == 0 {
		return nil
	}
	gb := int64(groupBytes)
	runs := make([][]int64, 0, 8)
	prevEnd := int64(0)
	for i := 0; i < len(groups); {
		g := groups[i]
		j := i + 1
		for j < len(groups) && payloadEqual(groups[j], g) &&
			groups[j].Addr == groups[j-1].Addr+groupBytes {
			j++
		}
		run := []int64{int64(g.Addr) - prevEnd, int64(j - i), int64(g.Node),
			int64(g.Pages), int64(g.WriteLines), int64(g.ReadLines), int64(g.MaxWear)}
		for len(run) > 4 && run[len(run)-1] == 0 {
			run = run[:len(run)-1]
		}
		runs = append(runs, run)
		prevEnd = int64(groups[j-1].Addr) + gb
		i = j
	}
	return runs
}

// decodeRuns expands run-length-encoded groups. It is the exact
// inverse of encodeRuns for any input, including unsorted group lists
// (deltas may be negative).
func decodeRuns(runs [][]int64, groupBytes uint64) ([]policy.GroupStat, error) {
	if len(runs) == 0 {
		return nil, nil
	}
	gb := int64(groupBytes)
	var groups []policy.GroupStat
	prevEnd := int64(0)
	for _, run := range runs {
		if len(run) < 4 || len(run) > 7 {
			return nil, fmt.Errorf("group run has %d fields, want 4..7", len(run))
		}
		count := run[1]
		if count <= 0 {
			return nil, fmt.Errorf("group run count %d", count)
		}
		at := func(i int) int64 {
			if i < len(run) {
				return run[i]
			}
			return 0
		}
		addr := prevEnd + run[0]
		for k := int64(0); k < count; k++ {
			groups = append(groups, policy.GroupStat{
				Addr:       uint64(addr + k*gb),
				Node:       int(run[2]),
				Pages:      int(run[3]),
				WriteLines: uint64(at(4)),
				ReadLines:  uint64(at(5)),
				MaxWear:    uint32(at(6)),
			})
		}
		prevEnd = addr + count*gb
	}
	return groups, nil
}

// encodeAddrs delta-encodes an ascending address list (first absolute,
// then deltas).
func encodeAddrs(addrs []uint64) []int64 {
	if len(addrs) == 0 {
		return nil
	}
	out := make([]int64, len(addrs))
	prev := int64(0)
	for i, a := range addrs {
		out[i] = int64(a) - prev
		prev = int64(a)
	}
	return out
}

// decodeAddrs inverts encodeAddrs.
func decodeAddrs(deltas []int64) []uint64 {
	if len(deltas) == 0 {
		return nil
	}
	out := make([]uint64, len(deltas))
	prev := int64(0)
	for i, d := range deltas {
		prev += d
		out[i] = uint64(prev)
	}
	return out
}

// encodeActions packs actions as [addr, from, to] triples.
func encodeActions(actions []policy.Action) [][]int64 {
	if len(actions) == 0 {
		return nil
	}
	out := make([][]int64, len(actions))
	for i, a := range actions {
		out[i] = []int64{int64(a.Addr), int64(a.From), int64(a.To)}
	}
	return out
}

// decodeActions inverts encodeActions.
func decodeActions(in [][]int64) ([]policy.Action, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]policy.Action, len(in))
	for i, t := range in {
		if len(t) != 3 {
			return nil, fmt.Errorf("action %d has %d fields, want 3", i, len(t))
		}
		out[i] = policy.Action{Addr: uint64(t[0]), From: int(t[1]), To: int(t[2])}
	}
	return out, nil
}

// encodeExec packs executed outcomes as [moved, stall] pairs.
func encodeExec(exec []policy.Exec) [][]float64 {
	if len(exec) == 0 {
		return nil
	}
	out := make([][]float64, len(exec))
	for i, e := range exec {
		out[i] = []float64{float64(e.Moved), e.Stall}
	}
	return out
}

// decodeExec inverts encodeExec.
func decodeExec(in [][]float64) ([]policy.Exec, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]policy.Exec, len(in))
	for i, p := range in {
		if len(p) != 2 {
			return nil, fmt.Errorf("exec %d has %d fields, want 2", i, len(p))
		}
		out[i] = policy.Exec{Moved: int(p[0]), Stall: p[1]}
	}
	return out, nil
}

// Recorder streams a compacted trace: the header at construction, one
// line per observed quantum (keyframe or delta against the same
// process's previous view), and — if Close is called — a footer line
// indexing the keyframe boundaries. It implements policy.Tap, so
// attaching it to an engine via SetTap records the run. Each record is
// written with a single Write call — a crash mid-append leaves a torn
// tail the Reader reports, never a silently mixed line.
//
// Write failures latch: the first error sticks, later quanta are
// dropped, and Err returns it so the run can surface a broken sink
// once instead of once per quantum.
type Recorder struct {
	mu         sync.Mutex
	w          io.Writer
	interval   int
	groupBytes uint64
	quanta     uint64
	off        int64 // bytes written so far
	boundaries [][2]int64
	prev       map[string][]policy.GroupStat // last view per process
	lastIvl    map[string]int                // interval of each process's last record
	closed     bool
	err        error
}

// NewRecorder writes the header line and returns the recorder. The
// header's Version is stamped by the recorder, as are GroupBytes
// (heap.PageGroupBytes) and KeyframeInterval (DefaultKeyframeInterval)
// when the caller leaves them zero; callers fill the rest.
func NewRecorder(w io.Writer, h Header) (*Recorder, error) {
	h.Version = Version
	if h.GroupBytes == 0 {
		h.GroupBytes = heap.PageGroupBytes
	}
	if h.KeyframeInterval <= 0 {
		h.KeyframeInterval = DefaultKeyframeInterval
	}
	line, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding header: %w", err)
	}
	n, err := w.Write(append(line, '\n'))
	if err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Recorder{
		w:          w,
		interval:   h.KeyframeInterval,
		groupBytes: h.GroupBytes,
		off:        int64(n),
		prev:       map[string][]policy.GroupStat{},
		lastIvl:    map[string]int{},
	}, nil
}

// OnQuantum records one engine quantum; it implements policy.Tap.
func (r *Recorder) OnQuantum(proc string, v policy.View, actions []policy.Action, exec []policy.Exec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.closed {
		return
	}

	idx := int(r.quanta)
	ivl := idx / r.interval
	last, seen := r.lastIvl[proc]
	keyframe := !seen || last != ivl

	rec := wireRecord{
		Q:    v.Quantum,
		Proc: proc,
		DRAM: v.DRAMPages,
		PCM:  v.PCMPages,
		A:    encodeActions(actions),
		X:    encodeExec(exec),
	}
	if keyframe {
		rec.Key = true
		rec.G = encodeRuns(v.Groups, r.groupBytes)
	} else {
		rec.G, rec.RM = diffViews(r.prev[proc], v.Groups, r.groupBytes)
	}

	line, err := json.Marshal(rec)
	if err != nil {
		r.err = fmt.Errorf("trace: encoding quantum %d: %w", v.Quantum, err)
		return
	}
	if idx%r.interval == 0 {
		r.boundaries = append(r.boundaries, [2]int64{int64(idx), r.off})
	}
	n, err := r.w.Write(append(line, '\n'))
	r.off += int64(n)
	if err != nil {
		r.err = fmt.Errorf("trace: writing quantum %d: %w", v.Quantum, err)
		return
	}
	r.lastIvl[proc] = ivl
	// Keep a private copy: the engine may reuse its view buffers.
	r.prev[proc] = append([]policy.GroupStat(nil), v.Groups...)
	r.quanta++
}

// diffViews computes the delta from prev to cur: run-encoded changed
// or new groups, and tombstones for groups no longer present.
func diffViews(prev, cur []policy.GroupStat, groupBytes uint64) (g [][]int64, rm []int64) {
	old := make(map[uint64]policy.GroupStat, len(prev))
	for _, p := range prev {
		old[p.Addr] = p
	}
	var changed []policy.GroupStat
	seen := make(map[uint64]bool, len(cur))
	for _, c := range cur {
		seen[c.Addr] = true
		if o, ok := old[c.Addr]; !ok || !payloadEqual(o, c) {
			changed = append(changed, c)
		}
	}
	var removed []uint64
	for _, p := range prev {
		if !seen[p.Addr] {
			removed = append(removed, p.Addr)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return encodeRuns(changed, groupBytes), encodeAddrs(removed)
}

// Quanta returns the number of quantum records written so far.
func (r *Recorder) Quanta() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quanta
}

// Err returns the latched write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close finishes the trace by appending the footer index line. It does
// not close the underlying writer. Close is idempotent; a recorder
// with a latched write error skips the footer and returns that error
// (the trace is already torn — a footer would not mend it).
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.err != nil {
		return r.err
	}
	f := Footer{Footer: Version, Quanta: int(r.quanta), Boundaries: r.boundaries}
	line, err := json.Marshal(f)
	if err != nil {
		r.err = fmt.Errorf("trace: encoding footer: %w", err)
		return r.err
	}
	n, werr := r.w.Write(append(line, '\n'))
	r.off += int64(n)
	if werr != nil {
		r.err = fmt.Errorf("trace: writing footer: %w", werr)
	}
	return r.err
}

// Reader decodes a trace stream: Header first, then Next per quantum
// record until io.EOF (a footer line, when present, also ends the
// stream cleanly and becomes available via Footer). Delta records are
// reconstructed into full views transparently. Corruption — a garbage
// line, an oversized line, a torn tail, a delta with no keyframe to
// chain from — surfaces as ErrCorrupt naming the 1-based line number.
// Because corruption may strand the tail of a delta chain, consumers
// that replay the prefix must stop at the last complete keyframe
// interval; Replay and DecodeAll do so automatically.
type Reader struct {
	br      *bufio.Reader
	line    int
	off     int64 // bytes consumed through the last returned line
	lineOff int64 // offset of the last returned line's first byte
	hdr     Header
	hdrDone bool
	records int
	prev    map[string][]policy.GroupStat
	lastIvl map[string]int
	footer  *Footer
	err     error
	sawEOF  bool
	maxLine int
}

// NewReader wraps an ndjson trace stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		br:      bufio.NewReader(r),
		prev:    map[string][]policy.GroupStat{},
		lastIvl: map[string]int{},
		maxLine: MaxLineBytes,
	}
}

// NewSegmentReader resumes decoding at a keyframe boundary of a trace
// whose header is already known — the random-access path: seek the
// underlying reader to a boundary byte offset from the trace's footer
// index, then read forward. Record indexes restart at zero, which is
// sound because boundaries fall at whole keyframe intervals.
func NewSegmentReader(h Header, src io.Reader) *Reader {
	r := NewReader(src)
	r.hdr = h
	r.hdrDone = true
	return r
}

// readLine returns the next raw line including its trailing newline
// (or the unterminated tail of the stream), io.EOF at end of input.
// Lines longer than maxLine fail as ErrCorrupt without buffering the
// remainder.
func (r *Reader) readLine() ([]byte, error) {
	var buf []byte
	for {
		frag, err := r.br.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > r.maxLine {
			return nil, fmt.Errorf("%w: line %d exceeds %d bytes", ErrCorrupt, r.line+1, r.maxLine)
		}
		switch err {
		case nil:
			return buf, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) == 0 {
				return nil, io.EOF
			}
			return buf, nil
		default:
			return nil, fmt.Errorf("%w: reading line %d: %v", ErrCorrupt, r.line+1, err)
		}
	}
}

// next returns the next non-blank line (1-based numbering), io.EOF at
// a clean end. A final line without a trailing newline is returned
// as-is: if it parses it was a complete record, and if not the parse
// failure reports it as the torn tail it is.
func (r *Reader) next() ([]byte, error) {
	for {
		start := r.off
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		r.off += int64(len(line))
		r.line++
		if len(bytes.TrimSpace(line)) == 0 {
			continue // blank separator lines are tolerated, but numbered
		}
		r.lineOff = start
		return line, nil
	}
}

// Header reads and validates the trace header (idempotently).
func (r *Reader) Header() (Header, error) {
	if r.hdrDone {
		return r.hdr, r.err
	}
	r.hdrDone = true
	line, err := r.next()
	if err == io.EOF {
		r.err = fmt.Errorf("%w: empty trace (missing header)", ErrCorrupt)
		return Header{}, r.err
	}
	if err != nil {
		r.err = err
		return Header{}, r.err
	}
	if bytes.HasPrefix(line, footerPrefix) {
		r.err = fmt.Errorf("%w: line %d: footer where the header belongs", ErrCorrupt, r.line)
		return Header{}, r.err
	}
	var h Header
	if jerr := json.Unmarshal(line, &h); jerr != nil {
		r.err = fmt.Errorf("%w: line %d: bad header: %v", ErrCorrupt, r.line, jerr)
		return Header{}, r.err
	}
	if h.Version != Version {
		r.err = fmt.Errorf("%w: trace is version %d, this reader reads only version %d",
			ErrVersion, h.Version, Version)
		return Header{}, r.err
	}
	if h.GroupBytes == 0 || h.KeyframeInterval <= 0 {
		r.err = fmt.Errorf("%w: line %d: v2 header missing groupBytes/keyframeInterval", ErrCorrupt, r.line)
		return Header{}, r.err
	}
	r.hdr = h
	return h, nil
}

// Next returns the next quantum record with its view fully
// reconstructed, io.EOF at a clean end of trace (including at the
// footer), or ErrCorrupt (with the line number) at a mangled line. The
// first error latches: further calls keep returning it.
func (r *Reader) Next() (Quantum, error) {
	if !r.hdrDone {
		if _, err := r.Header(); err != nil {
			return Quantum{}, err
		}
	}
	if r.err != nil {
		return Quantum{}, r.err
	}
	if r.sawEOF {
		return Quantum{}, io.EOF
	}
	line, err := r.next()
	if err == io.EOF {
		r.sawEOF = true
		return Quantum{}, io.EOF
	}
	if err != nil {
		r.err = err
		return Quantum{}, r.err
	}
	if bytes.HasPrefix(line, footerPrefix) {
		var f Footer
		if jerr := json.Unmarshal(line, &f); jerr != nil {
			r.err = fmt.Errorf("%w: line %d: bad footer: %v", ErrCorrupt, r.line, jerr)
			return Quantum{}, r.err
		}
		r.footer = &f
		r.sawEOF = true
		return Quantum{}, io.EOF
	}
	var rec wireRecord
	if jerr := json.Unmarshal(line, &rec); jerr != nil {
		r.err = fmt.Errorf("%w: line %d: bad quantum record: %v", ErrCorrupt, r.line, jerr)
		return Quantum{}, r.err
	}
	q, derr := r.reconstruct(rec)
	if derr != nil {
		r.err = fmt.Errorf("%w: line %d: %v", ErrCorrupt, r.line, derr)
		return Quantum{}, r.err
	}
	r.records++
	return q, nil
}

// reconstruct turns a wire record into a full Quantum, maintaining the
// per-process delta chains and enforcing the keyframe cadence: every
// process's first record in a keyframe interval must be a keyframe, or
// random access through the footer index would misreconstruct.
func (r *Reader) reconstruct(rec wireRecord) (Quantum, error) {
	ivl := r.records / r.hdr.KeyframeInterval
	last, seen := r.lastIvl[rec.Proc]
	if !rec.Key && (!seen || last != ivl) {
		return Quantum{}, fmt.Errorf("delta record for %q with no keyframe in its interval", rec.Proc)
	}

	var groups []policy.GroupStat
	if rec.Key {
		g, err := decodeRuns(rec.G, r.hdr.GroupBytes)
		if err != nil {
			return Quantum{}, err
		}
		groups = g
	} else {
		changed, err := decodeRuns(rec.G, r.hdr.GroupBytes)
		if err != nil {
			return Quantum{}, err
		}
		groups = applyDelta(r.prev[rec.Proc], changed, decodeAddrs(rec.RM))
	}
	r.prev[rec.Proc] = groups
	r.lastIvl[rec.Proc] = ivl

	actions, err := decodeActions(rec.A)
	if err != nil {
		return Quantum{}, err
	}
	exec, err := decodeExec(rec.X)
	if err != nil {
		return Quantum{}, err
	}
	return Quantum{
		Q:    rec.Q,
		Proc: rec.Proc,
		View: policy.View{
			Groups:    groups,
			DRAMPages: rec.DRAM,
			PCMPages:  rec.PCM,
			Quantum:   rec.Q,
		},
		Actions:  actions,
		Exec:     exec,
		Keyframe: rec.Key,
	}, nil
}

// applyDelta merges changed groups and tombstones into the previous
// view, returning a fresh address-sorted group list.
func applyDelta(prev, changed []policy.GroupStat, removed []uint64) []policy.GroupStat {
	if len(changed) == 0 && len(removed) == 0 {
		return prev
	}
	merged := make(map[uint64]policy.GroupStat, len(prev)+len(changed))
	for _, g := range prev {
		merged[g.Addr] = g
	}
	for _, g := range changed {
		merged[g.Addr] = g
	}
	for _, a := range removed {
		delete(merged, a)
	}
	if len(merged) == 0 {
		return nil
	}
	out := make([]policy.GroupStat, 0, len(merged))
	for _, g := range merged {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Line returns the number of the last line read (1-based; 0 before any
// read), which for a just-returned error is the offending line.
func (r *Reader) Line() int { return r.line }

// Records returns the number of quantum records successfully returned
// so far.
func (r *Reader) Records() int { return r.records }

// LastRecordOffset returns the byte offset of the first byte of the
// most recently returned line — for the record just decoded, the
// offset a footer boundary would carry.
func (r *Reader) LastRecordOffset() int64 { return r.lineOff }

// Footer returns the trace's footer index if the stream ended with
// one. Only meaningful after Next has returned io.EOF.
func (r *Reader) Footer() (Footer, bool) {
	if r.footer == nil {
		return Footer{}, false
	}
	return *r.footer, true
}
