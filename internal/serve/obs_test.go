package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	hybridmem "repro"
	"repro/internal/obs"
)

// expoFamily is one parsed metric family from a /metrics dump.
type expoFamily struct {
	typ     string
	help    bool
	samples []expoSample
}

type expoSample struct {
	labels string // raw {..} block, "" when unlabelled
	value  float64
}

// parseExposition parses a Prometheus 0.0.4 text dump, failing the
// test when a sample appears before its family's HELP and TYPE lines
// (the ordering the format requires).
func parseExposition(t *testing.T, body string) map[string]*expoFamily {
	t.Helper()
	fams := map[string]*expoFamily{}
	helped := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if fams[name] != nil {
				t.Errorf("duplicate TYPE line for %s", name)
			}
			fams[name] = &expoFamily{typ: typ, help: helped[name]}
			continue
		}
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("malformed sample line %q", line)
			}
			labels = line[i : j+1]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", sc.Text())
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", sc.Text(), err)
		}
		family := name
		if fams[family] == nil {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && fams[base] != nil {
					family = base
					break
				}
			}
		}
		fam := fams[family]
		if fam == nil {
			t.Fatalf("sample %q precedes its TYPE line", sc.Text())
			continue
		}
		if !fam.help {
			t.Errorf("family %s has TYPE but no HELP", family)
		}
		fam.samples = append(fam.samples, expoSample{labels: labels, value: v})
	}
	return fams
}

// TestMetricsExposition checks the /metrics page as a scraper would:
// correct content type, HELP/TYPE before every series, the latency
// histograms present with node labels and monotone cumulative buckets,
// and build/runtime identity series.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, hybridmem.WithStore(t.TempDir()))
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	fams := parseExposition(t, sb.String())

	for _, name := range []string{
		"hybridserved_cache_misses_total", "hybridserved_requests_total",
		"hybridserved_store_records", "fabric_forwarded_total",
		"hybridserved_run_seconds", "hybridserved_sweep_seconds",
		"hybridserved_admission_wait_seconds",
		"hybridmem_emulate_seconds", "hybridmem_store_lookup_seconds",
		"hybridserved_build_info", "go_goroutines", "go_heap_alloc_bytes",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	for name, fam := range fams {
		if len(fam.samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}

	// Every hybridserved/hybridmem series carries the node label.
	for name, fam := range fams {
		if !strings.HasPrefix(name, "hybridserved_") && !strings.HasPrefix(name, "hybridmem_") {
			continue
		}
		for _, s := range fam.samples {
			if !strings.Contains(s.labels, `node="local"`) {
				t.Errorf("%s sample %q lacks node label", name, s.labels)
			}
		}
	}

	bi := fams["hybridserved_build_info"]
	if bi == nil || bi.typ != "gauge" {
		t.Fatalf("build_info family = %+v", bi)
	}
	if s := bi.samples[0]; s.value != 1 || !strings.Contains(s.labels, `goversion="go`) {
		t.Errorf("build_info sample = %+v", s)
	}

	// The run landed in the latency histogram: cumulative buckets are
	// monotone and the +Inf bucket equals the count.
	run := fams["hybridserved_run_seconds"]
	if run == nil || run.typ != "histogram" {
		t.Fatalf("run_seconds family = %+v", run)
	}
	var prev float64
	var inf, count float64
	for _, s := range run.samples {
		switch {
		case strings.Contains(s.labels, `le="`):
			if s.value < prev {
				t.Errorf("bucket %q = %g below previous %g", s.labels, s.value, prev)
			}
			prev = s.value
			if strings.Contains(s.labels, `le="+Inf"`) {
				inf = s.value
			}
		case true:
			// _sum then _count follow the buckets; count is last.
			count = s.value
		}
	}
	if inf != count || count != 1 {
		t.Errorf("run_seconds +Inf bucket = %g, count = %g, want both 1", inf, count)
	}
}

// TestSpansEndpoint checks GET /v1/spans: a run leaves a span tree in
// the ring (run and emulate sharing one trace), limit caps the stream,
// and a bad limit is rejected.
func TestSpansEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d", resp.StatusCode)
	}

	spans := getSpans(t, ts.URL)
	var run, emulate *obs.SpanRecord
	for i, sp := range spans {
		switch sp.Name {
		case "run":
			run = &spans[i]
		case "emulate":
			emulate = &spans[i]
		}
	}
	if run == nil || emulate == nil {
		t.Fatalf("spans missing run/emulate: %+v", spans)
	}
	if run.Trace == "" || emulate.Trace != run.Trace {
		t.Errorf("emulate trace %q does not join run trace %q", emulate.Trace, run.Trace)
	}
	if run.Node != "local" {
		t.Errorf("run span node = %q", run.Node)
	}

	req, err := http.Get(ts.URL + "/v1/spans?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer req.Body.Close()
	var n int
	sc := bufio.NewScanner(req.Body)
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Errorf("limit=1 returned %d spans", n)
	}

	bad, err := http.Get(ts.URL + "/v1/spans?limit=x")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=x -> %d, want 400", bad.StatusCode)
	}
}

// getSpans drains GET /v1/spans into records.
func getSpans(t *testing.T, url string) []obs.SpanRecord {
	t.Helper()
	resp, err := http.Get(url + "/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans = %d", resp.StatusCode)
	}
	var out []obs.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// TestDistributedTraceByteIdenticalResult is the acceptance test for
// the telemetry subsystem: a run forwarded across a 3-node fabric
// yields one trace id whose tree spans the entry node's dispatch, the
// owner node's execution, and the engine's per-quantum work — and the
// traced run's Result is byte-identical to an uninstrumented run of
// the same spec.
func TestDistributedTraceByteIdenticalResult(t *testing.T) {
	nodes := startCluster(t, 3, nil)

	wire := RunRequest{App: "PR", Collector: "KG-N", Policy: "write-threshold"}
	ref := hybridmem.New(hybridmem.WithScale(hybridmem.Quick), hybridmem.WithPolicy(hybridmem.WriteThreshold))
	kind, err := hybridmem.ParseCollector("KG-N")
	if err != nil {
		t.Fatal(err)
	}
	spec := hybridmem.NormalizeSpec(hybridmem.RunSpec{AppName: "PR", Collector: kind})
	key := ref.SpecKey(spec)

	ownerURL := nodes[0].srv.fab.Owner(key)
	var entry, owner *clusterNode
	for _, n := range nodes {
		if n.url == ownerURL {
			owner = n
		} else if entry == nil {
			entry = n
		}
	}
	if entry == nil || owner == nil {
		t.Fatalf("ring did not place owner among the nodes: %q", ownerURL)
	}

	resp := postJSON(t, entry.url+"/v1/run", wire)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d", resp.StatusCode)
	}
	var rec struct {
		Key    string           `json:"key"`
		Result hybridmem.Result `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Key != key {
		t.Fatalf("key = %s, want %s (telemetry must not change spec identity)", rec.Key, key)
	}
	if got := metricValue(t, entry.url, "fabric_forwarded_total"); got != 1 {
		t.Fatalf("entry forwarded %d runs, want 1", got)
	}

	// The instrumented, forwarded run's Result encodes byte-for-byte
	// identically to a plain local run with no telemetry attached.
	want, err := ref.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := hybridmem.EncodeResult(want)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := hybridmem.EncodeResult(rec.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Errorf("instrumented result differs from uninstrumented:\n got %s\nwant %s", gotBytes, wantBytes)
	}

	// One distributed trace: the entry's forward span continues into
	// the owner's run span via the traceparent header, and the owner's
	// quantum work hangs off the same trace.
	entrySpans := getSpans(t, entry.url)
	var forward *obs.SpanRecord
	for i, sp := range entrySpans {
		if sp.Name == "fabric.forward" {
			forward = &entrySpans[i]
		}
	}
	if forward == nil {
		t.Fatalf("entry node recorded no fabric.forward span: %+v", entrySpans)
	}
	if forward.Attrs["owner"] != ownerURL {
		t.Errorf("forward owner attr = %q, want %q", forward.Attrs["owner"], ownerURL)
	}
	trace := forward.Trace
	var entryRun *obs.SpanRecord
	for i, sp := range entrySpans {
		if sp.Name == "run" && sp.Trace == trace {
			entryRun = &entrySpans[i]
		}
	}
	if entryRun == nil {
		t.Fatalf("entry run span missing from trace %s", trace)
	}
	if forward.Parent != entryRun.Span {
		t.Errorf("forward parent = %s, want entry run span %s", forward.Parent, entryRun.Span)
	}

	ownerSpans := getSpans(t, owner.url)
	var ownerRun, emulate *obs.SpanRecord
	quanta := 0
	for i, sp := range ownerSpans {
		if sp.Trace != trace {
			continue
		}
		switch sp.Name {
		case "run":
			ownerRun = &ownerSpans[i]
		case "emulate":
			emulate = &ownerSpans[i]
		case "policy.quantum":
			quanta++
		}
	}
	if ownerRun == nil {
		t.Fatalf("owner recorded no run span in trace %s: %+v", trace, ownerSpans)
	}
	if ownerRun.Parent != forward.Span {
		t.Errorf("owner run parent = %s, want forward span %s (traceparent not propagated)", ownerRun.Parent, forward.Span)
	}
	if ownerRun.Node != ownerURL {
		t.Errorf("owner run node = %q, want %q", ownerRun.Node, ownerURL)
	}
	if emulate == nil {
		t.Errorf("owner recorded no emulate span in trace %s", trace)
	}
	if quanta < 1 {
		t.Errorf("trace %s holds no policy.quantum spans", trace)
	}
}
