package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", Labels{"node": "a"})
	c.Add(3)
	c.Inc()
	g := r.Gauge("queue_depth", "Queued requests.", Labels{"node": "a"})
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("up", "Always one.", nil, func() float64 { return 1 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Requests served.\n",
		"# TYPE requests_total counter\n",
		"requests_total{node=\"a\"} 4\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth{node=\"a\"} 5\n",
		"up 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if c.Value() != 4 || g.Value() != 5 {
		t.Fatalf("Value: counter=%v gauge=%v", c.Value(), g.Value())
	}
}

func TestCounterDropsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x", nil)
	c.Add(2)
	c.Add(-5)
	if c.Value() != 2 {
		t.Fatalf("negative Add not dropped: %v", c.Value())
	}
}

func TestSameSeriesReused(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "dup", Labels{"node": "x"})
	b := r.Counter("dup_total", "dup", Labels{"node": "x"})
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	other := r.Counter("dup_total", "dup", Labels{"node": "y"})
	if other == a {
		t.Fatal("different labels should be a distinct series")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if n := strings.Count(sb.String(), "# TYPE dup_total"); n != 1 {
		t.Fatalf("want one TYPE line for the family, got %d", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter should panic")
		}
	}()
	r.Gauge("m", "m", nil)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", Labels{"node": "a"}, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{node="a",le="0.01"} 1`,
		`lat_seconds_bucket{node="a",le="0.1"} 3`,
		`lat_seconds_bucket{node="a",le="1"} 4`,
		`lat_seconds_bucket{node="a",le="+Inf"} 5`,
		`lat_seconds_count{node="a"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be monotonically non-decreasing.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = n
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", nil, []float64{1, 2})
	h.Observe(1) // le="1" means v <= 1
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("observation at boundary not counted in its bucket:\n%s", sb.String())
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a", "a", nil).Add(1)
	r.Counter("a", "a", nil).Inc()
	r.Gauge("b", "b", nil).Set(2)
	r.Gauge("b", "b", nil).Add(1)
	r.Histogram("c", "c", nil, nil).Observe(3)
	r.CounterFunc("d", "d", nil, func() float64 { return 0 })
	r.GaugeFunc("e", "e", nil, func() float64 { return 0 })
	r.WritePrometheus(&strings.Builder{})
	RegisterGoRuntime(r, nil)
	if r.Counter("a", "a", nil).Value() != 0 || r.Histogram("c", "c", nil, nil).Count() != 0 {
		t.Fatal("nil metrics should read zero")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "esc", Labels{"k": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("labels not escaped:\n%s", sb.String())
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "cc", nil)
	h := r.Histogram("ch_seconds", "ch", nil, []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestGoRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r, Labels{"node": "n1"})
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`go_goroutines{node="n1"}`,
		`go_heap_alloc_bytes{node="n1"}`,
		"# TYPE go_gc_pause_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q in:\n%s", want, out)
		}
	}
}
