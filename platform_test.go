package hybridmem

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sweepSpecs is the acceptance grid: 3 apps x all 8 collectors
// (3 apps x 3 collectors under the race detector, where each run
// costs ~10x more).
func sweepSpecs() []RunSpec {
	sweep := NewSweep("lusearch", "xalan", "pmd")
	if raceEnabled {
		sweep.Collectors(PCMOnly, KGN, KGW)
	} else {
		sweep.Collectors(Collectors()...)
	}
	return sweep.Specs()
}

func TestParseCollector(t *testing.T) {
	for _, k := range Collectors() {
		got, err := ParseCollector(k.String())
		if err != nil || got != k {
			t.Errorf("ParseCollector(%q) = %v, %v", k.String(), got, err)
		}
	}
	// Case- and punctuation-insensitive.
	for name, want := range map[string]Collector{
		"kgw":      KGW,
		"kg-n+loo": KGNLOO,
		"KGNLOO":   KGNLOO,
		"pcmonly":  PCMOnly,
		"KG_B":     KGB,
	} {
		if got, err := ParseCollector(name); err != nil || got != want {
			t.Errorf("ParseCollector(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseCollector("zgc"); !errors.Is(err, ErrUnknownCollector) {
		t.Errorf("ParseCollector(zgc) err = %v, want ErrUnknownCollector", err)
	}
}

func TestParseScaleDatasetMode(t *testing.T) {
	for name, want := range map[string]Scale{"quick": Quick, "Std": Std, "FULL": Full} {
		if got, err := ParseScale(name); err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); !errors.Is(err, ErrUnknownScale) {
		t.Errorf("ParseScale(huge) err = %v", err)
	}
	if ds, err := ParseDataset("large"); err != nil || ds != Large {
		t.Errorf("ParseDataset(large) = %v, %v", ds, err)
	}
	if _, err := ParseDataset("huge"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("ParseDataset(huge) err = %v", err)
	}
	for name, want := range map[string]Mode{"emul": Emulation, "sim": Simulation, "Simulation": Simulation} {
		if got, err := ParseMode(name); err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMode("fpga"); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("ParseMode(fpga) err = %v", err)
	}
}

func TestRunTypedErrors(t *testing.T) {
	p := New(WithScale(Quick))
	ctx := context.Background()
	if _, err := p.Run(ctx, RunSpec{AppName: "nonsense", Collector: KGW}); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("unknown app err = %v, want ErrUnknownApp", err)
	}
	if _, err := p.Run(ctx, RunSpec{AppName: "pmd", Collector: Collector(99)}); !errors.Is(err, ErrUnknownCollector) {
		t.Errorf("bad collector err = %v, want ErrUnknownCollector", err)
	}
	if st := p.CacheStats(); st.Entries != 0 {
		t.Errorf("failed runs must not be cached: %+v", st)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	p := New(WithScale(Quick))
	res, err := p.Run(context.Background(), RunSpec{AppName: "pmd", Collector: KGW})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Errorf("JSON round trip changed the result:\n got %+v\nwant %+v", back, res)
	}
	if _, err := DecodeResult([]byte("{")); err == nil {
		t.Error("DecodeResult must reject malformed JSON")
	}
}

func TestSweepSpecs(t *testing.T) {
	specs := NewSweep("lusearch", "pmd").
		Collectors(PCMOnly, KGW).
		Instances(1, 4).
		Datasets(Default, Large).Specs()
	if len(specs) != 2*2*2*2 {
		t.Fatalf("sweep size = %d, want 16", len(specs))
	}
	// App-major, fixed order.
	if specs[0].AppName != "lusearch" || specs[0].Collector != PCMOnly ||
		specs[0].Instances != 1 || specs[0].Dataset != Default {
		t.Errorf("first spec = %+v", specs[0])
	}
	last := specs[len(specs)-1]
	if last.AppName != "pmd" || last.Collector != KGW || last.Instances != 4 || last.Dataset != Large {
		t.Errorf("last spec = %+v", last)
	}

	// Defaults: full registry x all collectors x 1 instance.
	if n := len(NewSweep().Specs()); n != 15*8 {
		t.Errorf("default sweep size = %d, want 120", n)
	}
	// Native collapses the collector dimension.
	native := NewSweep("PR", "CC").Native().Specs()
	if len(native) != 2 || !native[0].Native {
		t.Errorf("native sweep = %+v", native)
	}
}

// TestRunBatchMatchesSerial is the acceptance determinism check: a
// parallel batch over 3 apps x 8 collectors must produce bit-identical
// Results to the same specs run serially with equal seeds.
func TestRunBatchMatchesSerial(t *testing.T) {
	specs := sweepSpecs()
	ctx := context.Background()

	serial := New(WithScale(Quick), WithSeed(7))
	want := make([]Result, len(specs))
	for i, s := range specs {
		res, err := serial.Run(ctx, s)
		if err != nil {
			t.Fatalf("serial %v: %v", s, err)
		}
		want[i] = res
	}

	parallel := New(WithScale(Quick), WithSeed(7))
	got, err := parallel.RunBatch(ctx, specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("spec %d (%s/%s): parallel result differs from serial",
				i, specs[i].AppName, specs[i].Collector)
		}
	}
}

func TestRunBatchCacheHits(t *testing.T) {
	specs := sweepSpecs()
	p := New(WithScale(Quick))
	ctx := context.Background()
	first, err := p.RunBatch(ctx, specs...)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.RunBatch(ctx, specs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached batch results differ from the originals")
	}
	st := p.CacheStats()
	if st.Entries != len(specs) {
		t.Errorf("entries = %d, want %d", st.Entries, len(specs))
	}
	if st.Misses != uint64(len(specs)) || st.Hits < uint64(len(specs)) {
		t.Errorf("cache stats = %+v, want %d misses and >= %d hits", st, len(specs), len(specs))
	}
}

// TestRunConcurrentSingleFlight checks that concurrent identical Run
// calls share one execution.
func TestRunConcurrentSingleFlight(t *testing.T) {
	p := New(WithScale(Quick))
	spec := RunSpec{AppName: "pmd", Collector: KGW}
	ctx := context.Background()
	const callers = 8
	results := make([]Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.Run(ctx, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("caller %d saw a different result", i)
		}
	}
	if st := p.CacheStats(); st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v, want a single execution", st)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	p := New(WithScale(Quick), WithParallelism(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	start := time.Now()
	_, err := p.RunBatch(ctx, NewSweep(Apps()...).Specs()...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 120 specs at ~100ms each would take ~6s on 2 workers; a prompt
	// cancellation returns orders of magnitude faster.
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled batch took %v", d)
	}
	if st := p.CacheStats(); st.Entries != 0 {
		t.Errorf("cancelled batch must not populate the cache: %+v", st)
	}
}

// TestRunBatchSpeedup is the acceptance wall-clock check: on >= 4
// cores the 3x8 sweep through RunBatch must be at least 2x faster than
// the same specs run serially. Fresh platforms on both sides keep the
// comparison cache-free.
func TestRunBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores, have %d", runtime.NumCPU())
	}
	specs := sweepSpecs()
	ctx := context.Background()

	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		serial := New(WithScale(Quick), WithParallelism(1))
		t0 := time.Now()
		if _, err := serial.RunBatch(ctx, specs...); err != nil {
			t.Fatal(err)
		}
		serialD := time.Since(t0)

		parallel := New(WithScale(Quick))
		t0 = time.Now()
		if _, err := parallel.RunBatch(ctx, specs...); err != nil {
			t.Fatal(err)
		}
		parallelD := time.Since(t0)

		speedup := serialD.Seconds() / parallelD.Seconds()
		if speedup > best {
			best = speedup
		}
		t.Logf("attempt %d: serial %v, parallel %v, speedup %.2fx", attempt, serialD, parallelD, speedup)
		if best >= 2 {
			return
		}
	}
	t.Errorf("RunBatch speedup = %.2fx, want >= 2x on %d cores", best, runtime.NumCPU())
}
