// Quickstart: run one benchmark under the PCM-Only baseline and the
// KG-W write-rationing collector, and compare the PCM writes the
// emulated platform observes — the paper's headline experiment in a
// few lines.
package main

import (
	"context"
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	// Quick-scale inputs keep the example snappy; use
	// hybridmem.WithScale(hybridmem.Full) for the paper's sizes.
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))
	ctx := context.Background()

	base, err := p.Run(ctx, hybridmem.RunSpec{
		AppName:   "lusearch",
		Collector: hybridmem.PCMOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	kgw, err := p.Run(ctx, hybridmem.RunSpec{
		AppName:   "lusearch",
		Collector: hybridmem.KGW,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("lusearch on the hybrid-memory emulator:")
	fmt.Printf("  PCM-Only: %7d PCM line writes (%6.1f MB/s)\n",
		base.PCMWriteLines, base.PCMRateMBs())
	fmt.Printf("  KG-W:     %7d PCM line writes (%6.1f MB/s)\n",
		kgw.PCMWriteLines, kgw.PCMRateMBs())
	reduction := 100 * (1 - float64(kgw.PCMWriteLines)/float64(base.PCMWriteLines))
	fmt.Printf("  write-rationing saved %.0f%% of PCM writes\n", reduction)
	fmt.Printf("  recommended sustained rate: %.0f MB/s\n", hybridmem.RecommendedRateMBs())
}
