package jvm

import (
	"testing"
	"testing/quick"

	"repro/internal/objmodel"
)

// TestInvariantsUnderRandomMutation drives the runtime with random
// mutator programs (allocations of varying sizes, root churn,
// reference rewiring, writes, explicit collections) across all plans
// and checks the heap invariants after every collection-heavy phase.
// This is the GC's property-based torture test.
func TestInvariantsUnderRandomMutation(t *testing.T) {
	kinds := []Kind{PCMOnly, KGN, KGB, KGNLOO, KGBLOO, KGW, KGWNoLOO, KGWNoMDO}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				ok := true
				_, _ = runJVM(t, kind, func(r *Runtime) {
					rng := seed
					next := func(n uint64) uint64 {
						rng = rng*6364136223846793005 + 1442695040888963407
						return (rng >> 33) % n
					}
					var rooted []objmodel.ObjID
					var slots []int
					for op := 0; op < 3000; op++ {
						switch next(10) {
						case 0, 1, 2, 3, 4: // allocate, sometimes root
							size := 24 + int(next(300))
							if next(40) == 0 {
								size = 8192 + int(next(16384)) // large
							}
							id := r.Alloc(size, int(next(4)))
							if next(3) == 0 {
								rooted = append(rooted, id)
								slots = append(slots, r.AddRoot(id))
							}
						case 5: // drop a root
							if len(rooted) > 0 {
								i := int(next(uint64(len(rooted))))
								r.DropRoot(slots[i])
								rooted = append(rooted[:i], rooted[i+1:]...)
								slots = append(slots[:i], slots[i+1:]...)
							}
						case 6: // rewire a reference
							if len(rooted) >= 2 {
								a := rooted[next(uint64(len(rooted)))]
								bo := rooted[next(uint64(len(rooted)))]
								ao := r.Table.Get(a)
								if ao.NumRefs() > 0 {
									r.WriteRef(a, int(next(uint64(ao.NumRefs()))), bo)
								}
							}
						case 7: // mutate
							if len(rooted) > 0 {
								r.Write(rooted[next(uint64(len(rooted)))], 8, 8)
							}
						case 8: // read
							if len(rooted) > 0 {
								r.Read(rooted[next(uint64(len(rooted)))], 8, 8)
							}
						case 9: // explicit collection
							r.Collect(next(4) == 0)
							if err := r.CheckInvariants(); err != nil {
								t.Errorf("seed %d op %d: %v", seed, op, err)
								ok = false
								return
							}
						}
					}
					r.Collect(true)
					if err := r.CheckInvariants(); err != nil {
						t.Errorf("seed %d final: %v", seed, err)
						ok = false
					}
					// Every rooted object must still be reachable.
					for i, id := range rooted {
						if r.Table.Get(id).Addr == 0 {
							t.Errorf("seed %d: rooted object %d (slot %d) was collected", seed, id, i)
							ok = false
						}
					}
				})
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestInvariantsCleanRuntime sanity-checks the checker itself.
func TestInvariantsCleanRuntime(t *testing.T) {
	_, _ = runJVM(t, KGW, func(r *Runtime) {
		id := r.Alloc(64, 1)
		r.AddRoot(id)
		if err := r.CheckInvariants(); err != nil {
			t.Errorf("fresh heap violates invariants: %v", err)
		}
		r.Collect(false)
		r.Collect(true)
		if err := r.CheckInvariants(); err != nil {
			t.Errorf("post-GC heap violates invariants: %v", err)
		}
	})
}
