package jvm

import (
	"fmt"
	"sort"

	"repro/internal/objmodel"
)

// CheckInvariants validates the runtime's heap structures and returns
// the first violation found, or nil. It is meant for tests and
// debugging: the checks walk every live object, so they are not free.
//
// Invariants checked:
//
//  1. Every live object's address lies inside the space its record
//     claims (nursery/observer bounds, chunked-space ownership,
//     portion consistency with the space's socket side).
//  2. No two live objects overlap.
//  3. Every reference slot of a live object is nil or points to a
//     live record.
//  4. Space occupancy accounting covers at least the live bytes.
//  5. Root slots hold nil or live objects.
func (r *Runtime) CheckInvariants() error {
	type extent struct {
		lo, hi uint64
		id     objmodel.ObjID
	}
	var extents []extent

	checkSpace := func(id objmodel.ObjID, o *objmodel.Object) error {
		switch o.Space {
		case objmodel.SpaceNursery:
			if !r.nursery.Contains(o.Addr) {
				return fmt.Errorf("object %d claims nursery but lives at %#x", id, o.Addr)
			}
		case objmodel.SpaceObserver:
			if r.observer == nil || !r.observer.Contains(o.Addr) {
				return fmt.Errorf("object %d claims observer but lives at %#x", id, o.Addr)
			}
		case objmodel.SpaceMaturePCM:
			if !r.maturePCM.Contains(o.Addr) || !r.Layout.PCMPortion(o.Addr) {
				return fmt.Errorf("object %d claims mature-pcm but lives at %#x", id, o.Addr)
			}
		case objmodel.SpaceMatureDRAM:
			if r.matureDRAM == nil || !r.matureDRAM.Contains(o.Addr) || r.Layout.PCMPortion(o.Addr) {
				return fmt.Errorf("object %d claims mature-dram but lives at %#x", id, o.Addr)
			}
		case objmodel.SpaceLargePCM:
			if !r.largePCM.Contains(o.Addr) || !r.Layout.PCMPortion(o.Addr) {
				return fmt.Errorf("object %d claims large-pcm but lives at %#x", id, o.Addr)
			}
		case objmodel.SpaceLargeDRAM:
			if r.largeDRAM == nil || !r.largeDRAM.Contains(o.Addr) || r.Layout.PCMPortion(o.Addr) {
				return fmt.Errorf("object %d claims large-dram but lives at %#x", id, o.Addr)
			}
		default:
			return fmt.Errorf("object %d in unexpected space %v", id, o.Space)
		}
		return nil
	}

	visit := func(ids []objmodel.ObjID) error {
		for _, id := range ids {
			o := r.Table.Get(id)
			if o.Addr == 0 {
				continue // freed record still listed; harmless
			}
			if err := checkSpace(id, o); err != nil {
				return err
			}
			extents = append(extents, extent{lo: o.Addr, hi: o.Addr + uint64(o.Size), id: id})
			for i := 0; i < o.NumRefs(); i++ {
				ref := o.Ref(i)
				if ref == objmodel.Nil {
					continue
				}
				if ro := r.Table.Get(ref); ro.Addr == 0 {
					return fmt.Errorf("object %d ref %d dangles to freed %d", id, i, ref)
				}
			}
		}
		return nil
	}
	if err := visit(r.nurseryObjs); err != nil {
		return err
	}
	if err := visit(r.observerObjs); err != nil {
		return err
	}
	if err := visit(r.matureObjs); err != nil {
		return err
	}

	sort.Slice(extents, func(i, j int) bool { return extents[i].lo < extents[j].lo })
	for i := 1; i < len(extents); i++ {
		if extents[i].lo < extents[i-1].hi {
			return fmt.Errorf("objects %d and %d overlap at %#x",
				extents[i-1].id, extents[i].id, extents[i].lo)
		}
	}

	for slot, id := range r.roots {
		if id == objmodel.Nil {
			continue
		}
		if o := r.Table.Get(id); o.Addr == 0 {
			return fmt.Errorf("root slot %d holds freed object %d", slot, id)
		}
	}
	return nil
}
