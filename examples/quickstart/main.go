// Quickstart: run one benchmark under the PCM-Only baseline and the
// KG-W write-rationing collector, and compare the PCM writes the
// emulated platform observes — the paper's headline experiment in a
// few lines.
package main

import (
	"fmt"
	"log"

	hybridmem "repro"
)

func main() {
	opts := hybridmem.Emulator()
	// Quick-scale inputs keep the example snappy; drop this line for
	// the paper's sizes.
	opts.AppFactory = hybridmem.ScaledApps(hybridmem.Quick)
	opts.BootMB = 4

	base, err := hybridmem.Run(opts, hybridmem.RunSpec{
		AppName:   "lusearch",
		Collector: hybridmem.PCMOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	kgw, err := hybridmem.Run(opts, hybridmem.RunSpec{
		AppName:   "lusearch",
		Collector: hybridmem.KGW,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("lusearch on the hybrid-memory emulator:")
	fmt.Printf("  PCM-Only: %7d PCM line writes (%6.1f MB/s)\n",
		base.PCMWriteLines, base.PCMRateMBs())
	fmt.Printf("  KG-W:     %7d PCM line writes (%6.1f MB/s)\n",
		kgw.PCMWriteLines, kgw.PCMRateMBs())
	reduction := 100 * (1 - float64(kgw.PCMWriteLines)/float64(base.PCMWriteLines))
	fmt.Printf("  write-rationing saved %.0f%% of PCM writes\n", reduction)
	fmt.Printf("  recommended sustained rate: %.0f MB/s\n", hybridmem.RecommendedRateMBs())
}
