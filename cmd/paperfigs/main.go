// Command paperfigs regenerates every table and figure of the paper's
// evaluation (Tables I–III, Figures 3–8) plus the ablation studies,
// printing the same rows and series the paper reports. The output is
// the raw material of EXPERIMENTS.md.
//
// Usage:
//
//	paperfigs [-scale quick|std|full] [-seed N] [-only fig7,tableII,...]
//	          [-policy static|first-touch|write-threshold|wear-level]
//
// Scales: quick (CI-sized inputs), std (full DaCapo profiles, 1M-edge
// graphs, 4x large datasets, 5-app DaCapo subset for the
// multiprogrammed figures), full (the paper's sizes; slow).
//
// -policy re-runs every grid under a dynamic placement policy. Two
// steps go beyond the paper's evaluation and only run when named in
// -only: "policies" (a placement-policy comparison table over the
// GraphChi workloads) and "autotune" (the trace-driven knob search:
// record one traced run, price a knob grid offline by replay, then
// validate every grid point with a live emulator run and check the
// predicted stall ranking and the recommended point's estimate
// tolerance).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	hybridmem "repro"
	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "std", "input scale: quick, std, or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", 0, "concurrent platform runs (0 = one per core)")
	only := flag.String("only", "", "comma-separated subset (tableI,tableII,tableIII,fig3,fig4,fig5,fig6,fig7,fig8,ablations,policies,autotune)")
	policyName := flag.String("policy", "static", "placement policy the grids run under")
	storeDir := flag.String("store", "", "durable result store directory: reruns and -only subsets replay finished runs from disk instead of recomputing")
	flag.Parse()

	sc, err := hybridmem.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(2)
	}
	pol, err := hybridmem.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	// Ctrl-C cancels the in-flight experiment batches.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := experiments.NewRunner(experiments.Config{Scale: sc, Seed: *seed, Parallelism: *parallel, StoreDir: *storeDir, Policy: pol})
	fmt.Printf("# Paper evaluation regeneration (scale=%s, seed=%d, policy=%s)\n\n", sc, *seed, pol)
	start := time.Now()
	step := func(name string, f func() (string, error)) {
		if !sel(name) {
			return
		}
		t0 := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	step("tableI", func() (string, error) { return experiments.RenderTableI(), nil })
	step("tableII", func() (string, error) {
		res, err := r.TableII(ctx)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	})
	step("fig3", func() (string, error) {
		rows, err := r.Fig3(ctx)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig3(rows), nil
	})
	step("fig4", func() (string, error) {
		res, err := r.Fig4(ctx)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig4(res), nil
	})
	step("fig5", func() (string, error) {
		res, err := r.Fig5(ctx)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig5(res), nil
	})
	step("fig6", func() (string, error) {
		rows, rec, err := r.Fig6(ctx)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig6(rows, rec), nil
	})
	step("fig7", func() (string, error) {
		rows, err := r.Fig7(ctx)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7(rows), nil
	})
	step("fig8", func() (string, error) {
		rows, err := r.Fig8(ctx)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig8(rows), nil
	})
	step("tableIII", func() (string, error) {
		res, err := r.TableIII(ctx)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	})
	step("ablations", func() (string, error) {
		var b strings.Builder
		l3, err := r.AblationL3(ctx, []int{4, 20})
		if err != nil {
			return "", err
		}
		b.WriteString(l3.Render())
		b.WriteByte('\n')
		obs, err := r.AblationObserver(ctx, []int{1, 2, 4}, "pmd")
		if err != nil {
			return "", err
		}
		b.WriteString(obs.Render())
		b.WriteByte('\n')
		nur, err := r.AblationNursery(ctx, []int{4, 32})
		if err != nil {
			return "", err
		}
		b.WriteString(nur.Render())
		b.WriteByte('\n')
		mon, err := r.AblationMonitorSocket(ctx, "pmd")
		if err != nil {
			return "", err
		}
		b.WriteString(mon.Render())
		b.WriteByte('\n')
		fl, err := r.AblationFreeLists(ctx, "pmd")
		if err != nil {
			return "", err
		}
		b.WriteString(fl.Render())
		return b.String(), nil
	})
	// The policy comparison goes beyond the paper's evaluation, so it
	// only runs when explicitly selected.
	if want["policies"] {
		step("policies", func() (string, error) {
			res, err := r.AblationPolicies(ctx)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		})
	}
	// The trace-driven autotune workflow (record once, price a knob
	// grid offline, validate every point live) also goes beyond the
	// paper and only runs when named in -only.
	if want["autotune"] {
		step("autotune", func() (string, error) {
			res, err := r.Autotune(ctx)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		})
	}
	cs := r.CacheStats()
	fmt.Printf("# total: %s (%d computed, %d replayed from memory, %d from store)\n",
		time.Since(start).Round(time.Second), computed(cs), cs.Hits, cs.DiskHits)
}

// computed counts genuine platform computes: without a store every
// memory miss computes; with one, only the disk misses do.
func computed(cs hybridmem.CacheStats) uint64 {
	if cs.DiskHits+cs.DiskMisses > 0 {
		return cs.DiskMisses
	}
	return cs.Misses
}
