package hybridmem

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// traceSpec is the differential suite's workload: a GraphChi run at
// quick scale, where the migrating policies do real work.
func traceSpec() RunSpec { return RunSpec{AppName: "PR", Collector: KGN} }

// recordTrace runs spec on a traced platform and returns the live
// Result plus the recorded trace bytes.
func recordTrace(t *testing.T, pol Policy, spec RunSpec) (Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	p := New(WithScale(Quick), WithSeed(11), WithPolicy(pol), WithTrace(&buf))
	res, err := p.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestTraceReplayDifferential is the subsystem's core invariant, the
// live-vs-replay validation in the spirit of the paper's emulator
// cross-checks: for each built-in migrating policy, replaying a
// recorded trace with the policy that produced it reproduces the
// recorded action stream bit-identically and lands on exactly the
// live run's migration totals. The non-migrating policies ride along:
// their traces replay to zero actions.
func TestTraceReplayDifferential(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			live, data := recordTrace(t, pol, traceSpec())
			st, err := ReplayTrace(bytes.NewReader(data), pol)
			if err != nil {
				t.Fatal(err)
			}
			if !st.MatchesRecorded {
				t.Errorf("replay diverged from recorded actions at quantum %d", st.FirstMismatchQuantum)
			}
			if st.PagesMigrated != live.PagesMigrated {
				t.Errorf("replayed migrations = %d, live Result.PagesMigrated = %d",
					st.PagesMigrated, live.PagesMigrated)
			}
			if got, want := uint64(st.StallCycles+0.5), live.MigrationStallCycles; got != want {
				t.Errorf("replayed stall cycles = %d, live = %d", got, want)
			}
			if st.Quanta == 0 {
				t.Error("trace recorded no quanta")
			}
			if pol == WriteThreshold || pol == WearLevel {
				if live.PagesMigrated == 0 {
					t.Errorf("%s migrated nothing; the differential proves nothing", pol)
				}
			} else if st.Actions != 0 {
				t.Errorf("%s replay emitted %d actions, want none", pol, st.Actions)
			}
			// The recorded header identifies the run.
			hdr, err := trace.NewReader(bytes.NewReader(data)).Header()
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Policy != pol.String() || hdr.App != "PR" || hdr.Seed != 11 {
				t.Errorf("header = %+v", hdr)
			}
			if want := New(WithScale(Quick), WithSeed(11), WithPolicy(pol)).SpecKey(traceSpec()); hdr.Key != want {
				t.Errorf("header key = %q, want %q", hdr.Key, want)
			}
		})
	}
}

// TestTraceReplayMatchesRunBatch closes the loop with the batch
// engine: the replayed migration counts must equal what RunBatch —
// computing the same spec on a fresh, untraced platform, under the
// worker pool — reports in its Result.
func TestTraceReplayMatchesRunBatch(t *testing.T) {
	for _, pol := range []Policy{WriteThreshold, WearLevel} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			_, data := recordTrace(t, pol, traceSpec())
			st, err := ReplayTrace(bytes.NewReader(data), pol)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := New(WithScale(Quick), WithSeed(11), WithPolicy(pol)).
				RunBatch(context.Background(), traceSpec())
			if err != nil {
				t.Fatal(err)
			}
			if st.PagesMigrated != batch[0].PagesMigrated {
				t.Errorf("replayed migrations = %d, RunBatch live = %d",
					st.PagesMigrated, batch[0].PagesMigrated)
			}
		})
	}
}

// TestTracedResultBitIdentical pins the perturbation-freedom contract:
// attaching a trace sink must not change the Result — tracing is
// bookkeeping, not workload.
func TestTracedResultBitIdentical(t *testing.T) {
	for _, pol := range []Policy{Static, WriteThreshold} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			traced, _ := recordTrace(t, pol, traceSpec())
			plain, err := New(WithScale(Quick), WithSeed(11), WithPolicy(pol)).
				Run(context.Background(), traceSpec())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(traced, plain) {
				t.Errorf("traced Result diverged from untraced\ntraced: %+v\nplain:  %+v", traced, plain)
			}
		})
	}
}

// TestTracedRunBypassesCache pins WithTrace's always-compute rule: a
// platform whose cache already holds the spec still records a full
// trace, and traced runs leave no cache entries behind.
func TestTracedRunBypassesCache(t *testing.T) {
	ctx := context.Background()
	spec := RunSpec{AppName: "lusearch", Collector: KGN}
	p := New(WithScale(Quick), WithSeed(3), WithPolicy(WriteThreshold))
	if _, err := p.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	warm := p.CacheStats()

	var buf bytes.Buffer
	if _, err := p.With(WithTrace(&buf)).Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayTrace(bytes.NewReader(buf.Bytes()), WriteThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quanta == 0 {
		t.Error("traced rerun recorded no quanta: it was served from the cache")
	}
	after := p.CacheStats()
	if after.Hits != warm.Hits || after.Misses != warm.Misses || after.Entries != warm.Entries {
		t.Errorf("traced run touched the cache: before %+v, after %+v", warm, after)
	}
}

// TestReplayTraceTypedErrors pins the facade's trace error surface.
func TestReplayTraceTypedErrors(t *testing.T) {
	if _, err := ReplayTrace(strings.NewReader(""), WriteThreshold); !errors.Is(err, ErrTraceCorrupt) {
		t.Errorf("empty trace err = %v, want ErrTraceCorrupt", err)
	}
	if _, err := ReplayTrace(strings.NewReader(`{"version":99}`+"\n"), WriteThreshold); !errors.Is(err, ErrTraceVersion) {
		t.Errorf("skewed trace err = %v, want ErrTraceVersion", err)
	}
	if _, err := ReplayTrace(strings.NewReader(""), Policy(99)); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("bad policy err = %v, want ErrUnknownPolicy", err)
	}
}

// TestTraceReplayDifferentialMultiInstance repeats the differential
// check for a multiprogrammed run. Instances share one virtual heap
// layout, so group addresses collide across processes; the replayer
// must key its placement accounting per process (Quantum.Proc) and
// still reproduce the live engine's totals exactly.
func TestTraceReplayDifferentialMultiInstance(t *testing.T) {
	spec := RunSpec{AppName: "lusearch", Collector: KGN, Instances: 2}
	live, data := recordTrace(t, WriteThreshold, spec)
	st, err := ReplayTrace(bytes.NewReader(data), WriteThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !st.MatchesRecorded {
		t.Errorf("x2 replay diverged from recorded actions at quantum %d", st.FirstMismatchQuantum)
	}
	if st.PagesMigrated != live.PagesMigrated {
		t.Errorf("x2 replayed migrations = %d, live = %d", st.PagesMigrated, live.PagesMigrated)
	}
	// Both processes' quanta are in the stream, tagged by process.
	r := trace.NewReader(bytes.NewReader(data))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	for {
		q, err := r.Next()
		if err != nil {
			break
		}
		procs[q.Proc] = true
	}
	if len(procs) != 2 {
		t.Errorf("trace names %d processes (%v), want 2", len(procs), procs)
	}
}
