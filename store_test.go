package hybridmem

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// storeGrid is a small but multi-dimensional paperfigs-style grid.
func storeGrid() *Sweep {
	return NewSweep("lusearch", "pmd").Collectors(PCMOnly, KGW).Instances(1, 2)
}

// TestStoreWarmStart is the subsystem's acceptance proof: a second
// process (modeled by a fresh Platform on the same directory) replays
// the whole grid from disk — zero recomputes, bit-identical Results.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	grid := storeGrid()
	n := len(grid.Specs())

	cold := New(WithScale(Quick), WithStore(dir))
	coldRes, err := cold.RunSweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st.DiskHits != 0 || st.DiskMisses != uint64(n) {
		t.Fatalf("cold stats = %+v, want 0 disk hits / %d disk misses", st, n)
	}
	s, err := cold.Store()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("store holds %d records, want %d", s.Len(), n)
	}
	// Close the cold store so it leaves the per-process registry: the
	// warm platform must replay the segments from disk, as a genuinely
	// restarted process would.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	warm := New(WithScale(Quick), WithStore(dir))
	warmRes, err := warm.RunSweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.CacheStats()
	if st.DiskHits != uint64(n) || st.DiskMisses != 0 {
		t.Fatalf("warm stats = %+v, want %d disk hits / 0 disk misses (zero recomputes)", st, n)
	}

	storeless := New(WithScale(Quick))
	plainRes, err := storeless.RunSweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRes, plainRes) || !reflect.DeepEqual(coldRes, plainRes) {
		t.Error("stored results are not bit-identical to storeless runs")
	}
}

// TestStoreSharedByDerivedPlatforms checks that With-derived variants
// write through the same store and find each other's results across a
// restart.
func TestStoreSharedByDerivedPlatforms(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := RunSpec{AppName: "pmd", Collector: PCMOnly}

	p := New(WithScale(Quick), WithStore(dir))
	if _, err := p.With(WithThreadSocket(0)).Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	s, err := p.Store()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("store holds %d records, want 2 (derived platform shares it)", s.Len())
	}
	// Evict from the per-process registry so the next platform replays
	// from disk like a real restart.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := New(WithScale(Quick), WithStore(dir))
	if _, err := p2.With(WithThreadSocket(0)).Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if st := p2.CacheStats(); st.DiskHits != 1 || st.DiskMisses != 0 {
		t.Errorf("derived warm stats = %+v, want 1 disk hit / 0 misses", st)
	}

	// A detached derivative neither reads nor writes the store.
	s2, err := p2.Store()
	if err != nil {
		t.Fatal(err)
	}
	off := p2.With(WithStore(""))
	if _, err := off.Run(ctx, RunSpec{AppName: "lusearch", Collector: PCMOnly}); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Errorf("detached platform wrote to the store (Len = %d)", s2.Len())
	}
}

// TestStoreSkipsCustomFactoryKeys checks that custom-factory runs
// bypass the durable tier: their "factory:N" identity is
// process-local, so a persisted entry could be misattributed to a
// different factory after a restart.
func TestStoreSkipsCustomFactoryKeys(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p := New(WithScale(Quick), WithStore(dir), WithAppFactory(ScaledApps(Quick)))
	spec := RunSpec{AppName: "pmd", Collector: PCMOnly}
	if _, err := p.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	s, err := p.Store()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("store holds %d records, want 0 (custom factories are not durable)", s.Len())
	}
	if st := p.CacheStats(); st.DiskHits != 0 || st.DiskMisses != 1 {
		t.Errorf("stats = %+v, want 0 disk hits / 1 disk miss", st)
	}
	if _, ok := p.Peek(spec); !ok {
		t.Error("Peek must still serve the memory tier for custom-factory runs")
	}
}

// TestStoreOpenErrorSurfaces checks a misconfigured store directory
// fails the run loudly instead of silently recomputing forever.
func TestStoreOpenErrorSurfaces(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := New(WithScale(Quick), WithStore(file))
	_, err := p.Run(context.Background(), RunSpec{AppName: "pmd", Collector: PCMOnly})
	if err == nil {
		t.Fatal("Run with an unopenable store must fail")
	}
	if _, err := p.Store(); err == nil {
		t.Error("Store() must surface the open failure")
	}
}

func TestSpecKeyCanonical(t *testing.T) {
	p := New(WithScale(Quick), WithSeed(7))
	spec := RunSpec{AppName: "pmd", Collector: KGW, Instances: 2, Dataset: Large}
	key := p.SpecKey(spec)
	for _, want := range []string{
		"mode=emulation", "seed=7", "factory=scale:quick",
		"app=pmd", "gc=KG-W", "n=2", "ds=large", "native=false", "boot=4",
	} {
		if !strings.Contains(key, want) {
			t.Errorf("SpecKey missing %q:\n%s", want, key)
		}
	}
	// Normalization: the zero instance count is the 1-instance run.
	a := p.SpecKey(RunSpec{AppName: "pmd", Collector: KGW})
	b := p.SpecKey(RunSpec{AppName: "pmd", Collector: KGW, Instances: 1})
	if a != b {
		t.Error("normalized specs must share a key")
	}
	if p.SpecKey(spec) == p.With(WithSeed(8)).SpecKey(spec) {
		t.Error("different seeds must key differently")
	}
}
