// Package pjbb models pseudojbb2005, the fixed-workload variant of
// SPECjbb2005 the paper uses: a transaction-processing server with
// per-warehouse long-lived state and a steady churn of order objects.
//
// Relative to DaCapo the paper reports roughly 2x the PCM writes and
// 1.7x the write rate of the average DaCapo benchmark, a 400 MB heap
// against DaCapo's 100 MB average, and a strongly super-linear
// multiprogrammed write growth (5x at two instances, 12x at four) —
// the warehouse state is mutation-heavy and the transaction window
// makes nursery survivors substantial.
package pjbb

import "repro/internal/workloads"

// profile is pseudojbb2005 with the paper's configuration (4 MB
// nursery, four driver threads).
var profile = workloads.Profile{
	AppName: "pjbb", S: workloads.Pjbb,
	// Transactions allocate order/line-item records that live for the
	// span of a transaction window; warehouses are large, long-lived,
	// and written on every transaction commit.
	AllocMB: 160, MeanObj: 128, SurviveKB: 768, LongLivedMB: 96,
	MediumFrac: 0.08, MediumLiveKB: 2048,
	LargeFrac: 0.02, LargeObjKB: 48,
	WritesPerKB: 9, MatureWriteFrac: 0.45, ReadsPerKB: 18, RefsPerObj: 3,
	PointerChurn: 0.06, ComputePerKB: 30000,
	NurseryMBv: 4, HeapMBv: 200,
	LargeScale: 2.5, LargeLongLivedScale: 1.5, LargeComputeScale: 1.0,
}

// New returns a fresh pjbb instance.
func New() workloads.App { return workloads.NewProfileApp(profile) }
