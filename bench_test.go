package hybridmem_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index) plus
// the ablation studies of DESIGN.md §4. One benchmark iteration runs
// the complete experiment at Quick scale; custom metrics report the
// headline quantities so `go test -bench` output doubles as a compact
// reproduction report. cmd/paperfigs renders the same experiments at
// Std/Full scale.
//
// BenchmarkSweepSerial vs BenchmarkSweepRunBatch demonstrates the
// Platform's worker pool: the same 3-app x 8-collector grid executed
// one-at-a-time and across all host cores.

import (
	"context"
	"testing"

	hybridmem "repro"
	"repro/internal/experiments"
)

// ctx is the default context for driver calls in benchmarks.
var ctx = context.Background()

func quickRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Config{Scale: experiments.Quick, Seed: 1})
}

// sweepGrid is the 3-app x 8-collector acceptance sweep.
func sweepGrid() []hybridmem.RunSpec {
	return hybridmem.NewSweep("lusearch", "xalan", "pmd").
		Collectors(hybridmem.Collectors()...).Specs()
}

// BenchmarkSweepSerial runs the grid one experiment at a time on a
// fresh platform (no cache reuse between iterations).
func BenchmarkSweepSerial(b *testing.B) {
	specs := sweepGrid()
	for i := 0; i < b.N; i++ {
		p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick), hybridmem.WithParallelism(1))
		if _, err := p.RunBatch(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs)), "experiments/op")
}

// BenchmarkSweepRunBatch runs the same grid through the worker pool,
// one worker per available core.
func BenchmarkSweepRunBatch(b *testing.B) {
	specs := sweepGrid()
	for i := 0; i < b.N; i++ {
		p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))
		if _, err := p.RunBatch(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs)), "experiments/op")
}

// BenchmarkTableI regenerates the space-to-socket mapping (Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.RenderTableI() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableII regenerates the emulation-vs-simulation validation
// (Table II): PCM-write reductions of KG-N/KG-B/KG-W in both
// pipelines.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.TableII(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].EmulReduction, "KGN-emul-red-%")
		b.ReportMetric(res.Rows[2].EmulReduction, "KGW-emul-red-%")
		b.ReportMetric(res.Rows[2].SimReduction, "KGW-sim-red-%")
	}
}

// BenchmarkTableIII regenerates the PCM lifetime table.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.TableIII(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Years[0][0][0], "N1-P1-PCMOnly-years")
		b.ReportMetric(res.Years[1][0][1], "N4-P1-KGW-years")
	}
}

// BenchmarkFig3 regenerates the C++-vs-Java comparison (Fig 3).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		rows, err := r.Fig3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AllocRatio, "PR-alloc-Java/C++")
	}
}

// BenchmarkFig4 regenerates the multiprogrammed write growth (Fig 4).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.Fig4(ctx)
		if err != nil {
			b.Fatal(err)
		}
		all := res.PCMOnly[len(res.PCMOnly)-1]
		b.ReportMetric(all.Growth[2], "PCMOnly-all-x4")
		allW := res.KGW[len(res.KGW)-1]
		b.ReportMetric(allW.Growth[2], "KGW-all-x4")
	}
}

// BenchmarkFig5 regenerates the suite comparison (Fig 5).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WritesRel[1][0], "GraphChi/DaCapo-writes")
		b.ReportMetric(res.RatesRel[1][0], "GraphChi/DaCapo-rate")
	}
}

// BenchmarkFig6 regenerates the per-application write rates (Fig 6).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		rows, _, err := r.Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range rows {
			if row.RateMBs[0] > worst {
				worst = row.RateMBs[0]
			}
		}
		b.ReportMetric(worst, "worst-PCMOnly-MB/s")
	}
}

// BenchmarkFig7 regenerates the Kingsguard study on GraphChi (Fig 7).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		rows, err := r.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Norm[0], "PR-KGN-norm")
		b.ReportMetric(rows[0].Norm[4], "PR-KGW-norm")
	}
}

// BenchmarkFig8 regenerates the dataset-size study (Fig 8).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		rows, err := r.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WriteRatio, "writes-large/default")
	}
}

// BenchmarkAblationL3Size sweeps the shared-cache size: the paper's
// 81%-vs-4% KG-N sensitivity.
func BenchmarkAblationL3Size(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.AblationL3(ctx, []int{4, 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionPct[0], "KGN-red-4MB-%")
		b.ReportMetric(res.ReductionPct[1], "KGN-red-20MB-%")
	}
}

// BenchmarkAblationObserver sweeps KG-W's observer sizing.
func BenchmarkAblationObserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		if _, err := r.AblationObserver(ctx, []int{1, 2, 4}, "pmd"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNursery compares GraphChi under 4 MB vs 32 MB
// nurseries.
func BenchmarkAblationNursery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.AblationNursery(ctx, []int{4, 32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Seconds[0]/res.Seconds[1], "time-4MB/32MB")
	}
}

// BenchmarkAblationMonitorSocket compares monitor placement.
func BenchmarkAblationMonitorSocket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.AblationMonitorSocket(ctx, "pmd")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PCMWrites[1])/float64(res.PCMWrites[0]), "S1/S0-contamination")
	}
}

// BenchmarkAblationFreeLists compares the dual recycling free lists
// with the rejected monolithic unmap-on-free design.
func BenchmarkAblationFreeLists(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := quickRunner()
		res, err := r.AblationFreeLists(ctx, "pmd")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Seconds[1]/res.Seconds[0], "unmap/recycle-time")
	}
}
