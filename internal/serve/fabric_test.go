package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	hybridmem "repro"
	"repro/internal/fabric"
)

// fastRetry keeps cluster tests snappy: a dead peer is given up on in
// tens of milliseconds instead of DefaultRetry's third of a second.
var fastRetry = fabric.RetryConfig{Attempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}

// clusterNode is one in-process hybridserved node.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	url string
}

// startCluster boots n identically-configured Quick-scale nodes on
// loopback, all sharing one static peer list. Listeners are allocated
// before any server is built so every node's Fabric can be configured
// with the full membership up front.
func startCluster(t *testing.T, n int, cfg func(i int) Config) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		fab, err := fabric.New(fabric.Config{Self: urls[i], Peers: urls, Retry: fastRetry})
		if err != nil {
			t.Fatal(err)
		}
		c := Config{MaxInFlight: 4, Fabric: fab}
		if cfg != nil {
			c = cfg(i)
			c.Fabric = fab
		}
		p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick), hybridmem.WithStore(t.TempDir()))
		s, err := New(p, c)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(s)
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{srv: s, ts: ts, url: urls[i]}
	}
	return nodes
}

// metricValue extracts one node-labelled series from a /metrics dump.
func metricValue(t *testing.T, url, name string) uint64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparsable metric line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s missing from %s/metrics", name, url)
	return 0
}

// sweepItems posts a sweep and decodes the full ndjson stream.
func sweepItems(t *testing.T, url string, req SweepRequest) []SweepItem {
	t.Helper()
	resp := postJSON(t, url+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	var items []SweepItem
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item SweepItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		items = append(items, item)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return items
}

// canonicalStream re-marshals sweep items in index order so two
// streams can be compared byte-for-byte regardless of completion
// order.
func canonicalStream(t *testing.T, items []SweepItem) string {
	t.Helper()
	sorted := append([]SweepItem(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	var b strings.Builder
	for _, item := range sorted {
		line, err := json.Marshal(item)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFabricSweepMatchesSingleNode: a sweep submitted to one node of a
// three-node fabric streams byte-identical results to the same sweep
// on a standalone server — sharding changes where cells execute, never
// what they produce.
func TestFabricSweepMatchesSingleNode(t *testing.T) {
	req := SweepRequest{Apps: []string{"PR", "CC", "ALS"}, Collectors: []string{"KG-W"}}
	_, solo := newTestServer(t)
	want := canonicalStream(t, sweepItems(t, solo.URL, req))

	nodes := startCluster(t, 3, nil)
	got := canonicalStream(t, sweepItems(t, nodes[0].url, req))
	if got != want {
		t.Errorf("3-node sweep diverged from single-node:\n got: %s\nwant: %s", got, want)
	}

	// The grid actually spread: with three cells hashed across three
	// nodes it is possible (though unlikely) that one node owns all of
	// them, but the entry node must at least have answered everything.
	var served uint64
	for _, n := range nodes {
		served += metricValue(t, n.url, "hybridserved_cache_misses_total")
	}
	if served != 3 {
		t.Errorf("fleet computed %d cells, want exactly 3 (one compute per cell)", served)
	}
}

// TestFabricCrossNodeSingleFlight: N identical concurrent requests
// sprayed round-robin across the fleet produce exactly one emulation.
// All of them funnel to the key's ring owner, whose single-flight
// coalesces the fleet's duplicates; the bookkeeping is deterministic —
// however the race resolves, one request computes and N-1 coalesce.
func TestFabricCrossNodeSingleFlight(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	const n = 9
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	done.Add(n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp := postJSON(t, nodes[i%len(nodes)].url+"/v1/run", RunRequest{App: "pmd"})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("run %d = %d", i, resp.StatusCode)
			}
		}(i)
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var misses, coalesced, forwarded, degraded uint64
	for _, node := range nodes {
		misses += metricValue(t, node.url, "hybridserved_cache_misses_total")
		coalesced += metricValue(t, node.url, "fabric_coalesced_total")
		forwarded += metricValue(t, node.url, "fabric_forwarded_total")
		degraded += metricValue(t, node.url, "fabric_degraded_total")
	}
	if misses != 1 {
		t.Errorf("fleet computed %d times, want exactly 1", misses)
	}
	if coalesced != n-1 {
		t.Errorf("fabric_coalesced_total = %d across the fleet, want %d", coalesced, n-1)
	}
	// Two of the three nodes do not own the key; their three requests
	// each were forwarded (none should have degraded — every peer was
	// alive).
	if forwarded != 6 {
		t.Errorf("fabric_forwarded_total = %d across the fleet, want 6", forwarded)
	}
	if degraded != 0 {
		t.Errorf("fabric_degraded_total = %d across the fleet, want 0", degraded)
	}
}

// TestFabricNodeDeathMidSweep: killing a peer mid-sweep must not lose
// or corrupt cells. The entry node runs its sweep workers serially
// (MaxInFlight 1), so once the first item arrives the rest of the grid
// is still queued; a peer killed at that point forces every later cell
// it owned through the degraded local-execution path, and the stream
// still completes byte-identical to a healthy single-node sweep.
func TestFabricNodeDeathMidSweep(t *testing.T) {
	req := SweepRequest{Apps: []string{"PR", "CC", "ALS"}, Collectors: []string{"KG-W", "PCM-Only"}}
	_, solo := newTestServer(t)
	baseline := sweepItems(t, solo.URL, req)
	want := canonicalStream(t, baseline)
	sort.Slice(baseline, func(i, j int) bool { return baseline[i].Index < baseline[j].Index })

	nodes := startCluster(t, 3, func(i int) Config {
		if i == 0 {
			return Config{MaxInFlight: 1}
		}
		return Config{MaxInFlight: 4}
	})

	// Pick the victim by ring position: the owner of the sweep's last
	// cell, which is guaranteed still queued when the first item lands
	// (serial workers dispatch in index order). If the entry node owns
	// it, fall back to any peer owning a non-first cell; with no such
	// peer, every late cell is local and only completeness is testable.
	ring := nodes[0].srv.fab
	victim := ""
	assertDegraded := false
	if owner := ring.Owner(baseline[len(baseline)-1].Key); owner != nodes[0].url {
		victim, assertDegraded = owner, true
	} else {
		for _, item := range baseline[1:] {
			if owner := ring.Owner(item.Key); owner != nodes[0].url {
				victim = owner
			}
		}
		if victim == "" {
			victim = nodes[1].url
			t.Log("ring placed every late cell on the entry node; testing completeness only")
		}
	}

	resp := postJSON(t, nodes[0].url+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var items []SweepItem
	for sc.Scan() {
		var item SweepItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		items = append(items, item)
		if len(items) == 1 {
			for _, n := range nodes {
				if n.url == victim {
					n.ts.CloseClientConnections()
					n.ts.Close()
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if got := canonicalStream(t, items); got != want {
		t.Errorf("sweep with a dead node diverged:\n got: %s\nwant: %s", got, want)
	}
	for _, item := range items {
		if item.Error != "" {
			t.Errorf("cell %d failed instead of degrading: %s", item.Index, item.Error)
		}
	}
	if assertDegraded {
		if d := metricValue(t, nodes[0].url, "fabric_degraded_total"); d == 0 {
			t.Error("entry node never degraded despite its last cell's owner dying mid-sweep")
		}
	}
}

// TestAdmissionOverloadHTTP: a storm of distinct concurrent requests
// against a deliberately tiny node (one slot, one queue seat) is shed
// with 429 + Retry-After rather than absorbed, and the node serves
// normally once the storm passes.
func TestAdmissionOverloadHTTP(t *testing.T) {
	_, ts := newTestServerWith(t, Config{MaxInFlight: 1, MaxQueued: 1})

	collectors := []string{"PCM-Only", "KG-N", "KG-B", "KG-N+LOO", "KG-B+LOO", "KG-W", "KG-W-LOO", "KG-W-MDO"}
	reqs := make([]RunRequest, 0, 2*len(collectors))
	for _, k := range collectors {
		for _, inst := range []int{1, 2} {
			reqs = append(reqs, RunRequest{App: "pmd", Collector: k, Instances: inst})
		}
	}

	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
	)
	rejected, served := 0, 0
	start.Add(1)
	done.Add(len(reqs))
	for _, req := range reqs {
		go func(req RunRequest) {
			defer done.Done()
			start.Wait()
			resp := postJSON(t, ts.URL+"/v1/run", req)
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				mu.Lock()
				served++
				mu.Unlock()
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("run %+v = %d, want 200 or 429", req, resp.StatusCode)
			}
		}(req)
	}
	start.Done()
	done.Wait()

	if served == 0 {
		t.Error("overloaded node served nothing at all")
	}
	if rejected == 0 {
		t.Errorf("no request shed by a 1-slot/1-seat node under %d concurrent distinct requests", len(reqs))
	}
	if v := metricValue(t, ts.URL, "hybridserved_rejected_total"); v != uint64(rejected) {
		t.Errorf("hybridserved_rejected_total = %d, want %d", v, rejected)
	}

	// Recovery: the storm is over, the next request is served.
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{App: "pmd"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-storm run = %d, want 200", resp.StatusCode)
	}
}

// TestNodeHealthz: /v1/healthz reports identity, ring membership, and
// admission load.
func TestNodeHealthz(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	for _, n := range nodes {
		resp, err := http.Get(n.url + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Status      string   `json:"status"`
			Node        string   `json:"node"`
			Ring        []string `json:"ring"`
			MaxInflight int      `json:"maxInflight"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
			t.Fatal(derr)
		}
		resp.Body.Close()
		if out.Status != "ok" || out.Node != n.url {
			t.Errorf("healthz identity = %q/%q, want ok/%q", out.Status, out.Node, n.url)
		}
		if len(out.Ring) != 3 {
			t.Errorf("ring = %v, want all 3 members", out.Ring)
		}
		if out.MaxInflight != 4 {
			t.Errorf("maxInflight = %d, want 4", out.MaxInflight)
		}
	}
}

// newTestServerWith is newTestServer with an explicit Config.
func newTestServerWith(t *testing.T, cfg Config) (*hybridmem.Platform, *httptest.Server) {
	t.Helper()
	p := hybridmem.New(hybridmem.WithScale(hybridmem.Quick))
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return p, ts
}
