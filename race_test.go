//go:build race

package hybridmem

// raceEnabled shrinks the acceptance grids when the race detector is
// on: each platform run costs ~10x more, and the full 3x8 sweep pushes
// the package past go test's timeout on small machines. The reduced
// grid still exercises the worker pool, the cache, and determinism.
const raceEnabled = true
