// Command benchjson converts `go test -bench` output into the stable
// JSON document the repo's bench trajectory diffs across PRs
// (BENCH_<n>.json): benchmark name → ns/op plus, when the run used
// -benchmem, bytes/op and allocs/op.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem -run '^$' ./... | benchjson > BENCH_8.json
//	benchjson -o BENCH_8.json < bench.txt
//
// Non-benchmark lines (PASS, ok, pkg headers, goos/goarch) pass
// through silently; a benchmark reported twice (e.g. -count > 1)
// keeps its last measurement. The output shape is documented in
// docs/observability.md; keys marshal sorted, so two runs of the same
// suite diff cleanly.
//
// Exit status: 0 on success (even when zero benchmarks were found —
// the empty document is valid), 1 on a write error, 2 on bad flags.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Measurement is one benchmark's figures. NsPerOp is always present;
// BytesPerOp/AllocsPerOp only when the bench ran with -benchmem.
type Measurement struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  *uint64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp *uint64 `json:"allocsPerOp,omitempty"`
}

// Document is the BENCH_<n>.json schema, versioned so future PRs can
// extend it without breaking differs.
type Document struct {
	V          int                    `json:"v"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its exit code surfaced so the CLI contract is
// testable.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "write the JSON document here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	doc := Document{V: 1, Benchmarks: map[string]Measurement{}}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if name, m, ok := parseBenchLine(sc.Text()); ok {
			doc.Benchmarks[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "benchjson: reading input: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if *outPath == "" {
		if _, err := stdout.Write(out); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parseBenchLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   1   123456 ns/op   2048 B/op   12 allocs/op
//
// Measurements come as value-unit pairs after the iteration count;
// unknown units are skipped so future testing-package additions (or
// custom b.ReportMetric units) pass through without breaking the
// parse. Lines that are not benchmark results report ok=false.
func parseBenchLine(line string) (string, Measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Measurement{}, false
	}
	// fields[1] is the iteration count; a line like "BenchmarkFoo ---"
	// (a skip) has no count and no measurements.
	if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
		return "", Measurement{}, false
	}
	var m Measurement
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Measurement{}, false
			}
			m.NsPerOp = f
			seenNs = true
		case "B/op":
			if n, err := strconv.ParseUint(val, 10, 64); err == nil {
				m.BytesPerOp = &n
			}
		case "allocs/op":
			if n, err := strconv.ParseUint(val, 10, 64); err == nil {
				m.AllocsPerOp = &n
			}
		}
	}
	if !seenNs {
		return "", Measurement{}, false
	}
	return fields[0], m, true
}
