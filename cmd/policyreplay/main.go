// Command policyreplay re-drives placement policies over a recorded
// trace, entirely offline: no machine, kernel, or runtime is
// constructed, so a policy sweep over a trace takes milliseconds where
// the emulator run that produced it took minutes.
//
// Usage:
//
//	policyreplay -trace run.ndjson [-policy all|static|first-touch|
//	             write-threshold|wear-level] [-log-format text|json]
//
// Record traces with `hybridemu -trace out.ndjson ...` or stream them
// from a hybridserved instance (`GET /v1/trace?app=...`). "-" reads
// the trace from stdin; the trace is buffered in memory so every
// requested policy replays the same bytes.
//
// The comparison table reports, per replayed policy: quanta and
// actions, migrated pages and stall cycles (exact — the recorded
// executed costs — when the replayed decisions match the recorded
// stream, estimates otherwise), the estimated PCM write placement and
// its reduction against a no-migration baseline, and whether the
// replay reproduced the recorded action stream bit-identically.
//
// The table goes to stdout; diagnostics go to stderr as structured
// logs in -log-format (text or json — the same obs helper and flag
// hybridserved and policytune take, so a pipeline collecting the
// fleet's logs can parse every command the same way).
//
// Exit status: 0 on success, 1 when the trace is corrupt (the valid
// prefix is still replayed and reported) or the replay fails, 2 on bad
// flags, an unreadable trace path, or a version-skewed trace.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	hybridmem "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "recorded ndjson trace (hybridemu -trace); - for stdin")
	policyName := flag.String("policy", "all", "policy to replay, or all")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text or json")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logFormat, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "policyreplay: %v\n", err)
		os.Exit(2)
	}
	fail := func(err error) {
		log.Error("invalid invocation", "err", err)
		os.Exit(2)
	}

	if *tracePath == "" {
		fail(errors.New("-trace is required (record one with hybridemu -trace)"))
	}
	var data []byte
	if *tracePath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*tracePath)
	}
	if err != nil {
		fail(fmt.Errorf("reading trace: %w", err))
	}

	policies := hybridmem.Policies()
	if !strings.EqualFold(*policyName, "all") {
		pol, err := hybridmem.ParsePolicy(*policyName)
		if err != nil {
			fail(err)
		}
		policies = []hybridmem.Policy{pol}
	}

	// The header identifies the recorded run; read it once up front so
	// a version-skewed or headless trace fails before any table is
	// printed.
	hdr, err := trace.NewReader(bytes.NewReader(data)).Header()
	if err != nil {
		fail(err)
	}
	lang := hdr.Collector
	if hdr.Native {
		lang = "native"
	}
	fmt.Printf("trace: %s/%s x%d (%s, %s, seed %d), recorded policy %s\n",
		hdr.App, lang, hdr.Instances, hdr.Dataset, hdr.Mode, hdr.Seed, hdr.Policy)
	if _, quanta, derr := trace.DecodeAll(bytes.NewReader(data)); len(quanta) > 0 {
		if exp := trace.ExpandedSize(hdr, quanta); exp > len(data) {
			fmt.Printf("compaction: %d bytes on disk, %d expanded (%.1fx, keyframe interval %d)\n",
				len(data), exp, float64(exp)/float64(len(data)), hdr.KeyframeInterval)
		}
		_ = derr // a torn tail is reported per policy below
	}

	corrupt := false
	fmt.Printf("%-16s %8s %8s %10s %14s %14s %8s %s\n",
		"policy", "quanta", "actions", "migrated", "stall-cycles", "pcm-writes", "vs-base", "matches-recorded")
	for _, pol := range policies {
		st, err := hybridmem.ReplayTrace(bytes.NewReader(data), pol)
		if err != nil && !errors.Is(err, hybridmem.ErrTraceCorrupt) {
			log.Error("replay failed", "policy", pol.String(), "err", err)
			os.Exit(1)
		}
		match := "yes"
		if !st.MatchesRecorded {
			match = fmt.Sprintf("no (quantum %d)", st.FirstMismatchQuantum)
		}
		if pol.String() != st.RecordedPolicy {
			match = "-" // only the recorded policy owes a bit-identical replay
		}
		fmt.Printf("%-16s %8d %8d %10d %14.0f %14d %7.1f%% %s\n",
			pol, st.Quanta, st.Actions, st.PagesMigrated, st.StallCycles,
			st.PCMWriteLines, 100*st.PCMWriteReduction(), match)
		if err != nil {
			// Corrupt tail: the numbers above cover the valid prefix.
			log.Error("trace truncated", "policy", pol.String(), "err", err)
			corrupt = true
		}
	}
	if corrupt {
		os.Exit(1)
	}
}
