package library

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

const specKey = "mode=emulation;seed=1;policy=write-threshold(hot=256);app=PR;gc=KG-N;n=1"

// synthTrace records n quanta with keyframe interval k, churning the
// views so the delta chains are non-trivial, and finishes with the
// footer the library requires.
func synthTrace(t *testing.T, n, k int) []byte {
	t.Helper()
	h := trace.Header{
		Key:                 specKey,
		App:                 "PR",
		Collector:           "KG-N",
		Instances:           1,
		Dataset:             "default",
		Mode:                "emulation",
		Seed:                1,
		MigrationPageCycles: 1200,
		TLBShootdownCycles:  4000,
		GroupBytes:          0x10000,
		KeyframeInterval:    k,
	}
	h.SetPolicyConfig(policy.Config{Kind: policy.WriteThreshold, HotWriteLines: 100})
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= n; q++ {
		rec.OnQuantum("PR#0", synthView(q), nil, nil)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// synthView varies per quantum: group heat changes every quantum, and
// a group appears/disappears on a cycle, so deltas carry changes and
// tombstones.
func synthView(q int) policy.View {
	groups := []policy.GroupStat{
		{Addr: 0x10000, Node: 0, Pages: 16, WriteLines: uint64(q)},
		{Addr: 0x20000, Node: 1, Pages: 16, WriteLines: uint64(2 * q)},
	}
	if q%3 != 0 {
		groups = append(groups, policy.GroupStat{Addr: 0x30000, Node: 1, Pages: 16, ReadLines: uint64(q)})
	}
	return policy.View{Quantum: uint64(q), Groups: groups, DRAMPages: 16, PCMPages: 32}
}

func TestNeighborhoodKey(t *testing.T) {
	hood := NeighborhoodKey(specKey)
	want := "mode=emulation;seed=1;app=PR;gc=KG-N;n=1"
	if hood != want {
		t.Errorf("NeighborhoodKey = %q, want %q", hood, want)
	}
	// Different policies, same neighborhood; a bare neighborhood is a
	// fixed point.
	other := NeighborhoodKey("mode=emulation;seed=1;policy=wear-level(rot=8);app=PR;gc=KG-N;n=1")
	if other != hood {
		t.Errorf("policy variant mapped to %q, want %q", other, hood)
	}
	if NeighborhoodKey(hood) != hood {
		t.Errorf("neighborhood key is not a fixed point: %q", NeighborhoodKey(hood))
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := synthTrace(t, 10, 4)
	hood, err := lib.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if hood != NeighborhoodKey(specKey) {
		t.Errorf("Put neighborhood = %q", hood)
	}
	if lib.Len() != 1 || !lib.Has(specKey) {
		t.Errorf("library does not report the trace: len=%d has=%v", lib.Len(), lib.Has(specKey))
	}
	// Lookup by a different policy's full key hits the same entry.
	tr, err := lib.Get("mode=emulation;seed=1;policy=static;app=PR;gc=KG-N;n=1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr.Bytes(), data) {
		t.Error("library bytes differ from the ingested trace")
	}
	if tr.Quanta() != 10 {
		t.Errorf("Quanta = %d, want 10", tr.Quanta())
	}

	// A fresh Open over the same directory re-indexes it.
	lib2, err := Open(lib.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if !lib2.Has(specKey) {
		t.Error("reopened library lost the trace")
	}
	if got := lib2.Neighborhoods(); len(got) != 1 || got[0] != hood {
		t.Errorf("Neighborhoods = %v", got)
	}

	if _, err := lib.Get("mode=emulation;seed=2;app=PR;gc=KG-N;n=1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown neighborhood err = %v, want ErrNotFound", err)
	}
}

func TestPutRejectsBadTraces(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := synthTrace(t, 6, 3)

	// No footer: cut the last line.
	cut := bytes.TrimRight(data, "\n")
	cut = cut[:bytes.LastIndexByte(cut, '\n')+1]
	if _, err := lib.Put(cut); err == nil {
		t.Error("footerless trace accepted")
	}
	// Torn tail.
	if _, err := lib.Put(data[:len(data)-20]); err == nil {
		t.Error("torn trace accepted")
	}
	// No spec key.
	anon := bytes.Replace(data, []byte(`"key":"`+specKey+`",`), nil, 1)
	if bytes.Equal(anon, data) {
		t.Fatal("key field not found")
	}
	if _, err := lib.Put(anon); err == nil {
		t.Error("keyless trace accepted")
	}
	if lib.Len() != 0 {
		t.Errorf("rejected traces left %d entries", lib.Len())
	}
}

// TestAtSeeksThroughIndex is the acceptance read-counting test: At(n)
// must decode O(keyframe interval) records wherever n lands, and the
// reconstructed quantum must be bit-identical to a front-to-back
// decode.
func TestAtSeeksThroughIndex(t *testing.T) {
	const n, k = 40, 4
	data := synthTrace(t, n, k)
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Put(data); err != nil {
		t.Fatal(err)
	}
	tr, err := lib.Get(specKey)
	if err != nil {
		t.Fatal(err)
	}

	_, all, err := trace.DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("decoded %d quanta, want %d", len(all), n)
	}

	for _, idx := range []int{0, 1, k - 1, k, 2*k + 1, n - 2, n - 1} {
		q, reads, err := tr.At(idx)
		if err != nil {
			t.Fatalf("At(%d): %v", idx, err)
		}
		// O(K), not O(N): a seek reads at most one keyframe interval.
		if reads > k {
			t.Errorf("At(%d) decoded %d records, want <= keyframe interval %d", idx, reads, k)
		}
		if want := idx%k + 1; reads != want {
			t.Errorf("At(%d) decoded %d records, want %d (distance from boundary)", idx, reads, want)
		}
		if !reflect.DeepEqual(q, all[idx]) {
			t.Errorf("At(%d) reconstruction diverged from sequential decode:\n got %+v\nwant %+v",
				idx, q, all[idx])
		}
	}

	if _, _, err := tr.At(n); err == nil {
		t.Error("At past the end must fail")
	}
	if _, _, err := tr.At(-1); err == nil {
		t.Error("At(-1) must fail")
	}

	// Backward seeks: At is stateless random access, so a descending
	// index sequence must cost and return exactly what ascending seeks
	// did — no cursor, no rewind penalty, no state bleeding between
	// calls on the same Trace.
	for _, idx := range []int{n - 1, 2 * k, k + 1, 1, 0} {
		q, reads, err := tr.At(idx)
		if err != nil {
			t.Fatalf("backward At(%d): %v", idx, err)
		}
		if want := idx%k + 1; reads != want {
			t.Errorf("backward At(%d) decoded %d records, want %d", idx, reads, want)
		}
		if !reflect.DeepEqual(q, all[idx]) {
			t.Errorf("backward At(%d) diverged from sequential decode", idx)
		}
	}
}

// TestAtSeekPastFooter pins the failure mode of a footer that oversells
// its trace: seeking to a quantum the index admits but the data does
// not hold must fail cleanly, never return a wrong or zero quantum.
func TestAtSeekPastFooter(t *testing.T) {
	const n, k = 12, 4
	data := synthTrace(t, n, k)

	// Doctor the footer: claim 5 more quanta than the trace holds.
	// Load validates only header + footer shape, so this parses — the
	// overselling only surfaces when a seek walks off the data.
	foot, ok := footerOf(data)
	if !ok {
		t.Fatal("synthesized trace has no footer")
	}
	foot.Quanta = n + 5
	doctored := replaceFooter(t, data, foot)
	tr, err := Load(doctored)
	if err != nil {
		t.Fatalf("Load of doctored trace: %v", err)
	}
	if _, _, err := tr.At(n - 1); err != nil {
		t.Fatalf("At(%d) within the real data: %v", n-1, err)
	}
	for _, idx := range []int{n, n + 4} {
		if q, _, err := tr.At(idx); err == nil {
			t.Errorf("At(%d) past the recorded data returned %+v, want error", idx, q)
		}
	}

	// A boundary whose byte offset points outside the trace must fail
	// the seek, not slice out of range.
	foot2, _ := footerOf(data)
	foot2.Boundaries[len(foot2.Boundaries)-1][1] = int64(len(data)) + 100
	tr2, err := Load(replaceFooter(t, data, foot2))
	if err != nil {
		t.Fatalf("Load with out-of-range boundary: %v", err)
	}
	if _, _, err := tr2.At(n - 1); err == nil {
		t.Error("At through an out-of-range boundary offset must fail")
	}
}

// replaceFooter rewrites a complete trace's footer line.
func replaceFooter(t *testing.T, data []byte, f trace.Footer) []byte {
	t.Helper()
	trimmed := bytes.TrimRight(data, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	line, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return append(append(append([]byte(nil), trimmed[:i+1]...), line...), '\n')
}

func TestOpenRejectsUnreadableEntries(t *testing.T) {
	dir := t.TempDir()
	lib, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Put(synthTrace(t, 4, 2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry's header on disk: the next Open must refuse.
	names := lib.Neighborhoods()
	if len(names) != 1 {
		t.Fatal("expected one entry")
	}
	tr, err := lib.Get(names[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(tr.Bytes(), []byte(`{"version":2,`), []byte(`{"version":1,`), 1)
	path := filepath.Join(dir, fileName(names[0]))
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted a library with a version-skewed entry")
	}
}
