package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanContext identifies a span within a trace, in W3C trace-context
// terms: a 32-hex-digit trace id and a 16-hex-digit span id.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both ids have the right shape.
func (sc SpanContext) Valid() bool {
	return isHex(sc.TraceID, 32) && isHex(sc.SpanID, 16) &&
		sc.TraceID != zeroTrace && sc.SpanID != zeroSpan
}

const (
	zeroTrace = "00000000000000000000000000000000"
	zeroSpan  = "0000000000000000"
)

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set). Empty string if invalid.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except ff and ignores trailing fields, per the spec's
// forward-compatibility rules.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	ver, trace, span := s[0:2], s[3:35], s[36:52]
	if !isHex(ver, 2) || ver == "ff" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: trace, SpanID: span}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SpanRecord is the ndjson wire form of a finished span, as written to
// the sink and streamed from GET /v1/spans.
type SpanRecord struct {
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Node   string            `json:"node,omitempty"`
	Start  int64             `json:"startUnixNano"`
	DurNs  int64             `json:"durNs"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded in-memory ring (backing the
// /v1/spans endpoint) and, optionally, an ndjson sink. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Tracer struct {
	node string

	mu      sync.Mutex
	sink    io.Writer
	sinkErr error // first sink write error; latched, stops the sink
	ring    []SpanRecord
	head    int // next write position
	n       int // live records in ring
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithSpanSink streams every finished span to w as one JSON object per
// line. A nil w is ignored. The first write error disables the sink.
func WithSpanSink(w io.Writer) TracerOption {
	return func(t *Tracer) { t.sink = w }
}

// WithRingSize bounds the in-memory span buffer (default 1024).
func WithRingSize(n int) TracerOption {
	return func(t *Tracer) {
		if n > 0 {
			t.ring = make([]SpanRecord, n)
		}
	}
}

// NewTracer returns a tracer stamping node onto every span.
func NewTracer(node string, opts ...TracerOption) *Tracer {
	t := &Tracer{node: node, ring: make([]SpanRecord, 1024)}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Span is an in-progress operation. Created by Tracer.Start/StartSpan,
// finished by End. Methods are no-ops on a nil receiver.
type Span struct {
	t     *Tracer
	rec   SpanRecord
	start time.Time
	mu    sync.Mutex
	done  bool
}

// Start begins a span named name, parented to the span or remote
// context carried by ctx (a fresh trace if there is neither), and
// returns a derived context carrying the new span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := t.StartSpan(SpanContextFrom(ctx), name)
	return ContextWithSpan(ctx, sp), sp
}

// StartSpan begins a span under parent (a fresh trace if parent is
// invalid). It is the context-free entry point for layers, like the
// emulator core, that thread SpanContext explicitly.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{
		t:     t,
		start: time.Now(),
		rec: SpanRecord{
			Span: newID(8),
			Name: name,
			Node: t.node,
		},
	}
	if parent.Valid() {
		sp.rec.Trace = parent.TraceID
		sp.rec.Parent = parent.SpanID
	} else {
		sp.rec.Trace = newID(16)
	}
	sp.rec.Start = sp.start.UnixNano()
	return sp
}

// Emit records an already-finished span in one call — used for
// high-rate events like policy quanta where allocating a live Span per
// event is wasteful. Returns the emitted span's context.
func (t *Tracer) Emit(parent SpanContext, name string, start time.Time, d time.Duration, attrs map[string]string) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	rec := SpanRecord{
		Span:  newID(8),
		Name:  name,
		Node:  t.node,
		Start: start.UnixNano(),
		DurNs: d.Nanoseconds(),
		Attrs: attrs,
	}
	if parent.Valid() {
		rec.Trace = parent.TraceID
		rec.Parent = parent.SpanID
	} else {
		rec.Trace = newID(16)
	}
	t.record(rec)
	return SpanContext{TraceID: rec.Trace, SpanID: rec.Span}
}

// Recent returns up to limit most-recent finished spans, oldest first.
// limit <= 0 returns everything in the ring.
func (t *Tracer) Recent(limit int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]SpanRecord, 0, n)
	for i := n; i > 0; i-- {
		out = append(out, t.ring[(t.head-i+len(t.ring))%len(t.ring)])
	}
	return out
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.head] = rec
	t.head = (t.head + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	if t.sink != nil && t.sinkErr == nil {
		line, err := json.Marshal(rec)
		if err == nil {
			line = append(line, '\n')
			_, err = t.sink.Write(line)
		}
		if err != nil {
			t.sinkErr = err
		}
	}
}

// Context returns the span's identity (zero on a nil receiver).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.Trace, SpanID: s.rec.Span}
}

// SetAttr attaches a string attribute. No-op after End.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string)
	}
	s.rec.Attrs[k] = v
}

// End finishes the span and records it. Subsequent calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.rec.DurNs = time.Since(s.start).Nanoseconds()
	rec := s.rec
	s.mu.Unlock()
	s.t.record(rec)
}

type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// ContextWithSpan returns ctx carrying sp (ctx unchanged if sp is nil).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// ContextWithRemote returns ctx carrying a remote parent context, as
// extracted from an incoming traceparent header. A locally started
// span takes precedence over the remote seed.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// SpanContextFrom returns the identity of the innermost span carried
// by ctx — a live local span first, else a remote seed, else zero.
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	if sp, ok := ctx.Value(spanKey).(*Span); ok {
		return sp.Context()
	}
	if sc, ok := ctx.Value(remoteKey).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}

// newID returns 2n lowercase hex digits of cryptographic randomness.
func newID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; if it
		// somehow does, a constant non-zero id keeps spans flowing.
		for i := range b {
			b[i] = 0xab
		}
	}
	return hex.EncodeToString(b)
}
