// Command hybridtop is a dependency-free terminal dashboard for a
// hybridserved fleet: it polls one node's GET /v1/fleet/status (which
// fans out over the whole ring) and renders the fleet headline, a
// per-node table, and the active runs — a `top` for emulation runs.
//
// Usage:
//
//	hybridtop [-server http://localhost:8080] [-interval 2s]
//	hybridtop -once            # one snapshot, no screen clearing
//	hybridtop -once -json      # raw fleet status JSON, for scripting
//
// Point -server at any node; the fleet document is the same from
// every member (modulo probe timing). Unreachable peers render in the
// UNREACHABLE line and shrink the tables — hybridtop itself only
// fails when the node it polls is down.
//
// Exit status: 0 on success, 1 when the polled node cannot be reached
// (-once mode; the interactive loop keeps retrying and shows the
// error in place), 2 on bad flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code surfaced so the CLI contract is
// testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hybridtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://localhost:8080", "base URL of any fleet node")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "render one snapshot and exit")
	asJSON := fs.Bool("json", false, "emit the raw fleet status JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *interval <= 0 {
		fmt.Fprintln(stderr, "hybridtop: -interval must be positive")
		return 2
	}
	base := strings.TrimRight(*server, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	for {
		st, err := fetch(client, base)
		switch {
		case err != nil && *once:
			fmt.Fprintf(stderr, "hybridtop: %v\n", err)
			return 1
		case err != nil:
			// Interactive mode rides out a bounce of the polled node:
			// show the error where the dashboard was and keep polling.
			fmt.Fprintf(stdout, "%s[hybridtop] %s unreachable: %v (retrying every %s)\n",
				clearScreen, base, err, *interval)
		case *asJSON:
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			enc.Encode(st)
		case *once:
			render(stdout, base, st, "")
		default:
			render(stdout, base, st, clearScreen)
		}
		if *once {
			return 0
		}
		time.Sleep(*interval)
	}
}

// clearScreen is the ANSI clear + home sequence the interactive loop
// repaints with.
const clearScreen = "\x1b[2J\x1b[H"

// fetch pulls one fleet status document.
func fetch(client *http.Client, base string) (serve.FleetStatus, error) {
	var st serve.FleetStatus
	resp, err := client.Get(base + "/v1/fleet/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s answered %s", base, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding fleet status: %w", err)
	}
	return st, nil
}

// render paints the dashboard: headline, per-node table, active runs.
func render(w io.Writer, base string, st serve.FleetStatus, prefix string) {
	var b strings.Builder
	b.WriteString(prefix)
	fmt.Fprintf(&b, "hybridtop — %s — %s\n", base, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "fleet: %d nodes (%d healthy, %d unreachable)  active %d  inflight %d  queued %d\n",
		st.Fleet.Nodes, st.Fleet.Healthy, st.Fleet.Unreachable,
		st.Fleet.ActiveRuns, st.Fleet.Inflight, st.Fleet.Queued)
	fmt.Fprintf(&b, "runs:  started %d  done %d  failed %d   routing: fwd %d  coalesced %d  degraded %d  rejected %d   store: %d recs / %s\n",
		st.Fleet.Started, st.Fleet.Done, st.Fleet.Failed,
		st.Fleet.Forwarded, st.Fleet.Coalesced, st.Fleet.Degraded, st.Fleet.Rejected,
		st.Fleet.StoreRecords, fmtBytes(st.Fleet.StoreBytes))
	if served, misses, validations, refreshes := estimateTotals(st); served+misses > 0 {
		// The estimate tier is live somewhere in the fleet: show how
		// much traffic it absorbs and what the drift validator found.
		rate := 100 * float64(served) / float64(served+misses)
		fmt.Fprintf(&b, "estimate: served %d  hit-rate %.0f%%  validated %d  refreshed %d\n",
			served, rate, validations, refreshes)
	}
	if len(st.Unreachable) > 0 {
		fmt.Fprintf(&b, "UNREACHABLE: %s\n", strings.Join(st.Unreachable, ", "))
	}

	b.WriteString("\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tINFLIGHT\tQUEUED\tACTIVE\tDONE\tFAILED\tFWD\tCOAL\tDEGR\tREJ\tEST\tSTORE")
	for _, n := range st.Nodes {
		fmt.Fprintf(tw, "%s\t%d/%d\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			n.Node, n.Inflight, n.MaxInflight, n.Queued, n.MaxQueued,
			len(n.Runs.Active), n.Runs.Done, n.Runs.Failed,
			n.Forwarded, n.Coalesced, n.Degraded, n.Rejected, n.Estimated, n.StoreRecords)
	}
	tw.Flush()

	runs := activeRuns(st)
	b.WriteString("\n")
	if len(runs) == 0 {
		b.WriteString("no active runs\n")
	} else {
		fmt.Fprintf(&b, "active runs (%d):\n", len(runs))
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "RUN\tNODE\tKIND\tAPP\tSTATE\tQUANTA\tMIGRATED\tCELLS\tAGE")
		for _, ar := range runs {
			cells := "-"
			if ar.run.Cells > 0 {
				cells = fmt.Sprintf("%d/%d", ar.run.CellsDone, ar.run.Cells)
			}
			age := time.Since(time.Unix(0, ar.run.StartUnixNano)).Round(100 * time.Millisecond)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%d\t%s\t%s\n",
				ar.run.ID, ar.node, ar.run.Kind, orDash(ar.run.App), ar.run.State,
				ar.run.Quanta, ar.run.PagesMigrated, cells, age)
		}
		tw.Flush()
	}
	io.WriteString(w, b.String())
}

// estimateTotals sums the estimate tier's counters across the fleet's
// reachable nodes.
func estimateTotals(st serve.FleetStatus) (served, misses, validations, refreshes uint64) {
	for _, n := range st.Nodes {
		served += n.Estimated
		misses += n.EstimateMisses
		validations += n.EstimateValidations
		refreshes += n.EstimateRefreshes
	}
	return served, misses, validations, refreshes
}

type activeRun struct {
	node string
	run  serve.RunInfo
}

// activeRuns flattens every node's active list, newest first.
func activeRuns(st serve.FleetStatus) []activeRun {
	var out []activeRun
	for _, n := range st.Nodes {
		for _, info := range n.Runs.Active {
			out = append(out, activeRun{node: n.Node, run: info})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].run.StartUnixNano != out[j].run.StartUnixNano {
			return out[i].run.StartUnixNano > out[j].run.StartUnixNano
		}
		return out[i].run.ID < out[j].run.ID
	})
	return out
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// fmtBytes renders a byte count with a binary unit, top-style.
func fmtBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
