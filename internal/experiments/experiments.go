// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables I–III, Figures 3–8) plus the ablation
// studies DESIGN.md calls out. Each driver expresses its grid of
// platform runs against the public hybridmem.Platform engine: shared
// configurations (e.g. the 1-instance PCM-Only runs of Figs 4, 5, and
// 6) are served from the platform's result cache, and the wide grids
// are prefetched through RunBatch so they execute in parallel across
// host cores.
//
// Reproduction targets the paper's *shape* — orderings, ratios,
// crossovers — not absolute counts: the substrate is a software model
// of the platform, and the workloads are calibrated stand-ins (see
// DESIGN.md). EXPERIMENTS.md records paper-vs-measured for every row.
package experiments

import (
	"context"

	hybridmem "repro"
	"repro/internal/workloads"
	"repro/internal/workloads/dacapo"
)

// Scale selects input sizes (re-exported from the public facade for
// the drivers' callers).
type Scale = hybridmem.Scale

// Experiment scales.
const (
	// Quick is quarter-scale for tests and benches.
	Quick = hybridmem.Quick
	// Std is the scale EXPERIMENTS.md is generated at.
	Std = hybridmem.Std
	// Full is the paper's scale.
	Full = hybridmem.Full
)

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  uint64
	// Parallelism caps RunBatch workers (0 = one per core).
	Parallelism int
	// StoreDir attaches a durable result store (hybridmem.WithStore):
	// regenerating the same figures twice recomputes nothing, and an
	// interrupted regeneration resumes where it stopped.
	StoreDir string
	// Policy is the platform's placement policy (Static reproduces
	// the paper; other policies re-run the grids under dynamic
	// placement). The policy-comparison ablation sweeps all policies
	// regardless.
	Policy hybridmem.Policy
}

// dacapoApps returns the DaCapo names an experiment iterates: a
// representative trio in Quick mode, a five-app subset at Std (the
// multiprogrammed figures multiply every run by up to 4x), and the
// full suite at Full scale.
func (c Config) dacapoApps() []string {
	switch c.Scale {
	case Quick:
		return []string{"lusearch", "xalan", "pmd"}
	case Std:
		return []string{"lusearch", "xalan", "pmd", "bloat", "avrora"}
	default:
		return dacapo.Names()
	}
}

// Runner drives the experiment grids through one shared Platform, so
// every driver reuses the runs the others already executed. Driver
// methods take a context; cancelling it stops the underlying batches.
type Runner struct {
	cfg Config
	p   *hybridmem.Platform
}

// NewRunner returns a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	opts := []hybridmem.Option{
		hybridmem.WithScale(cfg.Scale),
		hybridmem.WithSeed(cfg.Seed + 1),
		hybridmem.WithParallelism(cfg.Parallelism),
	}
	if cfg.Policy != hybridmem.Static {
		opts = append(opts, hybridmem.WithPolicy(cfg.Policy))
	}
	if cfg.StoreDir != "" {
		opts = append(opts, hybridmem.WithStore(cfg.StoreDir))
	}
	return &Runner{cfg: cfg, p: hybridmem.New(opts...)}
}

// CacheStats reports the shared platform cache behind all drivers —
// how much of a regeneration was computed vs replayed.
func (r *Runner) CacheStats() hybridmem.CacheStats { return r.p.CacheStats() }

// at returns the platform for a pipeline mode.
func (r *Runner) at(mode hybridmem.Mode) *hybridmem.Platform {
	if mode == hybridmem.Emulation {
		return r.p
	}
	return r.p.With(hybridmem.WithMode(mode))
}

// emul runs one managed emulation.
func (r *Runner) emul(ctx context.Context, appName string, kind hybridmem.Collector, instances int, ds workloads.Dataset) (hybridmem.Result, error) {
	return r.p.Run(ctx, hybridmem.RunSpec{
		AppName: appName, Collector: kind, Instances: instances, Dataset: ds,
	})
}

// sim runs one managed simulation (Sniper pipeline).
func (r *Runner) sim(ctx context.Context, appName string, kind hybridmem.Collector) (hybridmem.Result, error) {
	return r.at(hybridmem.Simulation).Run(ctx, hybridmem.RunSpec{AppName: appName, Collector: kind})
}

// reference runs the Table II reference setup: PCM-Only bindings with
// threads on socket 0, isolating system-level S0 effects.
func (r *Runner) reference(ctx context.Context, mode hybridmem.Mode, appName string) (hybridmem.Result, error) {
	return r.at(mode).With(hybridmem.WithThreadSocket(0)).Run(ctx,
		hybridmem.RunSpec{AppName: appName, Collector: hybridmem.PCMOnly})
}

// prefetch warms the platform cache for a grid of specs in parallel;
// the drivers then read the same runs back sequentially as cache hits.
func (r *Runner) prefetch(ctx context.Context, specs []hybridmem.RunSpec) error {
	_, err := r.p.RunBatch(ctx, specs...)
	return err
}

// suiteApps maps each suite to the evaluation's application names.
func (r *Runner) suiteApps(s workloads.Suite) []string {
	switch s {
	case workloads.DaCapo:
		return r.cfg.dacapoApps()
	case workloads.Pjbb:
		return []string{"pjbb"}
	default:
		return []string{"PR", "CC", "ALS"}
	}
}

// allApps lists every application in the evaluation.
func (r *Runner) allApps() []string {
	var names []string
	names = append(names, r.cfg.dacapoApps()...)
	names = append(names, "pjbb", "PR", "CC", "ALS")
	return names
}
