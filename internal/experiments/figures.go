package experiments

import (
	"context"
	"fmt"

	hybridmem "repro"
	"repro/internal/lifetime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig3Row compares one GraphChi application across languages and
// collectors (writes normalized to the C++ implementation).
type Fig3Row struct {
	App        string
	CppWrites  uint64
	JavaOverC  float64 // Java PCM-Only / C++
	KGNOverC   float64
	KGWOverC   float64
	AllocRatio float64 // Java allocation volume / C++ (memcheck analog)
	CppPeakMB  float64 // massif analog
	JavaPeakMB float64
}

// Fig3 reproduces the language comparison: PCM writes of the C++ and
// Java GraphChi implementations on PCM-Only, and Java under KG-N and
// KG-W on hybrid memory.
func (r *Runner) Fig3(ctx context.Context) ([]Fig3Row, error) {
	graph := []string{"PR", "CC", "ALS"}
	specs := hybridmem.NewSweep(graph...).Native().Specs()
	specs = append(specs, hybridmem.NewSweep(graph...).
		Collectors(hybridmem.PCMOnly, hybridmem.KGN, hybridmem.KGW).Specs()...)
	if err := r.prefetch(ctx, specs); err != nil {
		return nil, err
	}
	var rows []Fig3Row
	for _, app := range graph {
		cpp, err := r.p.Run(ctx, hybridmem.RunSpec{AppName: app, Native: true})
		if err != nil {
			return nil, err
		}
		java, err := r.emul(ctx, app, hybridmem.PCMOnly, 1, 0)
		if err != nil {
			return nil, err
		}
		kgn, err := r.emul(ctx, app, hybridmem.KGN, 1, 0)
		if err != nil {
			return nil, err
		}
		kgw, err := r.emul(ctx, app, hybridmem.KGW, 1, 0)
		if err != nil {
			return nil, err
		}
		cw := float64(cpp.PCMWriteLines)
		rows = append(rows, Fig3Row{
			App:        app,
			CppWrites:  cpp.PCMWriteLines,
			JavaOverC:  stats.Ratio(float64(java.PCMWriteLines), cw),
			KGNOverC:   stats.Ratio(float64(kgn.PCMWriteLines), cw),
			KGWOverC:   stats.Ratio(float64(kgw.PCMWriteLines), cw),
			AllocRatio: stats.Ratio(float64(java.AllocBytes[0]), float64(cpp.AllocBytes[0])),
			CppPeakMB:  float64(cpp.PeakResidentBytes[0]) / (1 << 20),
			JavaPeakMB: float64(java.PeakResidentBytes[0]) / (1 << 20),
		})
	}
	return rows, nil
}

// RenderFig3 renders the language-comparison figure as rows.
func RenderFig3(rows []Fig3Row) string {
	tb := stats.NewTable("Fig 3: PCM writes normalized to C++ (GraphChi)",
		"App", "C++", "Java", "KG-N", "KG-W", "alloc Java/C++", "peak C++ MB", "peak Java MB")
	for _, r := range rows {
		tb.AddRowf(r.App, 1.0, r.JavaOverC, r.KGNOverC, r.KGWOverC,
			r.AllocRatio, r.CppPeakMB, r.JavaPeakMB)
	}
	return tb.String()
}

// Fig4Series is the multiprogrammed write growth of one suite.
type Fig4Series struct {
	Label  string
	Growth [3]float64 // PCM writes at N=1,2,4 normalized to N=1
}

// Fig4Result holds both panels of Fig 4.
type Fig4Result struct {
	PCMOnly []Fig4Series // panel (a)
	KGW     []Fig4Series // panel (b)
}

// Fig4 reproduces the multiprogramming study: average PCM writes at
// 1, 2, and 4 instances, normalized per application to its 1-instance
// writes, averaged per suite, under PCM-Only and KG-W.
func (r *Runner) Fig4(ctx context.Context) (Fig4Result, error) {
	var res Fig4Result
	counts := []int{1, 2, 4}
	if err := r.prefetch(ctx, hybridmem.NewSweep(r.allApps()...).
		Collectors(hybridmem.PCMOnly, hybridmem.KGW).
		Instances(counts...).Specs()); err != nil {
		return res, err
	}
	for _, plan := range []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGW} {
		var all [][3]float64
		var series []Fig4Series
		for _, suite := range []workloads.Suite{workloads.DaCapo, workloads.Pjbb, workloads.GraphChi} {
			var perApp [][3]float64
			for _, app := range r.suiteApps(suite) {
				var g [3]float64
				base := 0.0
				for i, n := range counts {
					run, err := r.emul(ctx, app, plan, n, 0)
					if err != nil {
						return res, err
					}
					w := float64(run.PCMWriteLines)
					if i == 0 {
						base = w
					}
					g[i] = stats.Ratio(w, base)
				}
				perApp = append(perApp, g)
				all = append(all, g)
			}
			series = append(series, Fig4Series{Label: suite.String(), Growth: avg3(perApp)})
		}
		series = append(series, Fig4Series{Label: "All", Growth: avg3(all)})
		if plan == hybridmem.PCMOnly {
			res.PCMOnly = series
		} else {
			res.KGW = series
		}
	}
	return res, nil
}

func avg3(xs [][3]float64) [3]float64 {
	var out [3]float64
	if len(xs) == 0 {
		return out
	}
	for _, x := range xs {
		for i := 0; i < 3; i++ {
			out[i] += x[i]
		}
	}
	for i := 0; i < 3; i++ {
		out[i] /= float64(len(xs))
	}
	return out
}

// RenderFig4 renders both panels.
func RenderFig4(res Fig4Result) string {
	render := func(title string, series []Fig4Series) string {
		tb := stats.NewTable(title, "Suite", "N=1", "N=2", "N=4")
		for _, s := range series {
			tb.AddRowf(s.Label, s.Growth[0], s.Growth[1], s.Growth[2])
		}
		return tb.String()
	}
	return render("Fig 4a: PCM writes vs instances (PCM-Only, normalized to N=1)", res.PCMOnly) +
		render("Fig 4b: PCM writes vs instances (KG-W, normalized to N=1)", res.KGW)
}

// Fig5Result compares Pjbb and GraphChi to DaCapo on a PCM-Only
// system: raw writes (a) and write rates (b), per instance count.
type Fig5Result struct {
	// WritesRel[suite][n]: suite-average PCM writes relative to the
	// DaCapo average; suites are Pjbb (0) and GraphChi (1).
	WritesRel [2][3]float64
	RatesRel  [2][3]float64
}

// Fig5 reproduces the suite comparison.
func (r *Runner) Fig5(ctx context.Context) (Fig5Result, error) {
	var res Fig5Result
	counts := []int{1, 2, 4}
	if err := r.prefetch(ctx, hybridmem.NewSweep(r.allApps()...).
		Collectors(hybridmem.PCMOnly).
		Instances(counts...).Specs()); err != nil {
		return res, err
	}
	suiteAvg := func(suite workloads.Suite, n int) (writes, rate float64, err error) {
		var ws, rs []float64
		for _, app := range r.suiteApps(suite) {
			run, err := r.emul(ctx, app, hybridmem.PCMOnly, n, 0)
			if err != nil {
				return 0, 0, err
			}
			ws = append(ws, float64(run.PCMWriteLines))
			rs = append(rs, run.PCMRateMBs())
		}
		return stats.Mean(ws), stats.Mean(rs), nil
	}
	for ni, n := range counts {
		dw, dr, err := suiteAvg(workloads.DaCapo, n)
		if err != nil {
			return res, err
		}
		for si, suite := range []workloads.Suite{workloads.Pjbb, workloads.GraphChi} {
			w, rt, err := suiteAvg(suite, n)
			if err != nil {
				return res, err
			}
			res.WritesRel[si][ni] = stats.Ratio(w, dw)
			res.RatesRel[si][ni] = stats.Ratio(rt, dr)
		}
	}
	return res, nil
}

// RenderFig5 renders both panels.
func RenderFig5(res Fig5Result) string {
	tb := stats.NewTable("Fig 5a: PCM writes relative to DaCapo (PCM-Only)",
		"Suite", "N=1", "N=2", "N=4")
	tb.AddRowf("Pjbb", res.WritesRel[0][0], res.WritesRel[0][1], res.WritesRel[0][2])
	tb.AddRowf("GraphChi", res.WritesRel[1][0], res.WritesRel[1][1], res.WritesRel[1][2])
	out := tb.String()
	tb2 := stats.NewTable("Fig 5b: PCM write rates relative to DaCapo (PCM-Only)",
		"Suite", "N=1", "N=2", "N=4")
	tb2.AddRowf("Pjbb", res.RatesRel[0][0], res.RatesRel[0][1], res.RatesRel[0][2])
	tb2.AddRowf("GraphChi", res.RatesRel[1][0], res.RatesRel[1][1], res.RatesRel[1][2])
	return out + tb2.String()
}

// Fig6Row is one application's write rates under the four collectors.
type Fig6Row struct {
	App     string
	RateMBs [4]float64 // PCM-Only, KG-N, KG-B, KG-W
}

// Fig6 reproduces the write-rate figure: per-application PCM write
// rates in MB/s against the recommended 140 MB/s line.
func (r *Runner) Fig6(ctx context.Context) ([]Fig6Row, float64, error) {
	kinds := []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGN, hybridmem.KGB, hybridmem.KGW}
	if err := r.prefetch(ctx, hybridmem.NewSweep(r.allApps()...).
		Collectors(kinds...).Specs()); err != nil {
		return nil, 0, err
	}
	var rows []Fig6Row
	for _, app := range r.allApps() {
		row := Fig6Row{App: app}
		for i, k := range kinds {
			run, err := r.emul(ctx, app, k, 1, 0)
			if err != nil {
				return nil, 0, err
			}
			row.RateMBs[i] = run.PCMRateMBs()
		}
		rows = append(rows, row)
	}
	return rows, lifetime.PaperRecommendedRateMBs(), nil
}

// RenderFig6 renders the write-rate rows.
func RenderFig6(rows []Fig6Row, recommended float64) string {
	tb := stats.NewTable(
		fmt.Sprintf("Fig 6: PCM write rates in MB/s (recommended limit %.0f MB/s)", recommended),
		"App", "PCM-Only", "KG-N", "KG-B", "KG-W")
	for _, r := range rows {
		tb.AddRowf(r.App, r.RateMBs[0], r.RateMBs[1], r.RateMBs[2], r.RateMBs[3])
	}
	return tb.String()
}

// Fig7Row is one GraphChi application's writes under the seven
// Kingsguard configurations, normalized to PCM-Only.
type Fig7Row struct {
	App string
	// Normalized writes in order: KG-N, KG-B, KG-N+LOO, KG-B+LOO,
	// KG-W, KG-W-LOO, KG-W-MDO.
	Norm [7]float64
}

// Fig7Kinds is the collector order of Fig 7.
var Fig7Kinds = []hybridmem.Collector{
	hybridmem.KGN, hybridmem.KGB, hybridmem.KGNLOO, hybridmem.KGBLOO,
	hybridmem.KGW, hybridmem.KGWNoLOO, hybridmem.KGWNoMDO,
}

// Fig7 reproduces the Kingsguard study on GraphChi.
func (r *Runner) Fig7(ctx context.Context) ([]Fig7Row, error) {
	if err := r.prefetch(ctx, hybridmem.NewSweep("PR", "CC", "ALS").Specs()); err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, app := range []string{"PR", "CC", "ALS"} {
		base, err := r.emul(ctx, app, hybridmem.PCMOnly, 1, 0)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{App: app}
		for i, k := range Fig7Kinds {
			run, err := r.emul(ctx, app, k, 1, 0)
			if err != nil {
				return nil, err
			}
			row.Norm[i] = stats.Ratio(float64(run.PCMWriteLines), float64(base.PCMWriteLines))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7 renders the normalized writes.
func RenderFig7(rows []Fig7Row) string {
	tb := stats.NewTable("Fig 7: PCM writes normalized to PCM-Only (GraphChi)",
		"App", "KG-N", "KG-B", "KG-N+LOO", "KG-B+LOO", "KG-W", "KG-W-LOO", "KG-W-MDO")
	for _, r := range rows {
		tb.AddRowf(r.App, r.Norm[0], r.Norm[1], r.Norm[2], r.Norm[3], r.Norm[4], r.Norm[5], r.Norm[6])
	}
	return tb.String()
}

// Fig8Row is one application's large-dataset rate ratio per collector.
type Fig8Row struct {
	App string
	// RateRatio is rate(large)/rate(default) for PCM-Only, KG-N, KG-W.
	RateRatio [3]float64
	// WriteRatio is raw writes(large)/writes(default) under PCM-Only
	// (the paper: 3.4x average, up to 10x).
	WriteRatio float64
}

// Fig8 reproduces the dataset-size study over every application with
// a large input.
func (r *Runner) Fig8(ctx context.Context) ([]Fig8Row, error) {
	kinds := []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGN, hybridmem.KGW}
	factory := hybridmem.ScaledApps(r.p.Scale())
	var apps []string
	for _, app := range r.allApps() {
		if probe := factory(app); probe != nil && probe.HasLargeDataset() {
			apps = append(apps, app)
		}
	}
	if err := r.prefetch(ctx, hybridmem.NewSweep(apps...).
		Collectors(kinds...).
		Datasets(hybridmem.Default, hybridmem.Large).Specs()); err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, app := range apps {
		row := Fig8Row{App: app}
		for i, k := range kinds {
			def, err := r.emul(ctx, app, k, 1, workloads.Default)
			if err != nil {
				return nil, err
			}
			large, err := r.emul(ctx, app, k, 1, workloads.Large)
			if err != nil {
				return nil, err
			}
			row.RateRatio[i] = stats.Ratio(large.PCMRateMBs(), def.PCMRateMBs())
			if k == hybridmem.PCMOnly {
				row.WriteRatio = stats.Ratio(float64(large.PCMWriteLines), float64(def.PCMWriteLines))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig8 renders the dataset-size rows.
func RenderFig8(rows []Fig8Row) string {
	tb := stats.NewTable("Fig 8: PCM write rates with large datasets, normalized to default datasets",
		"App", "PCM-Only", "KG-N", "KG-W", "raw-writes ratio (PCM-Only)")
	for _, r := range rows {
		tb.AddRowf(r.App, r.RateRatio[0], r.RateRatio[1], r.RateRatio[2], r.WriteRatio)
	}
	return tb.String()
}
