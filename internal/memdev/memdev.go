// Package memdev models the physical memory devices that populate the
// emulation platform's NUMA nodes. A Device counts the cache-line reads
// and writebacks that reach its memory controller — the same quantity
// Intel's pcm-memory utility reports on the paper's hardware — and
// optionally tracks per-page wear for lifetime studies.
//
// In the paper's setup the devices on both sockets are physically DRAM;
// the remote socket's DRAM *plays the role of* PCM. The Kind field
// records that role so that reports can speak in terms of DRAM and PCM
// while the underlying accounting is identical, exactly as on the real
// emulator.
package memdev

import "fmt"

// LineSize is the transfer granularity of the memory controller in
// bytes. All counters are in units of 64-byte lines.
const LineSize = 64

// Kind is the role a device plays in the hybrid-memory emulation.
type Kind int

const (
	// DRAM is the fast, high-endurance technology (local socket).
	DRAM Kind = iota
	// PCM is the emulated phase-change memory (remote socket).
	PCM
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case PCM:
		return "PCM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a device.
type Config struct {
	// Kind is the emulated technology.
	Kind Kind
	// Bytes is the device capacity.
	Bytes uint64
	// TrackWear enables a per-page write histogram. It costs one
	// uint32 per 4 KB page and is intended for small test devices
	// and lifetime studies, not for full 66 GB nodes.
	TrackWear bool
}

// Device is one NUMA node's memory. It is not safe for concurrent use;
// the machine model is single-threaded by design (determinism).
type Device struct {
	cfg       Config
	readLines uint64
	wroteLine uint64
	wear      []uint32 // per-4KB-page write counts when TrackWear
}

// New returns a device for the given configuration.
func New(cfg Config) *Device {
	d := &Device{cfg: cfg}
	if cfg.TrackWear {
		pages := cfg.Bytes / 4096
		d.wear = make([]uint32, pages)
	}
	return d
}

// Kind reports the device's emulated technology.
func (d *Device) Kind() Kind { return d.cfg.Kind }

// Bytes reports the device capacity.
func (d *Device) Bytes() uint64 { return d.cfg.Bytes }

// Read records n line reads at the given device offset.
func (d *Device) Read(offset uint64, n uint64) {
	d.readLines += n
}

// Write records n line writebacks starting at the given device offset.
// Offsets beyond capacity are clamped into range (the machine model
// never produces them, but the device stays robust under direct use).
func (d *Device) Write(offset uint64, n uint64) {
	d.wroteLine += n
	if d.wear != nil {
		for i := uint64(0); i < n; i++ {
			page := (offset + i*LineSize) / 4096
			if page < uint64(len(d.wear)) {
				d.wear[page]++
			}
		}
	}
}

// ReadLines reports the cumulative number of line reads.
func (d *Device) ReadLines() uint64 { return d.readLines }

// WriteLines reports the cumulative number of line writebacks.
func (d *Device) WriteLines() uint64 { return d.wroteLine }

// WriteBytes reports cumulative writeback traffic in bytes.
func (d *Device) WriteBytes() uint64 { return d.wroteLine * LineSize }

// ReadBytes reports cumulative read traffic in bytes.
func (d *Device) ReadBytes() uint64 { return d.readLines * LineSize }

// ResetCounters zeroes the read/write counters but keeps wear history.
// The replay-compilation harness calls this between the warmup and the
// measured iteration.
func (d *Device) ResetCounters() {
	d.readLines = 0
	d.wroteLine = 0
}

// Wear summarises the per-page wear histogram.
type Wear struct {
	Pages    int    // pages with at least one write
	MaxPage  uint32 // writes to the most-written page
	Total    uint64 // total page writes recorded
	Tracked  bool   // whether wear tracking was enabled
	AllPages int    // total pages in the device
}

// WearSummary returns the wear histogram summary. When wear tracking is
// disabled only Total (from the line counter) is meaningful.
func (d *Device) WearSummary() Wear {
	w := Wear{Tracked: d.wear != nil, Total: d.wroteLine, AllPages: len(d.wear)}
	for _, c := range d.wear {
		if c > 0 {
			w.Pages++
		}
		if c > w.MaxPage {
			w.MaxPage = c
		}
	}
	return w
}

// Snapshot is a point-in-time copy of the device counters, used by the
// sampling write-rate monitor.
type Snapshot struct {
	ReadLines  uint64
	WriteLines uint64
}

// Snapshot returns the current counters.
func (d *Device) Snapshot() Snapshot {
	return Snapshot{ReadLines: d.readLines, WriteLines: d.wroteLine}
}
