// Package jobs is the platform's transport-agnostic run-scheduling
// core: the pieces every front-end needs to turn "a stream of requests
// for canonically-keyed work" into "each distinct piece of work
// computed exactly once, under bounded concurrency, with overload
// surfaced instead of absorbed".
//
// It grew out of hybridmem.Platform, which carried a private
// single-flight result cache, a worker pool, and an in-flight
// semaphore. The clustered tier (internal/fabric) needs the same three
// mechanisms on the far side of a network hop, so they live here,
// generic over the result type and ignorant of HTTP, experiment specs,
// and the store alike:
//
//   - Group: single-flight memoization by canonical key. The first
//     caller computes; concurrent callers with the same key join the
//     in-flight entry; later callers are served the memoized result.
//   - Admission: bounded in-flight slots plus a bounded wait queue.
//     Work beyond both bounds is rejected with ErrOverloaded so the
//     caller can shed load (HTTP 429) instead of queueing unboundedly.
//   - Pool: a fixed-width worker pool over an indexed work list, with
//     first-error cancellation.
//
// All types are safe for concurrent use.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports work rejected by an Admission controller: every
// in-flight slot is busy and the wait queue is at capacity. The caller
// should retry later (HTTP front-ends translate it to 429 +
// Retry-After).
var ErrOverloaded = errors.New("jobs: overloaded: queue at capacity")

// entry is one in-flight or completed computation. done closes once
// res/err are final.
type entry[R any] struct {
	done chan struct{}
	res  R
	err  error
}

// Group memoizes computations by key and deduplicates concurrent
// identical ones (single-flight): the first caller for a key computes,
// everyone else waits on its entry. Failed computations are not
// memoized — a later call retries.
type Group[R any] struct {
	mu      sync.Mutex
	entries map[string]*entry[R]
	hits    uint64
	misses  uint64
}

// NewGroup builds an empty Group.
func NewGroup[R any]() *Group[R] {
	return &Group[R]{entries: map[string]*entry[R]{}}
}

// Stats is a snapshot of a Group's behaviour. Hits counts calls served
// from a completed or in-flight entry (including successful Peeks);
// Misses counts entries registered (genuine computes); Entries counts
// entries currently held — memoized successes plus in-flight work.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// Stats returns a snapshot of the group.
func (g *Group[R]) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{Hits: g.hits, Misses: g.misses, Entries: len(g.entries)}
}

// Do returns the result for key, computing it with compute if no entry
// exists. Concurrent calls with an equal key share one compute;
// computed reports whether this call ran compute itself. A waiter's
// ctx cancels its wait (not the shared compute); the computing call's
// ctx is passed to compute. If compute panics, the entry is retired,
// waiters receive an error, and the panic propagates to the computing
// caller.
func (g *Group[R]) Do(ctx context.Context, key string, compute func(context.Context) (R, error)) (res R, computed bool, err error) {
	// Bail before registering: entries must only ever complete with a
	// genuine outcome, never one caller's cancellation — waiters with
	// live contexts share them.
	if err := ctx.Err(); err != nil {
		return res, false, err
	}
	g.mu.Lock()
	if e, ok := g.entries[key]; ok {
		g.hits++
		g.mu.Unlock()
		select {
		case <-e.done:
			return e.res, false, e.err
		case <-ctx.Done():
			return res, false, ctx.Err()
		}
	}
	e := &entry[R]{done: make(chan struct{})}
	g.entries[key] = e
	g.misses++
	g.mu.Unlock()

	finished := false
	defer func() {
		// If compute panicked, unregister the entry and release the
		// waiters before the panic propagates, or they would block
		// forever.
		if !finished {
			g.mu.Lock()
			delete(g.entries, key)
			g.mu.Unlock()
			e.err = fmt.Errorf("jobs: %s: compute panicked", key)
			close(e.done)
		}
	}()
	e.res, e.err = compute(ctx)
	finished = true
	if e.err != nil {
		// Failed computations are not memoized; a later call retries.
		g.mu.Lock()
		delete(g.entries, key)
		g.mu.Unlock()
	}
	close(e.done)
	return e.res, true, e.err
}

// Peek returns the memoized result for key if a successful computation
// has completed, without waiting on in-flight work and without
// computing. A successful Peek counts as a hit.
func (g *Group[R]) Peek(key string) (R, bool) {
	var zero R
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.entries[key]
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err == nil {
			g.hits++
			return e.res, true
		}
	default: // in flight; Peek never waits
	}
	return zero, false
}

// Joinable reports whether a Do for key would be served from an
// existing entry right now — completed or in flight — without starting
// a new compute. The answer is advisory: an in-flight entry can fail
// and be retired before a subsequent Do, which would then compute.
// Admission controllers use this to let duplicate requests join a
// running compute without consuming a concurrency slot.
func (g *Group[R]) Joinable(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.entries[key]
	return ok
}

// Admission bounds a node's concurrent work: at most maxInFlight
// acquisitions run at once, at most maxQueued more wait for a slot,
// and everything beyond both is rejected immediately with
// ErrOverloaded. Rejection is deliberate back-pressure: an overloaded
// node answers "try later" in microseconds instead of stalling every
// caller behind an unbounded queue.
type Admission struct {
	slots     chan struct{}
	maxQueued int
	waitObs   DurationObserver

	mu       sync.Mutex
	queued   int
	rejected atomic.Uint64
}

// DurationObserver receives elapsed-seconds observations. It is the
// narrow seam through which telemetry histograms attach without this
// package importing them.
type DurationObserver interface{ Observe(seconds float64) }

// SetWaitObserver installs an observer for time spent waiting in the
// admission queue (the fast, uncontended path is never observed — it
// does not wait). Install before serving traffic; the field is not
// synchronized against concurrent Acquires.
func (a *Admission) SetWaitObserver(o DurationObserver) { a.waitObs = o }

// NewAdmission builds an Admission with maxInFlight concurrent slots
// and a wait queue of maxQueued. Both must be at least 1 and 0
// respectively; maxQueued 0 means "no waiting: busy slots reject".
func NewAdmission(maxInFlight, maxQueued int) *Admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &Admission{slots: make(chan struct{}, maxInFlight), maxQueued: maxQueued}
}

// Acquire obtains an in-flight slot, waiting in the bounded queue if
// all slots are busy. It returns a release function on success,
// ErrOverloaded when the queue is at capacity, or ctx.Err if the
// caller's context cancels while queued. The release function must be
// called exactly once.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	release = func() { <-a.slots }
	select {
	case a.slots <- struct{}{}:
		return release, nil
	default:
	}
	a.mu.Lock()
	if a.queued >= a.maxQueued {
		a.mu.Unlock()
		a.rejected.Add(1)
		return nil, ErrOverloaded
	}
	a.queued++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	var t0 time.Time
	if a.waitObs != nil {
		t0 = time.Now()
	}
	select {
	case a.slots <- struct{}{}:
		if a.waitObs != nil {
			a.waitObs.Observe(time.Since(t0).Seconds())
		}
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Depth reports the controller's current load: slots in flight and
// callers waiting for one.
func (a *Admission) Depth() (inflight, queued int) {
	a.mu.Lock()
	queued = a.queued
	a.mu.Unlock()
	return len(a.slots), queued
}

// Capacity reports the configured bounds.
func (a *Admission) Capacity() (maxInFlight, maxQueued int) {
	return cap(a.slots), a.maxQueued
}

// Rejected counts Acquires refused with ErrOverloaded since
// construction.
func (a *Admission) Rejected() uint64 { return a.rejected.Load() }

// Pool runs n indexed work items through a fixed-width worker pool and
// returns the first error (nil if every item succeeded). The first
// failure cancels the pool's context: queued items are skipped,
// in-flight items run to completion. Cancelling ctx stops the pool the
// same way. workers is clamped to [1, n].
func Pool(ctx context.Context, workers, n int, run func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := make(chan int, n)
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				if err := ctx.Err(); err != nil {
					fail(err)
					continue // drain without running
				}
				if err := run(ctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
