package hybridmem

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/fabric/jobs"
	"repro/internal/jvm"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/trace/library"
	"repro/internal/workloads"
	"repro/internal/workloads/all"
	"repro/internal/workloads/graphchi"
)

// Typed errors returned by the Platform and the name parsers.
var (
	// ErrUnknownApp reports a RunSpec.AppName absent from the registry.
	ErrUnknownApp = errors.New("hybridmem: unknown application")
	// ErrUnknownCollector reports a collector outside the paper's
	// eight configurations.
	ErrUnknownCollector = errors.New("hybridmem: unknown collector")
	// ErrUnknownScale reports an unparseable scale name.
	ErrUnknownScale = errors.New("hybridmem: unknown scale")
	// ErrUnknownDataset reports an unparseable dataset name.
	ErrUnknownDataset = errors.New("hybridmem: unknown dataset")
	// ErrUnknownMode reports an unparseable pipeline mode name.
	ErrUnknownMode = errors.New("hybridmem: unknown mode")
	// ErrUnknownPolicy reports an unparseable placement-policy name.
	ErrUnknownPolicy = errors.New("hybridmem: unknown policy")
	// ErrTraceVersion reports a trace written by an incompatible
	// schema version; re-record it with this build.
	ErrTraceVersion = trace.ErrVersion
	// ErrTraceCorrupt reports an unreadable trace — a mangled header,
	// a garbage line, or a torn tail. The message names the offending
	// line; replay results for the valid prefix are still returned.
	ErrTraceCorrupt = trace.ErrCorrupt
)

// ParseCollector resolves a collector by its paper name ("PCM-Only",
// "KG-W", "KG-N+LOO", ...). Matching is case-insensitive and ignores
// the '-'/'+' punctuation, so "kgw" and "KG-W" are the same plan.
func ParseCollector(name string) (Collector, error) {
	want := foldCollectorName(name)
	for k := Collector(0); k < jvm.NumKinds; k++ {
		if foldCollectorName(k.String()) == want {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownCollector, name)
}

// foldCollectorName canonicalizes a collector name for comparison.
func foldCollectorName(name string) string {
	name = strings.ToLower(name)
	return strings.Map(func(r rune) rune {
		switch r {
		case '-', '+', ' ', '_':
			return -1
		}
		return r
	}, name)
}

// ParseScale resolves an experiment scale by name: "quick", "std", or
// "full".
func ParseScale(name string) (Scale, error) {
	switch strings.ToLower(name) {
	case "quick":
		return Quick, nil
	case "std", "standard":
		return Std, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownScale, name)
}

// ParseDataset resolves a dataset by name: "default" or "large".
func ParseDataset(name string) (Dataset, error) {
	switch strings.ToLower(name) {
	case "default":
		return Default, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
}

// ParsePolicy resolves a placement policy by name ("static",
// "first-touch", "write-threshold", "wear-level"). Matching is
// case-insensitive and ignores '-'/'_'/' ' punctuation, so
// "WriteThreshold" and "write-threshold" are the same policy.
func ParsePolicy(name string) (Policy, error) {
	want := foldCollectorName(name)
	for _, k := range Policies() {
		if foldCollectorName(k.String()) == want {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
}

// ParseMode resolves an evaluation pipeline by name: "emul"/"emulation"
// or "sim"/"simulation".
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(name) {
	case "emul", "emulation":
		return Emulation, nil
	case "sim", "simulation":
		return Simulation, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownMode, name)
}

// EncodeResult serializes a Result to JSON for downstream tooling.
// DecodeResult(EncodeResult(r)) reproduces r bit-for-bit.
func EncodeResult(r Result) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses a Result previously produced by EncodeResult.
func DecodeResult(data []byte) (Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, fmt.Errorf("hybridmem: decoding result: %w", err)
	}
	return r, nil
}

// config is the resolved option set of a Platform.
type config struct {
	mode           Mode
	seed           uint64
	scale          Scale
	l3Bytes        int
	baseNurseryMB  int
	observerFactor int
	threadSocket   int
	monitorNode    int
	quantumCycles  float64
	unmapFreed     bool
	trackWear      bool
	bootMB         int
	bootSet        bool
	factory        func(string) workloads.App
	factoryKey     string
	parallelism    int
	storeDir       string
	policy         policy.Config
	traceSink      io.Writer
	obs            *obs.Telemetry
	estimator      *estimate.Estimator
}

// defaultConfig mirrors core.DefaultOptions: emulation pipeline,
// seed 1, plan-default thread placement, paper-scale inputs.
func defaultConfig() config {
	return config{mode: Emulation, seed: 1, scale: Full, threadSocket: -1}
}

// effectiveBootMB resolves the boot-image size: an explicit WithBootMB
// wins; otherwise Quick scale shrinks the 48 MB image to 4 MB so
// hundreds of CI-sized configurations stay cheap.
func (c config) effectiveBootMB() int {
	if c.bootSet {
		return c.bootMB
	}
	if c.scale == Quick {
		return 4
	}
	return 0
}

// Option configures a Platform at construction (New) or derivation
// (With).
type Option func(*config)

// WithMode selects the evaluation pipeline (Emulation or Simulation).
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithSeed sets the workload seed; equal seeds reproduce every Result
// bit-for-bit.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithScale sizes every workload's inputs for the scale and installs
// the matching application factory. Quick also shrinks the boot image
// to 4 MB unless WithBootMB overrides it.
func WithScale(s Scale) Option {
	return func(c *config) {
		c.scale = s
		c.factory = scaledFactory(s)
		c.factoryKey = "scale:" + s.String()
	}
}

// factorySeq distinguishes custom factories in the result cache.
var factorySeq atomic.Uint64

// WithAppFactory installs a custom application factory (nil restores
// the registry). Every WithAppFactory call keys its results
// separately — two platforms share cached Results for custom-factory
// runs only when built from the same Option value — because function
// identity cannot be established reliably in Go.
func WithAppFactory(f func(string) App) Option {
	key := ""
	if f != nil {
		key = fmt.Sprintf("factory:%d", factorySeq.Add(1))
	}
	return func(c *config) {
		c.factory = f
		c.factoryKey = key
	}
}

// WithL3MB overrides the shared L3 size in MB (the paper's KG-N
// sensitivity analysis compares 4 MB vs the platform's 20 MB).
func WithL3MB(mb int) Option { return func(c *config) { c.l3Bytes = mb << 20 } }

// WithBaseNurseryMB overrides the suite nursery size in MB.
func WithBaseNurseryMB(mb int) Option { return func(c *config) { c.baseNurseryMB = mb } }

// WithObserverFactor overrides the observer:nursery ratio for KG-W
// plans (the paper fixes it at 2x).
func WithObserverFactor(f int) Option { return func(c *config) { c.observerFactor = f } }

// WithThreadSocket forces application-thread placement (-1 restores
// the plan default). The paper's Table II reference setup pins PCM-Only
// threads to socket 0.
func WithThreadSocket(s int) Option { return func(c *config) { c.threadSocket = s } }

// WithMonitorNode places the write-rate monitor (the paper uses socket
// 0; the ablation tries socket 1).
func WithMonitorNode(n int) Option { return func(c *config) { c.monitorNode = n } }

// WithQuantumCycles overrides the scheduling timeslice.
func WithQuantumCycles(q float64) Option { return func(c *config) { c.quantumCycles = q } }

// WithUnmapFreedChunks enables the monolithic-free-list ablation.
func WithUnmapFreedChunks(on bool) Option { return func(c *config) { c.unmapFreed = on } }

// WithTrackWear enables per-page wear histograms on the devices.
func WithTrackWear(on bool) Option { return func(c *config) { c.trackWear = on } }

// WithBootMB overrides the boot-image size in MB (0 = the 48 MB
// default).
func WithBootMB(mb int) Option {
	return func(c *config) {
		c.bootMB = mb
		c.bootSet = true
	}
}

// WithParallelism caps the number of experiments RunBatch executes
// concurrently (0 = one per available core).
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithPolicy selects the dynamic-placement policy with its default
// knobs (Static — the default — disables the engine entirely, which
// is the paper's plan-time tiering bit-for-bit). The policy is part
// of the result identity: every cache and store key carries it.
func WithPolicy(k Policy) Option {
	return func(c *config) { c.policy = policy.Config{Kind: k} }
}

// WithPolicyConfig selects the placement policy together with explicit
// knob values (HotWriteLines, ColdWriteLines, DRAMBudgetPages,
// WearFactor, ...), so a tuned knob point — e.g. Autotune's
// recommendation — runs live exactly as the replay priced it. Unset
// knobs resolve to their registry defaults, making
// WithPolicyConfig(PolicyConfig{Kind: k}) equivalent to WithPolicy(k).
// The resolved knobs are part of the result identity: two platforms
// differing in any knob never share a cache or store entry.
func WithPolicyConfig(cfg PolicyConfig) Option {
	return func(c *config) { c.policy = cfg }
}

// WithStore attaches a durable result store rooted at dir as a second
// cache tier: lookups fall through memory → disk → compute, computed
// Results are written through, and the store survives the process —
// a rerun of the same grid performs zero recomputes. The directory is
// created (and its segments replayed) lazily on first use; open
// failures surface from Run. Derived platforms (With) share the
// parent's store unless they name a different directory; "" detaches
// the tier.
//
// Disk entries are keyed by SpecKey and shared across processes.
// Custom WithAppFactory configurations bypass the disk tier entirely:
// their identity is process-local, so persisted entries could not be
// told apart from a different factory's in the next process.
func WithStore(dir string) Option { return func(c *config) { c.storeDir = dir } }

// WithTelemetry attaches a telemetry bundle (internal/obs): runs emit
// lifecycle spans (run → store.lookup → emulate → plan/execute →
// policy.quantum) into its tracer and latency histograms
// (hybridmem_store_lookup_seconds, hybridmem_store_append_seconds,
// hybridmem_emulate_seconds, hybridmem_policy_quantum_seconds) into
// its registry. Telemetry is strictly side-channel: it is NOT part of
// the result identity — instrumented and uninstrumented platforms
// share cache and store entries and produce bit-identical Results —
// and nil detaches it. The caller's span context (obs.ContextWithSpan
// or ContextWithRemote on the Run ctx) parents the run's spans, so a
// serving layer's distributed trace extends into the emulator core.
func WithTelemetry(t *obs.Telemetry) Option { return func(c *config) { c.obs = t } }

// WithTrace streams a per-quantum placement trace into w: a versioned
// ndjson stream opening with a header (spec key, seed, policy knobs,
// migration costs) followed by one record per policy-engine quantum —
// the full View the policy saw, the Actions it emitted, and the
// executed migration costs. Traces recorded here replay offline
// through ReplayTrace and cmd/policyreplay, so new policies are
// prototyped against recorded views without re-running the emulator.
//
// A traced Run always computes: it bypasses the result cache and the
// durable store in both directions, because a cached Result has no
// quanta to record. The Result itself stays bit-identical to an
// untraced run — tracing only adds bookkeeping. One sink serves one
// run at a time: trace single specs, not RunBatch grids, or records
// from concurrent runs would interleave. nil detaches tracing on a
// derived platform.
func WithTrace(w io.Writer) Option { return func(c *config) { c.traceSink = w } }

// TraceLibrary is a content-addressed store of compacted placement
// traces, one per spec neighborhood (internal/trace/library): the
// substrate the estimate-first serving tier answers from.
type TraceLibrary = library.Library

// OpenTraceLibrary opens (creating if needed) a trace library rooted
// at dir.
func OpenTraceLibrary(dir string) (*TraceLibrary, error) { return library.Open(dir) }

// EstimateStats snapshots the estimate tier's counters: Hits
// (estimates served), Misses (fell through to compute), and Loads
// (library trace decodes — concurrent estimates over one warm
// neighborhood coalesce to a single load).
type EstimateStats = estimate.Stats

// WithTraceLibrary attaches a trace library as the platform's estimate
// tier: Estimate answers specs whose neighborhood has a resident trace
// by replaying the recorded views under the platform's policy instead
// of running the emulator. The estimator (and its decoded-trace cache)
// is created once per Option value and shared by every platform the
// option is applied to — apply one WithTraceLibrary to the base
// platform and derive per-policy variants from it with With, so a
// whole grid estimates from one decode. nil detaches the tier.
//
// Estimates are strictly side-channel: they never enter the result
// cache or the durable store, and Run is unaffected.
func WithTraceLibrary(lib *TraceLibrary) Option {
	est := estimate.New(lib)
	return func(c *config) { c.estimator = est }
}

// Platform is a reusable, concurrent-safe experiment engine: one
// platform configuration plus a result cache (and optional durable
// store tier) shared with every platform derived from it via With.
// All methods are safe for concurrent use.
//
// The run-scheduling core — canonical-keyed single-flight memoization
// and the worker pool — lives in internal/fabric/jobs, the same layer
// the clustered hybridserved fabric schedules on, so a Platform and a
// fleet node coalesce identical work with identical semantics.
type Platform struct {
	cfg   config
	cache *jobs.Group[Result]
	disk  *storeTier // nil without WithStore
}

// New constructs a Platform from functional options.
func New(opts ...Option) *Platform {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	p := &Platform{cfg: cfg, cache: jobs.NewGroup[Result]()}
	if cfg.storeDir != "" {
		p.disk = &storeTier{dir: cfg.storeDir}
	}
	return p
}

// With derives a Platform with additional options applied. The
// derivative shares the parent's result cache and durable store —
// results are keyed by their full effective configuration, so
// experiment drivers can vary one knob (thread placement, L3 size,
// observer factor, ...) without re-running shared configurations.
func (p *Platform) With(opts ...Option) *Platform {
	cfg := p.cfg
	for _, o := range opts {
		o(&cfg)
	}
	d := p.disk
	if cfg.storeDir != p.cfg.storeDir {
		// A different directory is a different store; "" detaches.
		d = nil
		if cfg.storeDir != "" {
			d = &storeTier{dir: cfg.storeDir}
		}
	}
	return &Platform{cfg: cfg, cache: p.cache, disk: d}
}

// storeTier is the lazily-opened durable tier shared by a platform
// family. Counters live here (not on resultCache) so detaching or
// swapping the store swaps its stats with it.
type storeTier struct {
	dir      string
	mu       sync.Mutex
	s        *store.Store
	instr    bool // telemetry attached to the open store
	hits     atomic.Uint64
	misses   atomic.Uint64
	putFails atomic.Uint64
}

// open opens the store on first use and, when the calling platform
// carries telemetry, attaches the store's append histogram and
// replay-time gauge (once per tier). Failures are returned but not
// latched: a transient condition (full disk, unmounted volume) is
// retried on the next call rather than poisoning the platform for the
// process lifetime.
func (t *storeTier) open(tel *obs.Telemetry) (*store.Store, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s == nil {
		s, err := store.Open(t.dir)
		if err != nil {
			return nil, err
		}
		t.s = s
	}
	if tel != nil && !t.instr {
		t.instr = true
		lbl := obs.Labels{"node": tel.Node}
		h := tel.Metrics.Histogram("hybridmem_store_append_seconds",
			"Durable-store segment append latency per record.", lbl, nil)
		t.s.SetAppendObserver(func(seconds float64) { h.Observe(seconds) })
		s := t.s
		tel.Metrics.GaugeFunc("hybridmem_store_load_seconds",
			"Segment replay time of the store's Open.", lbl,
			func() float64 { return s.Stats().LoadSeconds })
	}
	return t.s, nil
}

// Store returns the platform's durable result store, opening it on
// first use ((nil, nil) when the platform has none). The store is
// shared with every derived platform; callers may List its records or
// Compact it, but should leave writes to the platform.
func (p *Platform) Store() (*store.Store, error) {
	if p.disk == nil {
		return nil, nil
	}
	return p.disk.open(p.cfg.obs)
}

// Scale returns the platform's input scale.
func (p *Platform) Scale() Scale { return p.cfg.scale }

// Seed returns the platform's workload seed.
func (p *Platform) Seed() uint64 { return p.cfg.seed }

// coreOptions lowers the platform configuration to the engine's
// option struct.
func (p *Platform) coreOptions() core.Options {
	o := core.DefaultOptions()
	o.Mode = p.cfg.mode
	o.Seed = p.cfg.seed
	o.L3Bytes = p.cfg.l3Bytes
	o.BaseNurseryMB = p.cfg.baseNurseryMB
	o.ObserverFactor = p.cfg.observerFactor
	o.ThreadSocket = p.cfg.threadSocket
	o.MonitorNode = p.cfg.monitorNode
	o.QuantumCycles = p.cfg.quantumCycles
	o.UnmapFreedChunks = p.cfg.unmapFreed
	o.TrackWear = p.cfg.trackWear
	o.BootMB = p.cfg.effectiveBootMB()
	o.AppFactory = p.cfg.factory
	o.Policy = p.cfg.policy
	return o
}

// PolicyKind returns the platform's configured placement policy.
func (p *Platform) PolicyKind() Policy { return p.cfg.policy.Kind }

// PolicyConfig returns the platform's placement-policy configuration
// with its knobs resolved to their effective values.
func (p *Platform) PolicyConfig() PolicyConfig { return p.cfg.policy.WithDefaults() }

// normalizeSpec applies RunSpec defaults so equivalent specs share one
// cache entry.
func normalizeSpec(spec RunSpec) RunSpec {
	if spec.Instances <= 0 {
		spec.Instances = 1
	}
	if spec.Native {
		spec.Collector = 0 // ignored by native runs
	}
	return spec
}

// NormalizeSpec applies the platform's RunSpec defaulting — a zero
// instance count means one instance, and native runs ignore the
// collector — returning the spec exactly as Run caches, stores, and
// keys it. Front-ends that echo specs back to callers use this to
// stay consistent with the persisted Records.
func NormalizeSpec(spec RunSpec) RunSpec { return normalizeSpec(spec) }

// validateSpec type-checks a spec before it reaches the engine.
func (p *Platform) validateSpec(spec RunSpec) error {
	if !spec.Native && (spec.Collector < 0 || spec.Collector >= jvm.NumKinds) {
		return fmt.Errorf("%w: Kind(%d)", ErrUnknownCollector, int(spec.Collector))
	}
	if p.cfg.policy.Kind < policy.Static || p.cfg.policy.Kind >= policy.NumKinds {
		return fmt.Errorf("%w: Kind(%d)", ErrUnknownPolicy, int(p.cfg.policy.Kind))
	}
	factory := p.cfg.factory
	if factory == nil {
		factory = all.New
	}
	if factory(spec.AppName) == nil {
		return fmt.Errorf("%w: %q", ErrUnknownApp, spec.AppName)
	}
	return nil
}

// cacheKey identifies one experiment: the full effective configuration
// plus the spec. Two runs with equal keys produce bit-identical
// Results, so one cached Result serves both.
type cacheKey struct {
	mode           Mode
	seed           uint64
	l3Bytes        int
	baseNurseryMB  int
	observerFactor int
	threadSocket   int
	monitorNode    int
	quantumCycles  float64
	unmapFreed     bool
	trackWear      bool
	bootMB         int
	factoryKey     string
	policyKey      string
	app            string
	collector      Collector
	instances      int
	dataset        Dataset
	native         bool
}

// key builds the canonical cache key for a normalized spec. Native
// runs have no GC safepoints for the placement engine to hook and
// ignore the policy entirely, so their keys normalize it to static —
// one platform's native Results serve every policy variant.
func (p *Platform) key(spec RunSpec) cacheKey {
	policyKey := p.cfg.policy.Key()
	if spec.Native {
		policyKey = policy.Config{}.Key()
	}
	return cacheKey{
		mode:           p.cfg.mode,
		seed:           p.cfg.seed,
		l3Bytes:        p.cfg.l3Bytes,
		baseNurseryMB:  p.cfg.baseNurseryMB,
		observerFactor: p.cfg.observerFactor,
		threadSocket:   p.cfg.threadSocket,
		monitorNode:    p.cfg.monitorNode,
		quantumCycles:  p.cfg.quantumCycles,
		unmapFreed:     p.cfg.unmapFreed,
		trackWear:      p.cfg.trackWear,
		bootMB:         p.cfg.effectiveBootMB(),
		factoryKey:     p.cfg.factoryKey,
		policyKey:      policyKey,
		app:            spec.AppName,
		collector:      spec.Collector,
		instances:      spec.Instances,
		dataset:        spec.Dataset,
		native:         spec.Native,
	}
}

// canonical renders the key as the stable string form the durable
// store is addressed by. Unlike the struct (which is compared, not
// persisted), this format is an on-disk contract: entries written by
// one process must be found by the next, so fields are spelled with
// their String names and the layout only changes with the store
// format.
func (k cacheKey) canonical() string {
	return strings.Join([]string{
		"mode=" + k.mode.String(),
		"seed=" + strconv.FormatUint(k.seed, 10),
		"l3=" + strconv.Itoa(k.l3Bytes),
		"nursery=" + strconv.Itoa(k.baseNurseryMB),
		"obs=" + strconv.Itoa(k.observerFactor),
		"tsock=" + strconv.Itoa(k.threadSocket),
		"mon=" + strconv.Itoa(k.monitorNode),
		"quantum=" + strconv.FormatFloat(k.quantumCycles, 'g', -1, 64),
		"unmap=" + strconv.FormatBool(k.unmapFreed),
		"wear=" + strconv.FormatBool(k.trackWear),
		"boot=" + strconv.Itoa(k.bootMB),
		"factory=" + k.factoryKey,
		"policy=" + k.policyKey,
		"app=" + k.app,
		"gc=" + k.collector.String(),
		"n=" + strconv.Itoa(k.instances),
		"ds=" + k.dataset.String(),
		"native=" + strconv.FormatBool(k.native),
	}, ";")
}

// SpecKey returns the canonical key identifying one experiment under
// this platform's effective configuration — the key the durable store
// (WithStore) files its Result under. Two platforms produce equal keys
// exactly when they would produce bit-identical Results for the spec.
func (p *Platform) SpecKey(spec RunSpec) string {
	return p.key(normalizeSpec(spec)).canonical()
}

// Validate type-checks a spec against the platform's configuration —
// collector range, application factory — without running it. It
// returns the same typed errors Run would (ErrUnknownApp,
// ErrUnknownCollector), so front-ends can reject a bad request before
// committing resources to it.
func (p *Platform) Validate(spec RunSpec) error {
	return p.validateSpec(normalizeSpec(spec))
}

// Peek returns the Result for a spec if it is already available — a
// completed in-memory entry or a durable-store record — without
// blocking on in-flight runs and without computing. A successful Peek
// counts as a hit on the tier that served it; a disk Peek does not
// promote the record into the memory tier.
func (p *Platform) Peek(spec RunSpec) (Result, bool) {
	spec = normalizeSpec(spec)
	if p.validateSpec(spec) != nil {
		return Result{}, false
	}
	key := p.key(spec)
	if res, ok := p.cache.Peek(key.canonical()); ok {
		return res, true
	}
	if p.disk != nil && durableKey(key) {
		if s, err := p.disk.open(p.cfg.obs); err == nil {
			if rec, ok := s.Get(key.canonical()); ok {
				p.disk.hits.Add(1)
				return rec.Result, true
			}
		}
	}
	return Result{}, false
}

// Estimate answers a spec from the attached trace library
// (WithTraceLibrary) without running the emulator: the recorded views
// of the spec's library neighborhood are replayed under the platform's
// policy configuration and mapped onto the recorded run's measured
// baseline. Like Peek it never blocks and never computes — ok reports
// false when no library is attached, the neighborhood has no resident
// trace (or no baseline sidecar), or the entry cannot be replayed.
//
// On a hit the Result is tagged Estimated with an EstimateInfo naming
// the source trace and the Confidence/Tolerance bound; its migration
// fields are within EstimateTolerance of the live run (exact when the
// replayed policy matches the recorded one). Estimated Results are
// never cached or stored: a subsequent Run computes as usual.
func (p *Platform) Estimate(spec RunSpec) (Result, bool) {
	if p.cfg.estimator == nil {
		return Result{}, false
	}
	spec = normalizeSpec(spec)
	if p.validateSpec(spec) != nil {
		return Result{}, false
	}
	cfg := p.cfg.policy
	if spec.Native {
		// Native runs ignore the policy; their keys normalize it away.
		cfg = policy.Config{}
	}
	res, err := p.cfg.estimator.Estimate(p.key(spec).canonical(), cfg)
	if err != nil {
		return Result{}, false
	}
	return res, true
}

// EstimateStats snapshots the estimate tier's counters; zeros without
// WithTraceLibrary.
func (p *Platform) EstimateStats() EstimateStats {
	return p.cfg.estimator.Stats()
}

// WarmTraceLibrary files a recorded trace in lib together with its
// measured baseline Result — exactly what the server's /v1/trace
// ingest does — so the spec's neighborhood becomes estimable, not
// just replayable. data must be a complete recording of spec under
// the platform's effective configuration (WithTrace), and res the
// Result of that same traced run.
func (p *Platform) WarmTraceLibrary(lib *TraceLibrary, spec RunSpec, res Result, data []byte) error {
	spec = normalizeSpec(spec)
	if err := p.validateSpec(spec); err != nil {
		return err
	}
	base, err := estimate.EncodeBase(p.key(spec).canonical(), spec, res)
	if err != nil {
		return err
	}
	_, err = lib.PutWithBase(data, base)
	return err
}

// Joinable reports whether a Run for spec would be served from the
// memory tier right now — a completed or in-flight single-flight
// entry exists — without starting a new compute. The answer is
// advisory: an in-flight entry can fail and be retired before a
// subsequent Run, which would then compute. Admission controllers use
// this to let duplicate requests join a running compute without
// consuming a concurrency slot.
func (p *Platform) Joinable(spec RunSpec) bool {
	spec = normalizeSpec(spec)
	if p.validateSpec(spec) != nil {
		return false
	}
	return p.cache.Joinable(p.key(spec).canonical())
}

// CacheStats reports the shared result cache's behaviour. Hits count
// calls served from a completed or in-flight entry; Entries counts
// entries currently held — memoized successful results plus any runs
// still in flight (failed runs are dropped on completion).
//
// With a durable store attached (WithStore), every memory miss
// consults the disk tier: DiskHits count runs restored from the store
// without recomputing, DiskMisses count genuine platform computes, and
// StorePutFailures counts write-through appends that failed (the run
// still succeeds; the result is just not durable). Without a store all
// three stay zero and Misses alone counts computes.
type CacheStats struct {
	Hits             uint64
	Misses           uint64
	Entries          int
	DiskHits         uint64
	DiskMisses       uint64
	StorePutFailures uint64
}

// CacheStats returns a snapshot of the platform's shared result cache
// and store tier.
func (p *Platform) CacheStats() CacheStats {
	gs := p.cache.Stats()
	st := CacheStats{Hits: gs.Hits, Misses: gs.Misses, Entries: gs.Entries}
	if p.disk != nil {
		st.DiskHits = p.disk.hits.Load()
		st.DiskMisses = p.disk.misses.Load()
		st.StorePutFailures = p.disk.putFails.Load()
	}
	return st
}

// Run executes one experiment, serving it from the shared cache when
// an identical configuration has already run (or is running). It
// returns ctx.Err if the context is cancelled before the result is
// available.
func (p *Platform) Run(ctx context.Context, spec RunSpec) (Result, error) {
	res, _, err := p.RunShared(ctx, spec)
	return res, err
}

// RunShared is Run with its sharing made visible: computed reports
// whether this call ran the engine (or restored from the durable store)
// itself, as opposed to joining an in-flight identical run or reusing a
// memoized result. Admission layers (internal/serve) use it to count
// coalesced work exactly — for N concurrent identical requests, exactly
// one observes computed regardless of how the race between them
// resolves. Traced runs always compute.
func (p *Platform) RunShared(ctx context.Context, spec RunSpec) (res Result, computed bool, err error) {
	spec = normalizeSpec(spec)
	if err := p.validateSpec(spec); err != nil {
		return Result{}, false, err
	}
	if p.cfg.traceSink != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, false, err
		}
		// A traced run must actually run — a Result served from the
		// cache or the store has no quanta to record — so it bypasses
		// both tiers in both directions and computes unconditionally.
		// It is also the one path that honors mid-run cancellation:
		// tracing streams to a live consumer (a file, an HTTP
		// response), and when that consumer goes away the emulation
		// must stop, not run on into a dead sink.
		opts := p.coreOptions()
		opts.TraceSink = p.cfg.traceSink
		opts.TraceKey = p.key(spec).canonical()
		opts.Cancel = ctx.Done()
		opts.Obs = p.cfg.obs
		opts.ObsParent = obs.SpanContextFrom(ctx)
		res, err := core.Run(opts, spec)
		if err != nil {
			if errors.Is(err, kernel.ErrCancelled) {
				// Surface the caller's own cancellation, not the
				// kernel's internal sentinel.
				if cerr := ctx.Err(); cerr != nil {
					return Result{}, false, cerr
				}
			}
			return Result{}, false, fmt.Errorf("hybridmem: %s: %w", specLabel(spec), err)
		}
		return res, true, nil
	}
	key := p.key(spec)
	// Telemetry observes the computing caller only: joiners and cache
	// hits emit nothing here (the serving layer times them), and the
	// parent span context is captured outside the closure so the
	// compute's spans land in the trace of the request that ran it.
	tel := p.cfg.obs
	parent := obs.SpanContextFrom(ctx)

	// The single-flight group deduplicates concurrent identical runs
	// and memoizes completed ones; the compute closure layers the
	// durable tier (memory miss → disk → engine, write-through on
	// compute). The engine panics on platform-construction failures —
	// the group retires the entry and releases any waiters before the
	// panic propagates.
	res, computed, err = p.cache.Do(ctx, key.canonical(), func(ctx context.Context) (Result, error) {
		var lookupStart time.Time
		if tel != nil {
			lookupStart = time.Now()
		}
		res, ok, derr := p.diskGet(key)
		if tel != nil && p.disk != nil {
			d := time.Since(lookupStart)
			tel.Metrics.Histogram("hybridmem_store_lookup_seconds",
				"Durable-store lookup latency per compute (open included on first use).",
				obs.Labels{"node": tel.Node}, nil).Observe(d.Seconds())
			tel.Tracer.Emit(parent, "store.lookup", lookupStart, d,
				map[string]string{"hit": strconv.FormatBool(ok)})
		}
		if derr != nil {
			return Result{}, fmt.Errorf("hybridmem: %s: %w", specLabel(spec), derr)
		}
		if ok {
			return res, nil
		}
		opts := p.coreOptions()
		opts.Obs = tel
		opts.ObsParent = parent
		res, err := core.Run(opts, spec)
		if err != nil {
			// Failed runs are not memoized; a later call retries. The
			// spec label identifies the failing experiment inside wide
			// batches.
			return Result{}, fmt.Errorf("hybridmem: %s: %w", specLabel(spec), err)
		}
		p.diskPut(key, spec, res)
		return res, nil
	})
	return res, computed, err
}

// durableKey reports whether a key is stable across processes and may
// therefore live in the durable tier. Custom WithAppFactory keys
// ("factory:N") are process-local — a restart numbers a *different*
// factory identically, so persisting them would serve one workload's
// Results for another.
func durableKey(key cacheKey) bool {
	return !strings.HasPrefix(key.factoryKey, "factory:")
}

// diskGet consults the durable tier. ok reports a disk hit; err
// reports a store that failed to open (surfaced so a misconfigured
// -store dir fails loudly rather than silently recomputing).
func (p *Platform) diskGet(key cacheKey) (Result, bool, error) {
	if p.disk == nil {
		return Result{}, false, nil
	}
	if !durableKey(key) {
		p.disk.misses.Add(1)
		return Result{}, false, nil
	}
	s, err := p.disk.open(p.cfg.obs)
	if err != nil {
		return Result{}, false, err
	}
	if rec, ok := s.Get(key.canonical()); ok {
		p.disk.hits.Add(1)
		return rec.Result, true, nil
	}
	p.disk.misses.Add(1)
	return Result{}, false, nil
}

// diskPut writes a computed Result through to the durable tier.
// Append failures do not fail the run — the Result is correct, just
// not durable — but they are counted in CacheStats.StorePutFailures.
func (p *Platform) diskPut(key cacheKey, spec RunSpec, res Result) {
	if p.disk == nil || !durableKey(key) {
		return
	}
	s, err := p.disk.open(p.cfg.obs)
	if err != nil {
		p.disk.putFails.Add(1)
		return
	}
	if err := s.Put(key.canonical(), spec, res); err != nil {
		p.disk.putFails.Add(1)
	}
}

// specLabel names one experiment for error messages.
func specLabel(spec RunSpec) string {
	lang := spec.Collector.String()
	if spec.Native {
		lang = "native"
	}
	return fmt.Sprintf("%s/%s x%d (%s)", spec.AppName, lang, spec.Instances, spec.Dataset)
}

// RunBatch executes independent experiments across a worker pool — one
// worker per available core by default, capped by WithParallelism —
// and returns their Results in spec order. Results are bit-identical
// to running the same specs serially with Run: every run is
// deterministic in (configuration, spec, seed) alone.
//
// The first failure cancels the remaining work and is returned;
// cancelling ctx stops the batch promptly (queued specs are skipped,
// in-flight runs complete).
func (p *Platform) RunBatch(ctx context.Context, specs ...RunSpec) ([]Result, error) {
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results, nil
	}
	workers := p.cfg.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	err := jobs.Pool(ctx, workers, len(specs), func(ctx context.Context, i int) error {
		res, err := p.Run(ctx, specs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, err
}

// scaledFactory builds the application factory for a scale: GraphChi
// datasets sized to keep (Quick) or exceed (Std/Full) the shared LLC,
// and DaCapo/pjbb allocation volumes shrunk at Quick scale.
func scaledFactory(s Scale) func(string) workloads.App {
	edges := s.graphEdges()
	largeFactor := s.graphLargeFactor()
	alloc := s.allocScale()
	return func(name string) workloads.App {
		switch name {
		case "PR":
			return graphchi.NewWithEdgesAndLarge(graphchi.PR, edges, largeFactor)
		case "CC":
			return graphchi.NewWithEdgesAndLarge(graphchi.CC, edges, largeFactor)
		case "ALS":
			return graphchi.NewWithEdgesAndLarge(graphchi.ALS, edges, largeFactor)
		}
		app := all.New(name)
		if app == nil {
			return nil
		}
		if pa, ok := app.(*workloads.ProfileApp); ok && alloc != 1 {
			prof := pa.P
			prof.AllocMB = int(float64(prof.AllocMB) * alloc)
			if prof.AllocMB < 2 {
				prof.AllocMB = 2
			}
			return workloads.NewProfileApp(prof)
		}
		return app
	}
}
