package lifetime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYearsKnownPoint(t *testing.T) {
	// 32 GB at 10M writes/cell, perfect wear-leveling, 100 MB/s:
	// Y = 32*2^30 * 1e7 / (1e8 * 2^25) = 102400 years / ... compute:
	want := float64(32<<30) * 1e7 / (100e6 * float64(SecondsPerYearLog2))
	got := Years(32<<30, 1e7, 100e6, 1.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Years = %v, want %v", got, want)
	}
}

func TestWearLevelingHalvesLifetime(t *testing.T) {
	perfect := Years(DefaultPCMBytes, Prototype1Endurance, 50e6, 1.0)
	realistic := Years(DefaultPCMBytes, Prototype1Endurance, 50e6, DefaultWearLevelingEfficiency)
	if math.Abs(realistic-perfect/2) > 1e-9 {
		t.Errorf("50%% efficiency should halve lifetime: %v vs %v", realistic, perfect)
	}
}

func TestZeroRate(t *testing.T) {
	if Years(DefaultPCMBytes, Prototype1Endurance, 0, 0.5) != 0 {
		t.Error("zero write rate should yield zero, not infinity")
	}
}

func TestYearsFromMBs(t *testing.T) {
	a := Years(DefaultPCMBytes, Prototype2Endurance, 140e6, 0.5)
	b := YearsFromMBs(DefaultPCMBytes, Prototype2Endurance, 140, 0.5)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("unit conversion mismatch: %v vs %v", a, b)
	}
}

func TestPaperRecommendedRate(t *testing.T) {
	// 375 GB at 30 DWPD is ~140 MB/s (the paper's line in Fig 6).
	got := PaperRecommendedRateMBs()
	if got < 135 || got > 145 {
		t.Errorf("recommended rate = %.1f MB/s, want ~140", got)
	}
}

// Property: lifetime scales linearly with endurance and inversely
// with write rate.
func TestScalingProperty(t *testing.T) {
	f := func(e8, r8 uint8) bool {
		e := float64(e8%50+1) * 1e6
		r := float64(r8%200+1) * 1e6
		base := Years(DefaultPCMBytes, e, r, 0.5)
		doubleE := Years(DefaultPCMBytes, 2*e, r, 0.5)
		doubleR := Years(DefaultPCMBytes, e, 2*r, 0.5)
		return math.Abs(doubleE-2*base) < 1e-6 && math.Abs(doubleR-base/2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the paper's Table III ordering — KG-W (lower write rate)
// always yields a longer lifetime than PCM-Only at any endurance.
func TestOrderingProperty(t *testing.T) {
	f := func(rate uint16) bool {
		r := float64(rate%1000+10) * 1e6
		pcmOnly := Years(DefaultPCMBytes, Prototype1Endurance, r, 0.5)
		kgw := Years(DefaultPCMBytes, Prototype1Endurance, r/3, 0.5)
		return kgw > pcmOnly
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
