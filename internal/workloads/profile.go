package workloads

// Profile parameterizes a synthetic allocation/mutation workload. The
// DaCapo applications and Pjbb are modelled as profiles calibrated to
// the aggregate behaviours the paper reports (allocation volume,
// nursery survival, mature mutation, large-object traffic, and the
// compute-to-write ratio that sets PCM write rates in MB/s).
type Profile struct {
	AppName string
	S       Suite

	// AllocMB is the allocation volume of one iteration.
	AllocMB int
	// MeanObj is the mean small-object size in bytes.
	MeanObj int
	// SurviveKB sizes the live window of recently allocated objects;
	// objects die when they rotate out, so the window (relative to
	// the nursery) controls the nursery-size-sensitive part of
	// survival.
	SurviveKB int
	// MediumFrac is the probability that an allocation is
	// medium-lived: rooted in a second ring whose lifetime
	// (MediumLiveKB/MediumFrac bytes of allocation) far exceeds any
	// nursery, so these objects are copied to the mature space
	// regardless of nursery size — the survivor population that makes
	// KG-B's bigger nursery save little (the paper: 11% vs KG-N's
	// 4-8%). Medium objects are read-mostly after creation, so KG-W's
	// observer dispatches them to PCM.
	MediumFrac float64
	// MediumLiveKB is the live size of the medium ring.
	MediumLiveKB int
	// LongLivedMB is the permanently live structure (built on first
	// iteration, kept across iterations).
	LongLivedMB int
	// LargeFrac is the fraction of allocated bytes in large objects.
	LargeFrac float64
	// LargeObjKB is the typical large-object size.
	LargeObjKB int
	// WritesPerKB is the number of 8..64-byte mutator stores per KB
	// allocated.
	WritesPerKB float64
	// MatureWriteFrac is the fraction of stores hitting the
	// long-lived structure (the rest hit recently allocated data).
	MatureWriteFrac float64
	// ReadsPerKB is the matching load traffic.
	ReadsPerKB float64
	// RefsPerObj is the reference slots per small object.
	RefsPerObj int
	// PointerChurn is the probability per allocation of installing a
	// mature-to-young reference (write-barrier traffic).
	PointerChurn float64
	// ComputePerKB is compute units per KB allocated: the knob that
	// sets the workload's write rate.
	ComputePerKB int

	// Nursery and heap sizing (the paper: 4 MB nursery for DaCapo and
	// Pjbb, heap twice the minimum).
	NurseryMBv int
	HeapMBv    int

	// Large-dataset behaviour (Fig 8). LargeScale multiplies the
	// allocation volume (0 = no large dataset); LargeLongLivedScale
	// multiplies the live structure; LargeComputeScale multiplies
	// compute per KB, shifting the compute-to-write balance and with
	// it the write rate.
	LargeScale           float64
	LargeLongLivedScale  float64
	LargeComputeScale    float64
	LargeWritesPerKBMult float64
}

// ProfileApp runs a Profile as an App.
type ProfileApp struct {
	P Profile

	built       bool
	matureRefs  []Ref
	matureSizes []int
	matureSlots []int
}

var _ App = (*ProfileApp)(nil)

// NewProfileApp wraps a profile.
func NewProfileApp(p Profile) *ProfileApp { return &ProfileApp{P: p} }

// Name returns the benchmark name.
func (a *ProfileApp) Name() string { return a.P.AppName }

// Suite returns the benchmark family.
func (a *ProfileApp) Suite() Suite { return a.P.S }

// NurseryMB returns the suite nursery size.
func (a *ProfileApp) NurseryMB() int { return a.P.NurseryMBv }

// HeapMB returns the heap budget.
func (a *ProfileApp) HeapMB() int { return a.P.HeapMBv }

// HasLargeDataset reports whether Fig 8 covers this app.
func (a *ProfileApp) HasLargeDataset() bool { return a.P.LargeScale > 0 }

// Run executes one iteration of the profile.
func (a *ProfileApp) Run(env Env, ds Dataset, seed uint64) {
	p := a.P
	rng := NewRNG(seed*1099511628211 + uint64(len(p.AppName)))

	allocBudget := uint64(p.AllocMB) << 20
	longLived := uint64(p.LongLivedMB) << 20
	computePerKB := float64(p.ComputePerKB)
	writesPerKB := p.WritesPerKB
	if ds == Large && p.LargeScale > 0 {
		allocBudget = uint64(float64(allocBudget) * p.LargeScale)
		if p.LargeLongLivedScale > 0 {
			longLived = uint64(float64(longLived) * p.LargeLongLivedScale)
		}
		if p.LargeComputeScale > 0 {
			computePerKB *= p.LargeComputeScale
		}
		if p.LargeWritesPerKBMult > 0 {
			writesPerKB *= p.LargeWritesPerKBMult
		}
	}

	// Build the long-lived structure once; it persists across the
	// warmup and measured iterations like real application caches.
	if !a.built {
		a.built = true
		var b uint64
		for b < longLived {
			size := 512 + rng.Intn(3584)
			if rng.Float() < 0.08 {
				size = (32 + rng.Intn(96)) << 10 // long-lived large arrays
			}
			ref := env.Alloc(size, 2)
			a.matureSlots = append(a.matureSlots, env.AddRoot(ref))
			a.matureRefs = append(a.matureRefs, ref)
			a.matureSizes = append(a.matureSizes, size)
			b += uint64(size)
		}
	}

	// Rotating window of recently allocated objects.
	window := p.SurviveKB * 1024 / p.MeanObj
	if window < 4 {
		window = 4
	}
	ringRefs := make([]Ref, window)
	ringSlots := make([]int, window)
	for i := range ringSlots {
		ringSlots[i] = env.AddRoot(NilRef)
	}
	// Medium-lived ring: survives any nursery, dies in the mature
	// space.
	medWindow := 0
	var medRefs []Ref
	var medSlots []int
	if p.MediumFrac > 0 {
		medWindow = p.MediumLiveKB * 1024 / p.MeanObj
		if medWindow < 4 {
			medWindow = 4
		}
		medRefs = make([]Ref, medWindow)
		medSlots = make([]int, medWindow)
		for i := range medSlots {
			medSlots[i] = env.AddRoot(NilRef)
		}
	}

	var allocated uint64
	var writeDebt, readDebt, computeDebt float64
	idx, medIdx := 0, 0
	for allocated < allocBudget {
		var ref Ref
		var size int
		if p.LargeFrac > 0 && rng.Float() < p.LargeFrac*float64(p.MeanObj)/float64(p.LargeObjKB<<10) {
			size = (p.LargeObjKB/2 + rng.Intn(p.LargeObjKB)) << 10
			ref = env.Alloc(size, 0)
		} else {
			size = rng.SizeAround(p.MeanObj, 7<<10)
			ref = env.Alloc(size, p.RefsPerObj)
		}
		allocated += uint64(size)

		if medWindow > 0 && rng.Float() < p.MediumFrac {
			// Medium-lived: rooted until the ring rotates back.
			slot := medIdx % medWindow
			old := medRefs[slot]
			medRefs[slot] = ref
			env.SetRoot(medSlots[slot], ref)
			if old != NilRef && !env.Managed() {
				env.Free(old)
			}
			medIdx++
		} else {
			// Rotate the survivor window: the replaced object loses
			// its root and becomes garbage.
			slot := idx % window
			old := ringRefs[slot]
			ringRefs[slot] = ref
			env.SetRoot(ringSlots[slot], ref)
			if old != NilRef && !env.Managed() {
				env.Free(old)
			}
			idx++
		}

		kb := float64(size) / 1024
		// Writes and reads touch random offsets across the whole
		// target object, so the long-lived structure's full footprint
		// flows through the cache hierarchy (this LLC pressure is what
		// evicts dirty nursery lines and creates the nursery-writeback
		// traffic the Kingsguard collectors ration).
		writeDebt += kb * writesPerKB
		for writeDebt >= 1 {
			writeDebt--
			if rng.Float() < p.MatureWriteFrac && len(a.matureRefs) > 0 {
				i := rng.Intn(len(a.matureRefs))
				off := 8 + rng.Intn(a.matureSizes[i]-16)
				env.Write(a.matureRefs[i], off, 8)
			} else {
				y := ringRefs[rng.Intn(window)]
				if y != NilRef {
					env.Write(y, 8, 8)
				}
			}
		}
		readDebt += kb * p.ReadsPerKB
		for readDebt >= 1 {
			readDebt--
			r := rng.Float()
			switch {
			case r < 0.45 && len(a.matureRefs) > 0:
				i := rng.Intn(len(a.matureRefs))
				off := 8 + rng.Intn(a.matureSizes[i]-16)
				env.Read(a.matureRefs[i], off, 8)
			case r < 0.65 && medWindow > 0:
				if mr := medRefs[rng.Intn(medWindow)]; mr != NilRef {
					env.Read(mr, 8, 8)
				}
			default:
				if y := ringRefs[rng.Intn(window)]; y != NilRef {
					env.Read(y, 16, 8)
				}
			}
		}
		if p.PointerChurn > 0 && len(a.matureRefs) > 0 && rng.Float() < p.PointerChurn {
			m := a.matureRefs[rng.Intn(len(a.matureRefs))]
			env.WriteRef(m, rng.Intn(2), ref)
		}
		computeDebt += kb * computePerKB
		if computeDebt >= 2048 {
			env.Compute(int(computeDebt))
			computeDebt = 0
		}
	}

	// Iteration end: the transient windows die.
	for i := range ringSlots {
		env.SetRoot(ringSlots[i], NilRef)
		env.DropRoot(ringSlots[i])
		if ringRefs[i] != NilRef && !env.Managed() {
			env.Free(ringRefs[i])
		}
	}
	for i := range medSlots {
		env.SetRoot(medSlots[i], NilRef)
		env.DropRoot(medSlots[i])
		if medRefs[i] != NilRef && !env.Managed() {
			env.Free(medRefs[i])
		}
	}
}
