package machine

import "testing"

// BenchmarkAccessCached measures the full L1-hit path through the
// machine (the platform's hottest operation).
func BenchmarkAccessCached(b *testing.B) {
	m := New(DefaultConfig())
	th := m.NewThread("bench", 0, 0)
	th.Access(0, 8, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Access(0, 8, true)
	}
}

// BenchmarkAccessStreaming measures the miss+writeback path over a
// working set far beyond the caches.
func BenchmarkAccessStreaming(b *testing.B) {
	m := New(DefaultConfig())
	th := m.NewThread("bench", 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Access(uint64(i%(1<<24))*64, 8, true)
	}
}

// BenchmarkAccessRemote measures accesses homed on the remote socket
// (the PCM path, crossing QPI).
func BenchmarkAccessRemote(b *testing.B) {
	cfg := DefaultConfig()
	m := New(cfg)
	th := m.NewThread("bench", 0, 0)
	base := cfg.NodeBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Access(base+uint64(i%(1<<24))*64, 8, true)
	}
}
