// Command hybridserved serves the emulation platform over HTTP: many
// clients share one Platform, identical concurrent requests coalesce
// into one compute, and (with -store) every result is durable across
// restarts, so the service warm-starts with the whole grid it has ever
// computed.
//
// Usage:
//
//	hybridserved [-addr :8080] [-store DIR] [-scale quick|std|full]
//	             [-seed N] [-policy NAME] [-max-inflight N]
//	             [-max-queued N] [-drain 30s]
//	             [-node URL -peers URL,URL,...]
//	             [-log-format text|json] [-spans FILE]
//	             [-debug-addr 127.0.0.1:6060] [-trace-library DIR]
//	             [-estimate-validate 0]
//
// Endpoints: POST /v1/run, POST /v1/sweep (streams ndjson),
// GET /v1/results, GET /v1/policies, GET /v1/spans, GET /v1/runs,
// GET /v1/runs/{id}, GET /v1/runs/{id}/events, GET /v1/status,
// GET /v1/fleet/status, GET /healthz, GET /v1/healthz, GET /metrics.
// SIGTERM (or Ctrl-C) drains in-flight requests before exiting.
// -policy sets the default placement policy; requests override it per
// run or sweep.
//
// With -node and -peers the server joins a sharded fabric: -node is
// this node's own base URL (its identity on the consistent-hash ring)
// and -peers is the full fleet membership, identical on every node.
// Runs whose canonical key hashes to a peer are forwarded there; an
// unreachable peer degrades to local execution. Every node must run
// the same -scale, -seed, and -policy, or the fleet's canonical keys
// disagree and nothing is shared.
//
// With -trace-library the node also answers POST /v1/run and /v1/sweep
// at replay speed under ?answer=auto|estimate: specs whose library
// neighborhood holds a resident trace are estimated from it instead of
// emulated (answer=exact opts out). -estimate-validate 30s starts the
// drift validator, which periodically re-runs one recently estimated
// spec live, records the observed error in the
// hybridserved_estimate_drift histogram, and refreshes drifted traces.
//
// Observability: logs go to stderr as structured slog records
// (-log-format json for machine ingestion), every finished
// run-lifecycle span appends to the -spans ndjson file (and is always
// queryable from GET /v1/spans), and -debug-addr exposes net/http/pprof
// on a second listener — keep it on loopback or behind a firewall, it
// is unauthenticated by design. The flight recorder (GET /v1/runs and
// friends) tracks every admitted run's lifecycle, and GET
// /v1/fleet/status merges the whole ring's status for cmd/hybridtop.
// See docs/observability.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hybridmem "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace/library"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "durable result store directory (empty = memory-only)")
	scale := flag.String("scale", "std", "input scale: quick, std, or full")
	seed := flag.Uint64("seed", 1, "workload seed")
	policyName := flag.String("policy", "static", "default placement policy (requests may override)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent platform runs (0 = one per core)")
	maxQueued := flag.Int("max-queued", 0, "max requests waiting for a run slot before 429s (0 = 8x max-inflight)")
	node := flag.String("node", "", "this node's base URL on the fabric ring (e.g. http://10.0.0.1:8080)")
	peers := flag.String("peers", "", "comma-separated base URLs of the full fleet, identical on every node")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	spansPath := flag.String("spans", "", "append finished run-lifecycle spans to this ndjson file")
	traceLib := flag.String("trace-library", "", "compacted trace library directory: GET /v1/trace, POST /v1/autotune, and answer=auto runs/sweeps serve from it and warm it (empty = off)")
	estValidate := flag.Duration("estimate-validate", 0, "period of the estimate drift validator (0 = off; needs -trace-library)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off; keep it private)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hybridserved: %v\n", err)
		os.Exit(2)
	}

	sc, err := hybridmem.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	pol, err := hybridmem.ParsePolicy(*policyName)
	if err != nil {
		fail(err)
	}
	opts := []hybridmem.Option{hybridmem.WithScale(sc), hybridmem.WithSeed(*seed), hybridmem.WithPolicy(pol)}
	if *storeDir != "" {
		opts = append(opts, hybridmem.WithStore(*storeDir))
	}
	p := hybridmem.New(opts...)

	var fab *fabric.Fabric
	if *peers != "" {
		if *node == "" {
			fail(fmt.Errorf("-peers requires -node (this node's own URL in the peer list)"))
		}
		var list []string
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/")); u != "" {
				list = append(list, u)
			}
		}
		fab, err = fabric.New(fabric.Config{Self: strings.TrimSuffix(*node, "/"), Peers: list})
		if err != nil {
			fail(err)
		}
	} else if *node != "" {
		fail(fmt.Errorf("-node requires -peers (the full fleet membership)"))
	}

	nodeName := "local"
	if fab != nil {
		nodeName = fab.Self()
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, nodeName)
	if err != nil {
		fail(err)
	}

	var spanSink *os.File
	if *spansPath != "" {
		spanSink, err = os.OpenFile(*spansPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(fmt.Errorf("opening -spans file: %w", err))
		}
	}

	cfg := serve.Config{MaxInFlight: *maxInflight, MaxQueued: *maxQueued, Fabric: fab, Logger: log}
	if spanSink != nil {
		cfg.SpanSink = spanSink
	}
	if *traceLib != "" {
		lib, err := library.Open(*traceLib)
		if err != nil {
			fail(fmt.Errorf("opening -trace-library: %w", err))
		}
		cfg.TraceLibrary = lib
		cfg.ValidateEvery = *estValidate
		log.Info("trace library open", "dir", lib.Dir(), "traces", lib.Len(),
			"estimateValidate", estValidate.String())
	} else if *estValidate > 0 {
		fail(fmt.Errorf("-estimate-validate requires -trace-library"))
	}
	srv, err := serve.New(p, cfg)
	if err != nil {
		fail(err)
	}

	if *debugAddr != "" {
		// pprof gets its own mux on its own listener so the profiling
		// surface never shares a port with the public API.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Error("pprof server failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		if fab != nil {
			log.Info("listening", "addr", *addr, "scale", sc.String(), "seed", *seed,
				"store", *storeDir, "ring", fmt.Sprintf("%v", fab.Members()))
		} else {
			log.Info("listening", "addr", *addr, "scale", sc.String(), "seed", *seed,
				"store", *storeDir)
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests finish, then make
	// sure everything computed so far is on stable storage.
	log.Info("draining", "timeout", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Error("shutdown", "err", err)
	}
	// Stop the drift validator before the store closes under it.
	srv.Close()
	if st, err := p.Store(); err == nil && st != nil {
		if err := st.Close(); err != nil {
			log.Error("closing store", "err", err)
		}
	}
	if spanSink != nil {
		if err := spanSink.Close(); err != nil {
			log.Error("closing spans file", "err", err)
		}
	}
	log.Info("bye")
}
