package fabric

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// flakyTransport fails the first n attempts, then answers.
type flakyTransport struct {
	failures int
	calls    int
	resp     *Response
}

func (f *flakyTransport) ForwardRun(ctx context.Context, node string, body []byte) (*Response, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, fmt.Errorf("dial %s: connection refused", node)
	}
	return f.resp, nil
}

func testFabric(t *testing.T, tr Transport, attempts int) *Fabric {
	t.Helper()
	f, err := New(Config{
		Self:      "http://a",
		Peers:     []string{"http://b", "http://c"},
		Transport: tr,
		Retry:     RetryConfig{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestForwardRetriesTransportFailures(t *testing.T) {
	tr := &flakyTransport{failures: 2, resp: &Response{Status: 200, Body: []byte(`{}`)}}
	f := testFabric(t, tr, 3)
	resp, err := f.Forward(context.Background(), "http://b", nil)
	if err != nil {
		t.Fatalf("forward after transient failures: %v", err)
	}
	if resp.Status != 200 || tr.calls != 3 {
		t.Errorf("status=%d calls=%d, want 200 after exactly 3 attempts", resp.Status, tr.calls)
	}
}

func TestForwardExhaustsRetryBudget(t *testing.T) {
	tr := &flakyTransport{failures: 99}
	f := testFabric(t, tr, 3)
	_, err := f.Forward(context.Background(), "http://b", nil)
	if err == nil {
		t.Fatal("forward to a dead peer must fail after the budget")
	}
	if tr.calls != 3 {
		t.Errorf("calls = %d, want exactly the 3-attempt budget", tr.calls)
	}
}

// TestForwardPeerResponseNotRetried: an HTTP answer — even an error
// status — is a reachable peer speaking for itself; the retry budget
// is for transport failures only.
func TestForwardPeerResponseNotRetried(t *testing.T) {
	tr := &flakyTransport{resp: &Response{Status: 429, RetryAfter: "2"}}
	f := testFabric(t, tr, 3)
	resp, err := f.Forward(context.Background(), "http://b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 429 || resp.RetryAfter != "2" || tr.calls != 1 {
		t.Errorf("resp=%+v calls=%d, want the 429 surfaced after one attempt", resp, tr.calls)
	}
}

func TestForwardHonorsContext(t *testing.T) {
	tr := &flakyTransport{failures: 99}
	f := testFabric(t, tr, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := f.Forward(ctx, "http://b", nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled forward kept retrying")
	}
}

func TestBackoffGrowsAndStaysBounded(t *testing.T) {
	rc := RetryConfig{Attempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for k := 0; k < 8; k++ {
		d := rc.backoff(k)
		// Jitter spans [0.5, 1.5) of the capped exponential step.
		step := rc.BaseDelay << uint(k)
		if step > rc.MaxDelay || step <= 0 {
			step = rc.MaxDelay
		}
		if d < step/2 || d >= step+step/2 {
			t.Errorf("backoff(%d) = %v outside [%v, %v)", k, d, step/2, step+step/2)
		}
		if d >= rc.MaxDelay+rc.MaxDelay/2 {
			t.Errorf("backoff(%d) = %v exceeds the jittered cap", k, d)
		}
	}
}

func TestNewValidatesAndAddsSelf(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://b"}}); err == nil {
		t.Error("New without Self must fail")
	}
	f, err := New(Config{Self: "http://a", Peers: []string{"http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	members := f.Members()
	if len(members) != 2 {
		t.Fatalf("members = %v, want self added to the ring", members)
	}
	if f.Self() != "http://a" {
		t.Errorf("Self = %q", f.Self())
	}
	// Every key has exactly one owner, drawn from the membership.
	for _, k := range syntheticKeys(100) {
		owner := f.Owner(k)
		if owner != "http://a" && owner != "http://b" {
			t.Fatalf("owner %q not a member", owner)
		}
	}
}
