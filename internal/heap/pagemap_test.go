package heap

import "testing"

func TestPageMapSeedAndRetarget(t *testing.T) {
	pm := NewPageMap(HeapBase, DefaultDRAMEnd)
	if pm.Lo() != HeapBase || pm.Hi() != DefaultDRAMEnd {
		t.Fatalf("range = [%#x,%#x)", pm.Lo(), pm.Hi())
	}
	if got := pm.Node(HeapBase); got != TierUnknown {
		t.Errorf("fresh group tier = %d, want unknown", got)
	}

	// The static seeding: PCM portion to node 1, DRAM portion to 0.
	pm.SetRange(HeapBase, DefaultPCMEnd, 1)
	pm.SetRange(DefaultPCMEnd, DefaultDRAMEnd, 0)
	if got := pm.Node(DefaultPCMEnd - 1); got != 1 {
		t.Errorf("PCM-portion tier = %d, want 1", got)
	}
	if got := pm.Node(DefaultPCMEnd); got != 0 {
		t.Errorf("DRAM-portion tier = %d, want 0", got)
	}

	// A migration retargets one group; its neighbors keep their tier.
	addr := uint64(HeapBase + 5*PageGroupBytes)
	pm.SetRange(addr, addr+PageGroupBytes, 0)
	if got := pm.Node(addr); got != 0 {
		t.Errorf("migrated group tier = %d, want 0", got)
	}
	if got := pm.Node(addr - 1); got != 1 {
		t.Errorf("neighbor below changed tier: %d", got)
	}
	if got := pm.Node(addr + PageGroupBytes); got != 1 {
		t.Errorf("neighbor above changed tier: %d", got)
	}

	res := pm.Residency(1)
	if res[0]+res[1] != pm.Groups() {
		t.Errorf("residency %v does not cover all %d groups", res, pm.Groups())
	}
	if res[0] == 0 || res[1] == 0 {
		t.Errorf("residency %v should count both tiers", res)
	}
}

func TestPageMapOutOfRange(t *testing.T) {
	pm := NewPageMap(HeapBase, HeapBase+4*PageGroupBytes)
	if got := pm.Node(HeapBase - 1); got != TierUnknown {
		t.Errorf("below range = %d, want unknown", got)
	}
	if got := pm.Node(pm.Hi()); got != TierUnknown {
		t.Errorf("at end = %d, want unknown", got)
	}
	// Clamped, partial, and disjoint SetRanges stay safe.
	pm.SetRange(0, 1<<40, 1)
	pm.SetRange(pm.Hi(), pm.Hi()+PageGroupBytes, 0)
	for i := 0; i < pm.Groups(); i++ {
		if got := pm.Node(pm.GroupAddr(i)); got != 1 {
			t.Errorf("group %d = %d, want 1", i, got)
		}
	}
}
