package experiments

import (
	"context"
	"fmt"

	hybridmem "repro"
	"repro/internal/jvm"
	"repro/internal/lifetime"
	"repro/internal/objmodel"
	"repro/internal/stats"
)

// TableIRow is one space row of the paper's Table I.
type TableIRow struct {
	Space string
	// S0/S1 presence per collector column (KG-N, KG-W, KG-W-MDO).
	KGN, KGW, KGWMDO [2]bool
}

// TableI reproduces the paper's Table I: the space-to-socket mapping
// of the Kingsguard collectors. It is configuration, not measurement —
// derived directly from the plan definitions.
func TableI() []TableIRow {
	cfg := jvm.PlanConfig{ThreadSocket: -1}
	plans := map[string]jvm.Plan{
		"KG-N":     jvm.NewPlan(jvm.KGN, cfg),
		"KG-W":     jvm.NewPlan(jvm.KGW, cfg),
		"KG-W-MDO": jvm.NewPlan(jvm.KGWNoMDO, cfg),
	}
	row := func(space string, f func(p jvm.Plan) [2]bool) TableIRow {
		return TableIRow{
			Space:  space,
			KGN:    f(plans["KG-N"]),
			KGW:    f(plans["KG-W"]),
			KGWMDO: f(plans["KG-W-MDO"]),
		}
	}
	return []TableIRow{
		row("Nursery", func(p jvm.Plan) [2]bool {
			n := p.Bindings[objmodel.SpaceNursery]
			return [2]bool{n == 0, n == 1}
		}),
		row("Observer", func(p jvm.Plan) [2]bool {
			if !p.UseObserver {
				return [2]bool{}
			}
			n := p.Bindings[objmodel.SpaceObserver]
			return [2]bool{n == 0, n == 1}
		}),
		row("Mature", func(p jvm.Plan) [2]bool {
			_, dram := p.Bindings[objmodel.SpaceMatureDRAM]
			return [2]bool{dram, true}
		}),
		row("Large", func(p jvm.Plan) [2]bool {
			_, dram := p.Bindings[objmodel.SpaceLargeDRAM]
			return [2]bool{dram, true}
		}),
		// The Metadata row follows the paper's reading: S0 holds PCM
		// objects' metadata only under the MetaData Optimization.
		row("Metadata", func(p jvm.Plan) [2]bool {
			return [2]bool{p.MDO, true}
		}),
	}
}

// RenderTableI renders Table I in the paper's layout.
func RenderTableI() string {
	t := stats.NewTable("Table I: Kingsguard space-to-socket mapping",
		"Space", "KG-N S0", "KG-N S1", "KG-W S0", "KG-W S1", "KG-W-MDO S0", "KG-W-MDO S1")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, r := range TableI() {
		t.AddRow(r.Space,
			mark(r.KGN[0]), mark(r.KGN[1]),
			mark(r.KGW[0]), mark(r.KGW[1]),
			mark(r.KGWMDO[0]), mark(r.KGWMDO[1]))
	}
	return t.String()
}

// TableIIRow is one collector's reduction pair.
type TableIIRow struct {
	Collector     string
	SimReduction  float64 // % PCM-write reduction vs PCM-Only, simulation
	EmulReduction float64 // same, emulation
}

// TableIIResult is the emulation-vs-simulation validation (§V).
type TableIIResult struct {
	Rows []TableIIRow
	// KG-B vs KG-N total memory writes (paper: 1.98x sim, 2.2x emul).
	SimKGBTotalOverKGN  float64
	EmulKGBTotalOverKGN float64
	// KG-W performance overhead over KG-N (paper: 7% sim, 10% emul).
	SimKGWOverheadPct  float64
	EmulKGWOverheadPct float64
	Apps               []string
}

// tableIIApps is the 7-benchmark subset the paper's simulator could
// run (trimmed in Quick mode).
func (r *Runner) tableIIApps() []string {
	if r.cfg.Scale == Quick {
		return []string{"lusearch", "xalan", "pmd"}
	}
	return []string{"lusearch", "lu.Fix", "avrora", "xalan", "pmd", "pmd.S", "bloat"}
}

// TableII runs the paper's validation: per-benchmark PCM-write
// reductions of KG-N, KG-B, and KG-W against the PCM-Only reference,
// measured independently by both pipelines.
func (r *Runner) TableII(ctx context.Context) (TableIIResult, error) {
	apps := r.tableIIApps()
	res := TableIIResult{Apps: apps}
	kinds := []hybridmem.Collector{hybridmem.KGN, hybridmem.KGB, hybridmem.KGW}

	// Warm both pipelines' grids (and their references) in parallel.
	kindSpecs := hybridmem.NewSweep(apps...).Collectors(kinds...).Specs()
	refSpecs := hybridmem.NewSweep(apps...).Collectors(hybridmem.PCMOnly).Specs()
	for _, mode := range []hybridmem.Mode{hybridmem.Simulation, hybridmem.Emulation} {
		if _, err := r.at(mode).RunBatch(ctx, kindSpecs...); err != nil {
			return res, err
		}
		ref := r.at(mode).With(hybridmem.WithThreadSocket(0))
		if _, err := ref.RunBatch(ctx, refSpecs...); err != nil {
			return res, err
		}
	}

	type modeAgg struct {
		reductions map[hybridmem.Collector][]float64
		kgbTotal   []float64
		overhead   []float64
	}
	measure := func(mode hybridmem.Mode) (modeAgg, error) {
		agg := modeAgg{reductions: map[hybridmem.Collector][]float64{}}
		for _, app := range apps {
			base, err := r.reference(ctx, mode, app)
			if err != nil {
				return agg, err
			}
			perKind := map[hybridmem.Collector]hybridmem.Result{}
			for _, k := range kinds {
				var kg hybridmem.Result
				if mode == hybridmem.Emulation {
					kg, err = r.emul(ctx, app, k, 1, 0)
				} else {
					kg, err = r.sim(ctx, app, k)
				}
				if err != nil {
					return agg, err
				}
				perKind[k] = kg
				agg.reductions[k] = append(agg.reductions[k],
					stats.PercentReduction(float64(base.PCMWriteLines), float64(kg.PCMWriteLines)))
			}
			agg.kgbTotal = append(agg.kgbTotal,
				stats.Ratio(float64(perKind[hybridmem.KGB].TotalWriteLines()), float64(perKind[hybridmem.KGN].TotalWriteLines())))
			agg.overhead = append(agg.overhead,
				100*(stats.Ratio(perKind[hybridmem.KGW].Seconds, perKind[hybridmem.KGN].Seconds)-1))
		}
		return agg, nil
	}

	simAgg, err := measure(hybridmem.Simulation)
	if err != nil {
		return res, err
	}
	emulAgg, err := measure(hybridmem.Emulation)
	if err != nil {
		return res, err
	}
	for _, k := range kinds {
		res.Rows = append(res.Rows, TableIIRow{
			Collector:     k.String(),
			SimReduction:  stats.Mean(simAgg.reductions[k]),
			EmulReduction: stats.Mean(emulAgg.reductions[k]),
		})
	}
	res.SimKGBTotalOverKGN = stats.Mean(simAgg.kgbTotal)
	res.EmulKGBTotalOverKGN = stats.Mean(emulAgg.kgbTotal)
	res.SimKGWOverheadPct = stats.Mean(simAgg.overhead)
	res.EmulKGWOverheadPct = stats.Mean(emulAgg.overhead)
	return res, nil
}

// Render renders Table II plus the §V side findings.
func (t TableIIResult) Render() string {
	tb := stats.NewTable("Table II: PCM-write reduction vs PCM-Only (simulation vs emulation)",
		"Collector", "Simulator", "Emulator")
	for _, row := range t.Rows {
		tb.AddRow(row.Collector,
			fmt.Sprintf("%.0f%%", row.SimReduction),
			fmt.Sprintf("%.0f%%", row.EmulReduction))
	}
	out := tb.String()
	out += fmt.Sprintf("KG-B/KG-N total memory writes: sim %.2fx, emul %.2fx (paper: 1.98x / 2.2x)\n",
		t.SimKGBTotalOverKGN, t.EmulKGBTotalOverKGN)
	out += fmt.Sprintf("KG-W overhead over KG-N:       sim %.1f%%, emul %.1f%% (paper: 7%% / 10%%)\n",
		t.SimKGWOverheadPct, t.EmulKGWOverheadPct)
	return out
}

// TableIIIResult is the lifetime study.
type TableIIIResult struct {
	// Years[n][e][p]: worst-case lifetime for instance count index n
	// (0->N=1, 1->N=4), endurance index e (10/30/50M), plan index p
	// (0=PCM-Only, 1=KG-W).
	Years [2][3][2]float64
	// WorstApp names the rate-dominating benchmark per cell.
	WorstApp [2][2]string
}

// TableIII reproduces the lifetime table: worst-case PCM lifetime in
// years across the benchmarks, for single-program and four-instance
// workloads under PCM-Only and KG-W, at the three endurance levels.
func (r *Runner) TableIII(ctx context.Context) (TableIIIResult, error) {
	var res TableIIIResult
	endurances := []float64{
		lifetime.Prototype1Endurance,
		lifetime.Prototype2Endurance,
		lifetime.Prototype3Endurance,
	}
	plans := []hybridmem.Collector{hybridmem.PCMOnly, hybridmem.KGW}
	instances := []int{1, 4}
	if err := r.prefetch(ctx, hybridmem.NewSweep(r.allApps()...).
		Collectors(plans...).
		Instances(instances...).Specs()); err != nil {
		return res, err
	}
	for ni, n := range instances {
		for pi, plan := range plans {
			worstRate := 0.0
			worstApp := ""
			for _, app := range r.allApps() {
				run, err := r.emul(ctx, app, plan, n, 0)
				if err != nil {
					return res, err
				}
				if rate := run.PCMRateMBs(); rate > worstRate {
					worstRate = rate
					worstApp = app
				}
			}
			res.WorstApp[ni][pi] = worstApp
			for ei, e := range endurances {
				res.Years[ni][ei][pi] = lifetime.YearsFromMBs(
					lifetime.DefaultPCMBytes, e, worstRate,
					lifetime.DefaultWearLevelingEfficiency)
			}
		}
	}
	return res, nil
}

// Render renders Table III in the paper's layout.
func (t TableIIIResult) Render() string {
	tb := stats.NewTable("Table III: worst-case PCM lifetime in years (32 GB, 50% wear-leveling efficiency)",
		"Workload",
		"P1 PCM-Only", "P1 KG-W",
		"P2 PCM-Only", "P2 KG-W",
		"P3 PCM-Only", "P3 KG-W")
	names := []string{"N = 1", "N = 4"}
	for ni, name := range names {
		tb.AddRow(name,
			fmt.Sprintf("%.0f", t.Years[ni][0][0]), fmt.Sprintf("%.0f", t.Years[ni][0][1]),
			fmt.Sprintf("%.0f", t.Years[ni][1][0]), fmt.Sprintf("%.0f", t.Years[ni][1][1]),
			fmt.Sprintf("%.0f", t.Years[ni][2][0]), fmt.Sprintf("%.0f", t.Years[ni][2][1]))
	}
	out := tb.String()
	out += fmt.Sprintf("worst-case apps: N=1 %s/%s, N=4 %s/%s\n",
		t.WorstApp[0][0], t.WorstApp[0][1], t.WorstApp[1][0], t.WorstApp[1][1])
	return out
}
