package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("n1")
	sp := tr.StartSpan(SpanContext{}, "root")
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatalf("fresh span context invalid: %+v", sc)
	}
	hdr := sc.Traceparent()
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip %q -> %+v ok=%v, want %+v", hdr, got, ok, sc)
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"00-abc-def-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"000af7651916cd43dd8448eb211c80319cb7ad6b716920333101",
	} {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted garbage", s)
		}
	}
	if _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"); !ok {
		t.Fatal("valid traceparent rejected")
	}
}

func TestSpanParentage(t *testing.T) {
	tr := NewTracer("n1")
	ctx, root := tr.Start(context.Background(), "run")
	_, child := tr.Start(ctx, "cache.lookup")
	child.SetAttr("hit", "false")
	child.End()
	root.End()

	recs := tr.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2", len(recs))
	}
	c, r := recs[0], recs[1] // oldest first: child ended first
	if c.Name != "cache.lookup" || r.Name != "run" {
		t.Fatalf("order: %q then %q", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatal("child not in parent's trace")
	}
	if c.Parent != r.Span {
		t.Fatalf("child parent %q != root span %q", c.Parent, r.Span)
	}
	if r.Parent != "" {
		t.Fatalf("root should have no parent, got %q", r.Parent)
	}
	if c.Attrs["hit"] != "false" {
		t.Fatalf("attrs lost: %+v", c.Attrs)
	}
	if c.Node != "n1" {
		t.Fatalf("node label lost: %q", c.Node)
	}
}

func TestRemoteParentSeedsTrace(t *testing.T) {
	tr := NewTracer("peer")
	remote := SpanContext{TraceID: "0af7651916cd43dd8448eb211c80319c", SpanID: "b7ad6b7169203331"}
	ctx := ContextWithRemote(context.Background(), remote)
	_, sp := tr.Start(ctx, "run")
	sp.End()
	rec := tr.Recent(0)[0]
	if rec.Trace != remote.TraceID || rec.Parent != remote.SpanID {
		t.Fatalf("remote parent not honored: %+v", rec)
	}
}

func TestEmit(t *testing.T) {
	tr := NewTracer("n1")
	parent := tr.StartSpan(SpanContext{}, "execute")
	start := time.Now().Add(-time.Millisecond)
	sc := tr.Emit(parent.Context(), "policy.quantum", start, time.Millisecond, map[string]string{"proc": "PR"})
	if !sc.Valid() {
		t.Fatal("Emit returned invalid context")
	}
	rec := tr.Recent(0)[0]
	if rec.Name != "policy.quantum" || rec.Parent != parent.Context().SpanID || rec.DurNs != int64(time.Millisecond) {
		t.Fatalf("emitted record wrong: %+v", rec)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer("n1", WithRingSize(4))
	for i := 0; i < 10; i++ {
		tr.Emit(SpanContext{}, "s"+string(rune('0'+i)), time.Now(), 0, nil)
	}
	recs := tr.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recs))
	}
	if recs[0].Name != "s6" || recs[3].Name != "s9" {
		t.Fatalf("ring order wrong: %q .. %q", recs[0].Name, recs[3].Name)
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].Name != "s9" {
		t.Fatalf("limited Recent wrong: %+v", got)
	}
}

func TestSinkNDJSON(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer("n1", WithSpanSink(&buf))
	_, sp := tr.Start(context.Background(), "run")
	sp.End()
	tr.Emit(SpanContext{}, "other", time.Now(), time.Microsecond, nil)

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var names []string
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		names = append(names, rec.Name)
	}
	if len(names) != 2 || names[0] != "run" || names[1] != "other" {
		t.Fatalf("sink lines: %v", names)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span context should be zero")
	}
	if sc := SpanContextFrom(ctx); sc.Valid() {
		t.Fatal("context from nil tracer should carry nothing")
	}
	tr.Emit(SpanContext{}, "x", time.Now(), 0, nil)
	if tr.Recent(0) != nil {
		t.Fatal("nil tracer Recent should be nil")
	}
	if tr.StartSpan(SpanContext{}, "x") != nil {
		t.Fatal("nil tracer StartSpan should be nil")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer("n1")
	_, sp := tr.Start(context.Background(), "once")
	sp.End()
	sp.End()
	sp.SetAttr("late", "dropped")
	recs := tr.Recent(0)
	if len(recs) != 1 {
		t.Fatalf("double End recorded %d spans", len(recs))
	}
	if _, ok := recs[0].Attrs["late"]; ok {
		t.Fatal("attr set after End should be dropped")
	}
}
