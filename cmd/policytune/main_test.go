package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// goldenTrace is the committed quick-scale GraphChi trace the facade's
// golden tests freeze.
const goldenTrace = "../../testdata/traces/pr_kgn_write-threshold_quick.ndjson"

// tune runs the CLI against the golden trace bytes with extra args and
// returns (exit code, stdout, stderr).
func tune(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(""), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSuccessPrintsFrontierAndRecommendation(t *testing.T) {
	code, out, errOut := tune(t, "-trace", goldenTrace, "-hot", "2100,3000", "-budget", "16384,32768")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "pareto*") {
		t.Errorf("no recommended marker in output:\n%s", out)
	}
	if !strings.Contains(out, "recommended: write-threshold") {
		t.Errorf("no recommendation line in output:\n%s", out)
	}
	if !strings.Contains(out, "recorded policy write-threshold") {
		t.Errorf("no trace identity line in output:\n%s", out)
	}
}

func TestNDJSONWritesFrontier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frontier.ndjson")
	code, _, errOut := tune(t, "-trace", goldenTrace, "-hot", "2100,3000", "-ndjson", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], `"pareto":true`) {
		t.Errorf("frontier ndjson = %q", string(data))
	}
}

func TestBadFlagsExit2(t *testing.T) {
	cases := [][]string{
		{},                                     // missing -trace
		{"-trace", goldenTrace, "-hot", "abc"}, // unparsable grid value
		{"-trace", goldenTrace, "-hot", "0"},   // invalid grid value (default collision)
		{"-trace", goldenTrace, "-wear", "-1"}, // invalid wear factor
		{"-trace", goldenTrace, "-policy", "no-such-policy"},
		{"-trace", filepath.Join(t.TempDir(), "missing.ndjson")}, // unreadable path
		{"-badflag"},
	}
	for _, args := range cases {
		if code, _, _ := tune(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestVersionSkewExits2(t *testing.T) {
	data, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	skewed := bytes.Replace(data, []byte(`{"version":2,`), []byte(`{"version":99,`), 1)
	path := filepath.Join(t.TempDir(), "skewed.ndjson")
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := tune(t, "-trace", path); code != 2 {
		t.Errorf("version-skewed trace: exit = %d, want 2", code)
	}
}

func TestCorruptTraceExits1WithPartialFrontier(t *testing.T) {
	data, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	// Transcode to keyframe interval 1 without a footer (the streaming
	// shape) so the appended garbage is a torn tail and the rollback
	// contract keeps both complete records as the prefix.
	h, quanta, err := trace.DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	h.KeyframeInterval = 1
	var k1 bytes.Buffer
	rec, err := trace.NewRecorder(&k1, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range quanta {
		rec.OnQuantum(q.Proc, q.View, q.Actions, q.Exec)
	}
	path := filepath.Join(t.TempDir(), "torn.ndjson")
	if err := os.WriteFile(path, append(k1.Bytes(), []byte("{torn")...), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := tune(t, "-trace", path, "-hot", "2100,3000")
	if code != 1 {
		t.Fatalf("corrupt trace: exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	// The valid prefix is still searched and reported.
	if !strings.Contains(out, "frontier:") || !strings.Contains(out, "pareto*") {
		t.Errorf("partial frontier missing from output:\n%s", out)
	}
	if !strings.Contains(errOut, "corrupt") {
		t.Errorf("stderr does not name the corruption: %s", errOut)
	}
}

func TestStdinTrace(t *testing.T) {
	data, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "-", "-hot", "3000"}, bytes.NewReader(data), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("stdin trace: exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "recommended:") {
		t.Errorf("no recommendation from stdin trace:\n%s", stdout.String())
	}
}
