package kernel

import (
	"errors"
	"fmt"

	"repro/internal/machine"
)

// ErrCancelled reports a scheduling session stopped by RunConfig.Cancel
// before every process finished. The run's partial state is meaningless
// — callers abandon the result, they don't read it.
var ErrCancelled = errors.New("kernel: run cancelled")

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procNew procState = iota
	procRunning
	procAtBarrier
	procFinished
)

// Process is a schedulable execution context: an address space, a
// hardware thread binding, and a body function that issues memory
// operations. Processes are cooperative coroutines — the kernel grants
// the single execution token to one process at a time, so the whole
// platform stays deterministic while multiprogrammed instances
// interleave finely enough to contend in the shared L3.
type Process struct {
	Name string
	k    *Kernel
	AS   *AddressSpace
	Th   *machine.Thread
	pid  int

	body       func(*Process)
	state      procState
	sliceStart float64 // thread cycles at quantum start
	quantum    float64 // cycles per timeslice
	grant      chan struct{}
	yielded    chan struct{}
	err        error
	started    bool
	cancelled  bool // set by the scheduler; the next yield unwinds
}

// NewProcess creates a process bound to the given socket. Cores are
// assigned round-robin by PID, mirroring an unpinned OS scheduler
// spreading runnable threads over a socket.
func (k *Kernel) NewProcess(name string, socketID int, body func(*Process)) *Process {
	pid := k.nextPID
	k.nextPID++
	core := pid % k.m.Config().CoresPerSocket
	p := &Process{
		Name:    name,
		k:       k,
		AS:      newAddressSpace(k),
		Th:      k.m.NewThread(name, socketID, core),
		pid:     pid,
		body:    body,
		grant:   make(chan struct{}),
		yielded: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	return p
}

// Err returns the process's terminal error, if any (segfault, OOM, or
// a panic in the body).
func (p *Process) Err() error { return p.err }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Access performs a virtual-memory access of size bytes at va,
// splitting at page boundaries, faulting pages in on first touch, and
// yielding the CPU when the timeslice is exhausted.
func (p *Process) Access(va uint64, size int, write bool) {
	for size > 0 {
		pa, err := p.AS.translate(va, p.Th)
		if err != nil {
			panic(err)
		}
		inPage := int(PageSize - va%PageSize)
		n := size
		if n > inPage {
			n = inPage
		}
		p.Th.Access(pa, n, write)
		va += uint64(n)
		size -= n
	}
	p.maybeYield()
}

// AccessLines touches n consecutive 64-byte lines starting at the line
// containing va. It is the bulk path (zeroing, copying, scanning) and
// checks the timeslice every page.
func (p *Process) AccessLines(va uint64, n int, write bool) {
	va &^= machine.LineSize - 1
	for n > 0 {
		pa, err := p.AS.translate(va, p.Th)
		if err != nil {
			panic(err)
		}
		linesInPage := int((PageSize - va%PageSize) / machine.LineSize)
		take := n
		if take > linesInPage {
			take = linesInPage
		}
		p.Th.AccessLines(pa, take, write)
		va += uint64(take * machine.LineSize)
		n -= take
		p.maybeYield()
	}
}

// Compute burns n compute units.
func (p *Process) Compute(n int) {
	p.Th.Compute(n)
	p.maybeYield()
}

// MovePages migrates the resident pages of [start, start+length)
// whose frames live on node from to fresh frames on node to — a
// batched move_pages(2)/migrate_pages(2). from == to reallocates each
// matching page onto a different frame of the same node, which is the
// wear-leveling rotation. Old frames are released only after the
// whole batch has allocated, so a rotation cannot recirculate the
// batch's own worn frames — they return to the pool for other users.
//
// The page copies are charged as device-level traffic on both memory
// controllers (MigratePage); the calling process is charged the
// per-page remap cost plus one TLB shootdown per batch, and the total
// charged stall cycles are returned for accounting. Pages on other
// nodes, and non-resident pages, are untouched. A destination node
// out of physical memory stops the batch early and returns the error
// alongside the pages already moved.
func (p *Process) MovePages(start, length uint64, from, to int) (moved int, stallCycles float64, err error) {
	k := p.k
	if from < 0 || from >= k.m.Nodes() || to < 0 || to >= k.m.Nodes() {
		return 0, 0, fmt.Errorf("kernel: move_pages to invalid node %d->%d", from, to)
	}
	if length == 0 || start%PageSize != 0 || length%PageSize != 0 {
		return 0, 0, fmt.Errorf("kernel: move_pages of unaligned range %#x+%#x", start, length)
	}
	end := start + length
	if end > KernelBase {
		return 0, 0, fmt.Errorf("kernel: move_pages into kernel range %#x+%#x", start, length)
	}
	var released []uint64
	for vpn := start / PageSize; vpn < end/PageSize; vpn++ {
		enc := p.AS.pages[vpn]
		if enc == 0 {
			continue
		}
		pa := enc - 1
		if k.homeNodeOf(pa) != from {
			continue
		}
		npa, aerr := k.frames[to].alloc()
		if aerr != nil {
			err = aerr
			break
		}
		k.m.MigratePage(pa, npa)
		released = append(released, pa)
		p.AS.pages[vpn] = npa + 1
		moved++
	}
	for _, pa := range released {
		k.frames[from].release(pa)
	}
	if moved > 0 {
		stallCycles = k.cfg.MigrationPageCycles*float64(moved) + k.cfg.TLBShootdownCycles
		p.Th.ComputeCycles(stallCycles)
	}
	return moved, stallCycles, err
}

// Barrier blocks the process until every other live process has also
// reached a barrier. The replay-compilation harness uses it to start
// the measured iteration of all multiprogrammed instances at the same
// time, as the paper's modified pcm-memory methodology does.
func (p *Process) Barrier() {
	p.state = procAtBarrier
	p.yieldNow()
}

// Yield gives up the CPU voluntarily.
func (p *Process) Yield() {
	p.yieldNow()
}

func (p *Process) maybeYield() {
	if p.quantum > 0 && p.Th.Cycles()-p.sliceStart >= p.quantum {
		p.yieldNow()
	}
}

func (p *Process) yieldNow() {
	p.yielded <- struct{}{}
	<-p.grant
	if p.cancelled {
		// Unwind the body through the panic path: run()'s deferred
		// recover marks the process finished and hands the token back,
		// so a cancelled session leaks no goroutines.
		panic(ErrCancelled)
	}
	p.sliceStart = p.Th.Cycles()
}

// run is the goroutine body wrapping the process function.
func (p *Process) run() {
	<-p.grant
	p.sliceStart = p.Th.Cycles()
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				p.err = err
			} else {
				p.err = fmt.Errorf("process %s: panic: %v", p.Name, r)
			}
		}
		p.state = procFinished
		p.yielded <- struct{}{}
	}()
	p.state = procRunning
	p.body(p)
}

// RunConfig controls a scheduling session.
type RunConfig struct {
	// QuantumCycles is the timeslice length in core cycles. The
	// default (100k cycles ≈ 55 µs at 1.8 GHz) interleaves instances
	// several times per nursery cycle so LLC contention is realistic.
	QuantumCycles float64
	// ThreadsPerProc is the number of logical threads each process
	// represents, for SMT-contention accounting (the paper runs every
	// benchmark with 4 application threads).
	ThreadsPerProc int
	// OnQuantum, if set, runs after every timeslice with the current
	// simulated time (seconds). The write-rate monitor hooks in here.
	OnQuantum func(nowSec float64)
	// OnBarrier, if set, runs when all live processes reach a
	// Barrier, before they are released.
	OnBarrier func()
	// Cancel, when non-nil, stops the session between quanta once it
	// is closed (a context.Done channel fits). Every live process is
	// unwound cooperatively — no goroutine outlives the run — and Run
	// returns ErrCancelled. Cancellation is checked at quantum
	// granularity: a process finishes its current timeslice first.
	Cancel <-chan struct{}
}

// Run schedules the processes until all have finished, picking the
// runnable process with the smallest clock each quantum (keeping
// concurrent instances time-aligned the way real parallel hardware
// would). It returns the first process error encountered, after all
// processes have stopped.
func (k *Kernel) Run(procs []*Process, rc RunConfig) error {
	if rc.QuantumCycles <= 0 {
		rc.QuantumCycles = 100_000
	}
	if rc.ThreadsPerProc <= 0 {
		rc.ThreadsPerProc = 1
	}
	for _, p := range procs {
		p.quantum = rc.QuantumCycles
	}

	live := func() int {
		n := 0
		for _, p := range procs {
			if p.state != procFinished {
				n++
			}
		}
		return n
	}
	updateLoad := func() {
		// All workload processes run on the same socket in the
		// paper's setups; account SMT load per socket.
		loads := map[int]int{}
		for _, p := range procs {
			if p.state != procFinished {
				loads[p.Th.Socket] += rc.ThreadsPerProc
			}
		}
		for s := 0; s < k.m.Nodes(); s++ {
			k.m.SetRunnable(s, loads[s])
		}
	}
	updateLoad()

	cancelled := func() bool {
		if rc.Cancel == nil {
			return false
		}
		select {
		case <-rc.Cancel:
			return true
		default:
			return false
		}
	}

	for live() > 0 {
		if cancelled() {
			// Wind every live process down before returning: started
			// ones are granted one last token and unwind via the
			// yieldNow panic; unstarted ones never ran and are marked
			// finished directly.
			for _, p := range procs {
				if p.state == procFinished {
					continue
				}
				if !p.started {
					p.state = procFinished
					p.err = ErrCancelled
					continue
				}
				p.cancelled = true
				p.grant <- struct{}{}
				<-p.yielded
			}
			updateLoad()
			return ErrCancelled
		}
		// Pick the runnable (or not-yet-started) process with the
		// smallest clock; ties break by PID for determinism.
		var next *Process
		for _, p := range procs {
			switch p.state {
			case procFinished, procAtBarrier:
				continue
			}
			if next == nil || p.Th.Cycles() < next.Th.Cycles() {
				next = p
			}
		}
		if next == nil {
			// Everyone live is at a barrier: release them.
			if rc.OnBarrier != nil {
				rc.OnBarrier()
			}
			for _, p := range procs {
				if p.state == procAtBarrier {
					p.state = procRunning
				}
			}
			continue
		}
		if !next.started {
			next.started = true
			go next.run()
		}
		next.grant <- struct{}{}
		<-next.yielded
		if next.state == procFinished {
			updateLoad()
		}

		now := k.minClockSec(procs)
		k.injectNoise(now)
		if rc.OnQuantum != nil {
			rc.OnQuantum(now)
		}
	}

	for _, p := range procs {
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

// minClockSec returns the smallest live clock, or the largest final
// clock once everything has finished.
func (k *Kernel) minClockSec(procs []*Process) float64 {
	minLive := -1.0
	maxAll := 0.0
	for _, p := range procs {
		s := p.Th.Seconds()
		if s > maxAll {
			maxAll = s
		}
		if p.state != procFinished && (minLive < 0 || s < minLive) {
			minLive = s
		}
	}
	if minLive >= 0 {
		return minLive
	}
	return maxAll
}

// injectNoise writes the kernel's background traffic (timer ticks,
// bookkeeping) directly to the noise node's memory. Only active in
// emulate-OS mode; the simulation pipeline is noise-free.
func (k *Kernel) injectNoise(nowSec float64) {
	if !k.cfg.EmulateOS || k.cfg.NoisePeriodSec <= 0 {
		return
	}
	if k.noiseNext == 0 {
		k.noiseNext = k.cfg.NoisePeriodSec
	}
	node := k.m.Node(k.cfg.NoiseNode)
	// Kernel structures live near the top of the node.
	base := k.m.Config().NodeBytes - (16 << 20)
	for nowSec >= k.noiseNext {
		off := base + uint64(int(k.noiseNext/k.cfg.NoisePeriodSec)*4096)%(8<<20)
		node.Write(off, uint64(k.cfg.NoiseLines))
		k.noiseNext += k.cfg.NoisePeriodSec
	}
}

// RunSolo runs a single process to completion with default scheduling.
func (k *Kernel) RunSolo(p *Process, rc RunConfig) error {
	return k.Run([]*Process{p}, rc)
}
