// Package core assembles the paper's two evaluation pipelines.
//
// Emulation (the paper's contribution) builds the full platform: the
// two-socket NUMA machine, an OS with page zeroing and background
// noise, the write-rate monitor perturbing socket 0, and SMT-capable
// scheduling — everything a real commodity server contributes to the
// measurement. Simulation is the Sniper-style validation pipeline: the
// same cache and memory model driven without an OS, without monitor
// perturbation, and without hyperthreading, reading exact counters.
// Comparing the two reproduces the paper's Table II methodology.
//
// A Run executes one experiment: N instances of one benchmark under
// one collector configuration, using replay-compilation methodology —
// iteration 1 warms up (the optimizing compiler is active), all
// instances synchronize at a barrier, counters are snapshotted, and
// iteration 2 is measured.
package core

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/jvm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/native"
	"repro/internal/obs"
	"repro/internal/pcmmon"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/workloads/all"
)

// Mode selects the evaluation pipeline.
type Mode int

const (
	// Emulation is the NUMA-platform pipeline with OS and monitor
	// effects included.
	Emulation Mode = iota
	// Simulation is the Sniper-style pipeline: no OS, no monitor
	// noise, no SMT, exact counters.
	Simulation
)

// String names the mode.
func (m Mode) String() string {
	if m == Simulation {
		return "simulation"
	}
	return "emulation"
}

// Options configure the platform.
type Options struct {
	Mode Mode
	// Seed drives every workload RNG; equal seeds reproduce runs
	// bit-for-bit.
	Seed uint64
	// L3Bytes overrides the 20 MB shared L3 (the paper's KG-N
	// sensitivity analysis compares 4 MB vs 20 MB). 0 = default.
	L3Bytes int
	// BaseNurseryMB overrides the suite nursery (0 = app default).
	BaseNurseryMB int
	// ObserverFactor overrides the observer:nursery ratio for KG-W
	// plans (0 = the paper's 2x).
	ObserverFactor int
	// ThreadSocket forces thread placement (-1 = plan default). The
	// Table II reference setup runs PCM-Only with threads on S0.
	ThreadSocket int
	// MonitorNode is where the write-rate monitor runs/writes (the
	// paper uses socket 0; the ablation tries socket 1).
	MonitorNode int
	// QuantumCycles overrides the scheduling timeslice.
	QuantumCycles float64
	// UnmapFreedChunks enables the monolithic-free-list ablation.
	UnmapFreedChunks bool
	// TrackWear enables per-page wear histograms on the devices.
	TrackWear bool
	// Policy selects the dynamic-placement policy (zero value:
	// static, the paper's plan-time tiering, engine disabled). It
	// applies to managed runs; native runs have no GC safepoints for
	// the engine to hook and ignore it.
	Policy policy.Config
	// BootMB overrides the boot-image size (0 = 48 MB). Experiments
	// that run hundreds of configurations shrink it.
	BootMB int
	// TraceSink, when non-nil, streams a versioned ndjson placement
	// trace into it: a header line, then one record per policy-engine
	// quantum carrying the view, the emitted actions, and the executed
	// costs. Tracing forces window and wear tracking on the devices
	// (pure bookkeeping — the Result is bit-identical to an untraced
	// run) and, for engine-less policies (static, first-touch), hooks
	// an observe-only engine onto the GC safepoint path so every
	// quantum is recorded. Native runs have no safepoints: their trace
	// is a header with zero quanta. The sink is written from the run's
	// single cooperative runner; one sink must serve one run at a time.
	TraceSink io.Writer
	// TraceKey is the canonical spec key stamped into the trace header
	// (the facade fills it; empty below the facade).
	TraceKey string
	// Cancel, when non-nil, aborts the run between scheduling quanta
	// once closed (pass a context's Done channel). A cancelled run
	// returns kernel.ErrCancelled and no Result; the facade maps it
	// back to the context's error. Streaming servers use this to stop
	// emulating into a client that hung up.
	Cancel <-chan struct{}
	// EdgeOverride shrinks GraphChi datasets for tests (0 = paper
	// scale). It is applied via the registry's test hooks.
	AppFactory func(name string) workloads.App
	// Obs, when non-nil, records the run's span tree (emulate →
	// plan/execute → one policy.quantum span per safepoint) and latency
	// histograms. Strictly side-channel: the Result is bit-identical
	// with or without it.
	Obs *obs.Telemetry
	// ObsParent parents the run's root span, linking it into the
	// caller's distributed trace (zero value: a fresh trace).
	ObsParent obs.SpanContext
}

// DefaultOptions returns the emulation pipeline defaults.
func DefaultOptions() Options {
	return Options{Mode: Emulation, Seed: 1, ThreadSocket: -1}
}

// RunSpec is one experiment.
type RunSpec struct {
	// AppName is a registry name ("lusearch", "pjbb", "PR", ...).
	AppName string
	// Collector is the plan kind; ignored for native runs.
	Collector jvm.Kind
	// Instances is the multiprogramming degree (1, 2, or 4 in the
	// paper).
	Instances int
	// Dataset selects default or large inputs.
	Dataset workloads.Dataset
	// Native runs the C++ version on the malloc runtime (GraphChi's
	// C++ implementations in the paper).
	Native bool
}

// Result is the measured iteration's outcome.
type Result struct {
	// DRAMWriteLines and PCMWriteLines are the socket write counters
	// over the measured iteration (the pcm-memory quantities).
	DRAMWriteLines uint64
	PCMWriteLines  uint64
	DRAMReadLines  uint64
	PCMReadLines   uint64
	// Seconds is the measured-iteration wall time: the longest
	// per-instance duration (instances run concurrently).
	Seconds float64
	// PerInstanceSeconds are the individual durations.
	PerInstanceSeconds []float64
	// RuntimeStats are per-instance JVM statistics (managed runs).
	RuntimeStats []jvm.Stats
	// NativeStats are per-instance allocator statistics (native runs).
	NativeStats []native.Stats
	// AllocBytes is total allocation per instance (memcheck analog).
	AllocBytes []uint64
	// PeakResidentBytes is the massif-style peak footprint.
	PeakResidentBytes []uint64
	// ZeroedPages counts kernel page zeroing (emulation only).
	ZeroedPages uint64
	// QPI is the cross-socket traffic.
	QPI machine.QPIStats
	// FreeListMaps/FreeListRecycles aggregate chunk-allocator events.
	FreeListMaps     uint64
	FreeListRecycles uint64
	// PagesMigrated counts pages the placement-policy engine moved
	// (cross-tier migrations plus wear-leveling rotations).
	PagesMigrated uint64
	// MigrationStallCycles is the remap + TLB-shootdown cost the
	// engine charged to the instances at safepoints.
	MigrationStallCycles uint64
	// DRAMResidentPages and PCMResidentPages are the end-of-run
	// resident pages per emulated tier, summed over instances — the
	// per-tier residency histogram.
	DRAMResidentPages uint64
	PCMResidentPages  uint64
	// Estimated marks a Result synthesized by the estimate-first
	// serving tier: replayed from a library-resident trace instead of
	// measured by the engine. Estimated Results never enter the
	// canonical result store. Both fields are omitempty so an exact
	// Result's JSON stays byte-identical to builds that predate them.
	Estimated bool `json:",omitempty"`
	// Estimate carries the estimate's provenance and error bound; nil
	// on exact Results.
	Estimate *EstimateInfo `json:",omitempty"`
}

// EstimateInfo annotates an estimated Result with where it came from
// and how far it may sit from a live run.
type EstimateInfo struct {
	// SourceKey is the canonical spec key of the recorded run whose
	// trace (and measured baseline) priced this estimate.
	SourceKey string `json:",omitempty"`
	// SourceQuanta counts the replayed quantum records.
	SourceQuanta uint64 `json:",omitempty"`
	// Policy is the replayed policy configuration's key.
	Policy string `json:",omitempty"`
	// MatchesRecorded reports that the replayed policy reproduced the
	// recorded action stream exactly — migration fields are then the
	// recorded run's executed costs, not approximations.
	MatchesRecorded bool `json:",omitempty"`
	// Confidence is 1 when MatchesRecorded, else 1-Tolerance.
	Confidence float64 `json:",omitempty"`
	// Tolerance is the relative error bound the estimate tier promises
	// (and the drift validator enforces) on the migration fields.
	Tolerance float64 `json:",omitempty"`
}

// PCMWriteBytes returns PCM write traffic in bytes.
func (r Result) PCMWriteBytes() uint64 { return r.PCMWriteLines * 64 }

// DRAMWriteBytes returns DRAM write traffic in bytes.
func (r Result) DRAMWriteBytes() uint64 { return r.DRAMWriteLines * 64 }

// TotalWriteLines returns combined memory write traffic.
func (r Result) TotalWriteLines() uint64 { return r.DRAMWriteLines + r.PCMWriteLines }

// PCMRateMBs returns the PCM write rate in MB/s.
func (r Result) PCMRateMBs() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.PCMWriteBytes()) / 1e6 / r.Seconds
}

// machineConfig builds the hardware description for the mode. native
// disables the policy engine's counters: native runs take no
// safepoints, so the tracking would cost hot-path work for nothing.
func machineConfig(opts Options, native bool) machine.Config {
	cfg := machine.DefaultConfig()
	if opts.Mode == Simulation {
		// The paper's simulated system: 8 out-of-order cores, no
		// hyperthreading, 256 KB L2, 20 MB shared L3.
		cfg.SMT = false
	}
	if opts.L3Bytes > 0 {
		cfg.L3.Bytes = opts.L3Bytes
		// Keep 20-way associativity when the size allows whole sets.
		for cfg.L3.Bytes/64%cfg.L3.Ways != 0 && cfg.L3.Ways > 1 {
			cfg.L3.Ways /= 2
		}
	}
	pc := opts.Policy.WithDefaults()
	// Tracing records complete views — window writes, reads, and wear —
	// whatever the live policy consumes, so a trace recorded under one
	// policy carries the signals any replayed policy might read. The
	// counters are pure bookkeeping: enabling them does not perturb the
	// model, so traced Results stay bit-identical to untraced ones.
	tracing := opts.TraceSink != nil && !native
	cfg.TrackWear = opts.TrackWear || (!native && pc.NeedsWear()) || tracing
	cfg.TrackWindow = (!native && pc.NeedsWindow()) || tracing
	cfg.TrackWindowReads = (!native && pc.NeedsReadWindow()) || tracing
	return cfg
}

// traceHeader assembles the trace header for a run.
func traceHeader(opts Options, spec RunSpec, kc kernel.Config) trace.Header {
	h := trace.Header{
		Key:                 opts.TraceKey,
		App:                 spec.AppName,
		Instances:           spec.Instances,
		Dataset:             spec.Dataset.String(),
		Native:              spec.Native,
		Mode:                opts.Mode.String(),
		Seed:                opts.Seed,
		MigrationPageCycles: kc.MigrationPageCycles,
		TLBShootdownCycles:  kc.TLBShootdownCycles,
	}
	if !spec.Native {
		h.Collector = spec.Collector.String()
	}
	h.SetPolicyConfig(opts.Policy)
	return h
}

// kernelConfig builds the OS description for the mode.
func kernelConfig(opts Options) kernel.Config {
	if opts.Mode == Simulation {
		return kernel.Config{EmulateOS: false}
	}
	cfg := kernel.DefaultConfig()
	cfg.NoiseNode = opts.MonitorNode
	return cfg
}

// Run executes one experiment and returns the measured iteration's
// results.
func Run(opts Options, spec RunSpec) (Result, error) {
	if spec.Instances <= 0 {
		spec.Instances = 1
	}
	factory := opts.AppFactory
	if factory == nil {
		factory = all.New
	}
	probe := factory(spec.AppName)
	if probe == nil {
		return Result{}, fmt.Errorf("core: unknown application %q", spec.AppName)
	}

	// Telemetry is a side-channel: spans and histograms observe the
	// run's wall clock, never the emulated clock, and nothing below
	// reads them back. All obs calls are nil-safe, so an
	// uninstrumented run pays nil checks only.
	tel := opts.Obs
	var tracer *obs.Tracer
	if tel != nil {
		tracer = tel.Tracer
	}
	runStart := time.Now()
	runSp := tracer.StartSpan(opts.ObsParent, "emulate")
	defer runSp.End()
	runSp.SetAttr("app", spec.AppName)
	runSp.SetAttr("instances", strconv.Itoa(spec.Instances))
	runSp.SetAttr("mode", opts.Mode.String())
	runSp.SetAttr("policy", opts.Policy.Kind.String())
	if spec.Native {
		runSp.SetAttr("native", "true")
	} else {
		runSp.SetAttr("collector", spec.Collector.String())
	}

	m := machine.New(machineConfig(opts, spec.Native))
	kCfg := kernelConfig(opts)
	k := kernel.New(m, kCfg)

	// The dynamic-placement engine, shared by every instance of the
	// run. Only migrating policies get one: static means no engine at
	// all (bit-identical to the pre-policy platform), and first-touch
	// acts purely through the plan's bindings, so neither pays the
	// per-safepoint view scan. A trace sink changes that: recording
	// needs a per-quantum view even for engine-less policies, so
	// tracing hooks an observe-only engine (which still never migrates
	// and leaves the Result bit-identical).
	var eng *policy.Engine
	if !spec.Native {
		var err error
		if opts.Policy.Migrates() {
			eng, err = policy.NewEngine(opts.Policy)
		} else if opts.TraceSink != nil {
			eng, err = policy.NewObserver(opts.Policy)
		}
		if err != nil {
			return Result{}, err
		}
	}
	var rec *trace.Recorder
	if opts.TraceSink != nil {
		var err error
		if rec, err = trace.NewRecorder(opts.TraceSink, traceHeader(opts, spec, kCfg)); err != nil {
			return Result{}, err
		}
		if eng != nil {
			eng.SetTap(rec)
		}
	}

	monCfg := pcmmon.DefaultConfig()
	monCfg.NoiseNode = opts.MonitorNode
	if opts.Mode == Simulation {
		monCfg.SelfNoiseLines = 0
	}
	mon := pcmmon.New(m, monCfg)

	res := Result{
		PerInstanceSeconds: make([]float64, spec.Instances),
		AllocBytes:         make([]uint64, spec.Instances),
		PeakResidentBytes:  make([]uint64, spec.Instances),
	}
	if spec.Native {
		res.NativeStats = make([]native.Stats, spec.Instances)
	} else {
		res.RuntimeStats = make([]jvm.Stats, spec.Instances)
	}

	var procs []*kernel.Process
	starts := make([]float64, spec.Instances)
	planStart := time.Now()
	for i := 0; i < spec.Instances; i++ {
		i := i
		app := probe
		if i > 0 {
			app = factory(spec.AppName) // independent instance and dataset copy
		}
		plan := buildPlan(opts, spec, app)
		socket := plan.ThreadSocket
		seed := opts.Seed*1000 + uint64(i)*17

		var body func(p *kernel.Process)
		if spec.Native {
			socket = jvm.PCMSocket
			if opts.ThreadSocket >= 0 {
				socket = opts.ThreadSocket
			}
			body = func(p *kernel.Process) {
				rt, err := native.NewRuntime(p, 512<<20, jvm.PCMSocket)
				if err != nil {
					panic(err)
				}
				env := &workloads.NativeEnv{R: rt}
				app.Run(env, spec.Dataset, seed)
				p.Barrier()
				starts[i] = p.Th.Seconds()
				app.Run(env, spec.Dataset, seed+7)
				res.PerInstanceSeconds[i] = p.Th.Seconds() - starts[i]
				res.NativeStats[i] = rt.Stats
				res.AllocBytes[i] = rt.Stats.AllocBytes
				res.PeakResidentBytes[i] = p.AS.PeakResident * kernel.PageSize
			}
		} else {
			body = func(p *kernel.Process) {
				rt, err := jvm.NewRuntime(p, plan)
				if err != nil {
					panic(err)
				}
				if eng != nil {
					rt.Safepoint = func() { eng.OnSafepoint(p, rt.PageMap) }
				}
				env := &workloads.ManagedEnv{R: rt}
				rt.SetIteration(1)
				app.Run(env, spec.Dataset, seed)
				p.Barrier()
				starts[i] = p.Th.Seconds()
				rt.SetIteration(2)
				app.Run(env, spec.Dataset, seed+7)
				res.PerInstanceSeconds[i] = p.Th.Seconds() - starts[i]
				res.RuntimeStats[i] = rt.Stats
				res.AllocBytes[i] = rt.Stats.AllocBytes
				res.PeakResidentBytes[i] = p.AS.PeakResident * kernel.PageSize
				lo, hi := rt.FreeLists()
				res.FreeListMaps += lo.Maps + hi.Maps
				res.FreeListRecycles += lo.Recycles + hi.Recycles
			}
		}
		procs = append(procs, k.NewProcess(fmt.Sprintf("%s#%d", spec.AppName, i), socket, body))
	}
	if tracer != nil {
		tracer.Emit(runSp.Context(), "plan", planStart, time.Since(planStart),
			map[string]string{"instances": strconv.Itoa(spec.Instances)})
	}

	// The execute span covers the cooperative kernel run; per-safepoint
	// policy.quantum spans parent to it, giving the trace one child per
	// engine quantum without the view-gathering cost a Tap would force.
	execSp := tracer.StartSpan(runSp.Context(), "execute")
	if eng != nil && tel != nil {
		qh := tel.Metrics.Histogram("hybridmem_policy_quantum_seconds",
			"Wall-clock time of one policy-engine quantum (view build + decide + migrate).",
			obs.Labels{"node": tel.Node}, nil)
		// Cumulative progress for the flight-recorder seam. The hook
		// fires on the kernel's single cooperative runner, so plain
		// closure counters are race-free.
		var quanta, actionsTotal, migrated uint64
		eng.SetQuantumHook(func(proc string, quantum uint64, actions, moved int, stall float64, start time.Time, wall time.Duration) {
			qh.Observe(wall.Seconds())
			tracer.Emit(execSp.Context(), "policy.quantum", start, wall, map[string]string{
				"proc":       proc,
				"quantum":    strconv.FormatUint(quantum, 10),
				"actions":    strconv.Itoa(actions),
				"pagesMoved": strconv.Itoa(moved),
			})
			quanta++
			actionsTotal += uint64(actions)
			migrated += uint64(moved)
			tel.Quantum(opts.ObsParent, quanta, actionsTotal, migrated)
		})
	}

	// The flight-recorder milestone: the run's instances are about to
	// execute. Keyed by the caller's span context so a serving layer
	// can flip this run's lifecycle record to "emulating".
	tel.Emulating(opts.ObsParent)

	rc := kernel.RunConfig{
		QuantumCycles:  opts.QuantumCycles,
		ThreadsPerProc: 4, // the paper: four application threads each
		Cancel:         opts.Cancel,
		OnQuantum:      mon.OnQuantum,
		OnBarrier: func() {
			// Replay methodology: the measured iteration starts here
			// for every instance simultaneously.
			mon.StartMeasurement(monNow(procs))
		},
	}
	if err := k.Run(procs, rc); err != nil {
		execSp.End()
		return Result{}, err
	}
	mon.StopMeasurement(monNow(procs))
	if tel != nil {
		if !spec.Native {
			gcs := 0
			for _, st := range res.RuntimeStats {
				gcs += st.MinorGCs + st.FullGCs
			}
			execSp.SetAttr("gcs", strconv.Itoa(gcs))
		}
		if eng != nil {
			es := eng.Stats()
			execSp.SetAttr("quanta", strconv.FormatUint(es.Quanta, 10))
			execSp.SetAttr("pagesMigrated", strconv.FormatUint(es.PagesMigrated, 10))
		}
		execSp.End()
	}

	rep := mon.Report()
	res.DRAMWriteLines = rep.WriteLines[0]
	res.PCMWriteLines = rep.WriteLines[1]
	res.DRAMReadLines = rep.ReadLines[0]
	res.PCMReadLines = rep.ReadLines[1]
	for _, d := range res.PerInstanceSeconds {
		if d > res.Seconds {
			res.Seconds = d
		}
	}
	res.ZeroedPages = k.ZeroedPages()
	res.QPI = m.QPI()
	if eng != nil {
		es := eng.Stats()
		res.PagesMigrated = es.PagesMigrated
		res.MigrationStallCycles = uint64(es.StallCycles + 0.5)
	}
	for _, p := range procs {
		counts := p.AS.Residency(0, kernel.KernelBase)
		res.DRAMResidentPages += counts[0]
		if len(counts) > 1 {
			res.PCMResidentPages += counts[1]
		}
	}
	if rec != nil {
		// A trace was asked for: finish it with the footer index so
		// readers can seek it. A sink that stopped accepting writes
		// mid-run fails the run rather than silently shipping a
		// truncated trace.
		if err := rec.Close(); err != nil {
			return Result{}, err
		}
	}
	if tel != nil {
		runSp.SetAttr("emulatedSeconds", strconv.FormatFloat(res.Seconds, 'g', -1, 64))
		runSp.SetAttr("pagesMigrated", strconv.FormatUint(res.PagesMigrated, 10))
		tel.Metrics.Histogram("hybridmem_emulate_seconds",
			"Wall-clock time of one emulator run (all instances, measured iteration included).",
			obs.Labels{"node": tel.Node}, nil).Observe(time.Since(runStart).Seconds())
	}
	return res, nil
}

// monNow returns the maximum process clock (all instances have reached
// the same point at barriers and at completion).
func monNow(procs []*kernel.Process) float64 {
	max := 0.0
	for _, p := range procs {
		if s := p.Th.Seconds(); s > max {
			max = s
		}
	}
	return max
}

// buildPlan resolves the collector plan for one app under the options.
func buildPlan(opts Options, spec RunSpec, app workloads.App) jvm.Plan {
	nursery := uint64(app.NurseryMB()) << 20
	if opts.BaseNurseryMB > 0 {
		nursery = uint64(opts.BaseNurseryMB) << 20
	}
	boot := uint64(0)
	if opts.BootMB > 0 {
		boot = uint64(opts.BootMB) << 20
	}
	plan := jvm.NewPlan(spec.Collector, jvm.PlanConfig{
		BaseNurseryBytes: nursery,
		HeapBytes:        uint64(app.HeapMB()) << 20,
		BootBytes:        boot,
		ThreadSocket:     opts.ThreadSocket,
	})
	if opts.ObserverFactor > 0 && plan.UseObserver {
		plan.ObserverBytes = uint64(opts.ObserverFactor) * plan.NurseryBytes
	}
	plan.UnmapFreedChunks = opts.UnmapFreedChunks
	plan.FirstTouchHeap = opts.Policy.FirstTouchHeap()
	return plan
}
