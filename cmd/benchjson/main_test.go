package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkRun/quick-8   \t       1\t 123456 ns/op\t  2048 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if name != "BenchmarkRun/quick-8" {
		t.Errorf("name = %q", name)
	}
	if m.NsPerOp != 123456 {
		t.Errorf("NsPerOp = %v", m.NsPerOp)
	}
	if m.BytesPerOp == nil || *m.BytesPerOp != 2048 {
		t.Errorf("BytesPerOp = %v", m.BytesPerOp)
	}
	if m.AllocsPerOp == nil || *m.AllocsPerOp != 12 {
		t.Errorf("AllocsPerOp = %v", m.AllocsPerOp)
	}

	// Without -benchmem only ns/op is present; fractional values parse.
	name, m, ok = parseBenchLine("BenchmarkTiny-4 1000000000 0.5000 ns/op")
	if !ok || name != "BenchmarkTiny-4" || m.NsPerOp != 0.5 || m.BytesPerOp != nil || m.AllocsPerOp != nil {
		t.Errorf("minimal line: ok=%v name=%q m=%+v", ok, name, m)
	}

	for _, line := range []string{
		"PASS",
		"ok  \trepro\t1.2s",
		"goos: linux",
		"BenchmarkSkipped --- SKIP",
		"BenchmarkNoCount ns/op",
		"",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q wrongly parsed as a benchmark", line)
		}
	}
}

func TestRunEmitsDocument(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-2 10 100 ns/op 8 B/op 1 allocs/op",
		"BenchmarkB-2 1 2000 ns/op",
		"BenchmarkA-2 10 120 ns/op 8 B/op 1 allocs/op", // -count>1: last wins
		"PASS",
	}, "\n")
	var out, errw bytes.Buffer
	if code := run(nil, strings.NewReader(in), &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	var doc Document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if doc.V != 1 || len(doc.Benchmarks) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Benchmarks["BenchmarkA-2"].NsPerOp != 120 {
		t.Errorf("BenchmarkA-2 = %+v, want last measurement to win", doc.Benchmarks["BenchmarkA-2"])
	}
	if doc.Benchmarks["BenchmarkB-2"].AllocsPerOp != nil {
		t.Error("BenchmarkB-2 should have no allocs/op")
	}
}
