// Package dacapo models the 11 DaCapo applications of the paper's
// evaluation (including the lu.Fix variant of lusearch, which removes
// useless allocation, and pmd.S, which removes a scalability
// bottleneck caused by a large input file).
//
// Each application is an allocation/mutation profile calibrated to the
// aggregate behaviours the paper's evaluation depends on: allocation
// volume and object-size mix, nursery survival, long-lived footprint
// (which sets LLC pressure and with it the nursery-writeback traffic
// that KG-N can save), mature mutation, large-object traffic, and the
// compute-to-write ratio that positions the application's PCM write
// rate in Fig 6. The paper's defaults apply: 4 MB nursery, heap twice
// the minimum, four application threads.
package dacapo

import "repro/internal/workloads"

// profiles is the DaCapo suite. Values are calibrated so that the
// suite reproduces the paper's aggregate shapes: most applications
// below the 140 MB/s recommended write rate under PCM-Only, lusearch
// and xalan far above it, KG-N saving little on average (large L3),
// KG-W saving most, and only lusearch/xalan responding to KG-B's
// bigger nursery.
var profiles = []workloads.Profile{
	{
		AppName: "avrora", S: workloads.DaCapo,
		// AVR simulator: tiny objects, compute-bound, small footprint.
		AllocMB: 24, MeanObj: 48, SurviveKB: 96, LongLivedMB: 6,
		MediumFrac: 0.04, MediumLiveKB: 768,
		LargeFrac: 0.01, LargeObjKB: 16,
		WritesPerKB: 5, MatureWriteFrac: 0.30, ReadsPerKB: 10, RefsPerObj: 2,
		PointerChurn: 0.02, ComputePerKB: 95000,
		NurseryMBv: 4, HeapMBv: 48,
	},
	{
		AppName: "bloat", S: workloads.DaCapo,
		// Bytecode optimizer: pointer-heavy IR with medium survival.
		AllocMB: 56, MeanObj: 72, SurviveKB: 256, LongLivedMB: 10,
		MediumFrac: 0.06, MediumLiveKB: 1024,
		LargeFrac: 0.02, LargeObjKB: 24,
		WritesPerKB: 6, MatureWriteFrac: 0.30, ReadsPerKB: 14, RefsPerObj: 3,
		PointerChurn: 0.04, ComputePerKB: 52000,
		NurseryMBv: 4, HeapMBv: 64,
		LargeScale: 3, LargeLongLivedScale: 1.4, LargeComputeScale: 1.0,
	},
	{
		AppName: "eclipse", S: workloads.DaCapo,
		// IDE workload: biggest DaCapo heap, diverse objects.
		AllocMB: 96, MeanObj: 96, SurviveKB: 384, LongLivedMB: 22,
		MediumFrac: 0.07, MediumLiveKB: 1536,
		LargeFrac: 0.03, LargeObjKB: 48,
		WritesPerKB: 5, MatureWriteFrac: 0.35, ReadsPerKB: 12, RefsPerObj: 3,
		PointerChurn: 0.04, ComputePerKB: 60000,
		NurseryMBv: 4, HeapMBv: 96,
		LargeScale: 2.5, LargeLongLivedScale: 1.5, LargeComputeScale: 1.3,
	},
	{
		AppName: "fop", S: workloads.DaCapo,
		// XSL-FO to PDF: one-shot formatting, moderate everything.
		AllocMB: 28, MeanObj: 80, SurviveKB: 256, LongLivedMB: 9,
		MediumFrac: 0.06, MediumLiveKB: 1024,
		LargeFrac: 0.03, LargeObjKB: 32,
		WritesPerKB: 5, MatureWriteFrac: 0.30, ReadsPerKB: 10, RefsPerObj: 3,
		PointerChurn: 0.03, ComputePerKB: 55000,
		NurseryMBv: 4, HeapMBv: 56,
	},
	{
		AppName: "luindex", S: workloads.DaCapo,
		// Lucene indexing: streaming writes into index buffers.
		AllocMB: 24, MeanObj: 64, SurviveKB: 128, LongLivedMB: 8,
		MediumFrac: 0.05, MediumLiveKB: 768,
		LargeFrac: 0.04, LargeObjKB: 32,
		WritesPerKB: 7, MatureWriteFrac: 0.35, ReadsPerKB: 8, RefsPerObj: 2,
		PointerChurn: 0.02, ComputePerKB: 70000,
		NurseryMBv: 4, HeapMBv: 44,
	},
	{
		AppName: "lusearch", S: workloads.DaCapo,
		// Lucene search: extreme allocation rate of short-lived
		// buffers plus random reads over a large index -> constant
		// LLC evictions of dirty nursery lines. The paper's
		// high-write-rate outlier, and one of two benchmarks that
		// respond to KG-B's bigger nursery.
		AllocMB: 200, MeanObj: 224, SurviveKB: 96, LongLivedMB: 30,
		MediumFrac: 0.03, MediumLiveKB: 512,
		LargeFrac: 0.02, LargeObjKB: 16,
		WritesPerKB: 6, MatureWriteFrac: 0.08, ReadsPerKB: 26, RefsPerObj: 1,
		PointerChurn: 0.01, ComputePerKB: 1300,
		NurseryMBv: 4, HeapMBv: 68,
		LargeScale: 2.5, LargeLongLivedScale: 1.0, LargeComputeScale: 0.8,
	},
	{
		AppName: "lu.Fix", S: workloads.DaCapo,
		// lusearch with the useless allocation removed: roughly half
		// the allocation volume at the same work.
		AllocMB: 100, MeanObj: 224, SurviveKB: 96, LongLivedMB: 30,
		MediumFrac: 0.03, MediumLiveKB: 512,
		LargeFrac: 0.02, LargeObjKB: 16,
		WritesPerKB: 6, MatureWriteFrac: 0.08, ReadsPerKB: 26, RefsPerObj: 1,
		PointerChurn: 0.01, ComputePerKB: 2600,
		NurseryMBv: 4, HeapMBv: 68,
		LargeScale: 2.5, LargeLongLivedScale: 1.0, LargeComputeScale: 0.8,
	},
	{
		AppName: "pmd", S: workloads.DaCapo,
		// Source analyzer with a large input file: big survivor
		// window and mature mutation.
		AllocMB: 64, MeanObj: 88, SurviveKB: 512, LongLivedMB: 18,
		MediumFrac: 0.08, MediumLiveKB: 1536,
		LargeFrac: 0.04, LargeObjKB: 64,
		WritesPerKB: 6, MatureWriteFrac: 0.40, ReadsPerKB: 12, RefsPerObj: 4,
		PointerChurn: 0.05, ComputePerKB: 48000,
		NurseryMBv: 4, HeapMBv: 80,
		LargeScale: 3, LargeLongLivedScale: 1.6, LargeComputeScale: 0.66,
	},
	{
		AppName: "pmd.S", S: workloads.DaCapo,
		// pmd with the scalability bottleneck (one huge input file)
		// removed: smaller survivors, less mature churn.
		AllocMB: 56, MeanObj: 88, SurviveKB: 320, LongLivedMB: 13,
		MediumFrac: 0.06, MediumLiveKB: 1024,
		LargeFrac: 0.03, LargeObjKB: 48,
		WritesPerKB: 6, MatureWriteFrac: 0.33, ReadsPerKB: 12, RefsPerObj: 4,
		PointerChurn: 0.04, ComputePerKB: 50000,
		NurseryMBv: 4, HeapMBv: 72,
		LargeScale: 3, LargeLongLivedScale: 1.4, LargeComputeScale: 0.8,
	},
	{
		AppName: "sunflow", S: workloads.DaCapo,
		// Raytracer: very high allocation of tiny vectors that die
		// immediately; scene data is read-mostly.
		AllocMB: 88, MeanObj: 48, SurviveKB: 96, LongLivedMB: 12,
		MediumFrac: 0.03, MediumLiveKB: 512,
		LargeFrac: 0.01, LargeObjKB: 16,
		WritesPerKB: 4, MatureWriteFrac: 0.10, ReadsPerKB: 16, RefsPerObj: 1,
		PointerChurn: 0.01, ComputePerKB: 42000,
		NurseryMBv: 4, HeapMBv: 56,
		LargeScale: 4, LargeLongLivedScale: 1.1, LargeComputeScale: 1.5,
	},
	{
		AppName: "xalan", S: workloads.DaCapo,
		// XSLT processor: write-heavy transformation over a large
		// document footprint; the other high-rate DaCapo benchmark
		// and the second KG-B responder.
		AllocMB: 168, MeanObj: 192, SurviveKB: 128, LongLivedMB: 26,
		MediumFrac: 0.04, MediumLiveKB: 768,
		LargeFrac: 0.03, LargeObjKB: 32,
		WritesPerKB: 9, MatureWriteFrac: 0.15, ReadsPerKB: 20, RefsPerObj: 2,
		PointerChurn: 0.02, ComputePerKB: 5400,
		NurseryMBv: 4, HeapMBv: 72,
		LargeScale: 2.5, LargeLongLivedScale: 1.3, LargeComputeScale: 1.2,
	},
}

// Names lists the suite's application names in evaluation order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.AppName
	}
	return out
}

// New returns a fresh instance of the named application, or nil if
// the name is unknown. Instances must not be shared between program
// instances (they keep long-lived state across iterations).
func New(name string) workloads.App {
	for _, p := range profiles {
		if p.AppName == name {
			return workloads.NewProfileApp(p)
		}
	}
	return nil
}

// All returns fresh instances of the full suite.
func All() []workloads.App {
	out := make([]workloads.App, len(profiles))
	for i, p := range profiles {
		out[i] = workloads.NewProfileApp(p)
	}
	return out
}

// TableIISubset returns fresh instances of the 7 benchmarks the
// paper's simulator could run for the Table II validation: lusearch,
// lu.Fix, avrora, xalan, pmd, pmd.S, bloat.
func TableIISubset() []workloads.App {
	names := []string{"lusearch", "lu.Fix", "avrora", "xalan", "pmd", "pmd.S", "bloat"}
	out := make([]workloads.App, len(names))
	for i, n := range names {
		out[i] = New(n)
	}
	return out
}
