package hybridmem

import (
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
)

// countingRunObserver is a minimal flight-recorder observer: it counts
// milestones and checks counter monotonicity, standing in for the
// serving layer's run registry.
type countingRunObserver struct {
	mu        sync.Mutex
	emulating int
	quanta    uint64
	monotonic bool
}

func (o *countingRunObserver) RunEmulating(parent obs.SpanContext) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.emulating++
}

func (o *countingRunObserver) RunQuantum(parent obs.SpanContext, quanta, actions, pagesMigrated uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if quanta < o.quanta {
		o.monotonic = false
	}
	o.quanta = quanta
}

// TestTelemetryIsSideChannel enforces the telemetry subsystem's core
// invariant: attaching WithTelemetry changes nothing observable about
// a run — the Result encodes byte-identically, the canonical spec key
// is unchanged — while the registry and tracer fill with the run's
// metrics and span tree.
func TestTelemetryIsSideChannel(t *testing.T) {
	kind, err := ParseCollector("KG-N")
	if err != nil {
		t.Fatal(err)
	}
	spec := NormalizeSpec(RunSpec{AppName: "PR", Collector: kind})

	plain := New(WithScale(Quick), WithPolicy(WriteThreshold))
	reg := obs.NewRegistry()
	tracer := obs.NewTracer("test")
	// A run observer (the flight-recorder seam) must be just as
	// side-channel as metrics and spans.
	runs := &countingRunObserver{monotonic: true}
	tel := &obs.Telemetry{Node: "test", Metrics: reg, Tracer: tracer, Runs: runs}
	instr := New(WithScale(Quick), WithPolicy(WriteThreshold), WithTelemetry(tel))

	if pk, ik := plain.SpecKey(spec), instr.SpecKey(spec); pk != ik {
		t.Fatalf("telemetry changed the spec key: %s != %s", ik, pk)
	}

	want, err := plain.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := instr.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := EncodeResult(want)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Errorf("instrumented result differs from plain:\n got %s\nwant %s", gotBytes, wantBytes)
	}

	if n := reg.Histogram("hybridmem_emulate_seconds", "", obs.Labels{"node": "test"}, nil).Count(); n != 1 {
		t.Errorf("emulate histogram count = %d, want 1", n)
	}
	if n := reg.Histogram("hybridmem_policy_quantum_seconds", "", obs.Labels{"node": "test"}, nil).Count(); n < 1 {
		t.Errorf("policy quantum histogram count = %d, want >= 1", n)
	}

	var emulate *obs.SpanRecord
	quanta := 0
	spans := tracer.Recent(0)
	for i, sp := range spans {
		switch sp.Name {
		case "emulate":
			emulate = &spans[i]
		case "policy.quantum":
			quanta++
		}
	}
	if emulate == nil {
		t.Fatalf("no emulate span recorded: %+v", spans)
	}
	if quanta < 1 {
		t.Error("no policy.quantum spans recorded")
	}
	for _, sp := range spans {
		if sp.Trace != emulate.Trace {
			t.Errorf("span %s in trace %s, want all spans in %s", sp.Name, sp.Trace, emulate.Trace)
		}
	}

	// The observer saw the run's milestones: one emulating callback,
	// cumulative quantum counters that never regressed, and a final
	// count matching the quantum span count.
	if runs.emulating != 1 {
		t.Errorf("RunEmulating fired %d times, want 1", runs.emulating)
	}
	if !runs.monotonic {
		t.Error("RunQuantum counters regressed")
	}
	if runs.quanta != uint64(quanta) {
		t.Errorf("observer saw %d quanta, tracer saw %d quantum spans", runs.quanta, quanta)
	}
}

// TestTelemetryNilDetaches checks that WithTelemetry(nil) on a derived
// platform fully detaches instrumentation and still runs.
func TestTelemetryNilDetaches(t *testing.T) {
	tel := &obs.Telemetry{Node: "test", Metrics: obs.NewRegistry(), Tracer: obs.NewTracer("test")}
	p := New(WithScale(Quick), WithTelemetry(tel)).With(WithTelemetry(nil))
	spec := NormalizeSpec(RunSpec{AppName: "pmd"})
	if _, err := p.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if spans := tel.Tracer.Recent(0); len(spans) != 0 {
		t.Errorf("detached platform still recorded %d spans", len(spans))
	}
}
