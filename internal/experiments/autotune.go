package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math"

	hybridmem "repro"
	"repro/internal/stats"
)

// autotuneApp is the workload the autotune step tunes: GraphChi
// PageRank under KG-N, the configuration whose committed golden trace
// anchors the offline-replay test suite.
const (
	autotuneApp       = "PR"
	autotuneCollector = hybridmem.KGN
)

// autotuneGrid is the canonical demonstration grid: hot thresholds
// that bind at different depths of the quick-scale PageRank heat
// distribution (256 reproduces the recorded run, 2100 and 3000 select
// progressively smaller hot sets below the per-quantum action cap)
// crossed with a DRAM budget that forces demotions (4096 pages) and
// one that never binds (32768). Six replays price the grid; the live
// validation then runs each point through the emulator once.
func autotuneGrid() hybridmem.KnobGrid {
	return hybridmem.KnobGrid{
		Policy:          hybridmem.WriteThreshold,
		HotWriteLines:   []uint64{256, 2100, 3000},
		DRAMBudgetPages: []uint64{4096, 32768},
	}
}

// AutotuneResult is the trace-driven knob search plus its live
// validation: the offline report, the live emulator measurements for
// every grid point (aligned with Report.Points), and the two
// agreement verdicts the workflow exists to check — whether the
// replay's stall ranking of the points survives contact with the
// emulator, and whether the recommended point's stall estimate lands
// within the documented tolerance of its live run.
type AutotuneResult struct {
	App       string
	Collector hybridmem.Collector
	Report    hybridmem.AutotuneReport
	// LiveMigrated and LiveStalls are the live Result fields per grid
	// point, aligned with Report.Points.
	LiveMigrated []uint64
	LiveStalls   []uint64
	// RankingAgrees reports that no pair of points strictly inverts
	// between the predicted and live stall orderings.
	RankingAgrees bool
	// RecommendedRelErr is |predicted - live| / max(live, 1) for the
	// recommended point's stall cycles; WithinTolerance compares it to
	// hybridmem.EstimateTolerance.
	RecommendedRelErr float64
	WithinTolerance   bool
}

// Autotune runs the trace-driven autotuning workflow end to end: one
// traced emulator run records the decision stream, the knob grid is
// priced offline against the recording (one replay per point instead
// of one emulation per point — the whole reason the trace format
// exists), and every point is then validated with a live run through
// Sweep.Knobs so the replay's predictions are checked, not trusted.
func (r *Runner) Autotune(ctx context.Context) (AutotuneResult, error) {
	res := AutotuneResult{App: autotuneApp, Collector: autotuneCollector}
	spec := hybridmem.RunSpec{AppName: autotuneApp, Collector: autotuneCollector}

	// Record. The traced run bypasses both cache tiers by contract, so
	// the recording is always a genuine emulation.
	var trc bytes.Buffer
	rp := r.p.With(hybridmem.WithPolicy(hybridmem.WriteThreshold), hybridmem.WithTrace(&trc))
	if _, err := rp.Run(ctx, spec); err != nil {
		return res, err
	}

	// Search offline: one replay per grid point.
	rep, err := hybridmem.Autotune(ctx, &trc, autotuneGrid())
	if err != nil {
		return res, err
	}
	res.Report = rep

	// Validate live: the same spec under every grid point's knobs, one
	// emulator run each, batched through the sweep's knob dimension.
	cfgs := make([]hybridmem.PolicyConfig, len(rep.Points))
	for i, pt := range rep.Points {
		cfgs[i] = pt.Config()
	}
	sweep := hybridmem.NewSweep(autotuneApp).Collectors(autotuneCollector).Knobs(cfgs...)
	live, err := r.p.RunSweep(ctx, sweep)
	if err != nil {
		return res, err
	}
	// One spec per pass: live[c] is Report.Points[c] under Configs()[c].
	for i, pt := range rep.Points {
		res.LiveMigrated = append(res.LiveMigrated, live[i].PagesMigrated)
		res.LiveStalls = append(res.LiveStalls, live[i].MigrationStallCycles)
		if pt.Recommended {
			liveStall := float64(live[i].MigrationStallCycles)
			res.RecommendedRelErr = math.Abs(pt.StallCycles-liveStall) / math.Max(liveStall, 1)
		}
	}
	res.WithinTolerance = res.RecommendedRelErr <= hybridmem.EstimateTolerance
	res.RankingAgrees = rankingConsistent(rep.Points, res.LiveStalls)
	return res, nil
}

// rankingConsistent reports whether the predicted stall ordering of
// the grid points survives live measurement: a pair is an inversion
// only when both orders are strict and opposite, so predicted ties are
// free to resolve either way live.
func rankingConsistent(points []hybridmem.KnobPoint, live []uint64) bool {
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			predLess := points[i].StallCycles < points[j].StallCycles
			predMore := points[i].StallCycles > points[j].StallCycles
			liveLess := live[i] < live[j]
			liveMore := live[i] > live[j]
			if (predLess && liveMore) || (predMore && liveLess) {
				return false
			}
		}
	}
	return true
}

// Render renders the autotune validation table.
func (a AutotuneResult) Render() string {
	tb := stats.NewTable(
		fmt.Sprintf("Autotune: trace-driven knob search (%s, %s, write-threshold)", a.App, a.Collector),
		"hot", "budget", "pred migrated", "live migrated", "pred stall", "live stall", "pcm-writes vs base", "frontier")
	for i, pt := range a.Report.Points {
		mark := "-"
		if pt.Pareto {
			mark = "pareto"
		}
		if pt.Recommended {
			mark = "pareto*"
		}
		tb.AddRow(
			fmt.Sprint(pt.HotWriteLines),
			fmt.Sprint(pt.DRAMBudgetPages),
			fmt.Sprint(pt.PagesMigrated),
			fmt.Sprint(a.LiveMigrated[i]),
			fmt.Sprintf("%.0f", pt.StallCycles),
			fmt.Sprint(a.LiveStalls[i]),
			fmt.Sprintf("%.1f%%", 100*pt.PCMWriteReduction),
			mark)
	}
	rec := a.Report.Recommended
	return tb.String() + fmt.Sprintf(
		"recommended: hot=%d cold=%d budget=%d (one emulation + %d replays instead of %d emulations)\n"+
			"stall ranking predicted==live: %v; recommended stall rel. err %.3f within tolerance %.2f: %v\n",
		rec.HotWriteLines, rec.ColdWriteLines, rec.DRAMBudgetPages,
		len(a.Report.Points), len(a.Report.Points),
		a.RankingAgrees, a.RecommendedRelErr, hybridmem.EstimateTolerance, a.WithinTolerance)
}
