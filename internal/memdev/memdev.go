// Package memdev models the physical memory devices that populate the
// emulation platform's NUMA nodes. A Device counts the cache-line reads
// and writebacks that reach its memory controller — the same quantity
// Intel's pcm-memory utility reports on the paper's hardware — and
// optionally tracks per-page wear for lifetime studies.
//
// In the paper's setup the devices on both sockets are physically DRAM;
// the remote socket's DRAM *plays the role of* PCM. The Kind field
// records that role so that reports can speak in terms of DRAM and PCM
// while the underlying accounting is identical, exactly as on the real
// emulator.
package memdev

import "fmt"

// LineSize is the transfer granularity of the memory controller in
// bytes. All counters are in units of 64-byte lines.
const LineSize = 64

// Kind is the role a device plays in the hybrid-memory emulation.
type Kind int

const (
	// DRAM is the fast, high-endurance technology (local socket).
	DRAM Kind = iota
	// PCM is the emulated phase-change memory (remote socket).
	PCM
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case PCM:
		return "PCM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a device.
type Config struct {
	// Kind is the emulated technology.
	Kind Kind
	// Bytes is the device capacity.
	Bytes uint64
	// TrackWear enables a per-page write histogram for lifetime
	// studies and the wear-leveling policy. Counters are stored in
	// sparsely allocated chunks, so only the touched fraction of a
	// node costs memory.
	TrackWear bool
	// TrackWindow enables resettable per-page write counters over a
	// sampling window — the raw signal the placement-policy engine
	// reads each quantum. Counters are stored in sparsely allocated
	// chunks, so only the touched fraction of a node costs memory.
	TrackWindow bool
	// TrackWindowReads additionally counts per-page line reads in the
	// window. No built-in policy consumes reads, so this is off
	// unless a custom policy asks for it — read traffic dominates
	// most runs and the per-line counting is hot-path work.
	TrackWindowReads bool
}

// winChunkPages is the allocation unit of the sparse window counters:
// one chunk covers 4 MB of device memory.
const winChunkPages = 1024

// Device is one NUMA node's memory. It is not safe for concurrent use;
// the machine model is single-threaded by design (determinism).
type Device struct {
	cfg       Config
	readLines uint64
	wroteLine uint64
	// wear is the per-4KB-page lifetime write histogram when
	// TrackWear; winWrites/winReads are the resettable per-page
	// window counters when TrackWindow. All three are chunked so
	// untouched regions cost nothing.
	wear      [][]uint32
	winWrites [][]uint32
	winReads  [][]uint32
}

// New returns a device for the given configuration.
func New(cfg Config) *Device {
	return &Device{cfg: cfg}
}

// Kind reports the device's emulated technology.
func (d *Device) Kind() Kind { return d.cfg.Kind }

// Bytes reports the device capacity.
func (d *Device) Bytes() uint64 { return d.cfg.Bytes }

// Read records n line reads at the given device offset.
func (d *Device) Read(offset uint64, n uint64) {
	d.readLines += n
	if d.cfg.TrackWindowReads {
		for i := uint64(0); i < n; i++ {
			page := (offset + i*LineSize) / 4096
			if page >= d.cfg.Bytes/4096 {
				continue
			}
			bumpWindow(&d.winReads, page)
		}
	}
}

// Write records n line writebacks starting at the given device offset.
// Offsets beyond capacity are clamped into range (the machine model
// never produces them, but the device stays robust under direct use).
func (d *Device) Write(offset uint64, n uint64) {
	d.wroteLine += n
	if d.cfg.TrackWear || d.cfg.TrackWindow {
		for i := uint64(0); i < n; i++ {
			page := (offset + i*LineSize) / 4096
			if page >= d.cfg.Bytes/4096 {
				continue
			}
			if d.cfg.TrackWear {
				bumpWindow(&d.wear, page)
			}
			if d.cfg.TrackWindow {
				bumpWindow(&d.winWrites, page)
			}
		}
	}
}

// bumpWindow increments a sparse per-page window counter, allocating
// its chunk on first touch.
func bumpWindow(win *[][]uint32, page uint64) {
	chunk := int(page / winChunkPages)
	for chunk >= len(*win) {
		*win = append(*win, nil)
	}
	if (*win)[chunk] == nil {
		(*win)[chunk] = make([]uint32, winChunkPages)
	}
	(*win)[chunk][page%winChunkPages]++
}

// readWindow reads a sparse window counter without allocating.
func readWindow(win [][]uint32, page uint64) uint32 {
	chunk := int(page / winChunkPages)
	if chunk >= len(win) || win[chunk] == nil {
		return 0
	}
	return win[chunk][page%winChunkPages]
}

// WindowWrites reports the line writebacks that landed on the 4 KB
// page holding offset since the last ResetWindow (0 when TrackWindow
// is off).
func (d *Device) WindowWrites(offset uint64) uint32 {
	return readWindow(d.winWrites, offset/4096)
}

// WindowReads reports the line reads that landed on the 4 KB page
// holding offset since the last ResetWindow (0 when TrackWindow is
// off).
func (d *Device) WindowReads(offset uint64) uint32 {
	return readWindow(d.winReads, offset/4096)
}

// TakeWindow consumes the window counters of the 4 KB page holding
// offset: it returns them and resets them to zero. The placement
// engine reads each process's pages destructively, so one instance's
// quantum never clears another's signal — frames are private to one
// address space at a time.
func (d *Device) TakeWindow(offset uint64) (writes, reads uint32) {
	page := offset / 4096
	writes = readWindow(d.winWrites, page)
	reads = readWindow(d.winReads, page)
	clearWindow(d.winWrites, page)
	clearWindow(d.winReads, page)
	return writes, reads
}

// ClearWindowPage zeroes the window counters of the 4 KB page holding
// offset. Page migration uses it so neither the stale heat of a
// released frame nor the copy traffic of a fresh one reads as
// mutator heat.
func (d *Device) ClearWindowPage(offset uint64) {
	page := offset / 4096
	clearWindow(d.winWrites, page)
	clearWindow(d.winReads, page)
}

// clearWindow zeroes a sparse window counter without allocating.
func clearWindow(win [][]uint32, page uint64) {
	chunk := int(page / winChunkPages)
	if chunk < len(win) && win[chunk] != nil {
		win[chunk][page%winChunkPages] = 0
	}
}

// ResetWindow starts a fresh observation window: every per-page
// access/write counter drops to zero. Allocated chunks are kept and
// zeroed so a steady-state policy quantum does not reallocate.
func (d *Device) ResetWindow() {
	for _, win := range [2][][]uint32{d.winWrites, d.winReads} {
		for _, chunk := range win {
			for i := range chunk {
				chunk[i] = 0
			}
		}
	}
}

// PageWear reports the lifetime write count of the 4 KB page holding
// offset (0 when TrackWear is off) — the wear-leveling policy's
// per-page signal.
func (d *Device) PageWear(offset uint64) uint32 {
	return readWindow(d.wear, offset/4096)
}

// ReadLines reports the cumulative number of line reads.
func (d *Device) ReadLines() uint64 { return d.readLines }

// WriteLines reports the cumulative number of line writebacks.
func (d *Device) WriteLines() uint64 { return d.wroteLine }

// WriteBytes reports cumulative writeback traffic in bytes.
func (d *Device) WriteBytes() uint64 { return d.wroteLine * LineSize }

// ReadBytes reports cumulative read traffic in bytes.
func (d *Device) ReadBytes() uint64 { return d.readLines * LineSize }

// ResetCounters zeroes the read/write counters but keeps wear history.
// The replay-compilation harness calls this between the warmup and the
// measured iteration.
func (d *Device) ResetCounters() {
	d.readLines = 0
	d.wroteLine = 0
}

// Wear summarises the per-page wear histogram.
type Wear struct {
	Pages    int    // pages with at least one write
	MaxPage  uint32 // writes to the most-written page
	Total    uint64 // total page writes recorded
	Tracked  bool   // whether wear tracking was enabled
	AllPages int    // total pages in the device
}

// WearSummary returns the wear histogram summary. When wear tracking is
// disabled only Total (from the line counter) is meaningful.
func (d *Device) WearSummary() Wear {
	w := Wear{Tracked: d.cfg.TrackWear, Total: d.wroteLine}
	if d.cfg.TrackWear {
		w.AllPages = int(d.cfg.Bytes / 4096)
	}
	for _, chunk := range d.wear {
		for _, c := range chunk {
			if c > 0 {
				w.Pages++
			}
			if c > w.MaxPage {
				w.MaxPage = c
			}
		}
	}
	return w
}

// Snapshot is a point-in-time copy of the device counters, used by the
// sampling write-rate monitor.
type Snapshot struct {
	ReadLines  uint64
	WriteLines uint64
}

// Snapshot returns the current counters.
func (d *Device) Snapshot() Snapshot {
	return Snapshot{ReadLines: d.readLines, WriteLines: d.wroteLine}
}
