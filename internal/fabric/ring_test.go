package fabric

import (
	"fmt"
	"testing"
)

// syntheticKeys builds canonical-key-shaped strings: ring balance must
// hold for the short, highly similar keys the platform actually
// produces, not for random blobs.
func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf(
			"mode=emulation;seed=1;l3=0;nursery=0;obs=0;tsock=-1;mon=0;quantum=0;unmap=false;wear=false;boot=4;factory=scale:quick;policy=static;app=app%d;gc=KG-N;n=%d;ds=default;native=false",
			i%97, i)
	}
	return keys
}

func nodeNames(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 18080+i)
	}
	return nodes
}

// TestRingBalance: across 3-, 5-, and 7-node fleets, every node's
// share of a large key population stays within a reasonable band of
// the fair share.
func TestRingBalance(t *testing.T) {
	keys := syntheticKeys(20000)
	for _, n := range []int{3, 5, 7} {
		r := NewRing(nodeNames(n), 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d nodes: only %d ever own a key", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for node, c := range counts {
			share := float64(c) / fair
			if share < 0.5 || share > 1.6 {
				t.Errorf("%d nodes: %s owns %.2fx the fair share (%d keys)", n, node, share, c)
			}
		}
	}
}

// TestRingDeterministicPlacement: placement is a pure function of
// (membership, key) — independent ring constructions, including ones
// built from a permuted peer list, agree on every owner.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := nodeNames(5)
	a := NewRing(nodes, 0)
	permuted := []string{nodes[3], nodes[0], nodes[4], nodes[2], nodes[1]}
	b := NewRing(permuted, 0)
	for _, k := range syntheticKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%q) differs across identical memberships: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		if a.Owner(k) != a.Owner(k) {
			t.Fatalf("owner(%q) not stable", k)
		}
	}
}

// TestRingMinimalMovement: adding a node steals keys only for the new
// node (no key moves between surviving nodes), removing a node moves
// only the keys it owned, and the moved fraction is near 1/N.
func TestRingMinimalMovement(t *testing.T) {
	keys := syntheticKeys(20000)
	nodes := nodeNames(5)
	base := NewRing(nodes, 0)
	newNode := "http://127.0.0.1:19000"

	grown := base.With(newNode, 0)
	moved := 0
	for _, k := range keys {
		was, now := base.Owner(k), grown.Owner(k)
		if was != now {
			moved++
			if now != newNode {
				t.Fatalf("adding %s moved %q from %s to %s (keys may only move to the new node)",
					newNode, k, was, now)
			}
		}
	}
	fair := float64(len(keys)) / 6
	if f := float64(moved) / fair; f < 0.5 || f > 1.6 {
		t.Errorf("adding a 6th node moved %d keys, %.2fx the fair share", moved, f)
	}

	shrunk := base.Without(nodes[2], 0)
	moved = 0
	for _, k := range keys {
		was, now := base.Owner(k), shrunk.Owner(k)
		if was != nodes[2] {
			if now != was {
				t.Fatalf("removing %s moved %q between survivors (%s -> %s)", nodes[2], k, was, now)
			}
			continue
		}
		moved++
		if now == nodes[2] {
			t.Fatalf("removed node still owns %q", k)
		}
	}
	if moved == 0 {
		t.Error("removed node owned nothing")
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	if empty.Len() != 0 {
		t.Errorf("empty ring Len = %d", empty.Len())
	}

	solo := NewRing([]string{"a", "a", ""}, 4)
	if solo.Len() != 1 {
		t.Fatalf("duplicates/empties not collapsed: %v", solo.Nodes())
	}
	for _, k := range syntheticKeys(50) {
		if solo.Owner(k) != "a" {
			t.Fatalf("single-node ring must own everything")
		}
	}
	if !solo.Contains("a") || solo.Contains("b") {
		t.Error("Contains misreports membership")
	}
}
