package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/heap"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// testStack builds a small machine+kernel pair with the tracking the
// config asks for.
func testStack(cfg Config) (*machine.Machine, *kernel.Kernel) {
	mc := machine.DefaultConfig()
	mc.NodeBytes = 256 << 20
	mc.L1 = cache.Config{Name: "L1", Bytes: 1 << 10, Ways: 2}
	mc.L2 = cache.Config{Name: "L2", Bytes: 4 << 10, Ways: 4}
	mc.L3 = cache.Config{Name: "L3", Bytes: 16 << 10, Ways: 4}
	mc.TrackWindow = cfg.NeedsWindow()
	mc.TrackWear = cfg.NeedsWear()
	m := machine.New(mc)
	kc := kernel.Config{EmulateOS: false, MigrationPageCycles: 1000, TLBShootdownCycles: 4000}
	return m, kernel.New(m, kc)
}

func TestKindStringsAndDescriptions(t *testing.T) {
	want := map[Kind]string{
		Static:         "static",
		FirstTouch:     "first-touch",
		WriteThreshold: "write-threshold",
		WearLevel:      "wear-level",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
		if k.Description() == "" {
			t.Errorf("%v has no description", k)
		}
	}
}

func TestConfigKeyStability(t *testing.T) {
	if got := (Config{}).Key(); got != "static" {
		t.Errorf("zero config key = %q, want static", got)
	}
	a := Config{Kind: WriteThreshold}.Key()
	b := Config{Kind: WriteThreshold}.WithDefaults().Key()
	if a != b {
		t.Errorf("default knobs change the key: %q vs %q", a, b)
	}
	c := Config{Kind: WriteThreshold, HotWriteLines: 9}.Key()
	if a == c {
		t.Error("different knobs must produce different keys")
	}
}

func TestNewEngineRejectsStatic(t *testing.T) {
	if _, err := NewEngine(Config{Kind: Static}); err == nil {
		t.Error("static must not construct an engine")
	}
	if _, err := NewEngine(Config{Kind: WriteThreshold}); err != nil {
		t.Errorf("write-threshold engine: %v", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	Register(WearLevel.String(), func() Policy { return wearLevelPolicy{} })
}

func TestWriteThresholdPromotesHotPCMGroups(t *testing.T) {
	cfg := Config{Kind: WriteThreshold, HotWriteLines: 100}
	_, k := testStack(cfg)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base = uint64(heap.HeapBase)
	pm := heap.NewPageMap(base, base+4*heap.PageGroupBytes)
	pm.SetRange(base, base+4*heap.PageGroupBytes, PCMNode)

	var after []uint64
	p := k.NewProcess("t", 0, func(p *kernel.Process) {
		if err := p.AS.MMap(base, 4*heap.PageGroupBytes, PCMNode); err != nil {
			panic(err)
		}
		// Group 0 is hot: stream writes over all of it, repeatedly, so
		// the writebacks reach the device. Group 2 is touched once.
		for i := 0; i < 8; i++ {
			p.AccessLines(base, heap.PageGroupBytes/64, true)
		}
		p.Access(base+2*heap.PageGroupBytes, 8, true)
		p.Kernel().Machine().DrainCaches()
		eng.OnSafepoint(p, pm)
		after = p.AS.Residency(base, base+4*heap.PageGroupBytes)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}

	if got := pm.Node(base); got != DRAMNode {
		t.Errorf("hot group tier = %d, want DRAM", got)
	}
	if got := pm.Node(base + 2*heap.PageGroupBytes); got != PCMNode {
		t.Errorf("cold group tier = %d, want PCM", got)
	}
	st := eng.Stats()
	if st.PagesMigrated != heap.PageGroupPages {
		t.Errorf("pages migrated = %d, want %d", st.PagesMigrated, heap.PageGroupPages)
	}
	if st.StallCycles == 0 {
		t.Error("migration charged no stall cycles")
	}
	if after[DRAMNode] != heap.PageGroupPages {
		t.Errorf("DRAM residency = %d, want %d", after[DRAMNode], heap.PageGroupPages)
	}
}

func TestWriteThresholdDemotesColdUnderPressure(t *testing.T) {
	cfg := Config{Kind: WriteThreshold, HotWriteLines: 1 << 40, DRAMBudgetPages: 4}
	_, k := testStack(cfg)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base = uint64(heap.HeapBase)
	pm := heap.NewPageMap(base, base+2*heap.PageGroupBytes)
	pm.SetRange(base, base+2*heap.PageGroupBytes, DRAMNode)

	p := k.NewProcess("t", 0, func(p *kernel.Process) {
		if err := p.AS.MMap(base, 2*heap.PageGroupBytes, DRAMNode); err != nil {
			panic(err)
		}
		// Touch both groups once (cold), 32 resident DRAM pages > 4.
		for off := uint64(0); off < 2*heap.PageGroupBytes; off += kernel.PageSize {
			p.Access(base+off, 8, true)
		}
		p.Kernel().Machine().DrainCaches()
		// A fresh window: the faulting writes above should not count
		// as heat.
		for i := 0; i < p.Kernel().Machine().Nodes(); i++ {
			p.Kernel().Machine().Node(i).ResetWindow()
		}
		eng.OnSafepoint(p, pm)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().PagesMigrated == 0 {
		t.Error("pressure should demote cold DRAM groups")
	}
	if got := pm.Node(base); got != PCMNode {
		t.Errorf("coldest group tier = %d, want PCM", got)
	}
}

func TestWearLevelRotatesWornGroups(t *testing.T) {
	cfg := Config{Kind: WearLevel, WearFactor: 1.5}
	m, k := testStack(cfg)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base = uint64(heap.HeapBase)
	pm := heap.NewPageMap(base, base+4*heap.PageGroupBytes)
	pm.SetRange(base, base+4*heap.PageGroupBytes, PCMNode)

	var before, rotated uint64
	p := k.NewProcess("t", 0, func(p *kernel.Process) {
		if err := p.AS.MMap(base, 4*heap.PageGroupBytes, PCMNode); err != nil {
			panic(err)
		}
		// Wear group 0 far beyond the rest.
		for i := 0; i < 32; i++ {
			p.AccessLines(base, heap.PageGroupBytes/64, true)
		}
		for off := uint64(0); off < 4*heap.PageGroupBytes; off += kernel.PageSize {
			p.Access(base+off, 8, true)
		}
		m.DrainCaches()
		before, _ = p.AS.Lookup(base)
		eng.OnSafepoint(p, pm)
		rotated, _ = p.AS.Lookup(base)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().PagesMigrated == 0 {
		t.Fatal("wear leveling rotated nothing")
	}
	if before == rotated {
		t.Error("worn page kept its frame")
	}
	if got := pm.Node(base); got != PCMNode {
		t.Errorf("rotation changed the tier to %d", got)
	}
}

func TestFirstTouchNeverMigrates(t *testing.T) {
	cfg := Config{Kind: FirstTouch}
	if !cfg.FirstTouchHeap() {
		t.Error("first-touch must request first-touch heap bindings")
	}
	_, k := testStack(cfg)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base = uint64(heap.HeapBase)
	pm := heap.NewPageMap(base, base+heap.PageGroupBytes)
	p := k.NewProcess("t", 0, func(p *kernel.Process) {
		if err := p.AS.MMap(base, heap.PageGroupBytes, kernel.NodeFirstTouch); err != nil {
			panic(err)
		}
		p.Access(base, 8, true)
		eng.OnSafepoint(p, pm)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.PagesMigrated != 0 || st.Quanta != 1 {
		t.Errorf("stats = %+v, want 0 migrations over 1 quantum", st)
	}
}

// recordingPolicy is a custom pluggable policy that logs its views.
type recordingPolicy struct {
	views int
	saw   uint64
}

func (r *recordingPolicy) Name() string { return "recording" }
func (r *recordingPolicy) Decide(v View, cfg Config) []Action {
	r.views++
	for _, g := range v.Groups {
		r.saw += uint64(g.Pages)
	}
	return nil
}

func TestPluggableCustomPolicy(t *testing.T) {
	rec := &recordingPolicy{}
	eng := NewEngineWith(rec, Config{Kind: WriteThreshold})
	_, k := testStack(Config{Kind: WriteThreshold})
	const base = uint64(heap.HeapBase)
	pm := heap.NewPageMap(base, base+2*heap.PageGroupBytes)
	pm.SetRange(base, base+2*heap.PageGroupBytes, PCMNode)
	p := k.NewProcess("t", 0, func(p *kernel.Process) {
		if err := p.AS.MMap(base, 2*heap.PageGroupBytes, PCMNode); err != nil {
			panic(err)
		}
		p.Access(base, 8, true)
		eng.OnSafepoint(p, pm)
	})
	if err := k.RunSolo(p, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if rec.views != 1 || rec.saw != 1 {
		t.Errorf("custom policy saw %d views, %d pages; want 1 and 1", rec.views, rec.saw)
	}
}
