package hybridmem_test

import (
	"bytes"
	"context"
	"fmt"

	hybridmem "repro"
)

// Recording a run's placement trace costs nothing but the bytes: the
// Result is bit-identical to an untraced run, and the trace replays
// offline afterwards.
func ExampleWithTrace() {
	var trc bytes.Buffer
	p := hybridmem.New(
		hybridmem.WithScale(hybridmem.Quick),
		hybridmem.WithSeed(1),
		hybridmem.WithPolicy(hybridmem.WriteThreshold),
		hybridmem.WithTrace(&trc),
	)
	res, err := p.Run(context.Background(), hybridmem.RunSpec{
		AppName: "PR", Collector: hybridmem.KGN,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	// Replaying the recorded policy over its own trace lands exactly
	// on the live Result's migration totals — the differential
	// invariant that makes traces trustworthy ground truth.
	st, err := hybridmem.ReplayTrace(&trc, hybridmem.WriteThreshold)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(st.PagesMigrated == res.PagesMigrated)
	// Output: true
}

// Replaying a trace re-drives a policy against the recorded views
// without constructing the emulator: policy prototyping in
// milliseconds instead of minutes.
func ExampleReplayTrace() {
	var trc bytes.Buffer
	p := hybridmem.New(
		hybridmem.WithScale(hybridmem.Quick),
		hybridmem.WithSeed(1),
		hybridmem.WithPolicy(hybridmem.WriteThreshold),
		hybridmem.WithTrace(&trc),
	)
	if _, err := p.Run(context.Background(), hybridmem.RunSpec{
		AppName: "PR", Collector: hybridmem.KGN,
	}); err != nil {
		fmt.Println(err)
		return
	}
	data := trc.Bytes()

	// The recording policy replays bit-identically...
	same, err := hybridmem.ReplayTrace(bytes.NewReader(data), hybridmem.WriteThreshold)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(same.MatchesRecorded)

	// ...and any other configuration is priced offline from the same
	// bytes, here the same policy under a tighter promotion threshold.
	tuned, err := hybridmem.ReplayTraceWith(bytes.NewReader(data),
		hybridmem.PolicyConfig{Kind: hybridmem.WriteThreshold, HotWriteLines: 3000})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(tuned.Actions < same.Actions)
	// Output:
	// true
	// true
}

// Autotune prices a whole knob grid from one recorded run: one
// emulation plus one replay per grid point, instead of one emulation
// per point.
func ExampleAutotune() {
	var trc bytes.Buffer
	p := hybridmem.New(
		hybridmem.WithScale(hybridmem.Quick),
		hybridmem.WithSeed(1),
		hybridmem.WithPolicy(hybridmem.WriteThreshold),
		hybridmem.WithTrace(&trc),
	)
	if _, err := p.Run(context.Background(), hybridmem.RunSpec{
		AppName: "PR", Collector: hybridmem.KGN,
	}); err != nil {
		fmt.Println(err)
		return
	}

	rep, err := hybridmem.Autotune(context.Background(), &trc, hybridmem.KnobGrid{
		Policy:          hybridmem.WriteThreshold,
		HotWriteLines:   []uint64{2100, 3000},
		DRAMBudgetPages: []uint64{16384, 32768},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(rep.Frontier) > 0)
	fmt.Println(rep.Recommended.Policy)
	// Validate the winner live:
	//   p.With(hybridmem.WithPolicyConfig(rep.Recommended.Config())).Run(ctx, spec)
	// Output:
	// true
	// write-threshold
}
