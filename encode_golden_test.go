package hybridmem

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/jvm"
	"repro/internal/machine"
	"repro/internal/native"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResult populates every Result field so any schema change —
// a renamed, added, or removed field — shows up in the diff.
func goldenResult() Result {
	return Result{
		DRAMWriteLines:     111,
		PCMWriteLines:      222,
		DRAMReadLines:      333,
		PCMReadLines:       444,
		Seconds:            1.25,
		PerInstanceSeconds: []float64{1.25, 1.125},
		RuntimeStats: []jvm.Stats{{
			MinorGCs: 3, ObserverGCs: 2, FullGCs: 1,
			AllocObjects: 1000, AllocBytes: 1 << 20, LargeAllocBytes: 1 << 10,
			NurserySlowPath: 5, SurvivorBytes: 2048, ObserverOutBytes: 1024,
			ToMatureDRAMBytes: 512, ToMaturePCMBytes: 256, LargeRelocBytes: 128,
			BarrierStores: 64, RemsetEntries: 32, MutatorWrites: 16, MutatorReads: 8,
		}},
		NativeStats: []native.Stats{{
			Mallocs: 9, Frees: 8, AllocBytes: 7, LiveBytes: 6, PeakBytes: 5, WildernessB: 4,
		}},
		AllocBytes:           []uint64{1 << 20, 1 << 19},
		PeakResidentBytes:    []uint64{1 << 22, 1 << 21},
		ZeroedPages:          55,
		QPI:                  machine.QPIStats{ReadLines: 66, WriteLines: 77},
		FreeListMaps:         88,
		FreeListRecycles:     99,
		PagesMigrated:        123,
		MigrationStallCycles: 456,
		DRAMResidentPages:    789,
		PCMResidentPages:     1011,
	}
}

// TestEncodeResultGolden freezes the Result JSON schema that the store
// segments persist and the hybridserved API serves. A failure here
// means the wire/disk format changed: make the change deliberately,
// regenerate with `go test -run TestEncodeResultGolden -update`, and
// flag it in review.
func TestEncodeResultGolden(t *testing.T) {
	res := goldenResult()
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, data, "", "  "); err != nil {
		t.Fatal(err)
	}
	pretty.WriteByte('\n')

	golden := filepath.Join("testdata", "result_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Errorf("Result JSON schema drifted from %s\n got:\n%s\nwant:\n%s", golden, pretty.Bytes(), want)
	}

	// The frozen bytes must keep decoding to the same Result.
	back, err := DecodeResult(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, res) {
		t.Error("golden file no longer decodes to the original Result")
	}
}
