package cache

import "testing"

// BenchmarkAccessHit measures the hot path: an L1-style hit.
func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "L1", Bytes: 32 << 10, Ways: 8})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

// BenchmarkAccessMissStream measures a streaming miss pattern with
// evictions — the writeback-generating path.
func BenchmarkAccessMissStream(b *testing.B) {
	c := New(Config{Name: "L3", Bytes: 1 << 20, Ways: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, true)
	}
}

// BenchmarkAccessL3Associativity measures a 20-way set scan (the
// platform's L3 geometry).
func BenchmarkAccessL3Associativity(b *testing.B) {
	c := New(Config{Name: "L3", Bytes: 20 << 20, Ways: 20})
	// Warm one set with 20 resident ways.
	for w := 0; w < 20; w++ {
		c.Access(uint64(w)*(20<<20)/20, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%20)*(20<<20)/20, false)
	}
}
