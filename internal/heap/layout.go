// Package heap implements the paper's hybrid-memory heap organization
// (Fig 1): a 32-bit virtual address space whose managed heap is split
// into a PCM-backed portion and a DRAM-backed portion, each managed by
// its own free list of 4 MB chunks. Chunks, once mapped to physical
// memory on their portion's socket, are never unmapped — they are
// recycled between spaces through the free list, which is exactly the
// flexibility the paper credits the two-free-list design for.
//
// Spaces follow the Jikes RVM / MMTk organization the paper modifies:
// a contiguous nursery (and, for KG-W, an observer) at one end of
// virtual memory so the fast boundary write barrier works; chunked
// mark-region mature spaces; page-granular large-object spaces; side
// metadata regions; and a boot space.
package heap

import (
	"fmt"

	"repro/internal/objmodel"
)

// Memory is the OS surface the heap needs: reserving virtual memory,
// binding it to a NUMA node, and (for the monolithic-free-list
// ablation) unmapping it. *kernel.AddressSpace satisfies it.
type Memory interface {
	MMap(start, length uint64, node int) error
	MBind(start, length uint64, node int) error
	MUnmap(start, length uint64) error
}

const (
	// ChunkBytes is the chunk size, the minimum unit of virtual
	// memory handed to a space (Jikes RVM default, per the paper).
	ChunkBytes = 4 << 20
	// LineBytes is the Immix line granularity in the mature spaces.
	LineBytes = 256
	// BlockBytes is the Immix block granularity (for accounting).
	BlockBytes = 32 << 10
	// PageBytes is the allocation granularity of large-object spaces.
	PageBytes = 4096
	// LargeThreshold is the size at or above which objects follow the
	// large-object policy (Jikes RVM: 8 KB).
	LargeThreshold = 8 << 10
	// MarkGranule is the number of heap bytes covered by one byte of
	// side mark metadata.
	MarkGranule = 256
)

// Virtual-address-space landmarks (32-bit layout, paper §III-A: the
// OS owns the top 1 GB, system libraries use low memory, the middle
// 2 GB hold the managed heap).
const (
	// BootBase is the boot-image region (below the heap).
	BootBase = 0x00400000
	// MetaBase is where the side-metadata regions live.
	MetaBase = 0x0C000000
	// HeapBase is PCM_START, the bottom of the managed heap.
	HeapBase = 0x10000000
	// DefaultPCMEnd splits the heap: [HeapBase, PCMEnd) is the
	// PCM-backed portion managed by FreeList-Lo.
	DefaultPCMEnd = 0x60000000
	// DefaultDRAMEnd is the top of the DRAM-backed portion managed by
	// FreeList-Hi; the nursery sits at this end of virtual memory.
	DefaultDRAMEnd = 0x90000000
)

// Layout fixes the virtual-memory geometry for one process's heap.
type Layout struct {
	PCMStart uint64 // PCM_START in the paper's Fig 1
	PCMEnd   uint64 // PCM_END: boundary between the two portions
	DRAMEnd  uint64 // DRAM_END: top of the heap

	BootBytes     uint64
	NurseryBytes  uint64
	ObserverBytes uint64 // 0 when the plan has no observer space

	// Derived at validation time.
	NurseryStart  uint64 // [NurseryStart, DRAMEnd)
	ObserverStart uint64 // [ObserverStart, NurseryStart)
	ChunkedHiEnd  uint64 // top of FreeList-Hi's chunked range

	// Metadata regions: meta-lo covers the PCM portion, meta-hi the
	// DRAM portion, one byte per MarkGranule heap bytes.
	MetaLoStart, MetaLoEnd uint64
	MetaHiStart, MetaHiEnd uint64
	// RemsetStart is the sequential-store-buffer region.
	RemsetStart, RemsetEnd uint64
	// MetaExtra is the MetaData Optimization region: a DRAM-bound
	// shadow of meta-lo so that marking PCM objects writes DRAM.
	MetaExtraStart, MetaExtraEnd uint64
}

// NewLayout computes a layout for the given nursery/observer sizes,
// using the default 32-bit landmarks.
func NewLayout(nurseryBytes, observerBytes uint64) (Layout, error) {
	l := Layout{
		PCMStart:      HeapBase,
		PCMEnd:        DefaultPCMEnd,
		DRAMEnd:       DefaultDRAMEnd,
		BootBytes:     48 << 20,
		NurseryBytes:  nurseryBytes,
		ObserverBytes: observerBytes,
	}
	if err := l.finalize(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// finalize validates the geometry and computes the derived fields.
func (l *Layout) finalize() error {
	if l.PCMStart%ChunkBytes != 0 || l.PCMEnd%ChunkBytes != 0 || l.DRAMEnd%ChunkBytes != 0 {
		return fmt.Errorf("heap: portion boundaries must be chunk-aligned")
	}
	if l.PCMStart >= l.PCMEnd || l.PCMEnd >= l.DRAMEnd {
		return fmt.Errorf("heap: portions out of order: %#x %#x %#x", l.PCMStart, l.PCMEnd, l.DRAMEnd)
	}
	if l.NurseryBytes == 0 || l.NurseryBytes%PageBytes != 0 || l.ObserverBytes%PageBytes != 0 {
		return fmt.Errorf("heap: nursery/observer sizes must be page-aligned and nonzero nursery")
	}
	contiguous := l.NurseryBytes + l.ObserverBytes
	// Round the contiguous reservation up to a chunk boundary so the
	// chunked range below it stays chunk-aligned.
	resv := (contiguous + ChunkBytes - 1) / ChunkBytes * ChunkBytes
	if resv >= l.DRAMEnd-l.PCMEnd {
		return fmt.Errorf("heap: nursery+observer (%d) exceed the DRAM portion", contiguous)
	}
	l.NurseryStart = l.DRAMEnd - l.NurseryBytes
	l.ObserverStart = l.NurseryStart - l.ObserverBytes
	l.ChunkedHiEnd = l.DRAMEnd - resv

	loMeta := (l.PCMEnd - l.PCMStart) / MarkGranule
	hiMeta := (l.DRAMEnd - l.PCMEnd) / MarkGranule
	l.MetaLoStart = MetaBase
	l.MetaLoEnd = pageAlign(l.MetaLoStart + loMeta)
	l.MetaHiStart = l.MetaLoEnd
	l.MetaHiEnd = pageAlign(l.MetaHiStart + hiMeta)
	l.RemsetStart = l.MetaHiEnd
	l.RemsetEnd = l.RemsetStart + (8 << 20)
	l.MetaExtraStart = l.RemsetEnd
	l.MetaExtraEnd = pageAlign(l.MetaExtraStart + loMeta)
	if l.MetaExtraEnd > HeapBase {
		return fmt.Errorf("heap: metadata regions overrun the heap base")
	}
	return nil
}

// MarkByteAddrMDO returns the DRAM-bound shadow metadata address for a
// PCM-portion heap address, used when the MetaData Optimization is on.
func (l *Layout) MarkByteAddrMDO(addr uint64) uint64 {
	return l.MetaExtraStart + (addr-l.PCMStart)/MarkGranule
}

func pageAlign(v uint64) uint64 {
	return (v + PageBytes - 1) / PageBytes * PageBytes
}

// InNursery reports whether addr is in the nursery — the fast boundary
// test of the generational write barrier.
func (l *Layout) InNursery(addr uint64) bool {
	return addr >= l.NurseryStart && addr < l.DRAMEnd
}

// InYoung reports whether addr is in the nursery or observer (the
// "young" side of the boundary barrier under KG-W).
func (l *Layout) InYoung(addr uint64) bool {
	return addr >= l.ObserverStart && addr < l.DRAMEnd
}

// MarkByteAddr returns the side-metadata address holding the mark byte
// for a heap address. Addresses in the PCM portion map into the
// meta-lo region, DRAM-portion addresses into meta-hi; each region's
// NUMA binding is a plan decision (the MetaData Optimization binds
// meta-lo to DRAM).
func (l *Layout) MarkByteAddr(addr uint64) uint64 {
	if addr < l.PCMEnd {
		return l.MetaLoStart + (addr-l.PCMStart)/MarkGranule
	}
	return l.MetaHiStart + (addr-l.PCMEnd)/MarkGranule
}

// PCMPortion reports whether a heap address lies in the PCM-backed
// (FreeList-Lo) portion of virtual memory.
func (l *Layout) PCMPortion(addr uint64) bool {
	return addr >= l.PCMStart && addr < l.PCMEnd
}

// SpaceFor maps a heap address to the portion's free list name, for
// diagnostics.
func (l *Layout) SpaceFor(addr uint64) string {
	switch {
	case l.PCMPortion(addr):
		return "lo"
	case addr >= l.PCMEnd && addr < l.DRAMEnd:
		return "hi"
	default:
		return "outside"
	}
}

// SocketBinding is the per-space NUMA placement of a plan: the paper's
// Table I expressed as a map from space to socket.
type SocketBinding map[objmodel.SpaceID]int
