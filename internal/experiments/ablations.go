package experiments

import (
	"context"
	"fmt"

	hybridmem "repro"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// AblationL3Result is the cache-size sensitivity of KG-N (§V): the
// paper's prior work reported 81% reduction under a 4 MB L3, falling
// to 4–8% under the platform's 20 MB L3.
type AblationL3Result struct {
	L3MB         []int
	ReductionPct []float64
}

// AblationL3 sweeps the shared-cache size and measures KG-N's
// PCM-write reduction over PCM-Only on the DaCapo trio.
func (r *Runner) AblationL3(ctx context.Context, l3MBs []int) (AblationL3Result, error) {
	res := AblationL3Result{L3MB: l3MBs}
	apps := r.cfg.dacapoApps()
	for _, mb := range l3MBs {
		sized := r.p.With(hybridmem.WithL3MB(mb))
		ref := sized.With(hybridmem.WithThreadSocket(0))
		var reds []float64
		for _, app := range apps {
			base, err := ref.Run(ctx, hybridmem.RunSpec{AppName: app, Collector: hybridmem.PCMOnly})
			if err != nil {
				return res, err
			}
			kgn, err := sized.Run(ctx, hybridmem.RunSpec{AppName: app, Collector: hybridmem.KGN})
			if err != nil {
				return res, err
			}
			reds = append(reds, stats.PercentReduction(
				float64(base.PCMWriteLines), float64(kgn.PCMWriteLines)))
		}
		res.ReductionPct = append(res.ReductionPct, stats.Mean(reds))
	}
	return res, nil
}

// Render renders the sweep.
func (a AblationL3Result) Render() string {
	tb := stats.NewTable("Ablation: KG-N PCM-write reduction vs shared L3 size",
		"L3 (MB)", "reduction")
	for i, mb := range a.L3MB {
		tb.AddRow(fmt.Sprint(mb), fmt.Sprintf("%.0f%%", a.ReductionPct[i]))
	}
	return tb.String()
}

// AblationObserverResult sweeps KG-W's observer sizing (the paper
// fixes it at 2x the nursery as a pause/garbage compromise).
type AblationObserverResult struct {
	Factor       []int
	PCMWrites    []uint64
	OverheadPct  []float64 // execution time vs factor 2
	ObserverGCs  []int
	BaselineSecs float64
}

// AblationObserver sweeps the observer:nursery factor for KG-W.
func (r *Runner) AblationObserver(ctx context.Context, factors []int, app string) (AblationObserverResult, error) {
	res := AblationObserverResult{Factor: factors}
	var base float64
	for _, f := range factors {
		run, err := r.p.With(hybridmem.WithObserverFactor(f)).Run(ctx,
			hybridmem.RunSpec{AppName: app, Collector: hybridmem.KGW})
		if err != nil {
			return res, err
		}
		if f == 2 {
			base = run.Seconds
			res.BaselineSecs = base
		}
		res.PCMWrites = append(res.PCMWrites, run.PCMWriteLines)
		res.ObserverGCs = append(res.ObserverGCs, run.RuntimeStats[0].ObserverGCs)
		res.OverheadPct = append(res.OverheadPct, run.Seconds)
	}
	for i := range res.OverheadPct {
		if base > 0 {
			res.OverheadPct[i] = 100 * (res.OverheadPct[i]/base - 1)
		}
	}
	return res, nil
}

// Render renders the sweep.
func (a AblationObserverResult) Render() string {
	tb := stats.NewTable("Ablation: KG-W observer sizing (vs the paper's 2x nursery)",
		"observer/nursery", "PCM writes", "time vs 2x", "observer GCs")
	for i, f := range a.Factor {
		tb.AddRow(fmt.Sprint(f),
			fmt.Sprint(a.PCMWrites[i]),
			fmt.Sprintf("%+.1f%%", a.OverheadPct[i]),
			fmt.Sprint(a.ObserverGCs[i]))
	}
	return tb.String()
}

// AblationNurseryResult compares GraphChi under 4 MB and 32 MB
// nurseries (the paper found 32 MB performs better and uses it).
type AblationNurseryResult struct {
	NurseryMB []int
	Seconds   []float64
	PCMWrites []uint64
}

// AblationNursery runs PR under different nursery sizes with KG-N.
func (r *Runner) AblationNursery(ctx context.Context, sizesMB []int) (AblationNurseryResult, error) {
	res := AblationNurseryResult{NurseryMB: sizesMB}
	for _, mb := range sizesMB {
		run, err := r.p.With(hybridmem.WithBaseNurseryMB(mb)).Run(ctx,
			hybridmem.RunSpec{AppName: "PR", Collector: hybridmem.KGN})
		if err != nil {
			return res, err
		}
		res.Seconds = append(res.Seconds, run.Seconds)
		res.PCMWrites = append(res.PCMWrites, run.PCMWriteLines)
	}
	return res, nil
}

// Render renders the comparison.
func (a AblationNurseryResult) Render() string {
	tb := stats.NewTable("Ablation: GraphChi nursery sizing (PR, KG-N)",
		"nursery (MB)", "time (s)", "PCM writes")
	for i, mb := range a.NurseryMB {
		tb.AddRow(fmt.Sprint(mb), fmt.Sprintf("%.4f", a.Seconds[i]), fmt.Sprint(a.PCMWrites[i]))
	}
	return tb.String()
}

// AblationMonitorResult compares monitor placement: the paper runs the
// write-rate monitor on socket 0 because that keeps its perturbation
// out of the PCM (socket 1) counters.
type AblationMonitorResult struct {
	Node      []int
	PCMWrites []uint64
}

// AblationMonitorSocket measures PCM-write contamination when the
// monitor runs on each socket.
func (r *Runner) AblationMonitorSocket(ctx context.Context, app string) (AblationMonitorResult, error) {
	res := AblationMonitorResult{Node: []int{0, 1}}
	for _, node := range res.Node {
		run, err := r.p.With(hybridmem.WithMonitorNode(node)).Run(ctx,
			hybridmem.RunSpec{AppName: app, Collector: hybridmem.KGW})
		if err != nil {
			return res, err
		}
		res.PCMWrites = append(res.PCMWrites, run.PCMWriteLines)
	}
	return res, nil
}

// Render renders the comparison.
func (a AblationMonitorResult) Render() string {
	tb := stats.NewTable("Ablation: write-rate monitor placement",
		"monitor socket", "PCM writes observed")
	for i, n := range a.Node {
		tb.AddRow(fmt.Sprint(n), fmt.Sprint(a.PCMWrites[i]))
	}
	return tb.String()
}

// AblationFreeListsResult compares the paper's dual recycling free
// lists with the rejected monolithic design that unmaps freed chunks.
type AblationFreeListsResult struct {
	Unmap       []bool
	Seconds     []float64
	ZeroedPages []uint64
	Maps        []uint64
	Recycles    []uint64
}

// AblationFreeLists runs a full-GC-heavy workload under both chunk
// policies.
func (r *Runner) AblationFreeLists(ctx context.Context, app string) (AblationFreeListsResult, error) {
	res := AblationFreeListsResult{Unmap: []bool{false, true}}
	for _, unmap := range res.Unmap {
		run, err := r.p.With(hybridmem.WithUnmapFreedChunks(unmap)).Run(ctx,
			hybridmem.RunSpec{AppName: app, Collector: hybridmem.KGW})
		if err != nil {
			return res, err
		}
		res.Seconds = append(res.Seconds, run.Seconds)
		res.ZeroedPages = append(res.ZeroedPages, run.ZeroedPages)
		res.Maps = append(res.Maps, run.FreeListMaps)
		res.Recycles = append(res.Recycles, run.FreeListRecycles)
	}
	return res, nil
}

// AblationPoliciesResult compares the placement policies on the
// GraphChi workloads under KG-N: the paper's static tiering against
// first-touch, write-threshold, and wear-level dynamic placement,
// with the explicit migration costs the engine charges.
type AblationPoliciesResult struct {
	Collector hybridmem.Collector
	Apps      []string
	Policies  []hybridmem.Policy
	// Per [policy][app] measurements.
	PCMWrites     [][]uint64
	PagesMigrated [][]uint64
	StallMCycles  [][]float64
	Seconds       [][]float64
}

// AblationPolicies sweeps every placement policy over the GraphChi
// apps through the Sweep policy dimension: one pass per policy, each
// pass batched in parallel across host cores.
func (r *Runner) AblationPolicies(ctx context.Context) (AblationPoliciesResult, error) {
	res := AblationPoliciesResult{
		Collector: hybridmem.KGN,
		Apps:      r.suiteApps(workloads.GraphChi),
		Policies:  hybridmem.Policies(),
	}
	sweep := hybridmem.NewSweep(res.Apps...).
		Collectors(res.Collector).
		Policies(res.Policies...)
	results, err := r.p.RunSweep(ctx, sweep)
	if err != nil {
		return res, err
	}
	n := len(sweep.Specs())
	for pi := range res.Policies {
		var pcm, mig []uint64
		var stall, secs []float64
		for ai := range res.Apps {
			run := results[pi*n+ai]
			pcm = append(pcm, run.PCMWriteLines)
			mig = append(mig, run.PagesMigrated)
			stall = append(stall, float64(run.MigrationStallCycles)/1e6)
			secs = append(secs, run.Seconds)
		}
		res.PCMWrites = append(res.PCMWrites, pcm)
		res.PagesMigrated = append(res.PagesMigrated, mig)
		res.StallMCycles = append(res.StallMCycles, stall)
		res.Seconds = append(res.Seconds, secs)
	}
	return res, nil
}

// Render renders the policy comparison.
func (a AblationPoliciesResult) Render() string {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: placement policies (GraphChi, %s)", a.Collector),
		"policy", "app", "PCM writes", "pages migrated", "stall (Mcycles)", "time (s)")
	for pi, pol := range a.Policies {
		for ai, app := range a.Apps {
			tb.AddRow(pol.String(), app,
				fmt.Sprint(a.PCMWrites[pi][ai]),
				fmt.Sprint(a.PagesMigrated[pi][ai]),
				fmt.Sprintf("%.2f", a.StallMCycles[pi][ai]),
				fmt.Sprintf("%.4f", a.Seconds[pi][ai]))
		}
	}
	return tb.String()
}

// Render renders the comparison.
func (a AblationFreeListsResult) Render() string {
	tb := stats.NewTable("Ablation: dual recycling free lists vs monolithic unmap-on-free",
		"unmap freed chunks", "time (s)", "kernel-zeroed pages", "chunk maps", "chunk recycles")
	for i, u := range a.Unmap {
		tb.AddRow(fmt.Sprint(u), fmt.Sprintf("%.4f", a.Seconds[i]),
			fmt.Sprint(a.ZeroedPages[i]), fmt.Sprint(a.Maps[i]), fmt.Sprint(a.Recycles[i]))
	}
	return tb.String()
}
